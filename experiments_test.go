package hemlock_test

// Root-level experiment tests: each reproduces one of the paper's
// artifacts (Table 1, Figures 1-3) end to end and asserts the behaviour
// the artifact describes. Run with -v to see the regenerated table and
// layout. The quantitative experiments live in bench_test.go.

import (
	"fmt"
	"strings"
	"testing"

	"hemlock"
	"hemlock/internal/layout"
	"hemlock/internal/shmfs"
)

// mustAsm writes an assembly template into the system.
func mustAsm(t testing.TB, s *hemlock.System, path, src string) {
	t.Helper()
	if _, err := s.Asm(path, src); err != nil {
		t.Fatal(err)
	}
}

const counterModSrc = `
        .data
        .globl  expt_count
expt_count: .word 0
`

const trivialMainSrc = `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`

// incrementMainSrc bumps expt_count and returns its new value.
const incrementMainSrc = `
        .text
        .globl  main
        .extern expt_count
main:   la      $t0, expt_count
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
`

// TestTable1Semantics reproduces Table 1: for each sharing class, when the
// module is linked, whether each process gets a new instance, and which
// portion of the address space it occupies.
func TestTable1Semantics(t *testing.T) {
	type row struct {
		class       hemlock.Class
		linkTime    string
		newInstance bool
		region      string
	}
	var rows []row

	for _, class := range []hemlock.Class{
		hemlock.StaticPrivate, hemlock.DynamicPrivate,
		hemlock.StaticPublic, hemlock.DynamicPublic,
	} {
		s := hemlock.New()
		mustAsm(t, s, "/lib/count.o", counterModSrc)
		mustAsm(t, s, "/bin/main.o", incrementMainSrc)
		res, err := s.Link(&hemlock.LinkOptions{
			Output: "a.out",
			Modules: []hemlock.Module{
				{Name: "main.o", Class: hemlock.StaticPrivate},
				{Name: "count.o", Class: class},
			},
			LinkDir:     "/bin",
			DefaultPath: []string{"/lib"},
		})
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}

		// Column 1: when linked. Static classes are resolved in the
		// image; dynamic classes are recorded for ldl.
		linkTime := "static link time"
		if !class.Static() {
			linkTime = "run time"
			if len(res.Image.Dyn.DynModules) != 1 {
				t.Fatalf("%v: dynamic module not deferred to ldl", class)
			}
		} else if len(res.Image.Dyn.DynModules) != 0 {
			t.Fatalf("%v: static module recorded as dynamic", class)
		}

		// Column 2: new instance per process? Run the incrementing
		// program twice; a private module restarts from the template, a
		// public module accumulates.
		run := func() int {
			pg, err := s.Launch(res.Image, 0, nil)
			if err != nil {
				t.Fatalf("%v: %v", class, err)
			}
			if err := pg.Run(100000); err != nil {
				t.Fatalf("%v: %v", class, err)
			}
			return pg.P.ExitCode
		}
		first, second := run(), run()
		newInstance := second == 1
		if !newInstance && second != 2 {
			t.Fatalf("%v: runs returned %d then %d", class, first, second)
		}
		if class.Public() == newInstance {
			t.Fatalf("%v: per-process instance = %v, contradicting Table 1", class, newInstance)
		}

		// Column 3: default portion of the address space.
		pg, err := s.Launch(res.Image, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		v, err := pg.Var("expt_count")
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		region := "private"
		if layout.Public(v.Addr) {
			region = "public"
		}
		if class.Public() != (region == "public") {
			t.Fatalf("%v: variable at 0x%08x (%s region)", class, v.Addr, region)
		}
		rows = append(rows, row{class, linkTime, newInstance, region})
	}

	var b strings.Builder
	b.WriteString("\nTable 1: Class creation and link times (reproduced)\n")
	fmt.Fprintf(&b, "%-18s %-18s %-26s %-8s\n", "Sharing Class", "When linked", "New instance per process", "Region")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-18s %-26v %-8s\n", r.class, r.linkTime, r.newInstance, r.region)
	}
	t.Log(b.String())
}

// TestFigure1Pipeline reproduces Figure 1: two separately linked programs,
// each with private code, both naming the same shared .o; the module is
// created by ldl on first use and both programs access the same object
// with ordinary (symbolic) references.
func TestFigure1Pipeline(t *testing.T) {
	s := hemlock.New()
	// "Shared source code and data (.c files)" -> cc -> shared1.o
	mustAsm(t, s, "/project/shared1.o", counterModSrc)
	// PROGRAM 1 and PROGRAM 2: private source, external declarations for
	// the shared data.
	mustAsm(t, s, "/project/prog1.o", incrementMainSrc)
	mustAsm(t, s, "/project/prog2.o", incrementMainSrc)

	link := func(mod string) *hemlock.Image {
		res, err := s.Link(&hemlock.LinkOptions{
			Output: mod + ".out",
			Modules: []hemlock.Module{
				{Name: mod, Class: hemlock.StaticPrivate},
				{Name: "shared1.o", Class: hemlock.DynamicPublic},
			},
			LinkDir: "/project",
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Image
	}
	im1, im2 := link("prog1.o"), link("prog2.o")

	// Program 1 runs: ldl creates /project/shared1 on first use.
	pg1, err := s.Launch(im1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg1.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg1.P.ExitCode != 1 {
		t.Fatalf("program 1 counted %d", pg1.P.ExitCode)
	}
	if _, err := s.FS.StatPath("/project/shared1"); err != nil {
		t.Fatalf("shared segment not created by ldl: %v", err)
	}
	// Program 2 — a different executable — sees program 1's write.
	pg2, err := s.Launch(im2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg2.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg2.P.ExitCode != 2 {
		t.Fatalf("program 2 counted %d, want 2 (cross-application sharing)", pg2.P.ExitCode)
	}
}

// TestFigure3Layout reproduces Figure 3: the region map, identical public
// addressing in two processes, and overloaded private addressing.
func TestFigure3Layout(t *testing.T) {
	// Region boundaries as drawn.
	checks := []struct {
		addr uint32
		name string
	}{
		{0x00400000, "text+libs (private)"},
		{0x10000000, "data/heap (private)"},
		{0x30000000, "shared file system (public)"},
		{0x70000000, "stack (private)"},
		{0x80000000, "kernel"},
	}
	var b strings.Builder
	b.WriteString("\nFigure 3: Hemlock address spaces (reproduced)\n")
	for _, c := range checks {
		if got := layout.RegionName(c.addr); got != c.name {
			t.Fatalf("region at 0x%08x = %q, want %q", c.addr, got, c.name)
		}
		fmt.Fprintf(&b, "0x%08x  %s\n", c.addr, c.name)
	}
	t.Log(b.String())
	// The shared region is exactly the 1 GB shared file system.
	if layout.SharedBase != shmfs.Base || layout.SharedLimit != shmfs.Limit {
		t.Fatal("shared region does not coincide with the shared file system")
	}
	if shmfs.Limit-shmfs.Base != 1<<30 {
		t.Fatal("shared region is not 1 GB")
	}

	// Public appears the same in every process; private is overloaded.
	s := hemlock.New()
	mustAsm(t, s, "/lib/pub.o", ".data\n.globl pubv\npubv: .word 0\n")
	mustAsm(t, s, "/lib/priv.o", ".data\n.globl privv\nprivv: .word 0\n")
	mustAsm(t, s, "/bin/main.o", trivialMainSrc)
	res, err := s.Link(&hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "pub.o", Class: hemlock.DynamicPublic},
			{Name: "priv.o", Class: hemlock.DynamicPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg1, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pg2, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := pg1.Var("pubv")
	p2, _ := pg2.Var("pubv")
	if p1 == nil || p2 == nil || p1.Addr != p2.Addr {
		t.Fatal("public object at different addresses in two processes")
	}
	if !layout.Public(p1.Addr) {
		t.Fatalf("public object at private address 0x%08x", p1.Addr)
	}
	q1, _ := pg1.Var("privv")
	if q1 == nil || !layout.Private(q1.Addr) {
		t.Fatal("private object not in private region")
	}
	// Overloading: the same private address holds independent values.
	q2, _ := pg2.Var("privv")
	if q2.Addr != q1.Addr {
		t.Fatalf("dynamic private instances at different addresses (0x%x vs 0x%x); overloading not exercised", q1.Addr, q2.Addr)
	}
	q1.Store(1)
	q2.Store(2)
	v1, _ := q1.Load()
	v2, _ := q2.Load()
	if v1 != 1 || v2 != 2 {
		t.Fatalf("overloaded private address not independent: %d/%d", v1, v2)
	}
}

// TestGarbageCollectionPerusal covers the paper's manual-cleanup story:
// the shared file system provides "the ability to peruse all of the
// segments in existence".
func TestGarbageCollectionPerusal(t *testing.T) {
	s := hemlock.New()
	mustAsm(t, s, "/proj/a.o", counterModSrc)
	mustAsm(t, s, "/bin/main.o", trivialMainSrc)
	res, err := s.Link(&hemlock.LinkOptions{
		Output: "a.out",
		Modules: []hemlock.Module{
			{Name: "main.o", Class: hemlock.StaticPrivate},
			{Name: "a.o", Class: hemlock.StaticPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/proj"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	var segs []string
	s.FS.WalkFiles(func(p string, st shmfs.Stat) error {
		segs = append(segs, p)
		return nil
	})
	found := false
	for _, p := range segs {
		if p == "/proj/a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("segment not visible to perusal: %v", segs)
	}
	// Manual cleanup: the segment persists until explicitly destroyed.
	if err := s.FS.Unlink("/proj/a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FS.StatPath("/proj/a"); err == nil {
		t.Fatal("segment survived explicit destruction")
	}
}
