// Package svc implements the paper's client/server vision (section 4,
// "Utility Programs and Servers"): servers that communicate with clients
// through shared data rather than messages.
//
// Three interaction styles over the same key/value service:
//
//   - Table: the Hemlock way — the service's data structure lives in a
//     shared segment that clients simply read and write, synchronising
//     with a user-space spin lock ("when synchronous interaction is not
//     required, modification of data that will be examined by another
//     process at another time can be expected to consume significantly
//     less time than kernel-supported message passing");
//   - PDClient: synchronous calls through the protection-domain-switch
//     system call, with bulk data still in the shared segment ("even when
//     synchronous communication across protection domains is required,
//     sharing between the client and server can speed the call");
//   - the message-passing baseline in package baseline (the E-msg bench).
package svc

import (
	"errors"
	"fmt"

	"hemlock/internal/addrspace"
	"hemlock/internal/kern"
	"hemlock/internal/shmfs"
)

// Errors.
var (
	ErrFull     = errors.New("svc: table full")
	ErrNotFound = errors.New("svc: key not found")
)

// SpinLock is a user-space spin lock living in a shared segment word.
type SpinLock struct {
	P    *kern.Process
	Addr uint32
}

// Lock spins (with a bound, since the simulation is cooperative) until the
// lock is acquired.
func (l *SpinLock) Lock() error {
	for i := 0; i < 1_000_000; i++ {
		old, err := l.P.TestAndSet(l.Addr)
		if err != nil {
			return err
		}
		if old == 0 {
			return nil
		}
	}
	return fmt.Errorf("svc: spinlock 0x%08x stuck", l.Addr)
}

// TryLock attempts one acquisition.
func (l *SpinLock) TryLock() (bool, error) {
	old, err := l.P.TestAndSet(l.Addr)
	if err != nil {
		return false, err
	}
	return old == 0, nil
}

// Unlock releases the lock.
func (l *SpinLock) Unlock() error { return l.P.AtomicStore(l.Addr, 0) }

// Table layout in the segment:
//
//	base+0   lock word
//	base+4   capacity (slots)
//	base+8   live count
//	base+12  slots: [key | value | state] x capacity   (state 0=free 1=used 2=tombstone)
const (
	offLock  = 0
	offCap   = 4
	offLive  = 8
	offSlots = 12
	slotSize = 12

	stateFree = 0
	stateUsed = 1
	stateTomb = 2
)

// Table is a handle on the shared key/value table from one process's point
// of view. Every process maps the same segment at the same address, so
// handles in different protection domains operate on the same table.
type Table struct {
	P    *kern.Process
	Base uint32
	lock SpinLock
}

// SegmentBytes returns the segment size needed for capacity slots.
func SegmentBytes(capacity int) uint32 { return offSlots + uint32(capacity)*slotSize }

// CreateTable formats a table with the given capacity in the shared file
// at path, mapping it into p.
func CreateTable(k *kern.Kernel, p *kern.Process, path string, capacity int) (*Table, error) {
	st, err := k.MapSharedFile(p, path, SegmentBytes(capacity), addrspace.ProtRW)
	if err != nil {
		return nil, err
	}
	t := &Table{P: p, Base: st.Addr, lock: SpinLock{P: p, Addr: st.Addr + offLock}}
	if err := p.StoreWord(st.Addr+offCap, uint32(capacity)); err != nil {
		return nil, err
	}
	return t, nil
}

// OpenTable maps an existing table at path into p.
func OpenTable(k *kern.Kernel, p *kern.Process, path string) (*Table, error) {
	fst, err := k.FS.StatPath(path)
	if err != nil {
		return nil, err
	}
	st, err := k.MapSharedFile(p, path, fst.Size, addrspace.ProtRW)
	if err != nil {
		return nil, err
	}
	return &Table{P: p, Base: st.Addr, lock: SpinLock{P: p, Addr: st.Addr + offLock}}, nil
}

func (t *Table) capacity() (uint32, error) { return t.P.LoadWord(t.Base + offCap) }

func (t *Table) slotAddr(i uint32) uint32 { return t.Base + offSlots + i*slotSize }

// Put inserts or updates a key under the table lock: a direct shared-data
// operation, no server involvement at all.
func (t *Table) Put(key, val uint32) error {
	if err := t.lock.Lock(); err != nil {
		return err
	}
	defer t.lock.Unlock()
	return t.putLocked(key, val)
}

func (t *Table) putLocked(key, val uint32) error {
	capn, err := t.capacity()
	if err != nil {
		return err
	}
	idx := key % capn
	firstTomb := uint32(0xFFFFFFFF)
	for probe := uint32(0); probe < capn; probe++ {
		i := (idx + probe) % capn
		sa := t.slotAddr(i)
		state, err := t.P.LoadWord(sa + 8)
		if err != nil {
			return err
		}
		switch state {
		case stateUsed:
			k, err := t.P.LoadWord(sa)
			if err != nil {
				return err
			}
			if k == key {
				return t.P.StoreWord(sa+4, val)
			}
		case stateTomb:
			if firstTomb == 0xFFFFFFFF {
				firstTomb = i
			}
		case stateFree:
			if firstTomb != 0xFFFFFFFF {
				i = firstTomb
				sa = t.slotAddr(i)
			}
			if err := t.P.StoreWord(sa, key); err != nil {
				return err
			}
			if err := t.P.StoreWord(sa+4, val); err != nil {
				return err
			}
			if err := t.P.StoreWord(sa+8, stateUsed); err != nil {
				return err
			}
			live, err := t.P.LoadWord(t.Base + offLive)
			if err != nil {
				return err
			}
			return t.P.StoreWord(t.Base+offLive, live+1)
		}
	}
	if firstTomb != 0xFFFFFFFF {
		sa := t.slotAddr(firstTomb)
		if err := t.P.StoreWord(sa, key); err != nil {
			return err
		}
		if err := t.P.StoreWord(sa+4, val); err != nil {
			return err
		}
		if err := t.P.StoreWord(sa+8, stateUsed); err != nil {
			return err
		}
		live, err := t.P.LoadWord(t.Base + offLive)
		if err != nil {
			return err
		}
		return t.P.StoreWord(t.Base+offLive, live+1)
	}
	return ErrFull
}

// Get looks a key up under the lock.
func (t *Table) Get(key uint32) (uint32, error) {
	if err := t.lock.Lock(); err != nil {
		return 0, err
	}
	defer t.lock.Unlock()
	return t.getLocked(key)
}

func (t *Table) getLocked(key uint32) (uint32, error) {
	capn, err := t.capacity()
	if err != nil {
		return 0, err
	}
	idx := key % capn
	for probe := uint32(0); probe < capn; probe++ {
		sa := t.slotAddr((idx + probe) % capn)
		state, err := t.P.LoadWord(sa + 8)
		if err != nil {
			return 0, err
		}
		if state == stateFree {
			break
		}
		if state != stateUsed {
			continue
		}
		k, err := t.P.LoadWord(sa)
		if err != nil {
			return 0, err
		}
		if k == key {
			return t.P.LoadWord(sa + 4)
		}
	}
	return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
}

// Delete removes a key under the lock.
func (t *Table) Delete(key uint32) error {
	if err := t.lock.Lock(); err != nil {
		return err
	}
	defer t.lock.Unlock()
	capn, err := t.capacity()
	if err != nil {
		return err
	}
	idx := key % capn
	for probe := uint32(0); probe < capn; probe++ {
		sa := t.slotAddr((idx + probe) % capn)
		state, err := t.P.LoadWord(sa + 8)
		if err != nil {
			return err
		}
		if state == stateFree {
			break
		}
		if state != stateUsed {
			continue
		}
		k, err := t.P.LoadWord(sa)
		if err != nil {
			return err
		}
		if k == key {
			if err := t.P.StoreWord(sa+8, stateTomb); err != nil {
				return err
			}
			live, err := t.P.LoadWord(t.Base + offLive)
			if err != nil {
				return err
			}
			return t.P.StoreWord(t.Base+offLive, live-1)
		}
	}
	return fmt.Errorf("%w: %d", ErrNotFound, key)
}

// Len returns the live entry count.
func (t *Table) Len() (int, error) {
	n, err := t.P.LoadWord(t.Base + offLive)
	return int(n), err
}

// ---- synchronous service via protection-domain switch -----------------------

// Request layout for the PD service: a record in the shared segment.
const (
	reqOp    = 0 // 1=get 2=put 3=delete
	reqKey   = 4
	reqVal   = 8
	reqErr   = 12 // 0 ok, 1 not found, 2 full
	ReqBytes = 16
)

// PD service operations.
const (
	OpGet    = 1
	OpPut    = 2
	OpDelete = 3
)

// StartPDServer registers a protection-domain service around the server's
// table handle: clients place a request record in the shared request
// segment (which the server maps up front) and pass its address; the
// service manipulates the table in its own domain.
func StartPDServer(k *kern.Kernel, tab *Table, reqSegPath string) (int, error) {
	if _, err := k.MapSharedFile(tab.P, reqSegPath, 4096, addrspace.ProtRW); err != nil {
		return 0, err
	}
	return k.RegisterPDService(tab.P, func(s *kern.Process, req uint32) (uint32, error) {
		op, err := s.LoadWord(req + reqOp)
		if err != nil {
			return 0, err
		}
		key, err := s.LoadWord(req + reqKey)
		if err != nil {
			return 0, err
		}
		setErr := func(code uint32) error { return s.StoreWord(req+reqErr, code) }
		switch op {
		case OpGet:
			v, err := tab.Get(key)
			if errors.Is(err, ErrNotFound) {
				return 1, setErr(1)
			}
			if err != nil {
				return 0, err
			}
			if err := s.StoreWord(req+reqVal, v); err != nil {
				return 0, err
			}
			return 0, setErr(0)
		case OpPut:
			v, err := s.LoadWord(req + reqVal)
			if err != nil {
				return 0, err
			}
			if err := tab.Put(key, v); errors.Is(err, ErrFull) {
				return 2, setErr(2)
			} else if err != nil {
				return 0, err
			}
			return 0, setErr(0)
		case OpDelete:
			if err := tab.Delete(key); errors.Is(err, ErrNotFound) {
				return 1, setErr(1)
			} else if err != nil {
				return 0, err
			}
			return 0, setErr(0)
		}
		return 0, fmt.Errorf("svc: unknown op %d", op)
	}), nil
}

// PDClient calls the PD service through a per-client request record in a
// shared segment.
type PDClient struct {
	K   *kern.Kernel
	P   *kern.Process
	ID  int
	Req uint32 // address of this client's request record
}

// NewPDClient maps the request segment into the client and carves out a
// record at the given offset.
func NewPDClient(k *kern.Kernel, p *kern.Process, id int, reqSegPath string, off uint32) (*PDClient, error) {
	st, err := k.MapSharedFile(p, reqSegPath, off+ReqBytes, addrspace.ProtRW)
	if err != nil {
		return nil, err
	}
	return &PDClient{K: k, P: p, ID: id, Req: st.Addr + off}, nil
}

// Get fetches a key through the synchronous service.
func (c *PDClient) Get(key uint32) (uint32, error) {
	if err := c.P.StoreWord(c.Req+reqOp, OpGet); err != nil {
		return 0, err
	}
	if err := c.P.StoreWord(c.Req+reqKey, key); err != nil {
		return 0, err
	}
	code, err := c.K.PDCall(c.P, c.ID, c.Req)
	if err != nil {
		return 0, err
	}
	if code == 1 {
		return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	return c.P.LoadWord(c.Req + reqVal)
}

// Put stores a key through the synchronous service.
func (c *PDClient) Put(key, val uint32) error {
	if err := c.P.StoreWord(c.Req+reqOp, OpPut); err != nil {
		return err
	}
	if err := c.P.StoreWord(c.Req+reqKey, key); err != nil {
		return err
	}
	if err := c.P.StoreWord(c.Req+reqVal, val); err != nil {
		return err
	}
	code, err := c.K.PDCall(c.P, c.ID, c.Req)
	if err != nil {
		return err
	}
	if code == 2 {
		return ErrFull
	}
	return nil
}

// EnsureSegment creates the shared file for a table or request region if
// it does not exist yet.
func EnsureSegment(fs *shmfs.FS, path string) error {
	if _, err := fs.StatPath(path); err == nil {
		return nil
	}
	dir := shmfs.Clean(path)
	for i := len(dir) - 1; i > 0; i-- {
		if dir[i] == '/' {
			if err := fs.MkdirAll(dir[:i], shmfs.DefaultDirMode, 0); err != nil {
				return err
			}
			break
		}
	}
	_, err := fs.Create(path, shmfs.DefaultFileMode, 0)
	return err
}
