package svc

import (
	"errors"
	"sync"
	"testing"

	"hemlock/internal/kern"
)

func setupTable(t *testing.T, capacity int) (*kern.Kernel, *Table) {
	t.Helper()
	k := kern.New()
	if err := EnsureSegment(k.FS, "/srv/kv"); err != nil {
		t.Fatal(err)
	}
	server := k.Spawn(0)
	tab, err := CreateTable(k, server, "/srv/kv", capacity)
	if err != nil {
		t.Fatal(err)
	}
	return k, tab
}

func TestTablePutGetDelete(t *testing.T) {
	_, tab := setupTable(t, 64)
	for i := uint32(0); i < 40; i++ {
		if err := tab.Put(i*7, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 40; i++ {
		v, err := tab.Get(i * 7)
		if err != nil || v != i {
			t.Fatalf("get %d = %d, %v", i*7, v, err)
		}
	}
	if n, _ := tab.Len(); n != 40 {
		t.Fatalf("len = %d", n)
	}
	// Update in place.
	tab.Put(7, 999)
	if v, _ := tab.Get(7); v != 999 {
		t.Fatalf("update: %d", v)
	}
	if n, _ := tab.Len(); n != 40 {
		t.Fatalf("len after update = %d", n)
	}
	// Delete and tombstone reuse.
	if err := tab.Delete(14); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Get(14); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if err := tab.Put(14+64*2, 5); err != nil { // same bucket, reuses tombstone
		t.Fatal(err)
	}
	if v, _ := tab.Get(14 + 64*2); v != 5 {
		t.Fatal("tombstone reuse broken")
	}
}

func TestTableFull(t *testing.T) {
	_, tab := setupTable(t, 4)
	for i := uint32(0); i < 4; i++ {
		if err := tab.Put(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Put(99, 1); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull: %v", err)
	}
	// Deleting frees a slot.
	tab.Delete(2)
	if err := tab.Put(99, 1); err != nil {
		t.Fatalf("put after delete: %v", err)
	}
}

func TestTableSharedBetweenProcesses(t *testing.T) {
	k, serverTab := setupTable(t, 32)
	client := k.Spawn(0)
	clientTab, err := OpenTable(k, client, "/srv/kv")
	if err != nil {
		t.Fatal(err)
	}
	// Writes from either domain are visible in the other: the service IS
	// the data structure.
	if err := serverTab.Put(1, 100); err != nil {
		t.Fatal(err)
	}
	if v, err := clientTab.Get(1); err != nil || v != 100 {
		t.Fatalf("client get: %d, %v", v, err)
	}
	if err := clientTab.Put(2, 200); err != nil {
		t.Fatal(err)
	}
	if v, err := serverTab.Get(2); err != nil || v != 200 {
		t.Fatalf("server get: %d, %v", v, err)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	k, tab := setupTable(t, 8)
	other := k.Spawn(0)
	otherTab, err := OpenTable(k, other, "/srv/kv")
	if err != nil {
		t.Fatal(err)
	}
	l1 := SpinLock{P: tab.P, Addr: tab.Base}
	l2 := SpinLock{P: otherTab.P, Addr: otherTab.Base}
	if err := l1.Lock(); err != nil {
		t.Fatal(err)
	}
	ok, err := l2.TryLock()
	if err != nil || ok {
		t.Fatalf("lock not exclusive across processes: %v %v", ok, err)
	}
	if err := l1.Unlock(); err != nil {
		t.Fatal(err)
	}
	ok, err = l2.TryLock()
	if err != nil || !ok {
		t.Fatalf("lock not released: %v %v", ok, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	k, _ := setupTable(t, 512)
	const clients, each = 4, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := k.Spawn(0)
			tab, err := OpenTable(k, p, "/srv/kv")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < each; i++ {
				key := uint32(c*1000 + i)
				if err := tab.Put(key, key*2); err != nil {
					errs <- err
					return
				}
				v, err := tab.Get(key)
				if err != nil || v != key*2 {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	p := k.Spawn(0)
	tab, _ := OpenTable(k, p, "/srv/kv")
	if n, _ := tab.Len(); n != clients*each {
		t.Fatalf("len = %d, want %d", n, clients*each)
	}
}

func TestPDService(t *testing.T) {
	k, tab := setupTable(t, 64)
	if err := EnsureSegment(k.FS, "/srv/req"); err != nil {
		t.Fatal(err)
	}
	id, err := StartPDServer(k, tab, "/srv/req")
	if err != nil {
		t.Fatal(err)
	}
	client := k.Spawn(0)
	c, err := NewPDClient(k, client, id, "/srv/req", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(5, 55); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get(5)
	if err != nil || v != 55 {
		t.Fatalf("pd get: %d, %v", v, err)
	}
	if _, err := c.Get(6); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pd miss: %v", err)
	}
	// The synchronous path and the direct path see one table.
	direct, _ := tab.Get(5)
	if direct != 55 {
		t.Fatalf("server-side value %d", direct)
	}
	// Two clients use distinct request records in one segment.
	client2 := k.Spawn(0)
	c2, err := NewPDClient(k, client2, id, "/srv/req", ReqBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Put(9, 90); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get(9); v != 90 {
		t.Fatalf("cross-client visibility: %d", v)
	}
}
