package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocZeroed(t *testing.T) {
	p := NewPhysical(0)
	f, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f.Data {
		if b != 0 {
			t.Fatalf("byte %d not zero: %d", i, b)
		}
	}
	if f.Refs() != 1 {
		t.Fatalf("fresh frame refs = %d, want 1", f.Refs())
	}
}

func TestAllocDistinctPFNs(t *testing.T) {
	p := NewPhysical(0)
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		f, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if seen[f.PFN()] {
			t.Fatalf("duplicate PFN %d", f.PFN())
		}
		seen[f.PFN()] = true
	}
}

func TestLimitEnforced(t *testing.T) {
	p := NewPhysical(2)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	if _, err := p.Alloc(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	a.Release()
	c, err := p.Alloc()
	if err != nil {
		t.Fatalf("alloc after release failed: %v", err)
	}
	b.Release()
	c.Release()
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live = %d after releasing all, want 0", st.Live)
	}
}

func TestAllocNRollsBackOnFailure(t *testing.T) {
	p := NewPhysical(3)
	if _, err := p.AllocN(5); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("partial allocation leaked %d frames", st.Live)
	}
	fs, err := p.AllocN(3)
	if err != nil {
		t.Fatalf("AllocN within limit failed: %v", err)
	}
	if len(fs) != 3 {
		t.Fatalf("got %d frames, want 3", len(fs))
	}
}

func TestRetainRelease(t *testing.T) {
	p := NewPhysical(0)
	f, _ := p.Alloc()
	f.Retain()
	f.Retain()
	if f.Refs() != 3 {
		t.Fatalf("refs = %d, want 3", f.Refs())
	}
	f.Release()
	f.Release()
	if st := p.Stats(); st.Live != 1 {
		t.Fatalf("live = %d, want 1 (still one ref held)", st.Live)
	}
	f.Release()
	if st := p.Stats(); st.Live != 0 {
		t.Fatalf("live = %d, want 0", st.Live)
	}
}

func TestReleasePanicsWhenOverReleased(t *testing.T) {
	p := NewPhysical(0)
	f, _ := p.Alloc()
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	f.Release()
}

func TestCopyIndependence(t *testing.T) {
	p := NewPhysical(0)
	f, _ := p.Alloc()
	f.Data[17] = 0xAB
	g, err := f.Copy()
	if err != nil {
		t.Fatal(err)
	}
	if g.Data[17] != 0xAB {
		t.Fatal("copy did not preserve contents")
	}
	g.Data[17] = 0xCD
	if f.Data[17] != 0xAB {
		t.Fatal("copy aliases original")
	}
}

func TestStatsCounters(t *testing.T) {
	p := NewPhysical(0)
	f, _ := p.Alloc()
	g, _ := p.Alloc()
	f.Release()
	g.Release()
	st := p.Stats()
	if st.Allocs != 2 || st.Frees != 2 {
		t.Fatalf("allocs=%d frees=%d, want 2/2", st.Allocs, st.Frees)
	}
}

// Property: for any sequence of extra retains, it takes exactly retains+1
// releases to free the frame.
func TestRefCountProperty(t *testing.T) {
	p := NewPhysical(0)
	f := func(extra uint8) bool {
		fr, err := p.Alloc()
		if err != nil {
			return false
		}
		n := int(extra % 16)
		for i := 0; i < n; i++ {
			fr.Retain()
		}
		for i := 0; i < n; i++ {
			fr.Release()
			if fr.Refs() != n-i {
				return false
			}
		}
		fr.Release()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyWatermarkUntrackedIsFree(t *testing.T) {
	p := NewPhysical(0)
	f, _ := p.Alloc()
	f.NoteStoreRange(10, 5)
	if _, _, ok := f.TakeDirtyRange(); ok {
		t.Fatal("untracked frame recorded a dirty range")
	}
}

func TestDirtyWatermarkMergesRanges(t *testing.T) {
	p := NewPhysical(0)
	f, _ := p.Alloc()
	f.SetTracked(true)
	f.NoteStoreRange(100, 4)
	f.NoteStoreRange(8, 2)
	f.NoteStoreRange(50, 1)
	lo, end, ok := f.TakeDirtyRange()
	if !ok || lo != 8 || end != 104 {
		t.Fatalf("got [%d,%d) ok=%v, want [8,104) true", lo, end, ok)
	}
	if _, _, ok := f.TakeDirtyRange(); ok {
		t.Fatal("take did not reset the watermark")
	}
	// Word writers feed the watermark too.
	f.StoreWordBE(256, 1)
	f.AddWordBE(12, 1)
	lo, end, ok = f.TakeDirtyRange()
	if !ok || lo != 12 || end != 260 {
		t.Fatalf("word writers: got [%d,%d) ok=%v, want [12,260) true", lo, end, ok)
	}
	f.SetTracked(false)
	f.NoteStoreRange(0, 4)
	if _, _, ok := f.TakeDirtyRange(); ok {
		t.Fatal("disabling tracking did not stop recording")
	}
}

// Property: under concurrent writers the merged watermark covers every
// byte any writer touched (it may be wider, never narrower).
func TestDirtyWatermarkNeverUnderReports(t *testing.T) {
	p := NewPhysical(0)
	f, _ := p.Alloc()
	f.SetTracked(true)
	const writers = 8
	done := make(chan [2]uint32, writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			lo := uint32(i * 64)
			f.NoteStoreRange(lo, 16)
			done <- [2]uint32{lo, lo + 16}
		}(i)
	}
	wantLo, wantEnd := uint32(PageSize), uint32(0)
	for i := 0; i < writers; i++ {
		r := <-done
		if r[0] < wantLo {
			wantLo = r[0]
		}
		if r[1] > wantEnd {
			wantEnd = r[1]
		}
	}
	lo, end, ok := f.TakeDirtyRange()
	if !ok || lo > wantLo || end < wantEnd {
		t.Fatalf("watermark [%d,%d) ok=%v under-reports [%d,%d)", lo, end, ok, wantLo, wantEnd)
	}
}

func TestConcurrentAlloc(t *testing.T) {
	p := NewPhysical(0)
	done := make(chan []*Frame, 8)
	for i := 0; i < 8; i++ {
		go func() {
			var got []*Frame
			for j := 0; j < 50; j++ {
				f, err := p.Alloc()
				if err == nil {
					got = append(got, f)
				}
			}
			done <- got
		}()
	}
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		for _, f := range <-done {
			if seen[f.PFN()] {
				t.Fatalf("duplicate PFN %d under concurrency", f.PFN())
			}
			seen[f.PFN()] = true
		}
	}
	if len(seen) != 400 {
		t.Fatalf("got %d frames, want 400", len(seen))
	}
}
