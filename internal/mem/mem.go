// Package mem provides the simulated paged physical memory that underlies
// every Hemlock address space and every shared-file-system file.
//
// Physical memory is a pool of fixed-size frames. Frames are reference
// counted so that a single frame can back a shared-file-system file, be
// mapped into any number of simulated address spaces, and be released only
// when the last user drops it. The paper's whole point is that mapped
// segments and file contents are the same bytes; sharing frames is how the
// simulation keeps that true.
package mem

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"

	"hemlock/internal/obsv"
)

// PageSize is the size in bytes of a physical frame and of a virtual page.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// ErrOutOfMemory is returned when the physical memory pool is exhausted.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// Frame is one page of simulated physical memory. The zero value is not
// usable; frames are obtained from a Physical pool.
//
// The reference count and the store-version counter are atomics so that
// the hot paths — Retain/Release on fork and map operations, version
// checks on every interpreted instruction — never touch the pool mutex.
type Frame struct {
	Data [PageSize]byte

	pool *Physical
	pfn  int
	refs atomic.Int64
	ver  atomic.Uint64

	// Dirty-byte watermark, maintained only while tracked is set (netshm
	// tracks the frames of segments it homes). dirty packs the byte range
	// touched since the watermark was last taken: lo<<32 | end (end
	// exclusive); 0 means clean. Writers merge their range with a CAS
	// loop, so the watermark never under-reports — a torn or lost update
	// is impossible, only a wider-than-necessary range.
	tracked atomic.Bool
	dirty   atomic.Uint64
}

// PFN returns the frame's physical frame number within its pool.
func (f *Frame) PFN() int { return f.pfn }

// Physical is a pool of physical frames with a simple free list. It is safe
// for concurrent use.
type Physical struct {
	mu       sync.Mutex
	limit    int // maximum number of live frames; 0 means unlimited
	live     int
	nextPFN  int
	allocCnt uint64
	freeCnt  uint64
}

// NewPhysical returns a pool that will hand out at most limitFrames frames
// at any one time. limitFrames <= 0 means unlimited.
func NewPhysical(limitFrames int) *Physical {
	return &Physical{limit: limitFrames}
}

// Alloc returns a zeroed frame with reference count 1.
func (p *Physical) Alloc() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.limit > 0 && p.live >= p.limit {
		return nil, fmt.Errorf("%w: limit %d frames", ErrOutOfMemory, p.limit)
	}
	f := &Frame{pool: p, pfn: p.nextPFN}
	f.refs.Store(1)
	p.nextPFN++
	p.live++
	p.allocCnt++
	return f, nil
}

// AllocN allocates n zeroed frames under a single pool lock. It either
// delivers all n or fails without allocating anything, so the fork and map
// paths pay one mutex round trip instead of n.
func (p *Physical) AllocN(n int) ([]*Frame, error) {
	if n <= 0 {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.limit > 0 && p.live+n > p.limit {
		return nil, fmt.Errorf("%w: limit %d frames", ErrOutOfMemory, p.limit)
	}
	frames := make([]*Frame, n)
	for i := range frames {
		f := &Frame{pool: p, pfn: p.nextPFN}
		f.refs.Store(1)
		p.nextPFN++
		frames[i] = f
	}
	p.live += n
	p.allocCnt += uint64(n)
	return frames, nil
}

// Retain increments the frame's reference count. It is used when a frame is
// mapped into an additional address space or retained by a file.
func (f *Frame) Retain() {
	if f.refs.Add(1) <= 1 {
		panic("mem: Retain on released frame")
	}
}

// Release decrements the reference count, returning the frame to the pool
// when it reaches zero.
func (f *Frame) Release() {
	n := f.refs.Add(-1)
	if n < 0 {
		panic("mem: Release on released frame")
	}
	if n == 0 {
		f.pool.mu.Lock()
		f.pool.live--
		f.pool.freeCnt++
		f.pool.mu.Unlock()
	}
}

// Refs reports the current reference count (for tests and fsck).
func (f *Frame) Refs() int { return int(f.refs.Load()) }

// NoteStore records a mutation of the frame's bytes by bumping the
// store-version counter. Every writer — the VM's store fast path, the
// address-space write API, the shared file system — must call it BEFORE
// the bytes change. Two VM consumers validate against Version: the
// predecoded instruction cache on every fetch, and the block-translation
// engine on every block entry (including entries through chain pointers).
// That one counter is how a store into live text — ldl patching a
// trampoline or jump-table slot, self-modifying code, a sibling process
// writing through a shared frame — invalidates stale predecode and stale
// translated blocks on the very next fetch.
func (f *Frame) NoteStore() { f.ver.Add(1) }

// NoteStoreRange is NoteStore plus the dirty-byte watermark: writers that
// know the byte range they are about to touch (the file system's WriteAt,
// the address-space write API, the VM's word and byte stores) call this so
// that a tracked frame records exactly which bytes changed. The
// replication layer (netshm) turns the watermark into byte-range deltas
// instead of shipping whole pages.
func (f *Frame) NoteStoreRange(off, n uint32) {
	f.ver.Add(1)
	f.noteRange(off, n)
}

// noteRange merges [off, off+n) into the dirty watermark of a tracked
// frame. The untracked fast path is one atomic bool load.
func (f *Frame) noteRange(off, n uint32) {
	if n == 0 || !f.tracked.Load() {
		return
	}
	end := off + n
	if end > PageSize {
		end = PageSize
	}
	for {
		old := f.dirty.Load()
		lo, e := uint32(old>>32), uint32(old)
		if old == 0 {
			lo, e = off, end
		} else {
			if off < lo {
				lo = off
			}
			if end > e {
				e = end
			}
		}
		nv := uint64(lo)<<32 | uint64(e)
		if old == nv || f.dirty.CompareAndSwap(old, nv) {
			return
		}
	}
}

// SetTracked switches dirty-byte watermark maintenance on or off.
// Enabling tracking starts with a clean watermark: bytes written before
// this call are the caller's business (netshm snapshots frame versions at
// Serve time and falls back to whole-page shipping when the version moved
// without a watermark).
func (f *Frame) SetTracked(on bool) {
	f.tracked.Store(on)
	if !on {
		f.dirty.Store(0)
	}
}

// TakeDirtyRange returns and resets the dirty watermark: the smallest
// [lo, end) covering every byte written through a range-aware writer since
// the last take. ok is false when nothing was recorded (clean, or the
// frame is not tracked).
func (f *Frame) TakeDirtyRange() (lo, end uint32, ok bool) {
	v := f.dirty.Swap(0)
	if v == 0 {
		return 0, 0, false
	}
	return uint32(v >> 32), uint32(v), true
}

// Version returns the frame's store-version counter.
func (f *Frame) Version() uint64 { return f.ver.Load() }

// RestoreVersion sets the store-version counter to a value recorded by an
// earlier run. Only boot-time loaders (shmfs image restore) may call it,
// and only on frames no CPU has cached translations against: file
// fingerprints (shmfs.ContentVersion) are built from these counters, so a
// reboot must bring them back or every fingerprint recorded before the
// reboot — the link cache's invalidation manifest among them — would look
// stale.
func (f *Frame) RestoreVersion(v uint64) { f.ver.Store(v) }

// Stats describes pool usage.
type Stats struct {
	Live   int    // frames currently referenced
	Limit  int    // configured limit (0 = unlimited)
	Allocs uint64 // total Alloc calls
	Frees  uint64 // total frames fully released
}

// Stats returns a snapshot of pool usage.
func (p *Physical) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Live: p.live, Limit: p.limit, Allocs: p.allocCnt, Frees: p.freeCnt}
}

// RegisterObsv publishes the pool's usage as gauges in the registry,
// sampled live at snapshot time so the snapshot and Stats() always agree:
// mem.frames_live, mem.frames_limit, mem.frame_allocs, mem.frame_frees.
func (p *Physical) RegisterObsv(r *obsv.Registry) {
	r.GaugeFunc("mem.frames_live", func() int64 { return int64(p.Stats().Live) })
	r.GaugeFunc("mem.frames_limit", func() int64 { return int64(p.Stats().Limit) })
	r.GaugeFunc("mem.frame_allocs", func() int64 { return int64(p.Stats().Allocs) })
	r.GaugeFunc("mem.frame_frees", func() int64 { return int64(p.Stats().Frees) })
}

// Copy returns a new frame whose contents are a copy of f (reference count
// 1). Used by fork for private pages.
func (f *Frame) Copy() (*Frame, error) {
	g, err := f.pool.Alloc()
	if err != nil {
		return nil, err
	}
	g.Data = f.Data
	return g, nil
}

// ---- atomic word access -----------------------------------------------------
//
// With true SMP, guest CPUs on different host goroutines load and store the
// same frames concurrently. Word-granular guest accesses therefore go
// through host-atomic 32-bit operations on the frame word, converted
// between guest (big-endian) and host byte order here. On little-endian
// hosts the conversion is the same bswap binary.BigEndian performed, and an
// aligned 32-bit atomic load/store is a plain MOV on x86/arm64 — the
// single-CPU fast paths cost what they did before, while concurrent CPUs
// get tear-free words and the race detector gets a sound happens-before
// model of guest memory. Byte and bulk accesses stay plain: guests that
// share sub-word data must synchronise around it, exactly as the paper's
// processes must.

// hostIsBig reports the host byte order, decided once at init.
var hostIsBig = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 0
}()

// beWord converts between guest big-endian and host byte order (the
// conversion is its own inverse).
func beWord(v uint32) uint32 {
	if hostIsBig {
		return v
	}
	return bits.ReverseBytes32(v)
}

// wordPtr returns the aligned 32-bit host word covering frame offset off.
// Frame.Data opens a heap-allocated struct, so it is at least 8-byte
// aligned and every 4-aligned offset is atomically accessible.
func (f *Frame) wordPtr(off uint32) *uint32 {
	return (*uint32)(unsafe.Pointer(&f.Data[off&(PageSize-1)&^3]))
}

// LoadWordBE atomically loads the guest word at the aligned frame offset.
func (f *Frame) LoadWordBE(off uint32) uint32 {
	return beWord(atomic.LoadUint32(f.wordPtr(off)))
}

// StoreWordBE atomically stores the guest word at the aligned frame offset,
// bumping the store-version counter first (writers bump BEFORE the bytes
// change; see NoteStore).
func (f *Frame) StoreWordBE(off, v uint32) {
	f.ver.Add(1)
	f.noteRange(off&(PageSize-1)&^3, 4)
	atomic.StoreUint32(f.wordPtr(off), beWord(v))
}

// SwapWordBE atomically exchanges the guest word at the aligned frame
// offset, returning the previous value. This is the test-and-set primitive:
// the host atomic supplies both the atomicity and the acquire/release
// ordering guest spin locks need.
func (f *Frame) SwapWordBE(off, v uint32) uint32 {
	f.ver.Add(1)
	f.noteRange(off&(PageSize-1)&^3, 4)
	return beWord(atomic.SwapUint32(f.wordPtr(off), beWord(v)))
}

// CompareAndSwapWordBE atomically replaces old with new at the aligned
// frame offset, reporting whether the swap happened. The store-version
// counter bumps even on failure — a spurious invalidation is harmless, a
// missed one is not.
func (f *Frame) CompareAndSwapWordBE(off, old, new uint32) bool {
	f.ver.Add(1)
	f.noteRange(off&(PageSize-1)&^3, 4)
	return atomic.CompareAndSwapUint32(f.wordPtr(off), beWord(old), beWord(new))
}

// AddWordBE atomically adds delta to the guest word at the aligned frame
// offset and returns the new value. The add happens in guest byte order, so
// it is a CAS loop rather than a host atomic add.
func (f *Frame) AddWordBE(off, delta uint32) uint32 {
	p := f.wordPtr(off)
	f.noteRange(off&(PageSize-1)&^3, 4)
	for {
		o := atomic.LoadUint32(p)
		n := beWord(o) + delta
		f.ver.Add(1)
		if atomic.CompareAndSwapUint32(p, o, beWord(n)) {
			return n
		}
	}
}
