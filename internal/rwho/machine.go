package rwho

// The distributed half of the rwhod scenario: a fleet of simulated
// machines, each with its own kernel and shared file system, connected by
// a broadcast network. Every machine's rwhod periodically broadcasts its
// local status and folds received packets into its local shared-memory
// database, where the rwho/ruptime utilities read it.

import (
	"encoding/binary"
	"fmt"

	"hemlock/internal/core"
	"hemlock/internal/netsim"
	"hemlock/internal/objfile"
)

// Machine is one host: its own Hemlock system, its shared status
// database, and a network interface.
type Machine struct {
	Host string
	Sys  *core.System
	DB   *SharedDB
	Node *netsim.Node

	image *objfile.Image
	boot  uint32
	index int
}

// NewMachine boots a host named host, installs the whod module sized for
// maxHosts, starts the "daemon" (the process whose mapping the DB handle
// uses), and attaches to the network.
func NewMachine(net *netsim.Network, host string, index, maxHosts int) (*Machine, error) {
	sys := core.NewSystem()
	im, err := Install(sys, maxHosts)
	if err != nil {
		return nil, err
	}
	daemon, err := sys.Launch(im, 0, nil)
	if err != nil {
		return nil, err
	}
	db, err := Open(daemon)
	if err != nil {
		return nil, err
	}
	return &Machine{
		Host:  host,
		Sys:   sys,
		DB:    db,
		Node:  net.Attach(host),
		image: im,
		boot:  1000 + uint32(index),
		index: index,
	}, nil
}

// hostStatus is the deterministic per-host workload every fleet flavour
// shares.
func hostStatus(host string, index int, boot, t uint32) Status {
	return Status{
		Host:     host,
		RecvTime: t,
		BootTime: boot,
		Load:     [3]uint32{uint32(index*7+int(t))%400 + 1, uint32(index*13)%300 + 1, uint32(index*3)%200 + 1},
		NUsers:   uint32(index) % 12,
	}
}

// Status reports the machine's own record at tick t.
func (m *Machine) Status(t uint32) Status {
	return hostStatus(m.Host, m.index, m.boot, t)
}

// Tick is one rwhod broadcast round: record the local status and send it
// to every peer.
func (m *Machine) Tick(t uint32) error {
	st := m.Status(t)
	if err := m.DB.Update(st); err != nil {
		return fmt.Errorf("rwho: %s: local update: %w", m.Host, err)
	}
	return m.Node.Broadcast(encodeSlot(st))
}

// Drain processes every queued peer packet into the local database,
// returning how many were applied.
func (m *Machine) Drain() (int, error) {
	n := 0
	for {
		d, ok := m.Node.Recv()
		if !ok {
			return n, nil
		}
		if len(d.Payload) != SlotSize {
			continue // runt packet; rwhod ignores it
		}
		st := decodeSlot(d.Payload)
		if binary.BigEndian.Uint32(d.Payload[offInUse:]) == 0 || st.Host == "" {
			continue
		}
		if err := m.DB.Update(st); err != nil {
			return n, fmt.Errorf("rwho: %s: applying packet from %s: %w", m.Host, d.From, err)
		}
		n++
	}
}

// Ruptime runs the assembly ruptime utility on this machine and returns
// its console output and host count.
func (m *Machine) Ruptime() (string, int, error) { return runRuptime(m.Sys) }

func runRuptime(s *core.System) (string, int, error) {
	im, err := InstallUptime(s)
	if err != nil {
		return "", 0, err
	}
	pg, err := s.Launch(im, 0, nil)
	if err != nil {
		return "", 0, err
	}
	if err := pg.Run(10_000_000); err != nil {
		return "", 0, err
	}
	return pg.Output(), pg.P.ExitCode, nil
}

// ---- file-based baseline machine -----------------------------------------------

// FileMachine is the pre-Hemlock host: same network, but rwhod keeps one
// spool file per remote machine instead of a shared segment.
type FileMachine struct {
	Host string
	Sys  *core.System
	DB   *FileDB
	Node *netsim.Node

	boot  uint32
	index int
}

// NewFileMachine boots a host whose rwhod uses the file database.
func NewFileMachine(net *netsim.Network, host string, index int) (*FileMachine, error) {
	sys := core.NewSystem()
	db, err := NewFileDB(sys.FS, "/var/rwho", 0)
	if err != nil {
		return nil, err
	}
	return &FileMachine{
		Host:  host,
		Sys:   sys,
		DB:    db,
		Node:  net.Attach(host),
		boot:  1000 + uint32(index),
		index: index,
	}, nil
}

// Status reports the machine's own record at tick t.
func (m *FileMachine) Status(t uint32) Status {
	return hostStatus(m.Host, m.index, m.boot, t)
}

// Tick is one rwhod round: rewrite the local file, broadcast the packet.
func (m *FileMachine) Tick(t uint32) error {
	st := m.Status(t)
	if err := m.DB.Update(st); err != nil {
		return fmt.Errorf("rwho: %s: local update: %w", m.Host, err)
	}
	return m.Node.Broadcast(encodeSlot(st))
}

// Drain folds every queued packet into the spool directory, one file
// rewrite per packet — the cost the paper's rwhod rewrite eliminated.
func (m *FileMachine) Drain() (int, error) {
	n := 0
	for {
		d, ok := m.Node.Recv()
		if !ok {
			return n, nil
		}
		if len(d.Payload) != SlotSize {
			continue
		}
		st := decodeSlot(d.Payload)
		if binary.BigEndian.Uint32(d.Payload[offInUse:]) == 0 || st.Host == "" {
			continue
		}
		if err := m.DB.Update(st); err != nil {
			return n, fmt.Errorf("rwho: %s: applying packet from %s: %w", m.Host, d.From, err)
		}
		n++
	}
}
