package rwho

// The netshm half of the rwhod scenario: instead of every machine
// broadcasting raw packets and folding them into a private copy of the
// database, the whod table becomes ONE distributed shared segment. The
// fleet elects machine 0 the segment's home; every other machine forwards
// its status there as an application datagram, the home's rwhod stores it
// into the table through its mapping, and netshm replicates the dirtied
// pages back out. A replica's ruptime then scans its local mapping — same
// virtual address, same compiled code — and sees the whole network.

import (
	"encoding/binary"
	"fmt"

	"hemlock/internal/core"
	"hemlock/internal/netshm"
	"hemlock/internal/netsim"
)

// NetMachine is one host of a netshm-backed rwho fleet.
type NetMachine struct {
	Host string
	Sys  *core.System
	DB   *SharedDB
	NS   *netshm.Node

	seg      string // shmfs path of the whod segment (same on every machine)
	tableOff uint32 // byte offset of whod_table within the segment
	home     string // name of the segment's home machine
	isHome   bool
	boot     uint32
	index    int
}

// NetFleet is a set of hosts whose whod tables are one replicated segment.
type NetFleet struct {
	Fleet    *netshm.Fleet
	Machines []*NetMachine

	seg string
}

// NewNetFleet boots n identically-installed machines, registers machine 0
// as the whod segment's home, and attaches the rest as replicas.
func NewNetFleet(net *netsim.Network, n, maxHosts int) (*NetFleet, error) {
	f := &NetFleet{Fleet: netshm.NewFleet(net, netshm.Config{})}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("machine%02d", i)
		sys := core.NewSystem()
		im, err := Install(sys, maxHosts)
		if err != nil {
			return nil, fmt.Errorf("rwho: installing on %s: %w", host, err)
		}
		daemon, err := sys.Launch(im, 0, nil)
		if err != nil {
			return nil, err
		}
		db, err := Open(daemon)
		if err != nil {
			return nil, err
		}
		// The table symbol's address leads back to the segment file (the
		// /lib/whod public instance) and the table's offset inside it.
		seg, off, err := sys.FS.AddrToPath(db.TableAddr())
		if err != nil {
			return nil, fmt.Errorf("rwho: %s: locating whod segment: %w", host, err)
		}
		m := &NetMachine{
			Host: host, Sys: sys, DB: db,
			seg: seg, tableOff: off,
			home: "machine00", isHome: i == 0,
			boot: 1000 + uint32(i), index: i,
		}
		m.NS = f.Fleet.Add(host, sys)
		if m.isHome {
			f.seg = seg
			if err := m.NS.Serve(seg); err != nil {
				return nil, err
			}
			m.NS.OnApp(m.applyPacket)
		} else {
			if seg != f.seg {
				return nil, fmt.Errorf("rwho: %s: whod segment at %s, home has %s", host, seg, f.seg)
			}
			if err := m.NS.Attach(seg, m.home); err != nil {
				return nil, err
			}
		}
		f.Machines = append(f.Machines, m)
	}
	return f, nil
}

// Status reports the machine's own record at tick t.
func (m *NetMachine) Status(t uint32) Status {
	return hostStatus(m.Host, m.index, m.boot, t)
}

// Tick is one rwhod round: the home stores its record straight into the
// shared table; everyone else forwards it to the home.
func (m *NetMachine) Tick(t uint32) error {
	st := m.Status(t)
	if m.isHome {
		return m.store(st)
	}
	return m.NS.SendApp(m.home, encodeSlot(st))
}

// store writes one record into the shared table through the daemon's
// mapping, then tells netshm which bytes changed.
func (m *NetMachine) store(st Status) error {
	slot, err := m.DB.UpdateSlot(st)
	if err != nil {
		return fmt.Errorf("rwho: %s: shared update: %w", m.Host, err)
	}
	return m.NS.MarkDirty(m.seg, m.tableOff+uint32(slot)*SlotSize, SlotSize)
}

// applyPacket is the home's handler for forwarded status datagrams.
func (m *NetMachine) applyPacket(from string, payload []byte) {
	if len(payload) != SlotSize {
		return // runt packet; rwhod ignores it
	}
	st := decodeSlot(payload)
	if binary.BigEndian.Uint32(payload[offInUse:]) == 0 || st.Host == "" {
		return
	}
	m.store(st)
}

// Ruptime runs the assembly ruptime utility against the local replica.
func (m *NetMachine) Ruptime() (string, int, error) { return runRuptime(m.Sys) }

// Seg returns the shmfs path of the replicated whod segment.
func (f *NetFleet) Seg() string { return f.seg }

// Run advances the fleet's virtual clock n ticks.
func (f *NetFleet) Run(n int) { f.Fleet.Run(n) }

// Round is one full rwhod cycle: every machine contributes its status,
// then the fleet ticks until every replica has the home's generation (or
// maxTicks pass). It returns the ticks spent converging.
func (f *NetFleet) Round(t uint32, maxTicks int) (int, error) {
	for _, m := range f.Machines {
		if err := m.Tick(t); err != nil {
			return 0, err
		}
	}
	// One tick delivers the forwarded packets to the home and pushes the
	// resulting updates; the rest is convergence under whatever loss the
	// network injects.
	f.Fleet.Tick()
	ticks, ok := f.Fleet.WaitConverged(f.seg, maxTicks)
	if !ok {
		return ticks, fmt.Errorf("rwho: fleet did not converge within %d ticks", maxTicks)
	}
	return ticks + 1, nil
}
