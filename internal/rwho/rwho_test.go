package rwho

import (
	"errors"
	"strings"
	"testing"

	"fmt"

	"hemlock/internal/core"
	"hemlock/internal/netsim"
)

func TestFileDBRoundTrip(t *testing.T) {
	s := core.NewSystem()
	db, err := NewFileDB(s.FS, "/var/rwho", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Update(SyntheticStatus(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d records", len(got))
	}
	want := SyntheticStatus(3, 100)
	if got[3] != want {
		t.Fatalf("record 3 = %+v, want %+v", got[3], want)
	}
	// Update overwrites in place.
	upd := SyntheticStatus(3, 222)
	db.Update(upd)
	got, _ = db.Query()
	if len(got) != 5 || got[3] != upd {
		t.Fatalf("after update: %+v", got[3])
	}
}

func TestSharedDBThroughHemlock(t *testing.T) {
	s := core.NewSystem()
	im, err := Install(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The daemon writes through one process...
	daemon, err := s.Launch(im, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ddb, err := Open(daemon)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ddb.Update(SyntheticStatus(i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// ...and a separate rwho process reads the same segment directly.
	client, err := s.Launch(im, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cdb, err := Open(client)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cdb.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("client sees %d records", len(got))
	}
	if got[2] != SyntheticStatus(2, 100) {
		t.Fatalf("record 2 = %+v", got[2])
	}
	st, err := cdb.Lookup("machine04")
	if err != nil || st != SyntheticStatus(4, 100) {
		t.Fatalf("lookup: %+v, %v", st, err)
	}
	if _, err := cdb.Lookup("nonesuch"); !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("lookup missing host: %v", err)
	}
}

func TestSharedAndFileDBAgree(t *testing.T) {
	s := core.NewSystem()
	im, err := Install(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(im, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := Open(pg)
	if err != nil {
		t.Fatal(err)
	}
	fdb, err := NewFileDB(s.FS, "/var/rwho", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st := SyntheticStatus(i, 7)
		if err := sdb.Update(st); err != nil {
			t.Fatal(err)
		}
		if err := fdb.Update(st); err != nil {
			t.Fatal(err)
		}
	}
	a, err := sdb.Query()
	if err != nil {
		t.Fatal(err)
	}
	b, err := fdb.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSharedDBTableFull(t *testing.T) {
	s := core.NewSystem()
	im, err := Install(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(im, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(pg)
	if err != nil {
		t.Fatal(err)
	}
	db.Update(SyntheticStatus(0, 1))
	db.Update(SyntheticStatus(1, 1))
	if err := db.Update(SyntheticStatus(2, 1)); !errors.Is(err, ErrTableFull) {
		t.Fatalf("want ErrTableFull, got %v", err)
	}
	// Re-updating an existing host still works.
	if err := db.Update(SyntheticStatus(1, 9)); err != nil {
		t.Fatal(err)
	}
}

func TestSlotCodecRoundTrip(t *testing.T) {
	st := SyntheticStatus(7, 12345)
	got := decodeSlot(encodeSlot(st))
	if got != st {
		t.Fatalf("%+v != %+v", got, st)
	}
}

func TestRuptimeAssemblyUtility(t *testing.T) {
	// The whole loop, with the query side written in R3K-lite assembly:
	// compiled code scanning the shared table that a hosted daemon wrote.
	s := core.NewSystem()
	im, err := Install(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := s.Launch(im, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := Open(daemon)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := db.Update(SyntheticStatus(i, 9)); err != nil {
			t.Fatal(err)
		}
	}
	upImg, err := InstallUptime(s)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(upImg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 3 {
		t.Fatalf("ruptime counted %d hosts, want 3", pg.P.ExitCode)
	}
	out := pg.Output()
	for i := 0; i < 3; i++ {
		host := SyntheticStatus(i, 9).Host
		if !strings.Contains(out, host+"\n") {
			t.Fatalf("output missing %q:\n%s", host, out)
		}
	}
}

func TestDistributedFleetConverges(t *testing.T) {
	// Five machines, each its own kernel and shared fs, exchanging rwhod
	// broadcasts. After a round of ticks and drains, every machine's
	// shared database lists every host.
	net := netsim.New()
	const fleet = 5
	var machines []*Machine
	for i := 0; i < fleet; i++ {
		m, err := NewMachine(net, fmt.Sprintf("machine%02d", i), i, fleet+2)
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)
	}
	for _, m := range machines {
		if err := m.Tick(1); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range machines {
		applied, err := m.Drain()
		if err != nil {
			t.Fatal(err)
		}
		if applied != fleet-1 {
			t.Fatalf("%s applied %d packets, want %d", m.Host, applied, fleet-1)
		}
	}
	for _, m := range machines {
		got, err := m.DB.Query()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != fleet {
			t.Fatalf("%s sees %d hosts", m.Host, len(got))
		}
		// The assembly ruptime agrees.
		out, count, err := m.Ruptime()
		if err != nil {
			t.Fatal(err)
		}
		if count != fleet {
			t.Fatalf("%s ruptime counted %d", m.Host, count)
		}
		for i := 0; i < fleet; i++ {
			if !strings.Contains(out, fmt.Sprintf("machine%02d", i)) {
				t.Fatalf("%s ruptime missing machine%02d:\n%s", m.Host, i, out)
			}
		}
	}
}

func TestDistributedFleetSurvivesLoss(t *testing.T) {
	// A lossy LAN: every third datagram to machine01 is dropped; later
	// rounds re-deliver fresh status, so the fleet still converges.
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool {
		return to == "machine01" && seq%3 == 0
	}
	const fleet = 4
	var machines []*Machine
	for i := 0; i < fleet; i++ {
		m, err := NewMachine(net, fmt.Sprintf("machine%02d", i), i, fleet+2)
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)
	}
	for tick := uint32(1); tick <= 5; tick++ {
		for _, m := range machines {
			if err := m.Tick(tick); err != nil {
				t.Fatal(err)
			}
		}
		for _, m := range machines {
			if _, err := m.Drain(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, m := range machines {
		got, err := m.DB.Query()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != fleet {
			t.Fatalf("%s sees %d hosts after lossy rounds", m.Host, len(got))
		}
	}
	if net.Stats().Dropped == 0 {
		t.Fatal("loss model never fired")
	}
}
