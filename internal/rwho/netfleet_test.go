package rwho

import (
	"strings"
	"testing"

	"hemlock/internal/netsim"
)

// TestNetFleetConvergesUnderLoss is the rwho-on-netshm end-to-end: eight
// machines, one replicated whod segment homed on machine00, a LAN
// dropping a deterministic 20% of datagrams. After a few rounds every
// replica's ruptime — compiled code scanning its local mapping — sees
// every host.
func TestNetFleetConvergesUnderLoss(t *testing.T) {
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool { return seq%5 == 0 }
	const hosts = 8
	f, err := NewNetFleet(net, hosts, hosts)
	if err != nil {
		t.Fatal(err)
	}

	for round := uint32(1); round <= 3; round++ {
		ticks, err := f.Round(round, 400)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		t.Logf("round %d converged in %d ticks", round, ticks)
	}

	// Every machine — home and replicas alike — now answers queries from
	// its local mapping, and after convergence they all see the SAME
	// table. (Status forwarding is fire-and-forget like rwhod's UDP, so a
	// host's latest packet can be lost; what may never happen is replicas
	// disagreeing with the home.)
	truth, err := f.Machines[0].DB.Query()
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != hosts {
		t.Fatalf("home sees %d hosts, want %d", len(truth), hosts)
	}
	for i, st := range truth {
		m := f.Machines[i]
		if st.Host != m.Host || st.BootTime != m.boot || st.RecvTime < 1 || st.RecvTime > 3 {
			t.Fatalf("home slot %d = %+v, want %s boot %d recv 1..3", i, st, m.Host, m.boot)
		}
	}
	// The home's own record is never subject to packet loss.
	if truth[0].RecvTime != 3 {
		t.Fatalf("home record at recv %d, want 3", truth[0].RecvTime)
	}
	for _, m := range f.Machines[1:] {
		got, err := m.DB.Query()
		if err != nil {
			t.Fatalf("%s: query: %v", m.Host, err)
		}
		if len(got) != len(truth) {
			t.Fatalf("%s: sees %d hosts, home sees %d", m.Host, len(got), len(truth))
		}
		for i := range truth {
			if got[i] != truth[i] {
				t.Fatalf("%s: slot %d = %+v, home has %+v", m.Host, i, got[i], truth[i])
			}
		}
	}

	// The assembly ruptime runs unchanged on a replica: same code, same
	// virtual address, remote data.
	out, n, err := f.Machines[hosts-1].Ruptime()
	if err != nil {
		t.Fatal(err)
	}
	if n != hosts {
		t.Fatalf("ruptime counted %d hosts, want %d\n%s", n, hosts, out)
	}
	for _, m := range f.Machines {
		if !strings.Contains(out, m.Host) {
			t.Fatalf("ruptime output missing %s:\n%s", m.Host, out)
		}
	}

	// The protocol's work is visible in the fleet's metrics.
	s := f.Fleet.Reg.Snapshot()
	for _, c := range []string{"netsim.dropped", "netshm.updates_applied", "netshm.acks_recv", "netshm.retries"} {
		if s.Counters[c] == 0 {
			t.Fatalf("counter %s is zero after a lossy three-round run", c)
		}
	}
}

// TestNetFleetReplicaCannotWrite pins the single-home rule at the rwho
// layer: a replica's direct store is refused by netshm.
func TestNetFleetReplicaCannotWrite(t *testing.T) {
	f, err := NewNetFleet(netsim.New(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep := f.Machines[1]
	if err := rep.store(rep.Status(1)); err == nil {
		t.Fatal("replica stored into the shared table directly")
	}
}
