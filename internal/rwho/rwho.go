// Package rwho reproduces the paper's rwhod case study. The original rwhod
// "maintains a collection of local files, one per remote machine", rewriting
// the corresponding file every time it receives a status packet, while rwho
// and ruptime re-read and re-parse all of those files on every invocation.
// "Using the early prototype of our tools, we re-implemented rwhod to keep
// its database in shared memory ... The result was both simpler and faster.
// On our local network of 65 rwhod-equipped machines, the new version of
// rwho saves a little over a second each time it is called."
//
// Two implementations of the same database:
//
//   - FileDB: one ASCII file per host under a spool directory, rewritten
//     whole on update, read and parsed whole on query (the baseline);
//   - SharedDB: a fixed-slot table in a dynamic public Hemlock module,
//     updated in place through the mapped segment and scanned directly on
//     query (the Hemlock version).
package rwho

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"hemlock/internal/baseline"
	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
)

// Status is one machine's rwhod record.
type Status struct {
	Host     string
	RecvTime uint32
	BootTime uint32
	Load     [3]uint32 // load average x100
	NUsers   uint32
}

// Slot geometry of the shared table.
const (
	SlotSize  = 64
	hostBytes = 32
	offRecv   = 32
	offBoot   = 36
	offLoad   = 40
	offUsers  = 52
	offInUse  = 56
)

// ErrTableFull is returned when the shared table has no free slot.
var ErrTableFull = errors.New("rwho: shared status table full")

// ErrUnknownHost is returned on queries for absent hosts.
var ErrUnknownHost = errors.New("rwho: unknown host")

// ---- file-based baseline -------------------------------------------------------

// FileDB is the original design: one file per remote machine.
type FileDB struct {
	FS  *shmfs.FS
	Dir string
	UID int
}

// NewFileDB creates the spool directory.
func NewFileDB(fs *shmfs.FS, dir string, uid int) (*FileDB, error) {
	if err := fs.MkdirAll(dir, shmfs.DefaultDirMode, uid); err != nil {
		return nil, err
	}
	return &FileDB{FS: fs, Dir: dir, UID: uid}, nil
}

func (d *FileDB) path(host string) string { return d.Dir + "/whod." + host }

// Update rewrites the host's file: linearise the record and write it out,
// exactly what rwhod does on every received packet.
func (d *FileDB) Update(st Status) error {
	data := baseline.Encode([]baseline.Field{
		{Key: "host", Value: st.Host},
		{Key: "recv", Value: baseline.U32(st.RecvTime)},
		{Key: "boot", Value: baseline.U32(st.BootTime)},
		{Key: "load0", Value: baseline.U32(st.Load[0])},
		{Key: "load1", Value: baseline.U32(st.Load[1])},
		{Key: "load2", Value: baseline.U32(st.Load[2])},
		{Key: "nusers", Value: baseline.U32(st.NUsers)},
	})
	return d.FS.WriteFile(d.path(st.Host), data, shmfs.DefaultFileMode, d.UID)
}

// Query reads and parses every host file: what rwho does per invocation.
func (d *FileDB) Query() ([]Status, error) {
	ents, err := d.FS.ReadDir(d.Dir)
	if err != nil {
		return nil, err
	}
	var out []Status
	for _, e := range ents {
		if !strings.HasPrefix(e.Name, "whod.") {
			continue
		}
		data, err := d.FS.ReadFile(d.Dir+"/"+e.Name, d.UID)
		if err != nil {
			return nil, err
		}
		st, err := parseStatus(data)
		if err != nil {
			return nil, fmt.Errorf("rwho: %s: %w", e.Name, err)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out, nil
}

func parseStatus(data []byte) (Status, error) {
	fields, err := baseline.Decode(data)
	if err != nil {
		return Status{}, err
	}
	var st Status
	host, ok := baseline.Get(fields, "host")
	if !ok {
		return Status{}, baseline.ErrBadRecord
	}
	st.Host = host
	if st.RecvTime, err = baseline.GetUint(fields, "recv"); err != nil {
		return Status{}, err
	}
	if st.BootTime, err = baseline.GetUint(fields, "boot"); err != nil {
		return Status{}, err
	}
	for i := 0; i < 3; i++ {
		if st.Load[i], err = baseline.GetUint(fields, fmt.Sprintf("load%d", i)); err != nil {
			return Status{}, err
		}
	}
	if st.NUsers, err = baseline.GetUint(fields, "nusers"); err != nil {
		return Status{}, err
	}
	return st, nil
}

// ---- shared-memory version -------------------------------------------------------

// TemplateSource returns the assembly for the whod.o shared module: a
// slot-table sized for maxHosts plus its slot count, all in one dynamic
// public segment.
func TemplateSource(maxHosts int) string {
	return fmt.Sprintf(`
        .data
        .globl  whod_nslots
whod_nslots:
        .word   %d
        .globl  whod_table
whod_table:
        .space  %d
`, maxHosts, maxHosts*SlotSize)
}

// Install writes the whod.o template into /lib and links the rwho utility
// image (a trivial main plus whod.o as a dynamic public module). Every
// daemon and query process launches this image.
func Install(s *core.System, maxHosts int) (*objfile.Image, error) {
	if _, err := s.Asm("/lib/whod.o", TemplateSource(maxHosts)); err != nil {
		return nil, err
	}
	if _, err := s.Asm("/bin/rwho-main.o", `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`); err != nil {
		return nil, err
	}
	res, err := s.Link(&lds.Options{
		Output: "rwho",
		Modules: []lds.Input{
			{Name: "rwho-main.o", Class: objfile.StaticPrivate},
			{Name: "whod.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		return nil, err
	}
	return res.Image, nil
}

// RuptimeSource is a ruptime-style utility written entirely in R3K-lite
// assembly: compiled code scanning the shared status table directly — no
// file reads, no parsing, no set-up calls; whod_table is just an extern.
// It prints each live host name to the console and exits with the count.
const RuptimeSource = `
        .text
        .globl  main
        .extern whod_nslots
        .extern whod_table
main:
        addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        la      $t0, whod_nslots
        lw      $s0, 0($t0)          # slots remaining
        la      $s1, whod_table      # current slot
        li      $s2, 0               # live host count
loop:
        blez    $s0, done
        lw      $t1, 56($s1)         # in-use flag
        beqz    $t1, next
        addiu   $s2, $s2, 1
        # strlen of the NUL-padded host name (bounded at 32)
        move    $a1, $s1
        li      $a2, 0
        li      $t3, 32
len:
        lbu     $t2, 0($a1)
        beqz    $t2, emit
        addiu   $a1, $a1, 1
        addiu   $a2, $a2, 1
        bne     $a2, $t3, len
emit:
        li      $v0, 2               # write(1, slot, len)
        li      $a0, 1
        move    $a1, $s1
        syscall
        li      $v0, 2               # write(1, "\n", 1)
        li      $a0, 1
        la      $a1, nl
        li      $a2, 1
        syscall
next:
        addiu   $s1, $s1, 64         # SlotSize
        addiu   $s0, $s0, -1
        b       loop
done:
        move    $v0, $s2             # exit status: number of hosts
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
        .data
nl:     .asciiz "\n"
`

// InstallUptime assembles and links the assembly ruptime utility against
// the whod.o module (which Install must have created already).
func InstallUptime(s *core.System) (*objfile.Image, error) {
	if _, err := s.Asm("/bin/ruptime-main.o", RuptimeSource); err != nil {
		return nil, err
	}
	res, err := s.Link(&lds.Options{
		Output: "ruptime",
		Modules: []lds.Input{
			{Name: "ruptime-main.o", Class: objfile.StaticPrivate},
			{Name: "whod.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		return nil, err
	}
	return res.Image, nil
}

// SharedDB is the Hemlock rwhod database: the table lives in the shared
// segment; lookups are loads, updates are stores. The handle memoises each
// host's slot index (verified against the segment on use), as the real
// daemon would.
type SharedDB struct {
	pg    *core.Program
	table *core.Var
	slots uint32
	cache map[string]int
}

// Open resolves the shared table in a launched program.
func Open(pg *core.Program) (*SharedDB, error) {
	n, err := pg.Var("whod_nslots")
	if err != nil {
		return nil, err
	}
	slots, err := n.Load()
	if err != nil {
		return nil, err
	}
	table, err := pg.Var("whod_table")
	if err != nil {
		return nil, err
	}
	return &SharedDB{pg: pg, table: table, slots: slots, cache: map[string]int{}}, nil
}

// Slots returns the table capacity.
func (d *SharedDB) Slots() int { return int(d.slots) }

func encodeSlot(st Status) []byte {
	buf := make([]byte, SlotSize)
	copy(buf[:hostBytes], st.Host)
	binary.BigEndian.PutUint32(buf[offRecv:], st.RecvTime)
	binary.BigEndian.PutUint32(buf[offBoot:], st.BootTime)
	for i, l := range st.Load {
		binary.BigEndian.PutUint32(buf[offLoad+4*i:], l)
	}
	binary.BigEndian.PutUint32(buf[offUsers:], st.NUsers)
	binary.BigEndian.PutUint32(buf[offInUse:], 1)
	return buf
}

func decodeSlot(buf []byte) Status {
	var st Status
	st.Host = strings.TrimRight(string(buf[:hostBytes]), "\x00")
	st.RecvTime = binary.BigEndian.Uint32(buf[offRecv:])
	st.BootTime = binary.BigEndian.Uint32(buf[offBoot:])
	for i := range st.Load {
		st.Load[i] = binary.BigEndian.Uint32(buf[offLoad+4*i:])
	}
	st.NUsers = binary.BigEndian.Uint32(buf[offUsers:])
	return st
}

// findSlot returns the slot index holding host, or the first free slot if
// absent (-1 if full and absent).
func (d *SharedDB) findSlot(host string) (int, bool, error) {
	// Fast path: the memoised slot, verified against the shared segment
	// (another process may have rewritten it).
	if i, ok := d.cache[host]; ok {
		name, err := d.table.ReadBytes(uint32(i)*SlotSize, hostBytes)
		if err != nil {
			return 0, false, err
		}
		inuse, err := d.table.LoadAt(uint32(i)*SlotSize + offInUse)
		if err != nil {
			return 0, false, err
		}
		if inuse != 0 && strings.TrimRight(string(name), "\x00") == host {
			return i, true, nil
		}
		delete(d.cache, host)
	}
	free := -1
	for i := uint32(0); i < d.slots; i++ {
		inuse, err := d.table.LoadAt(i*SlotSize + offInUse)
		if err != nil {
			return 0, false, err
		}
		if inuse == 0 {
			if free < 0 {
				free = int(i)
			}
			continue
		}
		name, err := d.table.ReadBytes(i*SlotSize, hostBytes)
		if err != nil {
			return 0, false, err
		}
		if strings.TrimRight(string(name), "\x00") == host {
			d.cache[host] = int(i)
			return int(i), true, nil
		}
	}
	return free, false, nil
}

// Update stores the record in place: no linearisation, no file rewrite.
func (d *SharedDB) Update(st Status) error {
	_, err := d.UpdateSlot(st)
	return err
}

// UpdateSlot stores the record in place and returns the slot index it
// landed in — what a replicating daemon needs to mark the dirty range.
func (d *SharedDB) UpdateSlot(st Status) (int, error) {
	i, _, err := d.findSlot(st.Host)
	if err != nil {
		return 0, err
	}
	if i < 0 {
		return 0, ErrTableFull
	}
	if err := d.table.WriteBytes(uint32(i)*SlotSize, encodeSlot(st)); err != nil {
		return 0, err
	}
	d.cache[st.Host] = i
	return i, nil
}

// TableAddr returns the virtual address of the shared slot table — the
// same on every machine, by the linker's public-module invariant.
func (d *SharedDB) TableAddr() uint32 { return d.table.Addr }

// Query scans the shared table directly.
func (d *SharedDB) Query() ([]Status, error) {
	var out []Status
	for i := uint32(0); i < d.slots; i++ {
		buf, err := d.table.ReadBytes(i*SlotSize, SlotSize)
		if err != nil {
			return nil, err
		}
		if binary.BigEndian.Uint32(buf[offInUse:]) == 0 {
			continue
		}
		out = append(out, decodeSlot(buf))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Host < out[j].Host })
	return out, nil
}

// Lookup returns one host's record (the common rwho query).
func (d *SharedDB) Lookup(host string) (Status, error) {
	i, found, err := d.findSlot(host)
	if err != nil {
		return Status{}, err
	}
	if !found {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownHost, host)
	}
	buf, err := d.table.ReadBytes(uint32(i)*SlotSize, SlotSize)
	if err != nil {
		return Status{}, err
	}
	return decodeSlot(buf), nil
}

// SyntheticStatus generates a deterministic status record for host i at
// tick t (the workload generator for the E-rwho experiment).
func SyntheticStatus(i int, t uint32) Status {
	return Status{
		Host:     fmt.Sprintf("machine%02d", i),
		RecvTime: t,
		BootTime: 1000 + uint32(i),
		Load:     [3]uint32{uint32(i*7+int(t))%400 + 1, uint32(i*13)%300 + 1, uint32(i*3)%200 + 1},
		NUsers:   uint32(i) % 12,
	}
}
