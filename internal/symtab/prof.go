package symtab

import "hemlock/internal/objfile"

// ProfileSymbols exposes the segment's table regions as pseudo-symbols
// for the guest profiler's symbolizer: an address sampled inside the
// tables segment resolves to the region it landed in — "(transitions)",
// "(actions)", "(names)" — instead of a bare offset, so a profile of the
// compiler shows which shared table it was walking. base is the segment's
// globally-agreed address (the root pointer location).
func (st *SegTables) ProfileSymbols(base uint32) []objfile.ImageSym {
	syms := []objfile.ImageSym{
		{Name: "(root)", Addr: base},
		{Name: "(descriptor)", Addr: st.desc},
	}
	for _, r := range []struct {
		off  uint32
		name string
	}{
		{descTrans, "(transitions)"},
		{descActions, "(actions)"},
		{descNames, "(names)"},
	} {
		if p, err := st.m.LoadWord(st.desc + r.off); err == nil && p != 0 {
			syms = append(syms, objfile.ImageSym{Name: r.name, Addr: p})
		}
	}
	return syms
}
