// Package symtab reproduces the paper's compiler-tables case study.
//
// The Lynx compiler was built around scanner and parser generators whose
// numeric output a pair of utility programs translated into initialised
// data structures — over 5400 lines of generated C taking 18 seconds to
// compile on a Sparcstation 1, relying on a non-portable layout
// correspondence between C and Pascal. "With Hemlock, the utility programs
// ... would share a persistent module (the tables) with the Lynx compiler.
// The utility programs would initialize the tables; the compiler would
// link them in and use them", eliminating 20-25% of the utility code.
//
// This package builds both paths over the same synthetic scanner tables:
//
//   - the baseline: GenerateCSource emits initialised-array source text and
//     CompileCSource parses it back (the translate-and-recompile step);
//   - the Hemlock path: WriteSegment lays the pointer-rich tables out in a
//     persistent shared segment via the per-segment allocator, and
//     AttachSegment uses them in place, pointers and all.
package symtab

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"hemlock/internal/shalloc"
)

// Tables is a synthetic scanner automaton: a dense transition matrix, an
// action per state, and a name per symbol (the pointer-rich part).
type Tables struct {
	NStates int
	NSyms   int
	Trans   []uint32 // NStates*NSyms, next-state matrix
	Actions []uint32 // per-state action codes
	Names   []string // per-symbol token names
}

// Generate builds deterministic tables of the given size from seed.
func Generate(states, syms int, seed uint32) *Tables {
	t := &Tables{
		NStates: states,
		NSyms:   syms,
		Trans:   make([]uint32, states*syms),
		Actions: make([]uint32, states),
		Names:   make([]string, syms),
	}
	x := seed | 1
	next := func() uint32 {
		// xorshift32: deterministic, portable.
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		return x
	}
	for i := range t.Trans {
		t.Trans[i] = next() % uint32(states)
	}
	for i := range t.Actions {
		t.Actions[i] = next() % 16
	}
	for i := range t.Names {
		t.Names[i] = fmt.Sprintf("tok_%d_%x", i, next()&0xFFFF)
	}
	return t
}

// Step runs one automaton transition.
func (t *Tables) Step(state int, sym int) (next int, action uint32) {
	n := int(t.Trans[state*t.NSyms+sym])
	return n, t.Actions[n]
}

// Run drives the automaton over a symbol stream from state 0, returning
// the state trace (used to check that both representations behave
// identically).
func (t *Tables) Run(stream []int) []int {
	trace := make([]int, 0, len(stream))
	st := 0
	for _, sym := range stream {
		st, _ = t.Step(st, sym)
		trace = append(trace, st)
	}
	return trace
}

// Stream produces a deterministic symbol stream of length n.
func (t *Tables) Stream(n int, seed uint32) []int {
	out := make([]int, n)
	x := seed | 1
	for i := range out {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		out[i] = int(x) & 0x7FFFFFFF % t.NSyms
	}
	return out
}

// ---- baseline: generate C, "compile" it back --------------------------------------

// GenerateCSource linearises the tables into initialised-array source
// text, the form the Wisconsin tools' utility programs produced.
func GenerateCSource(t *Tables) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* generated scanner tables: do not edit */\n")
	fmt.Fprintf(&b, "const int n_states = %d;\n", t.NStates)
	fmt.Fprintf(&b, "const int n_syms = %d;\n", t.NSyms)
	b.WriteString("const unsigned trans[] = {\n")
	for r := 0; r < t.NStates; r++ {
		b.WriteString("  ")
		for c := 0; c < t.NSyms; c++ {
			b.WriteString(strconv.FormatUint(uint64(t.Trans[r*t.NSyms+c]), 10))
			b.WriteString(", ")
		}
		b.WriteString("\n")
	}
	b.WriteString("};\n")
	b.WriteString("const unsigned actions[] = {\n")
	for _, a := range t.Actions {
		fmt.Fprintf(&b, "  %d,\n", a)
	}
	b.WriteString("};\n")
	b.WriteString("const char *names[] = {\n")
	for _, n := range t.Names {
		fmt.Fprintf(&b, "  %q,\n", n)
	}
	b.WriteString("};\n")
	return b.String()
}

// ErrBadSource is returned when generated source cannot be parsed back.
var ErrBadSource = errors.New("symtab: malformed generated source")

// CompileCSource parses generated source text back into tables: the
// recompile step every build of the compiler paid for.
func CompileCSource(src string) (*Tables, error) {
	t := &Tables{}
	lines := strings.Split(src, "\n")
	i := 0
	expectInt := func(prefix string) (int, error) {
		for ; i < len(lines); i++ {
			l := strings.TrimSpace(lines[i])
			if strings.HasPrefix(l, prefix) {
				v := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(l, prefix)), ";")
				n, err := strconv.Atoi(v)
				if err != nil {
					return 0, fmt.Errorf("%w: %q", ErrBadSource, l)
				}
				i++
				return n, nil
			}
		}
		return 0, fmt.Errorf("%w: missing %q", ErrBadSource, prefix)
	}
	var err error
	if t.NStates, err = expectInt("const int n_states ="); err != nil {
		return nil, err
	}
	if t.NSyms, err = expectInt("const int n_syms ="); err != nil {
		return nil, err
	}
	parseUints := func(header string, want int) ([]uint32, error) {
		for ; i < len(lines); i++ {
			if strings.HasPrefix(strings.TrimSpace(lines[i]), header) {
				i++
				break
			}
		}
		var out []uint32
		for ; i < len(lines); i++ {
			l := strings.TrimSpace(lines[i])
			if l == "};" {
				i++
				break
			}
			for _, tok := range strings.Split(l, ",") {
				tok = strings.TrimSpace(tok)
				if tok == "" {
					continue
				}
				v, err := strconv.ParseUint(tok, 10, 32)
				if err != nil {
					return nil, fmt.Errorf("%w: %q", ErrBadSource, tok)
				}
				out = append(out, uint32(v))
			}
		}
		if len(out) != want {
			return nil, fmt.Errorf("%w: %s has %d entries, want %d", ErrBadSource, header, len(out), want)
		}
		return out, nil
	}
	if t.Trans, err = parseUints("const unsigned trans[]", t.NStates*t.NSyms); err != nil {
		return nil, err
	}
	if t.Actions, err = parseUints("const unsigned actions[]", t.NStates); err != nil {
		return nil, err
	}
	for ; i < len(lines); i++ {
		if strings.HasPrefix(strings.TrimSpace(lines[i]), "const char *names[]") {
			i++
			break
		}
	}
	for ; i < len(lines); i++ {
		l := strings.TrimSpace(lines[i])
		if l == "};" {
			break
		}
		l = strings.TrimSuffix(l, ",")
		if l == "" {
			continue
		}
		s, err := strconv.Unquote(l)
		if err != nil {
			return nil, fmt.Errorf("%w: name %q", ErrBadSource, l)
		}
		t.Names = append(t.Names, s)
	}
	if len(t.Names) != t.NSyms {
		return nil, fmt.Errorf("%w: %d names, want %d", ErrBadSource, len(t.Names), t.NSyms)
	}
	return t, nil
}

// ---- Hemlock path: pointer-rich tables in a persistent segment --------------------

const (
	rootMagic   = 0x4C594E58 // "LYNX"
	rootSize    = 8          // magic + descriptor pointer
	descStates  = 0
	descSyms    = 4
	descTrans   = 8
	descActions = 12
	descNames   = 16
	descSize    = 20
)

// SegTables is a handle on tables living inside a shared segment. All
// internal references are absolute pointers, valid in any process because
// the segment has a globally-agreed address.
type SegTables struct {
	m    shalloc.Mem
	desc uint32
}

// WriteSegment lays the tables out in the segment at base (of segSize
// bytes): the utility program's new, translation-free job. The segment
// becomes self-describing: a root pointer at base leads to a descriptor
// whose fields point at the transition matrix, action array, and an array
// of string pointers.
func WriteSegment(m shalloc.Mem, base, segSize uint32, t *Tables) (*SegTables, error) {
	h, err := shalloc.Init(m, base+rootSize, segSize-rootSize)
	if err != nil {
		return nil, err
	}
	desc, err := h.Alloc(descSize)
	if err != nil {
		return nil, err
	}
	trans, err := h.Alloc(uint32(4 * len(t.Trans)))
	if err != nil {
		return nil, err
	}
	for i, v := range t.Trans {
		if err := m.StoreWord(trans+uint32(4*i), v); err != nil {
			return nil, err
		}
	}
	actions, err := h.Alloc(uint32(4 * len(t.Actions)))
	if err != nil {
		return nil, err
	}
	for i, v := range t.Actions {
		if err := m.StoreWord(actions+uint32(4*i), v); err != nil {
			return nil, err
		}
	}
	names, err := h.Alloc(uint32(4 * len(t.Names)))
	if err != nil {
		return nil, err
	}
	for i, s := range t.Names {
		sp, err := h.Alloc(uint32(4 + len(s)))
		if err != nil {
			return nil, err
		}
		if err := m.StoreWord(sp, uint32(len(s))); err != nil {
			return nil, err
		}
		for j := 0; j < len(s); j += 4 {
			var w uint32
			for k := 0; k < 4 && j+k < len(s); k++ {
				w |= uint32(s[j+k]) << uint(24-8*k)
			}
			if err := m.StoreWord(sp+4+uint32(j), w); err != nil {
				return nil, err
			}
		}
		if err := m.StoreWord(names+uint32(4*i), sp); err != nil {
			return nil, err
		}
	}
	for off, v := range map[uint32]uint32{
		desc + descStates:  uint32(t.NStates),
		desc + descSyms:    uint32(t.NSyms),
		desc + descTrans:   trans,
		desc + descActions: actions,
		desc + descNames:   names,
		base:               rootMagic,
		base + 4:           desc,
	} {
		if err := m.StoreWord(off, v); err != nil {
			return nil, err
		}
	}
	return &SegTables{m: m, desc: desc}, nil
}

// ErrNotTables is returned when a segment has no table root.
var ErrNotTables = errors.New("symtab: segment does not contain tables")

// AttachSegment opens tables previously written at base: the compiler's
// side — no translation, just follow the pointers.
func AttachSegment(m shalloc.Mem, base uint32) (*SegTables, error) {
	w, err := m.LoadWord(base)
	if err != nil {
		return nil, err
	}
	if w != rootMagic {
		return nil, ErrNotTables
	}
	desc, err := m.LoadWord(base + 4)
	if err != nil {
		return nil, err
	}
	return &SegTables{m: m, desc: desc}, nil
}

// Sizes returns (states, syms).
func (st *SegTables) Sizes() (int, int, error) {
	ns, err := st.m.LoadWord(st.desc + descStates)
	if err != nil {
		return 0, 0, err
	}
	sy, err := st.m.LoadWord(st.desc + descSyms)
	if err != nil {
		return 0, 0, err
	}
	return int(ns), int(sy), nil
}

// Step performs one transition directly against segment memory.
func (st *SegTables) Step(state, sym int) (int, uint32, error) {
	_, syms, err := st.Sizes()
	if err != nil {
		return 0, 0, err
	}
	trans, err := st.m.LoadWord(st.desc + descTrans)
	if err != nil {
		return 0, 0, err
	}
	next, err := st.m.LoadWord(trans + uint32(4*(state*syms+sym)))
	if err != nil {
		return 0, 0, err
	}
	actions, err := st.m.LoadWord(st.desc + descActions)
	if err != nil {
		return 0, 0, err
	}
	act, err := st.m.LoadWord(actions + 4*next)
	if err != nil {
		return 0, 0, err
	}
	return int(next), act, nil
}

// Run drives the automaton over a stream, like Tables.Run but in place.
func (st *SegTables) Run(stream []int) ([]int, error) {
	_, syms, err := st.Sizes()
	if err != nil {
		return nil, err
	}
	trans, err := st.m.LoadWord(st.desc + descTrans)
	if err != nil {
		return nil, err
	}
	trace := make([]int, 0, len(stream))
	state := uint32(0)
	for _, sym := range stream {
		state, err = st.m.LoadWord(trans + 4*(state*uint32(syms)+uint32(sym)))
		if err != nil {
			return nil, err
		}
		trace = append(trace, int(state))
	}
	return trace, nil
}

// Name follows the name-table pointer for symbol i and reads the string.
func (st *SegTables) Name(i int) (string, error) {
	names, err := st.m.LoadWord(st.desc + descNames)
	if err != nil {
		return "", err
	}
	sp, err := st.m.LoadWord(names + uint32(4*i))
	if err != nil {
		return "", err
	}
	n, err := st.m.LoadWord(sp)
	if err != nil {
		return "", err
	}
	out := make([]byte, 0, n)
	for j := uint32(0); j < n; j += 4 {
		w, err := st.m.LoadWord(sp + 4 + j)
		if err != nil {
			return "", err
		}
		for k := uint32(0); k < 4 && j+k < n; k++ {
			out = append(out, byte(w>>uint(24-8*k)))
		}
	}
	return string(out), nil
}
