package symtab

import "testing"

func TestProfileSymbols(t *testing.T) {
	tbl := Generate(25, 8, 3)
	as, base, size := segMem(t)
	if _, err := WriteSegment(as, base, size, tbl); err != nil {
		t.Fatal(err)
	}
	st, err := AttachSegment(as, base)
	if err != nil {
		t.Fatal(err)
	}
	syms := st.ProfileSymbols(base)
	byName := map[string]uint32{}
	for _, s := range syms {
		byName[s.Name] = s.Addr
	}
	for _, want := range []string{"(root)", "(descriptor)", "(transitions)", "(actions)", "(names)"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("no %s pseudo-symbol in %v", want, syms)
		}
	}
	if byName["(root)"] != base {
		t.Fatalf("(root) at %#x, want %#x", byName["(root)"], base)
	}
	// Every table region lives inside the segment, after the descriptor.
	for _, name := range []string{"(transitions)", "(actions)", "(names)"} {
		if a := byName[name]; a <= base || a >= base+size {
			t.Fatalf("%s at %#x outside segment [%#x,%#x)", name, a, base, base+size)
		}
	}
}
