package symtab

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/mem"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(20, 10, 7)
	b := Generate(20, 10, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generation not deterministic")
	}
	c := Generate(20, 10, 8)
	if reflect.DeepEqual(a.Trans, c.Trans) {
		t.Fatal("different seeds produce identical tables")
	}
}

func TestCSourceRoundTrip(t *testing.T) {
	tbl := Generate(30, 12, 99)
	src := GenerateCSource(tbl)
	if !strings.Contains(src, "n_states = 30") {
		t.Fatal("source missing sizes")
	}
	got, err := CompileCSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tbl, got) {
		t.Fatal("compile(generate(t)) != t")
	}
}

func TestCompileRejectsGarbage(t *testing.T) {
	if _, err := CompileCSource("int main(){}"); !errors.Is(err, ErrBadSource) {
		t.Fatalf("garbage accepted: %v", err)
	}
	// Truncated table.
	tbl := Generate(5, 5, 1)
	src := GenerateCSource(tbl)
	cut := strings.Index(src, "actions")
	if _, err := CompileCSource(src[:cut]); err == nil {
		t.Fatal("truncated source accepted")
	}
}

func segMem(t *testing.T) (*addrspace.Space, uint32, uint32) {
	t.Helper()
	as := addrspace.New(mem.NewPhysical(0))
	base, size := uint32(0x30200000), uint32(256*1024)
	if err := as.MapAnon(base, size, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	return as, base, size
}

func TestSegmentRoundTrip(t *testing.T) {
	tbl := Generate(25, 8, 3)
	as, base, size := segMem(t)
	if _, err := WriteSegment(as, base, size, tbl); err != nil {
		t.Fatal(err)
	}
	// A second "pass" attaches and uses the tables in place.
	st, err := AttachSegment(as, base)
	if err != nil {
		t.Fatal(err)
	}
	ns, sy, err := st.Sizes()
	if err != nil || ns != 25 || sy != 8 {
		t.Fatalf("sizes = %d,%d, %v", ns, sy, err)
	}
	stream := tbl.Stream(500, 11)
	want := tbl.Run(stream)
	got, err := st.Run(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("segment automaton diverges from in-core automaton")
	}
	// Single steps agree too (exercising the action array).
	n1, a1 := tbl.Step(3, 2)
	n2, a2, err := st.Step(3, 2)
	if err != nil || n1 != n2 || a1 != a2 {
		t.Fatalf("step mismatch: (%d,%d) vs (%d,%d), %v", n1, a1, n2, a2, err)
	}
	// Pointer-rich part: names read back through two indirections.
	for i := 0; i < 8; i++ {
		name, err := st.Name(i)
		if err != nil || name != tbl.Names[i] {
			t.Fatalf("name %d = %q, want %q (%v)", i, name, tbl.Names[i], err)
		}
	}
}

func TestAttachRejectsRawSegment(t *testing.T) {
	as, base, _ := segMem(t)
	if _, err := AttachSegment(as, base); !errors.Is(err, ErrNotTables) {
		t.Fatalf("raw segment accepted: %v", err)
	}
}

func TestSegmentTooSmall(t *testing.T) {
	as := addrspace.New(mem.NewPhysical(0))
	base := uint32(0x30200000)
	as.MapAnon(base, 4096, addrspace.ProtRW)
	big := Generate(100, 100, 1) // needs ~40 KB
	if _, err := WriteSegment(as, base, 4096, big); err == nil {
		t.Fatal("oversized tables accepted")
	}
}

func TestStreamDeterministic(t *testing.T) {
	tbl := Generate(10, 10, 1)
	if !reflect.DeepEqual(tbl.Stream(100, 5), tbl.Stream(100, 5)) {
		t.Fatal("stream not deterministic")
	}
}

func TestCSourceLineCountScales(t *testing.T) {
	// The paper's tables were "over 5400 lines"; our generator's output
	// must scale with table size so the experiment can sweep it.
	small := strings.Count(GenerateCSource(Generate(10, 5, 1)), "\n")
	large := strings.Count(GenerateCSource(Generate(100, 5, 1)), "\n")
	if large <= small {
		t.Fatalf("line count does not scale: %d vs %d", small, large)
	}
}
