package netsim

import (
	"fmt"
	"testing"

	"hemlock/internal/obsv"
)

// TestBufferPoolReuse: once payloads are recycled, further sends stop
// allocating — alloc_bytes is flat in steady state.
func TestBufferPoolReuse(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")

	payload := make([]byte, 100)
	for i := 0; i < 50; i++ {
		if err := a.Send("b", payload); err != nil {
			t.Fatal(err)
		}
		d, ok := b.Recv()
		if !ok {
			t.Fatal("datagram missing")
		}
		n.Recycle(d.Payload)
	}
	st := n.Stats()
	if st.AllocBytes != poolBufCap {
		t.Fatalf("alloc_bytes = %d after 50 recycled sends, want one buffer (%d)", st.AllocBytes, poolBufCap)
	}
	if st.BytesSent != 50*100 || st.BytesDelivered != 50*100 {
		t.Fatalf("bytes sent/delivered = %d/%d, want 5000/5000", st.BytesSent, st.BytesDelivered)
	}
}

// TestBufferPoolIsolation: a recycled buffer must not alias a datagram
// still queued — the bytes a receiver reads are the bytes that were sent.
func TestBufferPoolIsolation(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")

	a.Send("b", []byte{1})
	a.Send("b", []byte{2})
	d1, _ := b.Recv()
	n.Recycle(d1.Payload)
	a.Send("b", []byte{3}) // reuses d1's buffer
	d2, _ := b.Recv()
	d3, _ := b.Recv()
	if d2.Payload[0] != 2 || d3.Payload[0] != 3 {
		t.Fatalf("got %d,%d want 2,3 — recycled buffer aliased a queued datagram", d2.Payload[0], d3.Payload[0])
	}
}

// TestOversizePayloadUnpooled: payloads above the pool class still work
// and are charged exactly.
func TestOversizePayloadUnpooled(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	big := make([]byte, poolBufCap+1)
	big[poolBufCap] = 7
	a.Send("b", big)
	d, ok := b.Recv()
	if !ok || len(d.Payload) != poolBufCap+1 || d.Payload[poolBufCap] != 7 {
		t.Fatalf("oversize payload mangled: ok=%v len=%d", ok, len(d.Payload))
	}
	n.Recycle(d.Payload) // no-op for unpooled buffers
	if st := n.Stats(); st.AllocBytes != poolBufCap+1 {
		t.Fatalf("alloc_bytes = %d, want %d", st.AllocBytes, poolBufCap+1)
	}
}

// TestInboxTotalGauge: the fleet-wide queued-datagram gauge tracks
// enqueue and drain without scanning nodes.
func TestInboxTotalGauge(t *testing.T) {
	n := New()
	r := obsv.NewRegistry()
	n.Observe(r)
	a := n.Attach("a")
	b := n.Attach("b")
	c := n.Attach("c")

	a.Broadcast([]byte("x")) // b and c each queue one
	if got := r.Snapshot().Gauges["netsim.inbox_total"]; got != 2 {
		t.Fatalf("inbox_total = %d, want 2", got)
	}
	b.Recv()
	c.Recv()
	if got := r.Snapshot().Gauges["netsim.inbox_total"]; got != 0 {
		t.Fatalf("inbox_total after drain = %d, want 0", got)
	}
}

// TestInboxGaugeCap: a big fleet registers at most maxInboxGauges
// per-node gauges; inbox_total still covers everyone.
func TestInboxGaugeCap(t *testing.T) {
	n := New()
	r := obsv.NewRegistry()
	n.Observe(r)
	var first *Node
	for i := 0; i < 100; i++ {
		nd := n.Attach(fmt.Sprintf("m%03d", i))
		if i == 0 {
			first = nd
		}
	}
	for i := 1; i < 100; i++ {
		first.Send(fmt.Sprintf("m%03d", i), []byte("y"))
	}
	s := r.Snapshot()
	perNode := 0
	for name := range s.Gauges {
		if len(name) > len("netsim.inbox.") && name[:len("netsim.inbox.")] == "netsim.inbox." {
			perNode++
		}
	}
	if perNode != maxInboxGauges {
		t.Fatalf("per-node gauges = %d, want cap %d", perNode, maxInboxGauges)
	}
	if got := s.Gauges["netsim.inbox_total"]; got != 99 {
		t.Fatalf("inbox_total = %d, want 99", got)
	}
}

// TestSteadyStateTickAllocationLight: a sustained all-pairs workload with
// recycling settles into zero fresh allocation — the 1024-node fleet tick
// property, scaled down for test time.
func TestSteadyStateTickAllocationLight(t *testing.T) {
	n := New()
	const hosts = 32
	nodes := make([]*Node, hosts)
	for i := range nodes {
		nodes[i] = n.Attach(fmt.Sprintf("h%02d", i))
	}
	tick := func() {
		for _, nd := range nodes {
			nd.Broadcast([]byte("status"))
		}
		for _, nd := range nodes {
			for {
				d, ok := nd.Recv()
				if !ok {
					break
				}
				n.Recycle(d.Payload)
			}
		}
	}
	tick() // warm the pool
	warm := n.Stats().AllocBytes
	for i := 0; i < 10; i++ {
		tick()
	}
	if got := n.Stats().AllocBytes; got != warm {
		t.Fatalf("steady-state ticks allocated %d fresh bytes, want 0", got-warm)
	}
}
