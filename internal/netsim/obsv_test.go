package netsim

import (
	"strings"
	"testing"

	"hemlock/internal/obsv"
)

// TestObserveCountersMatchStats wires a network into a registry and checks
// the counters can never disagree with the network's own accounting.
func TestObserveCountersMatchStats(t *testing.T) {
	n := New()
	n.Drop = func(from, to string, seq uint64) bool { return to == "c" }
	r := obsv.NewRegistry()
	n.Observe(r)
	a := n.Attach("a")
	n.Attach("b")
	n.Attach("c")

	a.Broadcast([]byte("x")) // b delivered, c dropped
	a.Send("b", []byte("y")) // delivered
	for i := 0; i < DefaultQueueDepth+3; i++ {
		a.Send("b", []byte{1}) // tail overflows
	}

	st := n.Stats()
	s := r.Snapshot()
	if got := s.Counters["netsim.delivered"]; got != st.Delivered {
		t.Fatalf("netsim.delivered = %d, network says %d", got, st.Delivered)
	}
	if got := s.Counters["netsim.dropped"]; got != st.Dropped {
		t.Fatalf("netsim.dropped = %d, network says %d", got, st.Dropped)
	}
	if got := s.Counters["netsim.overflow"]; got != st.Overflow {
		t.Fatalf("netsim.overflow = %d, network says %d", got, st.Overflow)
	}
	if st.Overflow == 0 || st.Dropped == 0 {
		t.Fatalf("workload exercised no losses: %+v", st)
	}
}

// TestObserveInboxGauges checks the per-node inbox-depth gauges: sampled at
// snapshot time, they track Pending exactly, including for nodes attached
// before Observe was called and nodes later replaced under the same name.
func TestObserveInboxGauges(t *testing.T) {
	n := New()
	a := n.Attach("a") // attached before Observe
	r := obsv.NewRegistry()
	n.Observe(r)
	b := n.Attach("b")

	a.Broadcast([]byte("1"))
	a.Broadcast([]byte("2"))
	s := r.Snapshot()
	if got := s.Gauges["netsim.inbox.b"]; got != int64(b.Pending()) || got != 2 {
		t.Fatalf("netsim.inbox.b = %d, want 2", got)
	}
	if got := s.Gauges["netsim.inbox.a"]; got != 0 {
		t.Fatalf("netsim.inbox.a = %d, want 0", got)
	}

	// Replacing b re-points the gauge at the live node.
	n.Attach("b")
	if got := r.Snapshot().Gauges["netsim.inbox.b"]; got != 0 {
		t.Fatalf("after replacement netsim.inbox.b = %d, want 0", got)
	}
}

// TestObserveGoldenText is the golden check: the rendered snapshot of a
// fixed workload, with every netsim metric present.
func TestObserveGoldenText(t *testing.T) {
	n := New()
	n.Drop = func(from, to string, seq uint64) bool { return seq%5 == 0 }
	r := obsv.NewRegistry()
	n.Observe(r)
	a := n.Attach("a")
	n.Attach("b")
	n.Attach("c")
	for i := 0; i < 5; i++ {
		a.Broadcast([]byte{byte(i)}) // seqs 1..5; seq 5 dropped to both peers
	}

	got := r.Snapshot().Text()
	want := strings.Join([]string{
		"counters:",
		"  netsim.alloc_bytes           65536",
		"  netsim.bytes_delivered       8",
		"  netsim.bytes_sent            10",
		"  netsim.delayed               0",
		"  netsim.delivered             8",
		"  netsim.dropped               2",
		"  netsim.duplicated            0",
		"  netsim.overflow              0",
		"  netsim.reordered             0",
		"gauges:",
		"  netsim.inbox.a               0",
		"  netsim.inbox.b               4",
		"  netsim.inbox.c               4",
		"  netsim.inbox_total           8",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("snapshot text:\n%s\nwant:\n%s", got, want)
	}
}
