package netsim

import (
	"errors"
	"testing"
)

func TestBroadcastReachesPeersNotSelf(t *testing.T) {
	n := New()
	a, b, c := n.Attach("a"), n.Attach("b"), n.Attach("c")
	if err := a.Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, peer := range []*Node{b, c} {
		d, ok := peer.Recv()
		if !ok || string(d.Payload) != "hello" || d.From != "a" {
			t.Fatalf("%s: %+v %v", peer.Name(), d, ok)
		}
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("sender received its own broadcast")
	}
}

func TestDatagramsAreCopies(t *testing.T) {
	n := New()
	a, b := n.Attach("a"), n.Attach("b")
	msg := []byte("payload")
	a.Broadcast(msg)
	msg[0] = 'X'
	d, _ := b.Recv()
	if string(d.Payload) != "payload" {
		t.Fatalf("payload aliased: %q", d.Payload)
	}
}

func TestOrderingPerSender(t *testing.T) {
	n := New()
	a, b := n.Attach("a"), n.Attach("b")
	for i := 0; i < 5; i++ {
		a.Broadcast([]byte{byte(i)})
	}
	for i := 0; i < 5; i++ {
		d, ok := b.Recv()
		if !ok || d.Payload[0] != byte(i) {
			t.Fatalf("datagram %d: %+v", i, d)
		}
	}
}

func TestDropFunction(t *testing.T) {
	n := New()
	n.Drop = func(from, to string, seq uint64) bool { return to == "b" }
	a := n.Attach("a")
	b := n.Attach("b")
	c := n.Attach("c")
	a.Broadcast([]byte("x"))
	if _, ok := b.Recv(); ok {
		t.Fatal("dropped datagram delivered")
	}
	if _, ok := c.Recv(); !ok {
		t.Fatal("undropped datagram lost")
	}
	if st := n.Stats(); st.Delivered != 1 || st.Dropped != 1 || st.Overflow != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestQueueBound(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	for i := 0; i < DefaultQueueDepth+10; i++ {
		a.Broadcast([]byte{1})
	}
	if b.Pending() != DefaultQueueDepth {
		t.Fatalf("pending = %d", b.Pending())
	}
	// Overflow is its own failure mode, never conflated with Drop losses.
	if st := n.Stats(); st.Overflow != 10 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 10 overflow and no drops", st)
	}
	if bs := n.NodeStats("b"); bs.Overflow != 10 || bs.Delivered != uint64(DefaultQueueDepth) {
		t.Fatalf("node b stats = %+v", bs)
	}
}

func TestDetach(t *testing.T) {
	n := New()
	a, b := n.Attach("a"), n.Attach("b")
	b.Detach()
	a.Broadcast([]byte("x"))
	if _, ok := b.Recv(); ok {
		t.Fatal("detached node received")
	}
	if err := b.Broadcast([]byte("y")); !errors.Is(err, ErrDetached) {
		t.Fatalf("detached broadcast: %v", err)
	}
	if got := n.Nodes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("nodes = %v", got)
	}
}

func TestReattachReplaces(t *testing.T) {
	n := New()
	a := n.Attach("a")
	n.Attach("b")
	a2 := n.Attach("a") // same name
	if err := a.Broadcast([]byte("old")); !errors.Is(err, ErrDetached) {
		t.Fatalf("stale node still attached: %v", err)
	}
	if err := a2.Broadcast([]byte("new")); err != nil {
		t.Fatal(err)
	}
}

func TestAttachReplacingLiveNodeKeepsQueuedInbox(t *testing.T) {
	n := New()
	b := n.Attach("b")
	a := n.Attach("a")
	b.Broadcast([]byte("queued"))

	a2 := n.Attach("a") // replace a while it has a queued datagram

	// The replaced handle can no longer send or unicast...
	if err := a.Broadcast([]byte("x")); !errors.Is(err, ErrDetached) {
		t.Fatalf("replaced node Broadcast: %v", err)
	}
	if err := a.Send("b", []byte("x")); !errors.Is(err, ErrDetached) {
		t.Fatalf("replaced node Send: %v", err)
	}
	// ...but may still drain what was queued before replacement.
	if d, ok := a.Recv(); !ok || string(d.Payload) != "queued" {
		t.Fatalf("replaced node lost its queued inbox: %+v %v", d, ok)
	}
	// The replacement starts with an empty inbox and receives new traffic.
	if _, ok := a2.Recv(); ok {
		t.Fatal("replacement inherited the old inbox")
	}
	b.Broadcast([]byte("fresh"))
	if d, ok := a2.Recv(); !ok || string(d.Payload) != "fresh" {
		t.Fatalf("replacement missed new traffic: %+v %v", d, ok)
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("replaced node received post-replacement traffic")
	}
}

func TestRecvAfterDetachDrainsQueue(t *testing.T) {
	n := New()
	a, b := n.Attach("a"), n.Attach("b")
	a.Broadcast([]byte("one"))
	a.Broadcast([]byte("two"))
	b.Detach()
	for _, want := range []string{"one", "two"} {
		if d, ok := b.Recv(); !ok || string(d.Payload) != want {
			t.Fatalf("detached drain: got %+v %v, want %q", d, ok, want)
		}
	}
	if _, ok := b.Recv(); ok {
		t.Fatal("detached node received beyond its queue")
	}
}

func TestSendUnicast(t *testing.T) {
	n := New()
	a, b, c := n.Attach("a"), n.Attach("b"), n.Attach("c")
	if err := a.Send("b", []byte("direct")); err != nil {
		t.Fatal(err)
	}
	if d, ok := b.Recv(); !ok || string(d.Payload) != "direct" || d.From != "a" {
		t.Fatalf("unicast: %+v %v", d, ok)
	}
	if _, ok := c.Recv(); ok {
		t.Fatal("unicast leaked to a third node")
	}
	// Fire-and-forget: a missing destination is a silent loss, not an error.
	if err := a.Send("nonesuch", []byte("x")); err != nil {
		t.Fatalf("send to absent node: %v", err)
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Fatalf("absent-destination loss not counted: %+v", st)
	}
	if err := a.Send("a", nil); err == nil {
		t.Fatal("self-send not rejected")
	}
}

func TestSendHonoursDropAndNodeStats(t *testing.T) {
	n := New()
	n.Drop = func(from, to string, seq uint64) bool { return seq%2 == 0 }
	a := n.Attach("a")
	b := n.Attach("b")
	for i := 0; i < 4; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	as, bs := a.Stats(), b.Stats()
	if as.Sent != 4 {
		t.Fatalf("a sent = %d", as.Sent)
	}
	if bs.Delivered != 2 || bs.Dropped != 2 {
		t.Fatalf("b stats = %+v, want 2 delivered / 2 dropped", bs)
	}
	if got := n.NodeStats("b"); got != bs {
		t.Fatalf("NodeStats(b) = %+v, handle says %+v", got, bs)
	}
}
