package netsim

import (
	"errors"
	"testing"
)

func TestBroadcastReachesPeersNotSelf(t *testing.T) {
	n := New()
	a, b, c := n.Attach("a"), n.Attach("b"), n.Attach("c")
	if err := a.Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, peer := range []*Node{b, c} {
		d, ok := peer.Recv()
		if !ok || string(d.Payload) != "hello" || d.From != "a" {
			t.Fatalf("%s: %+v %v", peer.Name(), d, ok)
		}
	}
	if _, ok := a.Recv(); ok {
		t.Fatal("sender received its own broadcast")
	}
}

func TestDatagramsAreCopies(t *testing.T) {
	n := New()
	a, b := n.Attach("a"), n.Attach("b")
	msg := []byte("payload")
	a.Broadcast(msg)
	msg[0] = 'X'
	d, _ := b.Recv()
	if string(d.Payload) != "payload" {
		t.Fatalf("payload aliased: %q", d.Payload)
	}
}

func TestOrderingPerSender(t *testing.T) {
	n := New()
	a, b := n.Attach("a"), n.Attach("b")
	for i := 0; i < 5; i++ {
		a.Broadcast([]byte{byte(i)})
	}
	for i := 0; i < 5; i++ {
		d, ok := b.Recv()
		if !ok || d.Payload[0] != byte(i) {
			t.Fatalf("datagram %d: %+v", i, d)
		}
	}
}

func TestDropFunction(t *testing.T) {
	n := New()
	n.Drop = func(from, to string, seq uint64) bool { return to == "b" }
	a := n.Attach("a")
	b := n.Attach("b")
	c := n.Attach("c")
	a.Broadcast([]byte("x"))
	if _, ok := b.Recv(); ok {
		t.Fatal("dropped datagram delivered")
	}
	if _, ok := c.Recv(); !ok {
		t.Fatal("undropped datagram lost")
	}
	if del, drop := n.Stats(); del != 1 || drop != 1 {
		t.Fatalf("stats = %d/%d", del, drop)
	}
}

func TestQueueBound(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	for i := 0; i < DefaultQueueDepth+10; i++ {
		a.Broadcast([]byte{1})
	}
	if b.Pending() != DefaultQueueDepth {
		t.Fatalf("pending = %d", b.Pending())
	}
	_, dropped := n.Stats()
	if dropped != 10 {
		t.Fatalf("dropped = %d", dropped)
	}
}

func TestDetach(t *testing.T) {
	n := New()
	a, b := n.Attach("a"), n.Attach("b")
	b.Detach()
	a.Broadcast([]byte("x"))
	if _, ok := b.Recv(); ok {
		t.Fatal("detached node received")
	}
	if err := b.Broadcast([]byte("y")); !errors.Is(err, ErrDetached) {
		t.Fatalf("detached broadcast: %v", err)
	}
	if got := n.Nodes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("nodes = %v", got)
	}
}

func TestReattachReplaces(t *testing.T) {
	n := New()
	a := n.Attach("a")
	n.Attach("b")
	a2 := n.Attach("a") // same name
	if err := a.Broadcast([]byte("old")); !errors.Is(err, ErrDetached) {
		t.Fatalf("stale node still attached: %v", err)
	}
	if err := a2.Broadcast([]byte("new")); err != nil {
		t.Fatal(err)
	}
}
