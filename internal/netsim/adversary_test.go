package netsim

import (
	"testing"
)

func drain(nd *Node) []Datagram {
	var out []Datagram
	for {
		d, ok := nd.Recv()
		if !ok {
			return out
		}
		out = append(out, d)
	}
}

func TestDupDeliversTwice(t *testing.T) {
	n := New()
	n.Dup = func(from, to string, seq uint64) bool { return true }
	a := n.Attach("a")
	b := n.Attach("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got := drain(b)
	if len(got) != 2 || string(got[0].Payload) != "x" || string(got[1].Payload) != "x" {
		t.Fatalf("got %d datagrams, want 2 identical", len(got))
	}
	// Copies must not alias: mutating one leaves the other intact.
	got[0].Payload[0] = 'y'
	if got[1].Payload[0] != 'x' {
		t.Fatal("duplicate aliases the original payload")
	}
	st := n.Stats()
	if st.Duplicated != 1 || st.Delivered != 2 {
		t.Fatalf("stats = %+v, want Duplicated=1 Delivered=2", st)
	}
	if ns := n.NodeStats("b"); ns.Duplicated != 1 || ns.Delivered != 2 {
		t.Fatalf("node stats = %+v", ns)
	}
}

func TestDupCopyCanOverflowIndependently(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	for i := 0; i < DefaultQueueDepth-1; i++ {
		a.Send("b", []byte{1})
	}
	// One slot left: the original fits, the duplicate overflows.
	n.Dup = func(from, to string, seq uint64) bool { return true }
	a.Send("b", []byte{2})
	st := n.Stats()
	if st.Overflow != 1 || st.Duplicated != 1 {
		t.Fatalf("stats = %+v, want exactly the duplicate overflowed", st)
	}
	if b.Pending() != DefaultQueueDepth {
		t.Fatalf("pending = %d", b.Pending())
	}
}

func TestReorderOvertakesQueue(t *testing.T) {
	n := New()
	a := n.Attach("a")
	b := n.Attach("b")
	a.Send("b", []byte("first"))
	n.Reorder = func(from, to string, seq uint64) bool { return true }
	a.Send("b", []byte("second"))
	got := drain(b)
	if len(got) != 2 || string(got[0].Payload) != "second" || string(got[1].Payload) != "first" {
		t.Fatalf("reorder did not overtake: %q", got)
	}
	if st := n.Stats(); st.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", st.Reordered)
	}
}

func TestReorderIntoEmptyQueueNotCounted(t *testing.T) {
	n := New()
	a := n.Attach("a")
	n.Attach("b")
	n.Reorder = func(from, to string, seq uint64) bool { return true }
	a.Send("b", []byte("only"))
	if st := n.Stats(); st.Reordered != 0 || st.Delivered != 1 {
		t.Fatalf("stats = %+v: overtaking an empty queue is no reorder", st)
	}
}

func TestDelayMaturesAfterAdvance(t *testing.T) {
	n := New()
	n.DelayTicks = func(from, to string, seq uint64) int { return 2 }
	a := n.Attach("a")
	b := n.Attach("b")
	a.Send("b", []byte("slow"))
	if b.Pending() != 0 || n.InFlight() != 1 {
		t.Fatalf("pending=%d inflight=%d, want datagram held", b.Pending(), n.InFlight())
	}
	n.Advance()
	if b.Pending() != 0 || n.InFlight() != 1 {
		t.Fatal("matured a tick early")
	}
	n.Advance()
	if b.Pending() != 1 || n.InFlight() != 0 {
		t.Fatalf("pending=%d inflight=%d after 2 ticks", b.Pending(), n.InFlight())
	}
	st := n.Stats()
	if st.Delayed != 1 || st.Delivered != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDelayPreservesSendOrderAmongMatured(t *testing.T) {
	n := New()
	n.DelayTicks = func(from, to string, seq uint64) int { return 1 }
	a := n.Attach("a")
	b := n.Attach("b")
	a.Send("b", []byte("1"))
	a.Send("b", []byte("2"))
	a.Send("b", []byte("3"))
	n.Advance()
	got := drain(b)
	if len(got) != 3 || string(got[0].Payload) != "1" || string(got[2].Payload) != "3" {
		t.Fatalf("matured out of order: %q", got)
	}
}

func TestDelayedToDetachedReceiverIsDropped(t *testing.T) {
	n := New()
	n.DelayTicks = func(from, to string, seq uint64) int { return 1 }
	a := n.Attach("a")
	b := n.Attach("b")
	a.Send("b", []byte("x"))
	b.Detach()
	n.Advance()
	st := n.Stats()
	if st.Dropped != 1 || st.Delivered != 0 || n.InFlight() != 0 {
		t.Fatalf("stats = %+v inflight=%d, want in-flight datagram dropped", st, n.InFlight())
	}
}

func TestDelayedReorderAppliesAtMaturity(t *testing.T) {
	n := New()
	delay := true
	n.DelayTicks = func(from, to string, seq uint64) int {
		if delay {
			return 1
		}
		return 0
	}
	a := n.Attach("a")
	b := n.Attach("b")
	a.Send("b", []byte("slow")) // held one tick
	delay = false
	a.Send("b", []byte("fast")) // immediate
	n.Reorder = func(from, to string, seq uint64) bool { return true }
	n.Advance() // "slow" matures into a non-empty queue and overtakes
	got := drain(b)
	if len(got) != 2 || string(got[0].Payload) != "slow" {
		t.Fatalf("got %q, want matured datagram reordered to front", got)
	}
	if st := n.Stats(); st.Reordered != 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
