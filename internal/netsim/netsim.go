// Package netsim is a broadcast datagram network connecting simulated
// machines, the substrate under the rwhod scenario: "Running on each
// machine, rwhod periodically broadcasts local status information (load
// average, current users, etc.) to other machines, and receives analogous
// information from its peers."
//
// Datagrams are copied per receiver (UDP semantics), queues are bounded,
// and an optional deterministic drop function models a lossy LAN, so the
// experiments stay reproducible.
package netsim

import (
	"errors"
	"sort"
	"sync"
)

// ErrDetached is returned after a node leaves the network.
var ErrDetached = errors.New("netsim: node is detached")

// DefaultQueueDepth bounds each node's inbox; excess datagrams are
// dropped, as a real socket buffer would.
const DefaultQueueDepth = 256

// Datagram is one received message.
type Datagram struct {
	From    string
	Payload []byte
}

// Network is the broadcast bus.
type Network struct {
	mu    sync.Mutex
	nodes map[string]*Node

	// Drop, when non-nil, decides whether the datagram from -> to is
	// lost. It must be deterministic for reproducible experiments.
	Drop func(from, to string, seq uint64) bool

	seq       uint64
	delivered uint64
	dropped   uint64
}

// New creates an empty network.
func New() *Network {
	return &Network{nodes: map[string]*Node{}}
}

// Node is one machine's network interface.
type Node struct {
	name     string
	net      *Network
	inbox    []Datagram
	detached bool
}

// Attach joins the network under the given name, replacing any previous
// node with that name.
func (n *Network) Attach(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.nodes[name]; ok {
		old.detached = true
	}
	nd := &Node{name: name, net: n}
	n.nodes[name] = nd
	return nd
}

// Nodes returns the attached node names, sorted.
func (n *Network) Nodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats reports delivered and dropped datagram counts.
func (n *Network) Stats() (delivered, dropped uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered, n.dropped
}

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Broadcast sends payload to every other attached node (not to itself),
// copying per receiver.
func (nd *Node) Broadcast(payload []byte) error {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd.detached {
		return ErrDetached
	}
	n.seq++
	for name, peer := range n.nodes {
		if peer == nd || peer.detached {
			continue
		}
		if n.Drop != nil && n.Drop(nd.name, name, n.seq) {
			n.dropped++
			continue
		}
		if len(peer.inbox) >= DefaultQueueDepth {
			n.dropped++
			continue
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		peer.inbox = append(peer.inbox, Datagram{From: nd.name, Payload: cp})
		n.delivered++
	}
	return nil
}

// Recv pops the next datagram, reporting false when the inbox is empty.
func (nd *Node) Recv() (Datagram, bool) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(nd.inbox) == 0 {
		return Datagram{}, false
	}
	d := nd.inbox[0]
	nd.inbox = nd.inbox[1:]
	return d, true
}

// Pending reports queued datagrams.
func (nd *Node) Pending() int {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return len(nd.inbox)
}

// Detach removes the node from the network; further Broadcasts fail and
// peers stop delivering to it.
func (nd *Node) Detach() {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	nd.detached = true
	if n.nodes[nd.name] == nd {
		delete(n.nodes, nd.name)
	}
}
