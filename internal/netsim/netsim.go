// Package netsim is a datagram network connecting simulated machines, the
// substrate under the rwhod scenario: "Running on each machine, rwhod
// periodically broadcasts local status information (load average, current
// users, etc.) to other machines, and receives analogous information from
// its peers." Besides the broadcast bus it provides unicast Send, which
// carries the netshm replication protocol.
//
// Datagrams are copied per receiver (UDP semantics), queues are bounded,
// and an optional deterministic drop function models a lossy LAN, so the
// experiments stay reproducible. Losses from the Drop function and losses
// from inbox overflow are accounted separately, network-wide and per node.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hemlock/internal/obsv"
)

// ErrDetached is returned after a node leaves the network.
var ErrDetached = errors.New("netsim: node is detached")

// DefaultQueueDepth bounds each node's inbox; excess datagrams are
// dropped, as a real socket buffer would.
const DefaultQueueDepth = 256

// Datagram is one received message.
type Datagram struct {
	From    string
	Payload []byte
}

// Stats is the network-wide datagram accounting. Dropped counts losses
// injected by the Drop function (the lossy LAN); Overflow counts datagrams
// discarded because the receiver's inbox was full. The two are separate
// failure modes: one is the wire, the other is a slow receiver.
type Stats struct {
	Delivered uint64
	Dropped   uint64
	Overflow  uint64
}

// Lost is the total of both loss modes.
func (s Stats) Lost() uint64 { return s.Dropped + s.Overflow }

// NodeStats is one node's datagram accounting. Sent counts per-receiver
// copies originated by the node; Delivered/Dropped/Overflow count copies
// addressed to the node.
type NodeStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Overflow  uint64
}

// Network is the simulated LAN.
type Network struct {
	mu    sync.Mutex
	nodes map[string]*Node

	// Drop, when non-nil, decides whether the datagram from -> to is
	// lost. It must be deterministic for reproducible experiments.
	Drop func(from, to string, seq uint64) bool

	seq   uint64
	stats Stats

	// Observability wiring (Observe); nil-safe when unwired.
	reg          *obsv.Registry
	ctrDelivered *obsv.Counter
	ctrDropped   *obsv.Counter
	ctrOverflow  *obsv.Counter
}

// New creates an empty network.
func New() *Network {
	return &Network{nodes: map[string]*Node{}}
}

// Observe wires the network into an observability registry: delivered,
// dropped (lossy-LAN) and overflow (full-inbox) counters, plus one
// inbox-depth gauge per attached node ("netsim.inbox.<name>"), sampled at
// snapshot time. Nodes attached before or after Observe are both covered.
func (n *Network) Observe(r *obsv.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = r
	n.ctrDelivered = r.Counter("netsim.delivered")
	n.ctrDropped = r.Counter("netsim.dropped")
	n.ctrOverflow = r.Counter("netsim.overflow")
	for name, nd := range n.nodes {
		n.registerInboxGauge(name, nd)
	}
}

// registerInboxGauge publishes nd's inbox depth; caller holds n.mu. The
// callback re-reads the network's node table so a replaced node's gauge
// tracks the live holder of the name.
func (n *Network) registerInboxGauge(name string, nd *Node) {
	if n.reg == nil {
		return
	}
	n.reg.GaugeFunc("netsim.inbox."+name, func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		if cur, ok := n.nodes[name]; ok {
			return int64(len(cur.inbox))
		}
		return 0
	})
}

// Node is one machine's network interface.
type Node struct {
	name     string
	net      *Network
	inbox    []Datagram
	detached bool
	stats    NodeStats
}

// Attach joins the network under the given name, replacing any previous
// node with that name. The replaced node is detached: its queued inbox
// stays readable, but it receives nothing further and its sends fail.
func (n *Network) Attach(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.nodes[name]; ok {
		old.detached = true
	}
	nd := &Node{name: name, net: n}
	n.nodes[name] = nd
	n.registerInboxGauge(name, nd)
	return nd
}

// Nodes returns the attached node names, sorted.
func (n *Network) Nodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats reports the network-wide datagram accounting.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// NodeStats reports the accounting of the node currently attached under
// name (zero stats if no such node).
func (n *Network) NodeStats(name string) NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[name]; ok {
		return nd.stats
	}
	return NodeStats{}
}

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Stats returns this node handle's accounting (valid even after the node
// was detached or replaced).
func (nd *Node) Stats() NodeStats {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.stats
}

// deliver moves one datagram copy from nd to peer, applying the loss model
// and the inbox bound; caller holds n.mu.
func (n *Network) deliver(nd, peer *Node, payload []byte) {
	nd.stats.Sent++
	if n.Drop != nil && n.Drop(nd.name, peer.name, n.seq) {
		n.stats.Dropped++
		peer.stats.Dropped++
		n.ctrDropped.Inc()
		return
	}
	if len(peer.inbox) >= DefaultQueueDepth {
		n.stats.Overflow++
		peer.stats.Overflow++
		n.ctrOverflow.Inc()
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	peer.inbox = append(peer.inbox, Datagram{From: nd.name, Payload: cp})
	n.stats.Delivered++
	peer.stats.Delivered++
	n.ctrDelivered.Inc()
}

// Broadcast sends payload to every other attached node (not to itself),
// copying per receiver.
func (nd *Node) Broadcast(payload []byte) error {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd.detached {
		return ErrDetached
	}
	n.seq++
	for _, peer := range n.nodes {
		if peer == nd || peer.detached {
			continue
		}
		n.deliver(nd, peer, payload)
	}
	return nil
}

// Send unicasts payload to the named node. Like UDP it is fire-and-forget:
// a missing or detached destination silently loses the datagram (counted
// as a drop), and only a detached sender gets an error.
func (nd *Node) Send(to string, payload []byte) error {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd.detached {
		return ErrDetached
	}
	if to == nd.name {
		return fmt.Errorf("netsim: %s sending to itself", nd.name)
	}
	n.seq++
	peer, ok := n.nodes[to]
	if !ok || peer.detached {
		nd.stats.Sent++
		n.stats.Dropped++
		n.ctrDropped.Inc()
		return nil
	}
	n.deliver(nd, peer, payload)
	return nil
}

// Recv pops the next datagram, reporting false when the inbox is empty.
// A detached node may still drain datagrams queued before it left.
func (nd *Node) Recv() (Datagram, bool) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(nd.inbox) == 0 {
		return Datagram{}, false
	}
	d := nd.inbox[0]
	nd.inbox = nd.inbox[1:]
	return d, true
}

// Pending reports queued datagrams.
func (nd *Node) Pending() int {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return len(nd.inbox)
}

// Detach removes the node from the network; further Broadcasts fail and
// peers stop delivering to it.
func (nd *Node) Detach() {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	nd.detached = true
	if n.nodes[nd.name] == nd {
		delete(n.nodes, nd.name)
	}
}
