// Package netsim is a datagram network connecting simulated machines, the
// substrate under the rwhod scenario: "Running on each machine, rwhod
// periodically broadcasts local status information (load average, current
// users, etc.) to other machines, and receives analogous information from
// its peers." Besides the broadcast bus it provides unicast Send, which
// carries the netshm replication protocol.
//
// Datagrams are copied per receiver (UDP semantics), queues are bounded,
// and optional deterministic adversary functions model a misbehaving LAN:
// Drop (loss), Dup (duplicate delivery), Reorder (queue overtaking) and
// DelayTicks (datagrams held in flight until enough Advance ticks pass).
// Every knob's effect is accounted separately, network-wide and per node,
// so the experiments — and the netshm fuzzer built on top — stay
// reproducible and inspectable.
package netsim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hemlock/internal/obsv"
)

// ErrDetached is returned after a node leaves the network.
var ErrDetached = errors.New("netsim: node is detached")

// DefaultQueueDepth bounds each node's inbox; excess datagrams are
// dropped, as a real socket buffer would.
const DefaultQueueDepth = 256

// Datagram is one received message.
type Datagram struct {
	From    string
	Payload []byte
}

// Stats is the network-wide datagram accounting. Dropped counts losses
// injected by the Drop function (the lossy LAN); Overflow counts datagrams
// discarded because the receiver's inbox was full. The two are separate
// failure modes: one is the wire, the other is a slow receiver. Duplicated,
// Reordered and Delayed count the adversarial-delivery knobs (Dup, Reorder,
// DelayTicks): extra copies injected, queue-jumping deliveries, and
// datagrams held for later Advance ticks.
type Stats struct {
	Delivered  uint64
	Dropped    uint64
	Overflow   uint64
	Duplicated uint64
	Reordered  uint64
	Delayed    uint64

	// BytesSent counts payload bytes handed to the wire, per receiver copy
	// (dropped copies were on the wire too); BytesDelivered counts payload
	// bytes that reached an inbox. The pair is the bytes-on-wire metric the
	// netshm delta benchmarks gate on. AllocBytes counts bytes of fresh
	// datagram-buffer allocation — a pooled steady state keeps it flat.
	BytesSent      uint64
	BytesDelivered uint64
	AllocBytes     uint64
}

// Lost is the total of both loss modes.
func (s Stats) Lost() uint64 { return s.Dropped + s.Overflow }

// NodeStats is one node's datagram accounting. Sent counts per-receiver
// copies originated by the node; the remaining fields count copies
// addressed to the node (Duplicated/Reordered/Delayed attribute the
// adversarial knobs to the receiver they acted on).
type NodeStats struct {
	Sent       uint64
	Delivered  uint64
	Dropped    uint64
	Overflow   uint64
	Duplicated uint64
	Reordered  uint64
	Delayed    uint64

	BytesSent      uint64
	BytesDelivered uint64
}

// Network is the simulated LAN.
type Network struct {
	mu    sync.Mutex
	nodes map[string]*Node

	// Drop, when non-nil, decides whether the datagram from -> to is
	// lost. It must be deterministic for reproducible experiments — as
	// must Dup, Reorder and DelayTicks below.
	Drop func(from, to string, seq uint64) bool

	// Dup, when non-nil and true, injects one extra copy of the datagram
	// (duplicate delivery, as a retransmitting or confused switch would).
	Dup func(from, to string, seq uint64) bool

	// Reorder, when non-nil and true, makes the datagram overtake the
	// receiver's queue: it is inserted at the front of the inbox instead
	// of appended.
	Reorder func(from, to string, seq uint64) bool

	// DelayTicks, when non-nil and positive, holds the datagram in flight
	// for that many Advance calls before it reaches the receiver's inbox.
	DelayTicks func(from, to string, seq uint64) int

	seq     uint64
	stats   Stats
	delayed []delayedDatagram

	// Bounded free list of datagram buffers. Every per-receiver copy of a
	// payload that fits poolBufCap draws from here; receivers hand buffers
	// back with Recycle once the payload is consumed. At 1024-node fan-out
	// this turns the per-tick copy storm into reuse of a few hundred
	// buffers instead of a fresh allocation per copy.
	pool [][]byte

	// inboxTotal is the network-wide queued-datagram count, maintained
	// incrementally (O(changed), not O(nodes)) so the observability gauge
	// never scans the node table.
	inboxTotal atomic.Int64

	// holders maps node names to stable per-name cells the inbox gauges
	// read lock-free; Attach re-points the cell, Detach clears it.
	holders    map[string]*nodeHolder
	gaugeCount int

	// Observability wiring (Observe); nil-safe when unwired.
	reg           *obsv.Registry
	ctrDelivered  *obsv.Counter
	ctrDropped    *obsv.Counter
	ctrOverflow   *obsv.Counter
	ctrDuplicated *obsv.Counter
	ctrReordered  *obsv.Counter
	ctrDelayed    *obsv.Counter
	ctrBytesSent  *obsv.Counter
	ctrBytesDeliv *obsv.Counter
	ctrAllocBytes *obsv.Counter
}

// poolBufCap is the pooled datagram buffer class; larger payloads get an
// exact-size unpooled allocation.
const poolBufCap = 8192

// poolMax bounds the free list (poolMax * poolBufCap bytes worst case).
const poolMax = 4096

// maxInboxGauges caps how many per-node inbox gauges are registered. A
// 1024-machine fleet does not want 1024 gauge rows in every snapshot; the
// first nodes keep their named gauges (enough for every hand-built test
// and scenario) and netsim.inbox_total covers the whole fleet.
const maxInboxGauges = 32

// nodeHolder is the stable cell a per-name inbox gauge reads without
// taking the network lock.
type nodeHolder struct {
	p atomic.Pointer[Node]
}

// delayedDatagram is an in-flight datagram held by the DelayTicks knob.
type delayedDatagram struct {
	from, to string
	seq      uint64
	payload  []byte // already copied
	ticks    int
}

// New creates an empty network.
func New() *Network {
	return &Network{nodes: map[string]*Node{}, holders: map[string]*nodeHolder{}}
}

// Observe wires the network into an observability registry: delivered,
// dropped (lossy-LAN) and overflow (full-inbox) counters, plus one
// inbox-depth gauge per attached node ("netsim.inbox.<name>"), sampled at
// snapshot time. Nodes attached before or after Observe are both covered.
func (n *Network) Observe(r *obsv.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg = r
	n.ctrDelivered = r.Counter("netsim.delivered")
	n.ctrDropped = r.Counter("netsim.dropped")
	n.ctrOverflow = r.Counter("netsim.overflow")
	n.ctrDuplicated = r.Counter("netsim.duplicated")
	n.ctrReordered = r.Counter("netsim.reordered")
	n.ctrDelayed = r.Counter("netsim.delayed")
	n.ctrBytesSent = r.Counter("netsim.bytes_sent")
	n.ctrBytesDeliv = r.Counter("netsim.bytes_delivered")
	n.ctrAllocBytes = r.Counter("netsim.alloc_bytes")
	r.GaugeFunc("netsim.inbox_total", func() int64 { return n.inboxTotal.Load() })
	// Deterministic registration order for nodes attached before Observe.
	names := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n.registerInboxGauge(name)
	}
}

// registerInboxGauge publishes the inbox depth of whatever node currently
// holds name; caller holds n.mu. The gauge callback is lock-free: it reads
// a stable per-name cell (re-pointed by Attach, cleared by Detach) and the
// node's atomic depth counter, so a 1024-node snapshot costs 1024 atomic
// loads instead of 1024 mutex round trips over the node table. Only the
// first maxInboxGauges names get individual gauges; netsim.inbox_total
// covers everyone.
func (n *Network) registerInboxGauge(name string) {
	if n.reg == nil || n.gaugeCount >= maxInboxGauges {
		return
	}
	h := n.holders[name]
	if h == nil {
		return
	}
	n.gaugeCount++
	n.reg.GaugeFunc("netsim.inbox."+name, func() int64 {
		if nd := h.p.Load(); nd != nil {
			return nd.depth.Load()
		}
		return 0
	})
}

// Node is one machine's network interface.
type Node struct {
	name     string
	net      *Network
	inbox    []Datagram
	detached bool
	stats    NodeStats

	// depth mirrors len(inbox) atomically so the inbox gauges can read it
	// without the network lock.
	depth atomic.Int64
}

// Attach joins the network under the given name, replacing any previous
// node with that name. The replaced node is detached: its queued inbox
// stays readable, but it receives nothing further and its sends fail.
func (n *Network) Attach(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.nodes[name]; ok {
		old.detached = true
	}
	nd := &Node{name: name, net: n}
	n.nodes[name] = nd
	h, ok := n.holders[name]
	if !ok {
		h = &nodeHolder{}
		n.holders[name] = h
	}
	h.p.Store(nd)
	if !ok {
		n.registerInboxGauge(name)
	}
	return nd
}

// Nodes returns the attached node names, sorted.
func (n *Network) Nodes() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats reports the network-wide datagram accounting.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// NodeStats reports the accounting of the node currently attached under
// name (zero stats if no such node).
func (n *Network) NodeStats(name string) NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd, ok := n.nodes[name]; ok {
		return nd.stats
	}
	return NodeStats{}
}

// Name returns the node's name.
func (nd *Node) Name() string { return nd.name }

// Stats returns this node handle's accounting (valid even after the node
// was detached or replaced).
func (nd *Node) Stats() NodeStats {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.stats
}

// copyBuf returns a copy of payload drawn from the datagram buffer pool
// (exact-size unpooled allocation for oversize payloads); caller holds
// n.mu. Fresh allocations are charged to alloc_bytes at their capacity.
func (n *Network) copyBuf(payload []byte) []byte {
	var cp []byte
	if len(payload) <= poolBufCap {
		if k := len(n.pool); k > 0 {
			cp = n.pool[k-1][:len(payload)]
			n.pool[k-1] = nil
			n.pool = n.pool[:k-1]
		} else {
			cp = make([]byte, len(payload), poolBufCap)
			n.stats.AllocBytes += poolBufCap
			n.ctrAllocBytes.Add(poolBufCap)
		}
	} else {
		cp = make([]byte, len(payload))
		n.stats.AllocBytes += uint64(len(payload))
		n.ctrAllocBytes.Add(uint64(len(payload)))
	}
	copy(cp, payload)
	return cp
}

// Recycle hands a received datagram's payload back to the buffer pool.
// Receivers call it once the payload is fully consumed — the buffer will
// back a future datagram, so keeping any slice of it is a bug. Only
// pool-class buffers are kept; anything else is left to the GC.
func (n *Network) Recycle(p []byte) {
	if cap(p) != poolBufCap {
		return
	}
	n.mu.Lock()
	if len(n.pool) < poolMax {
		n.pool = append(n.pool, p[:poolBufCap])
	}
	n.mu.Unlock()
}

// deliver moves one datagram from nd to peer, applying the adversarial
// knobs in wire order — loss, then duplication, then per-copy delay —
// before the copies reach the inbox via enqueue; caller holds n.mu.
func (n *Network) deliver(nd, peer *Node, payload []byte) {
	nd.stats.Sent++
	nd.stats.BytesSent += uint64(len(payload))
	n.stats.BytesSent += uint64(len(payload))
	n.ctrBytesSent.Add(uint64(len(payload)))
	if n.Drop != nil && n.Drop(nd.name, peer.name, n.seq) {
		n.stats.Dropped++
		peer.stats.Dropped++
		n.ctrDropped.Inc()
		return
	}
	copies := 1
	if n.Dup != nil && n.Dup(nd.name, peer.name, n.seq) {
		copies = 2
		n.stats.Duplicated++
		peer.stats.Duplicated++
		n.ctrDuplicated.Inc()
	}
	for i := 0; i < copies; i++ {
		cp := n.copyBuf(payload)
		if n.DelayTicks != nil {
			if t := n.DelayTicks(nd.name, peer.name, n.seq); t > 0 {
				n.delayed = append(n.delayed, delayedDatagram{
					from: nd.name, to: peer.name, seq: n.seq, payload: cp, ticks: t,
				})
				n.stats.Delayed++
				peer.stats.Delayed++
				n.ctrDelayed.Inc()
				continue
			}
		}
		n.enqueue(nd.name, peer, n.seq, cp)
	}
}

// enqueue places one already-copied datagram into peer's inbox, applying
// the Reorder knob and the inbox bound; caller holds n.mu.
func (n *Network) enqueue(from string, peer *Node, seq uint64, cp []byte) {
	if len(peer.inbox) >= DefaultQueueDepth {
		n.stats.Overflow++
		peer.stats.Overflow++
		n.ctrOverflow.Inc()
		// The copy never reaches a receiver, so no one will Recycle it;
		// reclaim it here.
		if cap(cp) == poolBufCap && len(n.pool) < poolMax {
			n.pool = append(n.pool, cp[:poolBufCap])
		}
		return
	}
	d := Datagram{From: from, Payload: cp}
	if n.Reorder != nil && len(peer.inbox) > 0 && n.Reorder(from, peer.name, seq) {
		// Overtake everything queued (counted only when something was
		// actually overtaken).
		peer.inbox = append([]Datagram{d}, peer.inbox...)
		n.stats.Reordered++
		peer.stats.Reordered++
		n.ctrReordered.Inc()
	} else {
		peer.inbox = append(peer.inbox, d)
	}
	peer.depth.Add(1)
	n.inboxTotal.Add(1)
	n.stats.Delivered++
	peer.stats.Delivered++
	n.stats.BytesDelivered += uint64(len(cp))
	peer.stats.BytesDelivered += uint64(len(cp))
	n.ctrDelivered.Inc()
	n.ctrBytesDeliv.Add(uint64(len(cp)))
}

// Advance ages every in-flight (delayed) datagram by one tick and enqueues
// the ones that matured, in send order. A datagram whose receiver detached
// while it was in flight is lost and counted as a drop. Networks that never
// set DelayTicks never need to call Advance.
func (n *Network) Advance() {
	n.mu.Lock()
	defer n.mu.Unlock()
	still := n.delayed[:0]
	for _, d := range n.delayed {
		d.ticks--
		if d.ticks > 0 {
			still = append(still, d)
			continue
		}
		peer, ok := n.nodes[d.to]
		if !ok || peer.detached {
			n.stats.Dropped++
			n.ctrDropped.Inc()
			continue
		}
		n.enqueue(d.from, peer, d.seq, d.payload)
	}
	n.delayed = still
}

// InFlight reports how many delayed datagrams have not yet matured.
func (n *Network) InFlight() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.delayed)
}

// Broadcast sends payload to every other attached node (not to itself),
// copying per receiver.
func (nd *Node) Broadcast(payload []byte) error {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd.detached {
		return ErrDetached
	}
	n.seq++
	for _, peer := range n.nodes {
		if peer == nd || peer.detached {
			continue
		}
		n.deliver(nd, peer, payload)
	}
	return nil
}

// Send unicasts payload to the named node. Like UDP it is fire-and-forget:
// a missing or detached destination silently loses the datagram (counted
// as a drop), and only a detached sender gets an error.
func (nd *Node) Send(to string, payload []byte) error {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd.detached {
		return ErrDetached
	}
	if to == nd.name {
		return fmt.Errorf("netsim: %s sending to itself", nd.name)
	}
	n.seq++
	peer, ok := n.nodes[to]
	if !ok || peer.detached {
		nd.stats.Sent++
		n.stats.Dropped++
		n.ctrDropped.Inc()
		return nil
	}
	n.deliver(nd, peer, payload)
	return nil
}

// Recv pops the next datagram, reporting false when the inbox is empty.
// A detached node may still drain datagrams queued before it left.
func (nd *Node) Recv() (Datagram, bool) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(nd.inbox) == 0 {
		return Datagram{}, false
	}
	d := nd.inbox[0]
	nd.inbox[0] = Datagram{}
	nd.inbox = nd.inbox[1:]
	nd.depth.Add(-1)
	n.inboxTotal.Add(-1)
	return d, true
}

// Pending reports queued datagrams.
func (nd *Node) Pending() int {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return len(nd.inbox)
}

// Detach removes the node from the network; further Broadcasts fail and
// peers stop delivering to it.
func (nd *Node) Detach() {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	nd.detached = true
	if n.nodes[nd.name] == nd {
		delete(n.nodes, nd.name)
	}
	if h, ok := n.holders[nd.name]; ok && h.p.Load() == nd {
		h.p.Store(nil)
	}
}
