package vm

// Sampler receives guest-PC samples from the interpreter at batch and
// block boundaries: each call reports the PC about to execute and the
// cumulative retired-instruction count, so a sampler can attribute the
// steps since the previous call to the previous PC. The hook costs one
// nil check per block boundary when no sampler is installed and must not
// allocate on the interpreter side (see TestSampleHookAllocs).
type Sampler interface {
	Sample(pc uint32, steps uint64)
}

// SetSampler installs (or, with nil, removes) the guest-PC sampler.
func (c *CPU) SetSampler(s Sampler) {
	c.sampler = s
}

// sample reports the current PC and retired count to the sampler, if any.
// extra is the count retired since the last fold into c.Steps.
func (c *CPU) sample(extra uint64) {
	if c.sampler != nil {
		c.sampler.Sample(c.PC, c.Steps+extra)
	}
}
