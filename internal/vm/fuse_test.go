package vm_test

// Semantic corners of macro-op fusion. Every test here must pass
// identically with HEMLOCK_BLOCK_ENGINE=0 — fusion is an encoding of the
// sequential semantics, never a change to them — so none of these tests
// skip when the engine is off; the ones that assert FusedOps gate that
// single check on BlockEngineOn.

import (
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
	"hemlock/internal/vm"
)

func runHalt(t *testing.T, c *vm.CPU) {
	t.Helper()
	ev, err := c.RunBatch(1000)
	if err != nil || ev != vm.EventHalt {
		t.Fatalf("ev=%v err=%v pc=0x%08x, want halt", ev, err, c.PC)
	}
}

// TestFuseLUIORIDistinctRegs: the composed constant lands in the ORI's
// destination while the LUI's destination keeps the high half — fusion must
// retire both architectural writes.
func TestFuseLUIORIDistinctRegs(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLUI, 8, 0, 0x1234), // lui t0, 0x1234
		isa.EncodeI(isa.OpORI, 9, 8, 0x5678), // ori t1, t0, 0x5678
		isa.EncodeI(isa.OpHALT, 0, 0, 0),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	runHalt(t, c)
	if c.Regs[8] != 0x12340000 || c.Regs[9] != 0x12345678 {
		t.Fatalf("t0=0x%08x t1=0x%08x, want high half and composed constant", c.Regs[8], c.Regs[9])
	}
	if c.BlockEngineOn() && c.CacheStats().FusedOps == 0 {
		t.Fatal("lui/ori pair not fused")
	}
}

// TestFuseZeroDestNotFused: lui into $zero writes nothing, so a following
// ori reading $zero must see zero, not the discarded high half. The fusion
// guard refuses the pair outright.
func TestFuseZeroDestNotFused(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLUI, 0, 0, 0x1234), // lui $zero, 0x1234
		isa.EncodeI(isa.OpORI, 9, 0, 5),      // ori t1, $zero, 5
		isa.EncodeI(isa.OpHALT, 0, 0, 0),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	runHalt(t, c)
	if c.Regs[0] != 0 {
		t.Fatalf("$zero = 0x%08x", c.Regs[0])
	}
	if c.Regs[9] != 5 {
		t.Fatalf("t1 = 0x%08x, want 5 ($zero misread as the LUI value?)", c.Regs[9])
	}
	if c.CacheStats().FusedOps != 0 {
		t.Fatal("pair with a $zero LUI destination must not fuse")
	}
}

// TestFuseLUISWStoresOwnRegister: when the store's source IS the register
// the LUI just wrote (sw t0, off(t0)), the stored value is the fresh high
// half — sequential aliasing semantics the fused op must reproduce.
func TestFuseLUISWStoresOwnRegister(t *testing.T) {
	const data = uint32(0x00010000) // hi=1, lo=0: composed by the pair
	as := mapPages(t, map[uint32]addrspace.Prot{
		benchTextBase: addrspace.ProtRWX,
		data:          addrspace.ProtRW,
	})
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLUI, 8, 0, 1), // lui t0, 1       (t0 = 0x00010000)
		isa.EncodeI(isa.OpSW, 8, 8, 0),  // sw t0, 0(t0)
		isa.EncodeI(isa.OpHALT, 0, 0, 0),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	runHalt(t, c)
	got, err := as.LoadWord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != data {
		t.Fatalf("stored 0x%08x, want the LUI value 0x%08x", got, data)
	}
	if c.BlockEngineOn() && c.CacheStats().FusedOps == 0 {
		t.Fatal("lui/sw pair not fused")
	}
}

// TestFuseTrampolineCall: the three-word ldl call trampoline
// (lui/ori/jalr) fuses into one op that must still produce all three
// architectural writes — target register, link register — and land on the
// target.
func TestFuseTrampolineCall(t *testing.T) {
	const target = benchTextBase + 0x40
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLUI, 9, 0, 0),              // lui t1, hi(target)
		isa.EncodeI(isa.OpORI, 9, 9, uint16(target)), // ori t1, t1, lo(target)
		isa.EncodeR(isa.FnJALR, isa.RegRA, 9, 0, 0),  // jalr ra, t1
	})
	putCode(t, as, target, []uint32{isa.EncodeI(isa.OpHALT, 0, 0, 0)})
	c := vm.New(as)
	c.PC = benchTextBase
	runHalt(t, c)
	if c.PC != target {
		t.Fatalf("pc = 0x%08x, want target 0x%08x", c.PC, target)
	}
	if c.Regs[isa.RegRA] != benchTextBase+12 {
		t.Fatalf("ra = 0x%08x, want return address 0x%08x", c.Regs[isa.RegRA], benchTextBase+12)
	}
	if c.Regs[9] != target {
		t.Fatalf("t1 = 0x%08x, want the composed target", c.Regs[9])
	}
	if c.Steps != 4 {
		t.Fatalf("steps = %d, want 4 (three trampoline words + halt)", c.Steps)
	}
	if c.BlockEngineOn() && c.CacheStats().FusedOps == 0 {
		t.Fatal("call trampoline not fused")
	}
}

// TestFuseLUIAtPageEndNoOverrun: a LUI in the last word of a mapped page
// cannot fuse (its partner lives on the next page) and must not make the
// builder read past the mapping. Execution retires the LUI, then faults
// fetching the unmapped next page with exact state.
func TestFuseLUIAtPageEndNoOverrun(t *testing.T) {
	as := mapPages(t, map[uint32]addrspace.Prot{benchTextBase: addrspace.ProtRWX})
	last := uint32(benchTextBase + mem.PageSize - 4)
	putCode(t, as, last, []uint32{isa.EncodeI(isa.OpLUI, 8, 0, 0x1234)})
	c := vm.New(as)
	c.PC = last
	_, err := c.RunBatch(10)
	f, ok := vm.FaultOf(err)
	if !ok || !f.Unmapped || f.Access != addrspace.AccessExec {
		t.Fatalf("want unmapped exec fault past the page, got %v", err)
	}
	if c.Steps != 1 || c.Regs[8] != 0x12340000 {
		t.Fatalf("steps=%d t0=0x%08x, want the LUI retired before the fault", c.Steps, c.Regs[8])
	}
	if c.PC != benchTextBase+mem.PageSize {
		t.Fatalf("pc = 0x%08x, want the faulting fetch address", c.PC)
	}
}

// TestFuseLUILWFaultRetiresPrefix: when the fused pair's load faults, the
// LUI half has still retired — PC stops on the LW with the high half
// written and exactly one step counted, so the trap is restartable at the
// right instruction.
func TestFuseLUILWFaultRetiresPrefix(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLUI, 8, 0, 0x4000), // lui t0, 0x4000 (unmapped region)
		isa.EncodeI(isa.OpLW, 9, 8, 0),       // lw t1, 0(t0)   (fuses, then faults)
		isa.EncodeI(isa.OpHALT, 0, 0, 0),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	c.Regs[9] = 0xAAAAAAAA
	_, err := c.RunBatch(10)
	f, ok := vm.FaultOf(err)
	if !ok || !f.Unmapped || f.Access != addrspace.AccessRead {
		t.Fatalf("want unmapped read fault, got %v", err)
	}
	if c.PC != benchTextBase+4 {
		t.Fatalf("pc = 0x%08x, want the LW (restartable trap)", c.PC)
	}
	if c.Steps != 1 {
		t.Fatalf("steps = %d, want 1 (only the LUI retired)", c.Steps)
	}
	if c.Regs[8] != 0x40000000 {
		t.Fatalf("t0 = 0x%08x, want the retired LUI value", c.Regs[8])
	}
	if c.Regs[9] != 0xAAAAAAAA {
		t.Fatal("faulting LW wrote its destination")
	}
}
