package vm

import (
	"testing"

	"hemlock/internal/isa"
)

// aluCases and immCases are package-level so ref_test.go can replay the
// same vectors through ReferenceStep and assert fast/reference agreement.
var aluCases = []struct {
	name string
	word uint32
	a, b uint32 // $t0, $t1 inputs
	want uint32 // expected $t2
}{
	{"add", isa.EncodeR(isa.FnADD, 10, 8, 9, 0), 7, 5, 12},
	{"addu-wrap", isa.EncodeR(isa.FnADDU, 10, 8, 9, 0), 0xFFFFFFFF, 2, 1},
	{"sub", isa.EncodeR(isa.FnSUB, 10, 8, 9, 0), 5, 7, 0xFFFFFFFE},
	{"and", isa.EncodeR(isa.FnAND, 10, 8, 9, 0), 0xF0F0, 0xFF00, 0xF000},
	{"or", isa.EncodeR(isa.FnOR, 10, 8, 9, 0), 0xF0F0, 0x0F0F, 0xFFFF},
	{"xor", isa.EncodeR(isa.FnXOR, 10, 8, 9, 0), 0xFF, 0x0F, 0xF0},
	{"nor", isa.EncodeR(isa.FnNOR, 10, 8, 9, 0), 0, 0, 0xFFFFFFFF},
	{"mul", isa.EncodeR(isa.FnMUL, 10, 8, 9, 0), 1000, 1000, 1000000},
	{"div-signed", isa.EncodeR(isa.FnDIV, 10, 8, 9, 0), 0xFFFFFFF9, 2, 0xFFFFFFFD}, // -7/2 = -3
	{"slt-true", isa.EncodeR(isa.FnSLT, 10, 8, 9, 0), 0xFFFFFFFF, 0, 1},            // -1 < 0
	{"sltu-false", isa.EncodeR(isa.FnSLTU, 10, 8, 9, 0), 0xFFFFFFFF, 0, 0},
}

var immCases = []struct {
	name string
	word uint32
	in   uint32 // $t0
	want uint32 // $t1
}{
	{"addi-neg", isa.EncodeI(isa.OpADDI, 9, 8, 0xFFFF), 10, 9},
	{"andi-zeroext", isa.EncodeI(isa.OpANDI, 9, 8, 0xFFFF), 0xABCD1234, 0x1234},
	{"ori", isa.EncodeI(isa.OpORI, 9, 8, 0x00F0), 0x0F00, 0x0FF0},
	{"xori", isa.EncodeI(isa.OpXORI, 9, 8, 0x00FF), 0x0F0F, 0x0FF0},
	{"slti-neg", isa.EncodeI(isa.OpSLTI, 9, 8, 0xFFFF), 0xFFFFFFFE, 1}, // -2 < -1
	{"sltiu-signext", isa.EncodeI(isa.OpSLTIU, 9, 8, 0xFFFF), 5, 1},    // 5 < 0xFFFFFFFF
	{"lui", isa.EncodeI(isa.OpLUI, 9, 0, 0x1234), 0, 0x12340000},
}

// TestALUOperationTable pins every ALU operation's semantics with direct
// register setup (no assembler in the loop).
func TestALUOperationTable(t *testing.T) {
	for _, c := range aluCases {
		cpu := loadProgram(t, ".text\n nop\n halt\n", 0x1000)
		cpu.AS.StoreWord(0x1000, c.word)
		cpu.Regs[8], cpu.Regs[9] = c.a, c.b
		if _, err := cpu.Run(10); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cpu.Regs[10] != c.want {
			t.Errorf("%s: $t2 = 0x%x, want 0x%x", c.name, cpu.Regs[10], c.want)
		}
	}
}

// TestImmediateOperationTable covers the I-type ALU forms.
func TestImmediateOperationTable(t *testing.T) {
	for _, c := range immCases {
		cpu := loadProgram(t, ".text\n nop\n halt\n", 0x1000)
		cpu.AS.StoreWord(0x1000, c.word)
		cpu.Regs[8] = c.in
		if _, err := cpu.Run(10); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if cpu.Regs[9] != c.want {
			t.Errorf("%s: $t1 = 0x%x, want 0x%x", c.name, cpu.Regs[9], c.want)
		}
	}
}

func TestBlezBgtzBoundaries(t *testing.T) {
	// blez taken at 0 and negative; bgtz only at positive.
	run := func(op int, val uint32) bool {
		cpu := loadProgram(t, ".text\n nop\n li $t1, 1\n halt\n", 0x1000)
		// Replace nop with branch over the li.
		cpu.AS.StoreWord(0x1000, isa.EncodeI(op, 0, 8, 2)) // skip 2 words
		cpu.Regs[8] = val
		if _, err := cpu.Run(10); err != nil {
			t.Fatal(err)
		}
		return cpu.Regs[9] == 0 // branch taken => li skipped
	}
	if !run(isa.OpBLEZ, 0) || !run(isa.OpBLEZ, 0xFFFFFFFF) || run(isa.OpBLEZ, 1) {
		t.Fatal("blez semantics wrong")
	}
	if run(isa.OpBGTZ, 0) || run(isa.OpBGTZ, 0xFFFFFFFF) || !run(isa.OpBGTZ, 1) {
		t.Fatal("bgtz semantics wrong")
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	cpu := loadProgram(t, ".text\n li $t0, 5\n halt\n", 0x1000)
	snap := cpu.Snapshot()
	if _, err := cpu.Run(10); err != nil {
		t.Fatal(err)
	}
	if snap.Regs[8] == cpu.Regs[8] && cpu.Regs[8] != 0 {
		t.Fatal("snapshot aliases live registers")
	}
	if snap.PC != 0x1000 {
		t.Fatalf("snapshot PC = 0x%x", snap.PC)
	}
}

func TestJalrCustomLinkRegister(t *testing.T) {
	cpu := loadProgram(t, `
        .text
        li      $t0, 0x1010
        jalr    $t1, $t0
        halt
target: halt
`, 0x1000)
	if _, err := cpu.Run(10); err != nil {
		t.Fatal(err)
	}
	// jalr $t1, $t0: link goes into $t1, not $ra.
	if cpu.Regs[9] == 0 {
		t.Fatal("custom link register not written")
	}
	if cpu.Regs[31] != 0 {
		t.Fatal("$ra clobbered by jalr with explicit rd")
	}
}
