package vm

// Macro-op fusion for the idioms the linkers emit constantly. R3K-lite has
// no 32-bit immediates, so every absolute address the compilers and the
// lds/ldl relocation machinery materialise is a LUI/ORI pair (HI16/LO16
// relocations), every absolute load/store is LUI+LW/SW, and every
// out-of-region control transfer is the three-word trampoline
// lui/ori/jr(jalr) (isa.TrampolineWords). Fusing those at block build
// turns a cross-segment call's address arithmetic into one op with the
// target folded in as a constant — and because the fused trampoline's
// target is static, the call chains like a direct jump, which is where
// the CallFar numbers come from.
//
// The fourth idiom the ISSUE names, the jal+nop call sequence, is handled
// by nop absorption rather than a dedicated op: nops never emit ops, they
// ride along as a `pre` count on the following op (the nop after a jal
// belongs to the return point's block and retires, for free, when the
// callee returns there). Fusing the nop into the jal itself would be
// wrong: it retires only if the callee returns, and a callee that halts
// would leave the step count diverged from the reference interpreter.
//
// Fusion is semantics-preserving per instruction pair, including the ugly
// corners, each pinned by TestFuse*:
//
//   - lui.rt == $zero never fuses: the pair's second half reads $zero as
//     0, not the discarded high half;
//   - ori.rt may differ from lui.rt: both registers are written;
//   - sw.rt == lui.rt stores the freshly materialised high half;
//   - a fault in the second half retires the LUI and traps with PC on
//     the memory instruction, exactly like the sequential execution the
//     fault handler will restart.

import "hemlock/internal/isa"

// fuseLUI inspects the words after a LUI at ipc (word index wi in the
// block's page) and, when a fusable idiom follows, returns the fused op
// plus the number of primary instructions consumed (2 or 3) and whether
// the op terminates the block. words == 1 means no fusion.
func (c *CPU) fuseLUI(in pinst, ipc, wi uint32, word func(uint32) uint32) (fop bop, words uint16, terminal bool) {
	if in.rt == 0 || wi+1 >= pageWords {
		return bop{}, 1, false
	}
	hi := uint32(in.imm) << 16
	w2 := predecode(word(wi + 1))
	switch w2.op {
	case isa.OpORI:
		if w2.rs != in.rt {
			return bop{}, 1, false
		}
		composed := hi | uint32(w2.imm)
		// Trampoline: lui/ori/jr (or jalr) through the same register —
		// the fragment isa.TrampolineWords emits and ldl patches. The
		// jump target becomes a build-time constant, so the block chains.
		if w2.rt != 0 && wi+2 < pageWords {
			w3 := predecode(word(wi + 2))
			if w3.op == isa.OpSpecial && w3.rs == w2.rt {
				switch w3.fn {
				case isa.FnJR:
					return bop{kind: bFuseTramp, rs: in.rt, rd: w2.rt,
						aux: hi, imm: composed, pc: ipc}, 3, true
				case isa.FnJALR:
					return bop{kind: bFuseTrampCall, rs: in.rt, rd: w2.rt, rt: w3.rd,
						aux: hi, imm: composed, pc: ipc}, 3, true
				}
			}
		}
		return bop{kind: bFuseLUIORI, rs: in.rt, rd: w2.rt,
			aux: hi, imm: composed, pc: ipc}, 2, false
	case isa.OpLW:
		if w2.rs != in.rt {
			return bop{}, 1, false
		}
		return bop{kind: bFuseLUILW, rs: in.rt, rd: w2.rt,
			aux: hi, imm: hi + isa.SignExt(w2.imm), pc: ipc}, 2, false
	case isa.OpSW:
		if w2.rs != in.rt {
			return bop{}, 1, false
		}
		return bop{kind: bFuseLUISW, rs: in.rt, rt: w2.rt,
			aux: hi, imm: hi + isa.SignExt(w2.imm), pc: ipc}, 2, false
	}
	return bop{}, 1, false
}
