package vm_test

// Dispatch microbenchmarks: the cost of retiring one instruction, isolated
// from linking, syscalls and fault handling. BENCH_3.json records the
// before/after numbers for the software-TLB + predecoded-icache change;
// scripts/bench.sh regenerates them.

import (
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
	"hemlock/internal/vm"
)

const (
	benchTextBase = 0x00001000
	benchDataBase = 0x00002000
)

// benchCPU maps a small RWX text page holding an infinite 8-instruction
// loop (ALU mix, one load, one store, one jump) and an RW data page, then
// returns a CPU parked at the loop head.
func benchCPU(tb testing.TB) *vm.CPU {
	tb.Helper()
	as := addrspace.New(mem.NewPhysical(0))
	if err := as.MapAnon(benchTextBase, mem.PageSize, addrspace.ProtRWX); err != nil {
		tb.Fatal(err)
	}
	if err := as.MapAnon(benchDataBase, mem.PageSize, addrspace.ProtRW); err != nil {
		tb.Fatal(err)
	}
	loop := []uint32{
		isa.EncodeI(isa.OpADDIU, 9, 9, 1),      // addiu t1, t1, 1
		isa.EncodeR(isa.FnXOR, 10, 9, 8, 0),    // xor   t2, t1, t0
		isa.EncodeR(isa.FnSLTU, 11, 10, 8, 0),  // sltu  t3, t2, t0
		isa.EncodeI(isa.OpSW, 9, 15, 0),        // sw    t1, 0(t7)
		isa.EncodeI(isa.OpLW, 12, 15, 0),       // lw    t4, 0(t7)
		isa.EncodeR(isa.FnADDU, 13, 12, 10, 0), // addu  t5, t4, t2
		isa.EncodeR(isa.FnSRL, 14, 0, 13, 3),   // srl   t6, t5, 3
		isa.EncodeJ(isa.OpJ, benchTextBase),    // j     loop
	}
	for i, w := range loop {
		if err := as.StoreWord(benchTextBase+uint32(4*i), w); err != nil {
			tb.Fatal(err)
		}
	}
	c := vm.New(as)
	c.PC = benchTextBase
	c.Regs[15] = benchDataBase // t7: data pointer
	return c
}

// BenchmarkDispatch measures the batched executor: one op = one retired
// instruction.
func BenchmarkDispatch(b *testing.B) {
	c := benchCPU(b)
	b.ReportAllocs()
	b.ResetTimer()
	start := c.Steps
	c.Run(uint64(b.N)) // runs out of budget by design
	if got := c.Steps - start; got != uint64(b.N) {
		b.Fatalf("retired %d of %d instructions", got, b.N)
	}
}

// BenchmarkDispatchStep measures the single-step entry point (what pdcall
// and debugger-style callers pay).
func BenchmarkDispatchStep(b *testing.B) {
	c := benchCPU(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev, err := c.Step(); err != nil || ev != vm.EventStep {
			b.Fatalf("step %d: ev=%v err=%v", i, ev, err)
		}
	}
}
