package vm_test

// Tests for the software TLB and predecoded instruction cache: every way a
// cached translation or predecoded word can go stale must fault or refill
// correctly on the very next access.

import (
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
	"hemlock/internal/vm"
)

// newSpace returns a space with a text page at benchTextBase (RWX) and a
// data page at benchDataBase (RW).
func newSpace(t *testing.T) *addrspace.Space {
	t.Helper()
	as := addrspace.New(mem.NewPhysical(0))
	if err := as.MapAnon(benchTextBase, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if err := as.MapAnon(benchDataBase, mem.PageSize, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	return as
}

func putCode(t *testing.T, as *addrspace.Space, base uint32, words []uint32) {
	t.Helper()
	for i, w := range words {
		if err := as.StoreWord(base+uint32(4*i), w); err != nil {
			t.Fatal(err)
		}
	}
}

func stepOK(t *testing.T, c *vm.CPU) {
	t.Helper()
	if ev, err := c.Step(); err != nil || ev != vm.EventStep {
		t.Fatalf("step at pc 0x%08x: ev=%v err=%v", c.PC, ev, err)
	}
}

// TestProtectDowngradeFaultsAfterTLBHit: a store that has a warm D-TLB
// entry with write permission must fault as soon as the page is downgraded
// to read-only — the generation bump invalidates the cached entry.
func TestProtectDowngradeFaultsAfterTLBHit(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpSW, 9, 15, 0),     // sw t1, 0(t7)
		isa.EncodeJ(isa.OpJ, benchTextBase), // j back
	})
	c := vm.New(as)
	c.PC = benchTextBase
	c.Regs[15] = benchDataBase
	stepOK(t, c) // sw: fills the D-TLB with a write-capable entry
	stepOK(t, c) // j
	if c.CacheStats().TLBHits == 0 {
		t.Fatal("no TLB hits recorded on the warm path")
	}
	if err := as.Protect(benchDataBase, mem.PageSize, addrspace.ProtRead); err != nil {
		t.Fatal(err)
	}
	_, err := c.Step() // sw again: cached entry must NOT be honoured
	f, ok := vm.FaultOf(err)
	if !ok {
		t.Fatalf("expected write fault after downgrade, got %v", err)
	}
	if f.Access != addrspace.AccessWrite || f.Unmapped {
		t.Fatalf("fault = %+v, want protection violation on write", f)
	}
	if c.PC != benchTextBase {
		t.Fatalf("pc advanced to 0x%08x across a trap", c.PC)
	}
	// Restoring the right makes the same instruction restartable.
	if err := as.Protect(benchDataBase, mem.PageSize, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	stepOK(t, c)
}

// TestUnmapThenTouchFaults: a load with a warm D-TLB entry faults as
// unmapped once the page is gone.
func TestUnmapThenTouchFaults(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLW, 12, 15, 0),    // lw t4, 0(t7)
		isa.EncodeJ(isa.OpJ, benchTextBase), // j back
	})
	c := vm.New(as)
	c.PC = benchTextBase
	c.Regs[15] = benchDataBase
	stepOK(t, c)
	stepOK(t, c)
	as.Unmap(benchDataBase, mem.PageSize)
	_, err := c.Step()
	f, ok := vm.FaultOf(err)
	if !ok || !f.Unmapped || f.Access != addrspace.AccessRead {
		t.Fatalf("expected unmapped read fault, got %v", err)
	}
}

// TestSelfModifyingTextNextFetch is the core SMC guarantee: a store into a
// page whose instructions are already predecoded must be visible on the
// very next fetch. The program overwrites an instruction it has already
// executed with a J and immediately jumps back to it.
func TestSelfModifyingTextNextFetch(t *testing.T) {
	const escape = benchTextBase + 0x40
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1), // victim: addiu t2, t2, 1
		isa.EncodeI(isa.OpSW, 8, 9, 0),      // sw t0, 0(t1): patch the victim
		isa.EncodeJ(isa.OpJ, benchTextBase), // j victim
	})
	putCode(t, as, escape, []uint32{isa.EncodeI(isa.OpHALT, 0, 0, 0)})
	c := vm.New(as)
	c.PC = benchTextBase
	c.Regs[8] = isa.EncodeJ(isa.OpJ, escape) // t0: the replacement J word
	c.Regs[9] = benchTextBase                // t1: victim address
	stepOK(t, c)                             // victim executes (and is predecoded)
	stepOK(t, c)                             // store patches the victim in live text
	stepOK(t, c)                             // jump back
	if c.PC != benchTextBase {
		t.Fatalf("pc = 0x%08x, want victim address", c.PC)
	}
	stepOK(t, c) // very next step: must run the patched J, not stale predecode
	if c.PC != escape {
		t.Fatalf("patched instruction not executed: pc = 0x%08x, want 0x%08x (stale predecode?)", c.PC, escape)
	}
	if c.Regs[10] != 1 {
		t.Fatalf("victim retired %d times, want exactly 1", c.Regs[10])
	}
	if st := c.CacheStats(); st.ICInvals == 0 {
		t.Fatal("icache invalidation not recorded for store-to-text")
	}
}

// TestHostPatchVisibleToCachedText: patches applied through the Space API
// (how ldl rewrites trampolines and image relocations) also invalidate
// predecode via the frame version.
func TestHostPatchVisibleToCachedText(t *testing.T) {
	const escape = benchTextBase + 0x40
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1), // victim
		isa.EncodeJ(isa.OpJ, benchTextBase), // j victim
	})
	c := vm.New(as)
	c.PC = benchTextBase
	stepOK(t, c)
	stepOK(t, c)
	// Host-side patch (the ldl path) while the loop is hot.
	if err := as.StoreWord(benchTextBase, isa.EncodeJ(isa.OpJ, escape)); err != nil {
		t.Fatal(err)
	}
	stepOK(t, c)
	if c.PC != escape {
		t.Fatalf("host patch not picked up: pc = 0x%08x, want 0x%08x", c.PC, escape)
	}
}

// TestSnapshotDropsCaches: a forked CPU must not inherit translations — a
// child generation can coincide with the parent's, so stale entries would
// alias the parent's frames.
func TestSnapshotDropsCaches(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLW, 12, 15, 0),
		isa.EncodeJ(isa.OpJ, benchTextBase),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	c.Regs[15] = benchDataBase
	stepOK(t, c)
	stepOK(t, c)

	// The "child": same architectural state, different space with its own
	// data page contents.
	as2 := addrspace.New(mem.NewPhysical(0))
	if err := as2.MapAnon(benchTextBase, mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if err := as2.MapAnon(benchDataBase, mem.PageSize, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	putCode(t, as2, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLW, 12, 15, 0),
		isa.EncodeJ(isa.OpJ, benchTextBase),
	})
	if err := as2.StoreWord(benchDataBase, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	child := c.Snapshot()
	child.AS = as2
	stepOK(t, &child)
	if child.Regs[12] != 0xDEADBEEF {
		t.Fatalf("child read 0x%08x through a stale cache, want its own 0xDEADBEEF", child.Regs[12])
	}
}

// TestRunBatchStopsOnEvents: the batched executor must surface the same
// events Step does and stop at the budget boundary.
func TestRunBatchStopsOnEvents(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpADDIU, 9, 9, 1),
		isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	ev, err := c.RunBatch(100)
	if err != nil || ev != vm.EventSyscall {
		t.Fatalf("ev=%v err=%v, want syscall", ev, err)
	}
	if c.Steps != 2 {
		t.Fatalf("steps = %d, want 2", c.Steps)
	}
	// Budget boundary: exactly n instructions, EventStep, no error.
	c2 := vm.New(as)
	c2.PC = benchTextBase
	ev, err = c2.RunBatch(1)
	if err != nil || ev != vm.EventStep || c2.Steps != 1 {
		t.Fatalf("ev=%v err=%v steps=%d, want step/nil/1", ev, err, c2.Steps)
	}
}
