package vm

import (
	"testing"
)

// runRef executes up to limit steps through ReferenceStep, mirroring the
// Run loop's stop conditions.
func runRef(c *CPU, limit int) (Event, error) {
	for i := 0; i < limit; i++ {
		ev, err := c.ReferenceStep()
		if err != nil || ev != EventStep {
			return ev, err
		}
	}
	return EventStep, nil
}

// TestReferenceAgreesOnALUVectors replays the alu_test.go case tables on
// both the cached fast path and the cache-free reference stepper and
// demands bit-identical final state (registers, PC, memory hash).
func TestReferenceAgreesOnALUVectors(t *testing.T) {
	for _, c := range aluCases {
		fast := loadProgram(t, ".text\n nop\n halt\n", 0x1000)
		fast.AS.StoreWord(0x1000, c.word)
		fast.Regs[8], fast.Regs[9] = c.a, c.b

		ref := loadProgram(t, ".text\n nop\n halt\n", 0x1000)
		ref.AS.StoreWord(0x1000, c.word)
		ref.Regs[8], ref.Regs[9] = c.a, c.b

		if _, err := fast.Run(10); err != nil {
			t.Fatalf("%s: fast: %v", c.name, err)
		}
		if _, err := runRef(ref, 10); err != nil {
			t.Fatalf("%s: ref: %v", c.name, err)
		}
		if fast.Regs[10] != c.want || ref.Regs[10] != c.want {
			t.Errorf("%s: fast $t2=0x%x ref $t2=0x%x, want 0x%x",
				c.name, fast.Regs[10], ref.Regs[10], c.want)
		}
		if fh, rh := StateHash(fast), StateHash(ref); fh != rh {
			t.Errorf("%s: state diverged fast=%016x ref=%016x\nfast:\n%s\nref:\n%s",
				c.name, fh, rh, DumpState(fast), DumpState(ref))
		}
	}
}

func TestReferenceAgreesOnImmediateVectors(t *testing.T) {
	for _, c := range immCases {
		fast := loadProgram(t, ".text\n nop\n halt\n", 0x1000)
		fast.AS.StoreWord(0x1000, c.word)
		fast.Regs[8] = c.in

		ref := loadProgram(t, ".text\n nop\n halt\n", 0x1000)
		ref.AS.StoreWord(0x1000, c.word)
		ref.Regs[8] = c.in

		if _, err := fast.Run(10); err != nil {
			t.Fatalf("%s: fast: %v", c.name, err)
		}
		if _, err := runRef(ref, 10); err != nil {
			t.Fatalf("%s: ref: %v", c.name, err)
		}
		if fast.Regs[9] != c.want || ref.Regs[9] != c.want {
			t.Errorf("%s: fast $t1=0x%x ref $t1=0x%x, want 0x%x",
				c.name, fast.Regs[9], ref.Regs[9], c.want)
		}
		if fh, rh := StateHash(fast), StateHash(ref); fh != rh {
			t.Errorf("%s: state diverged fast=%016x ref=%016x", c.name, fh, rh)
		}
	}
}

// TestReferenceSeesSMCWithoutInvalidation: the reference path must never
// consult the icache, so a store into text is visible on the very next
// reference fetch even if the cached predecode were stale.
func TestReferenceSeesSMCWithoutInvalidation(t *testing.T) {
	c := loadProgram(t, ".text\n nop\n nop\n halt\n", 0x1000)
	// Warm the fast-path icache over the whole program first.
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	// Rewind and patch the second nop into `ori $t3, $zero, 0x55`
	// behind the interpreter's back, then run on the reference path.
	c.PC = 0x1000
	c.AS.StoreWord(0x1004, 0x340B0055)
	if _, err := runRef(c, 10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[11] != 0x55 {
		t.Fatalf("reference path executed stale text: $t3 = 0x%x", c.Regs[11])
	}
}

// TestStateHashSensitivity: the hash must react to register, PC, memory
// and protection changes — otherwise the differential driver is blind.
func TestStateHashSensitivity(t *testing.T) {
	c := loadProgram(t, ".text\n halt\n", 0x1000)
	base := StateHash(c)
	c.Regs[8] = 1
	if StateHash(c) == base {
		t.Fatal("hash ignores registers")
	}
	c.Regs[8] = 0
	c.PC++
	if StateHash(c) == base {
		t.Fatal("hash ignores PC")
	}
	c.PC--
	c.AS.StoreByte(0x1100, 0xAA)
	if StateHash(c) == base {
		t.Fatal("hash ignores memory")
	}
}
