package vm_test

// Tests for the basic-block translation engine: chaining, the invalidation
// edges (SMC into an already-chained successor, host patches landing
// mid-batch, snapshots), budget exactness around fused macro-ops, and the
// engine toggle. The per-instruction path's cache tests live in
// cache_test.go; the differential harness holds the two paths bit-identical
// over generated programs.

import (
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
	"hemlock/internal/vm"
)

// mapRWX maps one RWX page at base in a fresh space.
func mapPages(t *testing.T, prots map[uint32]addrspace.Prot) *addrspace.Space {
	t.Helper()
	as := addrspace.New(mem.NewPhysical(0))
	for base, prot := range prots {
		if err := as.MapAnon(base, mem.PageSize, prot); err != nil {
			t.Fatal(err)
		}
	}
	return as
}

// TestBlockChainLoopCountsHits: a countdown loop runs hot through chained
// blocks — a handful of builds, hits for every subsequent iteration.
func TestBlockChainLoopCountsHits(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpADDIU, 9, 9, 0xFFFF), // addiu t1, t1, -1
		isa.EncodeI(isa.OpBNE, 0, 9, 0xFFFE),   // bne t1, zero, -2
		isa.EncodeI(isa.OpHALT, 0, 0, 0),
	})
	c := vm.New(as)
	if !c.BlockEngineOn() {
		t.Skip("block engine disabled via HEMLOCK_BLOCK_ENGINE")
	}
	c.PC = benchTextBase
	c.Regs[9] = 50
	ev, err := c.RunBatch(1000)
	if err != nil || ev != vm.EventHalt {
		t.Fatalf("ev=%v err=%v, want halt", ev, err)
	}
	if c.Steps != 50*2+1 {
		t.Fatalf("steps = %d, want 101", c.Steps)
	}
	if c.PC != benchTextBase+8 {
		t.Fatalf("pc = 0x%08x, want the halt", c.PC)
	}
	st := c.CacheStats()
	if st.BlockBuilds == 0 || st.BlockBuilds > 4 {
		t.Fatalf("block builds = %d, want a handful", st.BlockBuilds)
	}
	if st.BlockHits < 40 {
		t.Fatalf("block hits = %d, want ~one per loop iteration", st.BlockHits)
	}
}

// TestBlockSMCIntoChainedSuccessor is the chaining invalidation edge: block
// A has already chained to block B on another page when a store patches an
// instruction inside B. Following the warm A→B chain pointer must notice
// the stale frame version and rebuild B, so the patched word executes on
// the very next transfer into it.
func TestBlockSMCIntoChainedSuccessor(t *testing.T) {
	// B sits off the page base: every page-aligned address indexes slot 0
	// of the direct-mapped cache, and an index collision would turn the
	// stale-rebuild this test pins into a plain miss.
	const (
		pageA  = uint32(0x00001000)
		pageB  = uint32(0x00003000)
		bEntry = pageB + 0x100
		escape = pageB + 0x200
	)
	as := mapPages(t, map[uint32]addrspace.Prot{
		pageA: addrspace.ProtRWX,
		pageB: addrspace.ProtRWX,
	})
	putCode(t, as, pageA, []uint32{
		isa.EncodeI(isa.OpADDIU, 9, 9, 1), // L0: addiu t1, t1, 1
		isa.EncodeJ(isa.OpJ, bEntry),      //     j B            (the chain under test)
		isa.EncodeI(isa.OpSW, 8, 25, 0),   // P:  sw t0, 0(t9)   (patches B's victim)
		isa.EncodeJ(isa.OpJ, pageA),       //     j L0
	})
	putCode(t, as, bEntry, []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1), // B:  addiu t2, t2, 1 (victim)
		isa.EncodeJ(isa.OpJ, pageA+8),       //     j P
	})
	putCode(t, as, escape, []uint32{isa.EncodeI(isa.OpHALT, 0, 0, 0)})
	c := vm.New(as)
	if !c.BlockEngineOn() {
		t.Skip("block engine disabled via HEMLOCK_BLOCK_ENGINE")
	}
	c.PC = pageA
	c.Regs[8] = isa.EncodeJ(isa.OpJ, escape) // t0: replacement for the victim
	c.Regs[25] = bEntry                      // t9: victim address

	// Pass 1 links A→B; P then patches B; pass 2 must rebuild B through
	// the now-stale chain pointer and run the patched jump.
	ev, err := c.RunBatch(1000)
	if err != nil || ev != vm.EventHalt {
		t.Fatalf("ev=%v err=%v at pc=0x%08x, want halt", ev, err, c.PC)
	}
	if c.PC != escape {
		t.Fatalf("pc = 0x%08x, want escape 0x%08x", c.PC, escape)
	}
	if c.Regs[10] != 1 {
		t.Fatalf("victim retired %d times, want exactly 1 (stale chained block executed?)", c.Regs[10])
	}
	if c.Regs[9] != 2 {
		t.Fatalf("loop header retired %d times, want 2", c.Regs[9])
	}
	st := c.CacheStats()
	if st.BlockInvals == 0 {
		t.Fatal("no block invalidation recorded for the patched successor")
	}
	if st.BlockHits == 0 {
		t.Fatal("no chain/probe hits recorded — was the chain ever warm?")
	}
}

// TestBlockHostPatchBetweenBatches: a patch through the Space API (the ldl
// trampoline/PLT path) lands between two RunBatch calls; the second batch
// must execute the patched word even though the block and its self-chain
// are warm.
func TestBlockHostPatchBetweenBatches(t *testing.T) {
	const escape = benchTextBase + 0x40
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1), // victim
		isa.EncodeJ(isa.OpJ, benchTextBase), // j victim
	})
	putCode(t, as, escape, []uint32{isa.EncodeI(isa.OpHALT, 0, 0, 0)})
	c := vm.New(as)
	c.PC = benchTextBase
	if ev, err := c.RunBatch(5); err != nil || ev != vm.EventStep {
		t.Fatalf("warm batch: ev=%v err=%v", ev, err)
	}
	retired := c.Regs[10]
	if err := as.StoreWord(benchTextBase, isa.EncodeJ(isa.OpJ, escape)); err != nil {
		t.Fatal(err)
	}
	ev, err := c.RunBatch(100)
	if err != nil || ev != vm.EventHalt {
		t.Fatalf("post-patch batch: ev=%v err=%v pc=0x%08x", ev, err, c.PC)
	}
	if c.PC != escape {
		t.Fatalf("pc = 0x%08x, want 0x%08x", c.PC, escape)
	}
	if c.Regs[10] != retired {
		t.Fatal("victim retired again after the host patch")
	}
}

// TestRunBatchBudgetExactWithFusion: a budget smaller than a fused pair
// must not over-retire — the tail runs per-instruction, so RunBatch(1)
// retires exactly the LUI half with PC left on the ORI.
func TestRunBatchBudgetExactWithFusion(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpLUI, 8, 0, 0x1234), // lui t0, 0x1234
		isa.EncodeI(isa.OpORI, 8, 8, 0x5678), // ori t0, t0, 0x5678 (fuses)
		isa.EncodeI(isa.OpHALT, 0, 0, 0),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	if ev, err := c.RunBatch(1); err != nil || ev != vm.EventStep {
		t.Fatalf("ev=%v err=%v", ev, err)
	}
	if c.Steps != 1 || c.PC != benchTextBase+4 {
		t.Fatalf("steps=%d pc=0x%08x, want exactly the LUI retired", c.Steps, c.PC)
	}
	if c.Regs[8] != 0x12340000 {
		t.Fatalf("t0 = 0x%08x after LUI", c.Regs[8])
	}
	if ev, err := c.RunBatch(1); err != nil || ev != vm.EventStep {
		t.Fatalf("ev=%v err=%v", ev, err)
	}
	if c.Steps != 2 || c.Regs[8] != 0x12345678 {
		t.Fatalf("steps=%d t0=0x%08x, want composed constant", c.Steps, c.Regs[8])
	}
	ev, err := c.RunBatch(10)
	if err != nil || ev != vm.EventHalt || c.Steps != 3 {
		t.Fatalf("ev=%v err=%v steps=%d, want halt at step 3", ev, err, c.Steps)
	}
}

// TestSnapshotDropsBlockCache: a forked CPU must not carry translated
// blocks — the child's space can share the parent's generation number, so
// a stale block would execute the parent's text.
func TestSnapshotDropsBlockCache(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpADDIU, 10, 10, 1),
		isa.EncodeJ(isa.OpJ, benchTextBase),
	})
	c := vm.New(as)
	c.PC = benchTextBase
	if ev, err := c.RunBatch(6); err != nil || ev != vm.EventStep {
		t.Fatalf("warm batch: ev=%v err=%v", ev, err)
	}

	as2 := mapPages(t, map[uint32]addrspace.Prot{benchTextBase: addrspace.ProtRWX})
	putCode(t, as2, benchTextBase, []uint32{isa.EncodeI(isa.OpHALT, 0, 0, 0)})
	child := c.Snapshot()
	child.AS = as2
	child.PC = benchTextBase
	ev, err := child.RunBatch(10)
	if err != nil || ev != vm.EventHalt {
		t.Fatalf("child ran stale blocks: ev=%v err=%v pc=0x%08x", ev, err, child.PC)
	}
	if st := child.CacheStats(); st.BlockHits != 0 && st.BlockBuilds == 0 {
		t.Fatalf("child hit inherited blocks: %+v", st)
	}
}

// TestSetBlockEngineToggle: with the engine off, batched execution runs the
// per-instruction path (icache fills, no block builds); turning it back on
// builds blocks again.
func TestSetBlockEngineToggle(t *testing.T) {
	as := newSpace(t)
	putCode(t, as, benchTextBase, []uint32{
		isa.EncodeI(isa.OpADDIU, 9, 9, 0xFFFF),
		isa.EncodeI(isa.OpBNE, 0, 9, 0xFFFE),
		isa.EncodeI(isa.OpHALT, 0, 0, 0),
	})
	c := vm.New(as)
	c.SetBlockEngine(false)
	if c.BlockEngineOn() {
		t.Fatal("engine reports on after SetBlockEngine(false)")
	}
	c.PC = benchTextBase
	c.Regs[9] = 10
	if ev, err := c.RunBatch(1000); err != nil || ev != vm.EventHalt {
		t.Fatalf("engine-off batch: ev=%v err=%v", ev, err)
	}
	st := c.CacheStats()
	if st.BlockBuilds != 0 {
		t.Fatalf("engine off but %d blocks built", st.BlockBuilds)
	}
	if st.ICFills == 0 {
		t.Fatal("engine off yet no icache fills — which path ran?")
	}

	c.SetBlockEngine(true)
	c.PC = benchTextBase
	c.Regs[9] = 10
	if ev, err := c.RunBatch(1000); err != nil || ev != vm.EventHalt {
		t.Fatalf("engine-on batch: ev=%v err=%v", ev, err)
	}
	if c.CacheStats().BlockBuilds == 0 {
		t.Fatal("engine re-enabled but no blocks built")
	}
}
