package vm

import (
	"errors"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
	"hemlock/internal/objfile"
)

func isa2reloc() objfile.RelType { return objfile.RelJump26 }

func be32(b []byte, off uint32) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}

// loadProgram assembles src, places text at base (RWX for convenience) and
// data right after it, resolving no relocations (tests use position-
// independent or local-only code paths, or patch words directly).
func loadProgram(t *testing.T, src string, base uint32) *CPU {
	t.Helper()
	o, err := isa.Assemble("test.s", src)
	if err != nil {
		t.Fatal(err)
	}
	// Apply JUMP26 relocations for locally-defined text symbols (the only
	// relocation kind these self-contained test programs produce).
	for _, r := range o.Relocs {
		sym := o.Symbols[r.Sym]
		if r.Type == isa2reloc() && sym.Defined() && sym.Section == objfile.SecText {
			w := be32(o.Text, r.Offset)
			patched := isa.PatchJump26(w, base+sym.Value+uint32(r.Addend))
			o.Text[r.Offset] = byte(patched >> 24)
			o.Text[r.Offset+1] = byte(patched >> 16)
			o.Text[r.Offset+2] = byte(patched >> 8)
			o.Text[r.Offset+3] = byte(patched)
			continue
		}
		t.Fatalf("test program has unsupported relocation %v against %q", r.Type, sym.Name)
	}
	as := addrspace.New(mem.NewPhysical(0))
	size := o.TotalSize()
	if size == 0 {
		size = 4
	}
	if err := as.MapAnon(base, size+mem.PageSize, addrspace.ProtRWX); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Write(base, o.Text); err != nil {
		t.Fatal(err)
	}
	dataOff, _ := o.Layout()
	if _, err := as.Write(base+dataOff, o.Data); err != nil {
		t.Fatal(err)
	}
	c := New(as)
	c.PC = base
	return c
}

func TestArithmetic(t *testing.T) {
	c := loadProgram(t, `
        .text
        li      $t0, 6
        li      $t1, 7
        mul     $t2, $t0, $t1
        addiu   $t2, $t2, -2
        sub     $t3, $t2, $t0
        div     $t4, $t2, $t1
        halt
`, 0x1000)
	ev, err := c.Run(100)
	if err != nil || ev != EventHalt {
		t.Fatalf("run: %v %v", ev, err)
	}
	if c.Regs[10] != 40 { // $t2
		t.Fatalf("$t2 = %d, want 40", c.Regs[10])
	}
	if c.Regs[11] != 34 { // $t3
		t.Fatalf("$t3 = %d, want 34", c.Regs[11])
	}
	if c.Regs[12] != 5 { // $t4 = 40/7
		t.Fatalf("$t4 = %d, want 5", c.Regs[12])
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c := loadProgram(t, ".text\n li $zero, 99\n halt\n", 0x1000)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[0] != 0 {
		t.Fatalf("$zero = %d", c.Regs[0])
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 with a loop.
	c := loadProgram(t, `
        .text
        li      $t0, 0      # i
        li      $t1, 0      # sum
        li      $t2, 10
loop:   addiu   $t0, $t0, 1
        addu    $t1, $t1, $t0
        bne     $t0, $t2, loop
        halt
`, 0x1000)
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}
	if c.Regs[9] != 55 {
		t.Fatalf("sum = %d, want 55", c.Regs[9])
	}
}

func TestLoadsStores(t *testing.T) {
	c := loadProgram(t, `
        .text
        li      $t0, 0x2000
        li      $t1, 0x1234ABCD
        sw      $t1, 0($t0)
        lw      $t2, 0($t0)
        lb      $t3, 0($t0)     # sign-extended 0x12
        lbu     $t4, 3($t0)     # 0xCD
        sb      $t4, 4($t0)
        lbu     $t5, 4($t0)
        halt
`, 0x1000)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[10] != 0x1234ABCD || c.Regs[11] != 0x12 || c.Regs[12] != 0xCD || c.Regs[13] != 0xCD {
		t.Fatalf("regs: %x %x %x %x", c.Regs[10], c.Regs[11], c.Regs[12], c.Regs[13])
	}
}

func TestJalAndJr(t *testing.T) {
	c := loadProgram(t, `
        .text
        jal     sub
        li      $t1, 1
        halt
sub:    li      $t0, 5
        jr      $ra
`, 0x1000)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[8] != 5 || c.Regs[9] != 1 {
		t.Fatalf("$t0=%d $t1=%d", c.Regs[8], c.Regs[9])
	}
}

func TestFaultRestartsInstruction(t *testing.T) {
	// A store to an unmapped page faults; after the handler maps the page,
	// re-stepping the same PC succeeds. This is the core mechanism behind
	// Hemlock's lazy linking.
	c := loadProgram(t, `
        .text
        li      $t0, 0x30000000
        li      $t1, 77
        sw      $t1, 0($t0)
        lw      $t2, 0($t0)
        halt
`, 0x1000)
	var faults int
	for {
		ev, err := c.Step()
		if err != nil {
			f, ok := FaultOf(err)
			if !ok {
				t.Fatal(err)
			}
			faults++
			if f.Addr != 0x30000000 || f.Access != addrspace.AccessWrite {
				t.Fatalf("fault: %+v", f)
			}
			// "Kernel" maps the page and resumes.
			if err := c.AS.MapAnon(0x30000000, mem.PageSize, addrspace.ProtRW); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if ev == EventHalt {
			break
		}
	}
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	if c.Regs[10] != 77 {
		t.Fatalf("$t2 = %d after restart", c.Regs[10])
	}
}

func TestProtNoneFaultThenProtect(t *testing.T) {
	c := loadProgram(t, `
        .text
        li      $t0, 0x30000000
        lw      $t2, 0($t0)
        halt
`, 0x1000)
	if err := c.AS.MapAnon(0x30000000, mem.PageSize, addrspace.ProtNone); err != nil {
		t.Fatal(err)
	}
	_, err := c.Run(100)
	f, ok := FaultOf(err)
	if !ok || f.Unmapped {
		t.Fatalf("want protection fault, got %v", err)
	}
	if err := c.AS.Protect(0x30000000, mem.PageSize, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	ev, err := c.Run(100)
	if err != nil || ev != EventHalt {
		t.Fatalf("after protect: %v %v", ev, err)
	}
}

func TestSyscallAdvancesPC(t *testing.T) {
	c := loadProgram(t, ".text\n syscall\n li $t0, 3\n halt\n", 0x1000)
	ev, err := c.Step()
	if err != nil || ev != EventSyscall {
		t.Fatalf("step: %v %v", ev, err)
	}
	if c.PC != 0x1004 {
		t.Fatalf("PC = 0x%x after syscall, want 0x1004", c.PC)
	}
	ev, err = c.Run(10)
	if err != nil || ev != EventHalt || c.Regs[8] != 3 {
		t.Fatalf("resume after syscall: %v %v $t0=%d", ev, err, c.Regs[8])
	}
}

func TestIllegalInstruction(t *testing.T) {
	as := addrspace.New(mem.NewPhysical(0))
	as.MapAnon(0x1000, mem.PageSize, addrspace.ProtRWX)
	as.StoreWord(0x1000, 0xFC000000|0x3B<<20) // op 63 is HALT; use op 1 (unused)
	as.StoreWord(0x1000, uint32(1)<<26)
	c := New(as)
	c.PC = 0x1000
	_, err := c.Step()
	if !errors.Is(err, ErrIllegal) {
		t.Fatalf("want illegal instruction, got %v", err)
	}
}

func TestDivByZeroTraps(t *testing.T) {
	c := loadProgram(t, ".text\n li $t0, 4\n div $t1, $t0, $zero\n halt\n", 0x1000)
	_, err := c.Run(10)
	if !errors.Is(err, ErrDivZero) {
		t.Fatalf("want div-by-zero, got %v", err)
	}
}

func TestExecProtectionEnforced(t *testing.T) {
	as := addrspace.New(mem.NewPhysical(0))
	as.MapAnon(0x1000, mem.PageSize, addrspace.ProtRW) // no exec
	c := New(as)
	c.PC = 0x1000
	_, err := c.Step()
	f, ok := FaultOf(err)
	if !ok || f.Access != addrspace.AccessExec {
		t.Fatalf("want exec fault, got %v", err)
	}
}

func TestRunStepLimit(t *testing.T) {
	c := loadProgram(t, ".text\nloop: b loop\n", 0x1000)
	if _, err := c.Run(50); err == nil {
		t.Fatal("infinite loop not caught by step limit")
	}
	if c.Steps != 50 {
		t.Fatalf("steps = %d, want 50", c.Steps)
	}
}

func TestTrampolineExecution(t *testing.T) {
	// Execute a linker-style trampoline: it must land at the far target
	// in another 256 MB region with $ra intact for calls.
	as := addrspace.New(mem.NewPhysical(0))
	as.MapAnon(0x1000, mem.PageSize, addrspace.ProtRWX)
	as.MapAnon(0x30000000, mem.PageSize, addrspace.ProtRWX)
	for i, w := range isa.TrampolineWords(0x30000000, true) {
		as.StoreWord(0x1000+uint32(i)*4, w)
	}
	as.StoreWord(0x30000000, uint32(isa.OpHALT)<<26)
	c := New(as)
	c.PC = 0x1000
	ev, err := c.Run(10)
	if err != nil || ev != EventHalt {
		t.Fatalf("trampoline run: %v %v", ev, err)
	}
	if c.Regs[isa.RegRA] != 0x100C {
		t.Fatalf("$ra = 0x%x, want 0x100C", c.Regs[isa.RegRA])
	}
}

func TestShiftOps(t *testing.T) {
	c := loadProgram(t, `
        .text
        li      $t0, 0x80000010
        srl     $t1, $t0, 4
        sra     $t2, $t0, 4
        sll     $t3, $t0, 1
        li      $t4, 8
        srlv    $t5, $t0, $t4
        halt
`, 0x1000)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[9] != 0x08000001 || c.Regs[10] != 0xF8000001 || c.Regs[11] != 0x00000020 || c.Regs[13] != 0x00800000 {
		t.Fatalf("shifts: %x %x %x %x", c.Regs[9], c.Regs[10], c.Regs[11], c.Regs[13])
	}
}

func TestSltVariants(t *testing.T) {
	c := loadProgram(t, `
        .text
        li      $t0, -1
        li      $t1, 1
        slt     $t2, $t0, $t1      # signed: -1 < 1 -> 1
        sltu    $t3, $t0, $t1      # unsigned: 0xFFFFFFFF < 1 -> 0
        slti    $t4, $t0, 0        # -1 < 0 -> 1
        sltiu   $t5, $t1, 2        # 1 < 2 -> 1
        halt
`, 0x1000)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.Regs[10] != 1 || c.Regs[11] != 0 || c.Regs[12] != 1 || c.Regs[13] != 1 {
		t.Fatalf("slt: %d %d %d %d", c.Regs[10], c.Regs[11], c.Regs[12], c.Regs[13])
	}
}
