package vm_test

import (
	"testing"

	"hemlock/internal/vm"
)

// recSampler records every boundary report.
type recSampler struct {
	counts map[uint32]uint64
	last   struct {
		pc    uint32
		steps uint64
		set   bool
	}
	total uint64
}

func newRecSampler() *recSampler { return &recSampler{counts: map[uint32]uint64{}} }

func (r *recSampler) Sample(pc uint32, steps uint64) {
	if r.last.set && steps > r.last.steps {
		d := steps - r.last.steps
		r.counts[r.last.pc] += d
		r.total += d
	}
	r.last.pc, r.last.steps, r.last.set = pc, steps, true
}

// TestSampleHookAllocs is the perf gate for the sampling hook: with no
// sampler installed, the RunBatch path must not allocate — the hook is one
// nil check at each batch/block boundary.
func TestSampleHookAllocs(t *testing.T) {
	for _, blocks := range []bool{true, false} {
		c := benchCPU(t)
		c.SetBlockEngine(blocks)
		// Warm every cache (I-TLB, icache, block map) out of the
		// measured region.
		if _, err := c.RunBatch(4096); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := c.RunBatch(1024); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("blocks=%v: %v allocs/RunBatch with sampling disabled, want 0", blocks, allocs)
		}
	}
}

// TestSamplerExactAttribution: with a sampler installed, every retired
// instruction lands in some bucket — block-boundary deltas plus the
// flushed tail account for the CPU's entire step count.
func TestSamplerExactAttribution(t *testing.T) {
	for _, blocks := range []bool{true, false} {
		c := benchCPU(t)
		c.SetBlockEngine(blocks)
		s := newRecSampler()
		c.SetSampler(s)
		const steps = 10_000
		for done := uint64(0); done < steps; {
			if _, err := c.RunBatch(1000); err != nil {
				t.Fatal(err)
			}
			done = c.Steps
		}
		s.Sample(c.PC, c.Steps) // flush the tail
		if s.total != c.Steps {
			t.Errorf("blocks=%v: attributed %d of %d retired instructions", blocks, s.total, c.Steps)
		}
		// The benchmark loop body lives at benchTextBase; every sampled
		// PC must fall inside its 8 instructions.
		for pc := range s.counts {
			if pc < benchTextBase || pc >= benchTextBase+8*4 {
				t.Errorf("blocks=%v: sample outside loop: pc=%#x", blocks, pc)
			}
		}
	}
}

// TestSamplerSurvivesSnapshot: fork copies the sampler reference along
// with the architectural state.
func TestSamplerSurvivesSnapshot(t *testing.T) {
	c := benchCPU(t)
	s := newRecSampler()
	c.SetSampler(s)
	if _, err := c.RunBatch(64); err != nil {
		t.Fatal(err)
	}
	child := c.Snapshot()
	if _, err := child.RunBatch(64); err != nil {
		t.Fatal(err)
	}
	s.Sample(child.PC, child.Steps)
	if s.total == 0 {
		t.Fatal("snapshot dropped the sampler")
	}
	var _ vm.Sampler = s // the test double satisfies the interface
}
