// Package vm implements the interpreting CPU for R3K-lite.
//
// The CPU executes instructions against a simulated address space. A memory
// access that faults leaves the architectural state (PC and registers)
// exactly as it was before the instruction, so the kernel can run Hemlock's
// user-level fault handler and then simply resume: the faulting instruction
// restarts, which is precisely the behaviour the paper's SIGSEGV-driven
// lazy linking and map-on-pointer-dereference depend on ("It then restarts
// the faulting instruction").
//
// # Translation and dispatch caches
//
// Like the R3000 the paper ran on, the interpreter amortises translation
// through a TLB. Each CPU carries a private direct-mapped D-TLB and I-TLB
// (no locking on a hit) validated against the address space's mapping
// generation (addrspace.Space.Gen): any map/unmap/protect bumps the
// generation and every cached entry goes stale at once. On top of the
// I-TLB sits a per-page predecoded instruction cache, validated against
// the backing frame's store version (mem.Frame.Version), so straight-line
// code skips both FetchWord and Decode. Because ldl patches live text —
// trampolines and jump-table slots are the paper's core mechanism — every
// store bumps the frame version, and a store into cached text is picked up
// on the very next fetch, even when the store came from a different
// process sharing the frame.
package vm

import (
	"errors"
	"fmt"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
	"hemlock/internal/obsv"
)

// Event reports why Step returned without error.
type Event uint8

// Step outcomes.
const (
	EventStep    Event = iota // one ordinary instruction retired
	EventHalt                 // HALT executed
	EventSyscall              // SYSCALL executed; PC already advanced
	EventBreak                // BREAK executed; PC already advanced
)

func (e Event) String() string {
	switch e {
	case EventStep:
		return "step"
	case EventHalt:
		return "halt"
	case EventSyscall:
		return "syscall"
	case EventBreak:
		return "break"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Trap is a CPU exception: an illegal instruction, arithmetic trap, or a
// memory fault (in which case Unwrap yields the *addrspace.Fault). PC is
// the address of the instruction that trapped; it has not been retired.
type Trap struct {
	PC  uint32
	Err error
}

func (t *Trap) Error() string { return fmt.Sprintf("vm: trap at pc 0x%08x: %v", t.PC, t.Err) }
func (t *Trap) Unwrap() error { return t.Err }

// FaultOf extracts the memory fault from err, if err is a Trap wrapping one.
func FaultOf(err error) (*addrspace.Fault, bool) {
	var f *addrspace.Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// ErrIllegal is wrapped by traps on undecodable instructions.
var ErrIllegal = errors.New("illegal instruction")

// ErrDivZero is wrapped by traps on division by zero.
var ErrDivZero = errors.New("integer divide by zero")

// Cache geometry. Direct-mapped: the low index bits of the VPN pick the
// slot, the full VPN is the tag. Sized for the working sets the linkers
// produce (an image, a few shared modules, a stack) rather than for
// associativity games.
const (
	tlbBits = 6
	tlbSize = 1 << tlbBits // I-TLB and D-TLB entries per CPU

	icBits = 4
	icSize = 1 << icBits // predecoded text pages per CPU

	pageWords = mem.PageSize / 4
)

// tlbEnt is one software-TLB slot. Valid iff frame != nil; a slot is a hit
// when the VPN tag matches and the space generation has not moved.
type tlbEnt struct {
	frame *mem.Frame
	gen   uint64
	vpn   uint32
	prot  addrspace.Prot
}

// pinst is the icache's compact predecode: the same fields isa.Inst
// carries, packed into 12 bytes instead of 64 so an icPage costs 12 KB
// rather than 64 KB — short-lived processes allocate these per executed
// text page, so the size shows up in launch cost.
type pinst struct {
	word      uint32
	imm       uint16
	op, fn    uint8
	rs, rt    uint8
	rd, shamt uint8
}

func predecode(w uint32) pinst {
	return pinst{
		word:  w,
		imm:   uint16(w),
		op:    uint8(w >> 26),
		fn:    uint8(w & 63),
		rs:    uint8(w >> 21 & 31),
		rt:    uint8(w >> 16 & 31),
		rd:    uint8(w >> 11 & 31),
		shamt: uint8(w >> 6 & 31),
	}
}

// icPage is one predecoded text page. Words decode lazily (the decoded
// bitmap) so the cache never reads bytes the program did not execute —
// predecoding a whole page eagerly would read words a concurrently running
// sibling might be writing. fver pins the backing frame's store version:
// any store to the frame (self-modifying code, an ldl patch, a store from
// a process sharing the page) makes the entry stale.
type icPage struct {
	frame   *mem.Frame
	fver    uint64
	vpn     uint32
	valid   bool
	decoded [pageWords / 64]uint64
	code    [pageWords]pinst
}

// CacheStats is the cumulative TLB/icache/block-engine accounting for one
// CPU.
type CacheStats struct {
	TLBHits   uint64 // I- or D-TLB hit: no lock, no map lookup
	TLBMisses uint64 // slow-path Translate (fills a slot, or builds a block)
	ICFills   uint64 // predecoded page (re)filled
	ICInvals  uint64 // fill that replaced a stale entry for the same page

	BlockBuilds uint64 // basic blocks decoded (vm.block_build)
	BlockHits   uint64 // block entries served without a build (vm.block_hit)
	BlockInvals uint64 // rebuilds of a stale block: SMC, PLT patch, remap
	FusedOps    uint64 // fused macro-ops executed (vm.fused_ops)
}

// CPU is one simulated processor context.
type CPU struct {
	Regs  [32]uint32
	PC    uint32
	AS    *addrspace.Space
	Steps uint64 // retired instruction count
	Traps uint64 // traps raised (memory faults, illegal instructions, div0)

	// CtrTraps, when wired (kern.Spawn does), mirrors Traps into the
	// kernel-wide vm.traps counter. Nil-safe; fork shares the pointer.
	CtrTraps *obsv.Counter

	// Cache counters (vm.tlb_hit, vm.tlb_miss, vm.icache_fill,
	// vm.icache_invalidate), wired by kern.Spawn. The hot path accumulates
	// in the plain per-CPU stats fields; FlushObsv folds the deltas into
	// these shared atomics at batch boundaries.
	CtrTLBHit, CtrTLBMiss, CtrICFill, CtrICInval *obsv.Counter

	// Block-engine counters (vm.block_build, vm.block_hit,
	// vm.block_invalidate, vm.fused_ops), wired by kern.Spawn and folded
	// by FlushObsv like the cache counters.
	CtrBlockBuild, CtrBlockHit, CtrBlockInval, CtrFusedOps *obsv.Counter

	stats   CacheStats
	flushed CacheStats

	// uncached routes every fetch, load and store through the canonical
	// addrspace paths, bypassing the TLBs and the icache entirely. It is
	// the reference-interpreter mode the differential-testing harness
	// compares the cached fast path against (ReferenceStep).
	uncached bool
	refInst  pinst // scratch predecode slot for uncached fetches

	// blocksOff disables the basic-block engine for batched execution
	// (SetBlockEngine, or HEMLOCK_BLOCK_ENGINE=0 at process level).
	blocksOff bool

	// sampler, when installed via SetSampler, receives guest-PC samples at
	// batch and block boundaries. Nil (the default) costs one comparison
	// per boundary.
	sampler Sampler

	dtlb [tlbSize]tlbEnt
	itlb [tlbSize]tlbEnt
	ic   [icSize]*icPage

	// bc is the basic-block cache, allocated on first use: the 4 KB
	// pointer array would otherwise dominate the size of a CPU that never
	// runs (zygote clones pay one CPU allocation per launch).
	bc *[bcSize]*block
}

// New returns a CPU bound to the given address space.
func New(as *addrspace.Space) *CPU {
	return &CPU{AS: as, blocksOff: !blockEngineDefault}
}

func (c *CPU) set(r uint8, v uint32) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// trap records and returns a CPU exception at pc.
func (c *CPU) trap(pc uint32, err error) (Event, error) {
	c.Traps++
	c.CtrTraps.Inc()
	return EventStep, &Trap{PC: pc, Err: err}
}

// CacheStats returns the CPU's cumulative TLB/icache statistics.
func (c *CPU) CacheStats() CacheStats { return c.stats }

// FlushObsv folds cache statistics accumulated since the last flush into
// the wired obsv counters. RunBatch calls it on every exit, so `hemlock
// stats` sees up-to-date numbers without the hot path touching an atomic
// per instruction.
func (c *CPU) FlushObsv() {
	c.CtrTLBHit.Add(c.stats.TLBHits - c.flushed.TLBHits)
	c.CtrTLBMiss.Add(c.stats.TLBMisses - c.flushed.TLBMisses)
	c.CtrICFill.Add(c.stats.ICFills - c.flushed.ICFills)
	c.CtrICInval.Add(c.stats.ICInvals - c.flushed.ICInvals)
	c.CtrBlockBuild.Add(c.stats.BlockBuilds - c.flushed.BlockBuilds)
	c.CtrBlockHit.Add(c.stats.BlockHits - c.flushed.BlockHits)
	c.CtrBlockInval.Add(c.stats.BlockInvals - c.flushed.BlockInvals)
	c.CtrFusedOps.Add(c.stats.FusedOps - c.flushed.FusedOps)
	c.flushed = c.stats
}

// FlushCaches drops every TLB, icache and block-cache entry. Required
// after pointing the CPU at a different address space; never required for
// mapping changes (the generation check catches those) or stores (the
// frame version check catches those).
func (c *CPU) FlushCaches() {
	c.dtlb = [tlbSize]tlbEnt{}
	c.itlb = [tlbSize]tlbEnt{}
	c.ic = [icSize]*icPage{}
	c.bc = nil
}

// dentry returns a valid D-TLB entry for addr with the needed right,
// filling the slot from the address space on a miss. The returned *Fault
// is non-nil when translation fails.
func (c *CPU) dentry(addr uint32, a addrspace.Access) (*tlbEnt, *addrspace.Fault) {
	vp := addr >> mem.PageShift
	e := &c.dtlb[vp&(tlbSize-1)]
	if e.frame != nil && e.vpn == vp && e.prot&a.Need() != 0 && e.gen == c.AS.Gen() {
		c.stats.TLBHits++
		return e, nil
	}
	ent, flt := c.AS.Translate(addr, a)
	if flt != nil {
		return nil, flt
	}
	c.stats.TLBMisses++
	e.frame, e.gen, e.vpn, e.prot = ent.Frame, ent.Gen, vp, ent.Prot
	return e, nil
}

func (c *CPU) loadWord(addr uint32) (uint32, error) {
	if addr&3 != 0 || c.uncached {
		return c.AS.LoadWord(addr) // canonical path (also the unaligned error)
	}
	e, flt := c.dentry(addr, addrspace.AccessRead)
	if flt != nil {
		return 0, flt
	}
	return e.frame.LoadWordBE(addr & (mem.PageSize - 1)), nil
}

func (c *CPU) loadByte(addr uint32) (byte, error) {
	if c.uncached {
		return c.AS.LoadByte(addr)
	}
	e, flt := c.dentry(addr, addrspace.AccessRead)
	if flt != nil {
		return 0, flt
	}
	return e.frame.Data[addr&(mem.PageSize-1)], nil
}

func (c *CPU) storeWord(addr, val uint32) error {
	if addr&3 != 0 || c.uncached {
		return c.AS.StoreWord(addr, val) // canonical path (also the unaligned error)
	}
	e, flt := c.dentry(addr, addrspace.AccessWrite)
	if flt != nil {
		return flt
	}
	// Self-modifying-code protocol: StoreWordBE bumps the frame version
	// before the bytes change, so any icache entry predecoded from this
	// frame — ours or a sibling CPU's — fails its version check on next
	// fetch. The store itself is host-atomic: a sibling CPU concurrently
	// loading or fetching this word sees the old word or the new one,
	// never a torn mix.
	e.frame.StoreWordBE(addr&(mem.PageSize-1), val)
	return nil
}

func (c *CPU) storeByte(addr uint32, val byte) error {
	if c.uncached {
		return c.AS.StoreByte(addr, val)
	}
	e, flt := c.dentry(addr, addrspace.AccessWrite)
	if flt != nil {
		return flt
	}
	e.frame.NoteStoreRange(addr&(mem.PageSize-1), 1)
	e.frame.Data[addr&(mem.PageSize-1)] = val
	return nil
}

// fetch returns the predecoded instruction at pc. The fast path is an
// I-TLB probe (generation check), an icache probe (frame version check)
// and a bitmap test; the slow paths fill the missing level and retry.
func (c *CPU) fetch(pc uint32) (*pinst, error) {
	if c.uncached {
		w, err := c.AS.FetchWord(pc)
		if err != nil {
			return nil, err
		}
		c.refInst = predecode(w)
		return &c.refInst, nil
	}
	if pc&3 != 0 {
		_, err := c.AS.FetchWord(pc) // canonical unaligned-fetch error
		return nil, err
	}
	vp := pc >> mem.PageShift
	e := &c.itlb[vp&(tlbSize-1)]
	if e.frame != nil && e.vpn == vp && e.gen == c.AS.Gen() {
		c.stats.TLBHits++
	} else {
		ent, flt := c.AS.Translate(pc, addrspace.AccessExec)
		if flt != nil {
			return nil, flt
		}
		c.stats.TLBMisses++
		e.frame, e.gen, e.vpn, e.prot = ent.Frame, ent.Gen, vp, ent.Prot
	}
	pg := c.ic[vp&(icSize-1)]
	if pg == nil {
		pg = new(icPage)
		c.ic[vp&(icSize-1)] = pg
	}
	// Read the frame version BEFORE any instruction bytes: a store racing
	// past this point leaves us with predecode at least as old as fver, so
	// the next fetch's version check refills.
	fv := e.frame.Version()
	if !pg.valid || pg.vpn != vp || pg.frame != e.frame || pg.fver != fv {
		if pg.valid && pg.vpn == vp && pg.frame == e.frame {
			c.stats.ICInvals++ // stale predecode: text was stored into
		}
		pg.frame, pg.fver, pg.vpn, pg.valid = e.frame, fv, vp, true
		pg.decoded = [pageWords / 64]uint64{}
		c.stats.ICFills++
	}
	wi := (pc & (mem.PageSize - 1)) >> 2
	if pg.decoded[wi>>6]&(1<<(wi&63)) == 0 {
		pg.code[wi] = predecode(e.frame.LoadWordBE(pc & (mem.PageSize - 1)))
		pg.decoded[wi>>6] |= 1 << (wi & 63)
	}
	return &pg.code[wi], nil
}

// Step fetches, decodes and executes one instruction. On a memory fault it
// returns a *Trap and leaves PC/registers untouched so the instruction can
// be restarted after the fault is serviced.
func (c *CPU) Step() (Event, error) {
	in, err := c.fetch(c.PC)
	if err != nil {
		return c.trap(c.PC, err)
	}
	return c.exec(in)
}

// exec retires one predecoded instruction.
func (c *CPU) exec(in *pinst) (Event, error) {
	next := c.PC + 4
	switch in.op {
	case isa.OpSpecial:
		switch in.fn {
		case isa.FnSLL:
			c.set(in.rd, c.Regs[in.rt]<<uint(in.shamt))
		case isa.FnSRL:
			c.set(in.rd, c.Regs[in.rt]>>uint(in.shamt))
		case isa.FnSRA:
			c.set(in.rd, uint32(int32(c.Regs[in.rt])>>uint(in.shamt)))
		case isa.FnSLLV:
			c.set(in.rd, c.Regs[in.rt]<<(c.Regs[in.rs]&31))
		case isa.FnSRLV:
			c.set(in.rd, c.Regs[in.rt]>>(c.Regs[in.rs]&31))
		case isa.FnSRAV:
			c.set(in.rd, uint32(int32(c.Regs[in.rt])>>(c.Regs[in.rs]&31)))
		case isa.FnJR:
			next = c.Regs[in.rs]
		case isa.FnJALR:
			ret := c.PC + 4
			next = c.Regs[in.rs]
			c.set(in.rd, ret)
		case isa.FnSYSCALL:
			c.PC = next
			c.Steps++
			return EventSyscall, nil
		case isa.FnBREAK:
			c.PC = next
			c.Steps++
			return EventBreak, nil
		case isa.FnMUL:
			c.set(in.rd, c.Regs[in.rs]*c.Regs[in.rt])
		case isa.FnDIV:
			if c.Regs[in.rt] == 0 {
				return c.trap(c.PC, ErrDivZero)
			}
			c.set(in.rd, uint32(int32(c.Regs[in.rs])/int32(c.Regs[in.rt])))
		case isa.FnADD, isa.FnADDU:
			c.set(in.rd, c.Regs[in.rs]+c.Regs[in.rt])
		case isa.FnSUB, isa.FnSUBU:
			c.set(in.rd, c.Regs[in.rs]-c.Regs[in.rt])
		case isa.FnAND:
			c.set(in.rd, c.Regs[in.rs]&c.Regs[in.rt])
		case isa.FnOR:
			c.set(in.rd, c.Regs[in.rs]|c.Regs[in.rt])
		case isa.FnXOR:
			c.set(in.rd, c.Regs[in.rs]^c.Regs[in.rt])
		case isa.FnNOR:
			c.set(in.rd, ^(c.Regs[in.rs] | c.Regs[in.rt]))
		case isa.FnSLT:
			if int32(c.Regs[in.rs]) < int32(c.Regs[in.rt]) {
				c.set(in.rd, 1)
			} else {
				c.set(in.rd, 0)
			}
		case isa.FnSLTU:
			if c.Regs[in.rs] < c.Regs[in.rt] {
				c.set(in.rd, 1)
			} else {
				c.set(in.rd, 0)
			}
		default:
			return c.trap(c.PC, fmt.Errorf("%w: special funct %d", ErrIllegal, in.fn))
		}
	case isa.OpJ:
		next = isa.Jump26Target(in.word, c.PC)
	case isa.OpJAL:
		c.set(isa.RegRA, c.PC+4)
		next = isa.Jump26Target(in.word, c.PC)
	case isa.OpBEQ:
		if c.Regs[in.rs] == c.Regs[in.rt] {
			next = isa.BranchTarget(c.PC, in.imm)
		}
	case isa.OpBNE:
		if c.Regs[in.rs] != c.Regs[in.rt] {
			next = isa.BranchTarget(c.PC, in.imm)
		}
	case isa.OpBLEZ:
		if int32(c.Regs[in.rs]) <= 0 {
			next = isa.BranchTarget(c.PC, in.imm)
		}
	case isa.OpBGTZ:
		if int32(c.Regs[in.rs]) > 0 {
			next = isa.BranchTarget(c.PC, in.imm)
		}
	case isa.OpADDI, isa.OpADDIU:
		c.set(in.rt, c.Regs[in.rs]+isa.SignExt(in.imm))
	case isa.OpSLTI:
		if int32(c.Regs[in.rs]) < int32(isa.SignExt(in.imm)) {
			c.set(in.rt, 1)
		} else {
			c.set(in.rt, 0)
		}
	case isa.OpSLTIU:
		if c.Regs[in.rs] < isa.SignExt(in.imm) {
			c.set(in.rt, 1)
		} else {
			c.set(in.rt, 0)
		}
	case isa.OpANDI:
		c.set(in.rt, c.Regs[in.rs]&uint32(in.imm))
	case isa.OpORI:
		c.set(in.rt, c.Regs[in.rs]|uint32(in.imm))
	case isa.OpXORI:
		c.set(in.rt, c.Regs[in.rs]^uint32(in.imm))
	case isa.OpLUI:
		c.set(in.rt, uint32(in.imm)<<16)
	case isa.OpLW:
		addr := c.Regs[in.rs] + isa.SignExt(in.imm)
		v, err := c.loadWord(addr)
		if err != nil {
			return c.trap(c.PC, err)
		}
		c.set(in.rt, v)
	case isa.OpLB:
		addr := c.Regs[in.rs] + isa.SignExt(in.imm)
		b, err := c.loadByte(addr)
		if err != nil {
			return c.trap(c.PC, err)
		}
		c.set(in.rt, uint32(int32(int8(b))))
	case isa.OpLBU:
		addr := c.Regs[in.rs] + isa.SignExt(in.imm)
		b, err := c.loadByte(addr)
		if err != nil {
			return c.trap(c.PC, err)
		}
		c.set(in.rt, uint32(b))
	case isa.OpSW:
		addr := c.Regs[in.rs] + isa.SignExt(in.imm)
		if err := c.storeWord(addr, c.Regs[in.rt]); err != nil {
			return c.trap(c.PC, err)
		}
	case isa.OpSB:
		addr := c.Regs[in.rs] + isa.SignExt(in.imm)
		if err := c.storeByte(addr, byte(c.Regs[in.rt])); err != nil {
			return c.trap(c.PC, err)
		}
	case isa.OpHALT:
		c.Steps++
		return EventHalt, nil
	default:
		return c.trap(c.PC, fmt.Errorf("%w: opcode %d", ErrIllegal, in.op))
	}
	c.PC = next
	c.Steps++
	return EventStep, nil
}

// RunBatch retires up to max instructions, stopping early at the first
// non-step event or trap (EventStep with a nil error means the budget ran
// out). This is the kernel's fast path: the block engine decodes, chains
// and fuses straight-line runs (block.go), and cache statistics are
// flushed to the obsv counters once per batch rather than once per
// instruction. With the engine off it falls back to the per-instruction
// icache path.
func (c *CPU) RunBatch(max uint64) (Event, error) {
	if c.blocksOff || c.uncached {
		return c.runBatchSlow(max)
	}
	return c.runBlockEngine(max)
}

// runBatchSlow is the per-instruction batch loop (the PR-3 fast path):
// fetch through the I-TLB + predecoded icache, execute, repeat. The block
// engine delegates budget tails to it so a batch never over-retires.
func (c *CPU) runBatchSlow(max uint64) (Event, error) {
	c.sample(0)
	for n := uint64(0); n < max; n++ {
		in, err := c.fetch(c.PC)
		if err != nil {
			ev, terr := c.trap(c.PC, err)
			c.FlushObsv()
			return ev, terr
		}
		ev, err := c.exec(in)
		if err != nil || ev != EventStep {
			c.FlushObsv()
			return ev, err
		}
	}
	c.FlushObsv()
	return EventStep, nil
}

// Run executes until a non-step event, a trap, or maxSteps instructions.
// It is a convenience for tests that do not need a kernel; real programs
// run under kern, which services faults and syscalls.
func (c *CPU) Run(maxSteps uint64) (Event, error) {
	ev, err := c.RunBatch(maxSteps)
	if err != nil || ev != EventStep {
		return ev, err
	}
	return EventStep, fmt.Errorf("vm: exceeded %d steps at pc 0x%08x", maxSteps, c.PC)
}

// AdoptArchState copies from's architectural state — registers, PC,
// retired-instruction and trap counts, block-engine mode, sampler — into c,
// keeping c's own address space, wired counters and (cold) caches. fork
// uses it to reuse the CPU Spawn already allocated instead of paying for a
// second ~8 KB CPU per clone; cache state is deliberately not copied for
// the same reason Snapshot omits it.
func (c *CPU) AdoptArchState(from *CPU) {
	c.Regs = from.Regs
	c.PC = from.PC
	c.Steps = from.Steps
	c.Traps = from.Traps
	c.blocksOff = from.blocksOff
	c.sampler = from.sampler
}

// Snapshot returns a copy of the architectural state (for fork). Cache
// state is deliberately NOT copied: the child runs against a different
// address space whose generation counter starts fresh, so inherited
// entries could falsely validate against the parent's frames.
func (c *CPU) Snapshot() CPU {
	return CPU{
		Regs:          c.Regs,
		PC:            c.PC,
		AS:            c.AS,
		Steps:         c.Steps,
		Traps:         c.Traps,
		CtrTraps:      c.CtrTraps,
		CtrTLBHit:     c.CtrTLBHit,
		CtrTLBMiss:    c.CtrTLBMiss,
		CtrICFill:     c.CtrICFill,
		CtrICInval:    c.CtrICInval,
		CtrBlockBuild: c.CtrBlockBuild,
		CtrBlockHit:   c.CtrBlockHit,
		CtrBlockInval: c.CtrBlockInval,
		CtrFusedOps:   c.CtrFusedOps,
		blocksOff:     c.blocksOff,
		sampler:       c.sampler,
	}
}
