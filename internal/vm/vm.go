// Package vm implements the interpreting CPU for R3K-lite.
//
// The CPU executes instructions against a simulated address space. A memory
// access that faults leaves the architectural state (PC and registers)
// exactly as it was before the instruction, so the kernel can run Hemlock's
// user-level fault handler and then simply resume: the faulting instruction
// restarts, which is precisely the behaviour the paper's SIGSEGV-driven
// lazy linking and map-on-pointer-dereference depend on ("It then restarts
// the faulting instruction").
package vm

import (
	"errors"
	"fmt"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/obsv"
)

// Event reports why Step returned without error.
type Event uint8

// Step outcomes.
const (
	EventStep    Event = iota // one ordinary instruction retired
	EventHalt                 // HALT executed
	EventSyscall              // SYSCALL executed; PC already advanced
	EventBreak                // BREAK executed; PC already advanced
)

func (e Event) String() string {
	switch e {
	case EventStep:
		return "step"
	case EventHalt:
		return "halt"
	case EventSyscall:
		return "syscall"
	case EventBreak:
		return "break"
	}
	return fmt.Sprintf("event(%d)", uint8(e))
}

// Trap is a CPU exception: an illegal instruction, arithmetic trap, or a
// memory fault (in which case Unwrap yields the *addrspace.Fault). PC is
// the address of the instruction that trapped; it has not been retired.
type Trap struct {
	PC  uint32
	Err error
}

func (t *Trap) Error() string { return fmt.Sprintf("vm: trap at pc 0x%08x: %v", t.PC, t.Err) }
func (t *Trap) Unwrap() error { return t.Err }

// FaultOf extracts the memory fault from err, if err is a Trap wrapping one.
func FaultOf(err error) (*addrspace.Fault, bool) {
	var f *addrspace.Fault
	if errors.As(err, &f) {
		return f, true
	}
	return nil, false
}

// ErrIllegal is wrapped by traps on undecodable instructions.
var ErrIllegal = errors.New("illegal instruction")

// ErrDivZero is wrapped by traps on division by zero.
var ErrDivZero = errors.New("integer divide by zero")

// CPU is one simulated processor context.
type CPU struct {
	Regs  [32]uint32
	PC    uint32
	AS    *addrspace.Space
	Steps uint64 // retired instruction count
	Traps uint64 // traps raised (memory faults, illegal instructions, div0)

	// CtrTraps, when wired (kern.Spawn does), mirrors Traps into the
	// kernel-wide vm.traps counter. Nil-safe; fork shares the pointer.
	CtrTraps *obsv.Counter
}

// New returns a CPU bound to the given address space.
func New(as *addrspace.Space) *CPU {
	return &CPU{AS: as}
}

func (c *CPU) set(r int, v uint32) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// trap records and returns a CPU exception at pc.
func (c *CPU) trap(pc uint32, err error) (Event, error) {
	c.Traps++
	c.CtrTraps.Inc()
	return EventStep, &Trap{PC: pc, Err: err}
}

// Step fetches, decodes and executes one instruction. On a memory fault it
// returns a *Trap and leaves PC/registers untouched so the instruction can
// be restarted after the fault is serviced.
func (c *CPU) Step() (Event, error) {
	w, err := c.AS.FetchWord(c.PC)
	if err != nil {
		return c.trap(c.PC, err)
	}
	in := isa.Decode(w)
	next := c.PC + 4
	switch in.Op {
	case isa.OpSpecial:
		switch in.Fn {
		case isa.FnSLL:
			c.set(in.RD, c.Regs[in.RT]<<uint(in.Shamt))
		case isa.FnSRL:
			c.set(in.RD, c.Regs[in.RT]>>uint(in.Shamt))
		case isa.FnSRA:
			c.set(in.RD, uint32(int32(c.Regs[in.RT])>>uint(in.Shamt)))
		case isa.FnSLLV:
			c.set(in.RD, c.Regs[in.RT]<<(c.Regs[in.RS]&31))
		case isa.FnSRLV:
			c.set(in.RD, c.Regs[in.RT]>>(c.Regs[in.RS]&31))
		case isa.FnSRAV:
			c.set(in.RD, uint32(int32(c.Regs[in.RT])>>(c.Regs[in.RS]&31)))
		case isa.FnJR:
			next = c.Regs[in.RS]
		case isa.FnJALR:
			ret := c.PC + 4
			next = c.Regs[in.RS]
			c.set(in.RD, ret)
		case isa.FnSYSCALL:
			c.PC = next
			c.Steps++
			return EventSyscall, nil
		case isa.FnBREAK:
			c.PC = next
			c.Steps++
			return EventBreak, nil
		case isa.FnMUL:
			c.set(in.RD, c.Regs[in.RS]*c.Regs[in.RT])
		case isa.FnDIV:
			if c.Regs[in.RT] == 0 {
				return c.trap(c.PC, ErrDivZero)
			}
			c.set(in.RD, uint32(int32(c.Regs[in.RS])/int32(c.Regs[in.RT])))
		case isa.FnADD, isa.FnADDU:
			c.set(in.RD, c.Regs[in.RS]+c.Regs[in.RT])
		case isa.FnSUB, isa.FnSUBU:
			c.set(in.RD, c.Regs[in.RS]-c.Regs[in.RT])
		case isa.FnAND:
			c.set(in.RD, c.Regs[in.RS]&c.Regs[in.RT])
		case isa.FnOR:
			c.set(in.RD, c.Regs[in.RS]|c.Regs[in.RT])
		case isa.FnXOR:
			c.set(in.RD, c.Regs[in.RS]^c.Regs[in.RT])
		case isa.FnNOR:
			c.set(in.RD, ^(c.Regs[in.RS] | c.Regs[in.RT]))
		case isa.FnSLT:
			if int32(c.Regs[in.RS]) < int32(c.Regs[in.RT]) {
				c.set(in.RD, 1)
			} else {
				c.set(in.RD, 0)
			}
		case isa.FnSLTU:
			if c.Regs[in.RS] < c.Regs[in.RT] {
				c.set(in.RD, 1)
			} else {
				c.set(in.RD, 0)
			}
		default:
			return c.trap(c.PC, fmt.Errorf("%w: special funct %d", ErrIllegal, in.Fn))
		}
	case isa.OpJ:
		next = isa.Jump26Target(w, c.PC)
	case isa.OpJAL:
		c.set(isa.RegRA, c.PC+4)
		next = isa.Jump26Target(w, c.PC)
	case isa.OpBEQ:
		if c.Regs[in.RS] == c.Regs[in.RT] {
			next = isa.BranchTarget(c.PC, in.Imm)
		}
	case isa.OpBNE:
		if c.Regs[in.RS] != c.Regs[in.RT] {
			next = isa.BranchTarget(c.PC, in.Imm)
		}
	case isa.OpBLEZ:
		if int32(c.Regs[in.RS]) <= 0 {
			next = isa.BranchTarget(c.PC, in.Imm)
		}
	case isa.OpBGTZ:
		if int32(c.Regs[in.RS]) > 0 {
			next = isa.BranchTarget(c.PC, in.Imm)
		}
	case isa.OpADDI, isa.OpADDIU:
		c.set(in.RT, c.Regs[in.RS]+isa.SignExt(in.Imm))
	case isa.OpSLTI:
		if int32(c.Regs[in.RS]) < int32(isa.SignExt(in.Imm)) {
			c.set(in.RT, 1)
		} else {
			c.set(in.RT, 0)
		}
	case isa.OpSLTIU:
		if c.Regs[in.RS] < isa.SignExt(in.Imm) {
			c.set(in.RT, 1)
		} else {
			c.set(in.RT, 0)
		}
	case isa.OpANDI:
		c.set(in.RT, c.Regs[in.RS]&uint32(in.Imm))
	case isa.OpORI:
		c.set(in.RT, c.Regs[in.RS]|uint32(in.Imm))
	case isa.OpXORI:
		c.set(in.RT, c.Regs[in.RS]^uint32(in.Imm))
	case isa.OpLUI:
		c.set(in.RT, uint32(in.Imm)<<16)
	case isa.OpLW:
		addr := c.Regs[in.RS] + isa.SignExt(in.Imm)
		v, err := c.AS.LoadWord(addr)
		if err != nil {
			return c.trap(c.PC, err)
		}
		c.set(in.RT, v)
	case isa.OpLB:
		addr := c.Regs[in.RS] + isa.SignExt(in.Imm)
		b, err := c.AS.LoadByte(addr)
		if err != nil {
			return c.trap(c.PC, err)
		}
		c.set(in.RT, uint32(int32(int8(b))))
	case isa.OpLBU:
		addr := c.Regs[in.RS] + isa.SignExt(in.Imm)
		b, err := c.AS.LoadByte(addr)
		if err != nil {
			return c.trap(c.PC, err)
		}
		c.set(in.RT, uint32(b))
	case isa.OpSW:
		addr := c.Regs[in.RS] + isa.SignExt(in.Imm)
		if err := c.AS.StoreWord(addr, c.Regs[in.RT]); err != nil {
			return c.trap(c.PC, err)
		}
	case isa.OpSB:
		addr := c.Regs[in.RS] + isa.SignExt(in.Imm)
		if err := c.AS.StoreByte(addr, byte(c.Regs[in.RT])); err != nil {
			return c.trap(c.PC, err)
		}
	case isa.OpHALT:
		c.Steps++
		return EventHalt, nil
	default:
		return c.trap(c.PC, fmt.Errorf("%w: opcode %d", ErrIllegal, in.Op))
	}
	c.PC = next
	c.Steps++
	return EventStep, nil
}

// Run executes until a non-step event, a trap, or maxSteps instructions.
// It is a convenience for tests that do not need a kernel; real programs
// run under kern, which services faults and syscalls.
func (c *CPU) Run(maxSteps uint64) (Event, error) {
	for i := uint64(0); i < maxSteps; i++ {
		ev, err := c.Step()
		if err != nil {
			return ev, err
		}
		if ev != EventStep {
			return ev, nil
		}
	}
	return EventStep, fmt.Errorf("vm: exceeded %d steps at pc 0x%08x", maxSteps, c.PC)
}

// Snapshot returns a copy of the CPU state (for fork).
func (c *CPU) Snapshot() CPU { return *c }
