package vm

// Basic-block translation engine. RunBatch no longer dispatches one
// predecoded instruction at a time: it decodes straight-line runs into
// blocks of compact ops with precomputed operands (branch targets, jump
// destinations, sign-extended immediates, fused LUI-pair constants),
// caches them in a per-CPU direct-mapped block cache, and executes each
// block in a tight loop with no per-instruction TLB or icache probes —
// one Translate per page crossed, hoisted to block build, exactly like a
// QEMU translation block or an Embra superblock.
//
// # Validity and invalidation
//
// A block is confined to a single page, so it has exactly one backing
// frame. Two values pin its validity, both read lock-free on entry:
//
//   - gen: the address-space mapping generation at build time
//     (addrspace.Space.Gen — any map/unmap/protect moves it);
//   - fver: the backing frame's store version at build time
//     (mem.Frame.Version — EVERY writer bumps it before the bytes
//     change: vm stores, addrspace host writes, shmfs, netshm).
//
// The checks run on every block entry, including entries through chain
// pointers, so a chained successor whose text was patched — an ldl PLT
// resolution, generated self-modifying code, a store from a different
// process sharing the frame — is rebuilt on the very next control
// transfer into it, which is the very next fetch of the patched word.
// A store INTO the currently running block's own page exits the block
// after the store retires (the frame version moved), so even a program
// that patches its own straight-line successor instructions stays
// bit-identical with the reference interpreter.
//
// # Chaining
//
// Static terminators (J/JAL, both branch arms, trampoline fusions, page
// fallthrough) carry successor pointers that are linked lazily the first
// time the edge is taken; following one skips the block-cache probe but
// not the validity check. Register jumps (JR/JALR) re-enter through the
// cache probe — still one probe per block, not per instruction.
//
// # Exactness
//
// The engine retires architectural state per op: traps leave PC and
// registers at the faulting instruction (restartability is what the
// paper's SIGSEGV-driven lazy linking needs), syscall/break advance PC,
// and a batch never retires more than its budget — when the next op is a
// fused pair that would overshoot, the tail runs on the per-instruction
// path. The differential harness holds the engine bit-identical to
// vm.ReferenceStep over events, steps, traps, registers, PC and the
// whole-memory hash.

import (
	"fmt"
	"os"
	"sync"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/mem"
)

// Block-cache geometry: direct-mapped on the block's start word address.
// 512 slots covers the working set of an image plus a few shared modules
// at one pointer per slot.
const (
	bcBits = 9
	bcSize = 1 << bcBits

	// maxBlockInsts caps how many instructions one block may retire, so a
	// page of straight-line code does not decode in one gulp the first
	// time a prefix of it executes. Must stay below 1<<16 (bop.n).
	maxBlockInsts = 256
)

// blockEngineDefault is the process-wide default for new CPUs. Set
// HEMLOCK_BLOCK_ENGINE=0 to fall back to the per-instruction PR-3 path
// (the CI differential matrix runs both).
var blockEngineDefault = os.Getenv("HEMLOCK_BLOCK_ENGINE") != "0"

// bkind discriminates block ops. Ops up to bSB are straight-line; the
// rest terminate a block.
type bkind uint8

const (
	bFALL bkind = iota // page boundary or op cap: fall through to imm

	bSLL // aux = shamt
	bSRL
	bSRA
	bSLLV
	bSRLV
	bSRAV
	bMUL
	bDIV
	bADD
	bSUB
	bAND
	bOR
	bXOR
	bNOR
	bSLT
	bSLTU
	bADDI // imm = sign-extended
	bSLTI
	bSLTIU
	bANDI // imm = zero-extended
	bORI
	bXORI
	bLUI // imm = value<<16

	bFuseLUIORI // rs=lui rt, rd=ori rt, aux=hi<<16, imm=composed constant
	bFuseLUILW  // rs=lui rt, rd=lw rt, aux=hi<<16, imm=absolute address
	bFuseLUISW  // rs=lui rt, rt=sw rt, aux=hi<<16, imm=absolute address

	bLW // imm = sign-extended offset
	bLB
	bLBU
	bSW
	bSB

	bJ   // imm = target
	bJAL // imm = target; link = pc+4
	bBEQ // imm = taken target
	bBNE
	bBLEZ
	bBGTZ
	bJR   // next = Regs[rs]
	bJALR // next = Regs[rs]; rd = pc+4

	bFuseTramp     // lui+ori+jr: rs=lui rt, rd=ori rt, aux=hi<<16, imm=target
	bFuseTrampCall // lui+ori+jalr: + rt = link register

	bSYSCALL
	bBREAK
	bHALT
	bILLEGAL // imm = raw word (reconstructs the exact trap message)
)

// bop is one block op: a decoded instruction, a fused instruction pair or
// triple, or a block terminator, with every PC-dependent value folded in
// at build time.
type bop struct {
	kind bkind
	rd   uint8
	rs   uint8
	rt   uint8
	pre  uint16 // leading fused nops, retired with this op
	n    uint16 // budget to attempt the op: pre + primary instructions
	imm  uint32
	aux  uint32
	pc   uint32 // address of the primary (first non-nop) instruction
}

// block is one decoded straight-line run, confined to a single page.
type block struct {
	pc    uint32
	gen   uint64     // addrspace generation at build
	fver  uint64     // frame store version at build
	frame *mem.Frame // the one page the block decodes from
	ops   []bop      // non-empty; last op is the terminator
	taken *block     // lazily linked static successors (chaining)
	fall  *block
}

// valid reports whether the block's translation and predecode are still
// current. Two atomic loads; runs on every block entry.
func (b *block) valid(gen uint64) bool {
	return b.gen == gen && b.fver == b.frame.Version()
}

// bcPool recycles block-cache arrays across CPUs: a short-lived process (a
// zygote clone, say) would otherwise allocate and garbage 4 KB per launch.
var bcPool = sync.Pool{New: func() any { return new([bcSize]*block) }}

// SetBlockEngine switches this CPU between the block-translation engine
// and the per-instruction PR-3 path for batched execution (Step always
// uses the per-instruction path). Turning it off drops the block cache.
func (c *CPU) SetBlockEngine(on bool) {
	c.blocksOff = !on
	if !on {
		c.releaseBlockCache()
	}
}

// releaseBlockCache returns the block-cache array to the pool. The kernel
// calls it (via ReleaseCaches) when the process exits.
func (c *CPU) releaseBlockCache() {
	if c.bc != nil {
		bcPool.Put(c.bc)
		c.bc = nil
	}
}

// ReleaseCaches hands the CPU's pooled cache storage back for reuse. Only
// call when the CPU will not run again.
func (c *CPU) ReleaseCaches() { c.releaseBlockCache() }

// BlockEngineOn reports whether batched execution uses the block engine.
func (c *CPU) BlockEngineOn() bool { return !c.blocksOff }

// illegalErr reconstructs the trap error the per-instruction decoder
// raises for word w — the messages must match byte-for-byte or the
// differential harness flags a divergence.
func illegalErr(w uint32) error {
	if w>>26 == 0 {
		return fmt.Errorf("%w: special funct %d", ErrIllegal, w&63)
	}
	return fmt.Errorf("%w: opcode %d", ErrIllegal, w>>26)
}

// blockAt returns a valid block starting at pc, probing the direct-mapped
// cache and (re)building on miss or staleness.
func (c *CPU) blockAt(pc uint32) (*block, error) {
	if c.bc == nil {
		bc := bcPool.Get().(*[bcSize]*block)
		*bc = [bcSize]*block{} // a pooled array holds another CPU's blocks
		c.bc = bc
	}
	slot := &c.bc[(pc>>2)&(bcSize-1)]
	if b := *slot; b != nil && b.pc == pc && b.valid(c.AS.Gen()) {
		c.stats.BlockHits++
		return b, nil
	}
	nb, err := c.buildBlock(pc)
	if err != nil {
		return nil, err
	}
	if b := *slot; b != nil && b.pc == pc {
		c.stats.BlockInvals++ // same block went stale: SMC, PLT patch, remap
	}
	*slot = nb
	c.stats.BlockBuilds++
	return nb, nil
}

// buildBlock decodes the straight-line run starting at pc into a block.
// The one Translate here is the only translation the block's instructions
// ever pay; crossing into the next page is a separate (chained) block.
func (c *CPU) buildBlock(pc uint32) (*block, error) {
	if pc&3 != 0 {
		_, err := c.AS.FetchWord(pc) // canonical unaligned-fetch error
		return nil, err
	}
	ent, flt := c.AS.Translate(pc, addrspace.AccessExec)
	if flt != nil {
		return nil, flt
	}
	c.stats.TLBMisses++ // one per block build, not per instruction
	b := &block{pc: pc, gen: ent.Gen, frame: ent.Frame}
	// Read the frame version BEFORE any instruction bytes: a store racing
	// past this point leaves the predecode at least as old as fver, so the
	// entry check refuses the block and rebuilds.
	b.fver = ent.Frame.Version()

	base := pc &^ uint32(mem.PageSize-1)
	wi := (pc & (mem.PageSize - 1)) >> 2
	word := func(i uint32) uint32 {
		return ent.Frame.LoadWordBE(i * 4)
	}
	var pre uint16 // pending run of nops, absorbed into the next op
	ninst := 0
	for {
		if wi >= pageWords || ninst >= maxBlockInsts {
			fpc := base + wi*4
			b.ops = append(b.ops, bop{kind: bFALL, pre: pre, n: pre, imm: fpc, pc: fpc})
			return b, nil
		}
		w := word(wi)
		if w == isa.Nop {
			pre++ // absorbed into the next op's pre count
			wi++
			continue
		}
		ipc := base + wi*4
		op := bop{pre: pre, n: pre + 1, pc: ipc}
		pre = 0
		terminal := false
		in := predecode(w)
		switch in.op {
		case isa.OpSpecial:
			switch in.fn {
			case isa.FnSLL:
				op.kind, op.rd, op.rt, op.aux = bSLL, in.rd, in.rt, uint32(in.shamt)
			case isa.FnSRL:
				op.kind, op.rd, op.rt, op.aux = bSRL, in.rd, in.rt, uint32(in.shamt)
			case isa.FnSRA:
				op.kind, op.rd, op.rt, op.aux = bSRA, in.rd, in.rt, uint32(in.shamt)
			case isa.FnSLLV:
				op.kind, op.rd, op.rs, op.rt = bSLLV, in.rd, in.rs, in.rt
			case isa.FnSRLV:
				op.kind, op.rd, op.rs, op.rt = bSRLV, in.rd, in.rs, in.rt
			case isa.FnSRAV:
				op.kind, op.rd, op.rs, op.rt = bSRAV, in.rd, in.rs, in.rt
			case isa.FnJR:
				op.kind, op.rs, terminal = bJR, in.rs, true
			case isa.FnJALR:
				op.kind, op.rs, op.rd, terminal = bJALR, in.rs, in.rd, true
			case isa.FnSYSCALL:
				op.kind, terminal = bSYSCALL, true
			case isa.FnBREAK:
				op.kind, terminal = bBREAK, true
			case isa.FnMUL:
				op.kind, op.rd, op.rs, op.rt = bMUL, in.rd, in.rs, in.rt
			case isa.FnDIV:
				op.kind, op.rd, op.rs, op.rt = bDIV, in.rd, in.rs, in.rt
			case isa.FnADD, isa.FnADDU:
				op.kind, op.rd, op.rs, op.rt = bADD, in.rd, in.rs, in.rt
			case isa.FnSUB, isa.FnSUBU:
				op.kind, op.rd, op.rs, op.rt = bSUB, in.rd, in.rs, in.rt
			case isa.FnAND:
				op.kind, op.rd, op.rs, op.rt = bAND, in.rd, in.rs, in.rt
			case isa.FnOR:
				op.kind, op.rd, op.rs, op.rt = bOR, in.rd, in.rs, in.rt
			case isa.FnXOR:
				op.kind, op.rd, op.rs, op.rt = bXOR, in.rd, in.rs, in.rt
			case isa.FnNOR:
				op.kind, op.rd, op.rs, op.rt = bNOR, in.rd, in.rs, in.rt
			case isa.FnSLT:
				op.kind, op.rd, op.rs, op.rt = bSLT, in.rd, in.rs, in.rt
			case isa.FnSLTU:
				op.kind, op.rd, op.rs, op.rt = bSLTU, in.rd, in.rs, in.rt
			default:
				op.kind, op.imm, terminal = bILLEGAL, w, true
			}
		case isa.OpJ:
			op.kind, op.imm, terminal = bJ, isa.Jump26Target(w, ipc), true
		case isa.OpJAL:
			op.kind, op.imm, terminal = bJAL, isa.Jump26Target(w, ipc), true
		case isa.OpBEQ:
			op.kind, op.rs, op.rt, op.imm, terminal = bBEQ, in.rs, in.rt, isa.BranchTarget(ipc, in.imm), true
		case isa.OpBNE:
			op.kind, op.rs, op.rt, op.imm, terminal = bBNE, in.rs, in.rt, isa.BranchTarget(ipc, in.imm), true
		case isa.OpBLEZ:
			op.kind, op.rs, op.imm, terminal = bBLEZ, in.rs, isa.BranchTarget(ipc, in.imm), true
		case isa.OpBGTZ:
			op.kind, op.rs, op.imm, terminal = bBGTZ, in.rs, isa.BranchTarget(ipc, in.imm), true
		case isa.OpADDI, isa.OpADDIU:
			op.kind, op.rt, op.rs, op.imm = bADDI, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpSLTI:
			op.kind, op.rt, op.rs, op.imm = bSLTI, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpSLTIU:
			op.kind, op.rt, op.rs, op.imm = bSLTIU, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpANDI:
			op.kind, op.rt, op.rs, op.imm = bANDI, in.rt, in.rs, uint32(in.imm)
		case isa.OpORI:
			op.kind, op.rt, op.rs, op.imm = bORI, in.rt, in.rs, uint32(in.imm)
		case isa.OpXORI:
			op.kind, op.rt, op.rs, op.imm = bXORI, in.rt, in.rs, uint32(in.imm)
		case isa.OpLUI:
			fop, fwords, fterm := c.fuseLUI(in, ipc, wi, word)
			if fwords > 1 {
				fop.pre = op.pre
				fop.n = op.pre + fwords
				op, terminal = fop, fterm
				wi += uint32(fwords)
				ninst += int(op.n)
				b.ops = append(b.ops, op)
				if terminal {
					return b, nil
				}
				continue
			}
			op.kind, op.rt, op.imm = bLUI, in.rt, uint32(in.imm)<<16
		case isa.OpLW:
			op.kind, op.rt, op.rs, op.imm = bLW, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpLB:
			op.kind, op.rt, op.rs, op.imm = bLB, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpLBU:
			op.kind, op.rt, op.rs, op.imm = bLBU, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpSW:
			op.kind, op.rt, op.rs, op.imm = bSW, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpSB:
			op.kind, op.rt, op.rs, op.imm = bSB, in.rt, in.rs, isa.SignExt(in.imm)
		case isa.OpHALT:
			op.kind, terminal = bHALT, true
		default:
			op.kind, op.imm, terminal = bILLEGAL, w, true
		}
		wi++
		ninst += int(op.n)
		b.ops = append(b.ops, op)
		if terminal {
			return b, nil
		}
	}
}

// runBlockEngine is RunBatch's block-translated executor: probe (or chain
// into) the block at PC, retire its ops, repeat until the budget is gone
// or an event/trap exits the batch. Step accounting stays in locals
// (retired is folded into c.Steps at every exit) and register indices are
// masked so the compiler drops the bounds checks from the hot loop.
func (c *CPU) runBlockEngine(max uint64) (Event, error) {
	left := max
	var retired uint64 // steps retired since the last fold into c.Steps
	regs := &c.Regs
	var edge **block // unlinked chain slot from the previous block's exit
outer:
	for {
		c.Steps += retired
		retired = 0
		c.sample(0)
		if left == 0 {
			c.FlushObsv()
			return EventStep, nil
		}
		b, err := c.blockAt(c.PC)
		if err != nil {
			ev, terr := c.trap(c.PC, err)
			c.FlushObsv()
			return ev, terr
		}
		if edge != nil {
			*edge = b
			edge = nil
		}
		for { // execute b, then follow its chain while valid
			var slot **block
			ops := b.ops
			for i := range ops {
				op := &ops[i]
				n := uint64(op.n)
				if n > left {
					// The remaining budget cannot retire this (possibly
					// fused) op atomically: finish the tail one
					// instruction at a time, starting at the op's first
					// absorbed nop.
					c.Steps += retired
					c.PC = op.pc - uint32(op.pre)*4
					return c.runBatchSlow(left)
				}
				retired += n
				left -= n
				switch op.kind {
				case bSLL:
					bset(regs, op.rd, regs[op.rt&31]<<op.aux)
				case bSRL:
					bset(regs, op.rd, regs[op.rt&31]>>op.aux)
				case bSRA:
					bset(regs, op.rd, uint32(int32(regs[op.rt&31])>>op.aux))
				case bSLLV:
					bset(regs, op.rd, regs[op.rt&31]<<(regs[op.rs&31]&31))
				case bSRLV:
					bset(regs, op.rd, regs[op.rt&31]>>(regs[op.rs&31]&31))
				case bSRAV:
					bset(regs, op.rd, uint32(int32(regs[op.rt&31])>>(regs[op.rs&31]&31)))
				case bMUL:
					bset(regs, op.rd, regs[op.rs&31]*regs[op.rt&31])
				case bDIV:
					if regs[op.rt&31] == 0 {
						c.Steps += retired
						return c.blockTrap(op.pc, 1, ErrDivZero)
					}
					bset(regs, op.rd, uint32(int32(regs[op.rs&31])/int32(regs[op.rt&31])))
				case bADD:
					bset(regs, op.rd, regs[op.rs&31]+regs[op.rt&31])
				case bSUB:
					bset(regs, op.rd, regs[op.rs&31]-regs[op.rt&31])
				case bAND:
					bset(regs, op.rd, regs[op.rs&31]&regs[op.rt&31])
				case bOR:
					bset(regs, op.rd, regs[op.rs&31]|regs[op.rt&31])
				case bXOR:
					bset(regs, op.rd, regs[op.rs&31]^regs[op.rt&31])
				case bNOR:
					bset(regs, op.rd, ^(regs[op.rs&31] | regs[op.rt&31]))
				case bSLT:
					if int32(regs[op.rs&31]) < int32(regs[op.rt&31]) {
						bset(regs, op.rd, 1)
					} else {
						bset(regs, op.rd, 0)
					}
				case bSLTU:
					if regs[op.rs&31] < regs[op.rt&31] {
						bset(regs, op.rd, 1)
					} else {
						bset(regs, op.rd, 0)
					}
				case bADDI:
					bset(regs, op.rt, regs[op.rs&31]+op.imm)
				case bSLTI:
					if int32(regs[op.rs&31]) < int32(op.imm) {
						bset(regs, op.rt, 1)
					} else {
						bset(regs, op.rt, 0)
					}
				case bSLTIU:
					if regs[op.rs&31] < op.imm {
						bset(regs, op.rt, 1)
					} else {
						bset(regs, op.rt, 0)
					}
				case bANDI:
					bset(regs, op.rt, regs[op.rs&31]&op.imm)
				case bORI:
					bset(regs, op.rt, regs[op.rs&31]|op.imm)
				case bXORI:
					bset(regs, op.rt, regs[op.rs&31]^op.imm)
				case bLUI:
					bset(regs, op.rt, op.imm)
				case bFuseLUIORI:
					bset(regs, op.rs, op.aux)
					bset(regs, op.rd, op.imm)
					c.stats.FusedOps++
				case bFuseLUILW:
					v, err := c.loadWord(op.imm)
					if err != nil {
						bset(regs, op.rs, op.aux) // the LUI half retired
						c.Steps += retired
						return c.blockTrap(op.pc+4, 1, err)
					}
					bset(regs, op.rs, op.aux)
					bset(regs, op.rd, v)
					c.stats.FusedOps++
				case bFuseLUISW:
					v := regs[op.rt&31]
					if op.rt == op.rs {
						v = op.aux // sw stores the register the lui just wrote
					}
					if err := c.storeWord(op.imm, v); err != nil {
						bset(regs, op.rs, op.aux)
						c.Steps += retired
						return c.blockTrap(op.pc+4, 1, err)
					}
					bset(regs, op.rs, op.aux)
					c.stats.FusedOps++
					if b.fver != b.frame.Version() {
						c.PC = op.pc + 8
						continue outer // stored into own page: predecode ahead is stale
					}
				case bLW:
					v, err := c.loadWord(regs[op.rs&31] + op.imm)
					if err != nil {
						c.Steps += retired
						return c.blockTrap(op.pc, 1, err)
					}
					bset(regs, op.rt, v)
				case bLB:
					bv, err := c.loadByte(regs[op.rs&31] + op.imm)
					if err != nil {
						c.Steps += retired
						return c.blockTrap(op.pc, 1, err)
					}
					bset(regs, op.rt, uint32(int32(int8(bv))))
				case bLBU:
					bv, err := c.loadByte(regs[op.rs&31] + op.imm)
					if err != nil {
						c.Steps += retired
						return c.blockTrap(op.pc, 1, err)
					}
					bset(regs, op.rt, uint32(bv))
				case bSW:
					if err := c.storeWord(regs[op.rs&31]+op.imm, regs[op.rt&31]); err != nil {
						c.Steps += retired
						return c.blockTrap(op.pc, 1, err)
					}
					if b.fver != b.frame.Version() {
						c.PC = op.pc + 4
						continue outer
					}
				case bSB:
					if err := c.storeByte(regs[op.rs&31]+op.imm, byte(regs[op.rt&31])); err != nil {
						c.Steps += retired
						return c.blockTrap(op.pc, 1, err)
					}
					if b.fver != b.frame.Version() {
						c.PC = op.pc + 4
						continue outer
					}
				case bJ:
					c.PC = op.imm
					slot = &b.taken
				case bJAL:
					bset(regs, isa.RegRA, op.pc+4)
					c.PC = op.imm
					slot = &b.taken
				case bBEQ:
					if regs[op.rs&31] == regs[op.rt&31] {
						c.PC, slot = op.imm, &b.taken
					} else {
						c.PC, slot = op.pc+4, &b.fall
					}
				case bBNE:
					if regs[op.rs&31] != regs[op.rt&31] {
						c.PC, slot = op.imm, &b.taken
					} else {
						c.PC, slot = op.pc+4, &b.fall
					}
				case bBLEZ:
					if int32(regs[op.rs&31]) <= 0 {
						c.PC, slot = op.imm, &b.taken
					} else {
						c.PC, slot = op.pc+4, &b.fall
					}
				case bBGTZ:
					if int32(regs[op.rs&31]) > 0 {
						c.PC, slot = op.imm, &b.taken
					} else {
						c.PC, slot = op.pc+4, &b.fall
					}
				case bJR:
					c.PC = regs[op.rs&31]
				case bJALR:
					ret := op.pc + 4
					c.PC = regs[op.rs&31]
					bset(regs, op.rd, ret)
				case bFuseTramp:
					bset(regs, op.rs, op.aux)
					bset(regs, op.rd, op.imm)
					c.PC = op.imm
					c.stats.FusedOps++
					slot = &b.taken
				case bFuseTrampCall:
					bset(regs, op.rs, op.aux)
					bset(regs, op.rd, op.imm)
					bset(regs, op.rt, op.pc+12)
					c.PC = op.imm
					c.stats.FusedOps++
					slot = &b.taken
				case bSYSCALL:
					c.Steps += retired
					c.PC = op.pc + 4
					c.FlushObsv()
					return EventSyscall, nil
				case bBREAK:
					c.Steps += retired
					c.PC = op.pc + 4
					c.FlushObsv()
					return EventBreak, nil
				case bHALT:
					c.Steps += retired
					c.PC = op.pc
					c.FlushObsv()
					return EventHalt, nil
				case bILLEGAL:
					c.Steps += retired
					return c.blockTrap(op.pc, 1, illegalErr(op.imm))
				case bFALL:
					c.PC = op.imm
					slot = &b.fall
				}
			}
			if slot == nil {
				continue outer // dynamic target: re-enter through the probe
			}
			nb := *slot
			if nb == nil || !nb.valid(c.AS.Gen()) {
				edge = slot
				continue outer // probe/build, then link this edge
			}
			c.stats.BlockHits++
			b = nb
			c.sample(retired)
		}
	}
}

// bset writes a register, dropping writes to $zero. The explicit mask lets
// the compiler elide the bounds check (op register fields are uint8).
func bset(regs *[32]uint32, r uint8, v uint32) {
	if r != 0 {
		regs[r&31] = v
	}
}

// blockTrap exits block execution with a trap at pc. unwind is the number
// of instructions charged on op entry that did not actually retire (the
// trapping instruction itself; its absorbed nops and any fused prefix
// did retire).
func (c *CPU) blockTrap(pc uint32, unwind uint64, err error) (Event, error) {
	c.Steps -= unwind
	c.PC = pc
	ev, terr := c.trap(pc, err)
	c.FlushObsv()
	return ev, terr
}
