package vm

// The reference interpreter: the cache-free twin the differential-testing
// harness (internal/harness) races against the TLB + icache fast path.
// ReferenceStep shares the exec switch with Step — the point of the
// comparison is the translation and predecode caching added in PR 3, not
// the ALU — but every fetch, load and store goes through the canonical
// addrspace paths, so no cached state can leak into the oracle run.

import (
	"fmt"
	"hash/fnv"
	"strings"

	"hemlock/internal/addrspace"
	"hemlock/internal/mem"
)

// ReferenceStep fetches, decodes and executes one instruction with every
// memory access routed through the address space directly: no TLB probe,
// no predecoded icache, no generation or frame-version shortcuts. Trap
// semantics are identical to Step (PC and registers untouched on a trap).
// Mixing ReferenceStep and Step on one CPU is safe: the caches simply see
// no traffic while the reference path runs.
func (c *CPU) ReferenceStep() (Event, error) {
	c.uncached = true
	ev, err := c.Step()
	c.uncached = false
	return ev, err
}

// StateHash digests the CPU's architectural state — registers, PC, and
// every mapped page's address, protection and content — into one 64-bit
// FNV-1a value. Two runs of the same program diverge iff their hashes do,
// so the harness compares one word per run instead of whole memory images.
func StateHash(c *CPU) uint64 {
	h := fnv.New64a()
	var w [4]byte
	put := func(v uint32) {
		w[0], w[1], w[2], w[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		h.Write(w[:])
	}
	put(c.PC)
	for _, r := range c.Regs {
		put(r)
	}
	c.AS.VisitPages(func(vpn uint32, prot addrspace.Prot, data *[mem.PageSize]byte) {
		put(vpn)
		put(uint32(prot))
		h.Write(data[:])
	})
	return h.Sum64()
}

// DumpState renders the architectural state for failure reports: PC, the
// non-zero registers, and a per-page FNV digest of memory. Diffing two
// dumps localises a divergence to a register or a page without drowning
// the test log in hexdumps.
func DumpState(c *CPU) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pc=0x%08x steps=%d traps=%d\n", c.PC, c.Steps, c.Traps)
	for i, r := range c.Regs {
		if r != 0 {
			fmt.Fprintf(&sb, "  r%-2d = 0x%08x\n", i, r)
		}
	}
	c.AS.VisitPages(func(vpn uint32, prot addrspace.Prot, data *[mem.PageSize]byte) {
		h := fnv.New64a()
		h.Write(data[:])
		fmt.Fprintf(&sb, "  page 0x%08x %s fnv=%016x\n", vpn<<mem.PageShift, prot, h.Sum64())
	})
	return sb.String()
}
