// Package server is the hemlock serve daemon: an HTTP/JSON front end over
// one persistent world (kernel, shared file system, dynamic-linker state).
// Programs are launched once and stay resident ("parked"); clients then
// call their exported public functions — through the very PLT/trampoline
// path a compiled call takes — and read or write shared variables by name.
//
// World mutations (launch, link, variable access) serialize onto a single
// world-owner goroutine through a command channel, which keeps the
// daemon's observable op order deterministic. Each request carries a
// deadline: expired commands are failed at dequeue without touching the
// kernel, and submitters stop waiting when their deadline passes even if
// the command is still queued (the buffered reply channel keeps the owner
// from blocking). Guest execution, however, is no longer the owner's job:
// the daemon attaches a kern.Scheduler (HEMLOCK_CPUS host goroutines,
// work-stealing run queues — see docs/SMP.md) and run-to-completion
// launches are submitted to it, so the world owner is a scheduler client
// like any other and guest CPUs burn on their own cores.
//
// Every request is measured into the world's own obsv registry
// ("server.*" counters and per-op latency histograms), which /metrics
// exposes — the request-level scoreboard the perf work tracks.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"hemlock/internal/core"
	"hemlock/internal/kern"
	"hemlock/internal/lds"
	"hemlock/internal/netshm"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
)

// Errors surfaced to clients (also carried as HTTP status codes).
var (
	ErrTimeout    = errors.New("server: request deadline exceeded")
	ErrClosed     = errors.New("server: daemon is shutting down")
	ErrNoProgram  = errors.New("server: no such program")
	ErrNoFunction = errors.New("server: no such function")
)

// Config tunes the daemon. The zero value selects the defaults.
type Config struct {
	DefaultTimeout time.Duration // per-request deadline (default 5s)
	MaxSteps       uint64        // CPU step budget per launch/call (default 4M)
	ShutdownGrace  time.Duration // drain window for in-flight requests (default 10s)
	CPUs           int           // scheduler CPUs (default HEMLOCK_CPUS / host cores)
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 4_000_000
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.CPUs == 0 {
		c.CPUs = kern.DefaultCPUs()
	}
	return c
}

// op is one command bound for the world-owner goroutine.
type op struct {
	name     string
	deadline time.Time
	fn       func() error
	done     chan error // buffered: the owner never blocks on a gone submitter
}

// Server owns one world and serves it over HTTP.
type Server struct {
	sys *core.System
	cfg Config
	sch *kern.Scheduler // guest CPUs; launches run here, not on the world owner

	ops      chan *op
	quit     chan struct{} // closed by Close: world loop exits
	loopDone chan struct{} // closed when the world loop has exited

	mu       sync.Mutex
	programs map[string]*core.Program
	nextID   int
	closed   bool
	shm      *netshm.Node // /api/txn backend; nil without SetShm

	ctrReqs   *obsv.Counter
	ctrErrs   *obsv.Counter
	ctrExp    *obsv.Counter
	gPrograms *obsv.Gauge
}

// New wraps sys in a daemon and starts its world-owner goroutine. The
// caller must Close the server (Run does it on the way out).
func New(sys *core.System, cfg Config) *Server {
	s := &Server{
		sys:      sys,
		cfg:      cfg.withDefaults(),
		ops:      make(chan *op, 64),
		quit:     make(chan struct{}),
		loopDone: make(chan struct{}),
		programs: map[string]*core.Program{},
	}
	r := sys.Obs().Registry()
	s.ctrReqs = r.Counter("server.requests")
	s.ctrErrs = r.Counter("server.errors")
	s.ctrExp = r.Counter("server.deadline_expired")
	s.gPrograms = r.Gauge("server.programs")
	s.sch = kern.NewScheduler(sys.K, kern.SchedConfig{CPUs: s.cfg.CPUs})
	sys.K.AttachScheduler(s.sch)
	go s.worldLoop()
	return s
}

// Scheduler exposes the daemon's guest-CPU scheduler (tests size their
// expectations by its CPUs).
func (s *Server) Scheduler() *kern.Scheduler { return s.sch }

// Sys returns the served world (tests reach through it at quiesce).
func (s *Server) Sys() *core.System { return s.sys }

// worldLoop is the world-owner goroutine: the only code that touches the
// kernel after New returns.
func (s *Server) worldLoop() {
	defer close(s.loopDone)
	hist := map[string]*obsv.Histogram{}
	for {
		select {
		case o := <-s.ops:
			if !o.deadline.IsZero() && time.Now().After(o.deadline) {
				s.ctrExp.Inc()
				o.done <- fmt.Errorf("%w (%s expired in queue)", ErrTimeout, o.name)
				continue
			}
			h, ok := hist[o.name]
			if !ok {
				h = s.sys.Obs().Registry().Histogram("server." + o.name + "_ns")
				hist[o.name] = h
			}
			start := time.Now()
			err := o.fn()
			h.Observe(uint64(time.Since(start)))
			o.done <- err
		case <-s.quit:
			return
		}
	}
}

// do runs fn on the world-owner goroutine and waits for it, bounded by the
// request deadline.
func (s *Server) do(name string, timeout time.Duration, fn func() error) error {
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	select {
	case <-s.quit: // the world loop is gone; queued ops would never run
		return ErrClosed
	default:
	}
	deadline := time.Now().Add(timeout)
	o := &op{name: name, deadline: deadline, fn: fn, done: make(chan error, 1)}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case s.ops <- o:
	case <-s.quit:
		return ErrClosed
	case <-t.C:
		return fmt.Errorf("%w (%s queue full)", ErrTimeout, name)
	}
	select {
	case err := <-o.done:
		return err
	case <-s.quit:
		return ErrClosed
	case <-t.C:
		return fmt.Errorf("%w (%s)", ErrTimeout, name)
	}
}

// Close stops the world loop and flushes the trace sinks. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	<-s.loopDone
	s.sys.K.DetachScheduler()
	s.sch.Stop()
	return s.sys.Obs().Tracer().Close()
}

// Run serves the HTTP API on ln until a signal arrives on sigs (or Close
// is called), then shuts down gracefully: stop accepting, drain in-flight
// requests for up to ShutdownGrace, flush sinks, return nil. Pass a
// signal.Notify channel for real daemons, or a fake for tests.
func (s *Server) Run(ln net.Listener, sigs <-chan os.Signal) error {
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	var err error
	select {
	case <-sigs:
	case <-s.quit:
	case err = <-serveErr:
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		s.Close()
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if serr := hs.Shutdown(ctx); serr != nil && err == nil {
		err = serr
	}
	<-serveErr // Serve has returned ErrServerClosed by now
	if cerr := s.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// ---- request/response bodies -------------------------------------------------

// ModuleSpec names one module and its sharing class for a link.
type ModuleSpec struct {
	Name  string `json:"name"`
	Class string `json:"class"`
}

// LaunchRequest launches a program into the world, either from a linked
// HEMX executable (Exe) or by linking Modules now.
type LaunchRequest struct {
	Name       string            `json:"name,omitempty"` // program handle (default "p<N>")
	Exe        string            `json:"exe,omitempty"`
	Modules    []ModuleSpec      `json:"modules,omitempty"`
	Path       []string          `json:"path,omitempty"` // library search directories
	JumpTables bool              `json:"jump_tables,omitempty"`
	Env        map[string]string `json:"env,omitempty"`
	UID        int               `json:"uid,omitempty"`
	Run        bool              `json:"run,omitempty"` // drive main to completion
	MaxSteps   uint64            `json:"max_steps,omitempty"`
}

// LaunchResponse reports the launched (and possibly completed) program.
type LaunchResponse struct {
	Program  string `json:"program"`
	PID      int    `json:"pid"`
	Exited   bool   `json:"exited"`
	ExitCode int    `json:"exit_code"`
	Output   string `json:"output,omitempty"`
}

// CallRequest invokes an exported function on a resident program.
type CallRequest struct {
	Program  string   `json:"program"`
	Fn       string   `json:"fn"`
	Args     []uint32 `json:"args,omitempty"` // up to 4, $a0..$a3
	MaxSteps uint64   `json:"max_steps,omitempty"`
}

// CallResponse carries the function's $v0 and the steps it retired.
type CallResponse struct {
	Ret   uint32 `json:"ret"`
	Steps uint64 `json:"steps"`
}

// VarResponse reports one word of a named program object.
type VarResponse struct {
	Program string `json:"program"`
	Name    string `json:"name"`
	Addr    uint32 `json:"addr"`
	Off     uint32 `json:"off"`
	Value   uint32 `json:"value"`
}

// VarWriteRequest stores one word into a named program object.
type VarWriteRequest struct {
	Program string `json:"program"`
	Name    string `json:"name"`
	Off     uint32 `json:"off"`
	Value   uint32 `json:"value"`
}

// InfoResponse summarises the world. Zygotes lists the parked launch
// templates (content-hash key, hidden template PID, resident pages, and
// how many launches each has served by CoW clone).
type InfoResponse struct {
	Programs []string          `json:"programs"`
	FS       shmfs.Usage       `json:"fs"`
	Zygotes  []kern.ZygoteInfo `json:"zygotes,omitempty"`
}

type errResponse struct {
	Error string `json:"error"`
}

func parseClass(s string) (objfile.Class, error) {
	switch s {
	case "static_private", "static-private", "":
		return objfile.StaticPrivate, nil
	case "dynamic_private", "dynamic-private":
		return objfile.DynamicPrivate, nil
	case "static_public", "static-public":
		return objfile.StaticPublic, nil
	case "dynamic_public", "dynamic-public":
		return objfile.DynamicPublic, nil
	}
	return 0, fmt.Errorf("server: unknown sharing class %q", s)
}

// ---- operations (world-owner side) -------------------------------------------

// Launch performs a LaunchRequest with the given deadline. It is the
// programmatic twin of POST /api/launch.
func (s *Server) Launch(req *LaunchRequest, timeout time.Duration) (*LaunchResponse, error) {
	var resp *LaunchResponse
	err := s.do("launch", timeout, func() error {
		var im *objfile.Image
		switch {
		case req.Exe != "":
			var err error
			im, err = s.sys.LoadExecutable(req.Exe)
			if err != nil {
				return err
			}
		case len(req.Modules) > 0:
			opts := &lds.Options{Output: req.Name, UID: req.UID,
				CmdPath: req.Path, JumpTables: req.JumpTables}
			for _, m := range req.Modules {
				cl, err := parseClass(m.Class)
				if err != nil {
					return err
				}
				opts.Modules = append(opts.Modules, lds.Input{Name: m.Name, Class: cl})
			}
			res, err := s.sys.Link(opts)
			if err != nil {
				return err
			}
			im = res.Image
		default:
			return errors.New("server: launch needs exe or modules")
		}
		pg, err := s.sys.Launch(im, req.UID, req.Env)
		if err != nil {
			return err
		}
		if req.Run {
			steps := req.MaxSteps
			if steps == 0 {
				steps = s.cfg.MaxSteps
			}
			// Run on a scheduler CPU, not the world owner: the owner
			// submits and waits like any other scheduler client.
			if _, err := s.sch.Run(pg.P, steps); err != nil {
				return err
			}
		}
		name := req.Name
		s.mu.Lock()
		if name == "" {
			s.nextID++
			name = "p" + strconv.Itoa(s.nextID)
		}
		if _, dup := s.programs[name]; dup {
			s.mu.Unlock()
			return fmt.Errorf("server: program %q already exists", name)
		}
		s.programs[name] = pg
		s.gPrograms.Set(int64(len(s.programs)))
		s.mu.Unlock()
		resp = &LaunchResponse{Program: name, PID: pg.P.PID,
			Exited: pg.P.Exited, ExitCode: pg.P.ExitCode, Output: pg.Output()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (s *Server) program(name string) (*core.Program, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.programs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoProgram, name)
	}
	return pg, nil
}

// Call invokes an exported function on a resident program: the
// programmatic twin of POST /api/call. The function address is resolved
// the way the running program would resolve it — image symbols and loaded
// modules first, then the image's jump-table stubs, so the first call of a
// lazily-linked function traps to ldl and patches the stub exactly as a
// compiled call would.
func (s *Server) Call(req *CallRequest, timeout time.Duration) (*CallResponse, error) {
	pg, err := s.program(req.Program)
	if err != nil {
		return nil, err
	}
	if len(req.Args) > 4 {
		return nil, fmt.Errorf("server: %d args (max 4: $a0-$a3)", len(req.Args))
	}
	var resp *CallResponse
	err = s.do("call", timeout, func() error {
		target, ok := s.resolveFn(pg, req.Fn)
		if !ok {
			return fmt.Errorf("%w: %q in %q", ErrNoFunction, req.Fn, req.Program)
		}
		var args [4]uint32
		copy(args[:], req.Args)
		steps := req.MaxSteps
		if steps == 0 {
			steps = s.cfg.MaxSteps
		}
		ret, n, err := s.sys.K.CallFunction(pg.P, target, args, steps)
		if err != nil {
			return err
		}
		resp = &CallResponse{Ret: ret, Steps: n}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// resolveFn finds the call target for name: a resolved symbol if the
// program can see one, else the image's PLT stub (whose first call traps
// and links the module the symbol lives in).
func (s *Server) resolveFn(pg *core.Program, name string) (uint32, bool) {
	if addr, ok := pg.LDL.Resolve(name); ok {
		return addr, true
	}
	for _, st := range pg.LDL.Image.PLT {
		if st.Name == name {
			return st.Addr, true
		}
	}
	return 0, false
}

// ReadVar loads one word of a named object: GET /api/var.
func (s *Server) ReadVar(program, name string, off uint32, timeout time.Duration) (*VarResponse, error) {
	pg, err := s.program(program)
	if err != nil {
		return nil, err
	}
	var resp *VarResponse
	err = s.do("var_read", timeout, func() error {
		v, err := pg.Var(name)
		if err != nil {
			return err
		}
		val, err := v.LoadAt(off)
		if err != nil {
			return err
		}
		resp = &VarResponse{Program: program, Name: name, Addr: v.Addr, Off: off, Value: val}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// WriteVar stores one word into a named object: POST /api/var.
func (s *Server) WriteVar(req *VarWriteRequest, timeout time.Duration) (*VarResponse, error) {
	pg, err := s.program(req.Program)
	if err != nil {
		return nil, err
	}
	var resp *VarResponse
	err = s.do("var_write", timeout, func() error {
		v, err := pg.Var(req.Name)
		if err != nil {
			return err
		}
		if err := v.StoreAt(req.Off, req.Value); err != nil {
			return err
		}
		resp = &VarResponse{Program: req.Program, Name: req.Name, Addr: v.Addr,
			Off: req.Off, Value: req.Value}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Info summarises the world: GET /api/info.
func (s *Server) Info(timeout time.Duration) (*InfoResponse, error) {
	s.mu.Lock()
	names := make([]string, 0, len(s.programs))
	for n := range s.programs {
		names = append(names, n)
	}
	s.mu.Unlock()
	sort.Strings(names)
	var usage shmfs.Usage
	var zygotes []kern.ZygoteInfo
	if err := s.do("info", timeout, func() error {
		usage = s.sys.FS.Usage()
		zygotes = s.sys.K.Zygotes()
		return nil
	}); err != nil {
		return nil, err
	}
	return &InfoResponse{Programs: names, FS: usage, Zygotes: zygotes}, nil
}

// ---- HTTP plumbing -----------------------------------------------------------

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/launch", s.handleLaunch)
	mux.HandleFunc("/api/call", s.handleCall)
	mux.HandleFunc("/api/var", s.handleVar)
	mux.HandleFunc("/api/info", s.handleInfo)
	mux.HandleFunc("/api/txn", s.handleTxn)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// timeoutOf reads the per-request deadline override (?timeout_ms=).
func (s *Server) timeoutOf(r *http.Request) time.Duration {
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		if n, err := strconv.Atoi(ms); err == nil && n > 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	return s.cfg.DefaultTimeout
}

func (s *Server) reply(w http.ResponseWriter, v any, err error) {
	s.ctrReqs.Inc()
	if err != nil {
		s.ctrErrs.Inc()
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrTimeout):
			code = http.StatusGatewayTimeout
		case errors.Is(err, ErrClosed):
			code = http.StatusServiceUnavailable
		case errors.Is(err, ErrNoProgram), errors.Is(err, ErrNoFunction),
			errors.Is(err, shmfs.ErrNotExist):
			code = http.StatusNotFound
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(errResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decode[T any](r *http.Request) (*T, error) {
	var v T
	if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
		return nil, fmt.Errorf("server: bad request body: %w", err)
	}
	return &v, nil
}

func (s *Server) handleLaunch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := decode[LaunchRequest](r)
	if err != nil {
		s.reply(w, nil, err)
		return
	}
	resp, err := s.Launch(req, s.timeoutOf(r))
	s.reply(w, resp, err)
}

func (s *Server) handleCall(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	req, err := decode[CallRequest](r)
	if err != nil {
		s.reply(w, nil, err)
		return
	}
	resp, err := s.Call(req, s.timeoutOf(r))
	s.reply(w, resp, err)
}

func (s *Server) handleVar(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		var off uint64
		if o := q.Get("off"); o != "" {
			var err error
			if off, err = strconv.ParseUint(o, 0, 32); err != nil {
				s.reply(w, nil, fmt.Errorf("server: bad off: %w", err))
				return
			}
		}
		resp, err := s.ReadVar(q.Get("program"), q.Get("name"), uint32(off), s.timeoutOf(r))
		s.reply(w, resp, err)
	case http.MethodPost:
		req, err := decode[VarWriteRequest](r)
		if err != nil {
			s.reply(w, nil, err)
			return
		}
		resp, err := s.WriteVar(req, s.timeoutOf(r))
		s.reply(w, resp, err)
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Info(s.timeoutOf(r))
	s.reply(w, resp, err)
}

// handleMetrics dumps the world's obsv registry: JSON by default, the
// sorted text rendering with ?format=text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.ctrReqs.Inc()
	snap := s.sys.Obs().Registry().Snapshot()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, snap.Text())
		return
	}
	b, err := snap.JSON()
	if err != nil {
		s.reply(w, nil, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.quit:
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
	default:
		w.Write([]byte("ok\n"))
	}
}
