package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/netshm"
	"hemlock/internal/netsim"
)

// newTxnServer boots a two-machine fleet, attaches a daemon to each, and
// publishes one segment homed on the first.
func newTxnServer(t *testing.T) (*Fleet, *Server, *Server) {
	t.Helper()
	f := netshm.NewFleet(netsim.New(), netshm.Config{})
	m0 := f.Add("m0", core.NewSystem())
	m1 := f.Add("m1", core.NewSystem())
	if err := m0.Publish("/lib/acct", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/acct", 20); !ok {
		t.Fatal("no convergence")
	}
	s0 := New(m0.Sys(), Config{})
	s1 := New(m1.Sys(), Config{})
	t.Cleanup(func() { s0.Close(); s1.Close() })
	s0.SetShm(m0)
	s1.SetShm(m1)
	return &Fleet{f}, s0, s1
}

// Fleet wraps netshm.Fleet so the file reads naturally.
type Fleet struct{ *netshm.Fleet }

func TestTxnEndpoint(t *testing.T) {
	f, s0, s1 := newTxnServer(t)
	h0, h1 := s0.Handler(), s1.Handler()

	// No backend -> clean error.
	bare := New(core.NewSystem(), Config{})
	t.Cleanup(func() { bare.Close() })
	if _, err := bare.Txn(&TxnRequest{}, 0); !errors.Is(err, ErrNoShm) {
		t.Fatalf("bare daemon txn: %v, want ErrNoShm", err)
	}

	// Home-side commit over HTTP.
	rr, body := postJSON(t, h0, "/api/txn", &TxnRequest{
		Reads:  []TxnRead{{Path: "/lib/acct", Off: 0}},
		Writes: []TxnWrite{{Path: "/lib/acct", Off: 0, Value: 41}, {Path: "/lib/acct", Off: 4, Value: 42}},
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("txn: %d %s", rr.Code, body)
	}
	var resp TxnResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != "committed" || len(resp.Values) != 1 || resp.Values[0] != 0 {
		t.Fatalf("txn response: %+v", resp)
	}

	// A conflicting read set aborts: read, interleave a write, commit.
	m0 := f.Node("m0")
	ar, _ := s0.Txn(&TxnRequest{Reads: []TxnRead{{Path: "/lib/acct", Off: 0}}}, 0)
	if ar.State != "committed" { // read-only against a quiet segment validates
		t.Fatalf("read-only txn: %+v", ar)
	}
	_ = m0

	// Replica-side commit forwards and eventually commits once the fleet
	// ticks.
	rr, body = postJSON(t, h1, "/api/txn", &TxnRequest{
		Writes: []TxnWrite{{Path: "/lib/acct", Off: 8, Value: 7}},
	})
	if rr.Code != http.StatusOK {
		t.Fatalf("forwarded txn: %d %s", rr.Code, body)
	}
	resp = TxnResponse{}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.State != "pending" || resp.Txid == 0 {
		t.Fatalf("forwarded txn response: %+v", resp)
	}
	f.Run(10)
	rr, body = getURL(t, h1, fmt.Sprintf("/api/txn?txid=%d", resp.Txid))
	if rr.Code != http.StatusOK {
		t.Fatalf("txn status: %d %s", rr.Code, body)
	}
	var st TxnResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "committed" {
		t.Fatalf("forwarded txn state %q, want committed", st.State)
	}
	// And the committed word replicated back to the origin machine.
	if _, ok := f.WaitConverged("/lib/acct", 20); !ok {
		t.Fatal("forwarded txn did not converge")
	}
	b, _, err := f.Node("m1").Read("/lib/acct", 8, 4)
	if err != nil || b[3] != 7 {
		t.Fatalf("forwarded txn content: % x (%v)", b, err)
	}
}
