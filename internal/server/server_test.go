package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"

	"hemlock/internal/core"
	"hemlock/internal/vm"
)

// newDemoServer boots a world with the demo kv program installed and
// launches the resident agent parked (main never runs; clients drive it
// entirely through calls), returning the server plus the agent's handle.
func newDemoServer(t *testing.T) (*Server, string) {
	t.Helper()
	sys := core.NewSystem()
	if _, err := InstallDemo(sys); err != nil {
		t.Fatal(err)
	}
	s := New(sys, Config{})
	t.Cleanup(func() { s.Close() })
	resp, err := s.Launch(&LaunchRequest{Name: "agent", Exe: DemoExe}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Exited {
		t.Fatalf("parked agent exited: %+v", resp)
	}
	return s, resp.Program
}

func postJSON(t *testing.T, h http.Handler, url string, body any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func getURL(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr, rr.Body.Bytes()
}

func TestServeEndpoints(t *testing.T) {
	s, agent := newDemoServer(t)
	h := s.Handler()

	// Call: kv_put stores into the shared table and returns the old value.
	rr, body := postJSON(t, h, "/api/call", CallRequest{Program: agent, Fn: "kv_put", Args: []uint32{7, 1234}})
	if rr.Code != http.StatusOK {
		t.Fatalf("call kv_put: %d %s", rr.Code, body)
	}
	var call CallResponse
	if err := json.Unmarshal(body, &call); err != nil {
		t.Fatal(err)
	}
	if call.Ret != 0 {
		t.Fatalf("kv_put old value = %d, want 0", call.Ret)
	}

	// Call: kv_get reads it back.
	rr, body = postJSON(t, h, "/api/call", CallRequest{Program: agent, Fn: "kv_get", Args: []uint32{7}})
	if rr.Code != http.StatusOK {
		t.Fatalf("call kv_get: %d %s", rr.Code, body)
	}
	if err := json.Unmarshal(body, &call); err != nil {
		t.Fatal(err)
	}
	if call.Ret != 1234 {
		t.Fatalf("kv_get(7) = %d, want 1234", call.Ret)
	}

	// Var read: kv_hits counts the kv_put (the agent's main never ran).
	rr, body = getURL(t, h, "/api/var?program="+agent+"&name=kv_hits")
	if rr.Code != http.StatusOK {
		t.Fatalf("var read: %d %s", rr.Code, body)
	}
	var vr VarResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Value != 1 {
		t.Fatalf("kv_hits = %d, want 1", vr.Value)
	}

	// Var write: store straight into the shared table, read back via call.
	rr, body = postJSON(t, h, "/api/var", VarWriteRequest{Program: agent, Name: "kv_table", Off: 9 * 4, Value: 777})
	if rr.Code != http.StatusOK {
		t.Fatalf("var write: %d %s", rr.Code, body)
	}
	rr, body = postJSON(t, h, "/api/call", CallRequest{Program: agent, Fn: "kv_get", Args: []uint32{9}})
	if err := json.Unmarshal(body, &call); err != nil {
		t.Fatalf("kv_get(9): %d %s", rr.Code, body)
	}
	if call.Ret != 777 {
		t.Fatalf("kv_get(9) = %d, want 777", call.Ret)
	}

	// Launch a second program over HTTP; its main bumps kv_hits too.
	rr, body = postJSON(t, h, "/api/launch", LaunchRequest{Exe: DemoExe, Run: true})
	if rr.Code != http.StatusOK {
		t.Fatalf("launch: %d %s", rr.Code, body)
	}
	var lr LaunchResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Program == "" || !lr.Exited || lr.ExitCode != 0 {
		t.Fatalf("launch response: %+v", lr)
	}

	// Info lists both programs and reports file-system usage.
	rr, body = getURL(t, h, "/api/info")
	if rr.Code != http.StatusOK {
		t.Fatalf("info: %d %s", rr.Code, body)
	}
	var info InfoResponse
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Programs) != 2 || info.FS.Files == 0 {
		t.Fatalf("info: %+v", info)
	}
	// Stable linking is on by default: both HTTP launches of DemoExe share
	// one parked zygote template, and the second launch was a CoW clone.
	if len(info.Zygotes) == 0 {
		t.Fatalf("info reports no zygote templates: %+v", info)
	}
	var clones uint64
	for _, z := range info.Zygotes {
		if z.Key == "" || z.Pages == 0 {
			t.Fatalf("malformed zygote entry: %+v", z)
		}
		clones += z.Clones
	}
	if clones == 0 {
		t.Fatalf("repeat launch of %s did not clone a zygote: %+v", DemoExe, info.Zygotes)
	}

	// Metrics carries the server counters and per-op histograms.
	rr, body = getURL(t, h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rr.Code)
	}
	var snap struct {
		Counters   map[string]uint64          `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.requests"] == 0 {
		t.Fatalf("no server.requests counter in metrics: %s", body)
	}
	if _, ok := snap.Histograms["server.call_ns"]; !ok {
		t.Fatalf("no server.call_ns histogram in metrics")
	}
	if rr, body = getURL(t, h, "/metrics?format=text"); rr.Code != http.StatusOK || !bytes.Contains(body, []byte("server.requests")) {
		t.Fatalf("text metrics: %d %s", rr.Code, body)
	}

	// Healthz.
	if rr, _ = getURL(t, h, "/healthz"); rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rr.Code)
	}

	// Errors map to 404: unknown program, unknown function.
	if rr, _ = postJSON(t, h, "/api/call", CallRequest{Program: "nope", Fn: "kv_get"}); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown program: %d", rr.Code)
	}
	if rr, _ = postJSON(t, h, "/api/call", CallRequest{Program: agent, Fn: "nope"}); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown function: %d", rr.Code)
	}
}

// TestCallThroughPLTStub verifies the daemon reaches a never-called
// function through the image's jump-table stub: the first call traps to
// ldl, patches the stub, and still returns the right value.
func TestCallThroughPLTStub(t *testing.T) {
	sys := core.NewSystem()
	if _, err := InstallDemo(sys); err != nil {
		t.Fatal(err)
	}
	s := New(sys, Config{})
	t.Cleanup(func() { s.Close() })
	// Launch WITHOUT running main: the kv module is not linked in yet, so
	// kv_bump is reachable only through its PLT stub.
	if _, err := s.Launch(&LaunchRequest{Name: "agent", Exe: DemoExe}, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Call(&CallRequest{Program: "agent", Fn: "kv_bump"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Ret != 1 {
		t.Fatalf("kv_bump via stub = %d, want 1", resp.Ret)
	}
	// Second call goes through the patched trampoline.
	if resp, err = s.Call(&CallRequest{Program: "agent", Fn: "kv_bump"}, 0); err != nil || resp.Ret != 2 {
		t.Fatalf("kv_bump #2 = %+v, %v", resp, err)
	}
}

func TestRequestTimeout(t *testing.T) {
	s, _ := newDemoServer(t)
	// Occupy the world owner with a slow op, then watch a short-deadline
	// request fail without ever reaching the kernel.
	block := make(chan struct{})
	go s.do("slow", time.Second, func() error { <-block; return nil })
	time.Sleep(10 * time.Millisecond) // let the slow op start
	err := s.do("fast", 30*time.Millisecond, func() error { return nil })
	close(block)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestGracefulShutdown drives Run with a fake signal channel: in-flight
// requests drain, the daemon exits cleanly, and the world loop is stopped.
func TestGracefulShutdown(t *testing.T) {
	s, agent := newDemoServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ln, sigs) }()

	base := "http://" + ln.Addr().String()
	body, _ := json.Marshal(CallRequest{Program: agent, Fn: "kv_bump"})
	resp, err := http.Post(base+"/api/call", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("call over TCP: %d", resp.StatusCode)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run returned %v, want nil (exit 0)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after signal")
	}
	// The world loop is stopped: new work is refused.
	if err := s.do("late", 50*time.Millisecond, func() error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown op: %v, want ErrClosed", err)
	}
}

// workload is the deterministic op mix one worker performs; every
// operation commutes with every other worker's (distinct table slots,
// monotonic shared counters), so the quiesced world state is independent
// of request interleaving.
func workload(s *Server, agent string, worker, rounds int) error {
	for i := 0; i < rounds; i++ {
		if _, err := s.Launch(&LaunchRequest{Exe: DemoExe, Run: true}, 0); err != nil {
			return fmt.Errorf("worker %d launch: %w", worker, err)
		}
		slot := uint32(worker)
		val := uint32(worker*1000 + i)
		if _, err := s.Call(&CallRequest{Program: agent, Fn: "kv_put", Args: []uint32{slot, val}}, 0); err != nil {
			return fmt.Errorf("worker %d kv_put: %w", worker, err)
		}
		if _, err := s.Call(&CallRequest{Program: agent, Fn: "kv_get", Args: []uint32{slot}}, 0); err != nil {
			return fmt.Errorf("worker %d kv_get: %w", worker, err)
		}
		off := uint32(256+worker) * 4
		if _, err := s.WriteVar(&VarWriteRequest{Program: agent, Name: "kv_table", Off: off, Value: val}, 0); err != nil {
			return fmt.Errorf("worker %d var write: %w", worker, err)
		}
		if _, err := s.ReadVar(agent, "kv_hits", 0, 0); err != nil {
			return fmt.Errorf("worker %d var read: %w", worker, err)
		}
	}
	return nil
}

// quiesceHash normalises the agent's registers with one deterministic call
// and hashes its CPU + address space.
func quiesceHash(t *testing.T, s *Server, agent string) uint64 {
	t.Helper()
	if _, err := s.Call(&CallRequest{Program: agent, Fn: "kv_get", Args: []uint32{0}}, 0); err != nil {
		t.Fatal(err)
	}
	pg, err := s.program(agent)
	if err != nil {
		t.Fatal(err)
	}
	return vm.StateHash(pg.P.CPU)
}

// TestConcurrentClientsStateHash is the race-detector workout: ≥16
// goroutines mix launch/call/var-write against one server, and the
// quiesced world must hash identically to the same ops run serially.
func TestConcurrentClientsStateHash(t *testing.T) {
	const workers = 16
	rounds := 8
	if testing.Short() {
		rounds = 2
	}

	serial, agentA := newDemoServer(t)
	for w := 0; w < workers; w++ {
		if err := workload(serial, agentA, w, rounds); err != nil {
			t.Fatal(err)
		}
	}
	want := quiesceHash(t, serial, agentA)

	concurrent, agentB := newDemoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := workload(concurrent, agentB, w, rounds); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got := quiesceHash(t, concurrent, agentB)
	if got != want {
		t.Fatalf("StateHash after concurrent ops = %016x, serial = %016x", got, want)
	}

	// The shared hit counter saw every launch's bump and every kv_put.
	vr, err := concurrent.ReadVar(agentB, "kv_hits", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantHits := uint32(workers * rounds * 2)
	if vr.Value != wantHits {
		t.Fatalf("kv_hits = %d, want %d", vr.Value, wantHits)
	}
}

// TestLaunchRunsOnSchedulerCPU: a run-to-completion launch must execute
// on the daemon's guest-CPU scheduler, not inline on the world owner —
// the scheduler's step counter is the receipt.
func TestLaunchRunsOnSchedulerCPU(t *testing.T) {
	sys := core.NewSystem()
	if _, err := InstallDemo(sys); err != nil {
		t.Fatal(err)
	}
	s := New(sys, Config{CPUs: 2})
	t.Cleanup(func() { s.Close() })
	if got := s.Scheduler().CPUs(); got != 2 {
		t.Fatalf("scheduler CPUs = %d, want 2", got)
	}
	resp, err := s.Launch(&LaunchRequest{Name: "runner", Exe: DemoExe, Run: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Exited {
		t.Fatalf("run launch did not exit: %+v", resp)
	}
	snap := sys.Obs().Registry().Snapshot()
	if snap.Counters["kern.cpu_steps"] == 0 {
		t.Fatal("kern.cpu_steps = 0: guest ran on the world owner, not a scheduler CPU")
	}
}
