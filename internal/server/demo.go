package server

// The demo world: a small key-value program used by the serve quickstart,
// the load generator's self-test, the kvserver example, and the CI smoke
// run. It exercises both call paths the daemon serves: main reaches
// kv_bump through a jump-table stub (first call traps to ldl and patches
// the stub), while kv_get/kv_put live in the dynamic-public module and
// resolve through its exports once it is linked in.

import (
	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

// Demo world constants.
const (
	DemoExe   = "/bin/kvmain" // HEMX image InstallDemo saves
	DemoSlots = 1024          // kv_table entries (one word each)
)

const demoKVSrc = `
        .text
        .globl  kv_get
kv_get:                         # $a0 = slot -> value
        la      $t0, kv_table
        sll     $t1, $a0, 2
        addu    $t0, $t0, $t1
        lw      $v0, 0($t0)
        jr      $ra

        .globl  kv_put
kv_put:                         # $a0 = slot, $a1 = value -> old value
        la      $t0, kv_table
        sll     $t1, $a0, 2
        addu    $t0, $t0, $t1
        lw      $v0, 0($t0)
        sw      $a1, 0($t0)
        la      $t2, kv_hits
        lw      $t3, 0($t2)
        addiu   $t3, $t3, 1
        sw      $t3, 0($t2)
        jr      $ra

        .globl  kv_bump
kv_bump:                        # -> new hit count
        la      $t2, kv_hits
        lw      $v0, 0($t2)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t2)
        jr      $ra

        .data
        .globl  kv_table
kv_table:
        .space  4096
        .globl  kv_hits
kv_hits:
        .word   0
`

const demoMainSrc = `
        .text
        .globl  main
        .extern kv_bump
        .extern kv_get
        .extern kv_put
main:   move    $s1, $ra
        jal     kv_bump         # through the jump-table stub: first call links the module
        move    $ra, $s1
        li      $v0, 0
        jr      $ra
        # Never executed: these references exist so the jump-table carries
        # stubs for the whole kv API, callable on a parked process that has
        # not run main.
refs:   jal     kv_get
        jal     kv_put
        jr      $ra
`

// InstallDemo assembles the demo key-value world into sys — a
// dynamic-public kv module and a main that touches it through a jump-table
// stub — and saves the linked executable at DemoExe. It is idempotent per
// fresh system; call it once after boot.
func InstallDemo(sys *core.System) (string, error) {
	if _, err := sys.Asm("/lib/kv.o", demoKVSrc); err != nil {
		return "", err
	}
	if _, err := sys.Asm("/bin/kvmain.o", demoMainSrc); err != nil {
		return "", err
	}
	res, err := sys.Link(&lds.Options{
		Output: "kvmain",
		Modules: []lds.Input{
			{Name: "kvmain.o", Class: objfile.StaticPrivate},
			{Name: "kv.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
		JumpTables:  true,
	})
	if err != nil {
		return "", err
	}
	if err := sys.SaveExecutable(DemoExe, res.Image); err != nil {
		return "", err
	}
	return DemoExe, nil
}
