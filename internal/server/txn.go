package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"hemlock/internal/netshm"
)

// ErrNoShm is returned when /api/txn is used on a daemon whose machine has
// no netshm endpoint attached.
var ErrNoShm = errors.New("server: no networked shared memory on this machine")

// SetShm attaches the machine's netshm endpoint, enabling /api/txn (and
// installing the guest txn syscalls into the kernel).
func (s *Server) SetShm(n *netshm.Node) {
	s.mu.Lock()
	s.shm = n
	s.mu.Unlock()
	n.InstallTxn()
}

func (s *Server) shmNode() (*netshm.Node, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shm == nil {
		return nil, ErrNoShm
	}
	return s.shm, nil
}

// TxnRead names one word to read into the transaction's read set.
type TxnRead struct {
	Path string `json:"path"`
	Off  uint32 `json:"off"`
}

// TxnWrite stages one word store.
type TxnWrite struct {
	Path  string `json:"path"`
	Off   uint32 `json:"off"`
	Value uint32 `json:"value"`
}

// TxnRequest is POST /api/txn: a TL2-style transaction against the
// machine's replicated segments. Reads record version triples for
// validate-on-commit; writes apply atomically — one replication
// generation per segment.
type TxnRequest struct {
	Reads  []TxnRead  `json:"reads,omitempty"`
	Writes []TxnWrite `json:"writes,omitempty"`
}

// TxnResponse reports the commit's fate. State is "committed", "aborted"
// (validation conflict — re-run), or "pending" (forwarded to a remote
// home; poll GET /api/txn?txid=).
type TxnResponse struct {
	State  string   `json:"state"`
	Txid   uint64   `json:"txid,omitempty"`
	Values []uint32 `json:"values,omitempty"` // read results, in request order
}

// Txn runs one transaction: the programmatic twin of POST /api/txn.
func (s *Server) Txn(req *TxnRequest, timeout time.Duration) (*TxnResponse, error) {
	node, err := s.shmNode()
	if err != nil {
		return nil, err
	}
	var resp *TxnResponse
	err = s.do("txn", timeout, func() error {
		t := node.Begin()
		vals := make([]uint32, 0, len(req.Reads))
		for _, rd := range req.Reads {
			b, err := t.Read(rd.Path, rd.Off, 4)
			if err != nil {
				return err
			}
			vals = append(vals, binary.BigEndian.Uint32(b))
		}
		for _, wr := range req.Writes {
			t.WriteWord(wr.Path, wr.Off, wr.Value)
		}
		txid, err := t.Commit()
		switch {
		case errors.Is(err, netshm.ErrTxnConflict):
			resp = &TxnResponse{State: "aborted", Values: vals}
		case err != nil:
			return err
		case txid != 0:
			resp = &TxnResponse{State: "pending", Txid: txid, Values: vals}
		default:
			resp = &TxnResponse{State: "committed", Values: vals}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// TxnStatus polls a forwarded transaction: GET /api/txn?txid=.
func (s *Server) TxnStatus(txid uint64, timeout time.Duration) (*TxnResponse, error) {
	node, err := s.shmNode()
	if err != nil {
		return nil, err
	}
	var resp *TxnResponse
	err = s.do("txn_status", timeout, func() error {
		resp = &TxnResponse{State: node.TxnStatus(txid).String(), Txid: txid}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (s *Server) handleTxn(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		req, err := decode[TxnRequest](r)
		if err != nil {
			s.reply(w, nil, err)
			return
		}
		resp, err := s.Txn(req, s.timeoutOf(r))
		s.reply(w, resp, err)
	case http.MethodGet:
		txid, err := strconv.ParseUint(r.URL.Query().Get("txid"), 0, 64)
		if err != nil {
			s.reply(w, nil, fmt.Errorf("server: bad txid: %w", err))
			return
		}
		resp, err := s.TxnStatus(txid, s.timeoutOf(r))
		s.reply(w, resp, err)
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}
