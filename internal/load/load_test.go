package load

import (
	"net"
	"os"
	"strings"
	"syscall"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/server"
)

func newDemoServer(t *testing.T) *server.Server {
	t.Helper()
	sys := core.NewSystem()
	if _, err := server.InstallDemo(sys); err != nil {
		t.Fatal(err)
	}
	s := server.New(sys, server.Config{})
	t.Cleanup(func() { s.Close() })
	if _, err := s.Launch(&server.LaunchRequest{Name: "agent", Exe: server.DemoExe}, 0); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestLoadInProcess10k is the acceptance run: ≥10,000 mixed requests
// against one daemon, zero errors, and a latency table with percentiles.
func TestLoadInProcess10k(t *testing.T) {
	clients, requests := 16, 625 // 10,000 requests
	if testing.Short() {
		clients, requests = 8, 25
	}
	s := newDemoServer(t)
	rep, err := Run(NewDirect(s), Config{Clients: clients, Requests: requests, Mix: MixMixed})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != clients*requests {
		t.Fatalf("requests = %d, want %d", rep.Requests, clients*requests)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors; first: %s", rep.Errors, rep.FirstErr)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput = %f", rep.Throughput)
	}
	table := rep.Table()
	for _, want := range []string{"p50", "p95", "p99", "call", "launch", "var_read", "var_write"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	var calls uint64
	for _, o := range rep.Ops {
		calls += o.Count
	}
	if calls != uint64(rep.Requests) {
		t.Fatalf("op counts sum to %d, want %d", calls, rep.Requests)
	}
}

// TestLoadOverTCP drives the same mix through real sockets against a
// daemon running under its own signal-driven lifecycle.
func TestLoadOverTCP(t *testing.T) {
	s := newDemoServer(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	runDone := make(chan error, 1)
	go func() { runDone <- s.Run(ln, sigs) }()

	rep, err := Run(NewHTTP("http://"+ln.Addr().String(), nil),
		Config{Clients: 4, Requests: 25, Mix: MixCallHeavy})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors; first: %s", rep.Errors, rep.FirstErr)
	}

	sigs <- syscall.SIGTERM
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"launch", "call", "var", "mixed", ""} {
		if _, err := MixByName(name); err != nil {
			t.Fatalf("MixByName(%q): %v", name, err)
		}
	}
	if _, err := MixByName("bogus"); err == nil {
		t.Fatal("MixByName(bogus) succeeded")
	}
}
