// Package load drives synthetic client traffic at a hemlock serve daemon:
// N concurrent clients × M requests each, drawn from a weighted mix of the
// three request families the daemon serves (launch a program, call an
// exported function, read/write a shared variable). It works in-process
// (straight into a server.Server, no sockets) or over TCP against a
// running daemon, and reports throughput plus p50/p95/p99 latency per
// operation — the percentiles come from obsv histograms, so the load
// harness measures with the same instrument the daemon itself exports at
// /metrics.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hemlock/internal/obsv"
	"hemlock/internal/server"
)

// Caller abstracts where the requests go: in-process or over TCP.
type Caller interface {
	Launch(req *server.LaunchRequest) (*server.LaunchResponse, error)
	Call(req *server.CallRequest) (*server.CallResponse, error)
	ReadVar(program, name string, off uint32) (*server.VarResponse, error)
	WriteVar(req *server.VarWriteRequest) (*server.VarResponse, error)
}

// Mix weights the request families. The zero value selects Mixed.
type Mix struct {
	Launch int // launch a fresh program and run its main
	Call   int // call an exported function on the resident agent
	VarRW  int // read/write a shared variable (alternating)
}

// Named mixes for the CLI's -mix flag.
var (
	MixLaunchHeavy = Mix{Launch: 8, Call: 1, VarRW: 1}
	MixCallHeavy   = Mix{Launch: 1, Call: 8, VarRW: 1}
	MixVarHeavy    = Mix{Launch: 1, Call: 1, VarRW: 8}
	MixMixed       = Mix{Launch: 1, Call: 5, VarRW: 4}
)

// MixByName resolves a -mix flag value.
func MixByName(name string) (Mix, error) {
	switch name {
	case "launch":
		return MixLaunchHeavy, nil
	case "call":
		return MixCallHeavy, nil
	case "var":
		return MixVarHeavy, nil
	case "mixed", "":
		return MixMixed, nil
	}
	return Mix{}, fmt.Errorf("load: unknown mix %q (launch, call, var, mixed)", name)
}

func (m Mix) total() int { return m.Launch + m.Call + m.VarRW }

// Config shapes a load run.
type Config struct {
	Clients  int    // concurrent clients (default 8)
	Requests int    // requests per client (default 100)
	Mix      Mix    // request mix (default MixMixed)
	Seed     int64  // per-run base seed for the mix draw (default 1)
	Agent    string // resident program the call/var families target (default "agent")
	Exe      string // executable the launch family boots (default server.DemoExe)
}

func (c Config) withDefaults() Config {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Requests == 0 {
		c.Requests = 100
	}
	if c.Mix.total() == 0 {
		c.Mix = MixMixed
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Agent == "" {
		c.Agent = "agent"
	}
	if c.Exe == "" {
		c.Exe = server.DemoExe
	}
	return c
}

// OpStats is one operation family's latency summary.
type OpStats struct {
	Op    string `json:"op"`
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50_ns"`
	P95   uint64 `json:"p95_ns"`
	P99   uint64 `json:"p99_ns"`
}

// Report is the outcome of a load run.
type Report struct {
	Requests   int           `json:"requests"`
	Errors     int           `json:"errors"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"throughput_rps"`
	Ops        []OpStats     `json:"ops"`
	FirstErr   string        `json:"first_error,omitempty"`
}

// Table renders the report as the CLI's latency table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests in %v (%.0f req/s), %d errors\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput, r.Errors)
	fmt.Fprintf(&b, "%-10s %8s %12s %12s %12s\n", "op", "count", "p50", "p95", "p99")
	for _, o := range r.Ops {
		fmt.Fprintf(&b, "%-10s %8d %12v %12v %12v\n", o.Op, o.Count,
			time.Duration(o.P50), time.Duration(o.P95), time.Duration(o.P99))
	}
	if r.FirstErr != "" {
		fmt.Fprintf(&b, "first error: %s\n", r.FirstErr)
	}
	return b.String()
}

// Run fires cfg.Clients×cfg.Requests requests at c and summarises the
// outcome. Every request's latency is observed into a per-op obsv
// histogram; the report's percentiles are read back out of the snapshots.
func Run(c Caller, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	reg := obsv.NewRegistry()
	hists := map[string]*obsv.Histogram{
		"launch":    reg.Histogram("load.launch_ns"),
		"call":      reg.Histogram("load.call_ns"),
		"var_read":  reg.Histogram("load.var_read_ns"),
		"var_write": reg.Histogram("load.var_write_ns"),
	}
	var (
		mu       sync.Mutex
		errs     int
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for i := 0; i < cfg.Requests; i++ {
				op, err := fire(c, cfg, rng, w, i, hists)
				if err != nil {
					mu.Lock()
					errs++
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", op, err)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	total := cfg.Clients * cfg.Requests
	rep := &Report{
		Requests:   total,
		Errors:     errs,
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
	}
	if firstErr != nil {
		rep.FirstErr = firstErr.Error()
	}
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap.Histograms))
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		op := strings.TrimSuffix(strings.TrimPrefix(name, "load."), "_ns")
		rep.Ops = append(rep.Ops, OpStats{Op: op, Count: h.Count, P50: h.P50, P95: h.P95, P99: h.P99})
	}
	return rep, nil
}

// fire issues one request drawn from the mix and times it.
func fire(c Caller, cfg Config, rng *rand.Rand, worker, seq int, hists map[string]*obsv.Histogram) (string, error) {
	draw := rng.Intn(cfg.Mix.total())
	slot := uint32(worker % server.DemoSlots)
	val := uint32(worker*100000 + seq)
	var (
		op  string
		err error
	)
	start := time.Now()
	switch {
	case draw < cfg.Mix.Launch:
		op = "launch"
		_, err = c.Launch(&server.LaunchRequest{Exe: cfg.Exe, Run: true})
	case draw < cfg.Mix.Launch+cfg.Mix.Call:
		op = "call"
		if seq%2 == 0 {
			_, err = c.Call(&server.CallRequest{Program: cfg.Agent, Fn: "kv_put", Args: []uint32{slot, val}})
		} else {
			_, err = c.Call(&server.CallRequest{Program: cfg.Agent, Fn: "kv_get", Args: []uint32{slot}})
		}
	default:
		if seq%2 == 0 {
			op = "var_write"
			_, err = c.WriteVar(&server.VarWriteRequest{Program: cfg.Agent, Name: "kv_table", Off: slot * 4, Value: val})
		} else {
			op = "var_read"
			_, err = c.ReadVar(cfg.Agent, "kv_hits", 0)
		}
	}
	hists[op].Observe(uint64(time.Since(start)))
	return op, err
}

// ---- in-process caller -------------------------------------------------------

type direct struct{ s *server.Server }

// NewDirect returns a Caller that drives the server in-process: no
// sockets, no HTTP — straight onto the world-owner command channel, the
// way the CI smoke run uses it.
func NewDirect(s *server.Server) Caller { return direct{s} }

func (d direct) Launch(req *server.LaunchRequest) (*server.LaunchResponse, error) {
	return d.s.Launch(req, 0)
}
func (d direct) Call(req *server.CallRequest) (*server.CallResponse, error) {
	return d.s.Call(req, 0)
}
func (d direct) ReadVar(program, name string, off uint32) (*server.VarResponse, error) {
	return d.s.ReadVar(program, name, off, 0)
}
func (d direct) WriteVar(req *server.VarWriteRequest) (*server.VarResponse, error) {
	return d.s.WriteVar(req, 0)
}

// ---- TCP caller --------------------------------------------------------------

type httpCaller struct {
	base   string
	client *http.Client
}

// NewHTTP returns a Caller that speaks the daemon's HTTP API at base
// (e.g. "http://127.0.0.1:8080"). A nil client uses http.DefaultClient.
func NewHTTP(base string, client *http.Client) Caller {
	if client == nil {
		client = http.DefaultClient
	}
	return &httpCaller{base: strings.TrimRight(base, "/"), client: client}
}

func (h *httpCaller) post(path string, req, resp any) error {
	b, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := h.client.Post(h.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	return decodeResp(r, resp)
}

func decodeResp(r *http.Response, resp any) error {
	defer func() {
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
	}()
	if r.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(r.Body).Decode(&e)
		if e.Error == "" {
			e.Error = r.Status
		}
		return fmt.Errorf("load: %s", e.Error)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

func (h *httpCaller) Launch(req *server.LaunchRequest) (*server.LaunchResponse, error) {
	var resp server.LaunchResponse
	if err := h.post("/api/launch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (h *httpCaller) Call(req *server.CallRequest) (*server.CallResponse, error) {
	var resp server.CallResponse
	if err := h.post("/api/call", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (h *httpCaller) ReadVar(program, name string, off uint32) (*server.VarResponse, error) {
	u := h.base + "/api/var?program=" + url.QueryEscape(program) +
		"&name=" + url.QueryEscape(name) + "&off=" + strconv.FormatUint(uint64(off), 10)
	r, err := h.client.Get(u)
	if err != nil {
		return nil, err
	}
	var resp server.VarResponse
	if err := decodeResp(r, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (h *httpCaller) WriteVar(req *server.VarWriteRequest) (*server.VarResponse, error) {
	var resp server.VarResponse
	if err := h.post("/api/var", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
