package addrspace

import (
	"sync"
	"testing"

	"hemlock/internal/mem"
)

func TestCloneRangeCoWIsolatesWrites(t *testing.T) {
	parent := newSpace()
	if err := parent.MapAnon(0x1000, 2*mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := parent.StoreWord(0x1000, 0xAABBCCDD); err != nil {
		t.Fatal(err)
	}
	child := New(parent.Physical())
	parent.CloneRangeCoW(child, 0, 1<<31)

	// Both see the pre-fork value through the shared frame.
	for _, s := range []*Space{parent, child} {
		if w, err := s.LoadWord(0x1000); err != nil || w != 0xAABBCCDD {
			t.Fatalf("pre-write read: %08x, %v", w, err)
		}
	}
	if !parent.PageIsCoW(0x1000) || !child.PageIsCoW(0x1000) {
		t.Fatal("both sides should be marked cow after clone")
	}

	// Child writes: copies its page, parent unaffected.
	if err := child.StoreWord(0x1000, 0x11111111); err != nil {
		t.Fatal(err)
	}
	if w, _ := parent.LoadWord(0x1000); w != 0xAABBCCDD {
		t.Fatalf("parent saw child's write: %08x", w)
	}
	if w, _ := child.LoadWord(0x1000); w != 0x11111111 {
		t.Fatalf("child lost its write: %08x", w)
	}
	if child.PageIsCoW(0x1000) {
		t.Fatal("child page should have resolved")
	}

	// Parent writes the second page: parent copies, child keeps snapshot.
	if err := parent.StoreWord(0x2000, 0x22222222); err != nil {
		t.Fatal(err)
	}
	if w, _ := child.LoadWord(0x2000); w != 0 {
		t.Fatalf("child saw parent's post-fork write: %08x", w)
	}
}

func TestCoWClaimWhenSoleOwner(t *testing.T) {
	parent := newSpace()
	if err := parent.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	child := New(parent.Physical())
	parent.CloneRangeCoW(child, 0, 1<<31)
	before, _ := parent.Translate(0x1000, AccessRead)
	child.Release()
	// Child gone: the parent is sole owner again, so its first store should
	// claim the frame in place rather than copy it.
	if err := parent.StoreWord(0x1000, 7); err != nil {
		t.Fatal(err)
	}
	after, _ := parent.Translate(0x1000, AccessRead)
	if before.Frame != after.Frame {
		t.Fatal("sole-owner store should claim the frame, not copy it")
	}
	if parent.PageIsCoW(0x1000) {
		t.Fatal("claimed page still marked cow")
	}
}

func TestCoWPreservesLogicalProt(t *testing.T) {
	parent := newSpace()
	if err := parent.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := parent.MapAnon(0x3000, mem.PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	child := New(parent.Physical())
	parent.CloneRangeCoW(child, 0, 1<<31)

	// ProtAt and VisitPages report the logical protection: CoW must be
	// invisible to StateHash and the Figure 3 layout printer.
	for _, s := range []*Space{parent, child} {
		if p, ok := s.ProtAt(0x1000); !ok || p != ProtRW {
			t.Fatalf("ProtAt = %v, %v; want rw-", p, ok)
		}
		var prots []Prot
		s.VisitPages(func(_ uint32, prot Prot, _ *[mem.PageSize]byte) {
			prots = append(prots, prot)
		})
		if len(prots) != 2 || prots[0] != ProtRW || prots[1] != ProtNone {
			t.Fatalf("VisitPages prots = %v", prots)
		}
	}

	// But a cached translation must not be write-capable while shared.
	e, flt := child.Translate(0x1000, AccessRead)
	if flt != nil {
		t.Fatal(flt)
	}
	if e.Prot&ProtWrite != 0 {
		t.Fatal("read translation of a cow page advertises write capability")
	}
	// A write translation resolves the copy and is fully capable.
	e2, flt := child.Translate(0x1000, AccessWrite)
	if flt != nil {
		t.Fatal(flt)
	}
	if e2.Prot != ProtRW {
		t.Fatalf("write translation prot = %v, want rw-", e2.Prot)
	}
	if e2.Frame == e.Frame {
		t.Fatal("write translation still points at the shared frame")
	}
	if e2.Gen == e.Gen {
		t.Fatal("resolution must bump the generation to kill cached entries")
	}
}

func TestCoWProtectThenWrite(t *testing.T) {
	// ldl's LinkModule does Protect(RW) then patches; if the pages came from
	// a zygote clone the patch must still trigger the copy.
	parent := newSpace()
	if err := parent.MapAnon(0x1000, mem.PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	child := New(parent.Physical())
	parent.CloneRangeCoW(child, 0, 1<<31)
	if err := child.Protect(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if !child.PageIsCoW(0x1000) {
		t.Fatal("Protect must not clear the cow flag")
	}
	if err := child.StoreWord(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := parent.Protect(0x1000, mem.PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if w, _ := child.LoadWord(0x1000); w != 1 {
		t.Fatalf("child = %08x", w)
	}
	b := make([]byte, 4)
	if _, err := parent.Read(0x1000, b); err != nil {
		t.Fatal(err)
	}
	if b[3] != 0 {
		t.Fatal("parent saw child's store through a resolved cow page")
	}
}

func TestCoWConcurrentWriters(t *testing.T) {
	parent := newSpace()
	if err := parent.MapAnon(0x1000, 4*mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	const clones = 8
	children := make([]*Space, clones)
	for i := range children {
		children[i] = New(parent.Physical())
		parent.CloneRangeCoW(children[i], 0, 1<<31)
	}
	var wg sync.WaitGroup
	for i, c := range children {
		wg.Add(1)
		go func(i int, c *Space) {
			defer wg.Done()
			for pg := uint32(0); pg < 4; pg++ {
				addr := 0x1000 + pg*mem.PageSize
				if err := c.StoreWord(addr, uint32(i+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	for i, c := range children {
		for pg := uint32(0); pg < 4; pg++ {
			if w, _ := c.LoadWord(0x1000 + pg*mem.PageSize); w != uint32(i+1) {
				t.Fatalf("clone %d page %d = %08x", i, pg, w)
			}
		}
		c.Release()
	}
	for pg := uint32(0); pg < 4; pg++ {
		if w, _ := parent.LoadWord(0x1000 + pg*mem.PageSize); w != 0 {
			t.Fatalf("parent page %d dirtied: %08x", pg, w)
		}
	}
}
