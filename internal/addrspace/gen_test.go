package addrspace

// Tests for the generation counter and Translate (the software-TLB
// interface) plus the Mapped empty-range regression.

import (
	"testing"

	"hemlock/internal/mem"
)

// TestMappedEmptyRange: size 0 used to underflow (vpn(addr-1) wrapped) and
// scan an enormous range. An empty range is trivially mapped.
func TestMappedEmptyRange(t *testing.T) {
	s := newSpace()
	if !s.Mapped(0x1000, 0) {
		t.Error("Mapped(addr, 0) = false, want true (empty range)")
	}
	if !s.Mapped(0, 0) {
		t.Error("Mapped(0, 0) = false, want true")
	}
	if !s.Mapped(0xffffffff, 0) {
		t.Error("Mapped(0xffffffff, 0) = false, want true")
	}
}

// TestMappedOverflowRange: a range running past the top of the 32-bit
// space can never be fully mapped.
func TestMappedOverflowRange(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0xfffff000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if !s.Mapped(0xfffff000, mem.PageSize) {
		t.Error("last page not reported mapped")
	}
	if s.Mapped(0xfffff000, 2*mem.PageSize) {
		t.Error("range past 2^32 reported mapped")
	}
	if s.Mapped(0xfffffffc, 8) {
		t.Error("wrapping range reported mapped")
	}
}

// TestGenerationBumps: every mapping mutation must advance the generation
// so cached translations are discarded.
func TestGenerationBumps(t *testing.T) {
	s := newSpace()
	g := s.Gen()
	step := func(name string, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ng := s.Gen(); ng <= g {
			t.Fatalf("%s did not bump generation (%d -> %d)", name, g, ng)
		} else {
			g = ng
		}
	}
	step("MapAnon", func() error { return s.MapAnon(0x1000, mem.PageSize, ProtRW) })
	step("Protect", func() error { return s.Protect(0x1000, mem.PageSize, ProtRead) })
	step("Unmap", func() error { s.Unmap(0x1000, mem.PageSize); return nil })

	// ShareRange/CloneRange bump the destination's generation.
	src := newSpace()
	if err := src.MapAnon(0x4000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	step("ShareRange into", func() error { src.ShareRange(s, 0x4000, 0x4000+mem.PageSize); return nil })
	step("Release", func() error { s.Release(); return nil })

	// Failed mutations must not bump: readers may hold entries tagged with
	// the current generation.
	s2 := newSpace()
	if err := s2.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	g2 := s2.Gen()
	if err := s2.MapAnon(0x1000, mem.PageSize, ProtRW); err == nil {
		t.Fatal("double map succeeded")
	}
	if err := s2.Protect(0x9000, mem.PageSize, ProtRead); err == nil {
		t.Fatal("protect of unmapped range succeeded")
	}
	if s2.Gen() != g2 {
		t.Fatalf("failed mutations bumped generation %d -> %d", g2, s2.Gen())
	}
}

// TestTranslate: the TLB fill path returns frame+prot+gen on success and
// the same faults the access path raises.
func TestTranslate(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	e, f := s.Translate(0x1234, AccessRead)
	if f != nil {
		t.Fatalf("translate faulted: %v", f)
	}
	if e.Frame == nil || e.Prot != ProtRW || e.Gen != s.Gen() {
		t.Fatalf("bad entry: %+v (gen now %d)", e, s.Gen())
	}
	if _, f := s.Translate(0x1234, AccessExec); f == nil || f.Unmapped {
		t.Fatal("exec of RW page: want protection fault")
	}
	if _, f := s.Translate(0x9000, AccessRead); f == nil || !f.Unmapped {
		t.Fatal("unmapped translate: want unmapped fault")
	}
}
