// Package addrspace implements simulated 32-bit virtual address spaces with
// per-page protection, the substrate on which Hemlock's fault-driven lazy
// linking and map-on-pointer-dereference are built.
//
// An address space is a sparse page table mapping virtual page numbers to
// physical frames plus protection bits. Loads and stores that touch an
// unmapped page, or a page without the required right, fail with a *Fault
// describing the access; the kernel (package kern) turns that into a
// restartable signal, exactly as the IRIX kernel delivers SIGSEGV to
// Hemlock's user-level handler.
package addrspace

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"hemlock/internal/mem"
	"hemlock/internal/obsv"
)

// Prot is a page protection bit mask.
type Prot uint8

// Protection bits. ProtNone (no bits) is what ldl uses to map a module that
// still has undefined references, so that the first touch faults.
const (
	ProtRead  Prot = 1 << iota // page may be read
	ProtWrite                  // page may be written
	ProtExec                   // page may be executed

	ProtNone Prot = 0
	ProtRW        = ProtRead | ProtWrite
	ProtRX        = ProtRead | ProtExec
	ProtRWX       = ProtRead | ProtWrite | ProtExec
)

func (p Prot) String() string {
	b := []byte("---")
	if p&ProtRead != 0 {
		b[0] = 'r'
	}
	if p&ProtWrite != 0 {
		b[1] = 'w'
	}
	if p&ProtExec != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access is the kind of memory access that caused a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessExec
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	}
	return fmt.Sprintf("access(%d)", uint8(a))
}

// Need returns the protection bit required for the access.
func (a Access) Need() Prot {
	switch a {
	case AccessWrite:
		return ProtWrite
	case AccessExec:
		return ProtExec
	default:
		return ProtRead
	}
}

// Fault describes a failed translation: the simulated equivalent of a
// SIGSEGV siginfo. Unmapped reports whether the page had no mapping at all
// (as opposed to a protection violation).
type Fault struct {
	Addr     uint32
	Access   Access
	Unmapped bool
}

func (f *Fault) Error() string {
	kind := "protection violation"
	if f.Unmapped {
		kind = "unmapped page"
	}
	return fmt.Sprintf("addrspace: fault on %s of 0x%08x (%s)", f.Access, f.Addr, kind)
}

// IsFault reports whether err is a *Fault and returns it.
func IsFault(err error) (*Fault, bool) {
	f, ok := err.(*Fault)
	return f, ok
}

// pte is a page table entry. prot is the logical protection — what the
// process asked for and what ProtAt/VisitPages report. cow marks a frame
// that may be shared with another space via CloneRangeCoW: the page must be
// re-backed by a private frame before any store lands, but its logical
// protection is unchanged, so copy-on-write is invisible to everything that
// inspects the space (including the differential harness's StateHash).
type pte struct {
	frame *mem.Frame
	prot  Prot
	cow   bool
}

// Space is a simulated 32-bit virtual address space. All methods are safe
// for concurrent use; Hemlock processes may be driven from multiple
// goroutines in tests.
type Space struct {
	mu    sync.RWMutex
	pages map[uint32]pte // VPN -> entry
	phys  *mem.Physical

	// gen counts mapping mutations (map, unmap, protect, share, clone-in,
	// release). Cached translations — the VM's software TLB — are valid
	// only while the generation they were filled under is current, so a
	// single bump here flushes every cache built on this space. Bumped
	// under mu; read lock-free via Gen.
	gen atomic.Uint64

	// Observability wiring (Observe). All fields are nil-safe: a bare
	// Space constructed by a test is simply unobserved.
	tracer            *obsv.Tracer
	ctrMaps, ctrUnmap *obsv.Counter // pages mapped / unmapped
	pid               int
}

// New returns an empty address space drawing frames from phys.
func New(phys *mem.Physical) *Space {
	return &Space{pages: make(map[uint32]pte), phys: phys}
}

// Observe wires the space into the observability layer: map/unmap events
// flow to tracer tagged with pid, and page counts into the two counters
// (shared kernel-wide, so they aggregate across processes).
func (s *Space) Observe(tracer *obsv.Tracer, maps, unmaps *obsv.Counter, pid int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer, s.ctrMaps, s.ctrUnmap, s.pid = tracer, maps, unmaps, pid
}

// Physical returns the frame pool backing the space.
func (s *Space) Physical() *mem.Physical { return s.phys }

func vpn(addr uint32) uint32 { return addr >> mem.PageShift }

// PageBase returns the page-aligned base of addr.
func PageBase(addr uint32) uint32 { return addr &^ (mem.PageSize - 1) }

// PageCount returns the number of pages needed to hold size bytes starting
// at a page-aligned address.
func PageCount(size uint32) uint32 {
	return (size + mem.PageSize - 1) / mem.PageSize
}

// MapAnon allocates fresh zeroed frames for [addr, addr+size) with the given
// protection. addr must be page aligned. Pages already mapped in the range
// cause an error.
func (s *Space) MapAnon(addr, size uint32, prot Prot) error {
	if addr%mem.PageSize != 0 {
		return fmt.Errorf("addrspace: MapAnon addr 0x%08x not page aligned", addr)
	}
	sp := s.tracer.Begin("addrspace", "map_anon", s.pid, "")
	n := PageCount(size)
	frames, err := s.phys.AllocN(int(n))
	if err != nil {
		sp.End(0)
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := vpn(addr)
	for i := uint32(0); i < n; i++ {
		if _, dup := s.pages[base+i]; dup {
			for _, f := range frames {
				f.Release()
			}
			sp.End(0)
			return fmt.Errorf("addrspace: page 0x%08x already mapped", (base+i)<<mem.PageShift)
		}
	}
	for i := uint32(0); i < n; i++ {
		s.pages[base+i] = pte{frame: frames[i], prot: prot}
	}
	s.gen.Add(1)
	s.ctrMaps.Add(uint64(n))
	sp.End(uint64(n))
	return nil
}

// MapFrames installs the given frames (retaining each) at addr with the
// given protection. This is how a shared-file-system file is mapped: the
// file's own frames become the process's pages, so stores through the
// mapping are stores into the file.
func (s *Space) MapFrames(addr uint32, frames []*mem.Frame, prot Prot) error {
	if addr%mem.PageSize != 0 {
		return fmt.Errorf("addrspace: MapFrames addr 0x%08x not page aligned", addr)
	}
	sp := s.tracer.Begin("addrspace", "map_frames", s.pid, "")
	s.mu.Lock()
	defer s.mu.Unlock()
	base := vpn(addr)
	for i := range frames {
		if _, dup := s.pages[base+uint32(i)]; dup {
			sp.End(0)
			return fmt.Errorf("addrspace: page 0x%08x already mapped", (base+uint32(i))<<mem.PageShift)
		}
	}
	for i, f := range frames {
		f.Retain()
		s.pages[base+uint32(i)] = pte{frame: f, prot: prot}
	}
	s.gen.Add(1)
	s.ctrMaps.Add(uint64(len(frames)))
	sp.End(uint64(len(frames)))
	return nil
}

// Unmap removes the mapping for [addr, addr+size), releasing the frames.
// Unmapped pages in the range are ignored.
func (s *Space) Unmap(addr, size uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := vpn(addr)
	released := uint64(0)
	for i := uint32(0); i < PageCount(size); i++ {
		if e, ok := s.pages[base+i]; ok {
			e.frame.Release()
			delete(s.pages, base+i)
			released++
		}
	}
	if released > 0 {
		s.gen.Add(1)
	}
	s.ctrUnmap.Add(released)
	if released > 0 && s.tracer.Enabled() {
		s.tracer.Emit(obsv.Event{Subsys: "addrspace", Name: "unmap", PID: s.pid, Addr: addr, Val: released})
	}
}

// Protect changes the protection of every mapped page in [addr, addr+size).
// It returns an error if any page in the range is unmapped.
func (s *Space) Protect(addr, size uint32, prot Prot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := vpn(addr)
	n := PageCount(size)
	for i := uint32(0); i < n; i++ {
		if _, ok := s.pages[base+i]; !ok {
			return fmt.Errorf("addrspace: Protect: page 0x%08x not mapped", (base+i)<<mem.PageShift)
		}
	}
	for i := uint32(0); i < n; i++ {
		e := s.pages[base+i]
		e.prot = prot
		s.pages[base+i] = e
	}
	s.gen.Add(1)
	return nil
}

// ProtAt returns the protection of the page containing addr and whether the
// page is mapped.
func (s *Space) ProtAt(addr uint32) (Prot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.pages[vpn(addr)]
	return e.prot, ok
}

// Mapped reports whether every page of [addr, addr+size) is mapped. An
// empty range is vacuously mapped. A range extending past the top of the
// 32-bit space is not (those pages cannot exist); the old end-of-range
// arithmetic wrapped around for size 0 and scanned bogus VPNs.
func (s *Space) Mapped(addr, size uint32) bool {
	if size == 0 {
		return true
	}
	if uint64(addr)+uint64(size) > 1<<32 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	base := vpn(PageBase(addr))
	end := vpn(addr + size - 1)
	for p := base; p <= end; p++ {
		if _, ok := s.pages[p]; !ok {
			return false
		}
	}
	return true
}

// Gen returns the space's mapping generation. It is bumped by every
// mutation of the page table, so a cached Entry whose Gen no longer
// matches must be re-translated. The VM checks it in two places: TLB
// entries on every hit, and translated basic blocks on every block entry
// — one bump invalidates both, with no shootdown protocol.
func (s *Space) Gen() uint64 { return s.gen.Load() }

// Entry is a cacheable translation: the frame backing one page, its
// protection, and the generation the entry was read under. Holders must
// discard it once Gen() moves past Entry.Gen.
type Entry struct {
	Frame *mem.Frame
	Prot  Prot
	Gen   uint64
}

// Translate resolves the page containing addr for the given access kind
// and returns the full page-table entry plus the current generation, so
// callers — the VM's software TLB — can cache the result and revalidate
// it with a single atomic load instead of taking the space lock.
func (s *Space) Translate(addr uint32, a Access) (Entry, *Fault) {
	s.mu.RLock()
	e, ok := s.pages[vpn(addr)]
	g := s.gen.Load()
	s.mu.RUnlock()
	if !ok {
		return Entry{}, &Fault{Addr: addr, Access: a, Unmapped: true}
	}
	if e.prot&a.Need() == 0 {
		return Entry{}, &Fault{Addr: addr, Access: a}
	}
	if e.cow {
		// A write must land in a private frame; resolve now and re-read
		// the entry so the caller caches the private translation. For
		// reads and fetches the shared frame is fine, but the cached
		// entry must not advertise write capability — a later store
		// through it would bypass the copy — so mask ProtWrite and let
		// the store path come back through here.
		if a == AccessWrite {
			if _, flt := s.resolveCoW(addr, a); flt != nil {
				return Entry{}, flt
			}
			s.mu.RLock()
			e, ok = s.pages[vpn(addr)]
			g = s.gen.Load()
			s.mu.RUnlock()
			if !ok {
				return Entry{}, &Fault{Addr: addr, Access: a, Unmapped: true}
			}
			return Entry{Frame: e.frame, Prot: e.prot, Gen: g}, nil
		}
		return Entry{Frame: e.frame, Prot: e.prot &^ ProtWrite, Gen: g}, nil
	}
	return Entry{Frame: e.frame, Prot: e.prot, Gen: g}, nil
}

// translate returns the frame and in-page offset for addr if the access is
// permitted.
func (s *Space) translate(addr uint32, a Access) (*mem.Frame, uint32, *Fault) {
	s.mu.RLock()
	e, ok := s.pages[vpn(addr)]
	s.mu.RUnlock()
	if !ok {
		return nil, 0, &Fault{Addr: addr, Access: a, Unmapped: true}
	}
	if e.prot&a.Need() == 0 {
		return nil, 0, &Fault{Addr: addr, Access: a}
	}
	if e.cow && a == AccessWrite {
		f, flt := s.resolveCoW(addr, a)
		if flt != nil {
			return nil, 0, flt
		}
		return f, addr & (mem.PageSize - 1), nil
	}
	return e.frame, addr & (mem.PageSize - 1), nil
}

// resolveCoW re-backs the page containing addr with a frame owned solely by
// this space, in preparation for a store. If the shared frame's refcount has
// already dropped to one (every other clone exited), the page is simply
// claimed; otherwise the frame is copied. Either way the cow flag clears and
// the generation bumps so every cached translation of the old frame dies.
func (s *Space) resolveCoW(addr uint32, a Access) (*mem.Frame, *Fault) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := vpn(addr)
	e, ok := s.pages[p]
	if !ok {
		return nil, &Fault{Addr: addr, Access: a, Unmapped: true}
	}
	if !e.cow { // raced with another resolver; its copy is ours
		return e.frame, nil
	}
	if e.frame.Refs() == 1 {
		e.cow = false
		s.pages[p] = e
		s.gen.Add(1)
		return e.frame, nil
	}
	f, err := e.frame.Copy()
	if err != nil {
		// Physical frames exhausted at store time. Surface it as a write
		// fault: the simulated kernel has no better recourse than a signal.
		return nil, &Fault{Addr: addr, Access: a}
	}
	e.frame.Release()
	e.frame, e.cow = f, false
	s.pages[p] = e
	s.gen.Add(1)
	return f, nil
}

// CloneRangeCoW installs every mapped page of s in [start, end) into dst by
// sharing the frame copy-on-write: both spaces keep the page's logical
// protection, both mark it cow, and whichever side stores first re-backs its
// own copy. This is the O(pages-touched) half of fork that makes zygote
// launches cheap — a clone costs one refcount and one page-table entry per
// page instead of a frame copy. Both generations bump: the source's cached
// write-capable translations must die the moment its frames become shared.
func (s *Space) CloneRangeCoW(dst *Space, start, end uint32) {
	type ent struct {
		vpn uint32
		e   pte
	}
	s.mu.Lock()
	ents := make([]ent, 0, len(s.pages))
	for p, e := range s.pages {
		a := p << mem.PageShift
		if a >= start && a < end {
			if !e.cow {
				e.cow = true
				s.pages[p] = e
			}
			e.frame.Retain()
			ents = append(ents, ent{p, e})
		}
	}
	if len(ents) > 0 {
		s.gen.Add(1)
	}
	s.mu.Unlock()
	if len(ents) == 0 {
		return
	}
	dst.mu.Lock()
	for _, it := range ents {
		dst.pages[it.vpn] = it.e
	}
	dst.gen.Add(1)
	dst.mu.Unlock()
}

// ForkInto is the fused fork clone: one pass over s's page table installs
// every user page into dst, copy-on-write for the private windows
// ([0, shBase) and [shLimit, kBase)) and shared outright for the public
// window ([shBase, shLimit)). It is semantically CloneRangeCoW twice plus
// ShareRange once, but a single traversal with a pre-sized destination
// table — the difference between a warm zygote launch and three map walks.
func (s *Space) ForkInto(dst *Space, shBase, shLimit, kBase uint32) {
	type ent struct {
		vpn uint32
		e   pte
	}
	s.mu.Lock()
	ents := make([]ent, 0, len(s.pages))
	marked := false
	for p, e := range s.pages {
		a := p << mem.PageShift
		switch {
		case a < shBase || (a >= shLimit && a < kBase):
			// Private: share the frame copy-on-write on both sides.
			if !e.cow {
				e.cow = true
				s.pages[p] = e
				marked = true
			}
		case a >= shBase && a < shLimit:
			// Public: both spaces address the same frame directly.
			e.cow = false
		default:
			continue // kernel window: never cloned
		}
		e.frame.Retain()
		ents = append(ents, ent{p, e})
	}
	if marked {
		s.gen.Add(1)
	}
	s.mu.Unlock()
	if len(ents) == 0 {
		return
	}
	dst.mu.Lock()
	if len(dst.pages) == 0 {
		dst.pages = make(map[uint32]pte, len(ents))
	}
	for _, it := range ents {
		dst.pages[it.vpn] = it.e
	}
	dst.gen.Add(1)
	dst.mu.Unlock()
}

// PageIsCoW reports whether the page containing addr is currently marked
// copy-on-write (for tests).
func (s *Space) PageIsCoW(addr uint32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pages[vpn(addr)].cow
}

// Read copies len(buf) bytes starting at addr into buf. On a fault it
// returns the number of bytes copied before the fault and the *Fault.
func (s *Space) Read(addr uint32, buf []byte) (int, error) {
	done := 0
	for done < len(buf) {
		f, off, flt := s.translate(addr+uint32(done), AccessRead)
		if flt != nil {
			return done, flt
		}
		n := copy(buf[done:], f.Data[off:])
		done += n
	}
	return done, nil
}

// Write copies buf into memory starting at addr. On a fault it returns the
// number of bytes written before the fault and the *Fault.
func (s *Space) Write(addr uint32, buf []byte) (int, error) {
	done := 0
	for done < len(buf) {
		f, off, flt := s.translate(addr+uint32(done), AccessWrite)
		if flt != nil {
			return done, flt
		}
		n := len(buf) - done
		if room := len(f.Data) - int(off); n > room {
			n = room
		}
		f.NoteStoreRange(off, uint32(n))
		copy(f.Data[off:], buf[done:done+n])
		done += n
	}
	return done, nil
}

// LoadWord loads a big-endian 32-bit word. addr must be 4-byte aligned.
func (s *Space) LoadWord(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("addrspace: unaligned word load at 0x%08x", addr)
	}
	f, off, flt := s.translate(addr, AccessRead)
	if flt != nil {
		return 0, flt
	}
	return f.LoadWordBE(off), nil
}

// StoreWord stores a big-endian 32-bit word. addr must be 4-byte aligned.
func (s *Space) StoreWord(addr, val uint32) error {
	if addr%4 != 0 {
		return fmt.Errorf("addrspace: unaligned word store at 0x%08x", addr)
	}
	f, off, flt := s.translate(addr, AccessWrite)
	if flt != nil {
		return flt
	}
	f.StoreWordBE(off, val)
	return nil
}

// FetchWord loads an instruction word, requiring execute permission.
func (s *Space) FetchWord(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, fmt.Errorf("addrspace: unaligned fetch at 0x%08x", addr)
	}
	f, off, flt := s.translate(addr, AccessExec)
	if flt != nil {
		return 0, flt
	}
	return f.LoadWordBE(off), nil
}

// LoadByte loads one byte with read permission.
func (s *Space) LoadByte(addr uint32) (byte, error) {
	f, off, flt := s.translate(addr, AccessRead)
	if flt != nil {
		return 0, flt
	}
	return f.Data[off], nil
}

// StoreByte stores one byte with write permission.
func (s *Space) StoreByte(addr uint32, val byte) error {
	f, off, flt := s.translate(addr, AccessWrite)
	if flt != nil {
		return flt
	}
	f.NoteStoreRange(off, 1)
	f.Data[off] = val
	return nil
}

// Region describes one contiguous run of identically-protected pages, for
// /proc-style inspection and the Figure 3 layout printer.
type Region struct {
	Start uint32
	End   uint32 // exclusive
	Prot  Prot
}

// Regions returns the mapped regions in ascending address order, merging
// adjacent pages with identical protection.
func (s *Space) Regions() []Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vpns := make([]uint32, 0, len(s.pages))
	for p := range s.pages {
		vpns = append(vpns, p)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	var out []Region
	for _, p := range vpns {
		e := s.pages[p]
		start := p << mem.PageShift
		if n := len(out); n > 0 && out[n-1].End == start && out[n-1].Prot == e.prot {
			out[n-1].End = start + mem.PageSize
			continue
		}
		out = append(out, Region{Start: start, End: start + mem.PageSize, Prot: e.prot})
	}
	return out
}

// VisitPages calls fn for every mapped page in ascending VPN order,
// regardless of protection (ProtNone pages included). The differential
// harness uses it to hash and dump whole-space state cheaply; fn must not
// mutate the space (the read lock is held across the walk).
func (s *Space) VisitPages(fn func(vpn uint32, prot Prot, data *[mem.PageSize]byte)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vpns := make([]uint32, 0, len(s.pages))
	for p := range s.pages {
		vpns = append(vpns, p)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, p := range vpns {
		e := s.pages[p]
		fn(p, e.prot, &e.frame.Data)
	}
}

// CloneRange deep-copies every mapped page in [start, end) of s into dst,
// allocating fresh frames. This is the private half of fork. The frame
// copies happen outside any lock; dst's lock is taken exactly once to
// install them all.
func (s *Space) CloneRange(dst *Space, start, end uint32) error {
	s.mu.RLock()
	type ent struct {
		vpn uint32
		e   pte
	}
	var ents []ent
	for p, e := range s.pages {
		a := p << mem.PageShift
		if a >= start && a < end {
			ents = append(ents, ent{p, e})
		}
	}
	s.mu.RUnlock()
	copies := make([]*mem.Frame, len(ents))
	for i, it := range ents {
		f, err := it.e.frame.Copy()
		if err != nil {
			for _, g := range copies[:i] {
				g.Release()
			}
			return err
		}
		copies[i] = f
	}
	if len(ents) == 0 {
		return nil
	}
	dst.mu.Lock()
	for i, it := range ents {
		dst.pages[it.vpn] = pte{frame: copies[i], prot: it.e.prot}
	}
	dst.gen.Add(1)
	dst.mu.Unlock()
	return nil
}

// ShareRange installs s's mappings in [start, end) into dst, retaining the
// frames so that both spaces see the same bytes. This is the public half of
// fork. The frames are retained under s's read lock (so none can be
// released out from under us); dst's lock is taken once for the whole
// batch rather than once per page.
func (s *Space) ShareRange(dst *Space, start, end uint32) {
	s.mu.RLock()
	type ent struct {
		vpn uint32
		e   pte
	}
	var ents []ent
	for p, e := range s.pages {
		a := p << mem.PageShift
		if a >= start && a < end {
			e.frame.Retain()
			ents = append(ents, ent{p, e})
		}
	}
	s.mu.RUnlock()
	if len(ents) == 0 {
		return
	}
	dst.mu.Lock()
	for _, it := range ents {
		dst.pages[it.vpn] = it.e
	}
	dst.gen.Add(1)
	dst.mu.Unlock()
}

// Release unmaps everything, releasing all frames. The space must not be
// used afterwards.
func (s *Space) Release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	released := uint64(len(s.pages))
	for _, e := range s.pages {
		e.frame.Release()
	}
	clear(s.pages)
	s.gen.Add(1)
	s.ctrUnmap.Add(released)
	if released > 0 && s.tracer.Enabled() {
		s.tracer.Emit(obsv.Event{Subsys: "addrspace", Name: "release", PID: s.pid, Val: released})
	}
}

// PageCountMapped returns the number of mapped pages (for tests).
func (s *Space) PageCountMapped() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}
