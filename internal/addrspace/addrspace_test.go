package addrspace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hemlock/internal/mem"
)

func newSpace() *Space { return New(mem.NewPhysical(0)) }

func TestMapAnonReadWrite(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1000, 2*mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, hemlock")
	if _, err := s.Write(0x1ffc, msg); err != nil { // spans a page boundary
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := s.Read(0x1ffc, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestUnmappedFault(t *testing.T) {
	s := newSpace()
	_, err := s.LoadWord(0x5000)
	f, ok := IsFault(err)
	if !ok {
		t.Fatalf("expected fault, got %v", err)
	}
	if !f.Unmapped || f.Addr != 0x5000 || f.Access != AccessRead {
		t.Fatalf("bad fault: %+v", f)
	}
}

func TestProtectionFault(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x2000, mem.PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	err := s.StoreWord(0x2000, 42)
	f, ok := IsFault(err)
	if !ok || f.Unmapped || f.Access != AccessWrite {
		t.Fatalf("expected write protection fault, got %v", err)
	}
	// Execute requires ProtExec.
	if _, err := s.FetchWord(0x2000); err == nil {
		t.Fatal("fetch from non-exec page should fault")
	}
}

func TestProtNoneFaultsOnRead(t *testing.T) {
	// ldl maps unresolved modules with no access so the first touch faults.
	s := newSpace()
	if err := s.MapAnon(0x3000, mem.PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	_, err := s.LoadWord(0x3000)
	f, ok := IsFault(err)
	if !ok || f.Unmapped {
		t.Fatalf("expected protection (not unmapped) fault, got %v", err)
	}
	if err := s.Protect(0x3000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadWord(0x3000); err != nil {
		t.Fatalf("load after Protect: %v", err)
	}
}

func TestPartialReadStopsAtFault(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, mem.PageSize+8)
	n, err := s.Read(0x1000, buf)
	if n != mem.PageSize {
		t.Fatalf("read %d bytes before fault, want %d", n, mem.PageSize)
	}
	if _, ok := IsFault(err); !ok {
		t.Fatalf("expected fault, got %v", err)
	}
}

func TestMapFramesShareBytes(t *testing.T) {
	phys := mem.NewPhysical(0)
	a, b := New(phys), New(phys)
	frames, err := phys.AllocN(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MapFrames(0x30000000, frames, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := b.MapFrames(0x30000000, frames, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := a.StoreWord(0x30000004, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := b.LoadWord(0x30000004)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("shared frame not visible: got 0x%x", v)
	}
	for _, f := range frames {
		if f.Refs() != 3 { // owner + two mappings
			t.Fatalf("frame refs = %d, want 3", f.Refs())
		}
	}
	a.Unmap(0x30000000, 2*mem.PageSize)
	for _, f := range frames {
		if f.Refs() != 2 {
			t.Fatalf("frame refs after unmap = %d, want 2", f.Refs())
		}
	}
}

func TestDoubleMapRejected(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.MapAnon(0x1000, mem.PageSize, ProtRW); err == nil {
		t.Fatal("double map not rejected")
	}
	// Failed overlapping MapAnon must not leak frames.
	st := s.Physical().Stats()
	if st.Live != 1 {
		t.Fatalf("live frames = %d, want 1", st.Live)
	}
}

func TestUnalignedMapRejected(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1004, mem.PageSize, ProtRW); err == nil {
		t.Fatal("unaligned MapAnon accepted")
	}
	if err := s.MapFrames(0x1004, nil, ProtRW); err == nil {
		t.Fatal("unaligned MapFrames accepted")
	}
}

func TestUnalignedWordAccess(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1000, mem.PageSize, ProtRWX); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadWord(0x1002); err == nil {
		t.Fatal("unaligned load accepted")
	}
	if err := s.StoreWord(0x1001, 1); err == nil {
		t.Fatal("unaligned store accepted")
	}
	if _, err := s.FetchWord(0x1003); err == nil {
		t.Fatal("unaligned fetch accepted")
	}
}

func TestRegionsMerge(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1000, 3*mem.PageSize, ProtRX); err != nil {
		t.Fatal(err)
	}
	if err := s.MapAnon(0x4000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.MapAnon(0x9000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	regs := s.Regions()
	want := []Region{
		{0x1000, 0x4000, ProtRX},
		{0x4000, 0x5000, ProtRW},
		{0x9000, 0xa000, ProtRW},
	}
	if len(regs) != len(want) {
		t.Fatalf("got %d regions %v, want %d", len(regs), regs, len(want))
	}
	for i := range want {
		if regs[i] != want[i] {
			t.Fatalf("region %d = %+v, want %+v", i, regs[i], want[i])
		}
	}
}

func TestCloneRangeIsDeepCopy(t *testing.T) {
	phys := mem.NewPhysical(0)
	parent, child := New(phys), New(phys)
	if err := parent.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := parent.StoreWord(0x1000, 111); err != nil {
		t.Fatal(err)
	}
	if err := parent.CloneRange(child, 0x0, 0x10000000); err != nil {
		t.Fatal(err)
	}
	if err := child.StoreWord(0x1000, 222); err != nil {
		t.Fatal(err)
	}
	v, _ := parent.LoadWord(0x1000)
	if v != 111 {
		t.Fatalf("child write leaked into parent: %d", v)
	}
}

func TestShareRangeAliases(t *testing.T) {
	phys := mem.NewPhysical(0)
	parent, child := New(phys), New(phys)
	if err := parent.MapAnon(0x30000000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	parent.ShareRange(child, 0x30000000, 0x70000000)
	if err := child.StoreWord(0x30000000, 7); err != nil {
		t.Fatal(err)
	}
	v, _ := parent.LoadWord(0x30000000)
	if v != 7 {
		t.Fatalf("shared range not aliased: %d", v)
	}
}

func TestReleaseFreesFrames(t *testing.T) {
	phys := mem.NewPhysical(0)
	s := New(phys)
	if err := s.MapAnon(0x1000, 4*mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	s.Release()
	if st := phys.Stats(); st.Live != 0 {
		t.Fatalf("live frames after Release = %d, want 0", st.Live)
	}
}

func TestByteAccess(t *testing.T) {
	s := newSpace()
	if err := s.MapAnon(0x1000, mem.PageSize, ProtRW); err != nil {
		t.Fatal(err)
	}
	if err := s.StoreByte(0x1005, 0x5A); err != nil {
		t.Fatal(err)
	}
	b, err := s.LoadByte(0x1005)
	if err != nil || b != 0x5A {
		t.Fatalf("LoadByte = %x, %v", b, err)
	}
}

func TestProtString(t *testing.T) {
	cases := map[Prot]string{
		ProtNone: "---", ProtRead: "r--", ProtRW: "rw-", ProtRX: "r-x", ProtRWX: "rwx",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%v.String() = %q, want %q", uint8(p), p.String(), want)
		}
	}
}

// Property: a word stored at any aligned address in a mapped region reads
// back identically, big-endian, via both word and byte paths.
func TestWordRoundTripProperty(t *testing.T) {
	s := newSpace()
	const base, size = 0x10000, 16 * mem.PageSize
	if err := s.MapAnon(base, size, ProtRW); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, val uint32) bool {
		addr := uint32(base) + uint32(off)*4%(size-4)
		addr &^= 3
		if err := s.StoreWord(addr, val); err != nil {
			return false
		}
		got, err := s.LoadWord(addr)
		if err != nil || got != val {
			return false
		}
		b0, _ := s.LoadByte(addr)
		return b0 == byte(val>>24) // big-endian
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultErrorMessage(t *testing.T) {
	f := &Fault{Addr: 0x30100000, Access: AccessWrite, Unmapped: true}
	var err error = f
	if !errors.As(err, &f) {
		t.Fatal("errors.As failed on *Fault")
	}
	want := "addrspace: fault on write of 0x30100000 (unmapped page)"
	if f.Error() != want {
		t.Fatalf("Error() = %q, want %q", f.Error(), want)
	}
}
