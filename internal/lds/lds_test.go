package lds_test

import (
	"errors"
	"strings"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
)

const mainReturns42 = `
        .text
        .globl  main
main:   li      $v0, 42
        jr      $ra
`

func newSys(t *testing.T) *core.System {
	t.Helper()
	return core.NewSystem()
}

func TestLinkAndRunStaticPrivate(t *testing.T) {
	s := newSys(t)
	if _, err := s.Asm("/home/user/main.o", mainReturns42); err != nil {
		t.Fatal(err)
	}
	prog, err := s.BuildAndRun(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "main.o", Class: objfile.StaticPrivate}},
		LinkDir: "/home/user",
	}, 0, nil, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if prog.P.ExitCode != 42 {
		t.Fatalf("exit code = %d, want 42", prog.P.ExitCode)
	}
}

func TestStaticPrivateNewInstancePerProcess(t *testing.T) {
	// Table 1: static private modules get a new instance per process.
	s := newSys(t)
	s.Asm("/lib/counter.o", `
        .text
        .globl  main
main:   la      $t0, count
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
        .data
count:  .word   0
`)
	opts := &lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "counter.o", Class: objfile.StaticPrivate}},
		LinkDir: "/lib",
	}
	res, err := s.Link(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		prog, err := s.Launch(res.Image, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Run(10000); err != nil {
			t.Fatal(err)
		}
		// Every run starts from a fresh instance: count goes 0 -> 1.
		if prog.P.ExitCode != 1 {
			t.Fatalf("run %d exit code = %d, want 1 (private instance)", i, prog.P.ExitCode)
		}
	}
}

func TestStaticPublicSharedAcrossProcesses(t *testing.T) {
	// Table 1: static public modules have ONE persistent instance at a
	// globally-agreed address; writes are genuinely shared.
	s := newSys(t)
	s.Asm("/lib/hits.o", `
        .data
        .globl  hits
hits:   .word   0
`)
	s.Asm("/home/app/main.o", `
        .text
        .globl  main
        .extern hits
main:   la      $t0, hits
        lw      $v0, 0($t0)
        addiu   $v0, $v0, 1
        sw      $v0, 0($t0)
        jr      $ra
`)
	opts := &lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "hits.o", Class: objfile.StaticPublic},
		},
		LinkDir: "/home/app",
		CmdPath: []string{"/lib"},
	}
	res, err := s.Link(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The public instance exists as a file named by dropping ".o".
	st, err := s.FS.StatPath("/lib/hits")
	if err != nil {
		t.Fatalf("public module instance not created: %v", err)
	}
	for run := 1; run <= 3; run++ {
		prog, err := s.Launch(res.Image, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Run(10000); err != nil {
			t.Fatal(err)
		}
		if prog.P.ExitCode != run {
			t.Fatalf("run %d exit code = %d, want %d (persistent shared counter)", run, prog.P.ExitCode, run)
		}
	}
	// Relinking another program reuses the existing instance.
	res2, err := s.Link(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Image.Dyn.StaticPublic[0].Addr != st.Addr {
		t.Fatal("second link assigned a different address")
	}
}

func TestPublicModuleAtInodeAddress(t *testing.T) {
	s := newSys(t)
	s.Asm("/lib/tbl.o", ".data\n.globl t\nt: .word 5\n")
	res, err := s.Link(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "/lib/tbl.o", Class: objfile.StaticPublic}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := res.Image.Dyn.StaticPublic[0]
	st, _ := s.FS.StatPath(ref.Path)
	if ref.Addr != shmfs.AddrOf(st.Ino) {
		t.Fatalf("module at 0x%x, slot says 0x%x", ref.Addr, shmfs.AddrOf(st.Ino))
	}
	// The image's symbol table has `t` at the public address.
	addr, ok := res.Image.Lookup("t")
	if !ok || addr < ref.Addr || addr >= ref.Addr+shmfs.SlotSize {
		t.Fatalf("t at 0x%x, outside slot", addr)
	}
}

func TestMissingStaticModuleAborts(t *testing.T) {
	s := newSys(t)
	_, err := s.Link(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "nope.o", Class: objfile.StaticPrivate}},
	})
	if !errors.Is(err, lds.ErrStaticModuleMissing) {
		t.Fatalf("want ErrStaticModuleMissing, got %v", err)
	}
}

func TestMissingDynamicModuleWarns(t *testing.T) {
	s := newSys(t)
	s.Asm("/d/main.o", mainReturns42)
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "future.o", Class: objfile.DynamicPublic},
		},
		LinkDir: "/d",
	})
	if err != nil {
		t.Fatalf("link should continue despite missing dynamic module: %v", err)
	}
	var warned bool
	for _, w := range res.Warnings {
		if strings.Contains(w, "future.o") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no warning about missing dynamic module: %v", res.Warnings)
	}
	if len(res.Image.Dyn.DynModules) != 1 || res.Image.Dyn.DynModules[0].Name != "future.o" {
		t.Fatalf("dynamic module not recorded: %+v", res.Image.Dyn.DynModules)
	}
}

func TestSearchOrderFirstHitWins(t *testing.T) {
	// "If there is more than one static module with the same name, lds
	// uses the first one it finds": current dir before -L before env
	// before defaults.
	s := newSys(t)
	s.Asm("/cur/mod.o", ".text\n.globl main\nmain: li $v0, 1\n jr $ra\n")
	s.Asm("/cmd/mod.o", ".text\n.globl main\nmain: li $v0, 2\n jr $ra\n")
	s.Asm("/env/mod.o", ".text\n.globl main\nmain: li $v0, 3\n jr $ra\n")
	s.Asm("/def/mod.o", ".text\n.globl main\nmain: li $v0, 4\n jr $ra\n")
	try := func(opts lds.Options, want int) {
		t.Helper()
		opts.Output = "a.out"
		opts.Modules = []lds.Input{{Name: "mod.o", Class: objfile.StaticPrivate}}
		prog, err := s.BuildAndRun(&opts, 0, nil, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if prog.P.ExitCode != want {
			t.Fatalf("picked module returning %d, want %d", prog.P.ExitCode, want)
		}
	}
	try(lds.Options{LinkDir: "/cur", CmdPath: []string{"/cmd"}, EnvPath: []string{"/env"}, DefaultPath: []string{"/def"}}, 1)
	try(lds.Options{CmdPath: []string{"/cmd"}, EnvPath: []string{"/env"}, DefaultPath: []string{"/def"}}, 2)
	try(lds.Options{EnvPath: []string{"/env"}, DefaultPath: []string{"/def"}}, 3)
	try(lds.Options{DefaultPath: []string{"/def"}}, 4)
}

func TestRetainedRelocationsNoted(t *testing.T) {
	s := newSys(t)
	s.Asm("/d/main.o", `
        .text
        .globl  main
        .extern shared_fn
main:   jal     shared_fn
        jr      $ra
`)
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "svc.o", Class: objfile.DynamicPublic},
		},
		LinkDir: "/d",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Image.Relocs) == 0 {
		t.Fatal("no retained relocations")
	}
	if got := res.Image.UndefinedRelocs(); len(got) != 1 || got[0] != "shared_fn" {
		t.Fatalf("undefined = %v", got)
	}
	// A JUMP26 was retained, so a trampoline slot was reserved.
	if res.Image.TrampSize == 0 {
		t.Fatal("no trampoline area reserved for retained jump")
	}
}

func TestDuplicateStaticSymbolErrors(t *testing.T) {
	s := newSys(t)
	s.Asm("/d/a.o", ".data\n.globl x\nx: .word 1\n")
	s.Asm("/d/b.o", ".data\n.globl x\nx: .word 2\n")
	_, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "a.o", Class: objfile.StaticPrivate},
			{Name: "b.o", Class: objfile.StaticPrivate},
		},
		LinkDir: "/d",
	})
	if err == nil {
		t.Fatal("duplicate global definition accepted in flat static link")
	}
}

func TestGPModuleRejected(t *testing.T) {
	s := newSys(t)
	s.Asm("/d/gp.o", ".usesgp\n.text\n.globl main\nmain: jr $ra\n")
	_, err := s.Link(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "gp.o", Class: objfile.StaticPrivate}},
		LinkDir: "/d",
	})
	if err == nil || !strings.Contains(err.Error(), "gp") {
		t.Fatalf("gp module not rejected: %v", err)
	}
}

func TestInstancePath(t *testing.T) {
	if lds.InstancePath("/lib/shared1.o") != "/lib/shared1" {
		t.Fatal("InstancePath drops final .o")
	}
	if lds.InstancePath("/lib/data") != "/lib/data" {
		t.Fatal("InstancePath leaves non-.o names alone")
	}
}

func TestSearchDirsOrder(t *testing.T) {
	o := &lds.Options{
		LinkDir:     "/cwd",
		CmdPath:     []string{"/a", "/b"},
		EnvPath:     []string{"/c"},
		DefaultPath: []string{"/lib"},
	}
	got := lds.SearchDirs(o)
	want := []string{"/cwd", "/a", "/b", "/c", "/lib"}
	if len(got) != len(want) {
		t.Fatalf("dirs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dirs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestModuleTooLargeForSegment(t *testing.T) {
	s := newSys(t)
	// A template with bss larger than the 1 MB slot cannot become a
	// public module.
	obj := objfileBuilderHuge(t)
	if err := s.AddTemplate("/lib/huge.o", obj); err != nil {
		t.Fatal(err)
	}
	_, err := s.Link(&lds.Options{
		Output:  "a.out",
		Modules: []lds.Input{{Name: "/lib/huge.o", Class: objfile.StaticPublic}},
	})
	if err == nil || !strings.Contains(err.Error(), "1 MB") {
		t.Fatalf("oversized module accepted: %v", err)
	}
}

func objfileBuilderHuge(t *testing.T) *objfile.Object {
	t.Helper()
	o, err := objfile.NewBuilder("huge.o").Bss("big", shmfs.MaxFile+4096, true).Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}
