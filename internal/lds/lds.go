// Package lds implements Hemlock's static linker — in the real system a
// wrapper around the IRIX ld; here a stand-alone linker with the wrapper's
// full contract (section 3 of the paper):
//
//   - the four sharing classes are assigned module-by-module in the link
//     arguments;
//   - a new instance of every static private module is linked into the
//     load image;
//   - static public modules that do not yet exist are created in the
//     shared file system, next to their template and named by dropping the
//     final ".o", internally relocated to their unique, globally-agreed
//     virtual address; they are NOT copied into the load image;
//   - references to symbols in static modules are resolved; references to
//     symbols in dynamic modules are not — lds does not even insist that
//     those modules exist yet (it warns and continues); it saves the module
//     names and search-path information in the load image for ldl;
//   - relocation information that IRIX ld would discard is retained in an
//     explicit data structure (Image.Relocs), and a special crt0 start-up
//     module is linked in so that ldl gets a chance to run before main;
//   - static modules are located via the search strategy: (1) the current
//     directory, (2) the -L command-line path, (3) LD_LIBRARY_PATH, (4)
//     the default library directories.
package lds

import (
	"errors"
	"fmt"
	"strings"

	"hemlock/internal/isa"
	"hemlock/internal/layout"
	"hemlock/internal/linker"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
)

// Errors.
var (
	ErrStaticModuleMissing = errors.New("lds: cannot find static module")
	ErrPrivateIntoPublic   = errors.New("lds: public module references a private symbol")
	ErrImageTooLarge       = errors.New("lds: image exceeds private text region")
)

// Input names one module argument with its sharing class.
type Input struct {
	Name  string
	Class objfile.Class
}

// Options configures a link.
type Options struct {
	Output  string  // image name (informational)
	Modules []Input // the modules, in link order

	LinkDir     string   // directory in which static linking occurs (search step 1)
	CmdPath     []string // -L directories (search step 2)
	EnvPath     []string // LD_LIBRARY_PATH at static link time (step 3)
	DefaultPath []string // default library directories (step 4)

	UID int // identity used for shared-file-system access

	// JumpTables enables the SunOS-style lazy-linking optimisation the
	// paper plans to adopt: calls to symbols unknown at static link time
	// are routed through jump-table stubs that trap to ldl on first call,
	// instead of being resolved eagerly at start-up. Data references are
	// still resolved at load time, as in SunOS.
	JumpTables bool
}

// PLT stub geometry: break (traps to ldl), the stub's index word (for
// diagnostics), and a pad word, leaving exactly enough room for the
// trampoline (lui/ori/jr) the resolver patches in.
const pltStubSize = 12

// crt0Src is the alternative version of the Unix program start-up module:
// it gives ldl a chance to run prior to normal execution (the simulation
// runs ldl from the host side before starting the CPU) and converts main's
// return value into an exit system call.
const crt0Src = `
        .text
        .globl  __start
        .extern main
__start:
        jal     main
        move    $a0, $v0
        li      $v0, 1
        syscall
`

// Result carries the image plus the warnings lds printed.
type Result struct {
	Image    *objfile.Image
	Warnings []string
}

// Linker is a static linker bound to a shared file system, from which it
// reads templates and in which it creates public module instances.
type Linker struct {
	FS *shmfs.FS
}

// New returns a static linker over fs.
func New(fs *shmfs.FS) *Linker { return &Linker{FS: fs} }

// SearchDirs returns the static-link search order for the given options.
func SearchDirs(o *Options) []string {
	dirs := make([]string, 0, 1+len(o.CmdPath)+len(o.EnvPath)+len(o.DefaultPath))
	if o.LinkDir != "" {
		dirs = append(dirs, o.LinkDir)
	}
	dirs = append(dirs, o.CmdPath...)
	dirs = append(dirs, o.EnvPath...)
	dirs = append(dirs, o.DefaultPath...)
	return dirs
}

// FindModule locates a module template by name along dirs. Absolute names
// resolve directly. It returns the full path of the first hit.
func (l *Linker) FindModule(name string, dirs []string) (string, bool) {
	if strings.HasPrefix(name, "/") {
		if st, err := l.FS.StatPath(name); err == nil && st.Type == shmfs.TypeFile {
			return shmfs.Clean(name), true
		}
		return "", false
	}
	for _, d := range dirs {
		p := shmfs.Clean(d + "/" + name)
		if st, err := l.FS.StatPath(p); err == nil && st.Type == shmfs.TypeFile {
			return p, true
		}
	}
	return "", false
}

// InstancePath derives the public-module instance path from its template
// path: same directory, final ".o" dropped.
func InstancePath(templatePath string) string {
	return strings.TrimSuffix(templatePath, ".o")
}

// loadTemplate reads and decodes a HEMO template.
func (l *Linker) loadTemplate(path string, uid int) (*objfile.Object, error) {
	data, err := l.FS.ReadFile(path, uid)
	if err != nil {
		return nil, fmt.Errorf("lds: reading %s: %w", path, err)
	}
	o, err := objfile.DecodeBytes(data)
	if err != nil {
		return nil, fmt.Errorf("lds: %s: %w", path, err)
	}
	return o, nil
}

// CreatePublicInstance creates (if absent) the persistent instance of a
// public module from its template: a file next to the template named by
// dropping ".o", internally relocated to the address of its inode slot.
// It returns the instance path, its base address, and whether it was
// created by this call.
func (l *Linker) CreatePublicInstance(templatePath string, uid int) (string, uint32, bool, error) {
	inst := InstancePath(templatePath)
	if st, err := l.FS.StatPath(inst); err == nil {
		return inst, st.Addr, false, nil
	}
	obj, err := l.loadTemplate(templatePath, uid)
	if err != nil {
		return "", 0, false, err
	}
	st, err := l.FS.Create(inst, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, uid)
	if err != nil {
		return "", 0, false, fmt.Errorf("lds: creating public module %s: %w", inst, err)
	}
	p, err := linker.Place(obj, st.Addr)
	if err != nil {
		l.FS.Unlink(inst, uid)
		return "", 0, false, err
	}
	if p.Size() > shmfs.MaxFile {
		l.FS.Unlink(inst, uid)
		return "", 0, false, fmt.Errorf("lds: module %s (%d bytes) exceeds the 1 MB segment limit", obj.Name, p.Size())
	}
	img := make([]byte, p.Size())
	copy(img, p.Image())
	if _, err := p.RelocateInternal(&linker.BytesPatcher{Base: st.Addr, B: img}); err != nil {
		l.FS.Unlink(inst, uid)
		return "", 0, false, err
	}
	if _, err := l.FS.WriteAt(inst, 0, img, uid); err != nil {
		l.FS.Unlink(inst, uid)
		return "", 0, false, err
	}
	return inst, st.Addr, true, nil
}

// Link performs a static link.
func (l *Linker) Link(o *Options) (*Result, error) {
	res := &Result{}
	dirs := SearchDirs(o)

	crt0, err := isa.Assemble("crt0.o", crt0Src)
	if err != nil {
		return nil, fmt.Errorf("lds: internal crt0: %w", err)
	}

	// Static modules form a tree: the command-line inputs are the roots,
	// and each module's own list (.dep) pulls in children, located along
	// the module's own search path first — scoped STATIC linking, the
	// "fully-functional static linker" the paper promises to replace its
	// ld wrapper with. Private children are new instances per parent
	// (Figure 2 shows two separate G.o boxes); public children are the
	// single persistent instance.
	type node struct {
		obj      *objfile.Object
		path     string
		parent   *node
		children []*node          // private static children, in dep order
		pubs     []*linker.Placed // public static deps placed at this scope
		placed   *linker.Placed
	}
	var allNodes []*node
	root := &node{} // pseudo-node: the program; "children" are the inputs
	crt0Node := &node{obj: crt0, path: "(crt0)", parent: root}
	root.children = append(root.children, crt0Node)
	allNodes = append(allNodes, crt0Node)

	dyn := objfile.DynInfo{
		LinkDir:     o.LinkDir,
		CmdPath:     append([]string(nil), o.CmdPath...),
		EnvPath:     append([]string(nil), o.EnvPath...),
		DefaultPath: append([]string(nil), o.DefaultPath...),
	}

	// scopeDirs: a module's own search path, then its ancestors', then the
	// command-line search order.
	scopeDirs := func(n *node) []string {
		var out []string
		for s := n; s != nil; s = s.parent {
			if s.obj != nil {
				out = append(out, s.obj.SearchPath...)
			}
		}
		return append(out, dirs...)
	}

	// placePublic creates (if needed) a public instance and returns it
	// placed at its fixed address.
	placePublic := func(tmplPath string) (*linker.Placed, error) {
		inst, addr, _, err := l.CreatePublicInstance(tmplPath, o.UID)
		if err != nil {
			return nil, err
		}
		obj, err := l.loadTemplate(tmplPath, o.UID)
		if err != nil {
			return nil, err
		}
		pp, err := linker.Place(obj, addr)
		if err != nil {
			return nil, err
		}
		dyn.StaticPublic = append(dyn.StaticPublic, objfile.StaticPublicRef{
			Name:     obj.Name,
			Path:     inst,
			Template: tmplPath,
			Addr:     addr,
		})
		return pp, nil
	}

	const maxStaticDepth = 32
	var expand func(n *node, depth int) error
	expand = func(n *node, depth int) error {
		if depth > maxStaticDepth {
			return fmt.Errorf("lds: static module list deeper than %d (cycle?) at %s", maxStaticDepth, n.path)
		}
		for _, dep := range n.obj.Deps {
			if !dep.Class.Static() {
				continue // dynamic deps are ldl's job, driven by the module's own metadata
			}
			path, ok := l.FindModule(dep.Name, scopeDirs(n))
			if !ok {
				return fmt.Errorf("%w: %s (needed by %s)", ErrStaticModuleMissing, dep.Name, n.obj.Name)
			}
			if dep.Class == objfile.StaticPublic {
				pp, err := placePublic(path)
				if err != nil {
					return err
				}
				n.pubs = append(n.pubs, pp)
				continue
			}
			obj, err := l.loadTemplate(path, o.UID)
			if err != nil {
				return err
			}
			child := &node{obj: obj, path: path, parent: n}
			n.children = append(n.children, child)
			allNodes = append(allNodes, child)
			if err := expand(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}

	for _, in := range o.Modules {
		switch in.Class {
		case objfile.StaticPrivate, objfile.StaticPublic:
			path, ok := l.FindModule(in.Name, dirs)
			if !ok {
				// "Lds aborts linking if it cannot find a given static
				// module."
				return nil, fmt.Errorf("%w: %s", ErrStaticModuleMissing, in.Name)
			}
			if in.Class == objfile.StaticPublic {
				pp, err := placePublic(path)
				if err != nil {
					return nil, err
				}
				root.pubs = append(root.pubs, pp)
				continue
			}
			obj, err := l.loadTemplate(path, o.UID)
			if err != nil {
				return nil, err
			}
			n := &node{obj: obj, path: path, parent: root}
			root.children = append(root.children, n)
			allNodes = append(allNodes, n)
			if err := expand(n, 1); err != nil {
				return nil, err
			}
		case objfile.DynamicPrivate, objfile.DynamicPublic:
			// "It issues a warning message and continues linking if it
			// cannot find a given dynamic module."
			if _, ok := l.FindModule(in.Name, dirs); !ok {
				res.Warnings = append(res.Warnings,
					fmt.Sprintf("lds: warning: dynamic module %s does not exist yet", in.Name))
			}
			dyn.DynModules = append(dyn.DynModules, objfile.ModuleRef{Name: in.Name, Class: in.Class})
		}
	}

	// Lay out every private static module (roots and scoped children)
	// sequentially from TextBase.
	cursor := layout.TextBase
	var placed []*linker.Placed
	for _, n := range allNodes {
		p, err := linker.Place(n.obj, cursor)
		if err != nil {
			return nil, err
		}
		n.placed = p
		placed = append(placed, p)
		cursor = align16(cursor + p.Size())
		if cursor > layout.TextLimit {
			return nil, fmt.Errorf("%w: %d bytes", ErrImageTooLarge, cursor-layout.TextBase)
		}
	}
	// Reserve an image-level trampoline area for retained relocations that
	// ldl will resolve at run time (targets in the shared region cannot be
	// reached by a 26-bit jump from here).
	trampBase := cursor
	var trampSize uint32

	// The flat (root) symbol table: exports of the root-level modules
	// only. Children's exports stay inside their scope — that is the
	// point of scoped linking.
	table := linker.NewTable()
	for _, n := range root.children {
		if err := table.AddExports(n.placed); err != nil {
			return nil, err
		}
	}
	for _, pp := range root.pubs {
		if err := table.AddExports(pp); err != nil {
			return nil, err
		}
	}

	// Scoped resolution for a module: its own children and public deps
	// first, then its ancestors', then the flat table at the root.
	resolverFor := func(n *node) linker.Resolver {
		return func(name string) (uint32, bool) {
			for s := n; s != nil; s = s.parent {
				for _, c := range s.children {
					if addr, ok := exportOf(c.placed, name); ok {
						return addr, true
					}
				}
				for _, pp := range s.pubs {
					if addr, ok := exportOf(pp, name); ok {
						return addr, true
					}
				}
				if s == root {
					if addr, ok := table.Resolve(name); ok {
						return addr, true
					}
				}
			}
			return 0, false
		}
	}

	// Build the image bytes and resolve what can be resolved now.
	img := make([]byte, cursor-layout.TextBase)
	for _, p := range placed {
		copy(img[p.Base-layout.TextBase:], p.Image())
	}
	pat := &linker.BytesPatcher{Base: layout.TextBase, B: img}
	var retained []objfile.ImageReloc
	for _, n := range allNodes {
		p := n.placed
		pending, err := p.ApplyRelocs(nil, resolverFor(n), pat)
		if err != nil {
			return nil, err
		}
		for _, r := range pending {
			sym := p.Obj.Symbols[r.Sym]
			retained = append(retained, objfile.ImageReloc{
				Addr:   p.SiteAddr(&r),
				Name:   sym.Name,
				Type:   r.Type,
				Addend: r.Addend,
			})
			if r.Type == objfile.RelJump26 {
				trampSize += isa.TrampolineSize
			}
		}
	}
	// Jump tables: route retained calls through PLT stubs appended to the
	// image text, so ldl need not resolve them at start-up at all.
	var plt []objfile.ImageSym
	if o.JumpTables {
		stubFor := map[string]uint32{}
		var kept []objfile.ImageReloc
		var pltBytes []byte
		for _, r := range retained {
			if r.Type != objfile.RelJump26 || r.Addend != 0 {
				kept = append(kept, r)
				continue
			}
			stub, ok := stubFor[r.Name]
			if !ok {
				stub = cursor + uint32(len(pltBytes))
				stubFor[r.Name] = stub
				idx := uint32(len(plt))
				words := []uint32{
					isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0),
					idx,
					isa.Nop,
				}
				for _, w := range words {
					pltBytes = append(pltBytes, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
				}
				plt = append(plt, objfile.ImageSym{Name: r.Name, Addr: stub, Size: pltStubSize})
			}
			w, err := pat.LoadWord(r.Addr)
			if err != nil {
				return nil, err
			}
			if !isa.JumpReach(r.Addr, stub) {
				return nil, fmt.Errorf("lds: PLT stub at 0x%08x unreachable from 0x%08x", stub, r.Addr)
			}
			if err := pat.StoreWord(r.Addr, isa.PatchJump26(w, stub)); err != nil {
				return nil, err
			}
			trampSize -= isa.TrampolineSize // the stub replaces the tramp slot
		}
		retained = kept
		img = append(img, pltBytes...)
		cursor += uint32(len(pltBytes))
		trampBase = cursor
		pat.B = img
	}

	if len(retained) > 0 {
		var names []string
		seen := map[string]bool{}
		for _, r := range retained {
			if !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("lds: note: %d reference(s) retained for run-time linking: %s",
				len(retained), strings.Join(names, ", ")))
	}
	if len(plt) > 0 {
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("lds: note: %d call(s) routed through jump-table stubs", len(plt)))
	}

	entry, ok := placed[0].AddrOf("__start")
	if !ok {
		return nil, fmt.Errorf("lds: crt0 has no __start")
	}
	res.Image = &objfile.Image{
		Name:      o.Output,
		Entry:     entry,
		TextBase:  layout.TextBase,
		Text:      img,
		DataBase:  layout.TextBase + uint32(len(img)),
		BssBase:   layout.TextBase + uint32(len(img)),
		TrampBase: trampBase,
		TrampSize: trampSize,
		Symbols:   table.Symbols(),
		Relocs:    retained,
		Dyn:       dyn,
		PLT:       plt,
	}
	// The image must also cover its trampoline area.
	res.Image.BssBase = trampBase
	res.Image.BssSize = trampSize
	return res, nil
}

func align16(v uint32) uint32 { return (v + 15) &^ 15 }

// exportOf returns the address of a global, defined symbol exported by a
// placed module.
func exportOf(p *linker.Placed, name string) (uint32, bool) {
	i := p.Obj.SymbolIndex(name)
	if i < 0 {
		return 0, false
	}
	s := p.Obj.Symbols[i]
	if !s.Global || !s.Defined() {
		return 0, false
	}
	return p.SymAddr(i)
}
