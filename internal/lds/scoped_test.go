package lds_test

import (
	"errors"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

// Scoped STATIC linking: the §6 fix the paper promises ("scoped linking is
// currently available in Hemlock only for dynamic modules. We plan to
// correct this deficiency in a new, fully-functional static linker").
// These tests run the Figure 2 shapes entirely at static link time.

// TestScopedStaticTwoEos: two different static modules both named e.o,
// pulled in by b.o and c.o through their own search paths, resolve without
// a naming conflict — a flat static link would abort on the duplicate.
func TestScopedStaticTwoEos(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/libB/e.o", ".data\n.globl evalue\nevalue: .word 111\n")
	s.Asm("/libC/e.o", ".data\n.globl evalue\nevalue: .word 222\n")
	s.Asm("/lib/b.o", `
        .dep    e.o, static-private
        .searchpath /libB
        .data
        .globl  b_eptr
b_eptr: .word evalue
`)
	s.Asm("/lib/c.o", `
        .dep    e.o, static-private
        .searchpath /libC
        .data
        .globl  c_eptr
c_eptr: .word evalue
`)
	s.Asm("/bin/main.o", `
        .text
        .globl  main
        .extern b_eptr
        .extern c_eptr
main:   la      $t0, b_eptr
        lw      $t0, 0($t0)     # -> B's evalue
        lw      $t1, 0($t0)     # 111
        la      $t0, c_eptr
        lw      $t0, 0($t0)     # -> C's evalue
        lw      $t2, 0($t0)     # 222
        addu    $v0, $t1, $t2   # 333 proves both bound correctly
        jr      $ra
`)
	pg, err := s.BuildAndRun(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "b.o", Class: objfile.StaticPrivate},
			{Name: "c.o", Class: objfile.StaticPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	}, 0, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 333 {
		t.Fatalf("exit = %d, want 333 (scoped bindings)", pg.P.ExitCode)
	}
}

// TestScopedStaticPrivateInstancesDistinct: one g.o template, two static
// parents, two instances (the two G.o boxes in Figure 2).
func TestScopedStaticPrivateInstancesDistinct(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/g.o", ".data\n.globl gval\ngval: .word 9\n")
	s.Asm("/lib/d.o", `
        .dep    g.o, static-private
        .searchpath /lib
        .data
        .globl  d_gptr
d_gptr: .word gval
`)
	s.Asm("/lib/f.o", `
        .dep    g.o, static-private
        .searchpath /lib
        .data
        .globl  f_gptr
f_gptr: .word gval
`)
	s.Asm("/bin/main.o", trivialScopedMain)
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "d.o", Class: objfile.StaticPrivate},
			{Name: "f.o", Class: objfile.StaticPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	dp, _ := pg.Var("d_gptr")
	fp, _ := pg.Var("f_gptr")
	if dp == nil || fp == nil {
		t.Fatal("pointers unresolved")
	}
	da, _ := dp.Load()
	fa, _ := fp.Load()
	if da == 0 || fa == 0 {
		t.Fatal("scoped static refs unresolved")
	}
	if da == fa {
		t.Fatal("two static private instances share one address")
	}
	// Writes through one do not alias the other.
	pg.VarAt("", da).Store(77)
	if v, _ := pg.VarAt("", fa).Load(); v == 77 {
		t.Fatal("instances alias")
	}
}

const trivialScopedMain = `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`

// TestScopedStaticChildNotGlobal: a child's exports do not leak into the
// flat namespace, so the main image cannot bind to them.
func TestScopedStaticChildNotGlobal(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/sub/inner.o", ".data\n.globl inner_sym\ninner_sym: .word 1\n")
	s.Asm("/lib/outer.o", `
        .dep    inner.o, static-private
        .searchpath /sub
        .data
        .globl  outer_ok
outer_ok: .word inner_sym
`)
	s.Asm("/bin/main.o", `
        .text
        .globl  main
        .extern inner_sym
main:   la      $t0, inner_sym
        move    $v0, $t0
        jr      $ra
`)
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "outer.o", Class: objfile.StaticPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// main's reference to inner_sym stays retained: the child's export is
	// visible only inside outer's scope.
	var found bool
	for _, r := range res.Image.Relocs {
		if r.Name == "inner_sym" {
			found = true
		}
	}
	if !found {
		t.Fatal("child export leaked into the root namespace")
	}
}

// TestScopedStaticChain: a dependency chain resolved at static link time.
func TestScopedStaticChain(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/leaf.o", ".data\n.globl leafv\nleafv: .word 5\n")
	s.Asm("/lib/mid.o", `
        .dep    leaf.o, static-private
        .searchpath /lib
        .data
        .globl  midptr
midptr: .word leafv
`)
	s.Asm("/lib/top.o", `
        .dep    mid.o, static-private
        .searchpath /lib
        .data
        .globl  topptr
topptr: .word midptr
`)
	s.Asm("/bin/main.o", `
        .text
        .globl  main
        .extern topptr
main:   la      $t0, topptr
        lw      $t0, 0($t0)     # -> midptr
        lw      $t0, 0($t0)     # -> leafv
        lw      $v0, 0($t0)     # 5
        jr      $ra
`)
	pg, err := s.BuildAndRun(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "top.o", Class: objfile.StaticPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	}, 0, nil, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 5 {
		t.Fatalf("exit = %d, want 5 (three-level static chain)", pg.P.ExitCode)
	}
}

// TestScopedStaticMissingDepAborts: static children inherit the abort-on-
// missing rule.
func TestScopedStaticMissingDepAborts(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/broken.o", `
        .dep    ghost.o, static-private
        .data
x:      .word 1
`)
	s.Asm("/bin/main.o", trivialScopedMain)
	_, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "broken.o", Class: objfile.StaticPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if !errors.Is(err, lds.ErrStaticModuleMissing) {
		t.Fatalf("missing static dep: %v", err)
	}
}

// TestScopedStaticCycleDetected: a self-referential module list terminates
// with a clear error rather than expanding forever.
func TestScopedStaticCycleDetected(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/loop.o", `
        .dep    loop.o, static-private
        .searchpath /lib
        .data
x:      .word 1
`)
	s.Asm("/bin/main.o", trivialScopedMain)
	_, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "loop.o", Class: objfile.StaticPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err == nil {
		t.Fatal("infinite static expansion not caught")
	}
}

// TestScopedStaticPublicDep: a static module pulls in a static PUBLIC
// dependency: one persistent instance, visible in its parent's scope.
func TestScopedStaticPublicDep(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/table.o", ".data\n.globl shared_tbl\nshared_tbl: .word 42\n")
	s.Asm("/lib/user1.o", `
        .dep    table.o, static-public
        .searchpath /lib
        .data
        .globl  u1ptr
u1ptr:  .word shared_tbl
`)
	s.Asm("/lib/user2.o", `
        .dep    table.o, static-public
        .searchpath /lib
        .data
        .globl  u2ptr
u2ptr:  .word shared_tbl
`)
	s.Asm("/bin/main.o", trivialScopedMain)
	res, err := s.Link(&lds.Options{
		Output: "a.out",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "user1.o", Class: objfile.StaticPrivate},
			{Name: "user2.o", Class: objfile.StaticPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := pg.Var("u1ptr")
	p2, _ := pg.Var("u2ptr")
	a1, _ := p1.Load()
	a2, _ := p2.Load()
	if a1 == 0 || a1 != a2 {
		t.Fatalf("public dep not shared: 0x%x vs 0x%x", a1, a2)
	}
	if v, _ := pg.VarAt("", a1).Load(); v != 42 {
		t.Fatalf("shared_tbl = %d", v)
	}
}
