package netshm

import (
	"bytes"
	"testing"
)

func TestMsgRoundTrip(t *testing.T) {
	cases := []*msg{
		{typ: msgUpdate, path: "/lib/whod", base: 0x30007000, size: 9000, epoch: 2, gen: 42, tv: 7,
			origin: "vaxa", stick: 99, lease: 64,
			pages: []page{
				{idx: 0, gen: 42, full: bytes.Repeat([]byte{0xAB}, PageSize)},
				{idx: 2, gen: 41, deltas: []rng{{off: 12, data: []byte{1, 2, 3}}, {off: 4000, data: []byte{9}}}},
			}},
		{typ: msgSync, path: "/x", base: 4, size: 0, gen: 1, flag: flagFull},
		{typ: msgAck, path: "/lib/whod", base: 0x30007000, epoch: 1, gen: 7},
		{typ: msgPull, path: "/lib/whod", gen: 0},
		{typ: msgAnnounce, path: "/lib/whod", base: 0x30007000, size: 512, epoch: 3, gen: 3, tv: 2, lease: 64},
		{typ: msgMigrate, path: "/lib/whod", base: 0x30007000, size: 512, epoch: 4, gen: 9, tv: 2,
			home: "vaxb", pages: []page{{idx: 0, gen: 9, full: []byte{1, 2}}}},
		{typ: msgMigrateAck, path: "/lib/whod", epoch: 4},
		{typ: msgLeaseRenew, path: "/lib/whod", epoch: 4, gen: 9},
		{typ: msgLeaseGrant, path: "/lib/whod", epoch: 4, gen: 9, lease: 128},
		{typ: msgWriteFwd, path: "/lib/whod", epoch: 4,
			pages: []page{{idx: 1, deltas: []rng{{off: 0, data: []byte{5, 5}}}}}},
		{typ: msgTxnFwd, path: "/lib/whod", txid: 31, payload: []byte("txn body")},
		{typ: msgTxnResult, path: "/lib/whod", txid: 31, flag: flagCommitted},
		{typ: msgApp, payload: []byte("status packet")},
		{typ: msgApp}, // empty everything
	}
	for _, m := range cases {
		got, err := decodeMsg(m.encode())
		if err != nil {
			t.Fatalf("type %d: decode: %v", m.typ, err)
		}
		if got.typ != m.typ || got.flag != m.flag || got.path != m.path || got.base != m.base ||
			got.size != m.size || got.epoch != m.epoch || got.gen != m.gen || got.tv != m.tv ||
			got.origin != m.origin || got.stick != m.stick || got.home != m.home ||
			got.lease != m.lease || got.txid != m.txid {
			t.Fatalf("type %d: header mismatch: %+v != %+v", m.typ, got, m)
		}
		if len(got.pages) != len(m.pages) {
			t.Fatalf("type %d: %d pages, want %d", m.typ, len(got.pages), len(m.pages))
		}
		for i := range m.pages {
			gp, wp := got.pages[i], m.pages[i]
			if gp.idx != wp.idx || gp.gen != wp.gen {
				t.Fatalf("type %d: page %d header mismatch", m.typ, i)
			}
			if (gp.full == nil) != (wp.full == nil) || !bytes.Equal(gp.full, wp.full) {
				t.Fatalf("type %d: page %d full-content mismatch", m.typ, i)
			}
			if len(gp.deltas) != len(wp.deltas) {
				t.Fatalf("type %d: page %d has %d deltas, want %d", m.typ, i, len(gp.deltas), len(wp.deltas))
			}
			for j := range wp.deltas {
				if gp.deltas[j].off != wp.deltas[j].off || !bytes.Equal(gp.deltas[j].data, wp.deltas[j].data) {
					t.Fatalf("type %d: page %d delta %d mismatch", m.typ, i, j)
				}
			}
		}
		if !bytes.Equal(got.payload, m.payload) {
			t.Fatalf("type %d: payload mismatch", m.typ)
		}
	}
}

// TestMsgEmptyFullPageStaysFull: an empty full page must round-trip as
// full (not degrade into "no content") — apply semantics differ.
func TestMsgEmptyFullPageStaysFull(t *testing.T) {
	m := &msg{typ: msgSync, path: "/p", pages: []page{{idx: 0, full: []byte{}}}}
	got, err := decodeMsg(m.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.pages[0].full == nil {
		t.Fatal("empty full page decoded as delta page")
	}
}

func TestMsgDecodeRejectsGarbage(t *testing.T) {
	one := &msg{typ: msgUpdate, path: "/p", base: 8, size: 16, gen: 1,
		pages: []page{{idx: 0, gen: 1, full: []byte{9, 9}}}}
	good := one.encode()

	bad := map[string][]byte{
		"empty":        nil,
		"runt":         {wireMagic, wireVersion},
		"wrong magic":  append([]byte{'X'}, good[1:]...),
		"wrong vers":   append([]byte{wireMagic, 99}, good[2:]...),
		"zero type":    {wireMagic, wireVersion, 0, 0},
		"unknown type": {wireMagic, wireVersion, msgTxnResult + 1, 0},
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0),
	}
	// An implausible page count must be rejected before allocating. The
	// page-count field sits where a pageless encoding ends, minus the
	// trailing page-count + payload-length words.
	pageCountOff := len((&msg{typ: one.typ, path: one.path, base: one.base,
		size: one.size, gen: one.gen}).encode()) - 8
	huge := append([]byte{}, good...)
	huge[pageCountOff] = 0xFF
	bad["huge page count"] = huge

	// A delta page with an implausible delta count likewise.
	dm := &msg{typ: msgUpdate, path: "/p", pages: []page{{idx: 0, deltas: []rng{{off: 0, data: []byte{1}}}}}}
	db := dm.encode()
	db[pageCountOff+4+4+8+1] = 0xFF // delta-count hi byte, after idx+gen+kind
	bad["huge delta count"] = db

	// An unknown page kind must error.
	kb := one.encode()
	kb[pageCountOff+4+4+8] = 7
	bad["unknown page kind"] = kb

	for name, b := range bad {
		if _, err := decodeMsg(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Every truncation point must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := decodeMsg(good[:i]); err == nil {
			t.Errorf("truncation at %d decoded without error", i)
		}
	}
}
