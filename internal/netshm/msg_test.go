package netshm

import (
	"bytes"
	"testing"
)

func TestMsgRoundTrip(t *testing.T) {
	cases := []*msg{
		{typ: msgUpdate, path: "/lib/whod", base: 0x30007000, size: 9000, gen: 42,
			origin: "vaxa", stick: 99,
			pages: []page{{idx: 0, data: bytes.Repeat([]byte{0xAB}, PageSize)}, {idx: 2, data: []byte{1, 2, 3}}}},
		{typ: msgSync, path: "/x", base: 4, size: 0, gen: 1},
		{typ: msgAck, path: "/lib/whod", base: 0x30007000, gen: 7},
		{typ: msgPull, path: "/lib/whod", gen: 0},
		{typ: msgAnnounce, path: "/lib/whod", base: 0x30007000, size: 512, gen: 3},
		{typ: msgApp, payload: []byte("status packet")},
		{typ: msgApp}, // empty everything
	}
	for _, m := range cases {
		got, err := decodeMsg(m.encode())
		if err != nil {
			t.Fatalf("type %d: decode: %v", m.typ, err)
		}
		if got.typ != m.typ || got.path != m.path || got.base != m.base ||
			got.size != m.size || got.gen != m.gen ||
			got.origin != m.origin || got.stick != m.stick {
			t.Fatalf("type %d: header mismatch: %+v != %+v", m.typ, got, m)
		}
		if len(got.pages) != len(m.pages) {
			t.Fatalf("type %d: %d pages, want %d", m.typ, len(got.pages), len(m.pages))
		}
		for i := range m.pages {
			if got.pages[i].idx != m.pages[i].idx || !bytes.Equal(got.pages[i].data, m.pages[i].data) {
				t.Fatalf("type %d: page %d mismatch", m.typ, i)
			}
		}
		if !bytes.Equal(got.payload, m.payload) {
			t.Fatalf("type %d: payload mismatch", m.typ)
		}
	}
}

func TestMsgDecodeRejectsGarbage(t *testing.T) {
	good := (&msg{typ: msgUpdate, path: "/p", base: 8, size: 16, gen: 1,
		pages: []page{{idx: 0, data: []byte{9, 9}}}}).encode()

	bad := map[string][]byte{
		"empty":        nil,
		"runt":         {wireMagic, wireVersion},
		"wrong magic":  append([]byte{'X'}, good[1:]...),
		"wrong vers":   append([]byte{wireMagic, 99}, good[2:]...),
		"zero type":    {wireMagic, wireVersion, 0},
		"unknown type": {wireMagic, wireVersion, msgApp + 1},
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte{}, good...), 0),
	}
	// An implausible page count must be rejected before allocating.
	huge := append([]byte{}, good...)
	huge[3+2+2+4+4+8+2+8+3] = 0xFF // stamp the page-count field enormous
	bad["huge page count"] = huge

	for name, b := range bad {
		if _, err := decodeMsg(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Every truncation point must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := decodeMsg(good[:i]); err == nil {
			t.Errorf("truncation at %d decoded without error", i)
		}
	}
}
