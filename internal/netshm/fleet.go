package netshm

import (
	"fmt"
	"os"
	"sync/atomic"

	"hemlock/internal/core"
	"hemlock/internal/netsim"
	"hemlock/internal/obsv"
)

// Fleet is a set of simulated machines sharing one LAN, one virtual
// clock, and one obsv registry. It is the deterministic test and bench
// driver: Tick advances the clock by one and steps every machine in a
// fixed order, so a fleet run is a pure function of the workload and the
// network's Drop model.
type Fleet struct {
	Net *netsim.Network
	Reg *obsv.Registry
	Cfg Config

	// Trace is the fleet-wide tracer: every machine emits its protocol
	// events (write, push, apply, and the write→apply flow pairs) here,
	// stamped with the machine's fleet index as the event PID and the
	// virtual clock as the timestamp (1 tick = 1 µs in the Chrome export),
	// so one sink captures a causally-ordered cross-machine timeline.
	Trace *obsv.Tracer

	clk      atomic.Uint64
	order    []string
	nodes    map[string]*Node
	nextSlot int // fleet-coordinated inode slot counter for PublishSharded
}

// NewFleet wires a fleet onto a network. Protocol and network counters
// land in the fleet's registry. HEMLOCK_NETSHM_DELTA=0 forces the
// pre-v3 full-page replication path fleet-wide (the delta-correctness
// differential runs both).
func NewFleet(net *netsim.Network, cfg Config) *Fleet {
	cfg = cfg.withDefaults()
	switch os.Getenv("HEMLOCK_NETSHM_DELTA") {
	case "0", "off", "false", "no":
		cfg.FullPage = true
	}
	f := &Fleet{
		Net:      net,
		Reg:      obsv.NewRegistry(),
		Cfg:      cfg,
		nodes:    map[string]*Node{},
		nextSlot: 8,
	}
	f.Trace = obsv.NewTracer(func() int64 { return int64(f.clk.Load()) * 1000 })
	net.Observe(f.Reg)
	return f
}

// Add boots one machine into the fleet: attaches it to the LAN and gives
// it a netshm endpoint over the supplied Hemlock system.
func (f *Fleet) Add(name string, sys *core.System) *Node {
	if _, ok := f.nodes[name]; ok {
		panic(fmt.Sprintf("netshm: fleet already has machine %q", name))
	}
	n := &Node{
		name:  name,
		sys:   sys,
		net:   f.Net,
		nd:    f.Net.Attach(name),
		fleet: f,
		cfg:   f.Cfg,
		idx:   len(f.order),
		segs:  map[string]*seg{},
	}
	n.wire(f.Reg)
	f.nodes[name] = n
	f.order = append(f.order, name)
	return n
}

// Node returns a machine by name, or nil.
func (f *Fleet) Node(name string) *Node { return f.nodes[name] }

// Machines returns the machine names in Add order: the track order a
// merged fleet Chrome trace uses (a machine's fleet index is its event
// PID).
func (f *Fleet) Machines() []string {
	return append([]string(nil), f.order...)
}

// Nodes returns the machines in their deterministic step order.
func (f *Fleet) Nodes() []*Node {
	out := make([]*Node, 0, len(f.order))
	for _, name := range f.order {
		out = append(out, f.nodes[name])
	}
	return out
}

// Now reads the virtual clock.
func (f *Fleet) Now() uint64 { return f.clk.Load() }

// Tick advances the virtual clock, ages the network (maturing any
// datagrams held by its DelayTicks knob), and runs one protocol step on
// every machine, in Add order.
func (f *Fleet) Tick() {
	f.clk.Add(1)
	f.Net.Advance()
	for _, name := range f.order {
		f.nodes[name].Step()
	}
}

// Run executes n ticks.
func (f *Fleet) Run(n int) {
	for i := 0; i < n; i++ {
		f.Tick()
	}
}

// Converged reports whether the fleet agrees on the segment: exactly one
// machine claims the home role, no migration is in flight, and every
// machine has applied the home's (epoch, generation, version-clock)
// triple. During a migration two machines may briefly both claim the home
// — that window reports not-converged until the handshake (or its abort
// path) heals it.
func (f *Fleet) Converged(path string) bool {
	var wantE, wantG, wantT uint64
	homes, migrating := 0, false
	for _, n := range f.nodes {
		n.mu.Lock()
		s, ok := n.segs[path]
		if ok && s.isHome {
			homes++
			if s.migrating != "" {
				migrating = true
			}
			if homes == 1 || s.epoch > wantE {
				wantE, wantG, wantT = s.epoch, s.gen, s.tv
			}
		}
		n.mu.Unlock()
	}
	if homes != 1 || migrating {
		return false
	}
	for _, n := range f.nodes {
		n.mu.Lock()
		s, ok := n.segs[path]
		stale := !ok || s.epoch != wantE || s.gen != wantG || s.tv != wantT || s.needFull
		n.mu.Unlock()
		if stale {
			return false
		}
	}
	return true
}

// WaitConverged ticks until the segment converges everywhere or maxTicks
// elapse, returning the ticks spent and whether convergence was reached.
func (f *Fleet) WaitConverged(path string, maxTicks int) (int, bool) {
	for i := 0; i < maxTicks; i++ {
		if f.Converged(path) {
			return i, true
		}
		f.Tick()
	}
	return maxTicks, f.Converged(path)
}

// HomeFor returns the machine a segment path hashes to: the sharded home
// assignment that spreads 1000 segments over 1000 machines instead of
// funnelling every write through one. FNV-1a over the path, mod the fleet
// in Add order — deterministic for a given fleet shape.
func (f *Fleet) HomeFor(path string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(path); i++ {
		h ^= uint64(path[i])
		h *= prime64
	}
	return f.order[h%uint64(len(f.order))]
}

// PublishSharded publishes a segment on its hash-assigned home, at a
// fleet-coordinated inode slot. Slot coordination is what keeps the
// same-VA invariant at fleet scale: two segments published independently
// by different homes must not race for the same address region, so the
// fleet hands out slots from one counter (skipping any slot the home
// already uses). Returns the home node.
func (f *Fleet) PublishSharded(path string, data []byte) (*Node, error) {
	home := f.nodes[f.HomeFor(path)]
	var lastErr error
	for tries := 0; tries < 64; tries++ {
		slot := f.nextSlot
		f.nextSlot++
		if err := home.PublishAt(path, data, slot); err == nil {
			return home, nil
		} else {
			lastErr = err
		}
	}
	return nil, fmt.Errorf("netshm: no free inode slot for %s: %w", path, lastErr)
}
