package netshm

import (
	"fmt"
	"sync/atomic"

	"hemlock/internal/core"
	"hemlock/internal/netsim"
	"hemlock/internal/obsv"
)

// Fleet is a set of simulated machines sharing one LAN, one virtual
// clock, and one obsv registry. It is the deterministic test and bench
// driver: Tick advances the clock by one and steps every machine in a
// fixed order, so a fleet run is a pure function of the workload and the
// network's Drop model.
type Fleet struct {
	Net *netsim.Network
	Reg *obsv.Registry
	Cfg Config

	// Trace is the fleet-wide tracer: every machine emits its protocol
	// events (write, push, apply, and the write→apply flow pairs) here,
	// stamped with the machine's fleet index as the event PID and the
	// virtual clock as the timestamp (1 tick = 1 µs in the Chrome export),
	// so one sink captures a causally-ordered cross-machine timeline.
	Trace *obsv.Tracer

	clk   atomic.Uint64
	order []string
	nodes map[string]*Node
}

// NewFleet wires a fleet onto a network. Protocol and network counters
// land in the fleet's registry.
func NewFleet(net *netsim.Network, cfg Config) *Fleet {
	f := &Fleet{
		Net:   net,
		Reg:   obsv.NewRegistry(),
		Cfg:   cfg.withDefaults(),
		nodes: map[string]*Node{},
	}
	f.Trace = obsv.NewTracer(func() int64 { return int64(f.clk.Load()) * 1000 })
	net.Observe(f.Reg)
	return f
}

// Add boots one machine into the fleet: attaches it to the LAN and gives
// it a netshm endpoint over the supplied Hemlock system.
func (f *Fleet) Add(name string, sys *core.System) *Node {
	if _, ok := f.nodes[name]; ok {
		panic(fmt.Sprintf("netshm: fleet already has machine %q", name))
	}
	n := &Node{
		name:  name,
		sys:   sys,
		net:   f.Net,
		nd:    f.Net.Attach(name),
		fleet: f,
		cfg:   f.Cfg,
		idx:   len(f.order),
		segs:  map[string]*seg{},
	}
	n.wire(f.Reg)
	f.nodes[name] = n
	f.order = append(f.order, name)
	return n
}

// Node returns a machine by name, or nil.
func (f *Fleet) Node(name string) *Node { return f.nodes[name] }

// Machines returns the machine names in Add order: the track order a
// merged fleet Chrome trace uses (a machine's fleet index is its event
// PID).
func (f *Fleet) Machines() []string {
	return append([]string(nil), f.order...)
}

// Nodes returns the machines in their deterministic step order.
func (f *Fleet) Nodes() []*Node {
	out := make([]*Node, 0, len(f.order))
	for _, name := range f.order {
		out = append(out, f.nodes[name])
	}
	return out
}

// Now reads the virtual clock.
func (f *Fleet) Now() uint64 { return f.clk.Load() }

// Tick advances the virtual clock, ages the network (maturing any
// datagrams held by its DelayTicks knob), and runs one protocol step on
// every machine, in Add order.
func (f *Fleet) Tick() {
	f.clk.Add(1)
	f.Net.Advance()
	for _, name := range f.order {
		f.nodes[name].Step()
	}
}

// Run executes n ticks.
func (f *Fleet) Run(n int) {
	for i := 0; i < n; i++ {
		f.Tick()
	}
}

// Converged reports whether every machine that knows the segment has
// applied the home's current generation — and that all of them know it.
func (f *Fleet) Converged(path string) bool {
	var want uint64
	found := false
	for _, n := range f.nodes {
		n.mu.Lock()
		s, ok := n.segs[path]
		if ok && s.isHome {
			want = s.gen
			found = true
		}
		n.mu.Unlock()
	}
	if !found {
		return false
	}
	for _, n := range f.nodes {
		n.mu.Lock()
		s, ok := n.segs[path]
		stale := !ok || s.gen != want
		n.mu.Unlock()
		if stale {
			return false
		}
	}
	return true
}

// WaitConverged ticks until the segment converges everywhere or maxTicks
// elapse, returning the ticks spent and whether convergence was reached.
func (f *Fleet) WaitConverged(path string, maxTicks int) (int, bool) {
	for i := 0; i < maxTicks; i++ {
		if f.Converged(path) {
			return i, true
		}
		f.Tick()
	}
	return maxTicks, f.Converged(path)
}
