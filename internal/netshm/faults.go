package netshm

// Fault injection for tests and the doctor acceptance suite. These entry
// points corrupt protocol state in ways the protocol itself never would,
// so the fleet self-checks (internal/doctor) have something real to
// catch. Nothing in the replication or transaction paths calls them.

// DropHomeRole makes the node forget it is the segment's home without
// telling the fleet — modeling a crash-and-restore that loses the role.
// No machine will accept a write for the segment afterwards, which is
// exactly the state doctor's home-orphaned check exists to flag.
func (n *Node) DropHomeRole(path string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return ErrUnknownSeg
	}
	s.isHome = false
	s.migrating = ""
	n.unpinFramesLocked(s)
	return nil
}

// SkewClock shifts the segment's transactional version clock by d while
// leaving epoch and generation alone — the corruption class doctor's
// txn-clock-diverged check detects (a transaction validated against a
// skewed clock can commit against state the home never had).
func (n *Node) SkewClock(path string, d int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return ErrUnknownSeg
	}
	s.tv = uint64(int64(s.tv) + d)
	return nil
}
