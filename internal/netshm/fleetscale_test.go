package netshm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/isa"
	"hemlock/internal/kern"
	"hemlock/internal/netsim"
)

// bootLite builds a fleet of n FS-only machines (no kernel, no linkers) —
// the fleet-scale shape.
func bootLite(t testing.TB, net *netsim.Network, cfg Config, n int) *Fleet {
	t.Helper()
	f := NewFleet(net, cfg)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("m%03d", i), core.NewSystemLite())
	}
	return f
}

// ---- home migration ----------------------------------------------------------

func TestMigrateToMovesHome(t *testing.T) {
	f := bootLite(t, netsim.New(), Config{}, 3)
	home := f.Node("m000")
	content := bytes.Repeat([]byte("seg!"), 1400) // 5600 B: two pages
	if err := home.Publish("/lib/seg", content); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("no initial convergence")
	}

	if err := home.MigrateTo("/lib/seg", "m002"); err != nil {
		t.Fatal(err)
	}
	// Writes are frozen while the offer is in flight.
	if err := home.Write("/lib/seg", 0, []byte("x")); !errors.Is(err, ErrMigrating) {
		t.Fatalf("write during migration: %v, want ErrMigrating", err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 60); !ok {
		t.Fatal("no convergence after migration")
	}

	ni, _ := f.Node("m002").Info("/lib/seg")
	if !ni.IsHome || ni.Epoch != 1 {
		t.Fatalf("m002 after migration: %+v, want home at epoch 1", ni)
	}
	oi, _ := home.Info("/lib/seg")
	if oi.IsHome || oi.Home != "m002" || oi.Epoch != 1 {
		t.Fatalf("m000 after migration: %+v, want replica of m002 at epoch 1", oi)
	}
	if err := home.Write("/lib/seg", 0, []byte("x")); !errors.Is(err, ErrNotHome) {
		t.Fatalf("old home write: %v, want ErrNotHome", err)
	}

	// The new home writes; everyone converges on its content.
	if err := f.Node("m002").Write("/lib/seg", 4200, []byte("new-home")); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("post-migration write did not converge")
	}
	for _, n := range f.Nodes() {
		if got := segBytes(t, n, "/lib/seg"); !bytes.Equal(got[4200:4208], []byte("new-home")) {
			t.Fatalf("%s: post-migration write missing", n.Name())
		}
	}
	if got := f.Reg.Snapshot().Counters["netshm.migrations"]; got != 1 {
		t.Fatalf("netshm.migrations = %d, want 1", got)
	}
}

// TestMigrateAbortOnPartition: if the target is unreachable the home
// bounds its retries, aborts past the offered epoch, and thaws writes —
// no segment is orphaned by a lost handshake.
func TestMigrateAbortOnPartition(t *testing.T) {
	net := netsim.New()
	f := bootLite(t, net, Config{}, 3)
	home := f.Node("m000")
	if err := home.Publish("/lib/seg", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("no initial convergence")
	}

	// m002 is unreachable: every offer (and everything else to it) is lost.
	net.Drop = func(from, to string, seq uint64) bool { return to == "m002" }
	if err := home.MigrateTo("/lib/seg", "m002"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		f.Tick()
		if ii, _ := home.Info("/lib/seg"); !ii.Migrating {
			break
		}
	}
	ii, _ := home.Info("/lib/seg")
	if ii.Migrating {
		t.Fatal("migration never aborted")
	}
	if !ii.IsHome || ii.Epoch != 2 {
		t.Fatalf("after abort: %+v, want home at epoch 2 (offered epoch skipped)", ii)
	}
	if got := f.Reg.Snapshot().Counters["netshm.migrate_aborts"]; got != 1 {
		t.Fatalf("netshm.migrate_aborts = %d, want 1", got)
	}

	// Heal the partition: the fleet adopts the bumped epoch and converges,
	// including m002, which missed the whole episode.
	net.Drop = nil
	if err := home.Write("/lib/seg", 0, []byte("post-abort")); err != nil {
		t.Fatalf("write after abort: %v", err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 100); !ok {
		t.Fatal("no convergence after abort heal")
	}
	for _, n := range f.Nodes() {
		if got := segBytes(t, n, "/lib/seg"); !bytes.Equal(got, []byte("post-abort")) {
			t.Fatalf("%s: content %q after heal", n.Name(), got)
		}
	}
}

// TestAutoMigrationFollowsWriter: a remote writer that clears the
// threshold pulls the home to itself.
func TestAutoMigrationFollowsWriter(t *testing.T) {
	f := bootLite(t, netsim.New(), Config{MigrateThreshold: 4}, 3)
	if err := f.Node("m000").Publish("/lib/seg", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("no initial convergence")
	}
	for i := 0; i < 8; i++ {
		if err := f.Node("m001").WriteAny("/lib/seg", uint32(i*4), []byte{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		f.Run(3)
		if ii, _ := f.Node("m001").Info("/lib/seg"); ii.IsHome {
			break
		}
	}
	if _, ok := f.WaitConverged("/lib/seg", 60); !ok {
		t.Fatal("no convergence after auto-migration")
	}
	ii, _ := f.Node("m001").Info("/lib/seg")
	if !ii.IsHome {
		t.Fatalf("hot writer never became home: %+v", ii)
	}
	// And the forwarded content arrived.
	for _, n := range f.Nodes() {
		got := segBytes(t, n, "/lib/seg")
		if !bytes.Equal(got[0:4], []byte{1, 2, 3, 4}) {
			t.Fatalf("%s: forwarded write missing: % x", n.Name(), got[0:8])
		}
	}
}

// ---- read leases -------------------------------------------------------------

func TestLeaseExpiryCountsAndRenews(t *testing.T) {
	net := netsim.New()
	f := bootLite(t, net, Config{LeaseTicks: 8}, 2)
	home, rep := f.Node("m000"), f.Node("m001")
	if err := home.Publish("/lib/seg", []byte("leased")); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("no convergence")
	}
	if ri, _ := rep.Info("/lib/seg"); ri.LeaseUntil == 0 {
		t.Fatal("replica never granted a lease")
	}

	// Partition the replica from its home: the lease runs out.
	net.Drop = func(from, to string, seq uint64) bool { return from == "m000" }
	f.Run(20)
	if _, fresh, err := rep.Read("/lib/seg", 0, 6); err != nil || !fresh {
		t.Fatalf("read: fresh=%v err=%v — an expired lease alone does not make content stale", fresh, err)
	}
	if got := f.Reg.Snapshot().Counters["netshm.lease_expired_reads"]; got == 0 {
		t.Fatal("expired-lease read not counted")
	}
	if got := f.Reg.Snapshot().Counters["netshm.stale_reads"]; got != 0 {
		t.Fatalf("stale_reads = %d — lease expiry must not masquerade as staleness", got)
	}

	// Heal: the renew round-trips and reads stop being counted.
	net.Drop = nil
	f.Run(6)
	before := f.Reg.Snapshot().Counters["netshm.lease_expired_reads"]
	if _, _, err := rep.Read("/lib/seg", 0, 6); err != nil {
		t.Fatal(err)
	}
	if got := f.Reg.Snapshot().Counters["netshm.lease_expired_reads"]; got != before {
		t.Fatalf("lease_expired_reads grew to %d after heal, want %d", got, before)
	}
	if got := f.Reg.Snapshot().Counters["netshm.lease_grants"]; got == 0 {
		t.Fatal("no lease grant recorded")
	}
}

// TestLeaseStalenessBound: under a lossy network with a steady write load,
// leases are never over-granted (LeaseUntil <= now + LeaseTicks on every
// machine at every tick) and the replication-lag histogram stays bounded
// by the quiesce window — together the lease bound a reader can reason
// with: a fresh-under-lease read heard from the home within LeaseTicks.
func TestLeaseStalenessBound(t *testing.T) {
	const leaseTicks = 16
	net := netsim.New()
	rng := rand.New(rand.NewSource(7))
	net.Drop = func(from, to string, seq uint64) bool { return rng.Intn(100) < 20 }
	f := bootLite(t, net, Config{LeaseTicks: leaseTicks}, 4)
	home := f.Node("m000")
	if err := home.Publish("/lib/seg", make([]byte, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	buf := []byte{0, 0, 0, 0}
	for i := 0; i < 120; i++ {
		if i%3 == 0 {
			binary.BigEndian.PutUint32(buf, uint32(i))
			if err := home.Write("/lib/seg", uint32(i%64)*8, buf); err != nil {
				t.Fatal(err)
			}
		}
		f.Tick()
		now := f.Now()
		for _, n := range f.Nodes() {
			ii, err := n.Info("/lib/seg")
			if err != nil {
				continue
			}
			if ii.LeaseUntil > now+leaseTicks {
				t.Fatalf("%s: lease until %d at tick %d — over-granted beyond %d ticks",
					n.Name(), ii.LeaseUntil, now, leaseTicks)
			}
			n.Read("/lib/seg", 0, 4) // drive the stale/lease counters
		}
	}
	net.Drop = nil
	ticks, ok := f.WaitConverged("/lib/seg", 200)
	if !ok {
		t.Fatal("no convergence after loss lifted")
	}
	h, ok := f.Reg.Snapshot().Histograms["netshm.lag_ticks:/lib/seg"]
	if !ok || h.Count == 0 {
		t.Fatal("replication-lag histogram empty")
	}
	maxLe := h.Buckets[len(h.Buckets)-1].Le
	if bound := uint64(2 * (120 + ticks)); maxLe > bound {
		t.Fatalf("replication lag bucket %d exceeds run bound %d", maxLe, bound)
	}
}

// ---- dirty-byte deltas -------------------------------------------------------

// runDeltaWorkload drives an identical seeded small-write workload in
// either replication mode and returns the fleet, for digest and wire
// inspection.
func runDeltaWorkload(t *testing.T, fullPage bool) (*Fleet, *netsim.Network) {
	t.Helper()
	net := netsim.New()
	f := bootLite(t, net, Config{FullPage: fullPage}, 3)
	home := f.Node("m000")
	seed := make([]byte, 3*PageSize)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	if err := home.Publish("/lib/seg", seed); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 30); !ok {
		t.Fatal("no initial convergence")
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		off := uint32(rng.Intn(3*int(PageSize) - 16))
		n := 1 + rng.Intn(12)
		patch := make([]byte, n)
		rng.Read(patch)
		if err := home.Write("/lib/seg", off, patch); err != nil {
			t.Fatal(err)
		}
		f.Tick()
	}
	if _, ok := f.WaitConverged("/lib/seg", 60); !ok {
		t.Fatal("no final convergence")
	}
	return f, net
}

// TestDeltaMatchesFullPage is the delta-correctness differential: the
// byte-range path must land replicas byte-identical to the full-page
// path, while shipping at least 4x fewer bytes for small writes.
func TestDeltaMatchesFullPage(t *testing.T) {
	ff, fnet := runDeltaWorkload(t, true)
	fd, dnet := runDeltaWorkload(t, false)

	var want uint64
	for i, n := range ff.Nodes() {
		dig, err := n.Digest("/lib/seg")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = dig
		} else if dig != want {
			t.Fatalf("full-page fleet diverged internally")
		}
	}
	for _, n := range fd.Nodes() {
		dig, err := n.Digest("/lib/seg")
		if err != nil {
			t.Fatal(err)
		}
		if dig != want {
			t.Fatalf("%s: delta replica digest %#x != full-page %#x", n.Name(), dig, want)
		}
	}

	fullBytes := fnet.Stats().BytesSent
	deltaBytes := dnet.Stats().BytesSent
	if deltaBytes*4 > fullBytes {
		t.Fatalf("deltas sent %d bytes vs %d full-page — want >= 4x reduction", deltaBytes, fullBytes)
	}
	if got := fd.Reg.Snapshot().Counters["netshm.delta_pages"]; got == 0 {
		t.Fatal("delta fleet pushed no delta pages")
	}
	if got := ff.Reg.Snapshot().Counters["netshm.delta_pages"]; got != 0 {
		t.Fatalf("full-page fleet pushed %d delta pages", got)
	}
}

// TestWatermarkCatchesMappedStores: a store that goes through the frame
// (not Node.Write) with a too-narrow MarkDirty still replicates fully —
// the dirty watermark widens the declared range.
func TestWatermarkCatchesMappedStores(t *testing.T) {
	f := bootLite(t, netsim.New(), Config{}, 2)
	home := f.Node("m000")
	if err := home.Publish("/lib/seg", make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("no convergence")
	}
	// Write through the file interface directly — as a mapped program
	// would — then declare only a 1-byte dirty range elsewhere.
	if _, err := home.Sys().FS.WriteAt("/lib/seg", 300, []byte("watermarked"), 0); err != nil {
		t.Fatal(err)
	}
	if err := home.MarkDirty("/lib/seg", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("no convergence after mapped store")
	}
	got := segBytes(t, f.Node("m001"), "/lib/seg")
	if !bytes.Equal(got[300:311], []byte("watermarked")) {
		t.Fatalf("mapped store not replicated: %q", got[300:311])
	}
}

// ---- sharded homes -----------------------------------------------------------

func TestPublishShardedSpreadsHomes(t *testing.T) {
	f := bootLite(t, netsim.New(), Config{}, 8)
	paths := make([]string, 16)
	homes := map[string]bool{}
	for i := range paths {
		paths[i] = fmt.Sprintf("/lib/shard/s%02d", i)
		home, err := f.PublishSharded(paths[i], []byte(paths[i]))
		if err != nil {
			t.Fatal(err)
		}
		if home.Name() != f.HomeFor(paths[i]) {
			t.Fatalf("segment %s landed on %s, hash says %s", paths[i], home.Name(), f.HomeFor(paths[i]))
		}
		homes[home.Name()] = true
	}
	if len(homes) < 3 {
		t.Fatalf("16 segments hashed onto only %d homes", len(homes))
	}
	for _, p := range paths {
		if _, ok := f.WaitConverged(p, 60); !ok {
			t.Fatalf("%s never converged", p)
		}
	}
	// The same-VA invariant holds fleet-wide for every sharded segment,
	// and no two segments share a base.
	bases := map[uint32]string{}
	for _, p := range paths {
		var base uint32
		for i, n := range f.Nodes() {
			st, err := n.Sys().FS.StatPath(p)
			if err != nil {
				t.Fatalf("%s: %s: %v", n.Name(), p, err)
			}
			if i == 0 {
				base = st.Addr
			} else if st.Addr != base {
				t.Fatalf("%s: %s at %#x, fleet says %#x", n.Name(), p, st.Addr, base)
			}
		}
		if prev, clash := bases[base]; clash {
			t.Fatalf("segments %s and %s share base %#x", prev, p, base)
		}
		bases[base] = p
	}
}

// ---- fleet scale -------------------------------------------------------------

// TestFleetScaleConvergence: a large fleet under 20% loss converges on
// sharded segments. Full size is 1024 machines; -short runs 96 so the
// race detector finishes in CI time.
func TestFleetScaleConvergence(t *testing.T) {
	hosts := 1024
	writes := 6
	if testing.Short() {
		hosts = 96
	}
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool {
		h := fnv.New32a()
		fmt.Fprintf(h, "%s|%s|%d", from, to, seq)
		return h.Sum32()%5 == 0 // deterministic 20% loss
	}
	f := NewFleet(net, Config{})
	for i := 0; i < hosts; i++ {
		f.Add(fmt.Sprintf("h%04d", i), core.NewSystemLite())
	}
	paths := []string{"/lib/fleet/a", "/lib/fleet/b", "/lib/fleet/c"}
	for _, p := range paths {
		if _, err := f.PublishSharded(p, make([]byte, 256)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range paths {
		home := f.Node(f.HomeFor(p))
		for w := 0; w < writes; w++ {
			if err := home.Write(p, uint32(w*8), []byte(fmt.Sprintf("w%05d", w))); err != nil {
				t.Fatal(err)
			}
			f.Run(2)
		}
	}
	for _, p := range paths {
		if ticks, ok := f.WaitConverged(p, 400); !ok {
			t.Fatalf("%s: %d machines never converged in %d ticks under 20%% loss", p, hosts, ticks)
		}
	}
	// Byte-exact agreement, not just generation agreement.
	for _, p := range paths {
		want, err := f.Node(f.HomeFor(p)).Digest(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range f.Nodes() {
			got, err := n.Digest(p)
			if err != nil || got != want {
				t.Fatalf("%s: %s digest %#x, home says %#x (%v)", n.Name(), p, got, want, err)
			}
		}
	}
}

// ---- transactions ------------------------------------------------------------

func TestTxnLocalCommitIsAtomicAndConflicts(t *testing.T) {
	f := bootLite(t, netsim.New(), Config{}, 3)
	home := f.Node("m000")
	if err := home.Publish("/lib/acct", make([]byte, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/acct", 20); !ok {
		t.Fatal("no convergence")
	}
	genBefore, _, _ := home.Gen("/lib/acct")

	// A multi-word commit spanning a page boundary lands as ONE generation.
	tx := home.Begin()
	if _, err := tx.Read("/lib/acct", PageSize-8, 16); err != nil {
		t.Fatal(err)
	}
	tx.WriteWord("/lib/acct", PageSize-8, 0xAAAAAAAA)
	tx.WriteWord("/lib/acct", PageSize+4, 0xBBBBBBBB)
	if txid, err := tx.Commit(); err != nil || txid != 0 {
		t.Fatalf("local commit: txid=%d err=%v", txid, err)
	}
	genAfter, _, _ := home.Gen("/lib/acct")
	if genAfter != genBefore+1 {
		t.Fatalf("2-page txn advanced gen by %d, want 1 (atomicity)", genAfter-genBefore)
	}
	if _, ok := f.WaitConverged("/lib/acct", 20); !ok {
		t.Fatal("txn did not converge")
	}
	for _, n := range f.Nodes() {
		got := segBytes(t, n, "/lib/acct")
		if binary.BigEndian.Uint32(got[PageSize-8:]) != 0xAAAAAAAA ||
			binary.BigEndian.Uint32(got[PageSize+4:]) != 0xBBBBBBBB {
			t.Fatalf("%s: txn words not applied together", n.Name())
		}
	}
	ti, _ := home.Info("/lib/acct")
	if ti.Tv != 1 {
		t.Fatalf("version clock = %d after one commit, want 1", ti.Tv)
	}

	// TL2 validation: a competing commit between read and commit aborts.
	t1 := home.Begin()
	if _, err := t1.Read("/lib/acct", 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := home.Write("/lib/acct", 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	t1.WriteWord("/lib/acct", 0, 1)
	if _, err := t1.Commit(); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("stale txn commit: %v, want ErrTxnConflict", err)
	}
	if got := f.Reg.Snapshot().Counters["netshm.txn_aborts"]; got != 1 {
		t.Fatalf("txn_aborts = %d, want 1", got)
	}
}

func TestTxnRemoteForwardCommitAndAbort(t *testing.T) {
	net := netsim.New()
	rng := rand.New(rand.NewSource(3))
	net.Drop = func(from, to string, seq uint64) bool { return rng.Intn(100) < 20 }
	f := bootLite(t, net, Config{}, 3)
	home, writer := f.Node("m000"), f.Node("m001")
	if err := home.Publish("/lib/acct", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	lossless := func() {
		d := net.Drop
		net.Drop = nil
		f.Run(10)
		net.Drop = d
	}
	lossless()
	if _, ok := f.WaitConverged("/lib/acct", 200); !ok {
		t.Fatal("no convergence")
	}

	tx := writer.Begin()
	if _, err := tx.Read("/lib/acct", 0, 8); err != nil {
		t.Fatal(err)
	}
	tx.WriteWord("/lib/acct", 0, 0x11111111)
	tx.WriteWord("/lib/acct", 4, 0x22222222)
	txid, err := tx.Commit()
	if err != nil || txid == 0 {
		t.Fatalf("remote commit: txid=%d err=%v", txid, err)
	}
	for i := 0; i < 300 && writer.TxnStatus(txid) == TxnPending; i++ {
		f.Tick()
	}
	if st := writer.TxnStatus(txid); st != TxnCommitted {
		t.Fatalf("forwarded txn state %v, want committed", st)
	}
	lossless()
	if _, ok := f.WaitConverged("/lib/acct", 300); !ok {
		t.Fatal("forwarded txn did not converge")
	}
	got := segBytes(t, f.Node("m002"), "/lib/acct")
	if binary.BigEndian.Uint32(got) != 0x11111111 || binary.BigEndian.Uint32(got[4:]) != 0x22222222 {
		t.Fatalf("forwarded txn content: % x", got[:8])
	}

	// A forwarded commit whose read set went stale aborts at the home.
	tx2 := writer.Begin()
	if _, err := tx2.Read("/lib/acct", 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := home.Write("/lib/acct", 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	tx2.WriteWord("/lib/acct", 0, 3)
	txid2, err := tx2.Commit()
	if err != nil || txid2 == 0 {
		t.Fatalf("remote commit 2: txid=%d err=%v", txid2, err)
	}
	for i := 0; i < 300 && writer.TxnStatus(txid2) == TxnPending; i++ {
		f.Tick()
	}
	if st := writer.TxnStatus(txid2); st != TxnAborted {
		t.Fatalf("stale forwarded txn state %v, want aborted", st)
	}
}

func TestTxnCrossHomeRefused(t *testing.T) {
	f := bootLite(t, netsim.New(), Config{}, 2)
	if err := f.Node("m000").Publish("/lib/a", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	f.Run(6)
	if err := f.Node("m001").Publish("/lib/b", make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	f.Run(6)
	tx := f.Node("m000").Begin()
	tx.WriteWord("/lib/a", 0, 1)
	tx.WriteWord("/lib/b", 0, 1)
	if _, err := tx.Commit(); !errors.Is(err, ErrTxnCrossHome) {
		t.Fatalf("cross-home commit: %v, want ErrTxnCrossHome", err)
	}
}

// TestTxnGuestSyscalls drives the kernel's txn_stage/txn_commit surface
// end to end: a guest process on the home machine commits atomically; a
// guest on a replica machine gets Eagain.
func TestTxnGuestSyscalls(t *testing.T) {
	f := NewFleet(netsim.New(), Config{})
	for i := 0; i < 2; i++ {
		f.Add(fmt.Sprintf("m%03d", i), core.NewSystem())
	}
	home, rep := f.Node("m000"), f.Node("m001")
	if err := home.Publish("/lib/acct", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/acct", 20); !ok {
		t.Fatal("no convergence")
	}
	home.InstallTxn()
	rep.InstallTxn()
	base, _ := home.Base("/lib/acct")

	call := func(n *Node, num, a0, a1 uint32) (uint32, uint32) {
		p := n.Sys().K.Spawn(0)
		p.CPU.Regs[isa.RegV0] = num
		p.CPU.Regs[isa.RegA0] = a0
		p.CPU.Regs[isa.RegA1] = a1
		if err := n.Sys().K.Syscall(p); err != nil {
			t.Fatalf("syscall: %v", err)
		}
		return p.CPU.Regs[isa.RegV0], p.CPU.Regs[isa.RegV1]
	}
	callOn := func(n *Node, p *kern.Process, num, a0, a1 uint32) (uint32, uint32) {
		p.CPU.Regs[isa.RegV0] = num
		p.CPU.Regs[isa.RegA0] = a0
		p.CPU.Regs[isa.RegA1] = a1
		if err := n.Sys().K.Syscall(p); err != nil {
			t.Fatalf("syscall: %v", err)
		}
		return p.CPU.Regs[isa.RegV0], p.CPU.Regs[isa.RegV1]
	}

	// Home-side guest: stage two words, commit, replicate.
	p := home.Sys().K.Spawn(0)
	if _, errc := callOn(home, p, kern.SysTxnStage, base, 0x11); errc != kern.Eok {
		t.Fatalf("stage: errno %d", errc)
	}
	if _, errc := callOn(home, p, kern.SysTxnStage, base+4, 0x22); errc != kern.Eok {
		t.Fatalf("stage: errno %d", errc)
	}
	if ret, errc := callOn(home, p, kern.SysTxnCommit, 0, 0); ret != 1 || errc != kern.Eok {
		t.Fatalf("guest commit: ret=%d errno=%d", ret, errc)
	}
	if _, ok := f.WaitConverged("/lib/acct", 20); !ok {
		t.Fatal("guest txn did not converge")
	}
	got := segBytes(t, rep, "/lib/acct")
	if binary.BigEndian.Uint32(got) != 0x11 || binary.BigEndian.Uint32(got[4:]) != 0x22 {
		t.Fatalf("guest txn content: % x", got[:8])
	}

	// Replica-side guest: the home is remote -> Eagain, nothing applied.
	p2 := rep.Sys().K.Spawn(0)
	callOn(rep, p2, kern.SysTxnStage, base, 0x99)
	if _, errc := callOn(rep, p2, kern.SysTxnCommit, 0, 0); errc != kern.Eagain {
		t.Fatalf("remote guest commit: errno %d, want Eagain", errc)
	}
	// A staged address outside any segment is refused.
	if _, errc := call(home, kern.SysTxnStage, 0x00DEAD00, 1); errc == kern.Eok {
		t.Fatal("stage outside segments succeeded")
	}
}

// TestTxnNoPartialCommitObserved: under heavy loss, at no tick does any
// machine hold a mix of pre- and post-commit marker words — the atomicity
// acceptance property, here on a single adversarial schedule (the fuzzer
// runs hundreds).
func TestTxnNoPartialCommitObserved(t *testing.T) {
	net := netsim.New()
	rng := rand.New(rand.NewSource(11))
	net.Drop = func(from, to string, seq uint64) bool { return rng.Intn(100) < 30 }
	f := bootLite(t, net, Config{}, 4)
	home := f.Node("m000")
	if err := home.Publish("/lib/mark", make([]byte, 2*PageSize)); err != nil {
		t.Fatal(err)
	}
	// 8 marker words spanning the page boundary.
	offs := make([]uint32, 8)
	for i := range offs {
		offs[i] = PageSize - 16 + uint32(i*4)
	}
	check := func(tick int) {
		for _, n := range f.Nodes() {
			var vals [8]uint32
			buf := make([]byte, 4)
			for i, off := range offs {
				if _, err := n.Sys().FS.ReadAt("/lib/mark", off, buf, 0); err != nil {
					return // replica not materialised yet
				}
				vals[i] = binary.BigEndian.Uint32(buf)
			}
			for i := 1; i < 8; i++ {
				if vals[i] != vals[0] {
					t.Fatalf("tick %d: %s observed partial commit: %v", tick, n.Name(), vals)
				}
			}
		}
	}
	for round := uint32(1); round <= 20; round++ {
		tx := home.Begin()
		for _, off := range offs {
			tx.WriteWord("/lib/mark", off, round)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			f.Tick()
			check(int(f.Now()))
		}
	}
	net.Drop = nil
	if _, ok := f.WaitConverged("/lib/mark", 300); !ok {
		t.Fatal("marker segment never converged")
	}
	check(int(f.Now()))
}
