// Package netshm extends Hemlock's shared segments across a network of
// simulated machines. Each machine is a full kernel + shmfs + address
// space; netshm replicates public segments between them over netsim,
// preserving the Hemlock invariant that a public module occupies the same
// virtual address on every machine — the home machine dictates the inode
// slot, and replicas materialise the segment at that exact slot
// (shmfs.CreateAt), so a pointer stored into the segment on one machine
// dereferences correctly on all of them.
//
// Coherence is page-granularity and single-home per epoch:
//
//   - every segment has one home machine per epoch; all writes happen
//     there (remote writers forward with WriteAny, and the home migrates
//     to the hottest writer — each migration bumps the segment's epoch);
//   - versions order lexicographically by (epoch, generation): a higher
//     epoch supersedes any generation of a lower one, and a replica that
//     adopts a new epoch resyncs its full content from the new home
//     before trusting any incremental update again;
//   - the home pushes sequence-numbered updates (one generation per write
//     batch) carrying coalesced dirty byte-range deltas — or full pages
//     when delta tracking cannot vouch for a page;
//   - replicas apply updates idempotently and strictly in order,
//     acknowledging their applied generation;
//   - replicas hold time-bounded read leases granted and renewed by every
//     home-originated message, so fresh reads skip the home entirely
//     until the lease expires or an invalidation arrives;
//   - the home retries lagging replicas with catch-up syncs (full pages)
//     — bounded attempts, exponential backoff, all driven by the fleet's
//     virtual clock so tests are deterministic;
//   - a pull-based anti-entropy round — triggered by a read of a stale
//     generation, a joining node, or an epoch adoption — heals whatever
//     the lossy LAN and the bounded retries left behind;
//   - the home periodically announces (path, base, epoch, generation),
//     which is how latecomers discover segments, how replicas learn they
//     are stale, and how a deposed home learns to demote itself;
//   - multi-word writes commit atomically through the TL2-style Txn API:
//     per-segment version clocks, validate-on-commit, one generation per
//     segment carrying the whole write set.
//
// Every protocol action is counted in the fleet's obsv registry
// ("netshm.*"), next to the network's own delivery/loss counters.
package netshm

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"hemlock/internal/core"
	"hemlock/internal/mem"
	"hemlock/internal/netsim"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
)

// Errors.
var (
	ErrNotHome    = errors.New("netshm: segment is homed on another machine")
	ErrUnknownSeg = errors.New("netshm: unknown segment")
	ErrAddrClash  = errors.New("netshm: segment address differs between machines")
	ErrMigrating  = errors.New("netshm: segment home is migrating; writes are frozen")
)

// PageSize is the replication granularity: the machine page.
const PageSize = mem.PageSize

// Config tunes the protocol's virtual-clock behaviour. The zero value
// selects the defaults.
type Config struct {
	RetryTicks    uint64 // ticks before the first catch-up retry (default 2)
	RetryMax      int    // bounded retry: attempts per lag episode (default 8)
	BackoffCap    uint64 // ceiling on the backoff interval (default 16)
	AnnounceTicks uint64 // announce period for home segments (default 4)

	// LeaseTicks is the read-lease duration granted by every
	// home-originated message (default 64). A replica whose lease expired
	// keeps serving local reads but counts them and asks the home for a
	// renewal, which doubles as a liveness probe.
	LeaseTicks uint64

	// MigrateThreshold moves a segment's home to a remote writer once it
	// has forwarded that many writes and leads the current home's own
	// count (default 64). Negative disables auto-migration; explicit
	// MigrateTo always works.
	MigrateThreshold int

	// FullPage disables dirty-byte delta encoding: every update carries
	// full pages, as the pre-v3 protocol did. NewFleet sets it from
	// HEMLOCK_NETSHM_DELTA=0; kept as a field so differentials can force
	// either mode.
	FullPage bool
}

func (c Config) withDefaults() Config {
	if c.RetryTicks == 0 {
		c.RetryTicks = 2
	}
	if c.RetryMax == 0 {
		c.RetryMax = 8
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 16
	}
	if c.AnnounceTicks == 0 {
		c.AnnounceTicks = 4
	}
	if c.LeaseTicks == 0 {
		c.LeaseTicks = 64
	}
	if c.MigrateThreshold == 0 {
		c.MigrateThreshold = 64
	}
	return c
}

// seg is one replicated segment as seen by one machine.
type seg struct {
	path   string
	base   uint32
	size   uint32
	home   string
	isHome bool

	epoch   uint64 // home epoch; bumped by every migration (and by 2 on abort)
	gen     uint64 // applied generation (home: current generation)
	highest uint64 // highest generation heard of at the current epoch
	tv      uint64 // transactional version clock: commits applied at this seg

	// Home-side replication state.
	pageGen  []uint64              // generation at which each page last changed
	pageVer  []uint64              // frame store-version snapshot at last push (delta fallback)
	frames   []*mem.Frame          // pinned backing frames, dirty-watermark tracked
	peers    map[string]*peerState // keyed by replica name, discovered via acks
	writeCnt map[string]uint64     // per-origin write counter (migration driver)

	// Home-side migration handshake.
	migrating    string // non-empty: offer to this target is in flight; writes frozen
	migrateAt    uint64 // virtual tick of the next offer retry
	migrateTries int

	// Replica-side anti-entropy state.
	pullArmed bool   // a pull round is in flight or due
	pullAt    uint64 // virtual tick to (re)send the pull
	needFull  bool   // adopted a new epoch: only a full resync restores trust

	// Replica-side lease state.
	leaseUntil uint64 // virtual tick the read lease expires; 0 = never granted
	renewAt    uint64 // rate limit on lease-renew requests

	// Lazily-fetched per-segment instruments (apply path).
	lagHist *obsv.Histogram // netshm.lag_ticks:<path> — send→apply ticks
	staleG  *obsv.Gauge     // netshm.staleness:<machine>:<path> — highest-gen gap
}

// peerState is the home's view of one replica.
type peerState struct {
	acked    uint64 // highest generation the replica acknowledged (current epoch)
	attempts int    // catch-up retries since last progress
	nextTry  uint64 // virtual tick of the next retry
}

func (s *seg) pages() int { return int((s.size + PageSize - 1) / PageSize) }

func (s *seg) growPageGen() {
	for len(s.pageGen) < s.pages() {
		s.pageGen = append(s.pageGen, 0)
	}
	for len(s.pageVer) < s.pages() {
		s.pageVer = append(s.pageVer, 0)
	}
}

// Node is one machine's netshm endpoint: its Hemlock system plus the
// protocol state for every segment it homes or replicates.
type Node struct {
	name  string
	sys   *core.System
	net   *netsim.Network
	nd    *netsim.Node
	fleet *Fleet
	cfg   Config
	idx   int // fleet index (Add order): the event PID / Chrome track

	mu    sync.Mutex
	segs  map[string]*seg
	onApp func(from string, payload []byte)

	// Outbound transaction state (Txn forwards).
	txnNext    uint64
	txnPending map[uint64]*fwdTxn
	// Inbound transaction dedup (home side): txid -> result flag.
	txnSeen  map[txnKey]byte
	txnOrder []txnKey
	// Guest syscall staging (per pid).
	gtxns map[int]*Txn

	ctrUpdatesSent    *obsv.Counter
	ctrUpdatesApplied *obsv.Counter
	ctrUpdatesDup     *obsv.Counter
	ctrAcksRecv       *obsv.Counter
	ctrRetries        *obsv.Counter
	ctrAntiEntropy    *obsv.Counter
	ctrPullsServed    *obsv.Counter
	ctrStaleReads     *obsv.Counter
	ctrAddrClash      *obsv.Counter
	ctrDeltaPages     *obsv.Counter
	ctrFullPages      *obsv.Counter
	ctrLeaseExpired   *obsv.Counter
	ctrLeaseGrants    *obsv.Counter
	ctrLeaseRenews    *obsv.Counter
	ctrMigrations     *obsv.Counter
	ctrMigrateAborts  *obsv.Counter
	ctrEpochResyncs   *obsv.Counter
	ctrWriteFwd       *obsv.Counter
	ctrTxnCommits     *obsv.Counter
	ctrTxnAborts      *obsv.Counter
}

// Name returns the machine name.
func (n *Node) Name() string { return n.name }

// emit sends a protocol event to the fleet tracer, stamped with this
// machine's fleet index so each machine is one track in a merged trace.
func (n *Node) emit(e obsv.Event) {
	if t := n.fleet.Trace; t.Enabled() {
		e.Subsys = "netshm"
		e.PID = n.idx
		t.Emit(e)
	}
}

// stamp fills the message's trace context at send time.
func (n *Node) stamp(m *msg) *msg {
	m.origin = n.name
	m.stick = n.fleet.Now()
	return m
}

// noteStale refreshes the segment's staleness gauge (how many generations
// behind the highest heard this machine's replica is).
func (n *Node) noteStale(s *seg) {
	if s.staleG == nil {
		s.staleG = n.fleet.Reg.Gauge("netshm.staleness:" + n.name + ":" + s.path)
	}
	lag := int64(0)
	if s.highest > s.gen {
		lag = int64(s.highest - s.gen)
	}
	s.staleG.Set(lag)
}

// Sys returns the machine's Hemlock system.
func (n *Node) Sys() *core.System { return n.sys }

func (n *Node) wire(r *obsv.Registry) {
	n.ctrUpdatesSent = r.Counter("netshm.updates_sent")
	n.ctrUpdatesApplied = r.Counter("netshm.updates_applied")
	n.ctrUpdatesDup = r.Counter("netshm.updates_dup")
	n.ctrAcksRecv = r.Counter("netshm.acks_recv")
	n.ctrRetries = r.Counter("netshm.retries")
	n.ctrAntiEntropy = r.Counter("netshm.anti_entropy_rounds")
	n.ctrPullsServed = r.Counter("netshm.pulls_served")
	n.ctrStaleReads = r.Counter("netshm.stale_reads")
	n.ctrAddrClash = r.Counter("netshm.addr_mismatch")
	n.ctrDeltaPages = r.Counter("netshm.delta_pages")
	n.ctrFullPages = r.Counter("netshm.full_pages")
	n.ctrLeaseExpired = r.Counter("netshm.lease_expired_reads")
	n.ctrLeaseGrants = r.Counter("netshm.lease_grants")
	n.ctrLeaseRenews = r.Counter("netshm.lease_renews")
	n.ctrMigrations = r.Counter("netshm.migrations")
	n.ctrMigrateAborts = r.Counter("netshm.migrate_aborts")
	n.ctrEpochResyncs = r.Counter("netshm.epoch_resyncs")
	n.ctrWriteFwd = r.Counter("netshm.write_fwd")
	n.ctrTxnCommits = r.Counter("netshm.txn_commits")
	n.ctrTxnAborts = r.Counter("netshm.txn_aborts")
}

// egLess orders (epoch, gen) pairs lexicographically.
func egLess(e1, g1, e2, g2 uint64) bool {
	return e1 < e2 || (e1 == e2 && g1 < g2)
}

// ---- home-side API -----------------------------------------------------------

// Serve registers an existing shmfs file as a segment homed here. Its
// current content is generation 0 — the state identically-booted replicas
// already hold (the rwho whod table, for instance).
func (n *Node) Serve(path string) error {
	st, err := n.sys.FS.StatPath(path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.segs[path]; ok {
		return fmt.Errorf("netshm: %s already registered on %s", path, n.name)
	}
	s := &seg{path: path, base: st.Addr, size: st.Size, home: n.name, isHome: true,
		peers: map[string]*peerState{}, writeCnt: map[string]uint64{}}
	s.growPageGen()
	n.pinFramesLocked(s)
	n.segs[path] = s
	return nil
}

// Publish creates a new segment homed here with the given content and
// pushes it to every machine on the network as generation 1.
func (n *Node) Publish(path string, data []byte) error {
	return n.publish(path, data, -1)
}

// PublishAt is Publish pinned to a specific inode slot — the
// fleet-coordinated slot assignment behind Fleet.PublishSharded, which
// keeps independently-homed segments from colliding at the same virtual
// address.
func (n *Node) PublishAt(path string, data []byte, ino int) error {
	return n.publish(path, data, ino)
}

func (n *Node) publish(path string, data []byte, ino int) error {
	if err := n.sys.FS.MkdirAll(parentDir(path), shmfs.DefaultDirMode, 0); err != nil {
		return err
	}
	var err error
	if ino >= 0 {
		_, err = n.sys.FS.CreateAt(path, ino, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, 0)
	} else {
		_, err = n.sys.FS.Create(path, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, 0)
	}
	if err != nil {
		return err
	}
	if _, err := n.sys.FS.WriteAt(path, 0, data, 0); err != nil {
		return err
	}
	if err := n.Serve(path); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dirtyRangesLocked(n.segs[path], [][2]uint32{{0, uint32(len(data))}})
	return nil
}

// Write stores data into a segment homed here (through the file interface
// — the very frames every local mapping sees) and replicates the dirtied
// pages.
func (n *Node) Write(path string, off uint32, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, err := n.writableLocked(path)
	if err != nil {
		return err
	}
	if _, err := n.sys.FS.WriteAt(path, off, data, 0); err != nil {
		return err
	}
	s.writeCnt[n.name]++
	n.dirtyRangesLocked(s, [][2]uint32{{off, uint32(len(data))}})
	return nil
}

// MarkDirty replicates a range that was already written through a local
// mapping of the segment (a hosted daemon storing through Var, a compiled
// program storing through the MMU): same frames, so the content is already
// there — only the protocol needs telling.
func (n *Node) MarkDirty(path string, off, length uint32) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, err := n.writableLocked(path)
	if err != nil {
		return err
	}
	s.writeCnt[n.name]++
	n.dirtyRangesLocked(s, [][2]uint32{{off, length}})
	return nil
}

// WriteAny stores data into a segment regardless of where it is homed: a
// local write at the home, a forwarded write (fire-and-forget, like every
// other datagram of the protocol) everywhere else. Forwarded writes feed
// the home's per-origin write counters — the signal auto-migration moves
// the home on.
func (n *Node) WriteAny(path string, off uint32, data []byte) error {
	n.mu.Lock()
	s, ok := n.segs[path]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	if s.isHome {
		n.mu.Unlock()
		return n.Write(path, off, data)
	}
	defer n.mu.Unlock()
	m := n.stamp(&msg{typ: msgWriteFwd, path: s.path, base: s.base, epoch: s.epoch,
		pages: rangesToPages(off, data)})
	n.ctrWriteFwd.Inc()
	return n.nd.Send(s.home, m.encode())
}

// writableLocked resolves a segment this machine may write right now.
func (n *Node) writableLocked(path string) (*seg, error) {
	s, ok := n.segs[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	if !s.isHome {
		return nil, fmt.Errorf("%w: %s is homed on %s", ErrNotHome, path, s.home)
	}
	if s.migrating != "" {
		return nil, fmt.Errorf("%w: %s -> %s", ErrMigrating, path, s.migrating)
	}
	return s, nil
}

// rangesToPages splits one byte range into per-page delta entries.
func rangesToPages(off uint32, data []byte) []page {
	var pages []page
	for len(data) > 0 {
		idx := off / PageSize
		po := off % PageSize
		take := PageSize - po
		if take > uint32(len(data)) {
			take = uint32(len(data))
		}
		cp := append([]byte(nil), data[:take]...)
		pages = append(pages, page{idx: idx, deltas: []rng{{off: po, data: cp}}})
		off += take
		data = data[take:]
	}
	return pages
}

// pinFramesLocked pins the segment's backing frames and turns on their
// dirty-byte watermarks, snapshotting the store-version counters so any
// write the watermark cannot vouch for falls back to a full-page push.
func (n *Node) pinFramesLocked(s *seg) {
	frames, _, err := n.sys.FS.Frames(s.path, s.size, 0, false)
	if err != nil {
		s.frames = nil
		return
	}
	for i := len(s.frames); i < len(frames); i++ {
		frames[i].SetTracked(true)
	}
	s.frames = frames
	s.growPageGen()
	for i, f := range frames {
		if i < len(s.pageVer) && s.pageVer[i] == 0 {
			s.pageVer[i] = f.Version()
		}
	}
}

// unpinFramesLocked turns the watermarks off (demotion).
func (n *Node) unpinFramesLocked(s *seg) {
	for _, f := range s.frames {
		f.SetTracked(false)
	}
	s.frames = nil
	for i := range s.pageVer {
		s.pageVer[i] = 0
	}
}

// dirtyRangesLocked advances the segment one generation covering every
// given (off, length) range — one generation per call, which is what makes
// a multi-range transactional commit atomic on every replica — and pushes
// the update to every other machine. Each touched page ships either the
// coalesced dirty byte range (declared ranges widened by the frame
// watermark) or the full page when the watermark cannot vouch for it.
func (n *Node) dirtyRangesLocked(s *seg, ranges [][2]uint32) {
	if st, err := n.sys.FS.StatPath(s.path); err == nil && st.Size > s.size {
		s.size = st.Size
	}
	s.gen++
	s.growPageGen()
	n.pinFramesLocked(s)

	// Merge the declared ranges per page.
	type span struct {
		lo, end uint32
		have    bool
	}
	perPage := map[int]*span{}
	declared := 0
	for _, r := range ranges {
		off, length := r[0], r[1]
		if length == 0 {
			continue
		}
		declared++
		first := int(off / PageSize)
		last := int((off + length - 1) / PageSize)
		for p := first; p <= last && p < s.pages(); p++ {
			lo, end := uint32(0), uint32(PageSize)
			if p == first {
				lo = off % PageSize
			}
			if p == last {
				end = (off+length-1)%PageSize + 1
			}
			sp := perPage[p]
			if sp == nil {
				perPage[p] = &span{lo: lo, end: end, have: true}
				continue
			}
			if lo < sp.lo {
				sp.lo = lo
			}
			if end > sp.end {
				sp.end = end
			}
		}
	}
	if declared == 0 && len(s.frames) == 0 {
		return // pure generation bump (MarkDirty of a zero range)
	}

	var pages []page
	for p := 0; p < s.pages(); p++ {
		sp := span{}
		if d := perPage[p]; d != nil {
			sp = *d
		}
		var verNow uint64
		tracked := p < len(s.frames)
		if tracked {
			verNow = s.frames[p].Version()
			if wlo, wend, ok := s.frames[p].TakeDirtyRange(); ok {
				if !sp.have || wlo < sp.lo {
					sp.lo = wlo
				}
				if !sp.have || wend > sp.end {
					sp.end = wend
				}
				sp.have = true
			}
		}
		full := n.cfg.FullPage || !tracked
		if !sp.have {
			// Nothing declared and no watermark: push the full page only
			// if the store-version moved behind the watermark's back.
			if !tracked || verNow == s.pageVer[p] {
				continue
			}
			full = true
		}
		s.pageGen[p] = s.gen
		if tracked {
			s.pageVer[p] = verNow
		}
		if full {
			pages = append(pages, n.readPage(s, p))
			n.ctrFullPages.Inc()
			continue
		}
		if end := (s.size - 1) % PageSize; p == s.pages()-1 && sp.end > end+1 {
			sp.end = end + 1 // clip the watermark to the tail page's content
		}
		if sp.end <= sp.lo {
			continue
		}
		buf := make([]byte, sp.end-sp.lo)
		n.sys.FS.ReadAt(s.path, uint32(p)*PageSize+sp.lo, buf, 0)
		pages = append(pages, page{idx: uint32(p), gen: s.gen, deltas: []rng{{off: sp.lo, data: buf}}})
		n.ctrDeltaPages.Inc()
	}
	if len(pages) == 0 && declared == 0 {
		return
	}

	n.emit(obsv.Event{Name: "write", Mod: s.path, Addr: s.base, Val: s.gen})
	n.emit(obsv.Event{Name: "repl", Phase: obsv.PhaseFlowStart, Mod: s.path,
		Val: s.gen, Flow: obsv.FlowID(s.path, s.gen)})
	m := n.stamp(&msg{typ: msgUpdate, path: s.path, base: s.base, size: s.size,
		epoch: s.epoch, gen: s.gen, tv: s.tv, lease: n.cfg.LeaseTicks, pages: pages})
	b := m.encode()
	for _, peer := range n.net.Nodes() {
		if peer == n.name {
			continue
		}
		n.nd.Send(peer, b)
		n.ctrUpdatesSent.Inc()
		n.emit(obsv.Event{Name: "push", Mod: peer, Val: s.gen})
		// A push obligates the peer: retry until acked or out of attempts.
		ps, ok := s.peers[peer]
		if !ok {
			ps = &peerState{}
			s.peers[peer] = ps
		}
		ps.attempts = 0
		ps.nextTry = n.fleet.Now() + n.cfg.RetryTicks
	}
}

// readPage copies one page of segment content out of the file.
func (n *Node) readPage(s *seg, idx int) page {
	off := uint32(idx) * PageSize
	length := s.size - off
	if length > PageSize {
		length = PageSize
	}
	buf := make([]byte, length)
	n.sys.FS.ReadAt(s.path, off, buf, 0)
	return page{idx: uint32(idx), gen: s.pageGen[idx], full: buf}
}

// ---- home migration ----------------------------------------------------------

// MigrateTo starts a home migration: the current home freezes writes,
// offers the segment (full snapshot, epoch+1) to the target, and demotes
// itself when the target acknowledges its promotion. If the handshake
// never completes — the offer or the ack lost beyond the bounded retries —
// the home aborts, skips past the offered epoch (epoch+2), and resumes.
func (n *Node) MigrateTo(path, target string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, err := n.writableLocked(path)
	if err != nil {
		return err
	}
	if target == n.name {
		return nil
	}
	n.startMigrationLocked(s, target)
	return nil
}

func (n *Node) startMigrationLocked(s *seg, target string) {
	s.migrating = target
	s.migrateTries = 1
	s.migrateAt = n.fleet.Now() + n.cfg.RetryTicks
	n.emit(obsv.Event{Name: "migrate_offer", Mod: s.path, Val: s.epoch + 1})
	n.sendMigrateLocked(s)
}

// sendMigrateLocked ships the full snapshot offer to the migration target.
func (n *Node) sendMigrateLocked(s *seg) {
	var pages []page
	for p := 0; p < s.pages(); p++ {
		pages = append(pages, n.readPage(s, p))
	}
	m := n.stamp(&msg{typ: msgMigrate, path: s.path, base: s.base, size: s.size,
		epoch: s.epoch + 1, gen: s.gen, tv: s.tv, home: s.migrating,
		lease: n.cfg.LeaseTicks, pages: pages})
	n.nd.Send(s.migrating, m.encode())
}

// maybeAutoMigrateLocked moves the home toward the hottest forwarded
// writer once it clears the threshold and leads the home's own count.
func (n *Node) maybeAutoMigrateLocked(s *seg, origin string) {
	if n.cfg.MigrateThreshold < 0 || s.migrating != "" || origin == n.name {
		return
	}
	if s.writeCnt[origin] >= uint64(n.cfg.MigrateThreshold) && s.writeCnt[origin] > s.writeCnt[n.name] {
		n.startMigrationLocked(s, origin)
		s.writeCnt = map[string]uint64{}
	}
}

// ---- replica-side API --------------------------------------------------------

// Attach registers a segment homed on another machine. The local file must
// already exist (an identically-booted machine) at the same address, or
// not exist at all — in which case it is created at the home's slot on
// first contact.
func (n *Node) Attach(path, home string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.segs[path]; ok {
		return fmt.Errorf("netshm: %s already registered on %s", path, n.name)
	}
	s := &seg{path: path, home: home}
	if st, err := n.sys.FS.StatPath(path); err == nil {
		s.base, s.size = st.Addr, st.Size
	}
	n.segs[path] = s
	return nil
}

// Read returns length bytes of the local replica at off. The second result
// reports freshness: false means the replica knows a higher generation
// exists, in which case the read still returns the stale local content but
// triggers an anti-entropy pull. A fresh read under a valid lease costs no
// network traffic at all; a fresh read whose lease expired is counted and
// asks the home for a renewal.
func (n *Node) Read(path string, off, length uint32) ([]byte, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	buf := make([]byte, length)
	if _, err := n.sys.FS.ReadAt(path, off, buf, 0); err != nil {
		return nil, false, err
	}
	fresh := s.isHome || (s.highest <= s.gen && !s.needFull)
	switch {
	case !fresh:
		n.ctrStaleReads.Inc()
		n.pullLocked(s)
	case !s.isHome && s.leaseUntil > 0 && n.fleet.Now() > s.leaseUntil:
		n.ctrLeaseExpired.Inc()
		if now := n.fleet.Now(); now >= s.renewAt {
			s.renewAt = now + n.cfg.RetryTicks
			m := n.stamp(&msg{typ: msgLeaseRenew, path: s.path, base: s.base,
				epoch: s.epoch, gen: s.gen})
			n.nd.Send(s.home, m.encode())
		}
	}
	return buf, fresh, nil
}

// Gen reports the segment's applied and highest-heard generations.
func (n *Node) Gen(path string) (applied, highest uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	return s.gen, s.highest, nil
}

// Base returns the segment's globally-agreed virtual address.
func (n *Node) Base(path string) (uint32, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	return s.base, nil
}

// Segments lists the registered segment paths.
func (n *Node) Segments() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.segs))
	for p := range n.segs {
		out = append(out, p)
	}
	return out
}

// SegInfo is one machine's view of one replicated segment, as reported by
// Info — the doctor's raw material for staleness, divergence, orphaned-
// home, lease and transactional version-clock checks.
type SegInfo struct {
	Path       string
	Base       uint32
	Size       uint32
	Home       string
	IsHome     bool
	Migrating  bool   // home side: an offer is in flight; writes are frozen
	Epoch      uint64 // home epoch; (Epoch, Gen) orders lexicographically
	Gen        uint64 // applied generation
	Highest    uint64 // highest generation heard of (current epoch)
	Tv         uint64 // transactional version clock at Gen
	LeaseUntil uint64 // replica: read lease expiry tick (0 = never granted)
}

// Stale reports whether this replica knows it lags the home.
func (si SegInfo) Stale() bool { return !si.IsHome && si.Highest > si.Gen }

// Writable reports whether this machine accepts writes for the segment
// right now — the doctor's orphaned-home check needs one machine fleet-
// wide for which this is true.
func (si SegInfo) Writable() bool { return si.IsHome && !si.Migrating }

// Info returns this machine's protocol view of the segment at path.
func (n *Node) Info(path string) (SegInfo, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return SegInfo{}, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	return SegInfo{Path: s.path, Base: s.base, Size: s.size, Home: s.home,
		IsHome: s.isHome, Migrating: s.migrating != "", Epoch: s.epoch,
		Gen: s.gen, Highest: s.highest, Tv: s.tv, LeaseUntil: s.leaseUntil}, nil
}

// Digest returns an FNV-1a hash of the segment's local content (the bytes
// every local mapping sees). Two converged machines must agree on it; a
// disagreement after quiesce means replication delivered divergent bytes —
// the doctor's divergence check compares digests across the fleet.
func (n *Node) Digest(path string) (uint64, error) {
	n.mu.Lock()
	s, ok := n.segs[path]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	size := s.size
	n.mu.Unlock()
	if st, err := n.sys.FS.StatPath(path); err == nil && st.Size > size {
		size = st.Size
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	buf := make([]byte, PageSize)
	for off := uint32(0); off < size; off += PageSize {
		want := size - off
		if want > PageSize {
			want = PageSize
		}
		nr, err := n.sys.FS.ReadAt(path, off, buf[:want], 0)
		if err != nil {
			return 0, err
		}
		for _, b := range buf[:nr] {
			h ^= uint64(b)
			h *= prime64
		}
		// Short reads past EOF hash as absent; the size header below keeps
		// digests of different sizes distinct.
		if uint32(nr) < want {
			break
		}
	}
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(size >> (8 * i)))
		h *= prime64
	}
	return h, nil
}

// pullLocked starts (or re-arms) an anti-entropy round for a stale
// replica segment. A replica that adopted a new epoch pulls with epoch 0,
// which the home answers with a full resync — nothing of the old lineage
// survives.
func (n *Node) pullLocked(s *seg) {
	now := n.fleet.Now()
	if s.pullArmed && now < s.pullAt {
		return // a round is already in flight
	}
	s.pullArmed = true
	s.pullAt = now + n.cfg.RetryTicks
	n.ctrAntiEntropy.Inc()
	epoch := s.epoch
	if s.needFull {
		epoch = 0
	}
	m := n.stamp(&msg{typ: msgPull, path: s.path, base: s.base, epoch: epoch, gen: s.gen})
	n.nd.Send(s.home, m.encode())
}

// ---- application payloads ----------------------------------------------------

// OnApp installs the handler for application datagrams multiplexed over
// the protocol NIC (rwho status packets travelling to the segment's home).
func (n *Node) OnApp(fn func(from string, payload []byte)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onApp = fn
}

// SendApp unicasts an application payload to another machine.
func (n *Node) SendApp(to string, payload []byte) error {
	m := n.stamp(&msg{typ: msgApp, payload: payload})
	return n.nd.Send(to, m.encode())
}

// ---- the per-tick protocol engine --------------------------------------------

// Step runs one virtual-clock tick of the protocol: drain the inbox, run
// the home-side retry / announce / migration timers, and re-send overdue
// pulls. Fleet.Tick calls it for every machine in a deterministic order.
func (n *Node) Step() {
	for {
		d, ok := n.nd.Recv()
		if !ok {
			break
		}
		m, err := decodeMsg(d.Payload)
		// decodeMsg copies every field, so the datagram buffer can back a
		// future datagram immediately.
		n.net.Recycle(d.Payload)
		if err != nil {
			continue // runt or foreign datagram; drop like rwhod does
		}
		n.handle(d.From, m)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.fleet.Now()
	for _, s := range n.segs {
		if s.isHome {
			if s.migrating != "" && now >= s.migrateAt {
				if s.migrateTries >= n.cfg.RetryMax {
					// Abort: skip PAST the offered epoch, so even if the
					// target promoted and our ack back never arrives, this
					// home's resumed lineage outranks the target's.
					s.epoch += 2
					s.migrating = ""
					n.ctrMigrateAborts.Inc()
					n.emit(obsv.Event{Name: "migrate_abort", Mod: s.path, Val: s.epoch})
					n.announceLocked(s)
				} else {
					n.sendMigrateLocked(s)
					s.migrateTries++
					backoff := n.cfg.RetryTicks << uint(s.migrateTries)
					if backoff > n.cfg.BackoffCap {
						backoff = n.cfg.BackoffCap
					}
					s.migrateAt = now + backoff
				}
			}
			n.retryLocked(s, now)
			if n.cfg.AnnounceTicks > 0 && now%n.cfg.AnnounceTicks == 0 {
				n.announceLocked(s)
			}
		} else if s.pullArmed && now >= s.pullAt && (s.needFull || s.highest > s.gen) {
			s.pullArmed = false
			n.pullLocked(s) // the previous round was lost; go again
		}
	}
	n.stepTxnLocked(now)
}

// announceLocked broadcasts the segment's existence and version.
func (n *Node) announceLocked(s *seg) {
	a := n.stamp(&msg{typ: msgAnnounce, path: s.path, base: s.base, size: s.size,
		epoch: s.epoch, gen: s.gen, tv: s.tv, home: n.name, lease: n.cfg.LeaseTicks})
	n.nd.Broadcast(a.encode())
}

// retryLocked sends catch-up syncs to replicas whose acked generation
// lags, with exponential backoff and a bounded attempt count.
func (n *Node) retryLocked(s *seg, now uint64) {
	for peer, ps := range s.peers {
		if ps.acked >= s.gen || now < ps.nextTry || ps.attempts >= n.cfg.RetryMax {
			continue
		}
		n.sendSyncLocked(s, peer, ps.acked)
		n.ctrRetries.Inc()
		ps.attempts++
		backoff := n.cfg.RetryTicks << uint(ps.attempts)
		if backoff > n.cfg.BackoffCap {
			backoff = n.cfg.BackoffCap
		}
		ps.nextTry = now + backoff
	}
}

// sendSyncLocked ships every page newer than sinceGen to one replica,
// full-page (syncs are the out-of-order path, deltas need in-order).
func (n *Node) sendSyncLocked(s *seg, to string, sinceGen uint64) {
	var pages []page
	for p := 0; p < s.pages(); p++ {
		if s.pageGen[p] > sinceGen {
			pages = append(pages, n.readPage(s, p))
		}
	}
	m := n.stamp(&msg{typ: msgSync, path: s.path, base: s.base, size: s.size,
		epoch: s.epoch, gen: s.gen, tv: s.tv, lease: n.cfg.LeaseTicks, pages: pages})
	n.nd.Send(to, m.encode())
}

// sendFullSyncLocked ships every page — the answer to a lower-epoch pull:
// the puller's lineage cannot be trusted at all, so all of it is replaced.
func (n *Node) sendFullSyncLocked(s *seg, to string) {
	var pages []page
	for p := 0; p < s.pages(); p++ {
		pages = append(pages, n.readPage(s, p))
	}
	m := n.stamp(&msg{typ: msgSync, flag: flagFull, path: s.path, base: s.base,
		size: s.size, epoch: s.epoch, gen: s.gen, tv: s.tv,
		lease: n.cfg.LeaseTicks, pages: pages})
	n.ctrEpochResyncs.Inc()
	n.nd.Send(to, m.encode())
}

// handle dispatches one decoded protocol message.
func (n *Node) handle(from string, m *msg) {
	if m.typ == msgApp {
		n.mu.Lock()
		fn := n.onApp
		n.mu.Unlock()
		if fn != nil {
			fn(from, m.payload)
		}
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	switch m.typ {
	case msgUpdate, msgSync:
		s := n.adoptLocked(from, m)
		if s == nil {
			return
		}
		n.recvContentLocked(from, m, s)
	case msgAck:
		s, ok := n.segs[m.path]
		if !ok || !s.isHome || m.epoch != s.epoch {
			return
		}
		n.ctrAcksRecv.Inc()
		ps, okp := s.peers[from]
		if !okp {
			ps = &peerState{}
			s.peers[from] = ps
		}
		if m.gen > ps.acked {
			ps.acked = m.gen
			ps.attempts = 0
			ps.nextTry = n.fleet.Now() + n.cfg.RetryTicks
		}
	case msgPull:
		s, ok := n.segs[m.path]
		if !ok || !s.isHome {
			return
		}
		n.ctrPullsServed.Inc()
		if m.epoch < s.epoch {
			n.sendFullSyncLocked(s, from)
		} else {
			n.sendSyncLocked(s, from, m.gen)
		}
	case msgAnnounce:
		s, ok := n.segs[m.path]
		if !ok {
			// A machine joining an established fleet: materialise the
			// segment and pull its content — the join-triggered
			// anti-entropy round.
			s = n.adoptLocked(from, m)
			if s == nil {
				return
			}
		}
		if s.isHome {
			if m.epoch > s.epoch {
				// A higher-epoch home exists: this machine was deposed
				// (its migrate-ack or abort-announce raced). Demote and
				// resync — higher epoch always wins.
				n.adoptAuthorityLocked(s, m, from, true)
			}
			return
		}
		if m.epoch < s.epoch {
			return
		}
		if m.epoch > s.epoch {
			n.adoptAuthorityLocked(s, m, from, true)
			return
		}
		if m.gen > s.highest {
			s.highest = m.gen
		}
		n.noteStale(s)
		n.leaseLocked(s, m)
		if (s.highest > s.gen || s.needFull) && !s.pullArmed {
			n.pullLocked(s)
		}
	case msgMigrate:
		n.recvMigrateLocked(from, m)
	case msgMigrateAck:
		s, ok := n.segs[m.path]
		if !ok || !s.isHome || s.migrating != from || m.epoch != s.epoch+1 {
			return
		}
		// Target promoted: demote. Content here is current at gen, so no
		// resync is needed — this machine becomes an up-to-date replica.
		n.unpinFramesLocked(s)
		s.isHome = false
		s.home = from
		s.epoch = m.epoch
		s.migrating = ""
		s.highest = s.gen
		s.needFull = false
		s.peers = nil
		s.writeCnt = nil
		n.emit(obsv.Event{Name: "migrate_done", Mod: s.path, Val: s.epoch})
	case msgLeaseRenew:
		s, ok := n.segs[m.path]
		if !ok || !s.isHome {
			return
		}
		n.ctrLeaseRenews.Inc()
		if m.epoch == s.epoch && m.gen >= s.gen {
			g := n.stamp(&msg{typ: msgLeaseGrant, path: s.path, base: s.base,
				epoch: s.epoch, gen: s.gen, tv: s.tv, lease: n.cfg.LeaseTicks})
			n.ctrLeaseGrants.Inc()
			n.nd.Send(from, g.encode())
		} else if m.epoch < s.epoch {
			n.sendFullSyncLocked(s, from)
		} else {
			n.sendSyncLocked(s, from, m.gen)
		}
	case msgLeaseGrant:
		s, ok := n.segs[m.path]
		if !ok || s.isHome || m.epoch != s.epoch {
			return
		}
		n.leaseLocked(s, m)
	case msgWriteFwd:
		n.recvWriteFwdLocked(from, m)
	case msgTxnFwd:
		n.recvTxnFwdLocked(from, m)
	case msgTxnResult:
		n.recvTxnResultLocked(from, m)
	}
}

// leaseLocked extends the replica's read lease from a home-originated
// message at the current epoch.
func (n *Node) leaseLocked(s *seg, m *msg) {
	if s.isHome || m.lease == 0 {
		return
	}
	if until := n.fleet.Now() + m.lease; until > s.leaseUntil {
		s.leaseUntil = until
	}
}

// adoptAuthorityLocked records a new (higher-epoch) home for the segment.
// The local content — possibly from an abandoned lineage — is kept for
// reads but trusted for nothing else until a full resync arrives; armPull
// starts that resync immediately.
func (n *Node) adoptAuthorityLocked(s *seg, m *msg, from string, armPull bool) {
	if s.isHome {
		n.unpinFramesLocked(s)
		s.isHome = false
		s.migrating = ""
		s.peers = nil
		s.writeCnt = nil
	}
	s.epoch = m.epoch
	s.home = from
	if m.home != "" && m.typ == msgAnnounce {
		s.home = m.home
	}
	s.highest = m.gen
	s.needFull = true
	s.leaseUntil = 0
	s.pullArmed = false
	n.noteStale(s)
	if armPull {
		n.pullLocked(s)
	}
}

// recvContentLocked is the replica-side acceptance logic for updates and
// syncs, ordered by (epoch, gen).
func (n *Node) recvContentLocked(from string, m *msg, s *seg) {
	if s.isHome {
		if m.epoch > s.epoch {
			n.adoptAuthorityLocked(s, m, from, true)
		}
		return // own or stale-epoch traffic: a home takes content from no one
	}
	if m.epoch < s.epoch {
		n.ctrUpdatesDup.Inc()
		return
	}
	if m.epoch > s.epoch {
		if m.typ == msgSync && m.flag&flagFull != 0 {
			// A full resync from the new authority: adopt and apply in one
			// step — every page is replaced, nothing of this lineage
			// survives.
			n.adoptAuthorityLocked(s, m, from, false)
			n.applyLocked(s, m)
			n.ctrUpdatesApplied.Inc()
			s.needFull = false
			s.highest = m.gen
		} else {
			n.adoptAuthorityLocked(s, m, from, true)
		}
		n.ackLocked(s)
		return
	}
	// Same epoch: the classic generation protocol.
	switch m.typ {
	case msgUpdate:
		switch {
		case m.gen <= s.gen: // duplicate: already applied; re-ack idempotently
			n.ctrUpdatesDup.Inc()
		case m.gen == s.gen+1 && !s.needFull: // in order: apply
			n.applyLocked(s, m)
			n.ctrUpdatesApplied.Inc()
		default: // gap (or untrusted lineage): remember we're stale; the ack tells the home
			if m.gen > s.highest {
				s.highest = m.gen
			}
			n.noteStale(s)
		}
	case msgSync:
		full := m.flag&flagFull != 0
		switch {
		case full && (s.needFull || m.gen >= s.gen):
			// A full resync replaces everything, even when the abandoned
			// lineage's generation counter ran ahead of the authority's.
			// Within one epoch gens are totally ordered by the single home,
			// so highest only ever moves up: a delayed resync must not make
			// the replica forget a newer announced generation.
			n.applyLocked(s, m)
			n.ctrUpdatesApplied.Inc()
			s.gen = m.gen
			if m.gen > s.highest {
				s.highest = m.gen
			}
			s.needFull = false
			s.pullArmed = false
			n.noteStale(s)
			if s.highest > s.gen {
				n.pullLocked(s)
			}
		case !full && !s.needFull && m.gen > s.gen:
			n.applyLocked(s, m)
			n.ctrUpdatesApplied.Inc()
			s.pullArmed = false
		default:
			n.ctrUpdatesDup.Inc()
		}
	}
	n.leaseLocked(s, m)
	n.ackLocked(s)
}

// recvMigrateLocked handles a home-migration offer: promote, ack, and
// announce the new reign.
func (n *Node) recvMigrateLocked(from string, m *msg) {
	s := n.adoptLocked(from, m)
	if s == nil {
		return
	}
	if m.epoch <= s.epoch {
		if s.isHome && m.epoch == s.epoch {
			// Duplicate offer for the epoch this machine already rules:
			// the ack was lost; re-ack idempotently.
			a := n.stamp(&msg{typ: msgMigrateAck, path: s.path, base: s.base, epoch: s.epoch})
			n.nd.Send(from, a.encode())
		}
		return
	}
	// Promote: apply the full snapshot, take the home role at the offered
	// epoch, and tell everyone.
	n.applyLocked(s, m)
	s.isHome = true
	s.home = n.name
	s.epoch = m.epoch
	s.gen = m.gen
	s.tv = m.tv
	s.highest = m.gen
	s.size = m.size
	s.needFull = false
	s.pullArmed = false
	s.migrating = ""
	s.leaseUntil = 0
	s.growPageGen()
	for _, p := range m.pages {
		if int(p.idx) < len(s.pageGen) {
			s.pageGen[p.idx] = p.gen
		}
	}
	s.peers = map[string]*peerState{}
	s.writeCnt = map[string]uint64{}
	s.frames = nil
	for i := range s.pageVer {
		s.pageVer[i] = 0
	}
	n.pinFramesLocked(s)
	n.ctrMigrations.Inc()
	n.emit(obsv.Event{Name: "migrate_promote", Mod: s.path, Val: s.epoch})
	a := n.stamp(&msg{typ: msgMigrateAck, path: s.path, base: s.base, epoch: s.epoch})
	n.nd.Send(from, a.encode())
	n.announceLocked(s)
}

// recvWriteFwdLocked applies a forwarded write at the home and feeds the
// migration heuristic. A frozen (migrating) or deposed home drops the
// write — forwarded writes are datagrams, with datagram guarantees; the
// writer's own retry or the application's idempotence covers the loss.
func (n *Node) recvWriteFwdLocked(from string, m *msg) {
	s, ok := n.segs[m.path]
	if !ok || !s.isHome || s.migrating != "" {
		return
	}
	var ranges [][2]uint32
	for _, p := range m.pages {
		for _, r := range p.deltas {
			off := p.idx*PageSize + r.off
			n.sys.FS.WriteAt(s.path, off, r.data, 0)
			ranges = append(ranges, [2]uint32{off, uint32(len(r.data))})
		}
	}
	if len(ranges) == 0 {
		return
	}
	s.writeCnt[m.origin]++
	n.dirtyRangesLocked(s, ranges)
	n.maybeAutoMigrateLocked(s, m.origin)
}

// adoptLocked resolves the local seg for a home-originated message,
// creating both the protocol state and — for a genuinely new machine —
// the backing file at the home's exact inode slot. A segment whose local
// address disagrees with the home's is refused and counted.
func (n *Node) adoptLocked(from string, m *msg) *seg {
	if s, ok := n.segs[m.path]; ok {
		if s.base == 0 {
			s.base = m.base
		}
		if s.base != m.base {
			n.ctrAddrClash.Inc()
			return nil
		}
		return s
	}
	st, err := n.sys.FS.StatPath(m.path)
	switch {
	case err == nil:
		if st.Addr != m.base {
			n.ctrAddrClash.Inc()
			return nil
		}
	default:
		ino, err := shmfs.InodeAt(m.base)
		if err != nil {
			n.ctrAddrClash.Inc()
			return nil
		}
		if err := n.sys.FS.MkdirAll(parentDir(m.path), shmfs.DefaultDirMode, 0); err != nil {
			return nil
		}
		if _, err := n.sys.FS.CreateAt(m.path, ino, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, 0); err != nil {
			n.ctrAddrClash.Inc() // slot taken by something else locally
			return nil
		}
	}
	s := &seg{path: m.path, base: m.base, home: from}
	n.segs[m.path] = s
	return s
}

// applyLocked writes a message's pages into the local replica and adopts
// its generation, version clock and size. Page writes go through the file
// interface, so every local mapping of the segment sees them instantly.
// Delta pages patch only the carried byte ranges; full pages replace.
func (n *Node) applyLocked(s *seg, m *msg) {
	for _, p := range m.pages {
		if p.full != nil {
			n.sys.FS.WriteAt(s.path, p.idx*PageSize, p.full, 0)
			continue
		}
		for _, r := range p.deltas {
			n.sys.FS.WriteAt(s.path, p.idx*PageSize+r.off, r.data, 0)
		}
	}
	s.gen = m.gen
	s.size = m.size
	s.tv = m.tv
	if m.gen > s.highest {
		s.highest = m.gen
	}
	if m.stick > 0 {
		if s.lagHist == nil {
			s.lagHist = n.fleet.Reg.Histogram("netshm.lag_ticks:" + s.path)
		}
		now := n.fleet.Now()
		lag := uint64(0)
		if now > m.stick {
			lag = now - m.stick
		}
		s.lagHist.Observe(lag)
	}
	n.noteStale(s)
	n.emit(obsv.Event{Name: "apply", Mod: s.path, Addr: s.base, Val: m.gen})
	n.emit(obsv.Event{Name: "repl", Phase: obsv.PhaseFlowEnd, Mod: s.path,
		Val: m.gen, Flow: obsv.FlowID(s.path, m.gen)})
}

// ackLocked reports the replica's applied generation to the home.
func (n *Node) ackLocked(s *seg) {
	m := n.stamp(&msg{typ: msgAck, path: s.path, base: s.base, epoch: s.epoch, gen: s.gen})
	n.nd.Send(s.home, m.encode())
}

func parentDir(p string) string {
	p = shmfs.Clean(p)
	if i := strings.LastIndexByte(p, '/'); i > 0 {
		return p[:i]
	}
	return "/"
}
