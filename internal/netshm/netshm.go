// Package netshm extends Hemlock's shared segments across a network of
// simulated machines. Each machine is a full kernel + shmfs + address
// space; netshm replicates public segments between them over netsim,
// preserving the Hemlock invariant that a public module occupies the same
// virtual address on every machine — the home machine dictates the inode
// slot, and replicas materialise the segment at that exact slot
// (shmfs.CreateAt), so a pointer stored into the segment on one machine
// dereferences correctly on all of them.
//
// Coherence is page-granularity and single-home:
//
//   - every segment has one home machine; all writes happen there;
//   - the home pushes sequence-numbered page updates (one generation per
//     write batch, carrying exactly the pages that changed);
//   - replicas apply updates idempotently and strictly in order,
//     acknowledging their applied generation;
//   - the home retries lagging replicas with catch-up syncs — bounded
//     attempts, exponential backoff, all driven by the fleet's virtual
//     clock so tests are deterministic;
//   - a pull-based anti-entropy round — triggered by a read of a stale
//     generation or by a node joining the fleet — heals whatever the lossy
//     LAN and the bounded retries left behind;
//   - the home periodically announces (path, base, generation), which is
//     how latecomers discover segments and how replicas learn they are
//     stale without receiving any update.
//
// Every protocol action is counted in the fleet's obsv registry
// ("netshm.*"), next to the network's own delivery/loss counters.
package netshm

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"hemlock/internal/core"
	"hemlock/internal/mem"
	"hemlock/internal/netsim"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
)

// Errors.
var (
	ErrNotHome    = errors.New("netshm: segment is homed on another machine")
	ErrUnknownSeg = errors.New("netshm: unknown segment")
	ErrAddrClash  = errors.New("netshm: segment address differs between machines")
)

// PageSize is the replication granularity: the machine page.
const PageSize = mem.PageSize

// Config tunes the protocol's virtual-clock behaviour. The zero value
// selects the defaults.
type Config struct {
	RetryTicks    uint64 // ticks before the first catch-up retry (default 2)
	RetryMax      int    // bounded retry: attempts per lag episode (default 8)
	BackoffCap    uint64 // ceiling on the backoff interval (default 16)
	AnnounceTicks uint64 // announce period for home segments (default 4)
}

func (c Config) withDefaults() Config {
	if c.RetryTicks == 0 {
		c.RetryTicks = 2
	}
	if c.RetryMax == 0 {
		c.RetryMax = 8
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 16
	}
	if c.AnnounceTicks == 0 {
		c.AnnounceTicks = 4
	}
	return c
}

// seg is one replicated segment as seen by one machine.
type seg struct {
	path   string
	base   uint32
	size   uint32
	home   string
	isHome bool

	gen     uint64 // applied generation (home: current generation)
	highest uint64 // highest generation heard of (replicas)

	// Home-side replication state.
	pageGen []uint64              // generation at which each page last changed
	peers   map[string]*peerState // keyed by replica name, discovered via acks

	// Replica-side anti-entropy state.
	pullArmed bool   // a pull round is in flight or due
	pullAt    uint64 // virtual tick to (re)send the pull

	// Lazily-fetched per-segment instruments (apply path).
	lagHist *obsv.Histogram // netshm.lag_ticks:<path> — send→apply ticks
	staleG  *obsv.Gauge     // netshm.staleness:<machine>:<path> — highest-gen gap
}

// peerState is the home's view of one replica.
type peerState struct {
	acked    uint64 // highest generation the replica acknowledged
	attempts int    // catch-up retries since last progress
	nextTry  uint64 // virtual tick of the next retry
}

func (s *seg) pages() int { return int((s.size + PageSize - 1) / PageSize) }

func (s *seg) growPageGen() {
	for len(s.pageGen) < s.pages() {
		s.pageGen = append(s.pageGen, 0)
	}
}

// Node is one machine's netshm endpoint: its Hemlock system plus the
// protocol state for every segment it homes or replicates.
type Node struct {
	name  string
	sys   *core.System
	net   *netsim.Network
	nd    *netsim.Node
	fleet *Fleet
	cfg   Config
	idx   int // fleet index (Add order): the event PID / Chrome track

	mu    sync.Mutex
	segs  map[string]*seg
	onApp func(from string, payload []byte)

	ctrUpdatesSent    *obsv.Counter
	ctrUpdatesApplied *obsv.Counter
	ctrUpdatesDup     *obsv.Counter
	ctrAcksRecv       *obsv.Counter
	ctrRetries        *obsv.Counter
	ctrAntiEntropy    *obsv.Counter
	ctrPullsServed    *obsv.Counter
	ctrStaleReads     *obsv.Counter
	ctrAddrClash      *obsv.Counter
}

// Name returns the machine name.
func (n *Node) Name() string { return n.name }

// emit sends a protocol event to the fleet tracer, stamped with this
// machine's fleet index so each machine is one track in a merged trace.
func (n *Node) emit(e obsv.Event) {
	if t := n.fleet.Trace; t.Enabled() {
		e.Subsys = "netshm"
		e.PID = n.idx
		t.Emit(e)
	}
}

// stamp fills the message's trace context at send time.
func (n *Node) stamp(m *msg) *msg {
	m.origin = n.name
	m.stick = n.fleet.Now()
	return m
}

// noteStale refreshes the segment's staleness gauge (how many generations
// behind the highest heard this machine's replica is).
func (n *Node) noteStale(s *seg) {
	if s.staleG == nil {
		s.staleG = n.fleet.Reg.Gauge("netshm.staleness:" + n.name + ":" + s.path)
	}
	lag := int64(0)
	if s.highest > s.gen {
		lag = int64(s.highest - s.gen)
	}
	s.staleG.Set(lag)
}

// Sys returns the machine's Hemlock system.
func (n *Node) Sys() *core.System { return n.sys }

func (n *Node) wire(r *obsv.Registry) {
	n.ctrUpdatesSent = r.Counter("netshm.updates_sent")
	n.ctrUpdatesApplied = r.Counter("netshm.updates_applied")
	n.ctrUpdatesDup = r.Counter("netshm.updates_dup")
	n.ctrAcksRecv = r.Counter("netshm.acks_recv")
	n.ctrRetries = r.Counter("netshm.retries")
	n.ctrAntiEntropy = r.Counter("netshm.anti_entropy_rounds")
	n.ctrPullsServed = r.Counter("netshm.pulls_served")
	n.ctrStaleReads = r.Counter("netshm.stale_reads")
	n.ctrAddrClash = r.Counter("netshm.addr_mismatch")
}

// ---- home-side API -----------------------------------------------------------

// Serve registers an existing shmfs file as a segment homed here. Its
// current content is generation 0 — the state identically-booted replicas
// already hold (the rwho whod table, for instance).
func (n *Node) Serve(path string) error {
	st, err := n.sys.FS.StatPath(path)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.segs[path]; ok {
		return fmt.Errorf("netshm: %s already registered on %s", path, n.name)
	}
	s := &seg{path: path, base: st.Addr, size: st.Size, home: n.name, isHome: true,
		peers: map[string]*peerState{}}
	s.growPageGen()
	n.segs[path] = s
	return nil
}

// Publish creates a new segment homed here with the given content and
// pushes it to every machine on the network as generation 1.
func (n *Node) Publish(path string, data []byte) error {
	if err := n.sys.FS.MkdirAll(parentDir(path), shmfs.DefaultDirMode, 0); err != nil {
		return err
	}
	if _, err := n.sys.FS.Create(path, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, 0); err != nil {
		return err
	}
	if _, err := n.sys.FS.WriteAt(path, 0, data, 0); err != nil {
		return err
	}
	if err := n.Serve(path); err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dirtyLocked(n.segs[path], 0, uint32(len(data)))
	return nil
}

// Write stores data into a segment homed here (through the file interface
// — the very frames every local mapping sees) and replicates the dirtied
// pages.
func (n *Node) Write(path string, off uint32, data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	if !s.isHome {
		return fmt.Errorf("%w: %s is homed on %s", ErrNotHome, path, s.home)
	}
	if _, err := n.sys.FS.WriteAt(path, off, data, 0); err != nil {
		return err
	}
	n.dirtyLocked(s, off, uint32(len(data)))
	return nil
}

// MarkDirty replicates a range that was already written through a local
// mapping of the segment (a hosted daemon storing through Var, a compiled
// program storing through the MMU): same frames, so the content is already
// there — only the protocol needs telling.
func (n *Node) MarkDirty(path string, off, length uint32) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	if !s.isHome {
		return fmt.Errorf("%w: %s is homed on %s", ErrNotHome, path, s.home)
	}
	n.dirtyLocked(s, off, length)
	return nil
}

// dirtyLocked advances the segment one generation, stamps the covered
// pages, and pushes the update to every other machine.
func (n *Node) dirtyLocked(s *seg, off, length uint32) {
	if st, err := n.sys.FS.StatPath(s.path); err == nil && st.Size > s.size {
		s.size = st.Size
	}
	s.gen++
	s.growPageGen()
	if length == 0 {
		return
	}
	first := int(off / PageSize)
	last := int((off + length - 1) / PageSize)
	var pages []page
	for p := first; p <= last && p < s.pages(); p++ {
		s.pageGen[p] = s.gen
		pages = append(pages, n.readPage(s, p))
	}
	n.emit(obsv.Event{Name: "write", Mod: s.path, Addr: s.base, Val: s.gen})
	n.emit(obsv.Event{Name: "repl", Phase: obsv.PhaseFlowStart, Mod: s.path,
		Val: s.gen, Flow: obsv.FlowID(s.path, s.gen)})
	m := n.stamp(&msg{typ: msgUpdate, path: s.path, base: s.base, size: s.size, gen: s.gen, pages: pages})
	b := m.encode()
	for _, peer := range n.net.Nodes() {
		if peer == n.name {
			continue
		}
		n.nd.Send(peer, b)
		n.ctrUpdatesSent.Inc()
		n.emit(obsv.Event{Name: "push", Mod: peer, Val: s.gen})
		// A push obligates the peer: retry until acked or out of attempts.
		ps, ok := s.peers[peer]
		if !ok {
			ps = &peerState{}
			s.peers[peer] = ps
		}
		ps.attempts = 0
		ps.nextTry = n.fleet.Now() + n.cfg.RetryTicks
	}
}

// readPage copies one page of segment content out of the file.
func (n *Node) readPage(s *seg, idx int) page {
	off := uint32(idx) * PageSize
	length := s.size - off
	if length > PageSize {
		length = PageSize
	}
	buf := make([]byte, length)
	n.sys.FS.ReadAt(s.path, off, buf, 0)
	return page{idx: uint32(idx), data: buf}
}

// ---- replica-side API --------------------------------------------------------

// Attach registers a segment homed on another machine. The local file must
// already exist (an identically-booted machine) at the same address, or
// not exist at all — in which case it is created at the home's slot on
// first contact.
func (n *Node) Attach(path, home string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.segs[path]; ok {
		return fmt.Errorf("netshm: %s already registered on %s", path, n.name)
	}
	s := &seg{path: path, home: home}
	if st, err := n.sys.FS.StatPath(path); err == nil {
		s.base, s.size = st.Addr, st.Size
	}
	n.segs[path] = s
	return nil
}

// Read returns length bytes of the local replica at off. The second result
// reports freshness: false means the replica knows a higher generation
// exists, in which case the read still returns the stale local content but
// triggers an anti-entropy pull.
func (n *Node) Read(path string, off, length uint32) ([]byte, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return nil, false, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	buf := make([]byte, length)
	if _, err := n.sys.FS.ReadAt(path, off, buf, 0); err != nil {
		return nil, false, err
	}
	fresh := s.isHome || s.highest <= s.gen
	if !fresh {
		n.ctrStaleReads.Inc()
		n.pullLocked(s)
	}
	return buf, fresh, nil
}

// Gen reports the segment's applied and highest-heard generations.
func (n *Node) Gen(path string) (applied, highest uint64, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	return s.gen, s.highest, nil
}

// Base returns the segment's globally-agreed virtual address.
func (n *Node) Base(path string) (uint32, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	return s.base, nil
}

// Segments lists the registered segment paths.
func (n *Node) Segments() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.segs))
	for p := range n.segs {
		out = append(out, p)
	}
	return out
}

// SegInfo is one machine's view of one replicated segment, as reported by
// Info — the doctor's raw material for staleness and divergence checks.
type SegInfo struct {
	Path    string
	Base    uint32
	Size    uint32
	Home    string
	IsHome  bool
	Gen     uint64 // applied generation
	Highest uint64 // highest generation heard of
}

// Stale reports whether this replica knows it lags the home.
func (si SegInfo) Stale() bool { return !si.IsHome && si.Highest > si.Gen }

// Info returns this machine's protocol view of the segment at path.
func (n *Node) Info(path string) (SegInfo, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.segs[path]
	if !ok {
		return SegInfo{}, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	return SegInfo{Path: s.path, Base: s.base, Size: s.size, Home: s.home,
		IsHome: s.isHome, Gen: s.gen, Highest: s.highest}, nil
}

// Digest returns an FNV-1a hash of the segment's local content (the bytes
// every local mapping sees). Two converged machines must agree on it; a
// disagreement after quiesce means replication delivered divergent bytes —
// the doctor's divergence check compares digests across the fleet.
func (n *Node) Digest(path string) (uint64, error) {
	n.mu.Lock()
	s, ok := n.segs[path]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	size := s.size
	n.mu.Unlock()
	if st, err := n.sys.FS.StatPath(path); err == nil && st.Size > size {
		size = st.Size
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	buf := make([]byte, PageSize)
	for off := uint32(0); off < size; off += PageSize {
		want := size - off
		if want > PageSize {
			want = PageSize
		}
		nr, err := n.sys.FS.ReadAt(path, off, buf[:want], 0)
		if err != nil {
			return 0, err
		}
		for _, b := range buf[:nr] {
			h ^= uint64(b)
			h *= prime64
		}
		// Short reads past EOF hash as absent; the size header below keeps
		// digests of different sizes distinct.
		if uint32(nr) < want {
			break
		}
	}
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(size >> (8 * i)))
		h *= prime64
	}
	return h, nil
}

// pullLocked starts (or re-arms) an anti-entropy round for a stale
// replica segment.
func (n *Node) pullLocked(s *seg) {
	now := n.fleet.Now()
	if s.pullArmed && now < s.pullAt {
		return // a round is already in flight
	}
	s.pullArmed = true
	s.pullAt = now + n.cfg.RetryTicks
	n.ctrAntiEntropy.Inc()
	m := n.stamp(&msg{typ: msgPull, path: s.path, base: s.base, gen: s.gen})
	n.nd.Send(s.home, m.encode())
}

// ---- application payloads ----------------------------------------------------

// OnApp installs the handler for application datagrams multiplexed over
// the protocol NIC (rwho status packets travelling to the segment's home).
func (n *Node) OnApp(fn func(from string, payload []byte)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onApp = fn
}

// SendApp unicasts an application payload to another machine.
func (n *Node) SendApp(to string, payload []byte) error {
	m := n.stamp(&msg{typ: msgApp, payload: payload})
	return n.nd.Send(to, m.encode())
}

// ---- the per-tick protocol engine --------------------------------------------

// Step runs one virtual-clock tick of the protocol: drain the inbox, run
// the home-side retry and announce timers, and re-send overdue pulls.
// Fleet.Tick calls it for every machine in a deterministic order.
func (n *Node) Step() {
	for {
		d, ok := n.nd.Recv()
		if !ok {
			break
		}
		m, err := decodeMsg(d.Payload)
		if err != nil {
			continue // runt or foreign datagram; drop like rwhod does
		}
		n.handle(d.From, m)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.fleet.Now()
	for _, s := range n.segs {
		if s.isHome {
			n.retryLocked(s, now)
			if n.cfg.AnnounceTicks > 0 && now%n.cfg.AnnounceTicks == 0 {
				a := n.stamp(&msg{typ: msgAnnounce, path: s.path, base: s.base, size: s.size, gen: s.gen})
				n.nd.Broadcast(a.encode())
			}
		} else if s.pullArmed && now >= s.pullAt && s.highest > s.gen {
			s.pullArmed = false
			n.pullLocked(s) // the previous round was lost; go again
		}
	}
}

// retryLocked sends catch-up syncs to replicas whose acked generation
// lags, with exponential backoff and a bounded attempt count.
func (n *Node) retryLocked(s *seg, now uint64) {
	for peer, ps := range s.peers {
		if ps.acked >= s.gen || now < ps.nextTry || ps.attempts >= n.cfg.RetryMax {
			continue
		}
		n.sendSyncLocked(s, peer, ps.acked)
		n.ctrRetries.Inc()
		ps.attempts++
		backoff := n.cfg.RetryTicks << uint(ps.attempts)
		if backoff > n.cfg.BackoffCap {
			backoff = n.cfg.BackoffCap
		}
		ps.nextTry = now + backoff
	}
}

// sendSyncLocked ships every page newer than sinceGen to one replica.
func (n *Node) sendSyncLocked(s *seg, to string, sinceGen uint64) {
	var pages []page
	for p := 0; p < s.pages(); p++ {
		if s.pageGen[p] > sinceGen {
			pages = append(pages, n.readPage(s, p))
		}
	}
	m := n.stamp(&msg{typ: msgSync, path: s.path, base: s.base, size: s.size, gen: s.gen, pages: pages})
	n.nd.Send(to, m.encode())
}

// handle dispatches one decoded protocol message.
func (n *Node) handle(from string, m *msg) {
	if m.typ == msgApp {
		n.mu.Lock()
		fn := n.onApp
		n.mu.Unlock()
		if fn != nil {
			fn(from, m.payload)
		}
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	switch m.typ {
	case msgUpdate:
		s := n.adoptLocked(from, m)
		if s == nil {
			return
		}
		switch {
		case m.gen <= s.gen: // duplicate: already applied; re-ack idempotently
			n.ctrUpdatesDup.Inc()
		case m.gen == s.gen+1: // in order: apply
			n.applyLocked(s, m)
			n.ctrUpdatesApplied.Inc()
		default: // gap: stay put, remember we're stale; the ack tells the home
			if m.gen > s.highest {
				s.highest = m.gen
			}
			n.noteStale(s)
		}
		n.ackLocked(s)
	case msgSync:
		s := n.adoptLocked(from, m)
		if s == nil {
			return
		}
		if m.gen > s.gen {
			n.applyLocked(s, m)
			n.ctrUpdatesApplied.Inc()
			s.pullArmed = false
		} else {
			n.ctrUpdatesDup.Inc()
		}
		n.ackLocked(s)
	case msgAck:
		s, ok := n.segs[m.path]
		if !ok || !s.isHome {
			return
		}
		n.ctrAcksRecv.Inc()
		ps, okp := s.peers[from]
		if !okp {
			ps = &peerState{}
			s.peers[from] = ps
		}
		if m.gen > ps.acked {
			ps.acked = m.gen
			ps.attempts = 0
			ps.nextTry = n.fleet.Now() + n.cfg.RetryTicks
		}
	case msgPull:
		s, ok := n.segs[m.path]
		if !ok || !s.isHome {
			return
		}
		n.ctrPullsServed.Inc()
		n.sendSyncLocked(s, from, m.gen)
	case msgAnnounce:
		s, ok := n.segs[m.path]
		if !ok {
			// A machine joining an established fleet: materialise the
			// segment and pull its content — the join-triggered
			// anti-entropy round.
			s = n.adoptLocked(from, m)
			if s == nil {
				return
			}
		}
		if s.isHome {
			return
		}
		if m.gen > s.highest {
			s.highest = m.gen
		}
		n.noteStale(s)
		if s.highest > s.gen && !s.pullArmed {
			n.pullLocked(s)
		}
	}
}

// adoptLocked resolves the local seg for a home-originated message,
// creating both the protocol state and — for a genuinely new machine —
// the backing file at the home's exact inode slot. A segment whose local
// address disagrees with the home's is refused and counted.
func (n *Node) adoptLocked(from string, m *msg) *seg {
	if s, ok := n.segs[m.path]; ok {
		if s.base == 0 {
			s.base = m.base
		}
		if s.base != m.base {
			n.ctrAddrClash.Inc()
			return nil
		}
		return s
	}
	st, err := n.sys.FS.StatPath(m.path)
	switch {
	case err == nil:
		if st.Addr != m.base {
			n.ctrAddrClash.Inc()
			return nil
		}
	default:
		ino, err := shmfs.InodeAt(m.base)
		if err != nil {
			n.ctrAddrClash.Inc()
			return nil
		}
		if err := n.sys.FS.MkdirAll(parentDir(m.path), shmfs.DefaultDirMode, 0); err != nil {
			return nil
		}
		if _, err := n.sys.FS.CreateAt(m.path, ino, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, 0); err != nil {
			n.ctrAddrClash.Inc() // slot taken by something else locally
			return nil
		}
	}
	s := &seg{path: m.path, base: m.base, home: from}
	n.segs[m.path] = s
	return s
}

// applyLocked writes a message's pages into the local replica and adopts
// its generation and size. Page writes go through the file interface, so
// every local mapping of the segment sees them instantly.
func (n *Node) applyLocked(s *seg, m *msg) {
	for _, p := range m.pages {
		n.sys.FS.WriteAt(s.path, p.idx*PageSize, p.data, 0)
	}
	s.gen = m.gen
	s.size = m.size
	if m.gen > s.highest {
		s.highest = m.gen
	}
	if m.stick > 0 {
		if s.lagHist == nil {
			s.lagHist = n.fleet.Reg.Histogram("netshm.lag_ticks:" + s.path)
		}
		now := n.fleet.Now()
		lag := uint64(0)
		if now > m.stick {
			lag = now - m.stick
		}
		s.lagHist.Observe(lag)
	}
	n.noteStale(s)
	n.emit(obsv.Event{Name: "apply", Mod: s.path, Addr: s.base, Val: m.gen})
	n.emit(obsv.Event{Name: "repl", Phase: obsv.PhaseFlowEnd, Mod: s.path,
		Val: m.gen, Flow: obsv.FlowID(s.path, m.gen)})
}

// ackLocked reports the replica's applied generation to the home.
func (n *Node) ackLocked(s *seg) {
	m := n.stamp(&msg{typ: msgAck, path: s.path, base: s.base, gen: s.gen})
	n.nd.Send(s.home, m.encode())
}

func parentDir(p string) string {
	p = shmfs.Clean(p)
	if i := strings.LastIndexByte(p, '/'); i > 0 {
		return p[:i]
	}
	return "/"
}
