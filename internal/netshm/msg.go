package netshm

import (
	"encoding/binary"
	"fmt"
)

// Wire format: a fixed four-byte header (magic, version, type, flag)
// followed by the same field layout for every message type — path, base,
// size, the (epoch, gen) version pair, the transactional version clock,
// a trace context (origin machine + send tick), a home claim, a lease
// grant, a transaction id, a page list, and an opaque payload. Types
// simply leave unused fields empty. Everything is big-endian, like the
// simulated machines themselves.
//
// Version history: v1 had no trace context; v2 inserted origin and stick
// between gen and the page list so fleet runs can draw causal flow arrows
// and measure replication lag without a side channel. v3 is the fleet-
// scale format: an epoch (bumped by home migration, ordered
// lexicographically with gen), a per-segment transactional version clock
// (tv), a home claim (migration target), a read-lease grant in virtual
// ticks, a transaction id, a flag byte, and a page list that carries a
// per-page generation and either full-page content or coalesced dirty
// byte-range deltas.
const (
	wireMagic   = 'S'
	wireVersion = 3
)

// Message types of the coherence protocol.
const (
	msgUpdate     = byte(iota + 1) // home -> replica: in-order page update for one generation
	msgSync                        // home -> replica: catch-up pages (retry or pull response)
	msgAck                         // replica -> home: highest applied generation
	msgPull                        // replica -> home: anti-entropy request from a generation
	msgAnnounce                    // home -> all: segment existence + current generation
	msgApp                         // application payload multiplexed over the same NIC
	msgMigrate                     // old home -> new home: epoch E+1 offer with full snapshot
	msgMigrateAck                  // new home -> old home: promotion confirmed
	msgLeaseRenew                  // replica -> home: re-grant my read lease
	msgLeaseGrant                  // home -> replica: lease granted for msg.lease ticks
	msgWriteFwd                    // any -> home: forwarded write (deltas in pages)
	msgTxnFwd                      // any -> home: forwarded transactional commit (payload)
	msgTxnResult                   // home -> origin: commit result (flagCommitted or abort)
)

// Flag bits.
const (
	flagFull      = 1 // msgSync: carries every page — an epoch resync
	flagCommitted = 1 // msgTxnResult: the transaction committed
)

// rng is one coalesced dirty byte range within a page.
type rng struct {
	off  uint32
	data []byte
}

// page is one page-granularity piece of segment content: either the full
// page bytes or a set of byte-range deltas against the receiver's copy.
type page struct {
	idx    uint32
	gen    uint64 // generation at which this page content is current
	full   []byte // whole-page content (deltas ignored when non-nil)
	deltas []rng
}

// msg is the decoded form of every protocol message.
type msg struct {
	typ     byte
	flag    byte
	path    string // segment path
	base    uint32 // globally-agreed virtual address of the segment
	size    uint32 // segment size in bytes at gen
	epoch   uint64 // home epoch; (epoch, gen) orders lexicographically
	gen     uint64 // update/sync/announce: content generation; ack: applied; pull: have
	tv      uint64 // per-segment transactional version clock at gen
	origin  string // trace context: sending machine
	stick   uint64 // trace context: virtual tick at send time
	home    string // home claim (migrate: the target being offered the home)
	lease   uint64 // read-lease grant in virtual ticks (home-originated messages)
	txid    uint64 // transaction id (txn forward/result)
	pages   []page
	payload []byte // msgApp / msgTxnFwd
}

func (m *msg) encode() []byte {
	n := 4 + 2 + len(m.path) + 4 + 4 + 8 + 8 + 8 + 2 + len(m.origin) + 8 +
		2 + len(m.home) + 8 + 8 + 4 + 4 + len(m.payload)
	for _, p := range m.pages {
		n += 4 + 8 + 1 + 4 + len(p.full)
		for _, r := range p.deltas {
			n += 4 + 4 + len(r.data)
		}
	}
	b := make([]byte, 0, n)
	b = append(b, wireMagic, wireVersion, m.typ, m.flag)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.path)))
	b = append(b, m.path...)
	b = binary.BigEndian.AppendUint32(b, m.base)
	b = binary.BigEndian.AppendUint32(b, m.size)
	b = binary.BigEndian.AppendUint64(b, m.epoch)
	b = binary.BigEndian.AppendUint64(b, m.gen)
	b = binary.BigEndian.AppendUint64(b, m.tv)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.origin)))
	b = append(b, m.origin...)
	b = binary.BigEndian.AppendUint64(b, m.stick)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.home)))
	b = append(b, m.home...)
	b = binary.BigEndian.AppendUint64(b, m.lease)
	b = binary.BigEndian.AppendUint64(b, m.txid)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.pages)))
	for _, p := range m.pages {
		b = binary.BigEndian.AppendUint32(b, p.idx)
		b = binary.BigEndian.AppendUint64(b, p.gen)
		if p.full != nil {
			b = append(b, 0) // kind: full page
			b = binary.BigEndian.AppendUint32(b, uint32(len(p.full)))
			b = append(b, p.full...)
			continue
		}
		b = append(b, 1) // kind: deltas
		b = binary.BigEndian.AppendUint16(b, uint16(len(p.deltas)))
		for _, r := range p.deltas {
			b = binary.BigEndian.AppendUint32(b, r.off)
			b = binary.BigEndian.AppendUint32(b, uint32(len(r.data)))
			b = append(b, r.data...)
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.payload)))
	b = append(b, m.payload...)
	return b
}

// decodeMsg parses a datagram, rejecting anything that is not a
// well-formed protocol message (a runt, a foreign payload, a truncation).
// All returned byte slices are copies: the caller may recycle the
// datagram buffer immediately after decoding.
func decodeMsg(b []byte) (*msg, error) {
	if len(b) < 4 || b[0] != wireMagic || b[1] != wireVersion {
		return nil, fmt.Errorf("netshm: not a protocol datagram (%d bytes)", len(b))
	}
	m := &msg{typ: b[2], flag: b[3]}
	if m.typ == 0 || m.typ > msgTxnResult {
		return nil, fmt.Errorf("netshm: unknown message type %d", m.typ)
	}
	d := decoder{b: b, off: 4}
	m.path = d.str()
	m.base = d.u32()
	m.size = d.u32()
	m.epoch = d.u64()
	m.gen = d.u64()
	m.tv = d.u64()
	m.origin = d.str()
	m.stick = d.u64()
	m.home = d.str()
	m.lease = d.u64()
	m.txid = d.u64()
	npages := d.u32()
	if npages > uint32(len(b)/17+1) { // each page costs >= 17 header bytes
		return nil, fmt.Errorf("netshm: implausible page count %d", npages)
	}
	for i := uint32(0); i < npages && d.err == nil; i++ {
		p := page{idx: d.u32(), gen: d.u64()}
		switch kind := d.u8(); kind {
		case 0:
			p.full = d.bytes()
			if p.full == nil && d.err == nil {
				p.full = []byte{} // keep the full-vs-delta distinction for empty pages
			}
		case 1:
			nd := d.u16()
			if int(nd) > len(b)/8+1 { // each delta costs >= 8 header bytes
				return nil, fmt.Errorf("netshm: implausible delta count %d", nd)
			}
			for j := uint16(0); j < nd && d.err == nil; j++ {
				p.deltas = append(p.deltas, rng{off: d.u32(), data: d.bytes()})
			}
		default:
			if d.err == nil {
				return nil, fmt.Errorf("netshm: unknown page kind %d", kind)
			}
		}
		m.pages = append(m.pages, p)
	}
	m.payload = d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("netshm: %d trailing bytes", len(b)-d.off)
	}
	return m, nil
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("netshm: truncated message (want %d bytes at %d of %d)", n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0xFF
	}
	return b[0]
}

func (d *decoder) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str() string {
	lb := d.take(2)
	if lb == nil {
		return ""
	}
	return string(d.take(int(binary.BigEndian.Uint16(lb))))
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
