package netshm

import (
	"encoding/binary"
	"fmt"
)

// Wire format: a fixed three-byte header (magic, version, type) followed by
// the same field layout for every message type — path, base, size, gen, a
// trace context (origin machine + send tick), a page list, and an opaque
// payload. Types simply leave unused fields empty. Everything is
// big-endian, like the simulated machines themselves.
//
// Version history: v1 had no trace context; v2 inserts origin and stick
// between gen and the page list so fleet runs can draw causal flow arrows
// and measure replication lag without a side channel.
const (
	wireMagic   = 'S'
	wireVersion = 2
)

// Message types of the coherence protocol.
const (
	msgUpdate   = byte(iota + 1) // home -> replica: in-order page update for one generation
	msgSync                      // home -> replica: catch-up pages (retry or pull response)
	msgAck                       // replica -> home: highest applied generation
	msgPull                      // replica -> home: anti-entropy request from a generation
	msgAnnounce                  // home -> all: segment existence + current generation
	msgApp                       // application payload multiplexed over the same NIC
)

// page is one page-granularity piece of segment content.
type page struct {
	idx  uint32
	data []byte
}

// msg is the decoded form of every protocol message.
type msg struct {
	typ     byte
	path    string // segment path
	base    uint32 // globally-agreed virtual address of the segment
	size    uint32 // segment size in bytes at gen
	gen     uint64 // update/sync/announce: content generation; ack: applied; pull: have
	origin  string // trace context: sending machine
	stick   uint64 // trace context: virtual tick at send time
	pages   []page
	payload []byte // msgApp only
}

func (m *msg) encode() []byte {
	n := 3 + 2 + len(m.path) + 4 + 4 + 8 + 2 + len(m.origin) + 8 + 4 + 4 + len(m.payload)
	for _, p := range m.pages {
		n += 4 + 4 + len(p.data)
	}
	b := make([]byte, 0, n)
	b = append(b, wireMagic, wireVersion, m.typ)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.path)))
	b = append(b, m.path...)
	b = binary.BigEndian.AppendUint32(b, m.base)
	b = binary.BigEndian.AppendUint32(b, m.size)
	b = binary.BigEndian.AppendUint64(b, m.gen)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.origin)))
	b = append(b, m.origin...)
	b = binary.BigEndian.AppendUint64(b, m.stick)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.pages)))
	for _, p := range m.pages {
		b = binary.BigEndian.AppendUint32(b, p.idx)
		b = binary.BigEndian.AppendUint32(b, uint32(len(p.data)))
		b = append(b, p.data...)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.payload)))
	b = append(b, m.payload...)
	return b
}

// decodeMsg parses a datagram, rejecting anything that is not a
// well-formed protocol message (a runt, a foreign payload, a truncation).
func decodeMsg(b []byte) (*msg, error) {
	if len(b) < 3 || b[0] != wireMagic || b[1] != wireVersion {
		return nil, fmt.Errorf("netshm: not a protocol datagram (%d bytes)", len(b))
	}
	m := &msg{typ: b[2]}
	if m.typ == 0 || m.typ > msgApp {
		return nil, fmt.Errorf("netshm: unknown message type %d", m.typ)
	}
	d := decoder{b: b, off: 3}
	m.path = d.str()
	m.base = d.u32()
	m.size = d.u32()
	m.gen = d.u64()
	m.origin = d.str()
	m.stick = d.u64()
	npages := d.u32()
	if npages > uint32(len(b)/8+1) { // each page costs >= 8 header bytes
		return nil, fmt.Errorf("netshm: implausible page count %d", npages)
	}
	for i := uint32(0); i < npages && d.err == nil; i++ {
		idx := d.u32()
		m.pages = append(m.pages, page{idx: idx, data: d.bytes()})
	}
	m.payload = d.bytes()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("netshm: %d trailing bytes", len(b)-d.off)
	}
	return m, nil
}

type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("netshm: truncated message (want %d bytes at %d of %d)", n, d.off, len(d.b))
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (d *decoder) str() string {
	lb := d.take(2)
	if lb == nil {
		return ""
	}
	return string(d.take(int(binary.BigEndian.Uint16(lb))))
}

func (d *decoder) bytes() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	b := d.take(int(n))
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
