package netshm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/netsim"
	"hemlock/internal/shmfs"
)

// boot builds a fleet of n fresh machines named m0..m(n-1).
func boot(t testing.TB, net *netsim.Network, n int) *Fleet {
	t.Helper()
	f := NewFleet(net, Config{})
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("m%d", i), core.NewSystem())
	}
	return f
}

// segBytes reads the whole segment file off one machine.
func segBytes(t testing.TB, n *Node, path string) []byte {
	t.Helper()
	st, err := n.Sys().FS.StatPath(path)
	if err != nil {
		t.Fatalf("%s: stat %s: %v", n.Name(), path, err)
	}
	buf := make([]byte, st.Size)
	if _, err := n.Sys().FS.ReadAt(path, 0, buf, 0); err != nil {
		t.Fatalf("%s: read %s: %v", n.Name(), path, err)
	}
	return buf
}

func TestPublishReplicatesEverywhere(t *testing.T) {
	f := boot(t, netsim.New(), 3)
	home := f.Node("m0")

	content := bytes.Repeat([]byte("hemlock!"), 700) // 5600 B: two pages
	if err := home.Publish("/lib/seg", content); err != nil {
		t.Fatal(err)
	}
	ticks, ok := f.WaitConverged("/lib/seg", 10)
	if !ok {
		t.Fatalf("no convergence in %d ticks on a lossless LAN", ticks)
	}

	base, _ := home.Base("/lib/seg")
	for _, n := range f.Nodes() {
		if got := segBytes(t, n, "/lib/seg"); !bytes.Equal(got, content) {
			t.Fatalf("%s: replica content differs", n.Name())
		}
		// The Hemlock invariant: same path, same inode slot, same
		// virtual address on every machine.
		st, err := n.Sys().FS.StatPath("/lib/seg")
		if err != nil || st.Addr != base {
			t.Fatalf("%s: segment at 0x%08x, home says 0x%08x (%v)", n.Name(), st.Addr, base, err)
		}
		if p, off, err := n.Sys().FS.AddrToPath(base + 4100); err != nil || p != "/lib/seg" || off != 4100 {
			t.Fatalf("%s: AddrToPath: %q %d %v", n.Name(), p, off, err)
		}
	}

	// An in-place write replicates only the touched page.
	applied := f.Reg.Snapshot().Counters["netshm.updates_applied"]
	if err := home.Write("/lib/seg", 4200, []byte("patched")); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 10); !ok {
		t.Fatal("write did not converge")
	}
	for _, n := range f.Nodes()[1:] {
		got := segBytes(t, n, "/lib/seg")
		if !bytes.Equal(got[4200:4207], []byte("patched")) {
			t.Fatalf("%s: write not applied", n.Name())
		}
	}
	if got := f.Reg.Snapshot().Counters["netshm.updates_applied"]; got != applied+2 {
		t.Fatalf("one-page write applied %d updates, want 2", got-applied)
	}
}

func TestWriteOnReplicaRefused(t *testing.T) {
	f := boot(t, netsim.New(), 2)
	if err := f.Node("m0").Publish("/lib/seg", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.Run(4)
	if err := f.Node("m1").Write("/lib/seg", 0, []byte("y")); !errors.Is(err, ErrNotHome) {
		t.Fatalf("replica write: %v, want ErrNotHome", err)
	}
	if err := f.Node("m1").MarkDirty("/lib/seg", 0, 1); !errors.Is(err, ErrNotHome) {
		t.Fatalf("replica MarkDirty: %v, want ErrNotHome", err)
	}
	if _, _, err := f.Node("m1").Read("/nope", 0, 1); !errors.Is(err, ErrUnknownSeg) {
		t.Fatalf("unknown read: %v, want ErrUnknownSeg", err)
	}
}

func TestServeAttachPreBootedMachines(t *testing.T) {
	// Identically-booted machines already hold the file (the rwho shape):
	// Serve/Attach register it without any bulk transfer.
	f := boot(t, netsim.New(), 2)
	for _, n := range f.Nodes() {
		fs := n.Sys().FS
		if err := fs.MkdirAll("/lib", shmfs.DefaultDirMode, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Create("/lib/tab", shmfs.DefaultFileMode, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.WriteAt("/lib/tab", 0, make([]byte, 256), 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Node("m0").Serve("/lib/tab"); err != nil {
		t.Fatal(err)
	}
	if err := f.Node("m1").Attach("/lib/tab", "m0"); err != nil {
		t.Fatal(err)
	}
	if err := f.Node("m0").Write("/lib/tab", 10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/tab", 10); !ok {
		t.Fatal("no convergence")
	}
	if got := segBytes(t, f.Node("m1"), "/lib/tab"); !bytes.Equal(got[10:15], []byte("hello")) {
		t.Fatal("write not applied on attached replica")
	}
}

// TestConvergenceUnderLoss is the acceptance test: 8 machines on a LAN
// dropping a deterministic 20% of datagrams, a multi-write workload, and
// a bounded virtual-clock deadline for every replica to reach the
// writer's generation. The retry and anti-entropy machinery must show up
// in the metrics snapshot.
func TestConvergenceUnderLoss(t *testing.T) {
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool { return seq%5 == 0 } // exactly 20%
	f := boot(t, net, 8)
	home := f.Node("m0")

	content := bytes.Repeat([]byte{0xEE}, 3*PageSize)
	if err := home.Publish("/lib/seg", content); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := home.Write("/lib/seg", uint32(i)*997, []byte(fmt.Sprintf("w%02d", i))); err != nil {
			t.Fatal(err)
		}
		f.Run(2)
	}
	ticks, ok := f.WaitConverged("/lib/seg", 300)
	if !ok {
		t.Fatalf("fleet did not converge within 300 ticks (20%% loss)")
	}
	t.Logf("converged after %d extra ticks at gen %d", ticks, mustGen(t, home, "/lib/seg"))

	want := segBytes(t, home, "/lib/seg")
	for _, n := range f.Nodes()[1:] {
		if got := segBytes(t, n, "/lib/seg"); !bytes.Equal(got, want) {
			t.Fatalf("%s: content diverged after convergence", n.Name())
		}
	}

	s := f.Reg.Snapshot()
	if s.Counters["netsim.dropped"] == 0 {
		t.Fatal("loss model never fired; test proves nothing")
	}
	if s.Counters["netshm.retries"] == 0 {
		t.Fatal("converged without retries under 20% loss — timers dead?")
	}
	if s.Counters["netshm.updates_applied"] == 0 || s.Counters["netshm.acks_recv"] == 0 {
		t.Fatalf("protocol counters silent: %v", s.Counters)
	}
}

func mustGen(t testing.TB, n *Node, path string) uint64 {
	t.Helper()
	g, _, err := n.Gen(path)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLateJoinHealsByAntiEntropy boots a 9th machine into an established
// fleet: it has never seen the segment, learns of it from the periodic
// announce, materialises the file at the home's exact inode slot, and
// pulls itself current.
func TestLateJoinHealsByAntiEntropy(t *testing.T) {
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool { return seq%5 == 0 }
	f := boot(t, net, 8)
	home := f.Node("m0")

	content := bytes.Repeat([]byte{7}, 2*PageSize+100)
	if err := home.Publish("/lib/seg", content); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 300); !ok {
		t.Fatal("initial fleet did not converge")
	}

	late := f.Add("m8", core.NewSystem())
	ticks, ok := f.WaitConverged("/lib/seg", 300)
	if !ok {
		t.Fatal("late joiner never converged")
	}
	t.Logf("late joiner caught up in %d ticks", ticks)

	if got := segBytes(t, late, "/lib/seg"); !bytes.Equal(got, content) {
		t.Fatal("late joiner content differs")
	}
	base, _ := home.Base("/lib/seg")
	st, err := late.Sys().FS.StatPath("/lib/seg")
	if err != nil || st.Addr != base {
		t.Fatalf("late joiner segment at 0x%08x, want 0x%08x (%v)", st.Addr, base, err)
	}
	if rounds := f.Reg.Snapshot().Counters["netshm.anti_entropy_rounds"]; rounds == 0 {
		t.Fatal("late join healed without an anti-entropy round?")
	}
}

// TestStaleReadTriggersPull drops one update so the replica detects a
// generation gap; a Read then reports staleness, counts it, and starts
// the pull that heals it.
func TestStaleReadTriggersPull(t *testing.T) {
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool { return seq == 2 }
	f := boot(t, net, 2)
	home, rep := f.Node("m0"), f.Node("m1")

	if err := home.Publish("/lib/seg", []byte("v1")); err != nil { // seq 1
		t.Fatal(err)
	}
	if err := home.Write("/lib/seg", 0, []byte("v2")); err != nil { // seq 2: dropped
		t.Fatal(err)
	}
	if err := home.Write("/lib/seg", 0, []byte("v3")); err != nil { // seq 3: gap at replica
		t.Fatal(err)
	}
	f.Tick() // replica sees gen 3 after gen 1: gap; acks 1

	got, fresh, err := rep.Read("/lib/seg", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh {
		t.Fatal("read reported fresh despite a known generation gap")
	}
	if string(got) != "v1" {
		t.Fatalf("stale read returned %q, want the old local content", got)
	}
	if _, ok := f.WaitConverged("/lib/seg", 20); !ok {
		t.Fatal("pull did not heal the gap")
	}
	if got, fresh, _ := rep.Read("/lib/seg", 0, 2); !fresh || string(got) != "v3" {
		t.Fatalf("after heal: %q fresh=%v", got, fresh)
	}
	s := f.Reg.Snapshot()
	if s.Counters["netshm.stale_reads"] != 1 {
		t.Fatalf("stale_reads = %d, want 1", s.Counters["netshm.stale_reads"])
	}
	if s.Counters["netshm.anti_entropy_rounds"] == 0 {
		t.Fatal("no anti-entropy round recorded")
	}
}

func TestSendAppRoundTrip(t *testing.T) {
	f := boot(t, netsim.New(), 2)
	var mu sync.Mutex
	var got []string
	f.Node("m0").OnApp(func(from string, payload []byte) {
		mu.Lock()
		got = append(got, from+":"+string(payload))
		mu.Unlock()
	})
	if err := f.Node("m1").SendApp("m0", []byte("status")); err != nil {
		t.Fatal(err)
	}
	f.Tick()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "m1:status" {
		t.Fatalf("app payloads = %v", got)
	}
}

// TestConcurrentReadersDuringTicks drives the protocol while other
// goroutines read replicas — the lock discipline this exercises is what
// the -race run in CI checks.
func TestConcurrentReadersDuringTicks(t *testing.T) {
	net := netsim.New()
	net.Drop = func(from, to string, seq uint64) bool { return seq%5 == 0 }
	f := boot(t, net, 4)
	home := f.Node("m0")
	if err := home.Publish("/lib/seg", make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, n := range f.Nodes()[1:] {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					n.Read("/lib/seg", 0, 64)
					n.Gen("/lib/seg")
				}
			}
		}(n)
	}
	for i := 0; i < 30; i++ {
		home.Write("/lib/seg", uint32(i%PageSize), []byte{byte(i)})
		f.Tick()
	}
	close(stop)
	wg.Wait()
	if _, ok := f.WaitConverged("/lib/seg", 300); !ok {
		t.Fatal("no convergence")
	}
}
