package netshm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"hemlock/internal/kern"
)

// Transactional writes: a TL2-style optimistic protocol over the
// per-segment version clock (seg.tv, carried on every update so replicas
// track it).
//
// A Txn accumulates a read set (the (epoch, gen, tv) version triple of
// every segment read) and a write set (byte ranges). Commit validates
// that every read segment is still at its recorded version, then applies
// the whole write set — one generation per segment, carrying every range
// that segment received, which is what makes the commit atomic: a replica
// applies that generation in one Step or not at all, so no machine ever
// observes half of a multi-word commit.
//
// Commits whose write set is homed locally validate and apply under the
// node lock. Commits whose write set is homed on one remote machine are
// forwarded (msgTxnFwd) with bounded virtual-clock retries and
// deduplicated by (origin, txid) at the home; the origin polls TxnStatus
// until the result datagram lands. Write sets spanning multiple homes are
// refused — Hemlock segments are single-home, and the fleet's atomicity
// guarantee is per-home.
var (
	ErrTxnConflict  = errors.New("netshm: transaction conflict (read set changed)")
	ErrTxnCrossHome = errors.New("netshm: transaction write set spans multiple homes")
)

// TxnState is the origin's view of a commit's fate.
type TxnState int

const (
	TxnPending   TxnState = iota // forwarded, no result yet
	TxnCommitted                 // applied at the home
	TxnAborted                   // validation failed (or the home refused)
	TxnLost                      // retries exhausted without a result
	TxnUnknown                   // no such transaction id
)

func (s TxnState) String() string {
	switch s {
	case TxnPending:
		return "pending"
	case TxnCommitted:
		return "committed"
	case TxnAborted:
		return "aborted"
	case TxnLost:
		return "lost"
	}
	return "unknown"
}

// txnRead is one read-set entry: the version triple observed.
type txnRead struct {
	epoch, gen, tv uint64
}

// txnWrite is one write-set entry.
type txnWrite struct {
	path string
	off  uint32
	data []byte
}

// Txn is an open transaction on one machine.
type Txn struct {
	n      *Node
	reads  map[string]txnRead
	writes []txnWrite
	done   bool
}

// Begin opens a transaction.
func (n *Node) Begin() *Txn {
	return &Txn{n: n, reads: map[string]txnRead{}}
}

// Read returns length bytes of the segment at off, records the segment's
// version triple in the read set (first touch only), and overlays any
// bytes this transaction has already written — reads observe the
// transaction's own pending writes.
func (t *Txn) Read(path string, off, length uint32) ([]byte, error) {
	n := t.n
	n.mu.Lock()
	s, ok := n.segs[path]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownSeg, path)
	}
	if _, seen := t.reads[path]; !seen {
		t.reads[path] = txnRead{epoch: s.epoch, gen: s.gen, tv: s.tv}
	}
	n.mu.Unlock()
	buf := make([]byte, length)
	if _, err := n.sys.FS.ReadAt(path, off, buf, 0); err != nil {
		return nil, err
	}
	for _, w := range t.writes {
		if w.path != path {
			continue
		}
		lo, hi := w.off, w.off+uint32(len(w.data))
		if hi <= off || lo >= off+length {
			continue
		}
		from := lo
		if from < off {
			from = off
		}
		to := hi
		if to > off+length {
			to = off + length
		}
		copy(buf[from-off:to-off], w.data[from-lo:to-lo])
	}
	return buf, nil
}

// Write adds a byte range to the write set. Nothing is visible to anyone
// — including other transactions on this machine — until Commit.
func (t *Txn) Write(path string, off uint32, data []byte) {
	t.writes = append(t.writes, txnWrite{path: path, off: off, data: append([]byte(nil), data...)})
}

// WriteWord stages a 32-bit big-endian word — the guest syscall's unit.
func (t *Txn) WriteWord(path string, off uint32, val uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], val)
	t.Write(path, off, b[:])
}

// Commit validates and applies the transaction.
//
// Return values: (0, nil) — committed locally; (txid, nil) with txid > 0
// — forwarded to the remote home, poll TxnStatus(txid); (0,
// ErrTxnConflict) — aborted, read set changed; (0, other) — refused
// (unknown segment, migrating home, cross-home write set).
func (t *Txn) Commit() (uint64, error) {
	if t.done {
		return 0, errors.New("netshm: transaction already committed")
	}
	t.done = true
	n := t.n
	n.mu.Lock()
	defer n.mu.Unlock()

	if len(t.writes) == 0 {
		// Read-only: validate and be done.
		if !n.validateReadsLocked(t.reads) {
			return 0, ErrTxnConflict
		}
		return 0, nil
	}

	home, local, err := n.txnHomeLocked(t.writes)
	if err != nil {
		return 0, err
	}
	if local {
		if !n.validateReadsLocked(t.reads) {
			n.ctrTxnAborts.Inc()
			return 0, ErrTxnConflict
		}
		n.applyTxnLocked(t.writes, n.name)
		n.ctrTxnCommits.Inc()
		return 0, nil
	}

	// Forward the whole transaction to the one remote home.
	n.txnNext++
	txid := n.txnNext
	payload := encodeTxnPayload(t.reads, t.writes)
	f := &fwdTxn{home: home, path: t.writes[0].path, payload: payload,
		state: TxnPending, attempts: 1,
		nextTry: n.fleet.Now() + n.cfg.RetryTicks}
	if n.txnPending == nil {
		n.txnPending = map[uint64]*fwdTxn{}
	}
	n.txnPending[txid] = f
	n.sendTxnFwdLocked(txid, f)
	return txid, nil
}

// LocalOnly reports whether Commit would run entirely on this machine —
// the guest syscall path refuses remote commits up front (Eagain) rather
// than leaving the guest with a dangling poll.
func (t *Txn) LocalOnly() bool {
	n := t.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(t.writes) == 0 {
		return true
	}
	_, local, err := n.txnHomeLocked(t.writes)
	return err == nil && local
}

// txnHomeLocked resolves the write set's single home. local means every
// written segment is writable on this machine right now.
func (n *Node) txnHomeLocked(writes []txnWrite) (home string, local bool, err error) {
	for _, w := range writes {
		s, ok := n.segs[w.path]
		if !ok {
			return "", false, fmt.Errorf("%w: %s", ErrUnknownSeg, w.path)
		}
		h := s.home
		if s.isHome {
			if s.migrating != "" {
				return "", false, fmt.Errorf("%w: %s", ErrMigrating, w.path)
			}
			h = n.name
		}
		if home == "" {
			home = h
		} else if home != h {
			return "", false, fmt.Errorf("%w: %s vs %s", ErrTxnCrossHome, home, h)
		}
	}
	return home, home == n.name, nil
}

// validateReadsLocked is the TL2 validation step: every read segment must
// still be at its recorded (epoch, gen, tv).
func (n *Node) validateReadsLocked(reads map[string]txnRead) bool {
	for path, r := range reads {
		s, ok := n.segs[path]
		if !ok || s.epoch != r.epoch || s.gen != r.gen || s.tv != r.tv {
			return false
		}
	}
	return true
}

// applyTxnLocked applies a validated write set at the home: writes grouped
// per segment, one version-clock bump and ONE generation per segment
// carrying every range — the atomicity mechanism.
func (n *Node) applyTxnLocked(writes []txnWrite, origin string) {
	byPath := map[string][][2]uint32{}
	var order []string
	for _, w := range writes {
		n.sys.FS.WriteAt(w.path, w.off, w.data, 0)
		if _, ok := byPath[w.path]; !ok {
			order = append(order, w.path)
		}
		byPath[w.path] = append(byPath[w.path], [2]uint32{w.off, uint32(len(w.data))})
	}
	for _, path := range order {
		s := n.segs[path]
		s.tv++
		s.writeCnt[origin]++
		n.dirtyRangesLocked(s, byPath[path])
		n.maybeAutoMigrateLocked(s, origin)
	}
}

// TxnStatus reports the fate of a forwarded commit.
func (n *Node) TxnStatus(txid uint64) TxnState {
	n.mu.Lock()
	defer n.mu.Unlock()
	f, ok := n.txnPending[txid]
	if !ok {
		return TxnUnknown
	}
	return f.state
}

// fwdTxn is the origin-side state of one forwarded commit.
type fwdTxn struct {
	home     string
	path     string // routing/debug path (first written segment)
	payload  []byte
	state    TxnState
	attempts int
	nextTry  uint64
}

func (n *Node) sendTxnFwdLocked(txid uint64, f *fwdTxn) {
	m := n.stamp(&msg{typ: msgTxnFwd, path: f.path, txid: txid, payload: f.payload})
	n.nd.Send(f.home, m.encode())
}

// stepTxnLocked retries pending forwarded commits (bounded, backed off),
// in txid order for determinism.
func (n *Node) stepTxnLocked(now uint64) {
	if len(n.txnPending) == 0 {
		return
	}
	ids := make([]uint64, 0, len(n.txnPending))
	for id := range n.txnPending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := n.txnPending[id]
		if f.state != TxnPending || now < f.nextTry {
			continue
		}
		if f.attempts >= n.cfg.RetryMax {
			f.state = TxnLost
			continue
		}
		n.sendTxnFwdLocked(id, f)
		f.attempts++
		backoff := n.cfg.RetryTicks << uint(f.attempts)
		if backoff > n.cfg.BackoffCap {
			backoff = n.cfg.BackoffCap
		}
		f.nextTry = now + backoff
	}
}

// txnKey identifies a forwarded commit at the home: ids are per-origin.
type txnKey struct {
	origin string
	id     uint64
}

const txnSeenMax = 1024 // bounded dedup memory at the home

// recvTxnFwdLocked is the home side of a forwarded commit: dedup, decode,
// validate against the home's own versions, apply atomically, reply.
func (n *Node) recvTxnFwdLocked(from string, m *msg) {
	key := txnKey{origin: from, id: m.txid}
	if n.txnSeen == nil {
		n.txnSeen = map[txnKey]byte{}
	}
	if flag, ok := n.txnSeen[key]; ok {
		// Duplicate (our result datagram was lost): re-reply, do not re-run.
		n.replyTxnLocked(from, m.txid, flag)
		return
	}
	reads, writes, err := decodeTxnPayload(m.payload)
	if err != nil {
		return // malformed; drop like any other runt
	}
	flag := byte(0)
	ok := true
	for _, w := range writes {
		s, found := n.segs[w.path]
		if !found || !s.isHome || s.migrating != "" {
			ok = false
			break
		}
	}
	if ok && !n.validateReadsLocked(reads) {
		ok = false
	}
	if ok {
		n.applyTxnLocked(writes, from)
		n.ctrTxnCommits.Inc()
		flag = flagCommitted
	} else {
		n.ctrTxnAborts.Inc()
	}
	n.txnSeen[key] = flag
	n.txnOrder = append(n.txnOrder, key)
	if len(n.txnOrder) > txnSeenMax {
		delete(n.txnSeen, n.txnOrder[0])
		n.txnOrder = n.txnOrder[1:]
	}
	n.replyTxnLocked(from, m.txid, flag)
}

func (n *Node) replyTxnLocked(to string, txid uint64, flag byte) {
	r := n.stamp(&msg{typ: msgTxnResult, flag: flag, txid: txid})
	n.nd.Send(to, r.encode())
}

// recvTxnResultLocked records the fate of a forwarded commit at its origin.
func (n *Node) recvTxnResultLocked(from string, m *msg) {
	f, ok := n.txnPending[m.txid]
	if !ok || f.state != TxnPending {
		return
	}
	if m.flag&flagCommitted != 0 {
		f.state = TxnCommitted
	} else {
		f.state = TxnAborted
	}
}

// ---- payload sub-encoding ----------------------------------------------------

// encodeTxnPayload packs the read and write sets into the msgTxnFwd
// payload: read entries sorted by path for determinism.
func encodeTxnPayload(reads map[string]txnRead, writes []txnWrite) []byte {
	paths := make([]string, 0, len(reads))
	for p := range reads {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b []byte
	b = binary.BigEndian.AppendUint16(b, uint16(len(paths)))
	for _, p := range paths {
		r := reads[p]
		b = binary.BigEndian.AppendUint16(b, uint16(len(p)))
		b = append(b, p...)
		b = binary.BigEndian.AppendUint64(b, r.epoch)
		b = binary.BigEndian.AppendUint64(b, r.gen)
		b = binary.BigEndian.AppendUint64(b, r.tv)
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(writes)))
	for _, w := range writes {
		b = binary.BigEndian.AppendUint16(b, uint16(len(w.path)))
		b = append(b, w.path...)
		b = binary.BigEndian.AppendUint32(b, w.off)
		b = binary.BigEndian.AppendUint32(b, uint32(len(w.data)))
		b = append(b, w.data...)
	}
	return b
}

func decodeTxnPayload(b []byte) (map[string]txnRead, []txnWrite, error) {
	d := decoder{b: b}
	reads := map[string]txnRead{}
	nr := d.u16()
	if int(nr) > len(b)/26+1 { // each read entry costs >= 26 bytes
		return nil, nil, fmt.Errorf("netshm: implausible txn read count %d", nr)
	}
	for i := uint16(0); i < nr && d.err == nil; i++ {
		p := d.str()
		reads[p] = txnRead{epoch: d.u64(), gen: d.u64(), tv: d.u64()}
	}
	nw := d.u16()
	if int(nw) > len(b)/10+1 { // each write entry costs >= 10 bytes
		return nil, nil, fmt.Errorf("netshm: implausible txn write count %d", nw)
	}
	var writes []txnWrite
	for i := uint16(0); i < nw && d.err == nil; i++ {
		writes = append(writes, txnWrite{path: d.str(), off: d.u32(), data: d.bytes()})
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.off != len(b) {
		return nil, nil, fmt.Errorf("netshm: %d trailing txn payload bytes", len(b)-d.off)
	}
	return reads, writes, nil
}

// ---- guest syscall surface ---------------------------------------------------

// ErrTxnRemote is returned to the guest syscall layer when a staged
// transaction's write set is not homed on this machine: the guest gets
// Eagain and must retry (or route the write through WriteAny).
var ErrTxnRemote = errors.New("netshm: transaction home is remote")

// segByAddrLocked maps a virtual address into the segment containing it.
func (n *Node) segByAddrLocked(addr uint32) *seg {
	for _, s := range n.segs {
		if s.base != 0 && addr >= s.base && addr < s.base+s.size {
			return s
		}
	}
	return nil
}

// TxnStage stages a 32-bit word store at a virtual address for the guest
// process pid — the SysTxnStage backend. The address must fall inside a
// registered segment.
func (n *Node) TxnStage(pid int, addr uint32, val uint32) error {
	n.mu.Lock()
	s := n.segByAddrLocked(addr)
	if s == nil {
		n.mu.Unlock()
		return fmt.Errorf("%w: no segment at %#x", ErrUnknownSeg, addr)
	}
	path, off := s.path, addr-s.base
	if n.gtxns == nil {
		n.gtxns = map[int]*Txn{}
	}
	t := n.gtxns[pid]
	if t == nil {
		t = &Txn{n: n, reads: map[string]txnRead{}}
		n.gtxns[pid] = t
	}
	if _, seen := t.reads[path]; !seen {
		t.reads[path] = txnRead{epoch: s.epoch, gen: s.gen, tv: s.tv}
	}
	n.mu.Unlock()
	t.WriteWord(path, off, val)
	return nil
}

// TxnCommit commits the guest's staged transaction — the SysTxnCommit
// backend. ok=false with a nil error means a clean conflict abort (the
// guest should re-run); ErrTxnRemote means the home is elsewhere.
func (n *Node) TxnCommit(pid int) (bool, error) {
	n.mu.Lock()
	t := n.gtxns[pid]
	delete(n.gtxns, pid)
	n.mu.Unlock()
	if t == nil || len(t.writes) == 0 {
		return true, nil
	}
	if !t.LocalOnly() {
		return false, ErrTxnRemote
	}
	_, err := t.Commit()
	if errors.Is(err, ErrTxnConflict) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// TxnAbort drops the guest's staged transaction without applying it.
func (n *Node) TxnAbort(pid int) {
	n.mu.Lock()
	delete(n.gtxns, pid)
	n.mu.Unlock()
}

// kernTxn adapts Node to the kernel's ShmTxn hook, translating netshm
// errors into the kernel's errno vocabulary (remote home -> Eagain).
type kernTxn struct{ n *Node }

func (h kernTxn) TxnStage(pid int, addr, val uint32) error { return h.n.TxnStage(pid, addr, val) }

func (h kernTxn) TxnCommit(pid int) (bool, error) {
	ok, err := h.n.TxnCommit(pid)
	if errors.Is(err, ErrTxnRemote) {
		return false, fmt.Errorf("%w: %v", kern.ErrAgain, err)
	}
	return ok, err
}

func (h kernTxn) TxnAbort(pid int) { h.n.TxnAbort(pid) }

// InstallTxn wires this node into its machine's kernel as the backend of
// the txn_stage/txn_commit system calls, so guest programs can commit
// multi-word segment writes atomically fleet-wide. A no-op on kernel-less
// (NewSystemLite) machines.
func (n *Node) InstallTxn() {
	if k := n.sys.K; k != nil {
		k.SetShmTxn(kernTxn{n})
	}
}
