package netshm

import (
	"bytes"
	"testing"

	"hemlock/internal/netsim"
	"hemlock/internal/obsv"
)

// TestWriteApplyFlowExactlyOnce is the causal-tracing golden test: under a
// deterministic virtual clock, with the LAN delaying AND duplicating every
// datagram, one write on the home machine produces exactly one
// flow-start/flow-end pair in the fleet trace — duplicates and retries
// must not fabricate extra causal arrows.
func TestWriteApplyFlowExactlyOnce(t *testing.T) {
	net := netsim.New()
	net.DelayTicks = func(from, to string, seq uint64) int { return 2 }
	net.Dup = func(from, to string, seq uint64) bool { return true }
	net.Reorder = func(from, to string, seq uint64) bool { return seq%2 == 0 }

	f := boot(t, net, 2)
	ring := obsv.NewRing(4096)
	f.Trace.Attach(ring)

	home := f.Node("m0")
	content := bytes.Repeat([]byte{0xC3}, 100)
	if err := home.Publish("/lib/seg", content); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 50); !ok {
		t.Fatal("publish did not converge")
	}
	if err := home.Write("/lib/seg", 0, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.WaitConverged("/lib/seg", 50); !ok {
		t.Fatal("write did not converge")
	}

	// Generation 2 is the in-place write. Its flow id ties the home's
	// write to the replica's apply.
	want := obsv.FlowID("/lib/seg", 2)
	var starts, ends []obsv.Event
	for _, e := range ring.Events() {
		if e.Name != "repl" || e.Flow != want {
			continue
		}
		switch e.Phase {
		case obsv.PhaseFlowStart:
			starts = append(starts, e)
		case obsv.PhaseFlowEnd:
			ends = append(ends, e)
		}
	}
	if len(starts) != 1 || len(ends) != 1 {
		t.Fatalf("gen-2 flow pair: %d starts, %d ends (want exactly 1+1)", len(starts), len(ends))
	}
	if starts[0].PID != 0 || ends[0].PID != 1 {
		t.Fatalf("flow tracks: start on machine %d, end on machine %d (want 0 -> 1)", starts[0].PID, ends[0].PID)
	}
	if ends[0].TS <= starts[0].TS {
		t.Fatalf("apply at tick-ns %d not after write at %d", ends[0].TS, starts[0].TS)
	}

	// The apply path also feeds the replication-lag histogram (every
	// datagram was held 2 ticks, so lag >= 2) and the staleness gauge
	// (zero again once converged).
	snap := f.Reg.Snapshot()
	lag, ok := snap.Histograms["netshm.lag_ticks:/lib/seg"]
	if !ok || lag.Count == 0 {
		t.Fatalf("no replication-lag histogram: %+v", snap.Histograms)
	}
	if lag.P50 < 2 {
		t.Fatalf("lag p50 = %d ticks under a 2-tick delay", lag.P50)
	}
	stale, ok := snap.Gauges["netshm.staleness:m1:/lib/seg"]
	if !ok {
		t.Fatalf("no staleness gauge: %+v", snap.Gauges)
	}
	if stale != 0 {
		t.Fatalf("staleness = %d generations after convergence", stale)
	}
}

// TestFleetTraceDeterministic re-runs the same delayed/duplicated workload
// twice and requires bit-identical event streams: the fleet trace is a
// pure function of the workload, which is what makes it a golden artifact.
func TestFleetTraceDeterministic(t *testing.T) {
	run := func() []obsv.Event {
		net := netsim.New()
		net.DelayTicks = func(from, to string, seq uint64) int { return int(seq % 3) }
		net.Dup = func(from, to string, seq uint64) bool { return seq%4 == 0 }
		f := boot(t, net, 3)
		ring := obsv.NewRing(4096)
		f.Trace.Attach(ring)
		home := f.Node("m0")
		if err := home.Publish("/lib/seg", bytes.Repeat([]byte{7}, 64)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := home.Write("/lib/seg", 0, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			if _, ok := f.WaitConverged("/lib/seg", 80); !ok {
				t.Fatalf("write %d did not converge", i)
			}
		}
		return ring.Events()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
