package ldl_test

// The lazy-link/SMC interaction: resolving a jump-table stub patches live
// text the CPU has already predecoded (the BREAK handler rewinds PC to the
// stub it just rewrote). The patched word must execute immediately — with
// a stale predecoded instruction cache the program would spin on the BREAK
// forever or call through the old stub.

import (
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

func TestPLTPatchExecutesImmediatelyAfterHandler(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/svc.o", sevenSvcSrc)
	res := linkPLT(t, s, callSharedSrc, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 35 {
		t.Fatalf("exit = %d, want 35", pg.P.ExitCode)
	}
	// One resolution for two calls proves the second call ran the patched
	// stub rather than re-trapping.
	if s.W.Stats.PLTResolves != 1 {
		t.Fatalf("PLT resolves = %d, want 1 (patched stub must be executed, not re-trapped)", s.W.Stats.PLTResolves)
	}
	// The stub was hot in a predecode cache when the handler patched it:
	// under the block engine the stale block is rebuilt
	// (vm.block_invalidate); on the per-instruction path the icache page
	// refills (vm.icache_invalidate). Either way the invalidation must be
	// recorded — a silent stale predecode is exactly the bug this test
	// exists to catch.
	snap := s.Obs().R.Snapshot()
	if snap.Counters["vm.icache_invalidate"]+snap.Counters["vm.block_invalidate"] == 0 {
		t.Fatalf("no predecode invalidation recorded; stub patch executed stale text? (counters: %v)", snap.Counters)
	}
	if snap.Counters["vm.icache_fill"]+snap.Counters["vm.block_build"] == 0 {
		t.Fatalf("cache counters not live: %v", snap.Counters)
	}
}
