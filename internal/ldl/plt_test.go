package ldl_test

import (
	"errors"
	"strings"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/ldl"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

// linkPLT links main.o plus extras with jump tables enabled.
func linkPLT(t *testing.T, s *core.System, mainSrc string, extra ...lds.Input) *lds.Result {
	t.Helper()
	if _, err := s.Asm("/app/main.o", mainSrc); err != nil {
		t.Fatal(err)
	}
	res, err := s.Link(&lds.Options{
		Output:     "a.out",
		Modules:    append([]lds.Input{{Name: "main.o", Class: objfile.StaticPrivate}}, extra...),
		LinkDir:    "/app",
		JumpTables: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

const callSharedSrc = `
        .text
        .globl  main
        .extern get_seven
main:   addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        li      $a0, 30         # argument must survive the stub
        li      $a1, 5
        jal     get_seven
        jal     get_seven       # second call: stub already patched
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
`

const sevenSvcSrc = `
        .text
        .globl  get_seven
get_seven:
        addu    $v0, $a0, $a1   # proves $a0/$a1 survived the stub
        jr      $ra
`

func TestPLTFirstCallResolvesAndPatches(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/svc.o", sevenSvcSrc)
	res := linkPLT(t, s, callSharedSrc, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	if len(res.Image.PLT) != 1 || res.Image.PLT[0].Name != "get_seven" {
		t.Fatalf("PLT = %+v", res.Image.PLT)
	}
	// No JUMP26 relocs retained: the calls were redirected to stubs.
	for _, r := range res.Image.Relocs {
		if r.Type == objfile.RelJump26 {
			t.Fatalf("JUMP26 retained despite jump tables: %+v", r)
		}
	}
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 35 {
		t.Fatalf("exit = %d, want 35 (args preserved through stub)", pg.P.ExitCode)
	}
	// Two calls, one resolution: the stub was patched in place.
	if s.W.Stats.PLTResolves != 1 {
		t.Fatalf("PLT resolves = %d, want 1", s.W.Stats.PLTResolves)
	}
}

func TestPLTSharedStubForMultipleCallSites(t *testing.T) {
	// Both call sites in main target ONE stub (grouped by symbol).
	s := core.NewSystem()
	s.Asm("/lib/svc.o", sevenSvcSrc)
	res := linkPLT(t, s, callSharedSrc, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	if len(res.Image.PLT) != 1 {
		t.Fatalf("stubs = %d, want 1 for 2 call sites", len(res.Image.PLT))
	}
}

func TestPLTUndefinedCallErrors(t *testing.T) {
	// Calling a function nothing defines is the deferred error the paper
	// accepts; it surfaces on the call, not at link or start-up.
	s := core.NewSystem()
	res := linkPLT(t, s, `
        .text
        .globl  main
        .extern never_defined_fn
main:   jal     never_defined_fn
        jr      $ra
`)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatalf("launch must succeed despite the undefined call: %v", err)
	}
	err = pg.Run(100000)
	var uc *ldl.ErrUndefinedCall
	if !errors.As(err, &uc) || uc.Name != "never_defined_fn" {
		t.Fatalf("want ErrUndefinedCall, got %v", err)
	}
}

func TestPLTStartupSkipsCallResolution(t *testing.T) {
	// With jump tables, start-up retains no pending image refs for the
	// called function even though the module is mapped lazily later.
	s := core.NewSystem()
	s.Asm("/lib/svc.o", sevenSvcSrc)
	res := linkPLT(t, s, callSharedSrc, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range pg.LDL.PendingImageRefs() {
		if ref == "get_seven" {
			t.Fatal("call resolved eagerly despite jump tables")
		}
	}
	if s.W.Stats.PLTResolves != 0 {
		t.Fatal("stub resolved before any call")
	}
}

func TestPLTDataRefsStillResolvedAtLoad(t *testing.T) {
	// "references to data objects are all resolved at load time" — the
	// jump-table option must not defer data relocations.
	s := core.NewSystem()
	s.Asm("/lib/data.o", ".data\n.globl shared_w\nshared_w: .word 11\n")
	res := linkPLT(t, s, `
        .text
        .globl  main
        .extern shared_w
main:   la      $t0, shared_w
        lw      $v0, 0($t0)
        jr      $ra
`, lds.Input{Name: "data.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 11 {
		t.Fatalf("exit = %d", pg.P.ExitCode)
	}
	if s.W.Stats.PLTResolves != 0 {
		t.Fatal("data reference went through a stub")
	}
}

func TestPLTImageRoundTrip(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/svc.o", sevenSvcSrc)
	res := linkPLT(t, s, callSharedSrc, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	b, err := res.Image.ImageBytes()
	if err != nil {
		t.Fatal(err)
	}
	im2, err := objfile.DecodeImageBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(im2.PLT) != 1 || im2.PLT[0] != res.Image.PLT[0] {
		t.Fatalf("PLT lost in encoding: %+v", im2.PLT)
	}
	// The re-decoded image still runs.
	pg, err := s.Launch(im2, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 35 {
		t.Fatalf("exit = %d", pg.P.ExitCode)
	}
}

func TestPLTWarningEmitted(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/svc.o", sevenSvcSrc)
	res := linkPLT(t, s, callSharedSrc, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	var found bool
	for _, w := range res.Warnings {
		if strings.Contains(w, "jump-table") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no jump-table note in %v", res.Warnings)
	}
}

func TestPLTSurvivesFork(t *testing.T) {
	// A forked child's first call through an unresolved stub must be
	// handled by the CHILD's linker state, not the parent's.
	s := core.NewSystem()
	s.Asm("/lib/svc.o", sevenSvcSrc)
	res := linkPLT(t, s, callSharedSrc, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	parent, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	// Run the CHILD first: its stub (a private copy of the image page)
	// resolves through its own state.
	if err := child.Run(100000); err != nil {
		t.Fatal(err)
	}
	if child.P.ExitCode != 35 {
		t.Fatalf("child exit = %d", child.P.ExitCode)
	}
	// The parent's copy of the stub is still unresolved (private pages
	// were copied, not shared), and resolves independently.
	if err := parent.Run(100000); err != nil {
		t.Fatal(err)
	}
	if parent.P.ExitCode != 35 {
		t.Fatalf("parent exit = %d", parent.P.ExitCode)
	}
	if s.W.Stats.PLTResolves != 2 {
		t.Fatalf("PLT resolves = %d, want 2 (one per private stub copy)", s.W.Stats.PLTResolves)
	}
}
