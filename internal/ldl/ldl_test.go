package ldl_test

import (
	"strings"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/core"
	"hemlock/internal/kern"
	"hemlock/internal/ldl"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

const trivialMain = `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`

// linkWith links main.o (in /app) plus the given extra module inputs.
func linkWith(t *testing.T, s *core.System, mainSrc string, extra ...lds.Input) *lds.Result {
	t.Helper()
	if _, err := s.Asm("/app/main.o", mainSrc); err != nil {
		t.Fatal(err)
	}
	opts := &lds.Options{
		Output:  "a.out",
		Modules: append([]lds.Input{{Name: "main.o", Class: objfile.StaticPrivate}}, extra...),
		LinkDir: "/app",
	}
	res, err := s.Link(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDynamicPublicCreatedOnFirstUse(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/db.o", `
        .data
        .globl  db_count
db_count: .word 100
`)
	res := linkWith(t, s, trivialMain, lds.Input{Name: "db.o", Class: objfile.DynamicPublic})
	// Not created at link time (dynamic), only warned about if missing —
	// it exists here, so no instance yet either.
	if _, err := s.FS.StatPath("/lib/db"); err == nil {
		t.Fatal("dynamic public instance created at static link time")
	}
	opts := map[string]string{"LD_LIBRARY_PATH": "/lib"}
	p1, err := s.Launch(res.Image, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Now the instance exists: created by ldl on first use.
	if _, err := s.FS.StatPath("/lib/db"); err != nil {
		t.Fatalf("instance not created by ldl: %v", err)
	}
	v1, err := p1.Var("db_count")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v1.Load(); got != 100 {
		t.Fatalf("initial value %d, want 100 (initialised from template)", got)
	}
	if err := v1.Store(777); err != nil {
		t.Fatal(err)
	}
	// A second program sees the write at the same address.
	p2, err := s.Launch(res.Image, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := p2.Var("db_count")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Addr != v1.Addr {
		t.Fatalf("addresses differ across processes: 0x%x vs 0x%x", v1.Addr, v2.Addr)
	}
	if got, _ := v2.Load(); got != 777 {
		t.Fatalf("second process sees %d, want 777", got)
	}
	// The template's file lock was released.
	if owner, _ := s.FS.LockOwner("/lib/db.o"); owner != 0 {
		t.Fatalf("template still locked by %d", owner)
	}
}

func TestDynamicPrivatePerProcessInstance(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/buf.o", `
        .data
        .globl  buf_val
buf_val: .word 5
`)
	res := linkWith(t, s, trivialMain, lds.Input{Name: "buf.o", Class: objfile.DynamicPrivate})
	env := map[string]string{"LD_LIBRARY_PATH": "/lib"}
	p1, err := s.Launch(res.Image, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Launch(res.Image, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := p1.Var("buf_val")
	v2, _ := p2.Var("buf_val")
	if v1 == nil || v2 == nil {
		t.Fatal("buf_val unresolved")
	}
	v1.Store(11)
	if got, _ := v2.Load(); got != 5 {
		t.Fatalf("private instance shared: p2 sees %d", got)
	}
}

func TestLazyLinkingOnFirstTouch(t *testing.T) {
	// outer.o has an undefined reference satisfied by inner.o, which is on
	// outer's own module list. outer must be mapped inaccessible and
	// linked only when touched; inner is brought in at that moment.
	s := core.NewSystem()
	s.Asm("/lib/inner.o", `
        .data
        .globl  inner_val
inner_val: .word 31337
`)
	s.Asm("/lib/outer.o", `
        .dep    inner.o, dynamic-public
        .searchpath /lib
        .data
        .globl  outer_ptr
outer_ptr: .word inner_val
`)
	res := linkWith(t, s, trivialMain, lds.Input{Name: "outer.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	if s.W.Stats.LazyLinks != 0 {
		t.Fatalf("lazy links before touch: %d", s.W.Stats.LazyLinks)
	}
	// inner.o is not even mapped yet: linking only the used portion of
	// the reachability graph.
	if _, err := s.FS.StatPath("/lib/inner"); err == nil {
		t.Fatal("inner instance created before outer was touched")
	}
	// Touch outer_ptr: faults, links outer, brings in inner, resolves.
	v, err := pg.Var("outer_ptr")
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := v.Load()
	if err != nil {
		t.Fatal(err)
	}
	if s.W.Stats.LazyLinks != 1 {
		t.Fatalf("lazy links = %d, want 1", s.W.Stats.LazyLinks)
	}
	// Follow the pointer into inner.
	target := pg.VarAt("inner_val", ptr)
	if got, _ := target.Load(); got != 31337 {
		t.Fatalf("followed pointer to %d, want 31337", got)
	}
}

func TestUntouchedModuleNeverLinked(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/unused.o", `
        .extern never_defined
        .data
        .globl  u
u:      .word   never_defined
`)
	res := linkWith(t, s, trivialMain, lds.Input{Name: "unused.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(10000); err != nil {
		t.Fatal(err)
	}
	// The program ran to completion without ever resolving the broken
	// module: lazy linking allows a huge reachability graph with broken
	// or missing leaves as long as they are not used.
	if s.W.Stats.LazyLinks != 0 {
		t.Fatalf("lazy links = %d for untouched module", s.W.Stats.LazyLinks)
	}
}

func TestScopedLinkingFigure2(t *testing.T) {
	// Two DIFFERENT modules both named e.o, exporting the same symbol
	// name `evalue` with different values. c.o and d.o each pull in
	// "e.o" via their own search paths; scoped linking must bind each to
	// its own E without a naming conflict.
	s := core.NewSystem()
	s.Asm("/libC/e.o", ".data\n.globl evalue\nevalue: .word 111\n")
	s.Asm("/libD/e.o", ".data\n.globl evalue\nevalue: .word 222\n")
	s.Asm("/lib/c.o", `
        .dep    e.o, dynamic-public
        .searchpath /libC
        .data
        .globl  c_eptr
c_eptr: .word evalue
`)
	s.Asm("/lib/d.o", `
        .dep    e.o, dynamic-public
        .searchpath /libD
        .data
        .globl  d_eptr
d_eptr: .word evalue
`)
	res := linkWith(t, s, trivialMain,
		lds.Input{Name: "c.o", Class: objfile.DynamicPublic},
		lds.Input{Name: "d.o", Class: objfile.DynamicPublic},
	)
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := pg.Var("c_eptr")
	if err != nil {
		t.Fatal(err)
	}
	dp, err := pg.Var("d_eptr")
	if err != nil {
		t.Fatal(err)
	}
	cAddr, err := cp.Load()
	if err != nil {
		t.Fatal(err)
	}
	dAddr, err := dp.Load()
	if err != nil {
		t.Fatal(err)
	}
	if cAddr == dAddr {
		t.Fatal("scoped linking collapsed two distinct e.o modules")
	}
	if got, _ := pg.VarAt("", cAddr).Load(); got != 111 {
		t.Fatalf("c's evalue = %d, want 111", got)
	}
	if got, _ := pg.VarAt("", dAddr).Load(); got != 222 {
		t.Fatalf("d's evalue = %d, want 222", got)
	}
}

func TestScopedResolutionFallsBackToParent(t *testing.T) {
	// A module with no module list of its own resolves against symbols
	// available at the root (here: another root-level module).
	s := core.NewSystem()
	s.Asm("/lib/provider.o", ".data\n.globl root_sym\nroot_sym: .word 9\n")
	s.Asm("/lib/needy.o", `
        .data
        .globl  needy_ptr
needy_ptr: .word root_sym
`)
	res := linkWith(t, s, trivialMain,
		lds.Input{Name: "provider.o", Class: objfile.DynamicPublic},
		lds.Input{Name: "needy.o", Class: objfile.DynamicPublic},
	)
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("needy_ptr")
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := v.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := pg.VarAt("", ptr).Load(); got != 9 {
		t.Fatalf("parent-scope resolution failed: got %d", got)
	}
}

func TestChildScopeShadowsParent(t *testing.T) {
	// When both the child's own list and the root provide a symbol, the
	// child's own binding wins (preserving abstraction).
	s := core.NewSystem()
	s.Asm("/root/common.o", ".data\n.globl common\ncommon: .word 1\n")
	s.Asm("/sub/common.o", ".data\n.globl common\ncommon: .word 2\n")
	s.Asm("/lib/user.o", `
        .dep    common.o, dynamic-public
        .searchpath /sub
        .data
        .globl  user_ptr
user_ptr: .word common
`)
	res := linkWith(t, s, trivialMain,
		lds.Input{Name: "common.o", Class: objfile.DynamicPublic},
		lds.Input{Name: "user.o", Class: objfile.DynamicPublic},
	)
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib:/root"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("user_ptr")
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := v.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := pg.VarAt("", ptr).Load(); got != 2 {
		t.Fatalf("user bound to %d, want its own common (2)", got)
	}
}

func TestPointerFollowingAcrossSegments(t *testing.T) {
	// A linked list spanning two raw shared segments, neither of them a
	// module: dereferencing faults map them in one by one.
	s := core.NewSystem()
	s.FS.MkdirAll("/data", 0644, 0)
	s.FS.Create("/data/node2", 0644, 0)
	s.FS.WriteAt("/data/node2", 0, []byte{0, 0, 0, 0, 0, 0, 0, 99}, 0)
	node2Addr, _ := s.FS.PathToAddr("/data/node2")
	s.FS.Create("/data/node1", 0644, 0)
	s.FS.WriteAt("/data/node1", 0, []byte{
		byte(node2Addr >> 24), byte(node2Addr >> 16), byte(node2Addr >> 8), byte(node2Addr), // next
		0, 0, 0, 42, // payload
	}, 0)
	node1Addr, _ := s.FS.PathToAddr("/data/node1")

	res := linkWith(t, s, trivialMain)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	head := pg.VarAt("node1", node1Addr)
	if got, _ := head.LoadAt(4); got != 42 {
		t.Fatalf("node1 payload = %d", got)
	}
	next, err := head.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := next.LoadAt(4); got != 99 {
		t.Fatalf("node2 payload = %d", got)
	}
	if s.W.Stats.PointerMaps != 2 {
		t.Fatalf("pointer maps = %d, want 2", s.W.Stats.PointerMaps)
	}
}

func TestUnmappedHoleSegfaults(t *testing.T) {
	s := core.NewSystem()
	res := linkWith(t, s, trivialMain)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An address in the shared region with no file behind it cannot be
	// resolved; the fault surfaces as a segmentation violation.
	if _, err := pg.P.LoadWord(0x6F000000); err == nil {
		t.Fatal("load from hole succeeded")
	}
}

func TestUserHandlerRecovery(t *testing.T) {
	// Application-specific recovery: the program's own handler gets the
	// faults ldl cannot resolve.
	s := core.NewSystem()
	res := linkWith(t, s, trivialMain)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	recovered := 0
	pg.LDL.SetUserHandler(func(p *kern.Process, f *addrspace.Fault) error {
		recovered++
		return p.AS.MapAnon(f.Addr&^4095, 4096, addrspace.ProtRW)
	})
	if _, err := pg.P.LoadWord(0x28000000); err != nil {
		t.Fatalf("user handler did not recover: %v", err)
	}
	if recovered != 1 {
		t.Fatalf("recovered = %d", recovered)
	}
}

func TestLDLibraryPathSelectsVersion(t *testing.T) {
	// "Users can arrange to use new versions of dynamic modules by
	// changing the LD_LIBRARY_PATH environment variable prior to
	// execution."
	s := core.NewSystem()
	s.Asm("/v1/cfg.o", ".data\n.globl cfg\ncfg: .word 1\n")
	s.Asm("/v2/cfg.o", ".data\n.globl cfg\ncfg: .word 2\n")
	res := linkWith(t, s, trivialMain, lds.Input{Name: "cfg.o", Class: objfile.DynamicPrivate})
	// Give the link a default path of /v1.
	res2, err := s.Link(&lds.Options{
		Output:      "a.out",
		Modules:     []lds.Input{{Name: "main.o", Class: objfile.StaticPrivate}, {Name: "cfg.o", Class: objfile.DynamicPrivate}},
		LinkDir:     "/app",
		DefaultPath: []string{"/v1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	run := func(env map[string]string) uint32 {
		pg, err := s.Launch(res2.Image, 0, env)
		if err != nil {
			t.Fatal(err)
		}
		v, err := pg.Var("cfg")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := v.Load()
		return got
	}
	if got := run(nil); got != 1 {
		t.Fatalf("default path picked %d, want 1", got)
	}
	if got := run(map[string]string{"LD_LIBRARY_PATH": "/v2"}); got != 2 {
		t.Fatalf("LD_LIBRARY_PATH override picked %d, want 2", got)
	}
}

func TestVMCallIntoSharedModule(t *testing.T) {
	// End-to-end: compiled code in the main image calls a function that
	// lives in a dynamic public module in the shared region. The call is
	// a retained JUMP26 resolved by ldl at start-up, routed through a
	// trampoline (cross-region), executing shared text.
	s := core.NewSystem()
	s.Asm("/lib/svc.o", `
        .text
        .globl  get_seven
get_seven:
        li      $v0, 7
        jr      $ra
`)
	res := linkWith(t, s, `
        .text
        .globl  main
        .extern get_seven
main:   addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        jal     get_seven
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
`, lds.Input{Name: "svc.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 7 {
		t.Fatalf("exit code = %d, want 7 (returned from shared function)", pg.P.ExitCode)
	}
}

func TestForkSharesPublicLinkerState(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/shared.o", ".data\n.globl sh\nsh: .word 0\n")
	res := linkWith(t, s, trivialMain, lds.Input{Name: "shared.o", Class: objfile.DynamicPublic})
	parent, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	child, err := parent.Fork()
	if err != nil {
		t.Fatal(err)
	}
	pv, err := parent.Var("sh")
	if err != nil {
		t.Fatal(err)
	}
	cv, err := child.Var("sh")
	if err != nil {
		t.Fatal(err)
	}
	if pv.Addr != cv.Addr {
		t.Fatal("addresses differ after fork")
	}
	cv.Store(1234)
	if got, _ := pv.Load(); got != 1234 {
		t.Fatalf("parent sees %d after child store", got)
	}
}

func TestModuleNotFoundError(t *testing.T) {
	s := core.NewSystem()
	res := linkWith(t, s, trivialMain, lds.Input{Name: "ghost.o", Class: objfile.DynamicPublic})
	_, err := s.Launch(res.Image, 0, nil)
	if err == nil || !strings.Contains(err.Error(), "ghost.o") {
		t.Fatalf("want module-not-found at start-up, got %v", err)
	}
	var target error = ldl.ErrModuleNotFound
	if !strings.Contains(err.Error(), strings.TrimPrefix(target.Error(), "")) && err == nil {
		t.Fatal("wrong error kind")
	}
}
