package ldl_test

import (
	"errors"
	"strings"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/layout"
	"hemlock/internal/ldl"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
)

// TestPublicModuleCannotBindPrivateSymbol: a public module whose undefined
// reference would resolve to a private symbol must stay unresolved —
// private addresses are overloaded and mean different things in different
// processes, so patching them into a shared segment would be unsound.
func TestPublicModuleCannotBindPrivateSymbol(t *testing.T) {
	s := core.NewSystem()
	// private.o defines priv_sym in the private region (dynamic private).
	s.Asm("/lib/private.o", ".data\n.globl priv_sym\npriv_sym: .word 1\n")
	// pub.o references priv_sym from a public segment.
	s.Asm("/lib/pub.o", `
        .data
        .globl  pub_ptr
pub_ptr: .word priv_sym
`)
	res := linkWith(t, s, trivialMain,
		lds.Input{Name: "private.o", Class: objfile.DynamicPrivate},
		lds.Input{Name: "pub.o", Class: objfile.DynamicPublic},
	)
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("pub_ptr")
	if err != nil {
		t.Fatal(err)
	}
	// Touching the module triggers a lazy link; the private binding is
	// refused, so the reference stays pending and the word stays zero.
	got, err := v.Load()
	if err != nil {
		t.Fatal(err)
	}
	if layout.Private(got) && got != 0 {
		t.Fatalf("public segment holds private address 0x%08x", got)
	}
	if got != 0 {
		t.Fatalf("pub_ptr = 0x%08x, want unresolved 0", got)
	}
}

// TestPublicModuleLinksOnceGlobally: when process A links a public module,
// process B's first touch must not re-link it — it just restores access.
func TestPublicModuleLinksOnceGlobally(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/leafg.o", ".data\n.globl leafg\nleafg: .word 7\n")
	s.Asm("/lib/outer2.o", `
        .dep    leafg.o, dynamic-public
        .searchpath /lib
        .data
        .globl  optr
optr:   .word   leafg
`)
	res := linkWith(t, s, trivialMain, lds.Input{Name: "outer2.o", Class: objfile.DynamicPublic})
	env := map[string]string{"LD_LIBRARY_PATH": "/lib"}
	p1, err := s.Launch(res.Image, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := p1.Var("optr")
	if _, err := v1.Load(); err != nil {
		t.Fatal(err)
	}
	links := s.W.Stats.LazyLinks
	p2, err := s.Launch(res.Image, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := p2.Var("optr")
	ptr, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p2.VarAt("", ptr).Load(); got != 7 {
		t.Fatalf("p2 leaf = %d", got)
	}
	if s.W.Stats.LazyLinks != links {
		t.Fatalf("public module re-linked: %d -> %d", links, s.W.Stats.LazyLinks)
	}
}

// TestTemplateLockedByAnotherProcess: creation is synchronised with file
// locking; a held lock surfaces as an error rather than a corrupt segment.
func TestTemplateLockedByAnotherProcess(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/locked.o", ".data\n.globl lv\nlv: .word 1\n")
	res := linkWith(t, s, trivialMain, lds.Input{Name: "locked.o", Class: objfile.DynamicPublic})
	// Some other process holds the template lock.
	if ok, err := s.FS.TryLock("/lib/locked.o", 9999); err != nil || !ok {
		t.Fatalf("pre-lock: %v %v", ok, err)
	}
	_, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err == nil || !strings.Contains(err.Error(), "locked") {
		t.Fatalf("want lock error, got %v", err)
	}
	// Released lock unblocks the next launch.
	s.FS.Unlock("/lib/locked.o", 9999)
	if _, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"}); err != nil {
		t.Fatalf("after unlock: %v", err)
	}
}

// TestDeepRecursiveInclusion: a chain of 12 modules, each pulling in the
// next via its own list — "linking a single module may therefore cause a
// chain reaction".
func TestDeepRecursiveInclusion(t *testing.T) {
	s := core.NewSystem()
	const depth = 12
	for i := 0; i < depth; i++ {
		var src string
		if i == depth-1 {
			src = ".data\n.globl deep_ptr" + itoa(i) + "\ndeep_ptr" + itoa(i) + ": .word 4242\n"
		} else {
			// Each level exports a pointer to the next level's export,
			// resolvable only through its own module list (scoped
			// resolution searches up the DAG, never down).
			src = `
        .dep    deepNEXT.o, dynamic-public
        .searchpath /lib
        .data
        .globl  deep_ptrTHIS
deep_ptrTHIS: .word deep_ptrNEXT
`
			src = strings.ReplaceAll(src, "NEXT", itoa(i+1))
			src = strings.ReplaceAll(src, "THIS", itoa(i))
		}
		s.Asm("/lib/deep"+itoa(i)+".o", src)
	}
	res := linkWith(t, s, trivialMain, lds.Input{Name: "deep00.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	mapped := len(pg.LDL.Instances())
	v, err := pg.Var("deep_ptr00")
	if err != nil {
		t.Fatal(err)
	}
	// Follow the chain: each dereference lazy-links the next module.
	cur := v
	for i := 0; i < depth-1; i++ {
		next, err := cur.Follow(0)
		if err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		cur = next
	}
	if got, _ := cur.Load(); got != 4242 {
		t.Fatalf("deep value = %d", got)
	}
	// The chain reaction brought in all 12 modules, one level at a time.
	if got := len(pg.LDL.Instances()); got != mapped+depth-1 {
		t.Fatalf("instances = %d, want %d", got, mapped+depth-1)
	}
}

func itoa(i int) string {
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// TestPendingImageRefsReported: unresolved references in the main image
// are visible for diagnosis, and resolve later when a module providing
// them is linked in.
func TestPendingImageRefsReported(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/latecomer.o", ".data\n.globl late_sym\nlate_sym: .word 3\n")
	res := linkWith(t, s, `
        .text
        .globl  main
        .extern late_sym
main:   la      $t0, late_sym
        lw      $v0, 0($t0)
        jr      $ra
`)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if refs := pg.LDL.PendingImageRefs(); len(refs) != 1 || refs[0] != "late_sym" {
		t.Fatalf("pending refs = %v", refs)
	}
	// Bring the provider in explicitly (the dlopen-ish path) under the
	// root scope; the image relocations resolve.
	if _, err := pg.LDL.BringIn(objfile.ModuleRef{Name: "/lib/latecomer.o", Class: objfile.DynamicPublic}, nil); err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode != 3 {
		t.Fatalf("exit = %d, want 3 (late resolution)", pg.P.ExitCode)
	}
	if refs := pg.LDL.PendingImageRefs(); len(refs) != 0 {
		t.Fatalf("refs still pending: %v", refs)
	}
}

// TestSegmentGrowthBeyondModuleImage: a public module's bss can exceed the
// template bytes; the instance file covers the whole placed size.
func TestSegmentGrowthBeyondModuleImage(t *testing.T) {
	s := core.NewSystem()
	obj := objfile.NewBuilder("big.o").
		Word("big_head", 1, true).
		Bss("big_buf", 300*1024, true).
		MustBuild()
	if err := s.AddTemplate("/lib/big.o", obj); err != nil {
		t.Fatal(err)
	}
	res := linkWith(t, s, trivialMain, lds.Input{Name: "big.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("big_buf")
	if err != nil {
		t.Fatal(err)
	}
	// Write at the far end of the 300 KB bss.
	if err := v.StoreAt(300*1024-4, 0xFEED); err != nil {
		t.Fatal(err)
	}
	st, _ := s.FS.StatPath("/lib/big")
	if st.Size < 300*1024 {
		t.Fatalf("instance size %d < bss", st.Size)
	}
}

// TestUnlinkedSegmentUnmapsPerProcess: unmapping a shared slot in one
// process does not disturb another's mapping.
func TestUnmapSharedSlotIndependence(t *testing.T) {
	s := core.NewSystem()
	s.FS.Create("/seg", shmfs.DefaultFileMode, 0)
	s.FS.WriteAt("/seg", 0, []byte{0, 0, 0, 9}, 0)
	st, _ := s.FS.StatPath("/seg")
	res := linkWith(t, s, trivialMain)
	p1, _ := s.Launch(res.Image, 0, nil)
	p2, _ := s.Launch(res.Image, 0, nil)
	if v, _ := p1.VarAt("", st.Addr).Load(); v != 9 {
		t.Fatal("p1 initial read failed")
	}
	if v, _ := p2.VarAt("", st.Addr).Load(); v != 9 {
		t.Fatal("p2 initial read failed")
	}
	p1.P.UnmapSharedSlot(st.Ino)
	// p2 still mapped.
	if v, err := p2.P.AS.LoadWord(st.Addr); err != nil || v != 9 {
		t.Fatalf("p2 mapping disturbed: %v", err)
	}
	// p1 faults and remaps via pointer-following.
	if v, err := p1.VarAt("", st.Addr).Load(); err != nil || v != 9 {
		t.Fatalf("p1 remap failed: %v", err)
	}
}

// TestErrModuleNotFoundSentinel verifies the exported error is usable with
// errors.Is through the Launch path.
func TestErrModuleNotFoundSentinel(t *testing.T) {
	s := core.NewSystem()
	res := linkWith(t, s, trivialMain, lds.Input{Name: "phantom.o", Class: objfile.DynamicPrivate})
	_, err := s.Launch(res.Image, 0, nil)
	if !errors.Is(err, ldl.ErrModuleNotFound) {
		t.Fatalf("error chain broken: %v", err)
	}
}
