package ldl

import (
	"hemlock/internal/kern"
	"hemlock/internal/objfile"
)

// CloneFor duplicates the per-process linker state for a forked child.
// Public module state (world-level) is shared — public segments are the
// same segment in parent and child; private instance bookkeeping is
// copied, since the child received copies of those segments at the same
// (overloaded) private addresses.
func (pr *Proc) CloneFor(child *kern.Process) *Proc {
	cl := &Proc{
		W:           pr.W,
		P:           child,
		Image:       pr.Image,
		table:       pr.table, // static symbols are immutable after Start
		imagePend:   append([]objfile.ImageReloc(nil), pr.imagePend...),
		trampNext:   pr.trampNext,
		userHandler: pr.userHandler,
		plt:         pr.plt, // stub names are immutable
	}
	// Children and zygote clones replay from the parent's cache entry (the
	// live recording, if the parent is the recorder) but never record: one
	// writer per key.
	cl.ckey = pr.ckey
	if pr.centry != nil {
		cl.centry = pr.centry
	} else {
		cl.centry = pr.crec
	}
	// The child starts with its own copy of the pending image relocations.
	// Hidden zygote templates don't count: they are parked snapshots, not
	// running processes (their clones count when they are made).
	if !child.Hidden() {
		pr.W.addImageRelocs(len(cl.imagePend))
	}
	remap := map[*Instance]*Instance{nil: nil}
	cl.root = &Instance{Name: pr.root.Name, searchPath: pr.root.searchPath}
	remap[pr.root] = cl.root
	for _, in := range pr.instances {
		c := *in
		c.pending = append([]objfile.Reloc(nil), in.pending...)
		c.depsLoaded = nil
		cl.instances = append(cl.instances, &c)
		remap[in] = &c
	}
	for i, in := range pr.instances {
		cl.instances[i].parent = remap[in.parent]
	}
	relink := func(src, dst *Instance) {
		for _, d := range src.depsLoaded {
			dst.depsLoaded = append(dst.depsLoaded, remap[d])
		}
	}
	relink(pr.root, cl.root)
	for i, in := range pr.instances {
		relink(in, cl.instances[i])
	}
	child.Runtime = cl
	child.Handler = cl.HandleFault
	// Never leave the child pointing at the PARENT's break handler (the
	// kernel copies handlers wholesale before CloneRuntime runs).
	if cl.plt != nil {
		child.BreakHandler = cl.handleBreak
	} else {
		child.BreakHandler = nil
	}
	return cl
}
