package ldl

// Explicit run-time loading: the dld/dlopen interface the paper compares
// against in section 3. Unlike Sun's dlopen, the module need not be
// self-contained — its undefined references are resolved with the usual
// scoped strategy, and it can in turn satisfy references retained in the
// main program ("Dld will resolve undefined references in the modules it
// brings in ... Neither dld nor the explicitly-invoked Sun/SV routines
// resolves undefined references in the main program" — ldl does both).
//
// These methods back the link_module and sym_addr system calls via the
// kern.ModuleLinker interface.

import "hemlock/internal/objfile"

// LinkByPath brings the named module in at root scope and returns its base
// address. public selects the sharing class (dynamic public vs private).
func (pr *Proc) LinkByPath(name string, public bool) (uint32, error) {
	class := objfile.DynamicPrivate
	if public {
		class = objfile.DynamicPublic
	}
	// Idempotent for public modules already brought in.
	inst, err := pr.BringIn(objfile.ModuleRef{Name: name, Class: class}, pr.root)
	if err != nil {
		return 0, err
	}
	return inst.Base, nil
}

// SymbolAddr resolves a symbol against the root scope, falling back to any
// loaded instance's exports (the dlsym behaviour).
func (pr *Proc) SymbolAddr(name string) (uint32, bool) {
	return pr.Resolve(name)
}
