// Package ldl implements Hemlock's lazy dynamic linker and its user-level
// fault handler (sections 2-3 of the paper).
//
// At process start-up (invoked by the special crt0 that lds links in), ldl
//
//   - maps the static public modules recorded in the load image, creating
//     from their templates any that do not yet exist;
//   - locates each dynamic module using the run-time search strategy —
//     (1) the LD_LIBRARY_PATH environment variable now, (2) the directories
//     in which lds searched at static link time — creating new instances of
//     dynamic private modules and of dynamic public modules that do not yet
//     exist (creation of shared segments is synchronized with file
//     locking);
//   - maps every module with undefined references WITHOUT access
//     permissions, so that the first reference causes a segmentation fault;
//   - resolves undefined references from the main load image to objects in
//     the dynamic modules, even though their locations were not known at
//     static link time.
//
// The fault handler serves two purposes: it implements lazy linking (a
// fault in a lazily-mapped module resolves that module's references,
// mapping in — possibly inaccessibly — any new modules that are needed),
// and it lets the process follow pointers into shared segments that are
// not yet mapped (it asks the kernel to translate the address to a path
// name and maps the named segment). Afterwards the faulting instruction
// restarts.
//
// Scoped linking: when module M is brought in, its undefined references
// are resolved first against the external symbols of modules on M's own
// module list and search path; remaining references move up to M's parent,
// then grandparent, and so on to the root. References undefined at the
// root are left unresolved; touching them segfaults, and a program-provided
// handler may attempt recovery.
package ldl

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/kern"
	"hemlock/internal/layout"
	"hemlock/internal/lds"
	"hemlock/internal/linker"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
)

// Errors.
var (
	ErrModuleNotFound    = errors.New("ldl: cannot find dynamic module")
	ErrPrivateIntoPublic = errors.New("ldl: public module resolved against a private symbol (addresses in the private region are overloaded)")
	ErrNoTrampoline      = errors.New("ldl: image trampoline area exhausted")
)

// Stats counts linker activity; the lazy-vs-eager experiment reads it.
// Every field is mirrored by a counter or gauge in the kernel's obsv
// registry (ldl.modules_mapped, ldl.lazy_links, ...), and the two always
// agree: both are updated at the same site under the world lock.
type Stats struct {
	ModulesMapped  int // instances mapped into some address space
	ModulesCreated int // public instances created from templates
	LazyLinks      int // modules linked on first touch
	RelocsApplied  int
	PointerMaps    int // segments mapped by pointer-following faults

	// ImageRelocsLeft is the total number of retained load-image
	// relocations still pending across every process the world has
	// started: process start-up and fork add their pending counts,
	// resolution subtracts. (It used to be overwritten with the latest
	// process's count, which was meaningless with more than one program
	// running.)
	ImageRelocsLeft int

	PLTResolves int // jump-table stubs patched on first call
}

// shared is the kernel-wide state of one public module instance.
type shared struct {
	path   string
	placed *linker.Placed

	// lmu serializes linking of this module: two processes (on two guest
	// CPUs) faulting into the same unlinked public module must not both
	// run the resolve-and-patch loop — pending and the shared file are one
	// copy fleet-wide. linked is atomic so the fast path (Linked, the
	// bring-in protection choice) stays lock-free.
	lmu     sync.Mutex
	pending []objfile.Reloc
	linked  atomic.Bool
}

// World is the kernel-wide dynamic-linker state: public modules are linked
// once and shared by every process, because their symbols resolve to
// globally-agreed public addresses.
type World struct {
	K  *kern.Kernel
	LD *lds.Linker

	mu     sync.Mutex
	public map[string]*shared
	Stats  Stats

	// Trace, when set, receives a line for each linker event (module
	// mapped, segment created, lazy link, pointer-map fault, stub
	// resolution): the LD_DEBUG of the simulation.
	//
	// Deprecated: Trace is a compatibility shim kept for existing callers.
	// New code should attach a sink (obsv.NewText for the old line format)
	// to the kernel tracer, W.K.Obs.T, which carries the same events typed
	// and timestamped alongside every other subsystem's.
	Trace func(format string, args ...interface{})

	// Registry-backed mirrors of Stats (see Stats doc).
	ctrMapped  *obsv.Counter
	ctrCreated *obsv.Counter
	ctrLazy    *obsv.Counter
	ctrRelocs  *obsv.Counter
	ctrPtrMaps *obsv.Counter
	ctrPLT     *obsv.Counter
	gImageLeft *obsv.Gauge

	// Stable linking (linkcache.go). CacheEnabled turns on the persistent
	// content-hash link cache under /var/ldl/cache; ZygoteEnabled lets
	// launches be satisfied by CoW-cloning a parked template (core checks
	// it — zygotes are keyed and validated by the same cache entries, so
	// ZygoteEnabled implies CacheEnabled). Both default off: a bare World
	// behaves exactly as it always has.
	CacheEnabled  bool
	ZygoteEnabled bool

	cmu       sync.Mutex
	keyMemo   map[*objfile.Image]uint64 // image content hash, by identity
	objMemo   map[string]objMemoEntry   // decoded templates, by path
	entryMemo map[string]*cacheEntry    // decoded cache entries, by key
	memoCV    map[string]uint64         // cache-file fingerprint at decode

	// Launch singleflight (see LockLaunch): in-flight launches by content
	// key, so concurrent identical launches from the serve daemon or an
	// SMP workload produce exactly one cold link.
	lgmu     sync.Mutex
	inflight map[string]chan struct{}

	ctrCHit, ctrCMiss, ctrCInval *obsv.Counter
	gCacheBytes                  *obsv.Gauge
}

type objMemoEntry struct {
	cv  uint64
	obj *objfile.Object
}

func (w *World) tracef(format string, args ...interface{}) {
	if w.Trace != nil {
		w.Trace(format, args...)
	}
}

// tracer returns the kernel-wide event tracer (nil-safe).
func (w *World) tracer() *obsv.Tracer { return w.K.Obs.Tracer() }

// emit sends a typed linker event to the kernel tracer when enabled.
func (w *World) emit(e obsv.Event) {
	if t := w.tracer(); t.Enabled() {
		e.Subsys = "ldl"
		t.Emit(e)
	}
}

// addImageRelocs delta-adjusts the pending retained-reloc aggregate in
// both the Stats struct and the registry gauge.
func (w *World) addImageRelocs(delta int) {
	if delta == 0 {
		return
	}
	w.mu.Lock()
	w.Stats.ImageRelocsLeft += delta
	w.mu.Unlock()
	w.gImageLeft.Add(int64(delta))
}

// NewWorld creates the dynamic-linker state for a kernel.
func NewWorld(k *kern.Kernel) *World {
	r := k.Obs.Registry()
	return &World{
		K: k, LD: lds.New(k.FS), public: map[string]*shared{},
		ctrMapped:   r.Counter("ldl.modules_mapped"),
		ctrCreated:  r.Counter("ldl.modules_created"),
		ctrLazy:     r.Counter("ldl.lazy_links"),
		ctrRelocs:   r.Counter("ldl.relocs_applied"),
		ctrPtrMaps:  r.Counter("ldl.pointer_maps"),
		ctrPLT:      r.Counter("ldl.plt_resolves"),
		gImageLeft:  r.Gauge("ldl.image_relocs_left"),
		keyMemo:     map[*objfile.Image]uint64{},
		objMemo:     map[string]objMemoEntry{},
		entryMemo:   map[string]*cacheEntry{},
		memoCV:      map[string]uint64{},
		inflight:    map[string]chan struct{}{},
		ctrCHit:     r.Counter("ldl.linkcache_hit"),
		ctrCMiss:    r.Counter("ldl.linkcache_miss"),
		ctrCInval:   r.Counter("ldl.linkcache_invalidate"),
		gCacheBytes: r.Gauge("ldl.linkcache_bytes"),
	}
}

// Instance is a per-process view of one linked-in module.
type Instance struct {
	Name   string
	Class  objfile.Class
	Path   string // instance path for public modules; "" for private
	Base   uint32
	Size   uint32 // mapped size, page-granular
	parent *Instance

	obj    *objfile.Object
	placed *linker.Placed
	sh     *shared // public modules only

	searchPath []string
	deps       []objfile.ModuleRef
	depsLoaded []*Instance
	depsDone   bool

	pending []objfile.Reloc // private modules only (public: sh.pending)
	linked  bool
	lazy    bool // mapped without access permissions
}

// Symbols returns the instance's exported symbols at their placed
// absolute addresses: the symbolization source the guest profiler uses to
// turn sampled PCs inside this module into function names.
func (in *Instance) Symbols() []objfile.ImageSym {
	if in.placed == nil {
		return nil
	}
	return in.placed.Exports()
}

// Linked reports whether the instance has all references resolved.
func (in *Instance) Linked() bool {
	if in.sh != nil {
		return in.sh.linked.Load()
	}
	return in.linked
}

// Proc is the per-process dynamic-linker state, stored in
// kern.Process.Runtime by Start.
type Proc struct {
	W     *World
	P     *kern.Process
	Image *objfile.Image

	table       *linker.Table // image's static symbols
	root        *Instance     // pseudo-instance: the program itself
	instances   []*Instance
	imagePend   []objfile.ImageReloc
	trampNext   uint32
	userHandler kern.FaultHandler
	plt         map[uint32]string // stub address -> function name

	// Stable-linking state (linkcache.go). ckey is the launch content-hash
	// key ("" when the cache is off). centry is the validated cache entry
	// this process replays from; crec is the entry it is recording into (a
	// process never does both). cev is the currently open recorded event;
	// suppressImage short-circuits resolveImageRelocs while the "start"
	// event replay subsumes it. statRelocs/statLazy mirror this process's
	// own contributions to the world Stats, for event delta capture.
	ckey          string
	centry        *cacheEntry
	crec          *cacheEntry
	cev           *openEvent
	cdeps         map[string]bool
	suppressImage bool
	statRelocs    int
	statLazy      int
}

// Start runs ldl for a process that has just exec'd im: the work the
// special crt0 triggers before main. It installs the fault handler and
// returns the per-process linker state.
func (w *World) Start(p *kern.Process, im *objfile.Image) (*Proc, error) {
	startSpan := w.tracer().Begin("ldl", "start", p.PID, im.Name)
	defer startSpan.End(0)
	pr := &Proc{W: w, P: p, Image: im, table: linker.NewTable(), trampNext: im.TrampBase}
	if w.CacheEnabled {
		pr.ckey = w.LaunchKey(im, p.UID, p.Env)
		probeSpan := w.tracer().Begin("link", "cache_probe", p.PID, im.Name)
		entry := w.probeCache(pr.ckey)
		probeSpan.End(0)
		if entry != nil {
			pr.centry = entry
		} else {
			pr.crec = newCacheEntry(pr.ckey)
			pr.cdeps = map[string]bool{}
		}
	}
	defSpan := w.tracer().Begin("ldl", "sym_define", p.PID, im.Name)
	for _, s := range im.Symbols {
		if err := pr.table.Define(s.Name, s.Addr, s.Size); err != nil {
			defSpan.End(0)
			return nil, err
		}
	}
	defSpan.End(uint64(len(im.Symbols)))
	pr.imagePend = append([]objfile.ImageReloc(nil), im.Relocs...)
	w.addImageRelocs(len(pr.imagePend))
	pr.root = &Instance{
		Name:       "(program)",
		searchPath: pr.runtimeDirs(),
	}
	p.Runtime = pr
	p.Handler = pr.HandleFault
	pr.installPLT()
	p.CloneRuntime = func(parent, child *kern.Process) {
		if ppr, ok := ProcOf(parent); ok {
			ppr.CloneFor(child)
		}
	}

	// On a validated cache hit, the recorded "start" event subsumes every
	// image-relocation pass below: modules are still located and mapped
	// (laziness and world bookkeeping must be real), but resolution becomes
	// one bulk patch application at the end.
	startEv := pr.lookupEvent(eventStart)
	if startEv != nil {
		pr.suppressImage = true
	}
	pr.beginEvent(eventStart, nil)

	// Map static public modules, creating any that do not yet exist.
	for _, sp := range im.Dyn.StaticPublic {
		if _, err := pr.bringInPublic(sp.Name, objfile.StaticPublic, sp.Template, pr.root); err != nil {
			return nil, err
		}
	}
	// Locate, create and map the dynamic modules.
	for _, ref := range im.Dyn.DynModules {
		if _, err := pr.BringIn(ref, pr.root); err != nil {
			return nil, err
		}
	}
	// Resolve undefined references from the main load image, including
	// references to symbols whose location was not known at static link
	// time.
	if startEv != nil {
		pr.suppressImage = false
		ok, err := pr.replayStart(startEv)
		if err != nil {
			return nil, err
		}
		if !ok {
			// World state diverged from the recording; resolve cold.
			if err := pr.resolveImageRelocs(); err != nil {
				return nil, err
			}
		}
	} else {
		if err := pr.resolveImageRelocs(); err != nil {
			return nil, err
		}
		pr.endEvent(nil)
	}
	return pr, nil
}

// ProcOf returns the linker state Start attached to the process.
func ProcOf(p *kern.Process) (*Proc, bool) {
	pr, ok := p.Runtime.(*Proc)
	return pr, ok
}

// runtimeDirs is ldl's root search order: LD_LIBRARY_PATH now, then the
// directories in which lds searched for static modules.
func (pr *Proc) runtimeDirs() []string {
	var dirs []string
	if env := pr.P.Getenv("LD_LIBRARY_PATH"); env != "" {
		dirs = append(dirs, strings.Split(env, ":")...)
	}
	d := &pr.Image.Dyn
	if d.LinkDir != "" {
		dirs = append(dirs, d.LinkDir)
	}
	dirs = append(dirs, d.CmdPath...)
	dirs = append(dirs, d.EnvPath...)
	dirs = append(dirs, d.DefaultPath...)
	return dirs
}

// scopeDirs returns the search directories for a module reference made by
// `from`: from's own path first, then its ancestors' (scoped linking).
func (pr *Proc) scopeDirs(from *Instance) []string {
	var dirs []string
	for s := from; s != nil; s = s.parent {
		dirs = append(dirs, s.searchPath...)
	}
	return dirs
}

// BringIn locates, creates if necessary, and maps the module named by ref,
// scoped under parent. The module is NOT linked: if it has undefined
// references it is mapped without access permissions so the first
// reference faults ("brought in by ldl, created on first use").
func (pr *Proc) BringIn(ref objfile.ModuleRef, parent *Instance) (*Instance, error) {
	if parent == nil {
		parent = pr.root
	}
	dirs := pr.scopeDirs(parent)
	findSpan := pr.W.tracer().Begin("ldl", "find_module", pr.P.PID, ref.Name)
	tmplPath, ok := pr.W.LD.FindModule(ref.Name, dirs)
	findSpan.End(0)
	if !ok {
		return nil, fmt.Errorf("%w: %s (searched %v)", ErrModuleNotFound, ref.Name, dirs)
	}
	var inst *Instance
	var err error
	if ref.Class.Public() {
		inst, err = pr.bringInPublic(ref.Name, ref.Class, tmplPath, parent)
	} else {
		inst, err = pr.bringInPrivate(ref.Name, ref.Class, tmplPath, parent)
	}
	if err != nil {
		return nil, err
	}
	// The new module's exports may satisfy references retained in the main
	// image — "ldl will use symbols found in dynamically-linked modules to
	// resolve undefined references in the statically-linked portion of the
	// program, even when the location of those symbols was not known at
	// static link time."
	if len(pr.imagePend) > 0 && parent == pr.root {
		if err := pr.resolveImageRelocs(); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// bringInPublic maps (creating if necessary, under the template's file
// lock) the persistent public instance of the module.
func (pr *Proc) bringInPublic(name string, class objfile.Class, tmplPath string, parent *Instance) (*Instance, error) {
	w := pr.W
	sp := w.tracer().Begin("ldl", "bring_in_public", pr.P.PID, name)
	defer sp.End(0)
	pr.noteDep(tmplPath)
	instPath := lds.InstancePath(tmplPath)

	// Creation of shared segments is synchronized with file locking.
	if ok, err := w.K.FS.TryLock(tmplPath, pr.P.PID); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("ldl: template %s locked by another process", tmplPath)
	}
	defer w.K.FS.Unlock(tmplPath, pr.P.PID)

	w.mu.Lock()
	sh, known := w.public[instPath]
	w.mu.Unlock()
	if !known {
		createSpan := w.tracer().Begin("ldl", "create_instance", pr.P.PID, tmplPath)
		_, addr, created, err := w.LD.CreatePublicInstance(tmplPath, pr.P.UID)
		createSpan.End(0)
		if err != nil {
			return nil, err
		}
		obj, err := pr.loadTemplate(tmplPath)
		if err != nil {
			return nil, err
		}
		placeSpan := w.tracer().Begin("linker", "place", pr.P.PID, tmplPath)
		placed, err := linker.Place(obj, addr)
		placeSpan.End(0)
		if err != nil {
			return nil, err
		}
		// The instance file already holds the internally-relocated bytes
		// (created now or by an earlier lds/ldl run). Recover the pending
		// external references from the template: external resolution is
		// deterministic, so this is safe across kernel restarts.
		var pending []objfile.Reloc
		for _, r := range obj.Relocs {
			if !obj.Symbols[r.Sym].Defined() {
				pending = append(pending, r)
			}
		}
		sh = &shared{path: instPath, placed: placed, pending: pending}
		sh.linked.Store(len(pending) == 0)
		w.mu.Lock()
		if raced, ok := w.public[instPath]; ok {
			// Another process created the record between our lookup and
			// now; theirs is the fleet-wide copy.
			sh = raced
		} else {
			w.public[instPath] = sh
			if created {
				w.Stats.ModulesCreated++
				w.ctrCreated.Inc()
			}
		}
		w.mu.Unlock()
		if created {
			w.emit(obsv.Event{Name: "create_public", PID: pr.P.PID, Mod: instPath, Addr: placed.Base})
		}
	}

	// Already brought into this process?
	for _, in := range pr.instances {
		if in.Path == instPath {
			return in, nil
		}
	}

	prot := addrspace.ProtRWX
	lazy := false
	if !sh.linked.Load() {
		// "If any module contains undefined references ... ldl maps the
		// module without access permissions, so that the first reference
		// will cause a segmentation fault."
		prot = addrspace.ProtNone
		lazy = true
	}
	st, err := w.K.MapSharedFile(pr.P, instPath, sh.placed.Size(), prot)
	if err != nil {
		return nil, err
	}
	w.tracef("ldl: mapped public %s at 0x%08x (%s, lazy=%v)", instPath, st.Addr, class, lazy)
	lazyVal := uint64(0)
	if lazy {
		lazyVal = 1
	}
	w.emit(obsv.Event{Name: "map_public", PID: pr.P.PID, Mod: instPath, Addr: st.Addr, Val: lazyVal})
	inst := &Instance{
		Name:       name,
		Class:      class,
		Path:       instPath,
		Base:       st.Addr,
		Size:       addrspace.PageCount(maxu32(st.Size, sh.placed.Size())) * 4096,
		parent:     parent,
		obj:        sh.placed.Obj,
		placed:     sh.placed,
		sh:         sh,
		searchPath: sh.placed.Obj.SearchPath,
		deps:       sh.placed.Obj.Deps,
		lazy:       lazy,
	}
	pr.instances = append(pr.instances, inst)
	parent.depsLoaded = append(parent.depsLoaded, inst)
	w.mu.Lock()
	w.Stats.ModulesMapped++
	w.ctrMapped.Inc()
	w.mu.Unlock()
	return inst, nil
}

// bringInPrivate creates a new per-process instance of a private module.
func (pr *Proc) bringInPrivate(name string, class objfile.Class, tmplPath string, parent *Instance) (*Instance, error) {
	sp := pr.W.tracer().Begin("ldl", "bring_in_private", pr.P.PID, name)
	defer sp.End(0)
	pr.noteDep(tmplPath)
	obj, err := pr.loadTemplate(tmplPath)
	if err != nil {
		return nil, err
	}
	// Reserve private address space; each instance is distinct, even for
	// the same template under different parents (Figure 2 shows two
	// separate G.o instances).
	placeSpan := pr.W.tracer().Begin("linker", "place", pr.P.PID, tmplPath)
	placedProbe, err := linker.Place(obj, 0)
	if err != nil {
		placeSpan.End(0)
		return nil, err
	}
	base, err := pr.P.AllocPrivate(placedProbe.Size())
	if err != nil {
		placeSpan.End(0)
		return nil, err
	}
	placed, err := linker.Place(obj, base)
	placeSpan.End(0)
	if err != nil {
		return nil, err
	}
	// Initialise the instance from its template and apply internal
	// relocations through the (currently writable) mapping.
	writeSpan := pr.W.tracer().Begin("ldl", "write_segment", pr.P.PID, name)
	err = pr.P.WriteMem(base, placed.Image())
	writeSpan.End(uint64(placed.Size()))
	if err != nil {
		return nil, err
	}
	relocSpan := pr.W.tracer().Begin("ldl", "reloc_internal", pr.P.PID, name)
	pending, err := placed.RelocateInternal(pr.P.AS)
	relocSpan.End(0)
	if err != nil {
		return nil, err
	}
	size := addrspace.PageCount(placed.Size()) * 4096
	lazy := len(pending) > 0
	if lazy {
		if err := pr.P.AS.Protect(base, size, addrspace.ProtNone); err != nil {
			return nil, err
		}
	}
	pr.W.tracef("ldl: created private instance of %s at 0x%08x (lazy=%v)", name, base, lazy)
	lazyVal := uint64(0)
	if lazy {
		lazyVal = 1
	}
	pr.W.emit(obsv.Event{Name: "map_private", PID: pr.P.PID, Mod: name, Addr: base, Val: lazyVal})
	inst := &Instance{
		Name:       name,
		Class:      class,
		Base:       base,
		Size:       size,
		parent:     parent,
		obj:        obj,
		placed:     placed,
		searchPath: obj.SearchPath,
		deps:       obj.Deps,
		pending:    pending,
		linked:     !lazy,
		lazy:       lazy,
	}
	pr.instances = append(pr.instances, inst)
	parent.depsLoaded = append(parent.depsLoaded, inst)
	pr.W.mu.Lock()
	pr.W.Stats.ModulesMapped++
	pr.W.ctrMapped.Inc()
	pr.W.mu.Unlock()
	return inst, nil
}

func (pr *Proc) loadTemplate(path string) (*objfile.Object, error) {
	sp := pr.W.tracer().Begin("ldl", "load_template", pr.P.PID, path)
	defer sp.End(0)
	w := pr.W
	// Decoded templates are immutable (Place never mutates its input), so
	// under stable linking they are memoized by path + content fingerprint:
	// repeat launches skip the read+decode entirely.
	var cv uint64
	haveCV := false
	if w.CacheEnabled {
		if v, err := w.K.FS.ContentVersion(path); err == nil {
			cv, haveCV = v, true
			w.cmu.Lock()
			if e, ok := w.objMemo[path]; ok && e.cv == cv {
				w.cmu.Unlock()
				return e.obj, nil
			}
			w.cmu.Unlock()
		}
	}
	data, err := w.K.FS.ReadFile(path, pr.P.UID)
	if err != nil {
		return nil, err
	}
	obj, err := objfile.DecodeBytes(data)
	if err != nil {
		return nil, err
	}
	if haveCV {
		w.cmu.Lock()
		w.objMemo[path] = objMemoEntry{cv: cv, obj: obj}
		w.cmu.Unlock()
	}
	return obj, nil
}

func maxu32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// ---- symbol resolution (scoped) -------------------------------------------

// loadDeps brings in the module's own dependency list (lazily mapped).
func (pr *Proc) loadDeps(in *Instance) error {
	if in.depsDone {
		return nil
	}
	in.depsDone = true
	for _, d := range in.deps {
		if _, err := pr.BringIn(d, in); err != nil {
			return err
		}
	}
	return nil
}

// resolveScoped resolves a symbol for a reference made by `from`: the
// exports of modules brought in at from's level first, then up the parent
// chain; at the root, the image's static symbols also count.
func (pr *Proc) resolveScoped(from *Instance, name string) (uint32, bool) {
	for s := from; s != nil; s = s.parent {
		for _, dep := range s.depsLoaded {
			if addr, ok := dep.placed.AddrOf(name); ok {
				if i := dep.obj.SymbolIndex(name); i >= 0 {
					sym := dep.obj.Symbols[i]
					if sym.Global && sym.Defined() {
						return addr, true
					}
				}
			}
		}
		if s == pr.root {
			if addr, ok := pr.table.Resolve(name); ok {
				return addr, true
			}
		}
	}
	return 0, false
}

// LinkModule resolves a lazily-mapped module: it loads the module's own
// dependency list (mapping new modules, possibly inaccessibly), resolves
// the pending references scoped at the module, patches the segment, and
// enables access. Public modules are patched through the file so every
// process sees the linked segment.
func (pr *Proc) LinkModule(in *Instance) error {
	if in.Linked() {
		// Another process linked this public module; just enable access.
		return pr.enable(in)
	}
	if in.sh != nil {
		// Serialize fleet-wide: only one process links a public module;
		// the loser of the race sees linked==true after acquiring the
		// lock and just enables access in its own address space.
		in.sh.lmu.Lock()
		defer in.sh.lmu.Unlock()
		if in.Linked() {
			return pr.enable(in)
		}
	}
	sp := pr.W.tracer().Begin("ldl", "link_module", pr.P.PID, in.Name)
	defer sp.End(0)

	// On a warm launch, a recorded link event turns the whole resolve-and-
	// patch loop below into one bulk application of pre-resolved words.
	evKey := linkEventKey(in)
	if ev := pr.lookupEvent(evKey); ev != nil {
		ok, err := pr.replayLink(in, ev)
		if err != nil {
			return err
		}
		if ok {
			return pr.enable(in)
		}
		// World state diverged from the recording; link cold (unrecorded).
	}

	pr.beginEvent(evKey, pr.pendingOf(in))
	if err := pr.loadDeps(in); err != nil {
		return err
	}
	resolver := func(name string) (uint32, bool) { return pr.resolveScoped(in, name) }

	if in.sh != nil {
		// Public: patch the shared file; resolution must only bind to
		// public addresses, which mean the same thing in every process.
		guard := func(name string) (uint32, bool) {
			addr, ok := resolver(name)
			if ok && !layout.Public(addr) {
				return 0, false // leave pending; cannot soundly share
			}
			return addr, ok
		}
		var pat linker.Patcher = &filePatcher{fs: pr.W.K.FS, path: in.Path, base: in.Base, uid: pr.P.UID}
		pat = pr.recordingPatcher(pat, true)
		left, err := in.placed.ApplyRelocs(in.sh.pending, guard, pat)
		if err != nil {
			return err
		}
		applied := len(in.sh.pending) - len(left)
		in.sh.pending = left
		in.sh.linked.Store(len(left) == 0)
		pr.addLinkStats(applied, 1)
		pr.W.tracef("ldl: linked public %s: %d reloc(s), %d pending", in.Path, applied, len(left))
		pr.W.emit(obsv.Event{Name: "lazy_link", PID: pr.P.PID, Mod: in.Path, Addr: in.Base, Val: uint64(applied)})
	} else {
		// Private: patch through this process's address space. Make the
		// pages writable for patching first.
		if err := pr.P.AS.Protect(in.Base, in.Size, addrspace.ProtRW); err != nil {
			return err
		}
		left, err := in.placed.ApplyRelocs(in.pending, resolver, pr.recordingPatcher(pr.P.AS, false))
		if err != nil {
			return err
		}
		applied := len(in.pending) - len(left)
		in.pending = left
		in.linked = len(left) == 0
		pr.addLinkStats(applied, 1)
		pr.W.tracef("ldl: linked private %s: %d reloc(s), %d pending", in.Name, applied, len(left))
		pr.W.emit(obsv.Event{Name: "lazy_link", PID: pr.P.PID, Mod: in.Name, Addr: in.Base, Val: uint64(applied)})
	}
	// New modules may now satisfy references retained in the main image.
	if err := pr.resolveImageRelocs(); err != nil {
		return err
	}
	pr.endEvent(pr.pendingOf(in))
	return pr.enable(in)
}

// LockLaunch serializes launches that share a content-hash key and
// returns the unlock. The zygote registry and the link cache were built
// under the single-run-loop assumption: two identical launches racing down
// the cold path would each link cold and fight over registering the
// template. The gate makes the first one link and register; by the time a
// waiter proceeds, the zygote is parked and it clones warm. Launches with
// different keys never touch.
func (w *World) LockLaunch(key string) (unlock func()) {
	for {
		w.lgmu.Lock()
		ch, busy := w.inflight[key]
		if !busy {
			ch = make(chan struct{})
			w.inflight[key] = ch
			w.lgmu.Unlock()
			return func() {
				w.lgmu.Lock()
				delete(w.inflight, key)
				w.lgmu.Unlock()
				close(ch)
			}
		}
		w.lgmu.Unlock()
		<-ch
	}
}

// pendingOf returns the module's current pending-relocation list (shared
// state for public modules, per-process for private ones).
func (pr *Proc) pendingOf(in *Instance) []objfile.Reloc {
	if in.sh != nil {
		return in.sh.pending
	}
	return in.pending
}

// addLinkStats bumps the world link counters and this process's own
// mirrors (the mirrors feed cache-event delta capture).
func (pr *Proc) addLinkStats(relocs, lazy int) {
	pr.W.mu.Lock()
	pr.W.Stats.RelocsApplied += relocs
	pr.W.Stats.LazyLinks += lazy
	pr.W.ctrRelocs.Add(uint64(relocs))
	if lazy > 0 {
		pr.W.ctrLazy.Add(uint64(lazy))
	}
	pr.W.mu.Unlock()
	pr.statRelocs += relocs
	pr.statLazy += lazy
}

// enable restores access to a module's pages after linking.
func (pr *Proc) enable(in *Instance) error {
	in.lazy = false
	return pr.P.AS.Protect(in.Base, in.Size, addrspace.ProtRWX)
}

// filePatcher patches a public module through the shared file system, so
// the patched bytes land in the shared frames regardless of this process's
// page protections.
type filePatcher struct {
	fs   *shmfs.FS
	path string
	base uint32
	uid  int
}

// Patching goes through the file system's word-atomic accessors: a PLT
// slot or text word may be patched while a sibling CPU is executing
// through the very frame being written, and the host-atomic store means
// that CPU decodes the old word or the new word, never a torn mix.
func (fp *filePatcher) LoadWord(addr uint32) (uint32, error) {
	return fp.fs.LoadWordAt(fp.path, addr-fp.base, fp.uid)
}

func (fp *filePatcher) StoreWord(addr, val uint32) error {
	return fp.fs.StoreWordAt(fp.path, addr-fp.base, val, fp.uid)
}

// ---- image relocations -------------------------------------------------------

// resolveImageRelocs applies retained load-image relocations whose symbols
// are now resolvable (root scope). Others stay pending; a later LinkModule
// may satisfy them.
func (pr *Proc) resolveImageRelocs() error {
	if pr.suppressImage {
		// The launch is replaying a recorded "start" event, which subsumes
		// every image-relocation pass made while modules come in.
		return nil
	}
	sp := pr.W.tracer().Begin("ldl", "resolve_image", pr.P.PID, "")
	defer sp.End(uint64(len(pr.imagePend)))
	pat := pr.recordingPatcher(pr.P.AS, false)
	var left []objfile.ImageReloc
	for _, r := range pr.imagePend {
		addr, ok := pr.resolveScoped(pr.root, r.Name)
		if !ok {
			left = append(left, r)
			continue
		}
		if err := pr.applyImageReloc(pat, r, addr); err != nil {
			return err
		}
		pr.W.mu.Lock()
		pr.W.Stats.RelocsApplied++
		pr.W.ctrRelocs.Inc()
		pr.W.mu.Unlock()
		pr.statRelocs++
	}
	// Shrink the pending aggregate by the number of relocations this pass
	// applied. (ImageRelocsLeft used to be overwritten with len(left),
	// clobbering other processes' pending counts.)
	pr.W.addImageRelocs(len(left) - len(pr.imagePend))
	pr.imagePend = left
	return nil
}

// applyImageReloc patches one retained relocation in the running image
// through pat (the process address space, possibly wrapped for cache
// recording).
func (pr *Proc) applyImageReloc(pat linker.Patcher, r objfile.ImageReloc, symAddr uint32) error {
	target := symAddr + uint32(r.Addend)
	w, err := pat.LoadWord(r.Addr)
	if err != nil {
		return err
	}
	switch r.Type {
	case objfile.RelWord32:
		return pat.StoreWord(r.Addr, target)
	case objfile.RelHi16:
		return pat.StoreWord(r.Addr, isa.PatchImm16(w, isa.Hi16(target)))
	case objfile.RelLo16:
		return pat.StoreWord(r.Addr, isa.PatchImm16(w, isa.Lo16(target)))
	case objfile.RelJump26:
		if !isa.JumpReach(r.Addr, target) {
			tramp, err := pr.imageTrampoline(pat, target)
			if err != nil {
				return err
			}
			target = tramp
		}
		return pat.StoreWord(r.Addr, isa.PatchJump26(w, target))
	case objfile.RelBranch16:
		off, ok := isa.BranchOffset(r.Addr, target)
		if !ok {
			return fmt.Errorf("ldl: branch from 0x%08x to 0x%08x out of range", r.Addr, target)
		}
		return pat.StoreWord(r.Addr, isa.PatchImm16(w, off))
	}
	return fmt.Errorf("ldl: unsupported retained relocation %v", r.Type)
}

// imageTrampoline allocates a fragment in the image's reserved trampoline
// area.
func (pr *Proc) imageTrampoline(pat linker.Patcher, target uint32) (uint32, error) {
	if pr.trampNext+isa.TrampolineSize > pr.Image.TrampBase+pr.Image.TrampSize {
		return 0, ErrNoTrampoline
	}
	addr := pr.trampNext
	for i, w := range isa.TrampolineWords(target, false) {
		if err := pat.StoreWord(addr+uint32(i)*4, w); err != nil {
			return 0, err
		}
	}
	pr.trampNext += isa.TrampolineSize
	return addr, nil
}

// ---- the fault handler --------------------------------------------------------

// instanceAt finds the instance whose mapping covers addr.
func (pr *Proc) instanceAt(addr uint32) *Instance {
	for _, in := range pr.instances {
		if addr >= in.Base && addr < in.Base+in.Size {
			return in
		}
	}
	return nil
}

// HandleFault is the user-level SIGSEGV handler the Hemlock run-time
// library installs. It implements lazy linking and pointer-following, and
// chains to any program-provided handler (installed via SetUserHandler)
// when it cannot resolve the fault.
func (pr *Proc) HandleFault(p *kern.Process, f *addrspace.Fault) error {
	// A fault inside a module set up for lazy linking triggers the
	// dynamic linker.
	if in := pr.instanceAt(f.Addr); in != nil && in.lazy {
		return pr.LinkModule(in)
	}
	// A fault in the shared portion of the address space: translate the
	// address into a path name and, access rights permitting, map the
	// named segment.
	if layout.Public(f.Addr) && f.Unmapped {
		path, _, err := pr.W.K.FS.AddrToPath(f.Addr)
		if err != nil {
			return pr.chain(p, f)
		}
		if _, err := pr.W.K.MapSharedFile(p, path, 0, addrspace.ProtRWX); err != nil {
			return pr.chain(p, f)
		}
		pr.W.mu.Lock()
		pr.W.Stats.PointerMaps++
		pr.W.ctrPtrMaps.Inc()
		pr.W.mu.Unlock()
		pr.W.tracef("ldl: fault at 0x%08x mapped segment %s", f.Addr, path)
		pr.W.emit(obsv.Event{Name: "pointer_map", PID: p.PID, Mod: path, Addr: f.Addr})
		return nil
	}
	return pr.chain(p, f)
}

// chain invokes the program-provided SIGSEGV handler, if one exists: the
// compatibility path of the library's replacement signal() call.
func (pr *Proc) chain(p *kern.Process, f *addrspace.Fault) error {
	if pr.userHandler != nil {
		return pr.userHandler(p, f)
	}
	return kern.ErrUnhandled
}

// SetUserHandler is the library's new version of the standard signal call:
// the program's handler runs only when the dynamic linking system's
// handler is unable to resolve a fault.
func (pr *Proc) SetUserHandler(h kern.FaultHandler) { pr.userHandler = h }

// ---- queries -------------------------------------------------------------------

// Resolve finds a symbol the way the running program would: image symbols
// and the exports of every module brought in, root-scoped.
func (pr *Proc) Resolve(name string) (uint32, bool) {
	if addr, ok := pr.resolveScoped(pr.root, name); ok {
		return addr, ok
	}
	// Fall back to any loaded instance's exports (diagnostics).
	for _, in := range pr.instances {
		if addr, ok := in.placed.AddrOf(name); ok {
			if i := in.obj.SymbolIndex(name); i >= 0 && in.obj.Symbols[i].Global && in.obj.Symbols[i].Defined() {
				return addr, true
			}
		}
	}
	return 0, false
}

// Instances returns the modules brought into this process, in load order.
func (pr *Proc) Instances() []*Instance { return pr.instances }

// PendingImageRefs returns the names still unresolved in the main image.
func (pr *Proc) PendingImageRefs() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range pr.imagePend {
		if !seen[r.Name] {
			seen[r.Name] = true
			out = append(out, r.Name)
		}
	}
	return out
}
