package ldl_test

import (
	"bytes"
	"strings"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
)

// exitWithModuleVal loads a word exported by a dynamic module and exits
// with it: the exit code proves which template version the launch linked.
const exitWithModuleVal = `
        .text
        .globl  main
        .extern buf_val
main:   la      $t0, buf_val
        lw      $a0, 0($t0)
        li      $v0, 1
        syscall
`

func counters(s *core.System) map[string]uint64 {
	return s.Obs().R.Snapshot().Counters
}

func launchRun(t *testing.T, s *core.System, im *objfile.Image, env map[string]string) *core.Program {
	t.Helper()
	pg, err := s.Launch(im, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100000); err != nil {
		t.Fatal(err)
	}
	if !pg.P.Exited {
		t.Fatal("program did not exit")
	}
	return pg
}

func TestLinkCacheHitMissCounters(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/buf.o", ".data\n.globl buf_val\nbuf_val: .word 7\n")
	res := linkWith(t, s, exitWithModuleVal, lds.Input{Name: "buf.o", Class: objfile.DynamicPrivate})
	env := map[string]string{"LD_LIBRARY_PATH": "/lib"}

	pg := launchRun(t, s, res.Image, env)
	if pg.P.ExitCode != 7 {
		t.Fatalf("cold exit = %d, want 7", pg.P.ExitCode)
	}
	c := counters(s)
	if c["ldl.linkcache_miss"] != 1 || c["ldl.linkcache_hit"] != 0 {
		t.Fatalf("after cold launch: miss=%d hit=%d, want 1/0", c["ldl.linkcache_miss"], c["ldl.linkcache_hit"])
	}
	// The recording was persisted.
	if s.Obs().R.Snapshot().Gauges["ldl.linkcache_bytes"] <= 0 {
		t.Fatal("linkcache_bytes gauge not positive after a recorded launch")
	}

	pg2 := launchRun(t, s, res.Image, env)
	if pg2.P.ExitCode != 7 {
		t.Fatalf("warm exit = %d, want 7", pg2.P.ExitCode)
	}
	c = counters(s)
	if c["ldl.linkcache_hit"] == 0 {
		t.Fatal("second identical launch did not hit the cache")
	}
	if c["ldl.linkcache_miss"] != 1 {
		t.Fatalf("warm launch counted a miss: %d", c["ldl.linkcache_miss"])
	}
	// And it was satisfied by the zygote registry, not a fresh exec.
	if c["kern.zygote_clone"] != 1 {
		t.Fatalf("zygote clones = %d, want 1", c["kern.zygote_clone"])
	}
}

func TestLinkCacheInvalidateOnModuleMutation(t *testing.T) {
	// The acceptance test: modifying a module's bytes in place forces a
	// cold relink on the next launch — ldl.linkcache_invalidate increments
	// and the program's output changes to match the new template.
	s := core.NewSystem()
	s.Asm("/lib/buf.o", ".data\n.globl buf_val\nbuf_val: .word 5\n")
	res := linkWith(t, s, exitWithModuleVal, lds.Input{Name: "buf.o", Class: objfile.DynamicPrivate})
	env := map[string]string{"LD_LIBRARY_PATH": "/lib"}

	if pg := launchRun(t, s, res.Image, env); pg.P.ExitCode != 5 {
		t.Fatalf("cold exit = %d, want 5", pg.P.ExitCode)
	}
	if pg := launchRun(t, s, res.Image, env); pg.P.ExitCode != 5 {
		t.Fatalf("warm exit = %d, want 5", pg.P.ExitCode)
	}
	if c := counters(s); c["ldl.linkcache_invalidate"] != 0 {
		t.Fatalf("invalidations before mutation: %d", c["ldl.linkcache_invalidate"])
	}

	// Mutate the module template in place.
	if _, err := s.Asm("/lib/buf.o", ".data\n.globl buf_val\nbuf_val: .word 9\n"); err != nil {
		t.Fatal(err)
	}

	pg := launchRun(t, s, res.Image, env)
	if pg.P.ExitCode != 9 {
		t.Fatalf("post-mutation exit = %d, want 9 (stale cache replayed?)", pg.P.ExitCode)
	}
	c := counters(s)
	if c["ldl.linkcache_invalidate"] != 1 {
		t.Fatalf("invalidations = %d, want 1", c["ldl.linkcache_invalidate"])
	}
	if c["ldl.linkcache_miss"] != 2 {
		t.Fatalf("misses = %d, want 2 (initial + post-invalidation)", c["ldl.linkcache_miss"])
	}

	// The relink re-records: the NEXT launch is warm again, with the new
	// template's value.
	if pg := launchRun(t, s, res.Image, env); pg.P.ExitCode != 9 {
		t.Fatalf("re-warmed exit = %d, want 9", pg.P.ExitCode)
	}
	if c := counters(s); c["ldl.linkcache_invalidate"] != 1 {
		t.Fatalf("extra invalidation on re-warmed launch: %d", c["ldl.linkcache_invalidate"])
	}
}

func TestLinkCacheCorruptEntryFallsBackCold(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/buf.o", ".data\n.globl buf_val\nbuf_val: .word 3\n")
	res := linkWith(t, s, exitWithModuleVal, lds.Input{Name: "buf.o", Class: objfile.DynamicPrivate})
	env := map[string]string{"LD_LIBRARY_PATH": "/lib"}
	launchRun(t, s, res.Image, env)

	// Corrupt the recorded entry: flip bytes in the middle of the file.
	ents, err := s.FS.ReadDir("/var/ldl/cache")
	if err != nil || len(ents) == 0 {
		t.Fatalf("no cache entries recorded: %v", err)
	}
	path := "/var/ldl/cache/" + ents[0].Name
	if _, err := s.FS.WriteAt(path, 8, []byte{0xde, 0xad, 0xbe, 0xef}, 0); err != nil {
		t.Fatal(err)
	}

	pg := launchRun(t, s, res.Image, env)
	if pg.P.ExitCode != 3 {
		t.Fatalf("post-corruption exit = %d, want 3", pg.P.ExitCode)
	}
	c := counters(s)
	if c["ldl.linkcache_invalidate"] != 1 {
		t.Fatalf("corrupt entry not invalidated: %d", c["ldl.linkcache_invalidate"])
	}
	// The corrupt file was unlinked and a fresh recording took its place.
	if _, err := s.FS.StatPath(path); err != nil {
		t.Fatal("cache entry not re-recorded after corruption")
	}
	if pg := launchRun(t, s, res.Image, env); pg.P.ExitCode != 3 {
		t.Fatalf("re-warmed exit = %d", pg.P.ExitCode)
	}
}

func TestLinkCacheReplayAcrossWorldReset(t *testing.T) {
	// Cache entries live on the shared file system: they survive a "reboot"
	// (ResetWorld), so even the first launch of the new world replays — the
	// lazy-link event included.
	s := core.NewSystem()
	s.Asm("/lib/inner.o", ".data\n.globl inner_val\ninner_val: .word 31337\n")
	s.Asm("/lib/outer.o", `
        .dep    inner.o, dynamic-public
        .searchpath /lib
        .data
        .globl  outer_ptr
outer_ptr: .word inner_val
`)
	res := linkWith(t, s, trivialMain, lds.Input{Name: "outer.o", Class: objfile.DynamicPublic})
	env := map[string]string{"LD_LIBRARY_PATH": "/lib"}

	pg, err := s.Launch(res.Image, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	v, err := pg.Var("outer_ptr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Load(); err != nil { // faults: lazy-links outer, recorded
		t.Fatal(err)
	}
	if s.W.Stats.LazyLinks != 1 {
		t.Fatalf("cold lazy links = %d, want 1", s.W.Stats.LazyLinks)
	}

	s.ResetWorld()
	pg2, err := s.Launch(res.Image, 0, env)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := pg2.Var("outer_ptr")
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := v2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := pg2.VarAt("inner_val", ptr).Load(); got != 31337 {
		t.Fatalf("followed pointer to %d, want 31337", got)
	}
	// The new world replayed: stats credit the same work, and the probe hit.
	if s.W.Stats.LazyLinks != 1 {
		t.Fatalf("post-reset lazy links = %d, want 1", s.W.Stats.LazyLinks)
	}
	if c := counters(s); c["ldl.linkcache_hit"] == 0 {
		t.Fatal("post-reset launch missed the persistent cache")
	}
}

// TestLinkCacheReplayAcrossReboot is the stronger reboot: the whole file
// system is serialised to a disk image and booted on a fresh kernel, the
// way cmd/hemlock persists a world between invocations. Cache entries AND
// the fingerprints in their manifests must survive the round trip — the
// first launch on the rebooted machine replays instead of relinking, and
// in-place mutation on the rebooted machine still invalidates.
func TestLinkCacheReplayAcrossReboot(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/buf.o", ".data\n.globl buf_val\nbuf_val: .word 6\n")
	res := linkWith(t, s, exitWithModuleVal, lds.Input{Name: "buf.o", Class: objfile.DynamicPrivate})
	if err := s.SaveExecutable("/app/a.hemx", res.Image); err != nil {
		t.Fatal(err)
	}
	env := map[string]string{"LD_LIBRARY_PATH": "/lib"}
	if pg := launchRun(t, s, res.Image, env); pg.P.ExitCode != 6 {
		t.Fatalf("cold exit = %d, want 6", pg.P.ExitCode)
	}

	var img bytes.Buffer
	if err := s.Save(&img); err != nil {
		t.Fatal(err)
	}
	s2, err := core.Load(&img)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := s2.LoadExecutable("/app/a.hemx")
	if err != nil {
		t.Fatal(err)
	}
	if pg := launchRun(t, s2, im2, env); pg.P.ExitCode != 6 {
		t.Fatalf("post-reboot exit = %d, want 6", pg.P.ExitCode)
	}
	c := counters(s2)
	if c["ldl.linkcache_hit"] == 0 {
		t.Fatalf("first launch after reboot missed the persistent cache (miss=%d invalidate=%d)",
			c["ldl.linkcache_miss"], c["ldl.linkcache_invalidate"])
	}
	if c["ldl.linkcache_invalidate"] != 0 {
		t.Fatalf("reboot alone invalidated the cache: %d", c["ldl.linkcache_invalidate"])
	}

	// A real in-place mutation on the rebooted machine is still caught.
	if _, err := s2.Asm("/lib/buf.o", ".data\n.globl buf_val\nbuf_val: .word 8\n"); err != nil {
		t.Fatal(err)
	}
	if pg := launchRun(t, s2, im2, env); pg.P.ExitCode != 8 {
		t.Fatalf("post-mutation exit = %d, want 8 (stale cache replayed)", pg.P.ExitCode)
	}
	if c := counters(s2); c["ldl.linkcache_invalidate"] != 1 {
		t.Fatalf("invalidations after mutation = %d, want 1", c["ldl.linkcache_invalidate"])
	}
}

func TestLinkCacheWarmWorldMatchesColdWorld(t *testing.T) {
	// Two worlds, identical inputs: one with stable linking off, one with
	// it on (two launches each). Link stats, exit codes, and the public
	// instance bytes must be indistinguishable.
	build := func(s *core.System) (*lds.Result, map[string]string) {
		s.Asm("/lib/inner.o", ".data\n.globl inner_val\ninner_val: .word 77\n")
		s.Asm("/lib/outer.o", `
        .dep    inner.o, dynamic-public
        .searchpath /lib
        .data
        .globl  outer_ptr
outer_ptr: .word inner_val
        .globl  buf_val
buf_val: .word 11
`)
		res := linkWith(t, s, exitWithModuleVal, lds.Input{Name: "outer.o", Class: objfile.DynamicPublic})
		return res, map[string]string{"LD_LIBRARY_PATH": "/lib"}
	}

	cold := core.NewSystem()
	cold.SetStableLinking(false, false)
	warm := core.NewSystem()

	resC, envC := build(cold)
	resW, envW := build(warm)
	var codes [2][2]int
	for i := 0; i < 2; i++ {
		codes[0][i] = launchRun(t, cold, resC.Image, envC).P.ExitCode
		codes[1][i] = launchRun(t, warm, resW.Image, envW).P.ExitCode
	}
	if codes[0] != codes[1] {
		t.Fatalf("exit codes diverge: cold %v warm %v", codes[0], codes[1])
	}
	if cold.W.Stats != warm.W.Stats {
		t.Fatalf("stats diverge:\ncold %+v\nwarm %+v", cold.W.Stats, warm.W.Stats)
	}
	// Public instance bytes are bit-identical in both worlds.
	instC, err := cold.FS.ReadFile("/lib/outer", 0)
	if err != nil {
		t.Fatal(err)
	}
	instW, err := warm.FS.ReadFile("/lib/outer", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(instC) != string(instW) {
		t.Fatal("public instance bytes diverge between cold and warm worlds")
	}
	// The warm world's second launch really did skip linker work.
	if c := counters(warm); c["kern.zygote_clone"] != 1 {
		t.Fatalf("warm world zygote clones = %d, want 1", c["kern.zygote_clone"])
	}
}

func TestLinkCacheFilesStayOutOfModuleSlots(t *testing.T) {
	// Cache traffic must not perturb public address assignment: module
	// instances land in the same low slots with the cache on or off.
	slots := func(s *core.System) []int {
		s.Asm("/lib/db.o", ".data\n.globl db_count\ndb_count: .word 1\n")
		res := linkWith(t, s, trivialMain, lds.Input{Name: "db.o", Class: objfile.DynamicPublic})
		env := map[string]string{"LD_LIBRARY_PATH": "/lib"}
		launchRun(t, s, res.Image, env)
		var out []int
		s.FS.WalkFiles(func(p string, st shmfs.Stat) error {
			if !strings.HasPrefix(p, "/var/ldl/cache/") {
				out = append(out, st.Ino)
			}
			return nil
		})
		return out
	}
	off := core.NewSystem()
	off.SetStableLinking(false, false)
	on := core.NewSystem()
	a, b := slots(off), slots(on)
	if len(a) != len(b) {
		t.Fatalf("file counts diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d diverges: %d vs %d", i, a[i], b[i])
		}
	}
}
