// Stable linking: a persistent, content-addressed link cache.
//
// The key observation (ROADMAP: "launch O(1)") is that for a given program
// the linker does exactly the same work on every launch — the same modules
// come in, the same symbols resolve to the same public addresses, the same
// words get patched. The cache records that work once, keyed by a content
// hash over the whole module set (image bytes + search strategy + uid +
// environment), and replays it on repeat launches as a bulk application of
// pre-resolved patch words.
//
// Layout: one file per launch key under /var/ldl/cache/<key-hex>, holding a
// manifest of template fingerprints (shmfs.ContentVersion) plus a list of
// recorded events. An event is either "start" (the image-relocation work of
// Start, across every pass made while modules come in) or "link:<...>" (one
// lazy LinkModule). Replay applies the recorded stores, restores the
// bookkeeping (pending lists by index into the pre-event baseline,
// trampoline cursor, stat deltas) and falls back to cold linking whenever a
// guard detects that world state diverged from the recording.
//
// Invalidation: a probe re-fingerprints every template in the manifest; any
// mismatch (a module changed in place) unlinks the cache file, bumps
// ldl.linkcache_invalidate, and drops the zygote template registered under
// the same key — zygote validity IS cache-entry validity.
//
// Cache files are allocated from the top of the inode table (CreateTop):
// slot numbers determine public segment addresses, so cache traffic must
// not disturb the low-slot allocation sequence that a cache-less world
// would produce.
package ldl

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hemlock/internal/linker"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
)

// CacheDir is where link-cache entries live in the shared file system.
const CacheDir = "/var/ldl/cache"

// CacheMagic heads every encoded cache entry.
const CacheMagic = "HLC1"

const eventStart = "start"

var errCacheCorrupt = errors.New("ldl: corrupt link-cache entry")

// linkEventKey names the recorded event for linking one module instance.
// The base address is part of the key: private instances of the same
// template under different parents are distinct events.
func linkEventKey(in *Instance) string {
	return fmt.Sprintf("link:%s:%s:%08x", in.Class, in.Name, in.Base)
}

// ---- entry structure -------------------------------------------------------

type cacheDep struct {
	path string
	cv   uint64
}

type cacheStore struct {
	file bool   // patched through the shared file (public) vs the AS
	path string // instance path for file stores; "" for AS stores
	addr uint32 // file offset for file stores; virtual address otherwise
	val  uint32
}

// cacheEvent is one recorded unit of linker work. All fields are immutable
// once done is set; the entry lock guards visibility.
type cacheEvent struct {
	key    string
	stores []cacheStore

	pendBase int      // len of the module pending list at event begin (guard)
	pendKeep []uint32 // indices into that baseline that remain after

	imageBase int      // len of pr.imagePend at event begin (guard)
	imageKeep []uint32 // indices into that baseline that remain after

	trampStart uint32 // pr.trampNext at begin (replay-order guard)
	trampNext  uint32 // pr.trampNext after

	relocs int // delta to Stats.RelocsApplied
	lazy   int // delta to Stats.LazyLinks

	done bool
}

// cacheEntry is one launch key's recorded linker work. A cold process
// records into it while zygote clones may already be replaying from it, so
// the events map is guarded; events are only returned once complete.
type cacheEntry struct {
	key string

	mu          sync.Mutex
	deps        []cacheDep
	events      map[string]*cacheEvent
	order       []string
	startMapped int // instances mapped during Start (zygote stat credit)
	size        int // encoded size last written (gauge delta bookkeeping)
}

func newCacheEntry(key string) *cacheEntry {
	return &cacheEntry{key: key, events: map[string]*cacheEvent{}}
}

func (e *cacheEntry) get(key string) *cacheEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	ev := e.events[key]
	if ev == nil || !ev.done {
		return nil
	}
	return ev
}

func (e *cacheEntry) put(ev *cacheEvent) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.events[ev.key]; !dup {
		e.order = append(e.order, ev.key)
	}
	e.events[ev.key] = ev
}

// ---- launch key ------------------------------------------------------------

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

func fnvStr(h uint64, s string) uint64 {
	h = fnvU32(h, uint32(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return h
}

func fnvU32(h uint64, v uint32) uint64 {
	for s := 24; s >= 0; s -= 8 {
		h = (h ^ uint64(byte(v>>s))) * fnvPrime
	}
	return h
}

func fnvU64(h uint64, v uint64) uint64 {
	for s := 56; s >= 0; s -= 8 {
		h = (h ^ uint64(byte(v>>s))) * fnvPrime
	}
	return h
}

// imageHash fingerprints every field of the load image that influences
// linking. Memoized by image identity: decoded images are immutable, and
// launch benchmarks re-launch the same *Image thousands of times.
func (w *World) imageHash(im *objfile.Image) uint64 {
	w.cmu.Lock()
	if h, ok := w.keyMemo[im]; ok {
		w.cmu.Unlock()
		return h
	}
	w.cmu.Unlock()

	h := uint64(fnvOffset)
	h = fnvStr(h, im.Name)
	h = fnvU32(h, im.Entry)
	h = fnvU32(h, im.TextBase)
	h = fnvBytes(h, im.Text)
	h = fnvU32(h, im.DataBase)
	h = fnvBytes(h, im.Data)
	h = fnvU32(h, im.BssBase)
	h = fnvU32(h, im.BssSize)
	h = fnvU32(h, im.TrampBase)
	h = fnvU32(h, im.TrampSize)
	for _, s := range im.Symbols {
		h = fnvStr(h, s.Name)
		h = fnvU32(h, s.Addr)
		h = fnvU32(h, s.Size)
	}
	for _, r := range im.Relocs {
		h = fnvU32(h, r.Addr)
		h = fnvStr(h, r.Name)
		h = fnvU32(h, uint32(r.Type))
		h = fnvU32(h, uint32(r.Addend))
	}
	d := &im.Dyn
	for _, m := range d.DynModules {
		h = fnvStr(h, m.Name)
		h = fnvU32(h, uint32(m.Class))
	}
	for _, sp := range d.StaticPublic {
		h = fnvStr(h, sp.Name)
		h = fnvStr(h, sp.Path)
		h = fnvStr(h, sp.Template)
		h = fnvU32(h, sp.Addr)
	}
	h = fnvStr(h, d.LinkDir)
	for _, p := range d.CmdPath {
		h = fnvStr(h, p)
	}
	for _, p := range d.EnvPath {
		h = fnvStr(h, p)
	}
	for _, p := range d.DefaultPath {
		h = fnvStr(h, p)
	}
	for _, s := range im.PLT {
		h = fnvStr(h, s.Name)
		h = fnvU32(h, s.Addr)
		h = fnvU32(h, s.Size)
	}

	w.cmu.Lock()
	w.keyMemo[im] = h
	w.cmu.Unlock()
	return h
}

// LaunchKey derives the cache key for launching im as uid with env: the
// image content hash mixed with the launch identity, hex-encoded. Identical
// keys mean the linker would do identical work.
func (w *World) LaunchKey(im *objfile.Image, uid int, env map[string]string) string {
	h := w.imageHash(im)
	h = fnvU32(h, uint32(uid))
	if len(env) > 0 {
		keys := make([]string, 0, len(env))
		for k := range env {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h = fnvStr(h, k)
			h = fnvStr(h, env[k])
		}
	}
	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// CacheValid probes the persistent cache for key and reports whether a
// valid entry exists (counting a hit or miss, and invalidating a stale
// entry — and its zygote — as a side effect). Zygote validity IS cache
// validity: core checks this before cloning a template.
func (w *World) CacheValid(key string) bool {
	return w.probeCache(key) != nil
}

// CreditZygoteLaunch charges the linker work a zygote clone inherited from
// its template — modules mapped and relocations applied during Start — to
// the world stats, so metrics read identically in warm and cold worlds.
func (w *World) CreditZygoteLaunch(key string) {
	w.cmu.Lock()
	entry := w.entryMemo[key]
	w.cmu.Unlock()
	if entry == nil {
		return
	}
	entry.mu.Lock()
	mapped := entry.startMapped
	entry.mu.Unlock()
	var relocs, lazy int
	if ev := entry.get(eventStart); ev != nil {
		relocs, lazy = ev.relocs, ev.lazy
	}
	w.mu.Lock()
	w.Stats.ModulesMapped += mapped
	w.Stats.RelocsApplied += relocs
	w.Stats.LazyLinks += lazy
	w.mu.Unlock()
	w.ctrMapped.Add(uint64(mapped))
	w.ctrRelocs.Add(uint64(relocs))
	if lazy > 0 {
		w.ctrLazy.Add(uint64(lazy))
	}
}

// SetStableLinking flips the cache and zygote toggles. Zygote templates are
// keyed and validated by cache entries, so enabling zygotes enables the
// cache too.
func (w *World) SetStableLinking(cache, zygote bool) {
	if zygote {
		cache = true
	}
	w.CacheEnabled = cache
	w.ZygoteEnabled = zygote
}

// ---- probe / invalidate ----------------------------------------------------

func cachePath(key string) string { return CacheDir + "/" + key }

// probeCache looks the key up in the persistent cache and validates it.
// Returns the decoded entry on a hit; on any failure — no file, corrupt
// bytes, or a manifest fingerprint mismatch (a module changed in place) —
// it returns nil, invalidating a bad entry as a side effect.
func (w *World) probeCache(key string) *cacheEntry {
	path := cachePath(key)
	cv, err := w.K.FS.ContentVersion(path)
	if err != nil {
		// Never recorded: a plain miss.
		w.ctrCMiss.Inc()
		return nil
	}

	// The decoded-entry memo is gated by the cache file's own fingerprint:
	// if anything rewrote the bytes (including corruption), re-decode.
	w.cmu.Lock()
	entry, known := w.entryMemo[key]
	mcv := w.memoCV[key]
	w.cmu.Unlock()
	if !known || mcv != cv {
		data, rerr := w.K.FS.ReadFile(path, 0)
		if rerr != nil {
			w.invalidate(key)
			return nil
		}
		entry, rerr = decodeCache(data)
		if rerr != nil || entry.key != key {
			w.invalidate(key)
			return nil
		}
		entry.size = len(data)
		w.cmu.Lock()
		w.entryMemo[key] = entry
		w.memoCV[key] = cv
		w.cmu.Unlock()
	}

	// Manifest check: every template must fingerprint as recorded.
	entry.mu.Lock()
	deps := append([]cacheDep(nil), entry.deps...)
	entry.mu.Unlock()
	for _, d := range deps {
		cur, derr := w.K.FS.ContentVersion(d.path)
		if derr != nil || cur != d.cv {
			w.tracef("ldl: cache %s invalidated by %s", key, d.path)
			w.invalidate(key)
			return nil
		}
	}
	w.ctrCHit.Inc()
	return entry
}

// invalidate removes a cache entry — file, memo, gauge accounting — and
// drops the zygote template parked under the same key: a clone of a
// template whose recording is stale would replay stale patches.
func (w *World) invalidate(key string) {
	path := cachePath(key)
	if st, err := w.K.FS.StatPath(path); err == nil {
		w.gCacheBytes.Add(-int64(st.Size))
		w.K.FS.Unlink(path, 0)
	}
	w.cmu.Lock()
	delete(w.entryMemo, key)
	delete(w.memoCV, key)
	w.cmu.Unlock()
	w.K.DropZygote(key)
	w.ctrCInval.Inc()
}

// noteDep adds a template path to the manifest the recording process will
// persist. No-op unless this process is the recorder.
func (pr *Proc) noteDep(path string) {
	if pr.cdeps != nil {
		pr.cdeps[path] = true
	}
}

// ---- recording -------------------------------------------------------------

// openEvent is the in-flight recording state between beginEvent/endEvent.
type openEvent struct {
	ev        *cacheEvent
	basePend  []objfile.Reloc
	baseImage []objfile.ImageReloc
	relocs0   int
	lazy0     int
}

// beginEvent opens a recorded event. No-op unless this process is the cache
// recorder (events never nest: Start's event is the only one open while
// modules come in, and no guest code — hence no lazy link — runs then).
func (pr *Proc) beginEvent(key string, pending []objfile.Reloc) {
	if pr.crec == nil || pr.cev != nil {
		return
	}
	pr.cev = &openEvent{
		ev: &cacheEvent{
			key:        key,
			pendBase:   len(pending),
			imageBase:  len(pr.imagePend),
			trampStart: pr.trampNext,
		},
		basePend:  append([]objfile.Reloc(nil), pending...),
		baseImage: append([]objfile.ImageReloc(nil), pr.imagePend...),
		relocs0:   pr.statRelocs,
		lazy0:     pr.statLazy,
	}
}

// endEvent closes the open event, computes the post-state deltas, and
// writes the entry through to the cache file.
func (pr *Proc) endEvent(pendLeft []objfile.Reloc) {
	oe := pr.cev
	if oe == nil {
		return
	}
	pr.cev = nil
	ev := oe.ev

	keep, ok := relocKeep(oe.basePend, pendLeft)
	if !ok {
		return // baseline diverged mid-event; drop the recording
	}
	ev.pendKeep = keep
	ikeep, ok := imageKeep(oe.baseImage, pr.imagePend)
	if !ok {
		return
	}
	ev.imageKeep = ikeep
	ev.trampNext = pr.trampNext
	ev.relocs = pr.statRelocs - oe.relocs0
	ev.lazy = pr.statLazy - oe.lazy0
	ev.done = true

	if ev.key == eventStart {
		pr.crec.mu.Lock()
		pr.crec.startMapped = len(pr.instances)
		pr.crec.mu.Unlock()
	}
	pr.crec.put(ev)
	pr.writeCache()
}

// relocKeep maps the surviving pending list back to indices into the
// pre-event baseline. Resolution preserves order, so the survivors are a
// subsequence; two-pointer matching finds them.
func relocKeep(base, left []objfile.Reloc) ([]uint32, bool) {
	keep := make([]uint32, 0, len(left))
	j := 0
	for _, r := range left {
		for j < len(base) && base[j] != r {
			j++
		}
		if j == len(base) {
			return nil, false
		}
		keep = append(keep, uint32(j))
		j++
	}
	return keep, true
}

func imageKeep(base, left []objfile.ImageReloc) ([]uint32, bool) {
	keep := make([]uint32, 0, len(left))
	j := 0
	for _, r := range left {
		for j < len(base) && base[j] != r {
			j++
		}
		if j == len(base) {
			return nil, false
		}
		keep = append(keep, uint32(j))
		j++
	}
	return keep, true
}

// recordingPatcher wraps a patcher so every store lands in the open event
// as well. file=true marks stores that went through the shared file (and
// records which file). Pass-through when nothing is recording.
func (pr *Proc) recordingPatcher(pat linker.Patcher, file bool) linker.Patcher {
	if pr.cev == nil {
		return pat
	}
	rp := &recPatcher{pat: pat, pr: pr, file: file}
	if file {
		if fp, ok := pat.(*filePatcher); ok {
			rp.path = fp.path
			rp.base = fp.base
		}
	}
	return rp
}

type recPatcher struct {
	pat  linker.Patcher
	pr   *Proc
	file bool
	path string
	base uint32
}

func (rp *recPatcher) LoadWord(addr uint32) (uint32, error) { return rp.pat.LoadWord(addr) }

func (rp *recPatcher) StoreWord(addr, val uint32) error {
	if err := rp.pat.StoreWord(addr, val); err != nil {
		return err
	}
	if oe := rp.pr.cev; oe != nil {
		// File stores are recorded as (path, offset) so replay is
		// independent of where this process happened to map the segment.
		rec := addr
		if rp.file {
			rec = addr - rp.base
		}
		oe.ev.stores = append(oe.ev.stores, cacheStore{file: rp.file, path: rp.path, addr: rec, val: val})
	}
	return nil
}

// writeCache persists the recording entry. The file is top-allocated so
// cache traffic cannot disturb the low-slot inode sequence that determines
// public segment addresses. All cache-infrastructure I/O runs as uid 0.
func (pr *Proc) writeCache() {
	w := pr.W
	entry := pr.crec

	// Snapshot the manifest: every template this launch read, fingerprinted
	// now (post-link, so instance creation traffic is settled).
	var deps []cacheDep
	paths := make([]string, 0, len(pr.cdeps))
	for p := range pr.cdeps {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		cv, err := w.K.FS.ContentVersion(p)
		if err != nil {
			continue
		}
		deps = append(deps, cacheDep{path: p, cv: cv})
	}
	entry.mu.Lock()
	entry.deps = deps
	data := encodeCache(entry)
	oldSize := entry.size
	entry.size = len(data)
	entry.mu.Unlock()

	fs := w.K.FS
	path := cachePath(entry.key)
	if _, err := fs.StatPath(path); err != nil {
		if err := fs.MkdirAllTop(CacheDir, shmfs.DefaultDirMode, 0); err != nil {
			return
		}
		if _, err := fs.CreateTop(path, shmfs.DefaultFileMode, 0); err != nil {
			return
		}
	}
	if err := fs.WriteFile(path, data, shmfs.DefaultFileMode, 0); err != nil {
		return
	}
	w.gCacheBytes.Add(int64(len(data) - oldSize))

	// Refresh the memo so the next probe skips the decode.
	cv, err := fs.ContentVersion(path)
	if err != nil {
		return
	}
	w.cmu.Lock()
	w.entryMemo[entry.key] = entry
	w.memoCV[entry.key] = cv
	w.cmu.Unlock()
}

// ---- replay ----------------------------------------------------------------

// lookupEvent returns a completed recorded event from the entry this
// process replays from, or nil.
func (pr *Proc) lookupEvent(key string) *cacheEvent {
	if pr.centry == nil {
		return nil
	}
	return pr.centry.get(key)
}

// applyStores replays the recorded patch words. File stores compare before
// writing: rewriting identical bytes would bump the instance's frame
// versions and make later manifests look stale for no reason.
func (pr *Proc) applyStores(stores []cacheStore) error {
	fs := pr.W.K.FS
	for _, s := range stores {
		if s.file {
			var b [4]byte
			if _, err := fs.ReadAt(s.path, s.addr, b[:], 0); err == nil {
				cur := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
				if cur == s.val {
					continue
				}
			}
			b = [4]byte{byte(s.val >> 24), byte(s.val >> 16), byte(s.val >> 8), byte(s.val)}
			if _, err := fs.WriteAt(s.path, s.addr, b[:], 0); err != nil {
				return err
			}
		} else {
			if err := pr.P.AS.StoreWord(s.addr, s.val); err != nil {
				return err
			}
		}
	}
	return nil
}

// applyReplayStats credits the replayed work to the world counters exactly
// as the cold path would have, so warm and cold worlds agree on Stats.
func (pr *Proc) applyReplayStats(ev *cacheEvent) {
	pr.addLinkStats(ev.relocs, ev.lazy)
}

// replayStart replays the recorded "start" event: everything
// resolveImageRelocs did across the whole of Start, as one bulk patch.
// Returns false (cold fallback) if the world diverged from the recording.
func (pr *Proc) replayStart(ev *cacheEvent) (bool, error) {
	if len(pr.imagePend) != ev.imageBase || pr.trampNext > ev.trampStart {
		return false, nil
	}
	if err := pr.applyStores(ev.stores); err != nil {
		return false, err
	}
	left := make([]objfile.ImageReloc, 0, len(ev.imageKeep))
	for _, i := range ev.imageKeep {
		left = append(left, pr.imagePend[i])
	}
	pr.W.addImageRelocs(len(left) - len(pr.imagePend))
	pr.imagePend = left
	if ev.trampNext > pr.trampNext {
		pr.trampNext = ev.trampNext
	}
	pr.applyReplayStats(ev)
	pr.W.emit(obsv.Event{Name: "cache_replay", PID: pr.P.PID, Mod: eventStart, Val: uint64(len(ev.stores))})
	return true, nil
}

// replayLink replays one recorded LinkModule. Dependencies are still
// brought in for real (mapping and laziness must be genuine — a clone may
// fault them later), but resolution and patching collapse into the
// recorded stores.
func (pr *Proc) replayLink(in *Instance, ev *cacheEvent) (bool, error) {
	pending := pr.pendingOf(in)
	if len(pending) != ev.pendBase || len(pr.imagePend) != ev.imageBase {
		return false, nil
	}
	// Guard against out-of-order replay colliding with trampolines already
	// allocated: the event's trampoline range starts at its recorded cursor.
	if pr.trampNext > ev.trampStart {
		return false, nil
	}

	pr.suppressImage = true
	err := pr.loadDeps(in)
	pr.suppressImage = false
	if err != nil {
		return false, err
	}
	if err := pr.applyStores(ev.stores); err != nil {
		return false, err
	}

	left := make([]objfile.Reloc, 0, len(ev.pendKeep))
	for _, i := range ev.pendKeep {
		left = append(left, pending[i])
	}
	if in.sh != nil {
		in.sh.pending = left
		in.sh.linked.Store(len(left) == 0)
	} else {
		in.pending = left
		in.linked = len(left) == 0
	}

	ileft := make([]objfile.ImageReloc, 0, len(ev.imageKeep))
	for _, i := range ev.imageKeep {
		ileft = append(ileft, pr.imagePend[i])
	}
	pr.W.addImageRelocs(len(ileft) - len(pr.imagePend))
	pr.imagePend = ileft
	if ev.trampNext > pr.trampNext {
		pr.trampNext = ev.trampNext
	}
	pr.applyReplayStats(ev)
	pr.W.tracef("ldl: replayed link of %s (%d store(s))", in.Name, len(ev.stores))
	pr.W.emit(obsv.Event{Name: "cache_replay", PID: pr.P.PID, Mod: ev.key, Val: uint64(len(ev.stores))})
	return true, nil
}

// ---- codec -----------------------------------------------------------------

type cacheEnc struct{ b []byte }

func (e *cacheEnc) u8(v byte)    { e.b = append(e.b, v) }
func (e *cacheEnc) u16(v uint16) { e.b = append(e.b, byte(v>>8), byte(v)) }
func (e *cacheEnc) u32(v uint32) {
	e.b = append(e.b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
func (e *cacheEnc) u64(v uint64) {
	e.u32(uint32(v >> 32))
	e.u32(uint32(v))
}
func (e *cacheEnc) str(s string) {
	e.u16(uint16(len(s)))
	e.b = append(e.b, s...)
}

// encodeCache serialises an entry. Caller holds entry.mu.
func encodeCache(e *cacheEntry) []byte {
	enc := &cacheEnc{}
	enc.b = append(enc.b, CacheMagic...)
	enc.str(e.key)
	enc.u32(uint32(len(e.deps)))
	for _, d := range e.deps {
		enc.str(d.path)
		enc.u64(d.cv)
	}
	enc.u32(uint32(e.startMapped))
	var done []*cacheEvent
	for _, k := range e.order {
		if ev := e.events[k]; ev != nil && ev.done {
			done = append(done, ev)
		}
	}
	enc.u32(uint32(len(done)))
	for _, ev := range done {
		enc.str(ev.key)
		enc.u32(uint32(len(ev.stores)))
		for _, s := range ev.stores {
			kind := byte(0)
			if s.file {
				kind = 1
			}
			enc.u8(kind)
			enc.str(s.path)
			enc.u32(s.addr)
			enc.u32(s.val)
		}
		enc.u32(uint32(ev.pendBase))
		enc.u32(uint32(len(ev.pendKeep)))
		for _, i := range ev.pendKeep {
			enc.u32(i)
		}
		enc.u32(uint32(ev.imageBase))
		enc.u32(uint32(len(ev.imageKeep)))
		for _, i := range ev.imageKeep {
			enc.u32(i)
		}
		enc.u32(ev.trampStart)
		enc.u32(ev.trampNext)
		enc.u32(uint32(ev.relocs))
		enc.u32(uint32(ev.lazy))
	}
	return enc.b
}

type cacheDec struct {
	b   []byte
	off int
	err bool
}

func (d *cacheDec) u8() byte {
	if d.off+1 > len(d.b) {
		d.err = true
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *cacheDec) u16() uint16 {
	if d.off+2 > len(d.b) {
		d.err = true
		return 0
	}
	v := uint16(d.b[d.off])<<8 | uint16(d.b[d.off+1])
	d.off += 2
	return v
}
func (d *cacheDec) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.err = true
		return 0
	}
	v := uint32(d.b[d.off])<<24 | uint32(d.b[d.off+1])<<16 | uint32(d.b[d.off+2])<<8 | uint32(d.b[d.off+3])
	d.off += 4
	return v
}
func (d *cacheDec) u64() uint64 {
	hi := d.u32()
	lo := d.u32()
	return uint64(hi)<<32 | uint64(lo)
}
func (d *cacheDec) str() string {
	n := int(d.u16())
	if d.err || d.off+n > len(d.b) {
		d.err = true
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
func (d *cacheDec) count(max int) int {
	n := int(d.u32())
	if n < 0 || n > max {
		d.err = true
		return 0
	}
	return n
}

// decodeCache parses an encoded entry, rejecting anything malformed: a
// corrupt cache file must read as "no cache", never as wrong patches.
func decodeCache(data []byte) (*cacheEntry, error) {
	if len(data) < len(CacheMagic) || string(data[:len(CacheMagic)]) != CacheMagic {
		return nil, errCacheCorrupt
	}
	d := &cacheDec{b: data, off: len(CacheMagic)}
	e := newCacheEntry(d.str())
	nd := d.count(1 << 16)
	for i := 0; i < nd && !d.err; i++ {
		dep := cacheDep{path: d.str(), cv: d.u64()}
		e.deps = append(e.deps, dep)
	}
	e.startMapped = int(d.u32())
	ne := d.count(1 << 16)
	for i := 0; i < ne && !d.err; i++ {
		ev := &cacheEvent{key: d.str()}
		ns := d.count(1 << 22)
		for j := 0; j < ns && !d.err; j++ {
			s := cacheStore{file: d.u8() == 1, path: d.str(), addr: d.u32(), val: d.u32()}
			ev.stores = append(ev.stores, s)
		}
		ev.pendBase = int(d.u32())
		np := d.count(1 << 20)
		for j := 0; j < np && !d.err; j++ {
			ev.pendKeep = append(ev.pendKeep, d.u32())
		}
		ev.imageBase = int(d.u32())
		ni := d.count(1 << 20)
		for j := 0; j < ni && !d.err; j++ {
			ev.imageKeep = append(ev.imageKeep, d.u32())
		}
		ev.trampStart = d.u32()
		ev.trampNext = d.u32()
		ev.relocs = int(d.u32())
		ev.lazy = int(d.u32())
		// Indices must address the baselines they claim.
		for _, k := range ev.pendKeep {
			if int(k) >= ev.pendBase {
				d.err = true
			}
		}
		for _, k := range ev.imageKeep {
			if int(k) >= ev.imageBase {
				d.err = true
			}
		}
		if d.err {
			break
		}
		ev.done = true
		e.put(ev)
	}
	if d.err || d.off != len(data) {
		return nil, errCacheCorrupt
	}
	return e, nil
}

// ---- inspection (doctor) ----------------------------------------------------

// CacheDepInfo is one manifest line of a persisted cache entry: the module
// template it was recorded against and how the on-disk state compares now.
type CacheDepInfo struct {
	Path     string
	Recorded uint64 // content fingerprint at record time
	Current  uint64 // content fingerprint now (0 when missing)
	Missing  bool   // template no longer on disk (orphaned entry)
	Stale    bool   // template bytes changed since recording
}

// CacheEntryInfo describes one file under CacheDir for the doctor
// self-checks: either a decoded entry with its dependency manifest, or a
// corrupt one (Err != nil).
type CacheEntryInfo struct {
	Path string // cache file path
	Key  string // content-hash key (file name); decoded key must match
	Err  error  // non-nil: undecodable or mis-keyed (corrupt)
	Deps []CacheDepInfo
}

// InspectCache decodes every link-cache entry on fs without touching the
// cache itself: no invalidation, no counters — pure diagnosis for doctor.
func InspectCache(fs *shmfs.FS) []CacheEntryInfo {
	ents, err := fs.ReadDir(CacheDir)
	if err != nil {
		return nil // no cache directory: nothing to inspect
	}
	var out []CacheEntryInfo
	for _, de := range ents {
		if de.Type == shmfs.TypeDir {
			continue
		}
		info := CacheEntryInfo{Path: CacheDir + "/" + de.Name, Key: de.Name}
		data, rerr := fs.ReadFile(info.Path, 0)
		if rerr != nil {
			info.Err = rerr
			out = append(out, info)
			continue
		}
		entry, derr := decodeCache(data)
		switch {
		case derr != nil:
			info.Err = derr
		case entry.key != de.Name:
			info.Err = fmt.Errorf("ldl: cache entry keyed %q stored as %q", entry.key, de.Name)
		default:
			for _, d := range entry.deps {
				di := CacheDepInfo{Path: d.path, Recorded: d.cv}
				cur, cerr := fs.ContentVersion(d.path)
				if cerr != nil {
					di.Missing = true
				} else {
					di.Current = cur
					di.Stale = cur != d.cv
				}
				info.Deps = append(info.Deps, di)
			}
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
