package ldl_test

import (
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/kern"
	"hemlock/internal/ldl"
)

// Compile-time check: ldl.Proc backs the link_module/sym_addr syscalls.
var _ kern.ModuleLinker = (*ldl.Proc)(nil)

// TestDlopenFromVM: a program loads a module by name at run time and reads
// a symbol from it — the dld workflow, but scoped, lazy, and able to feed
// the main image's retained references.
func TestDlopenFromVM(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/plugins/stats.o", `
        .data
        .globl  stats_answer
stats_answer: .word 4242
`)
	res := linkWith(t, s, `
        .text
        .globl  main
main:
        addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        # link_module("/plugins/stats.o", public=1)
        li      $v0, 15
        la      $a0, modname
        li      $a1, 1
        syscall
        bnez    $v1, fail
        # sym_addr("stats_answer")
        li      $v0, 16
        la      $a0, symname
        syscall
        bnez    $v1, fail
        lw      $v0, 0($v0)
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
fail:
        li      $v0, 255
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
        .data
modname: .asciiz "/plugins/stats.o"
symname: .asciiz "stats_answer"
`)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// exit code is the low byte of 4242 (= 4242 & 0xFF ... exit takes the
	// full int in the simulation, so the value survives whole).
	if pg.P.ExitCode != 4242 {
		t.Fatalf("exit = %d, want 4242", pg.P.ExitCode)
	}
}

func TestDlopenMissingModuleErrno(t *testing.T) {
	s := core.NewSystem()
	res := linkWith(t, s, `
        .text
        .globl  main
main:
        li      $v0, 15
        la      $a0, modname
        li      $a1, 1
        syscall
        move    $v0, $v1        # exit(errno)
        jr      $ra
        .data
modname: .asciiz "/plugins/ghost.o"
`)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode == 0 {
		t.Fatal("missing module load reported success")
	}
}

func TestDlsymUndefined(t *testing.T) {
	s := core.NewSystem()
	res := linkWith(t, s, `
        .text
        .globl  main
main:
        li      $v0, 16
        la      $a0, symname
        syscall
        move    $v0, $v1
        jr      $ra
        .data
symname: .asciiz "no_such_symbol"
`)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if pg.P.ExitCode == 0 {
		t.Fatal("undefined dlsym reported success")
	}
}

// TestDlopenHosted drives the same interface from the host side.
func TestDlopenHosted(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/plugins/extra.o", ".data\n.globl extra_v\nextra_v: .word 5\n")
	res := linkWith(t, s, trivialMain)
	pg, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := pg.LDL.LinkByPath("/plugins/extra.o", true)
	if err != nil {
		t.Fatal(err)
	}
	if base == 0 {
		t.Fatal("no base address")
	}
	addr, ok := pg.LDL.SymbolAddr("extra_v")
	if !ok || addr < base {
		t.Fatalf("extra_v at 0x%x (module base 0x%x)", addr, base)
	}
	// Loading the same public module again is idempotent.
	base2, err := pg.LDL.LinkByPath("/plugins/extra.o", true)
	if err != nil || base2 != base {
		t.Fatalf("second load: 0x%x, %v", base2, err)
	}
}
