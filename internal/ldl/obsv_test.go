package ldl_test

import (
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/obsv"
)

// TestRegistryMirrorsStats drives the full lazy-linking machinery — module
// creation, lazy mapping, first-touch linking, pointer-following — and
// asserts the registry counters and the Stats struct agree field by field,
// as the Stats doc promises.
func TestRegistryMirrorsStats(t *testing.T) {
	s := core.NewSystem()
	ring := obsv.NewRing(1024)
	s.Obs().T.Attach(ring)
	s.Asm("/lib/inner.o", `
        .data
        .globl  inner_val
inner_val: .word 31337
`)
	s.Asm("/lib/outer.o", `
        .dep    inner.o, dynamic-public
        .searchpath /lib
        .data
        .globl  outer_ptr
outer_ptr: .word inner_val
`)
	res := linkWith(t, s, trivialMain, lds.Input{Name: "outer.o", Class: objfile.DynamicPublic})
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	// Touch outer_ptr: lazy-links outer.o, bringing in inner.o; then follow
	// the pointer it holds.
	v, err := pg.Var("outer_ptr")
	if err != nil {
		t.Fatal(err)
	}
	inner, err := v.Follow(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := inner.Load(); got != 31337 {
		t.Fatalf("inner_val via pointer = %d", got)
	}

	st := s.W.Stats
	snap := s.Obs().R.Snapshot()
	for _, c := range []struct {
		name string
		stat int
	}{
		{"ldl.modules_mapped", st.ModulesMapped},
		{"ldl.modules_created", st.ModulesCreated},
		{"ldl.lazy_links", st.LazyLinks},
		{"ldl.relocs_applied", st.RelocsApplied},
		{"ldl.pointer_maps", st.PointerMaps},
		{"ldl.plt_resolves", st.PLTResolves},
	} {
		if got := snap.Counters[c.name]; got != uint64(c.stat) {
			t.Errorf("%s = %d, Stats says %d", c.name, got, c.stat)
		}
	}
	if got := snap.Gauges["ldl.image_relocs_left"]; got != int64(st.ImageRelocsLeft) {
		t.Errorf("ldl.image_relocs_left = %d, Stats says %d", got, st.ImageRelocsLeft)
	}
	if st.ModulesMapped == 0 || st.LazyLinks == 0 {
		t.Fatalf("workload did not exercise the linker: %+v", st)
	}

	// The trace carries the same story as typed ldl events.
	names := map[string]bool{}
	for _, e := range ring.Events() {
		if e.Subsys == "ldl" {
			names[e.Name] = true
		}
	}
	for _, want := range []string{"map_public", "lazy_link"} {
		if !names[want] {
			t.Errorf("no %q event; ldl events seen: %v", want, names)
		}
	}
}

// TestImageRelocsLeftAggregatesAcrossProcesses pins the repaired semantics:
// the counter is the total of pending retained relocations across every
// process started, not whatever the most recent process happened to have.
func TestImageRelocsLeftAggregatesAcrossProcesses(t *testing.T) {
	s := core.NewSystem()
	// main references a symbol nothing defines: lds retains the relocs and
	// ldl leaves them pending forever.
	res := linkWith(t, s, `
        .text
        .globl  main
        .extern ghost
main:   la      $t0, ghost
        li      $v0, 0
        jr      $ra
`)
	p1, err := s.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	per := len(p1.LDL.PendingImageRefs())
	if per == 0 {
		t.Fatal("test image has no pending refs")
	}
	one := s.W.Stats.ImageRelocsLeft
	if one == 0 {
		t.Fatal("ImageRelocsLeft = 0 after launching a program with pending refs")
	}
	if _, err := s.Launch(res.Image, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.W.Stats.ImageRelocsLeft; got != 2*one {
		t.Fatalf("ImageRelocsLeft = %d after two launches, want %d (the old code overwrote the aggregate)", got, 2*one)
	}
	// A forked child carries its own copies of the pending relocations.
	if _, err := p1.Fork(); err != nil {
		t.Fatal(err)
	}
	if got := s.W.Stats.ImageRelocsLeft; got != 3*one {
		t.Fatalf("ImageRelocsLeft = %d after fork, want %d", got, 3*one)
	}
	if g := s.Obs().R.Snapshot().Gauges["ldl.image_relocs_left"]; g != int64(3*one) {
		t.Fatalf("gauge = %d, want %d", g, 3*one)
	}
}

// TestImageRelocsLeftDropsWhenResolved checks the other direction: when a
// later module brings the missing symbol, resolution shrinks the aggregate
// instead of clobbering it.
func TestImageRelocsLeftDropsWhenResolved(t *testing.T) {
	s := core.NewSystem()
	s.Asm("/lib/late.o", `
        .data
        .globl  late_val
late_val: .word 9
`)
	res := linkWith(t, s, `
        .text
        .globl  main
        .extern late_val
main:   la      $t0, late_val
        lw      $v0, 0($t0)
        jr      $ra
`)
	pg, err := s.Launch(res.Image, 0, map[string]string{"LD_LIBRARY_PATH": "/lib"})
	if err != nil {
		t.Fatal(err)
	}
	before := s.W.Stats.ImageRelocsLeft
	if before == 0 {
		t.Fatal("no pending refs before the module is brought in")
	}
	// Bring in the module that defines late_val; BringIn re-resolves the
	// image's retained relocations.
	if _, err := pg.LDL.BringIn(objfile.ModuleRef{Name: "late.o", Class: objfile.DynamicPublic}, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.W.Stats.ImageRelocsLeft; got != 0 {
		t.Fatalf("ImageRelocsLeft = %d after resolution, want 0", got)
	}
	if g := s.Obs().R.Snapshot().Gauges["ldl.image_relocs_left"]; g != 0 {
		t.Fatalf("gauge = %d after resolution, want 0", g)
	}
}
