package ldl

// Jump-table (PLT) lazy linking: the SunOS-style optimisation the paper
// plans to adopt — "modules first accessed by calling a (named) function
// will be linked without fault-handling overhead".
//
// lds routes calls to unknown functions through stubs in the image. A stub
// is a BREAK instruction followed by its index; the first call traps here,
// the target is resolved with the usual root scoping, and the stub is
// patched into a direct trampoline (lui/ori/jr $at), so later calls pay
// three extra instructions and no traps at all. Unlike the fault-driven
// path, no page protections are flipped and the caller's argument
// registers are untouched — $at is the only register the mechanism uses,
// and it is reserved for exactly this.

import (
	"fmt"

	"hemlock/internal/isa"
	"hemlock/internal/kern"
	"hemlock/internal/obsv"
)

// ErrUndefinedCall is returned when a PLT stub fires for a symbol nothing
// defines: the deferred error the paper accepts as the price of not
// insisting that dynamically-linked modules exist at static link time.
type ErrUndefinedCall struct {
	Name string
	Stub uint32
}

func (e *ErrUndefinedCall) Error() string {
	return fmt.Sprintf("ldl: call to undefined function %q (stub 0x%08x)", e.Name, e.Stub)
}

// installPLT registers the break handler when the image carries stubs.
func (pr *Proc) installPLT() {
	if len(pr.Image.PLT) == 0 {
		return
	}
	sp := pr.W.tracer().Begin("ldl", "plt_setup", pr.P.PID, pr.Image.Name)
	pr.plt = map[uint32]string{}
	for _, s := range pr.Image.PLT {
		pr.plt[s.Addr] = s.Name
	}
	pr.P.BreakHandler = pr.handleBreak
	sp.End(uint64(len(pr.Image.PLT)))
}

// handleBreak resolves the stub whose BREAK just trapped. The CPU has
// advanced PC past the break, so the stub base is PC-4.
func (pr *Proc) handleBreak(p *kern.Process) error {
	stub := p.CPU.PC - 4
	name, ok := pr.plt[stub]
	if !ok {
		return fmt.Errorf("ldl: break at 0x%08x is not a jump-table stub", p.CPU.PC)
	}
	target, found := pr.resolveScoped(pr.root, name)
	if !found {
		return &ErrUndefinedCall{Name: name, Stub: stub}
	}
	// Patch the stub into a direct trampoline and restart it. The stub's
	// 12 bytes hold exactly the lui/ori/jr fragment.
	for i, w := range isa.TrampolineWords(target, false) {
		if err := p.AS.StoreWord(stub+uint32(4*i), w); err != nil {
			return err
		}
	}
	p.CPU.PC = stub
	pr.W.mu.Lock()
	pr.W.Stats.PLTResolves++
	pr.W.ctrPLT.Inc()
	pr.W.mu.Unlock()
	pr.W.tracef("ldl: jump-table stub 0x%08x resolved %s -> 0x%08x", stub, name, target)
	pr.W.emit(obsv.Event{Name: "plt_resolve", PID: p.PID, Mod: name, Addr: stub, Val: uint64(target)})
	return nil
}
