// Package presto reproduces the paper's parallel-application case study.
//
// Porting the Presto runtime to IRIX required globals that are shared
// between the processes of a parallel application. Without compiler
// support, the Rochester group first wrote a post-processor that edited
// the compiler's assembly output to move shared variables into shared
// segments — 432 lines, consuming a quarter to a third of total
// compilation time, and fragile across compiler releases. With Hemlock,
// shared variables are simply grouped in a separate file and linked as a
// dynamic public module:
//
//   - the parent process (set-up only, does no application work and does
//     NOT link the shared data file) creates a temporary directory, puts a
//     symbolic link to the shared data template into it, and prepends the
//     directory to LD_LIBRARY_PATH;
//   - the children specify the shared data as a dynamic public module; the
//     first one to run ldl creates and initialises the segment from the
//     template (under file locking), and all of them link it in;
//   - on completion the parent deletes the segment, symlink and directory.
//
// Both paths are implemented here: PostProcess is a working re-creation of
// the assembly-editing baseline (for our assembler), and App is the
// Hemlock version.
package presto

import (
	"fmt"
	"strings"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
)

// ---- the post-processor baseline ------------------------------------------------

// PostProcess re-creates the assembly post-processor: it scans compiler
// (assembler) output for the definitions of the named shared variables,
// removes them from the program source, and emits a second source file
// containing just those definitions, leaving .extern declarations behind.
// The returned pair must then both be assembled — the extra pass whose
// cost the paper measured at 1/4 to 1/3 of total compilation time.
func PostProcess(src string, shared []string) (progSrc, sharedSrc string, err error) {
	want := map[string]bool{}
	for _, s := range shared {
		want[s] = true
	}
	var prog, shd strings.Builder
	shd.WriteString("        .data\n")
	lines := strings.Split(src, "\n")
	inData := false
	moved := map[string]bool{}
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		trimmed := strings.TrimSpace(stripComment(line))
		switch {
		case trimmed == ".data":
			inData = true
		case trimmed == ".text":
			inData = false
		}
		label, rest := splitLabel(trimmed)
		if inData && label != "" && want[label] {
			// Move the label's definition lines (until the next label or
			// directive section change) to the shared file.
			shd.WriteString("        .globl  " + label + "\n")
			shd.WriteString(label + ":\n")
			if rest != "" {
				shd.WriteString("        " + rest + "\n")
			}
			for i+1 < len(lines) {
				nxt := strings.TrimSpace(stripComment(lines[i+1]))
				nl, _ := splitLabel(nxt)
				if nl != "" || nxt == ".text" || nxt == ".data" || strings.HasPrefix(nxt, ".globl") {
					break
				}
				if nxt != "" {
					shd.WriteString("        " + nxt + "\n")
				}
				i++
			}
			prog.WriteString("        .extern " + label + "\n")
			moved[label] = true
			continue
		}
		prog.WriteString(line + "\n")
	}
	for _, s := range shared {
		if !moved[s] {
			return "", "", fmt.Errorf("presto: shared variable %q not found in assembly", s)
		}
	}
	return prog.String(), shd.String(), nil
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		return line[:i]
	}
	return line
}

func splitLabel(trimmed string) (label, rest string) {
	i := strings.IndexByte(trimmed, ':')
	if i <= 0 {
		return "", trimmed
	}
	return strings.TrimSpace(trimmed[:i]), strings.TrimSpace(trimmed[i+1:])
}

// ---- the Hemlock version ----------------------------------------------------------

// App is one parallel application run set up the Hemlock way.
type App struct {
	Sys      *core.System
	ID       string
	TempDir  string
	template string // template path inside the temp dir (a symlink)
	Image    *objfile.Image
	Env      map[string]string
	workers  []*core.Program
}

// SharedTemplateSource returns the assembly for a shared-globals module
// with a per-worker counter array and a done flag.
func SharedTemplateSource(maxWorkers int) string {
	return fmt.Sprintf(`
        .data
        .globl  presto_nworkers
presto_nworkers:
        .word   %d
        .globl  presto_counters
presto_counters:
        .space  %d
        .globl  presto_done
presto_done:
        .word   0
`, maxWorkers, 4*maxWorkers)
}

// Setup is the parent's role: install templates, create the temporary
// directory, symlink the shared-data template into it, extend
// LD_LIBRARY_PATH, and link the worker image. The parent itself never
// links the shared module.
func Setup(s *core.System, id string, maxWorkers int) (*App, error) {
	return SetupCompute(s, id, maxWorkers, `
        .text
        .globl  main
main:   li      $v0, 0
        jr      $ra
`)
}

// SetupCompute is Setup with a caller-supplied worker main: the parallel
// speed-up benchmark plants a compute kernel in each child, the default
// Setup a trivial one. The worker links the shared-data template as a
// dynamic public module either way.
func SetupCompute(s *core.System, id string, maxWorkers int, workerSrc string) (*App, error) {
	app := &App{Sys: s, ID: id, Env: map[string]string{}}
	tmplPath := "/lib/presto-shared.o"
	if _, err := s.FS.StatPath(tmplPath); err != nil {
		if _, err := s.Asm(tmplPath, SharedTemplateSource(maxWorkers)); err != nil {
			return nil, err
		}
	}
	app.TempDir = "/tmp/presto." + id
	if err := s.FS.MkdirAll(app.TempDir, shmfs.DefaultDirMode, 0); err != nil {
		return nil, err
	}
	app.template = app.TempDir + "/presto-shared.o"
	if err := s.FS.Symlink(tmplPath, app.template, 0); err != nil {
		return nil, err
	}
	app.Env["LD_LIBRARY_PATH"] = app.TempDir

	if _, err := s.Asm("/bin/presto-worker.o", workerSrc); err != nil {
		return nil, err
	}
	res, err := s.Link(&lds.Options{
		Output: "presto-worker",
		Modules: []lds.Input{
			{Name: "presto-worker.o", Class: objfile.StaticPrivate},
			// The children specify the shared data as a dynamic public
			// module, found at run time via LD_LIBRARY_PATH.
			{Name: "presto-shared.o", Class: objfile.DynamicPublic},
		},
		LinkDir: "/bin",
	})
	if err != nil {
		return nil, err
	}
	app.Image = res.Image
	return app, nil
}

// Worker is one child of the parallel application.
type Worker struct {
	Index    int
	Program  *core.Program
	counters *core.Var
}

// StartWorker launches child i. The first child's ldl creates and
// initialises the shared segment from the symlinked template; the rest
// link the existing one.
func (a *App) StartWorker(i int) (*Worker, error) {
	pg, err := a.Sys.Launch(a.Image, 0, a.Env)
	if err != nil {
		return nil, err
	}
	ctr, err := pg.Var("presto_counters")
	if err != nil {
		return nil, err
	}
	w := &Worker{Index: i, Program: pg, counters: ctr}
	a.workers = append(a.workers, pg)
	return w, nil
}

// Add accumulates into the worker's shared counter slot: a shared-variable
// write with ordinary store syntax.
func (w *Worker) Add(delta uint32) error {
	cur, err := w.counters.LoadAt(uint32(w.Index) * 4)
	if err != nil {
		return err
	}
	return w.counters.StoreAt(uint32(w.Index)*4, cur+delta)
}

// Value reads the worker's own counter.
func (w *Worker) Value() (uint32, error) {
	return w.counters.LoadAt(uint32(w.Index) * 4)
}

// Sum reads every worker's counter through any worker's mapping.
func (w *Worker) Sum(n int) (uint32, error) {
	var total uint32
	for i := 0; i < n; i++ {
		v, err := w.counters.LoadAt(uint32(i) * 4)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total, nil
}

// SharedSegmentPath returns the path of the segment the first worker
// created.
func (a *App) SharedSegmentPath() string {
	return lds.InstancePath(a.template)
}

// Cleanup is the parent's final role: delete the shared segment, the
// template symlink, and the temporary directory.
func (a *App) Cleanup() error {
	seg := a.SharedSegmentPath()
	if _, err := a.Sys.FS.StatPath(seg); err == nil {
		if err := a.Sys.FS.Unlink(seg, 0); err != nil {
			return err
		}
	}
	if err := a.Sys.FS.Unlink(a.template, 0); err != nil {
		return err
	}
	return a.Sys.FS.Rmdir(a.TempDir, 0)
}
