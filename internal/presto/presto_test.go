package presto

import (
	"strings"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/isa"
)

func TestPostProcessSplitsSharedVariables(t *testing.T) {
	src := `
        .text
        .globl  main
main:   la      $t0, shared_sum
        lw      $t1, 0($t0)
        jr      $ra
        .data
private_buf:
        .space  16
shared_sum:
        .word   0
shared_arr:
        .word   1, 2, 3
        .word   4
tail_private:
        .word   9
`
	prog, shd, err := PostProcess(src, []string{"shared_sum", "shared_arr"})
	if err != nil {
		t.Fatal(err)
	}
	// The program source lost the definitions but gained externs.
	if strings.Contains(prog, "shared_sum:") || strings.Contains(prog, "shared_arr:") {
		t.Fatal("shared definitions left in program source")
	}
	if !strings.Contains(prog, ".extern shared_sum") {
		t.Fatal("missing extern declaration")
	}
	if !strings.Contains(prog, "private_buf:") || !strings.Contains(prog, "tail_private:") {
		t.Fatal("private definitions lost")
	}
	// Both halves must assemble, and the shared half exports the moved
	// variables.
	po, err := isa.Assemble("prog.s", prog)
	if err != nil {
		t.Fatalf("program half does not assemble: %v", err)
	}
	so, err := isa.Assemble("shared.s", shd)
	if err != nil {
		t.Fatalf("shared half does not assemble: %v", err)
	}
	if len(so.Exports()) != 2 {
		t.Fatalf("shared exports = %v", so.Exports())
	}
	if got := po.Undefined(); len(got) != 2 {
		t.Fatalf("program undefined = %v", got)
	}
	// The multi-line array definition moved whole: 4+4*4 = 20 data bytes
	// plus alignment.
	if so.SectionSize(2) < 20 { // SecData
		t.Fatalf("shared data only %d bytes", so.SectionSize(2))
	}
}

func TestPostProcessMissingVariable(t *testing.T) {
	if _, _, err := PostProcess(".data\nx: .word 1\n", []string{"ghost"}); err == nil {
		t.Fatal("missing shared variable accepted")
	}
}

func TestParallelAppSharedCounters(t *testing.T) {
	s := core.NewSystem()
	app, err := Setup(s, "42", 8)
	if err != nil {
		t.Fatal(err)
	}
	const P = 4
	var workers []*Worker
	for i := 0; i < P; i++ {
		w, err := app.StartWorker(i)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers = append(workers, w)
	}
	// The first worker created the segment inside the temp dir.
	if _, err := s.FS.StatPath(app.SharedSegmentPath()); err != nil {
		t.Fatalf("shared segment missing: %v", err)
	}
	// Each worker accumulates into its own slot.
	for round := 0; round < 10; round++ {
		for _, w := range workers {
			if err := w.Add(uint32(w.Index + 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Any worker sees everyone's work: 10*(1+2+3+4) = 100.
	sum, err := workers[0].Sum(P)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 100 {
		t.Fatalf("sum = %d, want 100", sum)
	}
	// Cleanup removes segment, symlink and directory.
	if err := app.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FS.StatPath(app.TempDir); err == nil {
		t.Fatal("temp dir survived cleanup")
	}
}

func TestTwoAppsGetDistinctSegments(t *testing.T) {
	// Two application instances use different temp dirs, so their shared
	// segments are distinct even though they come from one template.
	s := core.NewSystem()
	a1, err := Setup(s, "1", 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Setup(s, "2", 4)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := a1.StartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := a2.StartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	w1.Add(7)
	v2, err := w2.Value()
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 0 {
		t.Fatalf("app 2 sees app 1's counter: %d", v2)
	}
	if a1.SharedSegmentPath() == a2.SharedSegmentPath() {
		t.Fatal("apps share a segment path")
	}
}

func TestLateWorkerSeesEarlierWrites(t *testing.T) {
	s := core.NewSystem()
	app, err := Setup(s, "9", 4)
	if err != nil {
		t.Fatal(err)
	}
	w0, err := app.StartWorker(0)
	if err != nil {
		t.Fatal(err)
	}
	w0.Add(99)
	// A worker that joins later links the already-created segment and
	// sees the accumulated state.
	w1, err := app.StartWorker(1)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := w1.Sum(2)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 99 {
		t.Fatalf("late worker sees sum %d, want 99", sum)
	}
}
