package edbuf

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/mem"
)

const (
	segBase uint32 = 0x30500000
	segSize uint32 = 256 * 1024
)

func newBuf(t *testing.T) (*Buffer, *addrspace.Space) {
	t.Helper()
	as := addrspace.New(mem.NewPhysical(0))
	if err := as.MapAnon(segBase, segSize, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	b, err := Create(as, segBase, segSize)
	if err != nil {
		t.Fatal(err)
	}
	return b, as
}

func TestAppendAndLines(t *testing.T) {
	b, _ := newBuf(t)
	want := []string{"first line", "second", "", "fourth with trailing spaces   "}
	for _, l := range want {
		if err := b.Append(l); err != nil {
			t.Fatal(err)
		}
	}
	got, err := b.Lines()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("lines = %q", got)
	}
	if n, _ := b.Len(); n != 4 {
		t.Fatalf("len = %d", n)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertAtEveryPosition(t *testing.T) {
	b, _ := newBuf(t)
	b.Append("b")
	b.Insert(0, "a") // head
	b.Insert(2, "d") // tail
	b.Insert(2, "c") // middle
	got, _ := b.Lines()
	if !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("lines = %q", got)
	}
	if err := b.Insert(9, "x"); !errors.Is(err, ErrRange) {
		t.Fatalf("out-of-range insert: %v", err)
	}
}

func TestDeleteRelinks(t *testing.T) {
	b, _ := newBuf(t)
	for _, l := range []string{"a", "b", "c", "d"} {
		b.Append(l)
	}
	b.Delete(1) // middle
	b.Delete(0) // head
	b.Delete(1) // tail (now "d")
	got, _ := b.Lines()
	if !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("lines = %q", got)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	b.Delete(0)
	if n, _ := b.Len(); n != 0 {
		t.Fatalf("len = %d after deleting all", n)
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(0); !errors.Is(err, ErrRange) {
		t.Fatalf("delete from empty: %v", err)
	}
}

func TestSetLineChangesSize(t *testing.T) {
	// "it will be much more useful if it is able to change the size of
	// the text": replacing a line with a much longer one just works.
	b, _ := newBuf(t)
	b.Append("short")
	long := strings.Repeat("x", 2000)
	if err := b.SetLine(0, long); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Line(0)
	if got != long {
		t.Fatalf("line length %d", len(got))
	}
	if n, _ := b.Len(); n != 1 {
		t.Fatalf("len = %d", n)
	}
}

func TestLineTooLong(t *testing.T) {
	b, _ := newBuf(t)
	if err := b.Append(strings.Repeat("y", MaxLine+1)); !errors.Is(err, ErrTooLong) {
		t.Fatalf("overlong line: %v", err)
	}
}

func TestSharedBetweenAttaches(t *testing.T) {
	// Two handles — two "windows" — edit one buffer.
	b1, as := newBuf(t)
	b1.Append("hello from window 1")
	b2, err := Attach(as, segBase)
	if err != nil {
		t.Fatal(err)
	}
	b2.Append("hello from window 2")
	got, _ := b1.Lines()
	if len(got) != 2 || got[1] != "hello from window 2" {
		t.Fatalf("window 1 sees %q", got)
	}
	b2.Delete(0)
	if n, _ := b1.Len(); n != 1 {
		t.Fatalf("window 1 len = %d", n)
	}
}

func TestAttachRejectsRawSegment(t *testing.T) {
	as := addrspace.New(mem.NewPhysical(0))
	as.MapAnon(segBase, 4096, addrspace.ProtRW)
	if _, err := Attach(as, segBase); !errors.Is(err, ErrNotABuffer) {
		t.Fatalf("raw attach: %v", err)
	}
}

func TestSearch(t *testing.T) {
	b, _ := newBuf(t)
	for _, l := range []string{"alpha", "beta gamma", "delta", "gamma again"} {
		b.Append(l)
	}
	if i, _ := b.Search(0, "gamma"); i != 1 {
		t.Fatalf("first gamma at %d", i)
	}
	if i, _ := b.Search(2, "gamma"); i != 3 {
		t.Fatalf("second gamma at %d", i)
	}
	if i, _ := b.Search(0, "zeta"); i != -1 {
		t.Fatalf("missing needle at %d", i)
	}
	if i, _ := b.Search(0, ""); i != 0 {
		t.Fatalf("empty needle at %d", i)
	}
}

// Property: a random edit script applied to the buffer and to a []string
// model produces identical text, with invariants intact throughout.
func TestModelEquivalence(t *testing.T) {
	b, _ := newBuf(t)
	var model []string
	rng := rand.New(rand.NewSource(7))
	words := []string{"lorem", "ipsum", "dolor", "sit", "amet", ""}
	for step := 0; step < 600; step++ {
		switch op := rng.Intn(4); {
		case op == 0 || len(model) == 0: // insert
			i := rng.Intn(len(model) + 1)
			text := words[rng.Intn(len(words))] + words[rng.Intn(len(words))]
			if err := b.Insert(i, text); err != nil {
				t.Fatalf("step %d insert: %v", step, err)
			}
			model = append(model[:i], append([]string{text}, model[i:]...)...)
		case op == 1: // delete
			i := rng.Intn(len(model))
			if err := b.Delete(i); err != nil {
				t.Fatalf("step %d delete: %v", step, err)
			}
			model = append(model[:i], model[i+1:]...)
		case op == 2: // replace
			i := rng.Intn(len(model))
			text := words[rng.Intn(len(words))]
			if err := b.SetLine(i, text); err != nil {
				t.Fatalf("step %d set: %v", step, err)
			}
			model[i] = text
		default: // point read
			i := rng.Intn(len(model))
			got, err := b.Line(i)
			if err != nil || got != model[i] {
				t.Fatalf("step %d line %d = %q, want %q (%v)", step, i, got, model[i], err)
			}
		}
		if step%50 == 0 {
			if err := b.Check(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	got, err := b.Lines()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, model) {
		t.Fatalf("buffer diverged from model:\n%q\n%q", got, model)
	}
}

func TestStorageReclaimed(t *testing.T) {
	b, _ := newBuf(t)
	// Fill and empty the buffer repeatedly; the segment heap must not
	// leak (a leak would eventually exhaust the segment).
	for round := 0; round < 40; round++ {
		for i := 0; i < 100; i++ {
			if err := b.Append(strings.Repeat("z", 200)); err != nil {
				t.Fatalf("round %d append %d: %v", round, i, err)
			}
		}
		for i := 0; i < 100; i++ {
			if err := b.Delete(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Check(); err != nil {
		t.Fatal(err)
	}
}
