// Package edbuf implements the shared text buffer of the paper's editor
// vision. Section 2 imagines "rewriting the emacs editor with a functional
// interface to which every process with a text window can be linked", and
// section 5's dynamic-storage discussion concludes that such an editor
// needs "an interface based on, say, a linked list of dynamically-allocated
// lines, rather than a fixed array of bytes".
//
// This is that interface: a doubly-linked list of lines whose nodes are
// allocated from a per-segment heap (package shalloc). The whole buffer —
// list head, nodes, line bytes — lives inside one shared segment, so every
// process that maps the segment edits the same text through the same
// absolute pointers, and the buffer persists like any other public
// segment.
//
// Layout:
//
//	base+0   magic "EDBF"
//	base+4   head line pointer (0 = empty)
//	base+8   tail line pointer
//	base+12  line count
//	base+16  heap (shalloc)
//
// Line node: [prev | next | length | bytes...], heap-allocated.
package edbuf

import (
	"errors"
	"fmt"

	"hemlock/internal/shalloc"
)

// Errors.
var (
	ErrNotABuffer = errors.New("edbuf: segment does not contain a buffer")
	ErrRange      = errors.New("edbuf: line index out of range")
	ErrTooLong    = errors.New("edbuf: line too long")
)

const (
	magic     = 0x45444246 // "EDBF"
	offHead   = 4
	offTail   = 8
	offCount  = 12
	hdrSize   = 16
	nodePrev  = 0
	nodeNext  = 4
	nodeLen   = 8
	nodeBytes = 12

	// MaxLine bounds one line's byte length.
	MaxLine = 4096
)

// Buffer is a handle on a shared text buffer. All state lives in the
// segment; handles are cheap and per-process.
type Buffer struct {
	m    shalloc.Mem
	base uint32
	heap *shalloc.Heap
}

// Create formats an empty buffer across [base, base+size).
func Create(m shalloc.Mem, base, size uint32) (*Buffer, error) {
	h, err := shalloc.Init(m, base+hdrSize, size-hdrSize)
	if err != nil {
		return nil, err
	}
	for off, v := range map[uint32]uint32{
		base: magic, base + offHead: 0, base + offTail: 0, base + offCount: 0,
	} {
		if err := m.StoreWord(off, v); err != nil {
			return nil, err
		}
	}
	return &Buffer{m: m, base: base, heap: h}, nil
}

// Attach opens an existing buffer: what a new window process does.
func Attach(m shalloc.Mem, base uint32) (*Buffer, error) {
	w, err := m.LoadWord(base)
	if err != nil {
		return nil, err
	}
	if w != magic {
		return nil, fmt.Errorf("%w: at 0x%08x", ErrNotABuffer, base)
	}
	h, err := shalloc.Attach(m, base+hdrSize)
	if err != nil {
		return nil, err
	}
	return &Buffer{m: m, base: base, heap: h}, nil
}

// Len returns the number of lines.
func (b *Buffer) Len() (int, error) {
	n, err := b.m.LoadWord(b.base + offCount)
	return int(n), err
}

// nodeAt walks to the i-th line node (0-based).
func (b *Buffer) nodeAt(i int) (uint32, error) {
	n, err := b.Len()
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= n {
		return 0, fmt.Errorf("%w: %d of %d", ErrRange, i, n)
	}
	// Walk from the nearer end (the doubly-linked list earns its keep).
	if i < n/2 {
		cur, err := b.m.LoadWord(b.base + offHead)
		if err != nil {
			return 0, err
		}
		for ; i > 0; i-- {
			if cur, err = b.m.LoadWord(cur + nodeNext); err != nil {
				return 0, err
			}
		}
		return cur, nil
	}
	cur, err := b.m.LoadWord(b.base + offTail)
	if err != nil {
		return 0, err
	}
	for j := n - 1; j > i; j-- {
		if cur, err = b.m.LoadWord(cur + nodePrev); err != nil {
			return 0, err
		}
	}
	return cur, nil
}

func (b *Buffer) readLine(node uint32) (string, error) {
	n, err := b.m.LoadWord(node + nodeLen)
	if err != nil {
		return "", err
	}
	if n > MaxLine {
		return "", fmt.Errorf("edbuf: corrupt line length %d", n)
	}
	out := make([]byte, 0, n)
	for j := uint32(0); j < n; j += 4 {
		w, err := b.m.LoadWord(node + nodeBytes + j)
		if err != nil {
			return "", err
		}
		for k := uint32(0); k < 4 && j+k < n; k++ {
			out = append(out, byte(w>>uint(24-8*k)))
		}
	}
	return string(out), nil
}

// newNode allocates and fills a line node (links zero).
func (b *Buffer) newNode(text string) (uint32, error) {
	if len(text) > MaxLine {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLong, len(text))
	}
	node, err := b.heap.Alloc(uint32(nodeBytes + len(text)))
	if err != nil {
		return 0, err
	}
	if err := b.m.StoreWord(node+nodeLen, uint32(len(text))); err != nil {
		return 0, err
	}
	for j := 0; j < len(text); j += 4 {
		var w uint32
		for k := 0; k < 4 && j+k < len(text); k++ {
			w |= uint32(text[j+k]) << uint(24-8*k)
		}
		if err := b.m.StoreWord(node+nodeBytes+uint32(j), w); err != nil {
			return 0, err
		}
	}
	return node, nil
}

func (b *Buffer) setCount(delta int) error {
	n, err := b.m.LoadWord(b.base + offCount)
	if err != nil {
		return err
	}
	return b.m.StoreWord(b.base+offCount, uint32(int(n)+delta))
}

// Insert places text as the new line i (0 <= i <= Len).
func (b *Buffer) Insert(i int, text string) error {
	n, err := b.Len()
	if err != nil {
		return err
	}
	if i < 0 || i > n {
		return fmt.Errorf("%w: insert at %d of %d", ErrRange, i, n)
	}
	node, err := b.newNode(text)
	if err != nil {
		return err
	}
	var prev, next uint32
	switch {
	case n == 0:
		// Only line.
	case i == n:
		prev, err = b.m.LoadWord(b.base + offTail)
		if err != nil {
			return err
		}
	default:
		next, err = b.nodeAt(i)
		if err != nil {
			return err
		}
		prev, err = b.m.LoadWord(next + nodePrev)
		if err != nil {
			return err
		}
	}
	if err := b.m.StoreWord(node+nodePrev, prev); err != nil {
		return err
	}
	if err := b.m.StoreWord(node+nodeNext, next); err != nil {
		return err
	}
	if prev != 0 {
		if err := b.m.StoreWord(prev+nodeNext, node); err != nil {
			return err
		}
	} else if err := b.m.StoreWord(b.base+offHead, node); err != nil {
		return err
	}
	if next != 0 {
		if err := b.m.StoreWord(next+nodePrev, node); err != nil {
			return err
		}
	} else if err := b.m.StoreWord(b.base+offTail, node); err != nil {
		return err
	}
	return b.setCount(1)
}

// Append adds a line at the end.
func (b *Buffer) Append(text string) error {
	n, err := b.Len()
	if err != nil {
		return err
	}
	return b.Insert(n, text)
}

// Line returns line i.
func (b *Buffer) Line(i int) (string, error) {
	node, err := b.nodeAt(i)
	if err != nil {
		return "", err
	}
	return b.readLine(node)
}

// Delete removes line i, returning its storage to the segment heap.
func (b *Buffer) Delete(i int) error {
	node, err := b.nodeAt(i)
	if err != nil {
		return err
	}
	prev, err := b.m.LoadWord(node + nodePrev)
	if err != nil {
		return err
	}
	next, err := b.m.LoadWord(node + nodeNext)
	if err != nil {
		return err
	}
	if prev != 0 {
		if err := b.m.StoreWord(prev+nodeNext, next); err != nil {
			return err
		}
	} else if err := b.m.StoreWord(b.base+offHead, next); err != nil {
		return err
	}
	if next != 0 {
		if err := b.m.StoreWord(next+nodePrev, prev); err != nil {
			return err
		}
	} else if err := b.m.StoreWord(b.base+offTail, prev); err != nil {
		return err
	}
	if err := b.heap.Free(node); err != nil {
		return err
	}
	return b.setCount(-1)
}

// SetLine replaces line i — this is where "the editor is able to change
// the size of the text it is asked to edit" pays off: the new line may be
// any length, because lines are dynamically allocated.
func (b *Buffer) SetLine(i int, text string) error {
	if err := b.Insert(i, text); err != nil {
		return err
	}
	return b.Delete(i + 1)
}

// Lines materialises the whole buffer.
func (b *Buffer) Lines() ([]string, error) {
	n, err := b.Len()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	cur, err := b.m.LoadWord(b.base + offHead)
	if err != nil {
		return nil, err
	}
	for cur != 0 {
		line, err := b.readLine(cur)
		if err != nil {
			return nil, err
		}
		out = append(out, line)
		if cur, err = b.m.LoadWord(cur + nodeNext); err != nil {
			return nil, err
		}
		if len(out) > n {
			return nil, fmt.Errorf("edbuf: list longer than count (%d > %d)", len(out), n)
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("edbuf: list shorter than count (%d < %d)", len(out), n)
	}
	return out, nil
}

// Search returns the index of the first line at or after `from` containing
// needle, or -1: the kind of "esoteric feature" a window process would
// lazily link in.
func (b *Buffer) Search(from int, needle string) (int, error) {
	lines, err := b.Lines()
	if err != nil {
		return -1, err
	}
	for i := from; i < len(lines); i++ {
		if contains(lines[i], needle) {
			return i, nil
		}
	}
	return -1, nil
}

func contains(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Check validates the list invariants: forward and backward walks agree
// with each other and with the count.
func (b *Buffer) Check() error {
	n, err := b.Len()
	if err != nil {
		return err
	}
	var fwd []uint32
	cur, err := b.m.LoadWord(b.base + offHead)
	if err != nil {
		return err
	}
	var prev uint32
	for cur != 0 {
		p, err := b.m.LoadWord(cur + nodePrev)
		if err != nil {
			return err
		}
		if p != prev {
			return fmt.Errorf("edbuf: node 0x%08x prev=0x%08x, want 0x%08x", cur, p, prev)
		}
		fwd = append(fwd, cur)
		prev = cur
		if cur, err = b.m.LoadWord(cur + nodeNext); err != nil {
			return err
		}
		if len(fwd) > n+1 {
			return fmt.Errorf("edbuf: cycle or count mismatch")
		}
	}
	if len(fwd) != n {
		return fmt.Errorf("edbuf: %d nodes, count says %d", len(fwd), n)
	}
	tail, err := b.m.LoadWord(b.base + offTail)
	if err != nil {
		return err
	}
	if n == 0 && tail != 0 {
		return fmt.Errorf("edbuf: empty buffer with tail 0x%08x", tail)
	}
	if n > 0 && tail != fwd[n-1] {
		return fmt.Errorf("edbuf: tail 0x%08x, want 0x%08x", tail, fwd[n-1])
	}
	return nil
}
