package isa

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The assembler/disassembler fixed-point property: for every opcode class,
// asm → bytes → disasm → asm reproduces the same bytes, and a second
// disassembly reproduces the same text. Instruction words are generated
// per class with clean encodings (unused fields zero, exactly what the
// assembler itself emits), then round-tripped starting from their
// disassembly so the disassembler's own formatting is what gets re-parsed.

const fixedpointSeed = 0x5EED

// genWord produces one valid instruction word for opcode class `class`,
// positioned at text offset pc (needed so branch displacements stay
// representable and meaningful).
func genInstWord(rng *rand.Rand, class int, pc uint32) uint32 {
	reg := func() int { return rng.Intn(32) }
	imm := func() uint16 { return uint16(rng.Uint32()) }
	switch class {
	case 0: // R-type ALU
		fns := []int{FnADD, FnADDU, FnSUB, FnSUBU, FnAND, FnOR, FnXOR, FnNOR, FnSLT, FnSLTU, FnMUL, FnDIV}
		return EncodeR(fns[rng.Intn(len(fns))], reg(), reg(), reg(), 0)
	case 1: // constant shifts
		fns := []int{FnSLL, FnSRL, FnSRA}
		return EncodeR(fns[rng.Intn(len(fns))], reg(), 0, reg(), rng.Intn(32))
	case 2: // variable shifts
		fns := []int{FnSLLV, FnSRLV, FnSRAV}
		return EncodeR(fns[rng.Intn(len(fns))], reg(), reg(), reg(), 0)
	case 3: // register jumps
		if rng.Intn(2) == 0 {
			return EncodeR(FnJR, 0, reg(), 0, 0)
		}
		return EncodeR(FnJALR, reg(), reg(), 0, 0)
	case 4: // no-operand SPECIALs + halt + nop
		switch rng.Intn(4) {
		case 0:
			return EncodeR(FnSYSCALL, 0, 0, 0, 0)
		case 1:
			return EncodeR(FnBREAK, 0, 0, 0, 0)
		case 2:
			return uint32(OpHALT) << 26
		}
		return Nop
	case 5: // I-type ALU
		ops := []int{OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI}
		return EncodeI(ops[rng.Intn(len(ops))], reg(), reg(), imm())
	case 6: // lui
		return EncodeI(OpLUI, reg(), 0, imm())
	case 7: // loads/stores
		ops := []int{OpLB, OpLBU, OpLW, OpSB, OpSW}
		return EncodeI(ops[rng.Intn(len(ops))], reg(), reg(), imm())
	case 8: // branches (including the b pseudo when both regs are $zero)
		ops := []int{OpBEQ, OpBNE, OpBLEZ, OpBGTZ}
		op := ops[rng.Intn(len(ops))]
		rt := reg()
		if op == OpBLEZ || op == OpBGTZ {
			rt = 0
		}
		return EncodeI(op, rt, reg(), imm())
	default: // 26-bit jumps
		op := OpJ
		if rng.Intn(2) == 0 {
			op = OpJAL
		}
		return EncodeJ(op, rng.Uint32()&0x0FFFFFFC)
	}
}

const numInstClasses = 10

func TestAsmDisasmFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(fixedpointSeed))
	for class := 0; class < numInstClasses; class++ {
		// One program of 64 instructions per class per round.
		for round := 0; round < 8; round++ {
			words := make([]uint32, 64)
			text1 := make([]byte, 4*len(words))
			for i := range words {
				words[i] = genInstWord(rng, class, uint32(4*i))
				binary.BigEndian.PutUint32(text1[4*i:], words[i])
			}
			src1 := disasmToSource(text1)
			o, err := Assemble("fp.s", src1)
			if err != nil {
				t.Fatalf("seed=%d class=%d round=%d: reassembly failed: %v\nsource:\n%s",
					fixedpointSeed, class, round, err, src1)
			}
			if len(o.Text) != len(text1) {
				t.Fatalf("seed=%d class=%d round=%d: size changed %d -> %d",
					fixedpointSeed, class, round, len(text1), len(o.Text))
			}
			for i := range words {
				got := binary.BigEndian.Uint32(o.Text[4*i:])
				if got != words[i] {
					t.Fatalf("seed=%d class=%d round=%d inst=%d: 0x%08x -> %q -> 0x%08x",
						fixedpointSeed, class, round, i,
						words[i], Disassemble(words[i], uint32(4*i)), got)
				}
			}
			// Text is a fixed point too: disassembling the reassembled
			// bytes must reproduce the source exactly.
			if src2 := disasmToSource(o.Text); src2 != src1 {
				t.Fatalf("seed=%d class=%d round=%d: disassembly not stable:\n--- first\n%s\n--- second\n%s",
					fixedpointSeed, class, round, src1, src2)
			}
		}
	}
}

// disasmToSource renders text (based at 0) as re-assemblable source: one
// instruction per line, no addresses or encodings.
func disasmToSource(text []byte) string {
	var sb strings.Builder
	sb.WriteString(".text\n")
	for off := 0; off+4 <= len(text); off += 4 {
		w := binary.BigEndian.Uint32(text[off:])
		fmt.Fprintf(&sb, "%s\n", Disassemble(w, uint32(off)))
	}
	return sb.String()
}

// TestNumericJumpAndBranchTargets pins the assembler extension the fixed-
// point property depends on: absolute numeric targets, exactly as the
// disassembler prints them.
func TestNumericJumpAndBranchTargets(t *testing.T) {
	o, err := Assemble("num.s", `
        .text
        j       0x00000008
        beq     $t0, $t1, 0x00000000
        nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if w := binary.BigEndian.Uint32(o.Text[0:]); w != EncodeJ(OpJ, 8) {
		t.Fatalf("j: got 0x%08x", w)
	}
	// beq at offset 4: target 0 is offset -8 bytes = -2 words.
	if w := binary.BigEndian.Uint32(o.Text[4:]); w != EncodeI(OpBEQ, 9, 8, 0xFFFE) {
		t.Fatalf("beq: got 0x%08x", w)
	}
	if _, err := Assemble("bad.s", ".text\n j 0x00000002\n"); err == nil {
		t.Fatal("unaligned jump target accepted")
	}
	if _, err := Assemble("bad.s", ".text\n beq $t0, $t1, 0x40000000\n"); err == nil {
		t.Fatal("out-of-range branch target accepted")
	}
}
