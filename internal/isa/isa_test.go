package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"hemlock/internal/objfile"
)

func TestHi16Lo16CarryRule(t *testing.T) {
	// The MIPS carry rule: %lo is sign-extended when added, so %hi must be
	// adjusted for addresses whose low half has bit 15 set.
	addrs := []uint32{0, 1, 0x7FFF, 0x8000, 0xFFFF, 0x12348000, 0x30007FFC, 0x3000FFFC, 0xFFFFFFFF}
	for _, a := range addrs {
		if got := ComposeHiLo(Hi16(a), Lo16(a)); got != a {
			t.Errorf("ComposeHiLo(Hi16, Lo16)(0x%08x) = 0x%08x", a, got)
		}
	}
}

func TestHi16Lo16Property(t *testing.T) {
	f := func(a uint32) bool { return ComposeHiLo(Hi16(a), Lo16(a)) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJumpReach(t *testing.T) {
	// Private text (region 0) cannot J into the shared file system
	// (0x30000000, region 3): the paper's 28-bit jump limit.
	if JumpReach(0x00400000, 0x30100000) {
		t.Fatal("jump across 256MB regions should be unreachable")
	}
	if !JumpReach(0x00400000, 0x0FFFFFFC) {
		t.Fatal("jump within region 0 should be reachable")
	}
	if !JumpReach(0x30000000, 0x3FFFFFFC) {
		t.Fatal("jump within shared region should be reachable")
	}
	// PC+4 is what matters at a region's last word.
	if JumpReach(0x0FFFFFFC, 0x00400000) {
		t.Fatal("jump in delay of region boundary uses PC+4's region")
	}
}

func TestJump26PatchAndTarget(t *testing.T) {
	w := EncodeJ(OpJAL, 0)
	w = PatchJump26(w, 0x30100040)
	if got := Jump26Target(w, 0x30000000); got != 0x30100040 {
		t.Fatalf("Jump26Target = 0x%08x", got)
	}
	in := Decode(w)
	if in.Op != OpJAL {
		t.Fatalf("patch clobbered opcode: %d", in.Op)
	}
}

func TestBranchOffsetRoundTrip(t *testing.T) {
	pc := uint32(0x1000)
	for _, target := range []uint32{0x1004, 0x1000, 0x0F00, 0x1000 + 4*32767} {
		off, ok := BranchOffset(pc, target)
		if !ok {
			t.Fatalf("offset to 0x%x not representable", target)
		}
		if got := BranchTarget(pc, off); got != target {
			t.Fatalf("BranchTarget = 0x%x, want 0x%x", got, target)
		}
	}
	if _, ok := BranchOffset(pc, pc+4+4*40000); ok {
		t.Fatal("out-of-range branch accepted")
	}
	if _, ok := BranchOffset(pc, pc+2); ok {
		t.Fatal("unaligned branch accepted")
	}
}

func TestTrampolineWords(t *testing.T) {
	ws := TrampolineWords(0x30ABCDE0, false)
	if len(ws)*4 != TrampolineSize {
		t.Fatalf("trampoline is %d bytes, want %d", len(ws)*4, TrampolineSize)
	}
	// lui $at, 0x30AB ; ori $at, $at, 0xCDE0 ; jr $at
	lui := Decode(ws[0])
	if lui.Op != OpLUI || lui.RT != RegAT || lui.Imm != 0x30AB {
		t.Fatalf("bad lui: %s", Disassemble(ws[0], 0))
	}
	ori := Decode(ws[1])
	if ori.Op != OpORI || ori.Imm != 0xCDE0 {
		t.Fatalf("bad ori: %s", Disassemble(ws[1], 0))
	}
	jr := Decode(ws[2])
	if jr.Op != OpSpecial || jr.Fn != FnJR || jr.RS != RegAT {
		t.Fatalf("bad jr: %s", Disassemble(ws[2], 0))
	}
	call := TrampolineWords(0x30ABCDE0, true)
	jalr := Decode(call[2])
	if jalr.Fn != FnJALR || jalr.RD != RegRA {
		t.Fatalf("call trampoline lacks jalr: %s", Disassemble(call[2], 0))
	}
}

const sampleProg = `
        .text
        .globl  main
        .extern shared_counter
main:
        la      $t0, shared_counter
        lw      $t1, 0($t0)
        addiu   $t1, $t1, 1
        sw      $t1, 0($t0)
        jal     helper
        li      $v0, 10
        syscall
        halt
helper:
        lui     $t2, %hi(local_word)
        lw      $t3, %lo(local_word)($t2)
        jr      $ra

        .data
        .globl  table
local_word:
        .word   7
table:
        .word   1, 2, 3
ptr:
        .word   table+4
msg:
        .asciiz "hi"
        .align  2
buf:
        .space  8
        .comm   scratch, 64
`

func TestAssembleSampleProgram(t *testing.T) {
	o, err := Assemble("sample.s", sampleProg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// main exported, helper local, shared_counter undefined.
	main, ok := o.Lookup("main")
	if !ok || !main.Global || main.Section != objfile.SecText || main.Value != 0 {
		t.Fatalf("main: %+v", main)
	}
	helper, ok := o.Lookup("helper")
	if !ok || helper.Global || helper.Section != objfile.SecText {
		t.Fatalf("helper: %+v", helper)
	}
	if und := o.Undefined(); len(und) != 1 || und[0] != "shared_counter" {
		t.Fatalf("undefined = %v", und)
	}
	// Relocations: la emits HI16+LO16 to shared_counter; jal emits JUMP26
	// to helper; lui/lw pair to local_word; .word table+4 is WORD32.
	var kinds []string
	for _, r := range o.Relocs {
		kinds = append(kinds, o.Symbols[r.Sym].Name+":"+r.Type.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{
		"shared_counter:HI16", "shared_counter:LO16",
		"helper:JUMP26",
		"local_word:HI16", "local_word:LO16",
		"table:WORD32",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing relocation %s in %s", want, joined)
		}
	}
	// .word table+4 carries the addend.
	for _, r := range o.Relocs {
		if o.Symbols[r.Sym].Name == "table" && r.Type == objfile.RelWord32 && r.Addend != 4 {
			t.Errorf("table reloc addend = %d, want 4", r.Addend)
		}
	}
	// scratch went to bss.
	scr, ok := o.Lookup("scratch")
	if !ok || scr.Section != objfile.SecBss {
		t.Fatalf("scratch: %+v", scr)
	}
	if o.BssSize < 64 {
		t.Fatalf("bss size %d < 64", o.BssSize)
	}
	if o.UsesGP {
		t.Fatal("module should not be marked gp-using")
	}
}

func TestAssembleBranches(t *testing.T) {
	src := `
        .text
loop:   addiu   $t0, $t0, 1
        bne     $t0, $t1, loop
        beqz    $t0, done
        b       loop
done:   halt
`
	o, err := Assemble("b.s", src)
	if err != nil {
		t.Fatal(err)
	}
	// Branches resolved locally: no BRANCH16 relocations remain.
	for _, r := range o.Relocs {
		if r.Type == objfile.RelBranch16 {
			t.Fatal("branch relocation leaked into object")
		}
	}
	// bne at offset 4 targets loop (offset 0): imm = -2 words.
	w := Decode(be32(o.Text, 4))
	if w.Op != OpBNE || int16(w.Imm) != -2 {
		t.Fatalf("bne imm = %d, want -2", int16(w.Imm))
	}
}

func be32(b []byte, off int) uint32 {
	return uint32(b[off])<<24 | uint32(b[off+1])<<16 | uint32(b[off+2])<<8 | uint32(b[off+3])
}

func TestAssembleBranchToUndefinedFails(t *testing.T) {
	_, err := Assemble("bad.s", ".text\n beq $t0, $t1, elsewhere\n")
	if err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("want undefined-label error, got %v", err)
	}
}

func TestAssembleGPDetection(t *testing.T) {
	o, err := Assemble("gp.s", `
        .text
        lw      $t0, %lo(var)($gp)
        .data
var:    .word 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if !o.UsesGP {
		t.Fatal("gp-relative load not detected")
	}
	var found bool
	for _, r := range o.Relocs {
		if r.Type == objfile.RelGPRel16 {
			found = true
		}
	}
	if !found {
		t.Fatal("GPREL16 relocation not emitted")
	}
	// The explicit directive works too.
	o2, err := Assemble("gp2.s", ".usesgp\n.text\nnop\n")
	if err != nil || !o2.UsesGP {
		t.Fatalf("explicit .usesgp: %v %v", o2, err)
	}
}

func TestAssembleDepsAndSearchPath(t *testing.T) {
	o, err := Assemble("deps.s", `
        .dep    shared1.o, dynamic-public
        .dep    helper.o, dp
        .searchpath /lib/project
        .text
        nop
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Deps) != 2 || o.Deps[0].Class != objfile.DynamicPublic || o.Deps[1].Class != objfile.DynamicPrivate {
		t.Fatalf("deps = %+v", o.Deps)
	}
	if len(o.SearchPath) != 1 || o.SearchPath[0] != "/lib/project" {
		t.Fatalf("search path = %v", o.SearchPath)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		".text\n bogus $t0\n",
		".text\n add $t0, $t1\n",          // wrong arity
		".text\n add $t0, $t1, $zz\n",     // bad register
		".text\n addi $t0, $t1, 100000\n", // imm out of range
		".word 5\n",                       // .word in .text
		".text\nfoo:\nfoo: nop\n",         // duplicate label
		".data\n .asciiz bad\n",           // unquoted string
		".dep x\n",                        // missing class
		".dep x, nonsense\n",              // bad class
		".text\n lw $t0, %hi(x)(bad\n",    // malformed mem operand
		".align 99\n",                     // bad align
		"1abc: nop\n",                     // bad label
	}
	for _, src := range cases {
		if _, err := Assemble("err.s", src); err == nil {
			t.Errorf("accepted bad program %q", src)
		}
	}
}

func TestAssembleLi32(t *testing.T) {
	o, err := Assemble("li.s", ".text\n li $t0, 0x30ABCDEF\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	lui := Decode(be32(o.Text, 0))
	ori := Decode(be32(o.Text, 4))
	if lui.Imm != 0x30AB || ori.Imm != 0xCDEF {
		t.Fatalf("li encoded 0x%04x/0x%04x", lui.Imm, ori.Imm)
	}
}

func TestDisassembleRoundTrips(t *testing.T) {
	// Spot checks that the disassembler names things sensibly.
	cases := map[uint32]string{
		Nop:                            "nop",
		EncodeR(FnADD, 2, 4, 5, 0):     "add $v0, $a0, $a1",
		EncodeI(OpLW, 9, 8, 0xFFFC):    "lw $t1, -4($t0)",
		EncodeI(OpLUI, 1, 0, 0x30AB):   "lui $at, 0x30ab",
		EncodeR(FnSYSCALL, 0, 0, 0, 0): "syscall",
		uint32(OpHALT) << 26:           "halt",
		EncodeR(FnJR, 0, RegRA, 0, 0):  "jr $ra",
		EncodeR(FnOR, 3, 7, 0, 0):      "move $v1, $a3",
	}
	for w, want := range cases {
		if got := Disassemble(w, 0x1000); got != want {
			t.Errorf("Disassemble(%08x) = %q, want %q", w, got, want)
		}
	}
}

func TestDisassembleText(t *testing.T) {
	o, err := Assemble("d.s", ".text\n nop\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	out := DisassembleText(o.Text, 0x400000)
	if !strings.Contains(out, "00400000") || !strings.Contains(out, "halt") {
		t.Fatalf("bad disassembly:\n%s", out)
	}
}

func TestEncodeDecodeFieldsProperty(t *testing.T) {
	f := func(op6, rs, rt uint8, imm uint16) bool {
		op := int(op6 % 64)
		w := EncodeI(op, int(rt%32), int(rs%32), imm)
		in := Decode(w)
		return in.Op == op && in.RS == int(rs%32) && in.RT == int(rt%32) && in.Imm == imm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndLabelsOnSameLine(t *testing.T) {
	o, err := Assemble("c.s", `
start:  nop   # increment
        halt  # done
`)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := o.Lookup("start")
	if !ok || s.Value != 0 {
		t.Fatalf("start: %+v", s)
	}
}
