package isa

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hemlock/internal/objfile"
)

// Assemble translates R3K-lite assembly source into a HEMO object module.
// It plays the role of the compiler in Figure 1 of the paper: templates for
// both private and shared modules are produced this way, and the
// relocations it emits are exactly what lds and ldl later resolve.
//
// Supported syntax (MIPS-flavoured):
//
//	.text / .data                     section switch
//	.globl NAME                       export a symbol
//	.extern NAME                      declare an external reference
//	.word EXPR, ...                   32-bit data (numbers or sym[+off])
//	.byte N, ...                      bytes
//	.asciiz "s" / .ascii "s"          strings
//	.space N / .align N               padding
//	.comm NAME, SIZE                  bss allocation
//	.dep NAME, CLASS                  module list entry (scope info)
//	.searchpath DIR                   module search path entry (scope info)
//	.usesgp                           mark module as gp-using
//	label:                            define a label in the current section
//
// Instructions: add addu sub subu and or xor nor slt sltu mul div sll srl
// sra sllv srlv srav jr jalr syscall break addi addiu slti sltiu andi ori
// xori lui lb lbu lw sb sw beq bne blez bgtz j jal halt, plus the pseudos
// nop, move, li, la, b, beqz, bnez.
//
// %hi(sym)/%lo(sym) immediates, .word sym, and symbolic j/jal targets emit
// HI16, LO16, WORD32 and JUMP26 relocations; PC-relative branches must
// target labels defined in the same file. Jump and branch targets may also
// be absolute numeric addresses (the form the disassembler prints, with the
// text assumed based at 0), which encode directly with no relocation.
func Assemble(name, src string) (*objfile.Object, error) {
	a := &asm{
		name:    name,
		labels:  map[string]symref{},
		globals: map[string]bool{},
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	return a.finish()
}

type symref struct {
	section objfile.Section
	offset  uint32
}

type pending struct {
	line    int
	section objfile.Section
	offset  uint32
	word    uint32
	kind    objfile.RelType
	sym     string
	addend  int32
	branch  bool // PC-relative branch: resolve locally, no reloc
}

type asm struct {
	name    string
	text    []byte
	data    []byte
	bss     uint32
	labels  map[string]symref
	globals map[string]bool
	externs []string
	deps    []objfile.ModuleRef
	paths   []string
	usesGP  bool
	fixups  []pending
	section objfile.Section
	line    int
}

func (a *asm) errf(format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d: %s", a.name, a.line, fmt.Sprintf(format, args...))
}

func (a *asm) run(src string) error {
	a.section = objfile.SecText
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		line := raw
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return a.errf("bad label %q", label)
			}
			if err := a.defineLabel(label); err != nil {
				return err
			}
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := a.directive(line); err != nil {
				return err
			}
			continue
		}
		if err := a.instruction(line); err != nil {
			return err
		}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.', r == '$' && i > 0:
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *asm) defineLabel(label string) error {
	if _, dup := a.labels[label]; dup {
		return a.errf("label %q redefined", label)
	}
	off := uint32(len(a.text))
	if a.section == objfile.SecData {
		off = uint32(len(a.data))
	}
	a.labels[label] = symref{section: a.section, offset: off}
	return nil
}

// splitArgs splits an operand list on commas, respecting parentheses and
// quoted strings.
func splitArgs(s string) []string {
	var out []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		out = append(out, rest)
	}
	return out
}

func (a *asm) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	args := splitArgs(rest)
	switch dir {
	case ".text":
		a.section = objfile.SecText
	case ".data":
		a.section = objfile.SecData
	case ".globl", ".global":
		for _, g := range args {
			if !isIdent(g) {
				return a.errf(".globl: bad name %q", g)
			}
			a.globals[g] = true
		}
	case ".extern":
		for _, g := range args {
			if !isIdent(g) {
				return a.errf(".extern: bad name %q", g)
			}
			a.externs = append(a.externs, g)
		}
	case ".word":
		if a.section != objfile.SecData {
			return a.errf(".word outside .data")
		}
		for _, arg := range args {
			if err := a.dataWord(arg); err != nil {
				return err
			}
		}
	case ".byte":
		if a.section != objfile.SecData {
			return a.errf(".byte outside .data")
		}
		for _, arg := range args {
			v, err := parseInt(arg)
			if err != nil {
				return a.errf(".byte: %v", err)
			}
			a.data = append(a.data, byte(v))
		}
	case ".asciiz", ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("%s: bad string %s", dir, rest)
		}
		if a.section != objfile.SecData {
			return a.errf("%s outside .data", dir)
		}
		a.data = append(a.data, []byte(s)...)
		if dir == ".asciiz" {
			a.data = append(a.data, 0)
		}
	case ".space":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return a.errf(".space: bad size %q", rest)
		}
		if a.section == objfile.SecData {
			a.data = append(a.data, make([]byte, n)...)
		} else {
			if n%4 != 0 {
				return a.errf(".space in .text must be word-aligned")
			}
			a.text = append(a.text, make([]byte, n)...)
		}
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n < 0 || n > 12 {
			return a.errf(".align: bad exponent %q", rest)
		}
		al := uint32(1) << uint(n)
		buf := &a.data
		if a.section == objfile.SecText {
			buf = &a.text
		}
		for uint32(len(*buf))%al != 0 {
			*buf = append(*buf, 0)
		}
	case ".comm":
		if len(args) != 2 {
			return a.errf(".comm needs NAME, SIZE")
		}
		size, err := parseInt(args[1])
		if err != nil || size <= 0 {
			return a.errf(".comm: bad size %q", args[1])
		}
		a.bss = (a.bss + 3) &^ 3
		a.labels[args[0]] = symref{section: objfile.SecBss, offset: a.bss}
		a.bss += uint32(size)
	case ".dep":
		if len(args) != 2 {
			return a.errf(".dep needs NAME, CLASS")
		}
		class, err := parseClass(args[1])
		if err != nil {
			return a.errf(".dep: %v", err)
		}
		a.deps = append(a.deps, objfile.ModuleRef{Name: args[0], Class: class})
	case ".searchpath":
		if rest == "" {
			return a.errf(".searchpath needs a directory")
		}
		a.paths = append(a.paths, rest)
	case ".usesgp":
		a.usesGP = true
	default:
		return a.errf("unknown directive %s", dir)
	}
	return nil
}

func parseClass(s string) (objfile.Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "static-private", "sp":
		return objfile.StaticPrivate, nil
	case "dynamic-private", "dp":
		return objfile.DynamicPrivate, nil
	case "static-public", "spub":
		return objfile.StaticPublic, nil
	case "dynamic-public", "dpub":
		return objfile.DynamicPublic, nil
	}
	return 0, fmt.Errorf("unknown sharing class %q", s)
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

// symExpr parses "sym", "sym+N" or "sym-N".
func symExpr(s string) (string, int32, bool) {
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			off, err := parseInt(s[i:])
			if err != nil {
				return "", 0, false
			}
			name := s[:i]
			if !isIdent(name) {
				return "", 0, false
			}
			return name, int32(off), true
		}
	}
	if !isIdent(s) {
		return "", 0, false
	}
	return s, 0, true
}

func (a *asm) dataWord(arg string) error {
	for uint32(len(a.data))%4 != 0 {
		a.data = append(a.data, 0)
	}
	if v, err := parseInt(arg); err == nil {
		var w [4]byte
		binary.BigEndian.PutUint32(w[:], uint32(v))
		a.data = append(a.data, w[:]...)
		return nil
	}
	sym, addend, ok := symExpr(arg)
	if !ok {
		return a.errf(".word: bad expression %q", arg)
	}
	off := uint32(len(a.data))
	a.data = append(a.data, 0, 0, 0, 0)
	a.fixups = append(a.fixups, pending{
		line: a.line, section: objfile.SecData, offset: off,
		kind: objfile.RelWord32, sym: sym, addend: addend,
	})
	return nil
}

// ---- instruction assembly ------------------------------------------------

func (a *asm) emit(w uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], w)
	a.text = append(a.text, b[:]...)
}

func (a *asm) reg(s string) (int, error) {
	if !strings.HasPrefix(s, "$") {
		return 0, a.errf("expected register, got %q", s)
	}
	body := s[1:]
	if n, ok := RegNames[body]; ok {
		return n, nil
	}
	n, err := strconv.Atoi(body)
	if err != nil || n < 0 || n > 31 {
		return 0, a.errf("bad register %q", s)
	}
	return n, nil
}

// immKind classifies an immediate operand.
type immOperand struct {
	value  uint16
	reloc  objfile.RelType // RelHi16/RelLo16, or 0xFF for none
	sym    string
	addend int32
}

const noReloc objfile.RelType = 0xFF

func (a *asm) imm(s string) (immOperand, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		sym, add, ok := symExpr(s[4 : len(s)-1])
		if !ok {
			return immOperand{}, a.errf("bad %%hi expression %q", s)
		}
		return immOperand{reloc: objfile.RelHi16, sym: sym, addend: add}, nil
	}
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		sym, add, ok := symExpr(s[4 : len(s)-1])
		if !ok {
			return immOperand{}, a.errf("bad %%lo expression %q", s)
		}
		return immOperand{reloc: objfile.RelLo16, sym: sym, addend: add}, nil
	}
	v, err := parseInt(s)
	if err != nil {
		return immOperand{}, a.errf("bad immediate %q", s)
	}
	if v < -32768 || v > 65535 {
		return immOperand{}, a.errf("immediate %d out of 16-bit range", v)
	}
	return immOperand{value: uint16(v), reloc: noReloc}, nil
}

// memOperand parses "off($reg)" where off may be empty, a number, or %lo(sym).
func (a *asm) mem(s string) (immOperand, int, error) {
	open := strings.LastIndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return immOperand{}, 0, a.errf("bad memory operand %q", s)
	}
	base, err := a.reg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return immOperand{}, 0, err
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return immOperand{reloc: noReloc}, base, nil
	}
	imm, err := a.imm(offStr)
	if err != nil {
		return immOperand{}, 0, err
	}
	return imm, base, nil
}

func (a *asm) emitImm(op, rt, rs int, imm immOperand) {
	if imm.reloc != noReloc {
		a.fixups = append(a.fixups, pending{
			line: a.line, section: objfile.SecText, offset: uint32(len(a.text)),
			kind: imm.reloc, sym: imm.sym, addend: imm.addend,
		})
	}
	a.emit(EncodeI(op, rt, rs, imm.value))
}

func (a *asm) instruction(line string) error {
	sp := strings.IndexAny(line, " \t")
	mn := line
	rest := ""
	if sp >= 0 {
		mn = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	mn = strings.ToLower(mn)
	args := splitArgs(rest)

	need := func(n int) error {
		if len(args) != n {
			return a.errf("%s needs %d operands, got %d", mn, n, len(args))
		}
		return nil
	}

	switch mn {
	case "nop":
		a.emit(Nop)
		return nil
	case "halt":
		a.emit(uint32(OpHALT) << 26)
		return nil
	case "syscall":
		a.emit(EncodeR(FnSYSCALL, 0, 0, 0, 0))
		return nil
	case "break":
		a.emit(EncodeR(FnBREAK, 0, 0, 0, 0))
		return nil

	case "sllv", "srlv", "srav":
		// rd, rt (value), rs (shift amount), per MIPS.
		if err := need(3); err != nil {
			return err
		}
		fn := map[string]int{"sllv": FnSLLV, "srlv": FnSRLV, "srav": FnSRAV}[mn]
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(args[1])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[2])
		if err != nil {
			return err
		}
		a.emit(EncodeR(fn, rd, rs, rt, 0))
		return nil

	case "add", "addu", "sub", "subu", "and", "or", "xor", "nor", "slt", "sltu", "mul", "div":
		if err := need(3); err != nil {
			return err
		}
		fn := map[string]int{
			"add": FnADD, "addu": FnADDU, "sub": FnSUB, "subu": FnSUBU,
			"and": FnAND, "or": FnOR, "xor": FnXOR, "nor": FnNOR,
			"slt": FnSLT, "sltu": FnSLTU, "mul": FnMUL, "div": FnDIV,
		}[mn]
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		rt, err := a.reg(args[2])
		if err != nil {
			return err
		}
		a.emit(EncodeR(fn, rd, rs, rt, 0))
		return nil

	case "sll", "srl", "sra":
		if err := need(3); err != nil {
			return err
		}
		fn := map[string]int{"sll": FnSLL, "srl": FnSRL, "sra": FnSRA}[mn]
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(args[1])
		if err != nil {
			return err
		}
		sh, err := parseInt(args[2])
		if err != nil || sh < 0 || sh > 31 {
			return a.errf("bad shift amount %q", args[2])
		}
		a.emit(EncodeR(fn, rd, 0, rt, int(sh)))
		return nil

	case "jr":
		if err := need(1); err != nil {
			return err
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return err
		}
		a.emit(EncodeR(FnJR, 0, rs, 0, 0))
		return nil
	case "jalr":
		// jalr $rs  or  jalr $rd, $rs
		switch len(args) {
		case 1:
			rs, err := a.reg(args[0])
			if err != nil {
				return err
			}
			a.emit(EncodeR(FnJALR, RegRA, rs, 0, 0))
		case 2:
			rd, err := a.reg(args[0])
			if err != nil {
				return err
			}
			rs, err := a.reg(args[1])
			if err != nil {
				return err
			}
			a.emit(EncodeR(FnJALR, rd, rs, 0, 0))
		default:
			return a.errf("jalr needs 1 or 2 operands")
		}
		return nil

	case "addi", "addiu", "slti", "sltiu", "andi", "ori", "xori":
		if err := need(3); err != nil {
			return err
		}
		op := map[string]int{
			"addi": OpADDI, "addiu": OpADDIU, "slti": OpSLTI, "sltiu": OpSLTIU,
			"andi": OpANDI, "ori": OpORI, "xori": OpXORI,
		}[mn]
		rt, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		imm, err := a.imm(args[2])
		if err != nil {
			return err
		}
		a.emitImm(op, rt, rs, imm)
		return nil

	case "lui":
		if err := need(2); err != nil {
			return err
		}
		rt, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, err := a.imm(args[1])
		if err != nil {
			return err
		}
		a.emitImm(OpLUI, rt, 0, imm)
		return nil

	case "lw", "lb", "lbu", "sw", "sb":
		if err := need(2); err != nil {
			return err
		}
		op := map[string]int{"lw": OpLW, "lb": OpLB, "lbu": OpLBU, "sw": OpSW, "sb": OpSB}[mn]
		rt, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, base, err := a.mem(args[1])
		if err != nil {
			return err
		}
		if base == RegGP {
			// gp-relative addressing: mark the module and use a GPREL16
			// relocation so ldl can detect and reject it.
			a.usesGP = true
			if imm.reloc == objfile.RelLo16 {
				imm.reloc = objfile.RelGPRel16
			}
		}
		a.emitImm(op, rt, base, imm)
		return nil

	case "beq", "bne":
		if err := need(3); err != nil {
			return err
		}
		op := OpBEQ
		if mn == "bne" {
			op = OpBNE
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rt, err := a.reg(args[1])
		if err != nil {
			return err
		}
		return a.emitBranch(op, rt, rs, args[2])
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return err
		}
		op := OpBEQ
		if mn == "bnez" {
			op = OpBNE
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return err
		}
		return a.emitBranch(op, 0, rs, args[1])
	case "blez", "bgtz":
		if err := need(2); err != nil {
			return err
		}
		op := OpBLEZ
		if mn == "bgtz" {
			op = OpBGTZ
		}
		rs, err := a.reg(args[0])
		if err != nil {
			return err
		}
		return a.emitBranch(op, 0, rs, args[1])
	case "b":
		if err := need(1); err != nil {
			return err
		}
		return a.emitBranch(OpBEQ, 0, 0, args[0])

	case "j", "jal":
		if err := need(1); err != nil {
			return err
		}
		op := OpJ
		if mn == "jal" {
			op = OpJAL
		}
		if v, err := parseInt(args[0]); err == nil {
			// Absolute numeric target (as the disassembler prints): the
			// 26-bit field keeps only the target's low 28 bits, so it can
			// be encoded directly with no relocation.
			if v%4 != 0 {
				return a.errf("%s: target 0x%x not word-aligned", mn, v)
			}
			a.emit(EncodeJ(op, uint32(v)))
			return nil
		}
		sym, add, ok := symExpr(args[0])
		if !ok {
			return a.errf("bad jump target %q", args[0])
		}
		// Jump targets always get a JUMP26 relocation: even a local
		// target moves when the module is relocated.
		a.fixups = append(a.fixups, pending{
			line: a.line, section: objfile.SecText, offset: uint32(len(a.text)),
			kind: objfile.RelJump26, sym: sym, addend: add,
		})
		a.emit(EncodeJ(op, 0))
		return nil

	case "move":
		if err := need(2); err != nil {
			return err
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs, err := a.reg(args[1])
		if err != nil {
			return err
		}
		a.emit(EncodeR(FnOR, rd, rs, 0, 0))
		return nil

	case "li":
		if err := need(2); err != nil {
			return err
		}
		rt, err := a.reg(args[0])
		if err != nil {
			return err
		}
		v, err := parseInt(args[1])
		if err != nil {
			return a.errf("li: bad immediate %q", args[1])
		}
		u := uint32(v)
		a.emit(EncodeI(OpLUI, rt, 0, uint16(u>>16)))
		a.emit(EncodeI(OpORI, rt, rt, uint16(u)))
		return nil

	case "la":
		if err := need(2); err != nil {
			return err
		}
		rt, err := a.reg(args[0])
		if err != nil {
			return err
		}
		sym, add, ok := symExpr(args[1])
		if !ok {
			return a.errf("la: bad symbol %q", args[1])
		}
		a.fixups = append(a.fixups, pending{
			line: a.line, section: objfile.SecText, offset: uint32(len(a.text)),
			kind: objfile.RelHi16, sym: sym, addend: add,
		})
		a.emit(EncodeI(OpLUI, rt, 0, 0))
		a.fixups = append(a.fixups, pending{
			line: a.line, section: objfile.SecText, offset: uint32(len(a.text)),
			kind: objfile.RelLo16, sym: sym, addend: add,
		})
		a.emit(EncodeI(OpADDIU, rt, rt, 0))
		return nil
	}
	return a.errf("unknown instruction %q", mn)
}

func (a *asm) emitBranch(op, rt, rs int, target string) error {
	if v, err := parseInt(target); err == nil {
		// Absolute numeric target (as the disassembler prints), resolved
		// against the instruction's own text offset — i.e. the code is
		// assumed based at 0, matching DisassembleText(text, 0).
		off, ok := BranchOffset(uint32(len(a.text)), uint32(v))
		if !ok {
			return a.errf("branch target 0x%x out of range", v)
		}
		a.emit(EncodeI(op, rt, rs, off))
		return nil
	}
	if !isIdent(target) {
		return a.errf("bad branch target %q", target)
	}
	a.fixups = append(a.fixups, pending{
		line: a.line, section: objfile.SecText, offset: uint32(len(a.text)),
		kind: objfile.RelBranch16, sym: target, branch: true,
	})
	a.emit(EncodeI(op, rt, rs, 0))
	return nil
}

// ---- finalisation ----------------------------------------------------------

func (a *asm) finish() (*objfile.Object, error) {
	for uint32(len(a.text))%4 != 0 {
		a.text = append(a.text, 0)
	}
	o := &objfile.Object{
		Name:       a.name,
		UsesGP:     a.usesGP,
		Text:       a.text,
		Data:       a.data,
		BssSize:    a.bss,
		Deps:       a.deps,
		SearchPath: a.paths,
	}
	symIdx := map[string]int{}
	addSym := func(name string, ref symref, defined bool) int {
		if i, ok := symIdx[name]; ok {
			return i
		}
		s := objfile.Symbol{Name: name, Global: a.globals[name]}
		if defined {
			s.Section = ref.section
			s.Value = ref.offset
		} else {
			s.Global = true
		}
		o.Symbols = append(o.Symbols, s)
		symIdx[name] = len(o.Symbols) - 1
		return symIdx[name]
	}
	// Defined labels first, in deterministic order: text, data, bss by offset.
	type lab struct {
		name string
		ref  symref
	}
	var labs []lab
	for name, ref := range a.labels {
		labs = append(labs, lab{name, ref})
	}
	sort.Slice(labs, func(i, j int) bool {
		li, lj := labs[i], labs[j]
		if li.ref.section != lj.ref.section {
			return li.ref.section < lj.ref.section
		}
		if li.ref.offset != lj.ref.offset {
			return li.ref.offset < lj.ref.offset
		}
		return li.name < lj.name
	})
	for _, l := range labs {
		addSym(l.name, l.ref, true)
	}
	for _, e := range a.externs {
		if _, defined := a.labels[e]; !defined {
			addSym(e, symref{}, false)
		}
	}
	// Resolve fixups.
	for _, fx := range a.fixups {
		a.line = fx.line
		if fx.branch {
			ref, ok := a.labels[fx.sym]
			if !ok {
				return nil, a.errf("branch to undefined label %q (branches cannot cross modules)", fx.sym)
			}
			if ref.section != objfile.SecText {
				return nil, a.errf("branch target %q not in .text", fx.sym)
			}
			off, repOK := BranchOffset(fx.offset, ref.offset)
			if !repOK {
				return nil, a.errf("branch to %q out of range", fx.sym)
			}
			w := binary.BigEndian.Uint32(a.text[fx.offset:])
			binary.BigEndian.PutUint32(o.Text[fx.offset:], PatchImm16(w, off))
			continue
		}
		idx := addSym(fx.sym, a.labels[fx.sym], false)
		if ref, ok := a.labels[fx.sym]; ok {
			idx = addSym(fx.sym, ref, true)
		}
		o.Relocs = append(o.Relocs, objfile.Reloc{
			Section: fx.section,
			Offset:  fx.offset,
			Sym:     idx,
			Type:    fx.kind,
			Addend:  fx.addend,
		})
	}
	// Globals with no definition and no reference still become externs.
	for g := range a.globals {
		if _, ok := a.labels[g]; !ok {
			addSym(g, symref{}, false)
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}
