package isa

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Disassemble renders one instruction word executed at pc.
func Disassemble(w, pc uint32) string {
	in := Decode(w)
	r := func(n int) string { return "$" + regName(n) }
	switch in.Op {
	case OpSpecial:
		switch in.Fn {
		case FnSLL:
			if w == 0 {
				return "nop"
			}
			return fmt.Sprintf("sll %s, %s, %d", r(in.RD), r(in.RT), in.Shamt)
		case FnSRL:
			return fmt.Sprintf("srl %s, %s, %d", r(in.RD), r(in.RT), in.Shamt)
		case FnSRA:
			return fmt.Sprintf("sra %s, %s, %d", r(in.RD), r(in.RT), in.Shamt)
		case FnSLLV:
			// MIPS operand order: rd, rt (value), rs (shift amount) — the
			// order the assembler parses.
			return fmt.Sprintf("sllv %s, %s, %s", r(in.RD), r(in.RT), r(in.RS))
		case FnSRLV:
			return fmt.Sprintf("srlv %s, %s, %s", r(in.RD), r(in.RT), r(in.RS))
		case FnSRAV:
			return fmt.Sprintf("srav %s, %s, %s", r(in.RD), r(in.RT), r(in.RS))
		case FnJR:
			return fmt.Sprintf("jr %s", r(in.RS))
		case FnJALR:
			return fmt.Sprintf("jalr %s, %s", r(in.RD), r(in.RS))
		case FnSYSCALL:
			return "syscall"
		case FnBREAK:
			return "break"
		case FnMUL:
			return fmt.Sprintf("mul %s, %s, %s", r(in.RD), r(in.RS), r(in.RT))
		case FnDIV:
			return fmt.Sprintf("div %s, %s, %s", r(in.RD), r(in.RS), r(in.RT))
		case FnADD, FnADDU, FnSUB, FnSUBU, FnAND, FnOR, FnXOR, FnNOR, FnSLT, FnSLTU:
			name := map[int]string{
				FnADD: "add", FnADDU: "addu", FnSUB: "sub", FnSUBU: "subu",
				FnAND: "and", FnOR: "or", FnXOR: "xor", FnNOR: "nor",
				FnSLT: "slt", FnSLTU: "sltu",
			}[in.Fn]
			if in.Fn == FnOR && in.RT == 0 {
				return fmt.Sprintf("move %s, %s", r(in.RD), r(in.RS))
			}
			return fmt.Sprintf("%s %s, %s, %s", name, r(in.RD), r(in.RS), r(in.RT))
		}
		return fmt.Sprintf(".word 0x%08x", w)
	case OpJ:
		return fmt.Sprintf("j 0x%08x", Jump26Target(w, pc))
	case OpJAL:
		return fmt.Sprintf("jal 0x%08x", Jump26Target(w, pc))
	case OpBEQ:
		if in.RS == 0 && in.RT == 0 {
			return fmt.Sprintf("b 0x%08x", BranchTarget(pc, in.Imm))
		}
		return fmt.Sprintf("beq %s, %s, 0x%08x", r(in.RS), r(in.RT), BranchTarget(pc, in.Imm))
	case OpBNE:
		return fmt.Sprintf("bne %s, %s, 0x%08x", r(in.RS), r(in.RT), BranchTarget(pc, in.Imm))
	case OpBLEZ:
		return fmt.Sprintf("blez %s, 0x%08x", r(in.RS), BranchTarget(pc, in.Imm))
	case OpBGTZ:
		return fmt.Sprintf("bgtz %s, 0x%08x", r(in.RS), BranchTarget(pc, in.Imm))
	case OpADDI, OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI:
		name := map[int]string{
			OpADDI: "addi", OpADDIU: "addiu", OpSLTI: "slti", OpSLTIU: "sltiu",
			OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
		}[in.Op]
		return fmt.Sprintf("%s %s, %s, %d", name, r(in.RT), r(in.RS), int16(in.Imm))
	case OpLUI:
		return fmt.Sprintf("lui %s, 0x%04x", r(in.RT), in.Imm)
	case OpLB, OpLBU, OpLW, OpSB, OpSW:
		name := map[int]string{OpLB: "lb", OpLBU: "lbu", OpLW: "lw", OpSB: "sb", OpSW: "sw"}[in.Op]
		return fmt.Sprintf("%s %s, %d(%s)", name, r(in.RT), int16(in.Imm), r(in.RS))
	case OpHALT:
		return "halt"
	}
	return fmt.Sprintf(".word 0x%08x", w)
}

// DisassembleText renders a whole text section with addresses, one
// instruction per line.
func DisassembleText(text []byte, base uint32) string {
	var sb strings.Builder
	for off := 0; off+4 <= len(text); off += 4 {
		pc := base + uint32(off)
		w := binary.BigEndian.Uint32(text[off:])
		fmt.Fprintf(&sb, "%08x:  %08x  %s\n", pc, w, Disassemble(w, pc))
	}
	return sb.String()
}
