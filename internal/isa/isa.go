// Package isa defines R3K-lite, the simulated 32-bit RISC architecture of
// the reproduction, together with an assembler and disassembler.
//
// R3K-lite keeps exactly the properties of the MIPS R3000 that the paper's
// linkers must cope with:
//
//   - absolute addresses are materialised with LUI/ORI pairs, so the
//     linkers patch HI16/LO16 relocation pairs (with carry adjustment);
//   - J/JAL carry a 26-bit word target and can only reach addresses that
//     share the top 4 bits of PC+4 — the "28-bit addressing limit on the
//     processor's jump instructions" for which lds and ldl must substitute
//     trampolines ("jumps to new, nearby code fragments that load the
//     appropriate target address into a register and jump indirectly");
//   - an optional global-pointer register with 16-bit offsets, which is
//     "incompatible with a large sparse address space", so ldl insists
//     that modules be compiled with gp disabled.
//
// Unlike the R3000 there are no branch delay slots; this simplifies the
// interpreter without changing anything the linkers care about.
package isa

import "fmt"

// Register numbers, MIPS calling convention.
const (
	RegZero = 0 // hardwired zero
	RegAT   = 1 // assembler temporary (used by trampolines)
	RegV0   = 2 // return value / syscall number
	RegV1   = 3 // second return value / errno
	RegA0   = 4 // first argument
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegT0   = 8
	RegT9   = 25
	RegGP   = 28 // global pointer (disabled for shared modules)
	RegSP   = 29 // stack pointer
	RegFP   = 30 // frame pointer
	RegRA   = 31 // return address
)

// RegNames maps conventional register names to numbers.
var RegNames = map[string]int{
	"zero": 0, "at": 1, "v0": 2, "v1": 3,
	"a0": 4, "a1": 5, "a2": 6, "a3": 7,
	"t0": 8, "t1": 9, "t2": 10, "t3": 11, "t4": 12, "t5": 13, "t6": 14, "t7": 15,
	"s0": 16, "s1": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"t8": 24, "t9": 25, "k0": 26, "k1": 27,
	"gp": 28, "sp": 29, "fp": 30, "ra": 31,
}

// regName returns the conventional name for a register number.
func regName(r int) string {
	for name, n := range RegNames {
		if n == r {
			return name
		}
	}
	return fmt.Sprintf("r%d", r)
}

// Primary opcodes (6-bit op field).
const (
	OpSpecial = 0
	OpJ       = 2
	OpJAL     = 3
	OpBEQ     = 4
	OpBNE     = 5
	OpBLEZ    = 6
	OpBGTZ    = 7
	OpADDI    = 8
	OpADDIU   = 9
	OpSLTI    = 10
	OpSLTIU   = 11
	OpANDI    = 12
	OpORI     = 13
	OpXORI    = 14
	OpLUI     = 15
	OpLB      = 32
	OpLW      = 35
	OpLBU     = 36
	OpSB      = 40
	OpSW      = 43
	OpHALT    = 63 // R3K-lite extension: stop the processor
)

// SPECIAL function codes (funct field when op == OpSpecial).
const (
	FnSLL     = 0
	FnSRL     = 2
	FnSRA     = 3
	FnSLLV    = 4
	FnSRLV    = 6
	FnSRAV    = 7
	FnJR      = 8
	FnJALR    = 9
	FnSYSCALL = 12
	FnBREAK   = 13
	FnMUL     = 24 // R3K-lite: rd = rs * rt (no HI/LO)
	FnDIV     = 26 // R3K-lite: rd = rs / rt (signed; divide by zero traps)
	FnADD     = 32
	FnADDU    = 33
	FnSUB     = 34
	FnSUBU    = 35
	FnAND     = 36
	FnOR      = 37
	FnXOR     = 38
	FnNOR     = 39
	FnSLT     = 42
	FnSLTU    = 43
)

// JumpRegionMask selects the bits of PC+4 that a J/JAL target must share:
// the top 4 bits, leaving a 28-bit (256 MB) reachable region.
const JumpRegionMask uint32 = 0xF0000000

// Field extraction.
func opOf(w uint32) int    { return int(w >> 26) }
func rsOf(w uint32) int    { return int(w >> 21 & 31) }
func rtOf(w uint32) int    { return int(w >> 16 & 31) }
func rdOf(w uint32) int    { return int(w >> 11 & 31) }
func shamtOf(w uint32) int { return int(w >> 6 & 31) }
func fnOf(w uint32) int    { return int(w & 63) }
func immOf(w uint32) uint16 {
	return uint16(w)
}
func targetOf(w uint32) uint32 { return w & 0x03FFFFFF }

// EncodeR encodes an R-type (SPECIAL) instruction.
func EncodeR(fn, rd, rs, rt, shamt int) uint32 {
	return uint32(rs&31)<<21 | uint32(rt&31)<<16 | uint32(rd&31)<<11 | uint32(shamt&31)<<6 | uint32(fn&63)
}

// EncodeI encodes an I-type instruction.
func EncodeI(op, rt, rs int, imm uint16) uint32 {
	return uint32(op&63)<<26 | uint32(rs&31)<<21 | uint32(rt&31)<<16 | uint32(imm)
}

// EncodeJ encodes a J-type instruction with a byte target address; the
// target's word address is truncated to 26 bits.
func EncodeJ(op int, target uint32) uint32 {
	return uint32(op&63)<<26 | (target>>2)&0x03FFFFFF
}

// JumpReach reports whether a J/JAL at pc can encode a jump to target.
func JumpReach(pc, target uint32) bool {
	return (pc+4)&JumpRegionMask == target&JumpRegionMask
}

// PatchJump26 rewrites the 26-bit target field of a J/JAL word to point at
// target (a byte address).
func PatchJump26(w, target uint32) uint32 {
	return w&0xFC000000 | (target>>2)&0x03FFFFFF
}

// Jump26Target extracts the byte target of a J/JAL word executed at pc.
func Jump26Target(w, pc uint32) uint32 {
	return (pc+4)&JumpRegionMask | targetOf(w)<<2
}

// PatchImm16 rewrites the 16-bit immediate field of an I-type word.
func PatchImm16(w uint32, imm uint16) uint32 {
	return w&0xFFFF0000 | uint32(imm)
}

// Hi16 returns the %hi() half of addr, adjusted so that a sign-extending
// %lo() addition reconstructs addr (the MIPS carry rule).
func Hi16(addr uint32) uint16 {
	return uint16((addr + 0x8000) >> 16)
}

// Lo16 returns the %lo() half of addr.
func Lo16(addr uint32) uint16 {
	return uint16(addr)
}

// ComposeHiLo reconstructs an address from its Hi16/Lo16 halves the way the
// hardware does: (hi << 16) + sign-extended lo.
func ComposeHiLo(hi, lo uint16) uint32 {
	return uint32(hi)<<16 + uint32(int32(int16(lo)))
}

// Inst is a decoded instruction.
type Inst struct {
	Word  uint32
	Op    int
	Fn    int // valid when Op == OpSpecial
	RS    int
	RT    int
	RD    int
	Shamt int
	Imm   uint16 // I-type immediate
	// Target is the 26-bit word target field (J-type), NOT shifted.
	Target uint32
}

// Decode decodes an instruction word.
func Decode(w uint32) Inst {
	return Inst{
		Word:   w,
		Op:     opOf(w),
		Fn:     fnOf(w),
		RS:     rsOf(w),
		RT:     rtOf(w),
		RD:     rdOf(w),
		Shamt:  shamtOf(w),
		Imm:    immOf(w),
		Target: targetOf(w),
	}
}

// SignExt sign-extends a 16-bit immediate.
func SignExt(imm uint16) uint32 { return uint32(int32(int16(imm))) }

// BranchTarget returns the destination of a taken branch at pc with the
// given immediate (word offset relative to pc+4).
func BranchTarget(pc uint32, imm uint16) uint32 {
	return pc + 4 + SignExt(imm)<<2
}

// BranchOffset computes the 16-bit word offset for a branch at pc to
// target, reporting whether it is representable.
func BranchOffset(pc, target uint32) (uint16, bool) {
	diff := int64(int32(target)) - int64(int32(pc+4))
	if diff%4 != 0 {
		return 0, false
	}
	words := diff / 4
	if words < -32768 || words > 32767 {
		return 0, false
	}
	return uint16(int16(words)), true
}

// Nop is the canonical no-op (sll $zero, $zero, 0).
const Nop uint32 = 0

// TrampolineWords returns the code fragment the linkers substitute for an
// over-long jump: load the 32-bit target into $at and jump through it.
// Link reports whether the fragment must preserve $ra semantics (JAL).
//
//	lui  $at, %hi(target)
//	ori  $at, $at, %lo(target)
//	jr   $at            (or jalr $ra, $at for calls)
func TrampolineWords(target uint32, link bool) []uint32 {
	// Use unsigned composition for the trampoline (ORI does not sign
	// extend), so hi is the plain top half.
	hi := uint16(target >> 16)
	lo := uint16(target)
	jump := EncodeR(FnJR, 0, RegAT, 0, 0)
	if link {
		jump = EncodeR(FnJALR, RegRA, RegAT, 0, 0)
	}
	return []uint32{
		EncodeI(OpLUI, RegAT, 0, hi),
		EncodeI(OpORI, RegAT, RegAT, lo),
		jump,
	}
}

// TrampolineSize is the byte size of a trampoline fragment.
const TrampolineSize = 12
