package isa

import (
	"fmt"
	"strings"
	"testing"
)

// TestAssembleDisassembleRoundTrip feeds every disassembled form of a
// representative instruction set back through the assembler and checks the
// encodings match: the two tools agree on the ISA.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	words := []uint32{
		EncodeR(FnADD, 8, 9, 10, 0),
		EncodeR(FnADDU, 1, 2, 3, 0),
		EncodeR(FnSUB, 4, 5, 6, 0),
		EncodeR(FnSUBU, 7, 8, 9, 0),
		EncodeR(FnAND, 10, 11, 12, 0),
		EncodeR(FnOR, 13, 14, 15, 0),
		EncodeR(FnXOR, 16, 17, 18, 0),
		EncodeR(FnNOR, 19, 20, 21, 0),
		EncodeR(FnSLT, 22, 23, 24, 0),
		EncodeR(FnSLTU, 25, 26, 27, 0),
		EncodeR(FnMUL, 8, 9, 10, 0),
		EncodeR(FnDIV, 8, 9, 10, 0),
		EncodeR(FnSLL, 8, 0, 9, 5),
		EncodeR(FnSRL, 8, 0, 9, 31),
		EncodeR(FnSRA, 8, 0, 9, 1),
		EncodeR(FnJR, 0, 31, 0, 0),
		EncodeR(FnJALR, 31, 25, 0, 0),
		EncodeR(FnSYSCALL, 0, 0, 0, 0),
		EncodeI(OpADDI, 8, 9, 100),
		EncodeI(OpADDIU, 8, 9, 0xFF9C), // -100
		EncodeI(OpSLTI, 8, 9, 7),
		EncodeI(OpSLTIU, 8, 9, 7),
		EncodeI(OpANDI, 8, 9, 0xF0F0),
		EncodeI(OpORI, 8, 9, 0x1234),
		EncodeI(OpXORI, 8, 9, 0x00FF),
		EncodeI(OpLUI, 8, 0, 0x3010),
		EncodeI(OpLW, 8, 29, 16),
		EncodeI(OpLB, 8, 29, 0xFFFF), // -1
		EncodeI(OpLBU, 8, 29, 3),
		EncodeI(OpSW, 8, 29, 8),
		EncodeI(OpSB, 8, 29, 1),
		uint32(OpHALT) << 26,
		Nop,
	}
	for _, w := range words {
		text := Disassemble(w, 0x1000)
		// Normalise pseudo-forms the disassembler prefers.
		src := ".text\n " + text + "\n"
		o, err := Assemble("rt.s", src)
		if err != nil {
			t.Errorf("%08x -> %q does not re-assemble: %v", w, text, err)
			continue
		}
		if len(o.Text) < 4 {
			t.Errorf("%q produced no code", text)
			continue
		}
		got := be32(o.Text, 0)
		// move/nop normalisation may change encodings but must stay
		// semantically identical; compare decoded fields for those.
		if got != w {
			a, b := Decode(got), Decode(w)
			if a.Op != b.Op || a.Fn != b.Fn {
				t.Errorf("%q: %08x -> %08x", text, w, got)
			}
		}
	}
}

// TestBranchDisassemblyShowsTargets sanity-checks branch text.
func TestBranchDisassemblyShowsTargets(t *testing.T) {
	w := EncodeI(OpBNE, 9, 8, 0xFFFE) // -2 words
	got := Disassemble(w, 0x1008)
	if !strings.Contains(got, "0x00001004") {
		t.Fatalf("bne target: %q", got)
	}
	w = EncodeI(OpBLEZ, 0, 8, 4)
	if got := Disassemble(w, 0x1000); !strings.Contains(got, "0x00001014") {
		t.Fatalf("blez target: %q", got)
	}
}

// TestAllOpcodesHaveNames ensures the disassembler never renders a valid
// assembler-producible instruction as raw .word.
func TestAllOpcodesHaveNames(t *testing.T) {
	srcs := []string{
		"add $t0, $t1, $t2", "sllv $t0, $t1, $t2", "srav $t0, $t1, $t2",
		"beq $t0, $t1, l", "bgtz $t0, l", "break",
	}
	for _, s := range srcs {
		src := ".text\nl: " + s + "\n"
		o, err := Assemble("n.s", src)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		text := Disassemble(be32(o.Text, 0), 0)
		if strings.HasPrefix(text, ".word") {
			t.Errorf("%q disassembles to %q", s, text)
		}
	}
}

func TestJumpRegionBoundaryValues(t *testing.T) {
	// The extreme encodable targets within a region.
	base := uint32(0x30000000)
	for _, target := range []uint32{base, base + 4, base + 0x0FFFFFFC} {
		w := PatchJump26(EncodeJ(OpJ, 0), target)
		if got := Jump26Target(w, base+0x1000); got != target {
			t.Errorf("target 0x%08x round-trips to 0x%08x", target, got)
		}
	}
}

// TestDisassembleTextAddressesProgress ensures per-line PCs advance.
func TestDisassembleTextAddressesProgress(t *testing.T) {
	o, err := Assemble("p.s", ".text\n nop\n nop\n nop\n")
	if err != nil {
		t.Fatal(err)
	}
	out := DisassembleText(o.Text, 0x400000)
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf("%08x", 0x400000+4*i)
		if !strings.Contains(out, want) {
			t.Fatalf("missing address %s:\n%s", want, out)
		}
	}
}
