package shalloc

import (
	"errors"
	"math/rand"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/mem"
)

const (
	segBase uint32 = 0x30100000
	segSize uint32 = 64 * 1024
)

func newHeap(t *testing.T) (*Heap, *addrspace.Space) {
	t.Helper()
	as := addrspace.New(mem.NewPhysical(0))
	if err := as.MapAnon(segBase, segSize, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	h, err := Init(as, segBase, segSize)
	if err != nil {
		t.Fatal(err)
	}
	return h, as
}

func TestAllocFree(t *testing.T) {
	h, _ := newHeap(t)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if a%8 != 0 || b%8 != 0 {
		t.Fatalf("unaligned payloads 0x%x 0x%x", a, b)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	st, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.UsedBytes != 0 {
		t.Fatalf("used = %d after freeing all", st.UsedBytes)
	}
	if st.FreeBlocks != 1 {
		t.Fatalf("free blocks = %d, want 1 (coalesced)", st.FreeBlocks)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationsAreWritable(t *testing.T) {
	h, as := newHeap(t)
	a, _ := h.Alloc(16)
	if err := as.StoreWord(a, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreWord(a+12, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.LoadWord(a); v != 0xDEAD {
		t.Fatal("payload not stored")
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	h, _ := newHeap(t)
	a, _ := h.Alloc(32)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); !errors.Is(err, ErrBadFree) {
		t.Fatalf("double free: %v", err)
	}
}

func TestFreeBogusAddressRejected(t *testing.T) {
	h, _ := newHeap(t)
	if err := h.Free(segBase + segSize + 100); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds free: %v", err)
	}
	a, _ := h.Alloc(32)
	if err := h.Free(a + 8); !errors.Is(err, ErrBadFree) {
		t.Fatalf("interior free: %v", err)
	}
}

func TestExhaustion(t *testing.T) {
	h, _ := newHeap(t)
	var allocs []uint32
	for {
		a, err := h.Alloc(1024)
		if err != nil {
			if !errors.Is(err, ErrNoSpace) {
				t.Fatal(err)
			}
			break
		}
		allocs = append(allocs, a)
	}
	if len(allocs) < 50 {
		t.Fatalf("only %d KB-size blocks fit in a 64 KB segment", len(allocs))
	}
	// Free everything; space is fully recovered.
	for _, a := range allocs {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Alloc(segSize / 2); err != nil {
		t.Fatalf("large alloc after full free failed: %v", err)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingBothDirections(t *testing.T) {
	h, _ := newHeap(t)
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	c, _ := h.Alloc(64)
	_, _ = h.Alloc(64) // guard so c doesn't merge with the wilderness
	// Free a and c (non-adjacent), then b: all three must merge.
	h.Free(a)
	h.Free(c)
	st, _ := h.Stats()
	if st.FreeBlocks != 3 { // a, c, wilderness
		t.Fatalf("free blocks = %d, want 3", st.FreeBlocks)
	}
	h.Free(b)
	st, _ = h.Stats()
	if st.FreeBlocks != 2 { // merged a+b+c, wilderness
		t.Fatalf("free blocks after merge = %d, want 2", st.FreeBlocks)
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachSeesSameHeap(t *testing.T) {
	// Two handles (standing in for two processes mapping the same
	// segment) share all state, which lives in the segment.
	h1, as := newHeap(t)
	a, _ := h1.Alloc(128)
	h2, err := Attach(as, segBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h2.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("second handle reallocated a live block")
	}
	if err := h2.Free(a); err != nil {
		t.Fatalf("free through other handle: %v", err)
	}
	st, _ := h1.Stats()
	if st.FreeBlocks == 0 {
		t.Fatal("free not visible through first handle")
	}
}

func TestInitRefusesClobber(t *testing.T) {
	_, as := newHeap(t)
	if _, err := Init(as, segBase, segSize); !errors.Is(err, ErrDoubleInit) {
		t.Fatalf("re-init: %v", err)
	}
	h, err := InitOrAttach(as, segBase, segSize)
	if err != nil || h == nil {
		t.Fatalf("InitOrAttach on existing heap: %v", err)
	}
}

func TestAttachRejectsRawSegment(t *testing.T) {
	as := addrspace.New(mem.NewPhysical(0))
	as.MapAnon(segBase, segSize, addrspace.ProtRW)
	if _, err := Attach(as, segBase); !errors.Is(err, ErrNotAHeap) {
		t.Fatalf("attach to raw segment: %v", err)
	}
}

func TestZeroAlloc(t *testing.T) {
	h, _ := newHeap(t)
	if _, err := h.Alloc(0); !errors.Is(err, ErrZeroAlloc) {
		t.Fatalf("zero alloc: %v", err)
	}
}

func TestTooSmallSegment(t *testing.T) {
	as := addrspace.New(mem.NewPhysical(0))
	as.MapAnon(segBase, 4096, addrspace.ProtRW)
	if _, err := Init(as, segBase, 16); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("tiny segment: %v", err)
	}
}

// Randomised invariant test: any interleaving of allocs and frees keeps
// the heap consistent and never double-hands-out memory.
func TestRandomisedInvariants(t *testing.T) {
	h, as := newHeap(t)
	rng := rand.New(rand.NewSource(42))
	live := map[uint32]uint32{} // payload -> size
	stamp := map[uint32]uint32{}
	for i := 0; i < 2000; i++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			n := uint32(rng.Intn(256) + 1)
			a, err := h.Alloc(n)
			if errors.Is(err, ErrNoSpace) {
				// Free something and continue.
				for p := range live {
					h.Free(p)
					delete(live, p)
					break
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			// No overlap with any live block.
			for p, sz := range live {
				if a < p+sz && p < a+n {
					t.Fatalf("overlap: new [0x%x,+%d) with [0x%x,+%d)", a, n, p, sz)
				}
			}
			v := rng.Uint32()
			as.StoreWord(a, v)
			live[a] = n
			stamp[a] = v
		} else {
			for p := range live {
				if got, _ := as.LoadWord(p); got != stamp[p] {
					t.Fatalf("payload 0x%x clobbered: %x != %x", p, got, stamp[p])
				}
				if err := h.Free(p); err != nil {
					t.Fatal(err)
				}
				delete(live, p)
				break
			}
		}
		if i%100 == 0 {
			if err := h.Check(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
	if err := h.Check(); err != nil {
		t.Fatal(err)
	}
}
