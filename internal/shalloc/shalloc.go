// Package shalloc is Hemlock's per-segment storage allocator: "a package
// designed to allocate space from the heaps associated with individual
// segments, instead of a heap associated with the calling program."
//
// The heap's entire state — free list included — lives inside the segment
// itself, expressed in absolute virtual addresses. Because a shared
// segment occupies the same virtual address in every protection domain,
// any process that maps the segment can attach to the heap and allocate or
// free, and the pointers it builds are meaningful to every other process.
// This is what lets the Hemlock version of xfig keep its pointer-rich
// object lists directly in a persistent segment.
//
// Layout (all words big-endian, addresses absolute):
//
//	base+0   magic "SHAL"
//	base+4   segment size
//	base+8   address of first free block (0 = none)
//	base+12  allocated byte count (statistics)
//	base+16  first block
//
// Each block: [size u32 | status u32] header followed by the payload.
// Free blocks keep the address of the next free block in their first
// payload word; the free list is address-ordered so adjacent free blocks
// can be coalesced.
package shalloc

import (
	"errors"
	"fmt"

	"hemlock/internal/obsv"
)

// Mem is the memory the heap lives in. kern.Process and addrspace.Space
// both satisfy it; accesses through kern.Process get fault handling, so
// attaching to a heap in an unmapped shared segment just works.
type Mem interface {
	LoadWord(addr uint32) (uint32, error)
	StoreWord(addr, val uint32) error
}

// Errors.
var (
	ErrNoSpace     = errors.New("shalloc: out of segment space")
	ErrBadFree     = errors.New("shalloc: free of unallocated or corrupt block")
	ErrNotAHeap    = errors.New("shalloc: segment does not contain a heap")
	ErrCorrupt     = errors.New("shalloc: heap metadata corrupt")
	ErrTooSmall    = errors.New("shalloc: segment too small for a heap")
	ErrDoubleInit  = errors.New("shalloc: segment already initialised")
	ErrZeroAlloc   = errors.New("shalloc: zero-size allocation")
	ErrOutOfBounds = errors.New("shalloc: address outside segment")
)

const (
	magic       = 0x5348414C // "SHAL"
	hdrMagic    = 0
	hdrSize     = 4
	hdrFreeHead = 8
	hdrUsed     = 12
	heapStart   = 16

	blockHdr   = 8 // size + status words
	minPayload = 8 // room for the free-list link and alignment

	statusFree  = 0xF4EEF4EE
	statusInUse = 0xA110CA7E
)

// Heap is a handle on a segment heap. The handle holds only the base
// address and the Mem to go through; all state is in the segment.
type Heap struct {
	m    Mem
	base uint32

	// Observability wiring (Observe); nil-safe when unwired.
	tracer            *obsv.Tracer
	ctrAlloc, ctrFree *obsv.Counter
	pid               int
}

// Observe wires the heap handle into the observability layer: allocations
// and frees flow to the counters, with trace events tagged pid when the
// tracer is enabled. Returns h for chaining.
func (h *Heap) Observe(tracer *obsv.Tracer, allocs, frees *obsv.Counter, pid int) *Heap {
	h.tracer, h.ctrAlloc, h.ctrFree, h.pid = tracer, allocs, frees, pid
	return h
}

// Init formats a heap across [base, base+size) and returns a handle. It
// refuses to clobber an existing heap (use Attach for that).
func Init(m Mem, base, size uint32) (*Heap, error) {
	if size < heapStart+blockHdr+minPayload {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooSmall, size)
	}
	if base%4 != 0 || size%4 != 0 {
		return nil, fmt.Errorf("shalloc: base/size must be word aligned")
	}
	if w, err := m.LoadWord(base + hdrMagic); err == nil && w == magic {
		return nil, ErrDoubleInit
	} else if err != nil {
		return nil, err
	}
	first := base + heapStart
	firstSize := size - heapStart - blockHdr
	if err := storeAll(m, map[uint32]uint32{
		base + hdrMagic:    magic,
		base + hdrSize:     size,
		base + hdrFreeHead: first,
		base + hdrUsed:     0,
		first:              firstSize,
		first + 4:          statusFree,
		first + blockHdr:   0, // next free
	}); err != nil {
		return nil, err
	}
	return &Heap{m: m, base: base}, nil
}

// Attach opens an existing heap at base.
func Attach(m Mem, base uint32) (*Heap, error) {
	w, err := m.LoadWord(base + hdrMagic)
	if err != nil {
		return nil, err
	}
	if w != magic {
		return nil, fmt.Errorf("%w: at 0x%08x", ErrNotAHeap, base)
	}
	return &Heap{m: m, base: base}, nil
}

// InitOrAttach attaches if a heap exists, initialising otherwise: the
// first process to touch a fresh segment formats it.
func InitOrAttach(m Mem, base, size uint32) (*Heap, error) {
	h, err := Attach(m, base)
	if err == nil {
		return h, nil
	}
	if errors.Is(err, ErrNotAHeap) {
		return Init(m, base, size)
	}
	return nil, err
}

func storeAll(m Mem, words map[uint32]uint32) error {
	for a, v := range words {
		if err := m.StoreWord(a, v); err != nil {
			return err
		}
	}
	return nil
}

// Base returns the heap's segment base address.
func (h *Heap) Base() uint32 { return h.base }

func (h *Heap) segSize() (uint32, error) { return h.m.LoadWord(h.base + hdrSize) }

func align8(v uint32) uint32 { return (v + 7) &^ 7 }

// Alloc allocates n bytes (rounded up to 8) and returns the payload's
// absolute address. First-fit with block splitting.
func (h *Heap) Alloc(n uint32) (uint32, error) {
	if n == 0 {
		return 0, ErrZeroAlloc
	}
	n = align8(n)
	if n < minPayload {
		n = minPayload
	}
	sp := h.tracer.Begin("shalloc", "alloc", h.pid, "")
	granted := uint64(0)
	defer func() { sp.End(granted) }()
	var prev uint32 // address of the free-list link pointing at cur (0 = head)
	cur, err := h.m.LoadWord(h.base + hdrFreeHead)
	if err != nil {
		return 0, err
	}
	for cur != 0 {
		size, err := h.m.LoadWord(cur)
		if err != nil {
			return 0, err
		}
		status, err := h.m.LoadWord(cur + 4)
		if err != nil {
			return 0, err
		}
		if status != statusFree {
			return 0, fmt.Errorf("%w: free list hits non-free block at 0x%08x", ErrCorrupt, cur)
		}
		next, err := h.m.LoadWord(cur + blockHdr)
		if err != nil {
			return 0, err
		}
		if size >= n {
			// Split if the remainder can hold a block.
			if size >= n+blockHdr+minPayload {
				rest := cur + blockHdr + n
				if err := storeAll(h.m, map[uint32]uint32{
					rest:     size - n - blockHdr,
					rest + 4: statusFree,
					rest + 8: next,
					cur:      n,
				}); err != nil {
					return 0, err
				}
				next = rest
			}
			if err := h.setLink(prev, next); err != nil {
				return 0, err
			}
			if err := h.m.StoreWord(cur+4, statusInUse); err != nil {
				return 0, err
			}
			sz, _ := h.m.LoadWord(cur)
			used, _ := h.m.LoadWord(h.base + hdrUsed)
			if err := h.m.StoreWord(h.base+hdrUsed, used+sz); err != nil {
				return 0, err
			}
			h.ctrAlloc.Inc()
			granted = uint64(sz)
			if h.tracer.Enabled() {
				h.tracer.Emit(obsv.Event{Subsys: "shalloc", Name: "alloc_at", PID: h.pid, Addr: cur + blockHdr, Val: uint64(sz)})
			}
			return cur + blockHdr, nil
		}
		prev, cur = cur+blockHdr, next
	}
	return 0, fmt.Errorf("%w: %d bytes requested", ErrNoSpace, n)
}

// setLink writes the free-list link at linkAddr (0 means the head).
func (h *Heap) setLink(linkAddr, val uint32) error {
	if linkAddr == 0 {
		return h.m.StoreWord(h.base+hdrFreeHead, val)
	}
	return h.m.StoreWord(linkAddr, val)
}

// Free returns the block whose payload starts at addr to the free list,
// coalescing with adjacent free blocks.
func (h *Heap) Free(addr uint32) error {
	segSize, err := h.segSize()
	if err != nil {
		return err
	}
	blk := addr - blockHdr
	if addr < h.base+heapStart+blockHdr || addr >= h.base+segSize {
		return fmt.Errorf("%w: 0x%08x", ErrOutOfBounds, addr)
	}
	status, err := h.m.LoadWord(blk + 4)
	if err != nil {
		return err
	}
	if status != statusInUse {
		return fmt.Errorf("%w: 0x%08x (status 0x%08x)", ErrBadFree, addr, status)
	}
	size, err := h.m.LoadWord(blk)
	if err != nil {
		return err
	}
	used, _ := h.m.LoadWord(h.base + hdrUsed)
	if err := h.m.StoreWord(h.base+hdrUsed, used-size); err != nil {
		return err
	}
	h.ctrFree.Inc()
	if h.tracer.Enabled() {
		h.tracer.Emit(obsv.Event{Subsys: "shalloc", Name: "free", PID: h.pid, Addr: addr, Val: uint64(size)})
	}
	// Insert address-ordered.
	var prevBlk, prevLink uint32
	cur, err := h.m.LoadWord(h.base + hdrFreeHead)
	if err != nil {
		return err
	}
	for cur != 0 && cur < blk {
		next, err := h.m.LoadWord(cur + blockHdr)
		if err != nil {
			return err
		}
		prevBlk, prevLink = cur, cur+blockHdr
		cur = next
	}
	if err := h.m.StoreWord(blk+4, statusFree); err != nil {
		return err
	}
	if err := h.m.StoreWord(blk+blockHdr, cur); err != nil {
		return err
	}
	if err := h.setLink(prevLink, blk); err != nil {
		return err
	}
	// Coalesce forward (blk + next).
	if cur != 0 && blk+blockHdr+size == cur {
		curSize, err := h.m.LoadWord(cur)
		if err != nil {
			return err
		}
		curNext, err := h.m.LoadWord(cur + blockHdr)
		if err != nil {
			return err
		}
		size += blockHdr + curSize
		if err := h.m.StoreWord(blk, size); err != nil {
			return err
		}
		if err := h.m.StoreWord(blk+blockHdr, curNext); err != nil {
			return err
		}
	}
	// Coalesce backward (prev + blk).
	if prevBlk != 0 {
		prevSize, err := h.m.LoadWord(prevBlk)
		if err != nil {
			return err
		}
		if prevBlk+blockHdr+prevSize == blk {
			blkNext, err := h.m.LoadWord(blk + blockHdr)
			if err != nil {
				return err
			}
			if err := h.m.StoreWord(prevBlk, prevSize+blockHdr+size); err != nil {
				return err
			}
			if err := h.m.StoreWord(prevBlk+blockHdr, blkNext); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats describes heap occupancy.
type Stats struct {
	SegmentSize uint32
	UsedBytes   uint32
	FreeBytes   uint32
	FreeBlocks  int
}

// Stats walks the free list and reports occupancy.
func (h *Heap) Stats() (Stats, error) {
	var st Stats
	var err error
	if st.SegmentSize, err = h.segSize(); err != nil {
		return st, err
	}
	if st.UsedBytes, err = h.m.LoadWord(h.base + hdrUsed); err != nil {
		return st, err
	}
	cur, err := h.m.LoadWord(h.base + hdrFreeHead)
	if err != nil {
		return st, err
	}
	for cur != 0 {
		size, err := h.m.LoadWord(cur)
		if err != nil {
			return st, err
		}
		st.FreeBytes += size
		st.FreeBlocks++
		if cur, err = h.m.LoadWord(cur + blockHdr); err != nil {
			return st, err
		}
		if st.FreeBlocks > 1<<20 {
			return st, fmt.Errorf("%w: free list cycle", ErrCorrupt)
		}
	}
	return st, nil
}

// Check validates heap invariants: the free list is address-ordered,
// within bounds, and contains only free blocks with no adjacent pairs
// left uncoalesced.
func (h *Heap) Check() error {
	segSize, err := h.segSize()
	if err != nil {
		return err
	}
	limit := h.base + segSize
	var last uint32
	cur, err := h.m.LoadWord(h.base + hdrFreeHead)
	if err != nil {
		return err
	}
	n := 0
	for cur != 0 {
		if cur <= last {
			return fmt.Errorf("%w: free list not address-ordered at 0x%08x", ErrCorrupt, cur)
		}
		if cur < h.base+heapStart || cur+blockHdr > limit {
			return fmt.Errorf("%w: free block 0x%08x out of bounds", ErrCorrupt, cur)
		}
		status, err := h.m.LoadWord(cur + 4)
		if err != nil {
			return err
		}
		if status != statusFree {
			return fmt.Errorf("%w: non-free block 0x%08x on free list", ErrCorrupt, cur)
		}
		size, err := h.m.LoadWord(cur)
		if err != nil {
			return err
		}
		if cur+blockHdr+size > limit {
			return fmt.Errorf("%w: block 0x%08x overruns segment", ErrCorrupt, cur)
		}
		next, err := h.m.LoadWord(cur + blockHdr)
		if err != nil {
			return err
		}
		if next != 0 && cur+blockHdr+size == next {
			return fmt.Errorf("%w: adjacent free blocks 0x%08x/0x%08x not coalesced", ErrCorrupt, cur, next)
		}
		last, cur = cur, next
		if n++; n > 1<<20 {
			return fmt.Errorf("%w: free list cycle", ErrCorrupt)
		}
	}
	return nil
}
