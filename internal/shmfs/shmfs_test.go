package shmfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"hemlock/internal/mem"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	fs, err := New(mem.NewPhysical(0))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestGeometry(t *testing.T) {
	// The 1 GB region divides into exactly 1024 slots of 1 MB.
	if (Limit-Base)/SlotSize != NumInodes {
		t.Fatalf("region holds %d slots, want %d", (Limit-Base)/SlotSize, NumInodes)
	}
	if AddrOf(0) != Base {
		t.Fatalf("inode 0 at 0x%08x, want 0x%08x", AddrOf(0), Base)
	}
	if AddrOf(NumInodes-1)+SlotSize != Limit {
		t.Fatal("last slot does not end at region limit")
	}
}

func TestCreateStatAddr(t *testing.T) {
	fs := newFS(t)
	st, err := fs.Create("/mod.o", DefaultFileMode, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Addr != AddrOf(st.Ino) {
		t.Fatalf("addr 0x%08x != AddrOf(%d)", st.Addr, st.Ino)
	}
	got, err := fs.StatPath("/mod.o")
	if err != nil {
		t.Fatal(err)
	}
	if got.Ino != st.Ino || got.Type != TypeFile || got.UID != 100 {
		t.Fatalf("stat mismatch: %+v", got)
	}
}

func TestCreateExisting(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Create("/x", DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/x", DefaultFileMode, 0); !errors.Is(err, ErrExist) {
		t.Fatalf("want ErrExist, got %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	fs := newFS(t)
	if _, err := fs.Create("/data", DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("segment "), 1000) // spans pages
	if _, err := fs.WriteAt("/data", 100, msg, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	n, err := fs.ReadAt("/data", 100, buf, 0)
	if err != nil || n != len(msg) {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("round trip mismatch")
	}
	st, _ := fs.StatPath("/data")
	if st.Size != uint32(100+len(msg)) {
		t.Fatalf("size = %d, want %d", st.Size, 100+len(msg))
	}
}

func TestReadPastEOF(t *testing.T) {
	fs := newFS(t)
	fs.Create("/f", DefaultFileMode, 0)
	fs.WriteAt("/f", 0, []byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := fs.ReadAt("/f", 0, buf, 0)
	if err != nil || n != 3 {
		t.Fatalf("short read got %d, %v", n, err)
	}
	n, err = fs.ReadAt("/f", 100, buf, 0)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF got %d, %v", n, err)
	}
}

func TestFileSizeLimit(t *testing.T) {
	fs := newFS(t)
	fs.Create("/big", DefaultFileMode, 0)
	// Exactly 1 MB is fine.
	if err := fs.Truncate("/big", MaxFile, 0); err != nil {
		t.Fatalf("1 MB truncate failed: %v", err)
	}
	// One byte over the limit is rejected.
	if _, err := fs.WriteAt("/big", MaxFile, []byte{1}, 0); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("want ErrFileTooBig, got %v", err)
	}
	if err := fs.Truncate("/big", MaxFile+1, 0); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("want ErrFileTooBig, got %v", err)
	}
}

func TestInodeExhaustion(t *testing.T) {
	fs := newFS(t)
	// Root consumes inode 0; 1023 files fit.
	for i := 0; i < NumInodes-1; i++ {
		if _, err := fs.Create(fmt.Sprintf("/f%d", i), DefaultFileMode, 0); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if _, err := fs.Create("/overflow", DefaultFileMode, 0); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Destroying one frees its slot for reuse.
	if err := fs.Unlink("/f7", 0); err != nil {
		t.Fatal(err)
	}
	st, err := fs.Create("/reborn", DefaultFileMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ino == 0 {
		t.Fatal("reused root inode")
	}
}

func TestHardLinksProhibited(t *testing.T) {
	fs := newFS(t)
	fs.Create("/a", DefaultFileMode, 0)
	if err := fs.Link("/a", "/b"); !errors.Is(err, ErrHardLink) {
		t.Fatalf("want ErrHardLink, got %v", err)
	}
}

func TestDirectories(t *testing.T) {
	fs := newFS(t)
	if err := fs.MkdirAll("/usr/local/lib", DefaultDirMode, 0); err != nil {
		t.Fatal(err)
	}
	fs.Create("/usr/local/lib/mod.o", DefaultFileMode, 0)
	fs.Create("/usr/local/lib/aaa", DefaultFileMode, 0)
	ents, err := fs.ReadDir("/usr/local/lib")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || ents[0].Name != "aaa" || ents[1].Name != "mod.o" {
		t.Fatalf("bad listing: %+v", ents)
	}
	if err := fs.Rmdir("/usr/local/lib", 0); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("want ErrNotEmpty, got %v", err)
	}
	fs.Unlink("/usr/local/lib/mod.o", 0)
	fs.Unlink("/usr/local/lib/aaa", 0)
	if err := fs.Rmdir("/usr/local/lib", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StatPath("/usr/local/lib"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("dir still present: %v", err)
	}
}

func TestSymlinks(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/tmp/app.123", DefaultDirMode, 0)
	fs.Create("/templates/shared.o", DefaultFileMode, 0) // fails: no /templates yet
	fs.MkdirAll("/templates", DefaultDirMode, 0)
	fs.Create("/templates/shared.o", DefaultFileMode, 0)
	// The Presto trick: symlink the template into a temp directory.
	if err := fs.Symlink("/templates/shared.o", "/tmp/app.123/shared.o", 0); err != nil {
		t.Fatal(err)
	}
	st, err := fs.StatPath("/tmp/app.123/shared.o")
	if err != nil {
		t.Fatal(err)
	}
	real, _ := fs.StatPath("/templates/shared.o")
	if st.Ino != real.Ino {
		t.Fatal("symlink does not resolve to target inode")
	}
	lst, err := fs.LstatPath("/tmp/app.123/shared.o")
	if err != nil {
		t.Fatal(err)
	}
	if lst.Type != TypeSymlink {
		t.Fatalf("lstat type = %v, want symlink", lst.Type)
	}
	target, err := fs.Readlink("/tmp/app.123/shared.o")
	if err != nil || target != "/templates/shared.o" {
		t.Fatalf("readlink = %q, %v", target, err)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := newFS(t)
	fs.Symlink("/b", "/a", 0)
	fs.Symlink("/a", "/b", 0)
	if _, err := fs.StatPath("/a"); !errors.Is(err, ErrLoop) {
		t.Fatalf("want ErrLoop, got %v", err)
	}
}

func TestRelativeSymlink(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/lib", DefaultDirMode, 0)
	fs.Create("/lib/real.o", DefaultFileMode, 0)
	fs.Symlink("real.o", "/lib/alias.o", 0)
	st, err := fs.StatPath("/lib/alias.o")
	if err != nil {
		t.Fatal(err)
	}
	real, _ := fs.StatPath("/lib/real.o")
	if st.Ino != real.Ino {
		t.Fatal("relative symlink broken")
	}
}

func TestPermissions(t *testing.T) {
	fs := newFS(t)
	fs.Create("/secret", ModeOwnerRead|ModeOwnerWrite, 100)
	fs.WriteAt("/secret", 0, []byte("data"), 100)
	// Another user cannot read or write.
	if _, err := fs.ReadAt("/secret", 0, make([]byte, 4), 200); !errors.Is(err, ErrPerm) {
		t.Fatalf("want ErrPerm on read, got %v", err)
	}
	if _, err := fs.WriteAt("/secret", 0, []byte("x"), 200); !errors.Is(err, ErrPerm) {
		t.Fatalf("want ErrPerm on write, got %v", err)
	}
	// Root can.
	if _, err := fs.ReadAt("/secret", 0, make([]byte, 4), 0); err != nil {
		t.Fatalf("root read failed: %v", err)
	}
	// Owner opens up other-read.
	if err := fs.Chmod("/secret", DefaultFileMode, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadAt("/secret", 0, make([]byte, 4), 200); err != nil {
		t.Fatalf("read after chmod failed: %v", err)
	}
	// Non-owner cannot chmod.
	if err := fs.Chmod("/secret", 0, 200); !errors.Is(err, ErrPerm) {
		t.Fatalf("want ErrPerm on chmod, got %v", err)
	}
}

func TestAddrToPathRoundTrip(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/lib", DefaultDirMode, 0)
	st, _ := fs.Create("/lib/table.o", DefaultFileMode, 0)
	addr, err := fs.PathToAddr("/lib/table.o")
	if err != nil || addr != st.Addr {
		t.Fatalf("PathToAddr = 0x%x, %v", addr, err)
	}
	// Interior address resolves to the same file with an offset.
	p, off, err := fs.AddrToPath(addr + 12345)
	if err != nil || p != "/lib/table.o" || off != 12345 {
		t.Fatalf("AddrToPath = %q, %d, %v", p, off, err)
	}
	// Address in an empty slot fails.
	if _, _, err := fs.AddrToPath(Limit - 1); !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	// Address outside the region fails.
	if _, _, err := fs.AddrToPath(0x10000000); !errors.Is(err, ErrBadAddr) {
		t.Fatalf("want ErrBadAddr, got %v", err)
	}
}

func TestBootScanRebuildsTable(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/a/b", DefaultDirMode, 0)
	fs.Create("/a/b/one", DefaultFileMode, 0)
	fs.Create("/two", DefaultFileMode, 0)
	addr, _ := fs.PathToAddr("/a/b/one")
	fs.ClearTable() // crash
	if _, _, err := fs.AddrToPath(addr); err == nil {
		t.Fatal("lookup should fail before boot scan")
	}
	n := fs.BootScan()
	if n != 2 {
		t.Fatalf("boot scan found %d files, want 2", n)
	}
	p, _, err := fs.AddrToPath(addr)
	if err != nil || p != "/a/b/one" {
		t.Fatalf("AddrToPath after scan = %q, %v", p, err)
	}
}

func TestUnlinkRemovesTableEntry(t *testing.T) {
	fs := newFS(t)
	st, _ := fs.Create("/gone", DefaultFileMode, 0)
	fs.Unlink("/gone", 0)
	if _, _, err := fs.AddrToPath(st.Addr); !errors.Is(err, ErrNotExist) {
		t.Fatalf("table entry survived unlink: %v", err)
	}
	if fs.TableLen() != 0 {
		t.Fatalf("table len = %d, want 0", fs.TableLen())
	}
}

func TestUnlinkReleasesFrames(t *testing.T) {
	phys := mem.NewPhysical(0)
	fs, _ := New(phys)
	fs.Create("/f", DefaultFileMode, 0)
	fs.Truncate("/f", 10*mem.PageSize, 0)
	if st := phys.Stats(); st.Live != 10 {
		t.Fatalf("live = %d, want 10", st.Live)
	}
	fs.Unlink("/f", 0)
	if st := phys.Stats(); st.Live != 0 {
		t.Fatalf("live after unlink = %d, want 0", st.Live)
	}
}

func TestTruncateZeroesShrunkRange(t *testing.T) {
	fs := newFS(t)
	fs.Create("/f", DefaultFileMode, 0)
	fs.WriteAt("/f", 0, []byte("secretdata"), 0)
	fs.Truncate("/f", 3, 0)
	fs.Truncate("/f", 10, 0)
	buf := make([]byte, 10)
	fs.ReadAt("/f", 0, buf, 0)
	if !bytes.Equal(buf, []byte("sec\x00\x00\x00\x00\x00\x00\x00")) {
		t.Fatalf("stale data after shrink+grow: %q", buf)
	}
}

func TestFramesAliasFileContents(t *testing.T) {
	fs := newFS(t)
	fs.Create("/seg", DefaultFileMode, 0)
	fs.WriteAt("/seg", 0, []byte("before"), 0)
	frames, st, err := fs.Frames("/seg", mem.PageSize, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != mem.PageSize {
		t.Fatalf("Frames grew size to %d, want %d", st.Size, mem.PageSize)
	}
	// A store through the frame is visible through the read interface.
	copy(frames[0].Data[0:], "AFTER!")
	buf := make([]byte, 6)
	fs.ReadAt("/seg", 0, buf, 0)
	if string(buf) != "AFTER!" {
		t.Fatalf("file read saw %q, want AFTER!", buf)
	}
}

func TestLocking(t *testing.T) {
	fs := newFS(t)
	fs.Create("/lockme", DefaultFileMode, 0)
	ok, err := fs.TryLock("/lockme", 10)
	if err != nil || !ok {
		t.Fatalf("first lock: %v %v", ok, err)
	}
	// Reentrant for the same pid.
	ok, _ = fs.TryLock("/lockme", 10)
	if !ok {
		t.Fatal("reentrant lock failed")
	}
	// Other pid blocked.
	ok, _ = fs.TryLock("/lockme", 20)
	if ok {
		t.Fatal("lock not exclusive")
	}
	if err := fs.Unlock("/lockme", 20); !errors.Is(err, ErrLocked) {
		t.Fatalf("non-owner unlock: %v", err)
	}
	fs.Unlock("/lockme", 10)
	if owner, _ := fs.LockOwner("/lockme"); owner != 10 {
		t.Fatalf("owner = %d after one unlock of two, want 10", owner)
	}
	fs.Unlock("/lockme", 10)
	ok, _ = fs.TryLock("/lockme", 20)
	if !ok {
		t.Fatal("lock not released")
	}
}

func TestWalkFiles(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/d1", DefaultDirMode, 0)
	fs.Create("/d1/b", DefaultFileMode, 0)
	fs.Create("/a", DefaultFileMode, 0)
	var got []string
	fs.WalkFiles(func(p string, st Stat) error {
		got = append(got, p)
		return nil
	})
	if len(got) != 2 || got[0] != "/a" || got[1] != "/d1/b" {
		t.Fatalf("walk = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/lib/app", DefaultDirMode, 42)
	fs.Create("/lib/app/mod.o", DefaultFileMode, 42)
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 3000)
	fs.WriteAt("/lib/app/mod.o", 0, payload, 42)
	fs.Symlink("/lib/app/mod.o", "/alias", 0)

	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fs2, err := Load(&buf, mem.NewPhysical(0))
	if err != nil {
		t.Fatal(err)
	}
	data, err := fs2.ReadFile("/lib/app/mod.o", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("payload mismatch after load")
	}
	st, err := fs2.StatPath("/alias")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := fs.StatPath("/lib/app/mod.o")
	if st.Ino != orig.Ino || st.UID != 42 {
		t.Fatalf("stat after load: %+v vs %+v", st, orig)
	}
	// The lookup table was rebuilt on load.
	p, _, err := fs2.AddrToPath(orig.Addr)
	if err != nil || p != "/lib/app/mod.o" {
		t.Fatalf("AddrToPath after load = %q, %v", p, err)
	}
}

// TestContentVersionSurvivesSaveLoad pins the reboot contract the link
// cache depends on: a file's fingerprint before Save equals its
// fingerprint after Load, and a genuinely mutated file still reads as
// changed. Fingerprints mix the per-frame store-version counters, so the
// image must carry them (format v2) — without that, every cache manifest
// recorded before a reboot would look mutated-in-place.
func TestContentVersionSurvivesSaveLoad(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/lib", DefaultDirMode, 0)
	fs.Create("/lib/mod.o", DefaultFileMode, 0)
	// Write twice so the frame counters are not trivially 1.
	fs.WriteFile("/lib/mod.o", bytes.Repeat([]byte{0x11}, 5000), DefaultFileMode, 0)
	fs.WriteFile("/lib/mod.o", bytes.Repeat([]byte{0x22}, 5000), DefaultFileMode, 0)
	before, err := fs.ContentVersion("/lib/mod.o")
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fs2, err := Load(&buf, mem.NewPhysical(0))
	if err != nil {
		t.Fatal(err)
	}
	after, err := fs2.ContentVersion("/lib/mod.o")
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("fingerprint changed across save/load: %016x -> %016x", before, after)
	}
	// Mutation on the rebooted machine still moves the fingerprint.
	if _, err := fs2.WriteAt("/lib/mod.o", 0, []byte{0x33}, 0); err != nil {
		t.Fatal(err)
	}
	if v, _ := fs2.ContentVersion("/lib/mod.o"); v == before {
		t.Fatal("fingerprint did not move after an in-place write")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTANIMAGE")), mem.NewPhysical(0)); err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestLinearVsIndexedLookupAgree(t *testing.T) {
	fs := newFS(t)
	for i := 0; i < 50; i++ {
		fs.Create(fmt.Sprintf("/f%02d", i), DefaultFileMode, 0)
	}
	for i := 0; i < 50; i += 7 {
		addr := AddrOf(i+1) + uint32(i*13)
		fs.Lookup = LookupLinear
		p1, o1, e1 := fs.AddrToPath(addr)
		fs.Lookup = LookupIndexed
		p2, o2, e2 := fs.AddrToPath(addr)
		fs.Lookup = LookupBTree
		p3, o3, e3 := fs.AddrToPath(addr)
		if p1 != p2 || o1 != o2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("linear/indexed disagree at 0x%x: %q/%q", addr, p1, p2)
		}
		if p1 != p3 || o1 != o3 || (e1 == nil) != (e3 == nil) {
			t.Fatalf("linear/btree disagree at 0x%x: %q/%q", addr, p1, p3)
		}
	}
}

// Property: Clean produces an absolute path and AddrOf/InodeAt are inverses
// over the inode range.
func TestAddrInodeInverseProperty(t *testing.T) {
	f := func(n uint16, off uint32) bool {
		ino := int(n) % NumInodes
		addr := AddrOf(ino) + off%SlotSize
		got, err := InodeAt(addr)
		return err == nil && got == ino
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCleanPaths(t *testing.T) {
	cases := map[string]string{
		"":           "/",
		"/":          "/",
		"a/b":        "/a/b",
		"/a//b/":     "/a/b",
		"/a/../b":    "/b",
		"/a/./b":     "/a/b",
		"../../etc":  "/etc",
		"/x/y/../..": "/",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}
