// Package shmfs implements Hemlock's kernel-maintained shared file system:
// a dedicated 1 GB region of every address space (0x30000000-0x70000000)
// holding exactly 1024 inodes, each file limited to 1 MB, with a
// globally-consistent, kernel-maintained mapping between virtual addresses
// and path names.
//
// The design follows section 3 of the paper ("Address Space and File System
// Organization"):
//
//   - the file system has exactly 1024 inodes and files are capped at 1 MB,
//     so the 1 GB region divides into exactly one slot per inode;
//   - hard links (other than '.' and '..') are prohibited, so there is a
//     one-one mapping between inodes and path names;
//   - a linear lookup table maps addresses back to files; it is initialised
//     by scanning the entire file system at boot time and updated as files
//     are created and destroyed, which lets the mapping survive crashes
//     without on-disk format changes;
//   - all the normal file operations work; the only thing that sets the
//     file system apart is the association between file names and addresses.
//
// File contents are stored in reference-counted physical frames, so mapping
// a file into an address space (kern.MapSegment) aliases the very same
// bytes the read/write interface sees.
package shmfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"hemlock/internal/mem"
	"hemlock/internal/obsv"
)

// Geometry of the shared file system (section 3 of the paper).
const (
	Base          uint32 = 0x30000000 // first address of the shared region
	Limit         uint32 = 0x70000000 // first address past the shared region
	NumInodes            = 1024       // the file system has exactly 1024 inodes
	MaxFile       uint32 = 1 << 20    // each file is limited to 1 MB
	SlotSize      uint32 = MaxFile    // region divides into one slot per inode
	framesPerFile        = int(MaxFile / mem.PageSize)
)

// Errors returned by the file system.
var (
	ErrNotExist   = errors.New("shmfs: no such file or directory")
	ErrExist      = errors.New("shmfs: file exists")
	ErrIsDir      = errors.New("shmfs: is a directory")
	ErrNotDir     = errors.New("shmfs: not a directory")
	ErrNoSpace    = errors.New("shmfs: out of inodes")
	ErrFileTooBig = errors.New("shmfs: file exceeds 1 MB limit")
	ErrHardLink   = errors.New("shmfs: hard links are prohibited")
	ErrNotEmpty   = errors.New("shmfs: directory not empty")
	ErrPerm       = errors.New("shmfs: permission denied")
	ErrBadAddr    = errors.New("shmfs: address not in shared file system")
	ErrLocked     = errors.New("shmfs: file is locked")
	ErrLoop       = errors.New("shmfs: too many levels of symbolic links")
	ErrInval      = errors.New("shmfs: invalid argument")
)

// FileType distinguishes inode kinds.
type FileType uint8

// Inode kinds.
const (
	TypeFile FileType = iota
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	}
	return "?"
}

// Mode bits: a simplified owner/other Unix permission model.
type Mode uint16

// Permission bits.
const (
	ModeOwnerRead  Mode = 0400
	ModeOwnerWrite Mode = 0200
	ModeOtherRead  Mode = 0004
	ModeOtherWrite Mode = 0002

	// DefaultFileMode is rw-r--r-- style default for new files.
	DefaultFileMode = ModeOwnerRead | ModeOwnerWrite | ModeOtherRead
	// DefaultDirMode allows everyone to list.
	DefaultDirMode = DefaultFileMode
)

// inode is the in-memory inode.
type inode struct {
	ino     int
	typ     FileType
	mode    Mode
	uid     int
	size    uint32
	frames  []*mem.Frame // lazily grown, TypeFile only
	entries map[string]int
	target  string // TypeSymlink only
	mtime   uint64

	lockOwner int // pid holding the advisory lock; 0 = unlocked
	lockDepth int
}

// Stat describes an inode, as returned by the stat kernel call. Addr is the
// globally-agreed virtual address of the file's slot: the piece of state the
// paper adds to stat's usual contents.
type Stat struct {
	Ino   int
	Type  FileType
	Mode  Mode
	UID   int
	Size  uint32
	Addr  uint32
	Mtime uint64
}

// tableEntry is one row of the kernel's linear address-to-file lookup table.
type tableEntry struct {
	base uint32
	ino  int
	path string
}

// FS is the shared file system. All methods are safe for concurrent use.
type FS struct {
	mu     sync.Mutex
	phys   *mem.Physical
	inodes [NumInodes]*inode
	nAlloc int
	clock  uint64

	// table is the linear lookup table from addresses to files. It is
	// deliberately a flat slice scanned linearly (the paper's choice for
	// crash-survivability); BootScan rebuilds it from the directory tree.
	table []tableEntry
	// slotIdx is the first ablation alternative: a direct slot-number
	// index into table (-1 = empty). Maintained alongside the linear
	// table.
	slotIdx [NumInodes]int32
	// tree is the second alternative: the B-tree the paper plans for
	// 64-bit machines, where slots are no longer dense. Also maintained
	// alongside the linear table.
	tree *AddrTree

	// Lookup selects the AddrToPath strategy; the paper's 32-bit
	// prototype uses LookupLinear.
	Lookup LookupMode

	// Observability wiring (Observe); nil-safe when unwired.
	tracer              *obsv.Tracer
	ctrCreate, ctrOpens *obsv.Counter
}

// Observe wires the file system into the observability layer: segment
// creations and frame-map opens flow to the counters, with trace events
// on tracer when enabled. kern.New/NewWithFS call this.
func (fs *FS) Observe(tracer *obsv.Tracer, creates, opens *obsv.Counter) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.tracer, fs.ctrCreate, fs.ctrOpens = tracer, creates, opens
}

// LookupMode selects how addresses translate to files.
type LookupMode int

// Lookup strategies for the E-fs ablation.
const (
	// LookupLinear scans the flat table: the paper's prototype choice,
	// "for the sake of simplicity".
	LookupLinear LookupMode = iota
	// LookupIndexed indexes directly by slot number, possible only while
	// inode number determines address (the dense 32-bit layout).
	LookupIndexed
	// LookupBTree walks the address-keyed B-tree, the paper's planned
	// 64-bit structure.
	LookupBTree
)

// New creates an empty shared file system (with a root directory at "/")
// backed by phys.
func New(phys *mem.Physical) (*FS, error) {
	fs := &FS{phys: phys, Lookup: LookupLinear}
	fs.resetIndex()
	root := &inode{ino: 0, typ: TypeDir, mode: DefaultDirMode, entries: map[string]int{}}
	fs.inodes[0] = root
	fs.nAlloc = 1
	return fs, nil
}

func (fs *FS) resetIndex() {
	for i := range fs.slotIdx {
		fs.slotIdx[i] = -1
	}
	fs.tree = NewAddrTree()
}

// AddrOf returns the fixed virtual address of inode ino's slot.
func AddrOf(ino int) uint32 { return Base + uint32(ino)*SlotSize }

// InodeAt returns the inode slot covering addr, or an error if addr is
// outside the shared region.
func InodeAt(addr uint32) (int, error) {
	if addr < Base || addr >= Limit {
		return 0, fmt.Errorf("%w: 0x%08x", ErrBadAddr, addr)
	}
	return int((addr - Base) / SlotSize), nil
}

// Contains reports whether addr lies inside the shared file system region.
func Contains(addr uint32) bool { return addr >= Base && addr < Limit }

func (fs *FS) tick() uint64 {
	fs.clock++
	return fs.clock
}

// ---- path resolution -------------------------------------------------

// Clean canonicalises p to an absolute slash path within the fs.
func Clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

const maxSymlinkDepth = 16

// walk resolves p to an inode, following symlinks up to depth. If followLast
// is false a trailing symlink is returned itself.
func (fs *FS) walk(p string, followLast bool, depth int) (*inode, error) {
	if depth > maxSymlinkDepth {
		return nil, ErrLoop
	}
	p = Clean(p)
	cur := fs.inodes[0]
	if p == "/" {
		return cur, nil
	}
	parts := strings.Split(p[1:], "/")
	for i, name := range parts {
		if cur.typ != TypeDir {
			return nil, fmt.Errorf("%w: %s", ErrNotDir, name)
		}
		ino, ok := cur.entries[name]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, p)
		}
		next := fs.inodes[ino]
		if next == nil {
			return nil, fmt.Errorf("%w: %s (stale entry)", ErrNotExist, p)
		}
		last := i == len(parts)-1
		if next.typ == TypeSymlink && (!last || followLast) {
			target := next.target
			if !strings.HasPrefix(target, "/") {
				target = path.Join("/"+strings.Join(parts[:i], "/"), target)
			}
			rest := strings.Join(parts[i+1:], "/")
			if rest != "" {
				target = target + "/" + rest
			}
			return fs.walk(target, followLast, depth+1)
		}
		cur = next
	}
	return cur, nil
}

// parentOf resolves the directory containing p and returns it with the leaf
// name.
func (fs *FS) parentOf(p string) (*inode, string, error) {
	p = Clean(p)
	if p == "/" {
		return nil, "", fmt.Errorf("%w: cannot operate on /", ErrInval)
	}
	dir, leaf := path.Split(p)
	parent, err := fs.walk(dir, true, 0)
	if err != nil {
		return nil, "", err
	}
	if parent.typ != TypeDir {
		return nil, "", ErrNotDir
	}
	return parent, leaf, nil
}

func (fs *FS) allocInode(typ FileType, mode Mode, uid int) (*inode, error) {
	for i := 0; i < NumInodes; i++ {
		if fs.inodes[i] == nil {
			nd := &inode{ino: i, typ: typ, mode: mode, uid: uid, mtime: fs.tick()}
			if typ == TypeDir {
				nd.entries = map[string]int{}
			}
			fs.inodes[i] = nd
			fs.nAlloc++
			return nd, nil
		}
	}
	return nil, ErrNoSpace
}

func (fs *FS) checkPerm(nd *inode, uid int, write bool) error {
	if uid == 0 { // root
		return nil
	}
	var need Mode
	if nd.uid == uid {
		need = ModeOwnerRead
		if write {
			need = ModeOwnerWrite
		}
	} else {
		need = ModeOtherRead
		if write {
			need = ModeOtherWrite
		}
	}
	if nd.mode&need == 0 {
		return fmt.Errorf("%w: inode %d mode %04o uid %d", ErrPerm, nd.ino, nd.mode, uid)
	}
	return nil
}

// ---- public API --------------------------------------------------------

// Create makes a new regular file at p owned by uid. It fails if p exists.
func (fs *FS) Create(p string, mode Mode, uid int) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return Stat{}, err
	}
	if _, ok := parent.entries[leaf]; ok {
		return Stat{}, fmt.Errorf("%w: %s", ErrExist, p)
	}
	nd, err := fs.allocInode(TypeFile, mode, uid)
	if err != nil {
		return Stat{}, err
	}
	parent.entries[leaf] = nd.ino
	parent.mtime = fs.tick()
	fs.tableInsert(nd.ino, Clean(p))
	fs.ctrCreate.Inc()
	if fs.tracer.Enabled() {
		fs.tracer.Emit(obsv.Event{Subsys: "shmfs", Name: "create", Mod: Clean(p), Addr: AddrOf(nd.ino)})
	}
	return fs.statOf(nd), nil
}

// CreateAt makes a new regular file at p bound to the specific inode ino,
// and therefore to the fixed virtual address AddrOf(ino). It fails if p
// exists or the inode is taken. This is how a replica machine materialises
// a segment homed elsewhere: the home dictates the slot, so the public
// module occupies the same virtual address on every machine (the netshm
// replication protocol depends on it).
func (fs *FS) CreateAt(p string, ino int, mode Mode, uid int) (Stat, error) {
	if ino < 0 || ino >= NumInodes {
		return Stat{}, fmt.Errorf("%w: inode %d", ErrInval, ino)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return Stat{}, err
	}
	if _, ok := parent.entries[leaf]; ok {
		return Stat{}, fmt.Errorf("%w: %s", ErrExist, p)
	}
	if fs.inodes[ino] != nil {
		return Stat{}, fmt.Errorf("%w: inode %d already allocated", ErrExist, ino)
	}
	nd := &inode{ino: ino, typ: TypeFile, mode: mode, uid: uid, mtime: fs.tick()}
	fs.inodes[ino] = nd
	fs.nAlloc++
	parent.entries[leaf] = nd.ino
	parent.mtime = fs.tick()
	fs.tableInsert(nd.ino, Clean(p))
	fs.ctrCreate.Inc()
	if fs.tracer.Enabled() {
		fs.tracer.Emit(obsv.Event{Subsys: "shmfs", Name: "create", Mod: Clean(p), Addr: AddrOf(nd.ino)})
	}
	return fs.statOf(nd), nil
}

// allocInodeTop allocates the highest free inode slot, scanning down from
// the top. Infrastructure files (the ldl link cache) allocate here so that
// ordinary Create calls — whose slot number determines the segment's public
// virtual address — see exactly the slot sequence they would in a world
// with no cache files at all.
func (fs *FS) allocInodeTop(typ FileType, mode Mode, uid int) (*inode, error) {
	for i := NumInodes - 1; i >= 0; i-- {
		if fs.inodes[i] == nil {
			nd := &inode{ino: i, typ: typ, mode: mode, uid: uid, mtime: fs.tick()}
			if typ == TypeDir {
				nd.entries = map[string]int{}
			}
			fs.inodes[i] = nd
			fs.nAlloc++
			return nd, nil
		}
	}
	return nil, ErrNoSpace
}

// CreateTop makes a new regular file at p like Create, but draws its inode
// from the top of the slot space (see allocInodeTop).
func (fs *FS) CreateTop(p string, mode Mode, uid int) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return Stat{}, err
	}
	if _, ok := parent.entries[leaf]; ok {
		return Stat{}, fmt.Errorf("%w: %s", ErrExist, p)
	}
	nd, err := fs.allocInodeTop(TypeFile, mode, uid)
	if err != nil {
		return Stat{}, err
	}
	parent.entries[leaf] = nd.ino
	parent.mtime = fs.tick()
	fs.tableInsert(nd.ino, Clean(p))
	fs.ctrCreate.Inc()
	if fs.tracer.Enabled() {
		fs.tracer.Emit(obsv.Event{Subsys: "shmfs", Name: "create", Mod: Clean(p), Addr: AddrOf(nd.ino)})
	}
	return fs.statOf(nd), nil
}

// MkdirAllTop creates p and any missing parents with inodes drawn from the
// top of the slot space.
func (fs *FS) MkdirAllTop(p string, mode Mode, uid int) error {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	parts := strings.Split(p[1:], "/")
	cur := ""
	for _, part := range parts {
		cur = cur + "/" + part
		err := fs.mkdirTop(cur, mode, uid)
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

func (fs *FS) mkdirTop(p string, mode Mode, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if _, ok := parent.entries[leaf]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	nd, err := fs.allocInodeTop(TypeDir, mode, uid)
	if err != nil {
		return err
	}
	parent.entries[leaf] = nd.ino
	parent.mtime = fs.tick()
	return nil
}

// ContentVersion returns a cheap fingerprint of a file's current contents:
// a mix of its inode, size, and every backing frame's store-version counter.
// Unlike mtime, it moves when the file is mutated *through a mapping* (a
// store into a mapped segment bumps the frame version but never touches the
// inode), which is exactly how a shared module's bytes change under Hemlock.
// The ldl link cache validates its dependency manifest against this.
func (fs *FS) ContentVersion(p string) (uint64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return 0, err
	}
	if nd.typ != TypeFile {
		return 0, fmt.Errorf("%w: %s is not a file", ErrInval, p)
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(nd.ino))
	mix(uint64(nd.size))
	for _, f := range nd.frames {
		mix(f.Version())
	}
	return h, nil
}

// Mkdir creates a directory at p.
func (fs *FS) Mkdir(p string, mode Mode, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if _, ok := parent.entries[leaf]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	nd, err := fs.allocInode(TypeDir, mode, uid)
	if err != nil {
		return err
	}
	parent.entries[leaf] = nd.ino
	parent.mtime = fs.tick()
	return nil
}

// MkdirAll creates p and any missing parents.
func (fs *FS) MkdirAll(p string, mode Mode, uid int) error {
	p = Clean(p)
	if p == "/" {
		return nil
	}
	parts := strings.Split(p[1:], "/")
	cur := ""
	for _, part := range parts {
		cur = cur + "/" + part
		err := fs.Mkdir(cur, mode, uid)
		if err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Symlink creates a symbolic link at p pointing at target.
func (fs *FS) Symlink(target, p string, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	if _, ok := parent.entries[leaf]; ok {
		return fmt.Errorf("%w: %s", ErrExist, p)
	}
	nd, err := fs.allocInode(TypeSymlink, DefaultFileMode, uid)
	if err != nil {
		return err
	}
	nd.target = target
	parent.entries[leaf] = nd.ino
	parent.mtime = fs.tick()
	return nil
}

// Readlink returns the target of the symlink at p.
func (fs *FS) Readlink(p string) (string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, false, 0)
	if err != nil {
		return "", err
	}
	if nd.typ != TypeSymlink {
		return "", fmt.Errorf("%w: not a symlink", ErrInval)
	}
	return nd.target, nil
}

// Link always fails: hard links other than '.' and '..' are prohibited so
// that the inode-to-path mapping stays one-one.
func (fs *FS) Link(oldp, newp string) error {
	return fmt.Errorf("%w: %s -> %s", ErrHardLink, newp, oldp)
}

// Unlink removes the file or symlink at p, destroying its inode and, for
// public modules, the segment behind it. Directories must use Rmdir.
func (fs *FS) Unlink(p string, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	ino, ok := parent.entries[leaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	nd := fs.inodes[ino]
	if nd.typ == TypeDir {
		return fmt.Errorf("%w: %s", ErrIsDir, p)
	}
	if err := fs.checkPerm(parent, uid, true); err != nil {
		return err
	}
	delete(parent.entries, leaf)
	parent.mtime = fs.tick()
	fs.destroyInode(nd)
	return nil
}

// Rmdir removes the empty directory at p.
func (fs *FS) Rmdir(p string, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, leaf, err := fs.parentOf(p)
	if err != nil {
		return err
	}
	ino, ok := parent.entries[leaf]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, p)
	}
	nd := fs.inodes[ino]
	if nd.typ != TypeDir {
		return fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	if len(nd.entries) != 0 {
		return fmt.Errorf("%w: %s", ErrNotEmpty, p)
	}
	if err := fs.checkPerm(parent, uid, true); err != nil {
		return err
	}
	delete(parent.entries, leaf)
	parent.mtime = fs.tick()
	fs.destroyInode(nd)
	return nil
}

func (fs *FS) destroyInode(nd *inode) {
	for _, f := range nd.frames {
		f.Release()
	}
	nd.frames = nil
	fs.inodes[nd.ino] = nil
	fs.nAlloc--
	fs.tableRemove(nd.ino)
}

// StatPath stats the object at p, following symlinks.
func (fs *FS) StatPath(p string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return Stat{}, err
	}
	return fs.statOf(nd), nil
}

// LstatPath stats without following a trailing symlink.
func (fs *FS) LstatPath(p string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, false, 0)
	if err != nil {
		return Stat{}, err
	}
	return fs.statOf(nd), nil
}

func (fs *FS) statOf(nd *inode) Stat {
	return Stat{
		Ino:   nd.ino,
		Type:  nd.typ,
		Mode:  nd.mode,
		UID:   nd.uid,
		Size:  nd.size,
		Addr:  AddrOf(nd.ino),
		Mtime: nd.mtime,
	}
}

// Chmod changes the mode of the object at p.
func (fs *FS) Chmod(p string, mode Mode, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return err
	}
	if uid != 0 && uid != nd.uid {
		return fmt.Errorf("%w: chmod %s", ErrPerm, p)
	}
	nd.mode = mode
	nd.mtime = fs.tick()
	return nil
}

// DirEntry is one entry returned by ReadDir.
type DirEntry struct {
	Name string
	Ino  int
	Type FileType
}

// ReadDir lists the directory at p in name order.
func (fs *FS) ReadDir(p string) ([]DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return nil, err
	}
	if nd.typ != TypeDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, p)
	}
	out := make([]DirEntry, 0, len(nd.entries))
	for name, ino := range nd.entries {
		child := fs.inodes[ino]
		if child == nil {
			continue
		}
		out = append(out, DirEntry{Name: name, Ino: ino, Type: child.typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ensureFrames grows nd.frames to cover at least size bytes.
func (fs *FS) ensureFrames(nd *inode, size uint32) error {
	if size > MaxFile {
		return fmt.Errorf("%w: %d bytes", ErrFileTooBig, size)
	}
	need := int((size + mem.PageSize - 1) / mem.PageSize)
	for len(nd.frames) < need {
		f, err := fs.phys.Alloc()
		if err != nil {
			return err
		}
		nd.frames = append(nd.frames, f)
	}
	return nil
}

// WriteAt writes buf into the file at p at offset off, growing the file as
// needed (up to the 1 MB limit). It is the traditional Unix write path; the
// bytes written are the very bytes a mapping of the file sees.
func (fs *FS) WriteAt(p string, off uint32, buf []byte, uid int) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return 0, err
	}
	if nd.typ != TypeFile {
		return 0, ErrIsDir
	}
	if err := fs.checkPerm(nd, uid, true); err != nil {
		return 0, err
	}
	return fs.writeAtInode(nd, off, buf)
}

func (fs *FS) writeAtInode(nd *inode, off uint32, buf []byte) (int, error) {
	end := off + uint32(len(buf))
	if end < off || end > MaxFile {
		return 0, fmt.Errorf("%w: write to %d", ErrFileTooBig, end)
	}
	if err := fs.ensureFrames(nd, end); err != nil {
		return 0, err
	}
	done := 0
	for done < len(buf) {
		pos := off + uint32(done)
		fi := int(pos / mem.PageSize)
		fo := pos % mem.PageSize
		// Writes may land in frames mapped executable elsewhere (ldl's
		// filePatcher patches shared text this way); the version bump is
		// what invalidates any predecoded instructions.
		n := len(buf) - done
		if room := int(mem.PageSize - fo); n > room {
			n = room
		}
		nd.frames[fi].NoteStoreRange(fo, uint32(n))
		copy(nd.frames[fi].Data[fo:], buf[done:done+n])
		done += n
	}
	if end > nd.size {
		nd.size = end
	}
	nd.mtime = fs.tick()
	return done, nil
}

// ReadAt reads up to len(buf) bytes from the file at p at offset off. It
// returns the number of bytes read; reads past EOF return 0.
func (fs *FS) ReadAt(p string, off uint32, buf []byte, uid int) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return 0, err
	}
	if nd.typ != TypeFile {
		return 0, ErrIsDir
	}
	if err := fs.checkPerm(nd, uid, false); err != nil {
		return 0, err
	}
	if off >= nd.size {
		return 0, nil
	}
	want := uint32(len(buf))
	if off+want > nd.size {
		want = nd.size - off
	}
	done := uint32(0)
	for done < want {
		pos := off + done
		fi := int(pos / mem.PageSize)
		fo := pos % mem.PageSize
		n := copy(buf[done:want], nd.frames[fi].Data[fo:])
		done += uint32(n)
	}
	return int(done), nil
}

// ReadFile returns the whole contents of the file at p.
func (fs *FS) ReadFile(p string, uid int) ([]byte, error) {
	st, err := fs.StatPath(p)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size)
	if _, err := fs.ReadAt(p, 0, buf, uid); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteFile creates (or truncates) the file at p with the given contents.
func (fs *FS) WriteFile(p string, data []byte, mode Mode, uid int) error {
	fs.mu.Lock()
	nd, err := fs.walk(p, true, 0)
	fs.mu.Unlock()
	if errors.Is(err, ErrNotExist) {
		if _, cerr := fs.Create(p, mode, uid); cerr != nil {
			return cerr
		}
	} else if err != nil {
		return err
	} else if nd.typ != TypeFile {
		return ErrIsDir
	}
	if err := fs.Truncate(p, 0, uid); err != nil {
		return err
	}
	_, err = fs.WriteAt(p, 0, data, uid)
	return err
}

// Truncate sets the file's size. Growing zero-fills; shrinking keeps frames
// allocated (they are zeroed past the new end so stale data cannot leak
// through a mapping).
func (fs *FS) Truncate(p string, size uint32, uid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return err
	}
	if nd.typ != TypeFile {
		return ErrIsDir
	}
	if err := fs.checkPerm(nd, uid, true); err != nil {
		return err
	}
	if size > MaxFile {
		return fmt.Errorf("%w: truncate to %d", ErrFileTooBig, size)
	}
	if err := fs.ensureFrames(nd, size); err != nil {
		return err
	}
	if size < nd.size {
		for fi := int(size / mem.PageSize); fi <= int((nd.size-1)/mem.PageSize); fi++ {
			lo := uint32(0)
			if int(size/mem.PageSize) == fi {
				lo = size % mem.PageSize
			}
			hi := uint32(mem.PageSize)
			if int((nd.size-1)/mem.PageSize) == fi {
				hi = (nd.size-1)%mem.PageSize + 1
			}
			nd.frames[fi].NoteStoreRange(lo, hi-lo)
		}
		for pos := size; pos < nd.size; pos++ {
			fi := int(pos / mem.PageSize)
			fo := pos % mem.PageSize
			nd.frames[fi].Data[fo] = 0
		}
	}
	nd.size = size
	nd.mtime = fs.tick()
	return nil
}

// SetSize grows the logical size without zeroing (used by the linkers after
// writing a module image through a mapping).
func (fs *FS) SetSize(p string, size uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return err
	}
	if nd.typ != TypeFile {
		return ErrIsDir
	}
	if err := fs.ensureFrames(nd, size); err != nil {
		return err
	}
	if size > nd.size {
		nd.size = size
	}
	return nil
}

// Frames returns the frames backing the file at p, growing the file to
// size bytes first so that all needed frames exist. The caller maps these
// frames into an address space; the frames remain owned by the file.
func (fs *FS) Frames(p string, size uint32, uid int, write bool) ([]*mem.Frame, Stat, error) {
	sp := fs.tracer.Begin("shmfs", "frames", 0, Clean(p))
	defer sp.End(0)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return nil, Stat{}, err
	}
	if nd.typ != TypeFile {
		return nil, Stat{}, ErrIsDir
	}
	if err := fs.checkPerm(nd, uid, write); err != nil {
		return nil, Stat{}, err
	}
	if size < nd.size {
		size = nd.size
	}
	if err := fs.ensureFrames(nd, size); err != nil {
		return nil, Stat{}, err
	}
	if size > nd.size {
		nd.size = size
	}
	fs.ctrOpens.Inc()
	if fs.tracer.Enabled() {
		fs.tracer.Emit(obsv.Event{Subsys: "shmfs", Name: "open", Mod: Clean(p), Addr: AddrOf(nd.ino), Val: uint64(nd.size)})
	}
	return append([]*mem.Frame(nil), nd.frames...), fs.statOf(nd), nil
}

// ---- address <-> path kernel calls -------------------------------------

func (fs *FS) tableInsert(ino int, p string) {
	fs.table = append(fs.table, tableEntry{base: AddrOf(ino), ino: ino, path: p})
	fs.slotIdx[ino] = int32(len(fs.table) - 1)
	fs.tree.Insert(AddrOf(ino), ino, p)
}

func (fs *FS) tableRemove(ino int) {
	fs.tree.Delete(AddrOf(ino))
	for i := range fs.table {
		if fs.table[i].ino == ino {
			fs.table = append(fs.table[:i], fs.table[i+1:]...)
			fs.slotIdx[ino] = -1
			// Reindex the tail entries that shifted down.
			for j := i; j < len(fs.table); j++ {
				fs.slotIdx[fs.table[j].ino] = int32(j)
			}
			return
		}
	}
}

// PathToAddr returns the fixed virtual address of the file at p (the easy
// direction: stat already returns an inode number).
func (fs *FS) PathToAddr(p string) (uint32, error) {
	st, err := fs.StatPath(p)
	if err != nil {
		return 0, err
	}
	if st.Type != TypeFile {
		return 0, fmt.Errorf("%w: %s is a %s", ErrInval, p, st.Type)
	}
	return st.Addr, nil
}

// AddrToPath is the new kernel call: it translates an address inside the
// shared region into the path name of the file whose slot covers it, using
// the configured lookup strategy (the paper's prototype scans the linear
// table).
func (fs *FS) AddrToPath(addr uint32) (string, uint32, error) {
	ino, err := InodeAt(addr)
	if err != nil {
		return "", 0, err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	switch fs.Lookup {
	case LookupIndexed:
		if idx := fs.slotIdx[ino]; idx >= 0 && int(idx) < len(fs.table) {
			e := &fs.table[idx]
			return e.path, addr - e.base, nil
		}
	case LookupBTree:
		if _, path, off, ok := fs.tree.LookupCovering(addr); ok {
			return path, off, nil
		}
	default: // LookupLinear
		for i := range fs.table {
			e := &fs.table[i]
			if addr >= e.base && addr < e.base+SlotSize {
				return e.path, addr - e.base, nil
			}
		}
	}
	return "", 0, fmt.Errorf("%w: no file at 0x%08x", ErrNotExist, addr)
}

// ClearTable discards the lookup table, simulating the state just after a
// crash/reboot before the boot-time scan has run.
func (fs *FS) ClearTable() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.table = nil
	fs.resetIndex()
}

// BootScan rebuilds the address lookup table by scanning the entire file
// system, as the kernel does at boot time.
func (fs *FS) BootScan() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.table = nil
	fs.resetIndex()
	fs.scanDir(fs.inodes[0], "/")
	return len(fs.table)
}

func (fs *FS) scanDir(dir *inode, prefix string) {
	names := make([]string, 0, len(dir.entries))
	for name := range dir.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		nd := fs.inodes[dir.entries[name]]
		if nd == nil {
			continue
		}
		p := path.Join(prefix, name)
		switch nd.typ {
		case TypeFile:
			fs.tableInsert(nd.ino, p)
		case TypeDir:
			fs.scanDir(nd, p)
		}
	}
}

// TableLen returns the number of live table entries (for fsck and tests).
func (fs *FS) TableLen() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.table)
}

// ---- advisory file locking ---------------------------------------------

// TryLock attempts to acquire the advisory exclusive lock on the file at p
// for owner pid. It is reentrant for the same pid. ldl uses this to
// synchronize the creation of shared segments.
func (fs *FS) TryLock(p string, pid int) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return false, err
	}
	if nd.lockOwner == 0 || nd.lockOwner == pid {
		nd.lockOwner = pid
		nd.lockDepth++
		return true, nil
	}
	return false, nil
}

// Unlock releases one level of the advisory lock held by pid.
func (fs *FS) Unlock(p string, pid int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return err
	}
	if nd.lockOwner != pid {
		return fmt.Errorf("%w: unlock by non-owner %d", ErrLocked, pid)
	}
	nd.lockDepth--
	if nd.lockDepth == 0 {
		nd.lockOwner = 0
	}
	return nil
}

// LockOwner reports the pid holding the lock on p (0 if unlocked).
func (fs *FS) LockOwner(p string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return 0, err
	}
	return nd.lockOwner, nil
}

// ---- inventory / perusal -----------------------------------------------

// InodesInUse returns the number of allocated inodes.
func (fs *FS) InodesInUse() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.nAlloc
}

// Usage summarises file-system occupancy: the raw material for the doctor's
// exhaustion checks and the daemon's /metrics gauges.
type Usage struct {
	InodesInUse int    // allocated inodes of any type
	InodesTotal int    // always NumInodes
	Files       int    // regular files
	Dirs        int    // directories (including /)
	Symlinks    int    // symbolic links
	Bytes       uint64 // sum of regular-file sizes
	LargestFile uint32 // size of the fullest slot
	LargestIno  int    // its inode (-1 when there are no files)
}

// SlotFill reports how full the fullest slot is, in [0,1].
func (u Usage) SlotFill() float64 { return float64(u.LargestFile) / float64(MaxFile) }

// InodeFill reports the allocated fraction of the inode table, in [0,1].
func (u Usage) InodeFill() float64 { return float64(u.InodesInUse) / float64(u.InodesTotal) }

// Usage scans the inode table and returns occupancy totals.
func (fs *FS) Usage() Usage {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	u := Usage{InodesTotal: NumInodes, LargestIno: -1}
	for _, nd := range fs.inodes {
		if nd == nil {
			continue
		}
		u.InodesInUse++
		switch nd.typ {
		case TypeFile:
			u.Files++
			u.Bytes += uint64(nd.size)
			if nd.size >= u.LargestFile && (nd.size > u.LargestFile || u.LargestIno < 0) {
				u.LargestFile = nd.size
				u.LargestIno = nd.ino
			}
		case TypeDir:
			u.Dirs++
		case TypeSymlink:
			u.Symlinks++
		}
	}
	return u
}

// WalkFiles calls fn for every regular file in the file system (the
// "ability to peruse all of the segments in existence" that the paper calls
// crucial for manual garbage collection). Walk order is deterministic.
func (fs *FS) WalkFiles(fn func(path string, st Stat) error) error {
	type item struct {
		p  string
		st Stat
	}
	fs.mu.Lock()
	var items []item
	var rec func(dir *inode, prefix string)
	rec = func(dir *inode, prefix string) {
		names := make([]string, 0, len(dir.entries))
		for name := range dir.entries {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			nd := fs.inodes[dir.entries[name]]
			if nd == nil {
				continue
			}
			p := path.Join(prefix, name)
			switch nd.typ {
			case TypeFile:
				items = append(items, item{p, fs.statOf(nd)})
			case TypeDir:
				rec(nd, p)
			}
		}
	}
	rec(fs.inodes[0], "/")
	fs.mu.Unlock()
	for _, it := range items {
		if err := fn(it.p, it.st); err != nil {
			return err
		}
	}
	return nil
}

// ---- word-atomic file access -------------------------------------------------

// StoreWordAt atomically stores the big-endian word at byte offset off of
// the file at p, growing the file if needed. The dynamic linker patches
// PLT slots and text words in shared segments through this while sibling
// guest CPUs may be executing out of the very frame being written: the
// host-atomic frame store (with its version bump first) guarantees a
// concurrently fetching CPU decodes the old word or the new word — never a
// torn mix — and re-validates on its next fetch.
func (fs *FS) StoreWordAt(p string, off, val uint32, uid int) error {
	if off%4 != 0 {
		return fmt.Errorf("shmfs: unaligned word store at %d", off)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return err
	}
	if nd.typ != TypeFile {
		return ErrIsDir
	}
	if err := fs.checkPerm(nd, uid, true); err != nil {
		return err
	}
	if err := fs.ensureFrames(nd, off+4); err != nil {
		return err
	}
	nd.frames[off/mem.PageSize].StoreWordBE(off%mem.PageSize, val)
	if off+4 > nd.size {
		nd.size = off + 4
	}
	nd.mtime = fs.tick()
	return nil
}

// LoadWordAt atomically loads the big-endian word at byte offset off of
// the file at p. Reads past EOF return 0, like ReadAt.
func (fs *FS) LoadWordAt(p string, off uint32, uid int) (uint32, error) {
	if off%4 != 0 {
		return 0, fmt.Errorf("shmfs: unaligned word load at %d", off)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	nd, err := fs.walk(p, true, 0)
	if err != nil {
		return 0, err
	}
	if nd.typ != TypeFile {
		return 0, ErrIsDir
	}
	if err := fs.checkPerm(nd, uid, false); err != nil {
		return 0, err
	}
	if off+4 > nd.size {
		return 0, nil
	}
	return nd.frames[off/mem.PageSize].LoadWordBE(off % mem.PageSize), nil
}
