package shmfs

import (
	"testing"

	"hemlock/internal/mem"
)

func newTestFS(t *testing.T) *FS {
	t.Helper()
	fs, err := New(mem.NewPhysical(0))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestCreateTopDoesNotDisturbLowSlots(t *testing.T) {
	// The invariant the link cache depends on: interleaving top-allocated
	// infrastructure files with ordinary creates must leave the ordinary
	// files in exactly the slots they would occupy without them — slot
	// number is public virtual address.
	a := newTestFS(t)
	b := newTestFS(t)

	mk := func(fs *FS, i int) Stat {
		st, err := fs.Create("/mod"+string(rune('a'+i)), DefaultFileMode, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// World a: plain creates only.
	var want []int
	for i := 0; i < 5; i++ {
		want = append(want, mk(a, i).Ino)
	}
	// World b: cache traffic interleaved.
	if err := b.MkdirAllTop("/var/ldl/cache", DefaultDirMode, 0); err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 0; i < 5; i++ {
		if _, err := b.CreateTop("/var/ldl/cache/k"+string(rune('0'+i)), DefaultFileMode, 0); err != nil {
			t.Fatal(err)
		}
		got = append(got, mk(b, i).Ino)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("module %d landed in slot %d, want %d", i, got[i], want[i])
		}
	}
	// And the cache files really are up top.
	st, err := b.StatPath("/var/ldl/cache/k0")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ino < NumInodes-16 {
		t.Fatalf("cache file inode %d not near the top", st.Ino)
	}
}

func TestCreateTopExhaustion(t *testing.T) {
	fs := newTestFS(t)
	// Root dir consumes a slot already; fill everything.
	n := 0
	for {
		_, err := fs.CreateTop("/f"+itoa(n), DefaultFileMode, 0)
		if err != nil {
			break
		}
		n++
	}
	if fs.InodesInUse() != NumInodes {
		t.Fatalf("in use = %d, want full table", fs.InodesInUse())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestContentVersionTracksMappedStores(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Create("/m", DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/m", []byte("hello module text"), DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	v1, err := fs.ContentVersion("/m")
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := fs.ContentVersion("/m")
	if v1 != v2 {
		t.Fatal("fingerprint not stable across reads")
	}
	// Mutate through the mapping: grab the frames and store directly, the
	// way a guest writes a mapped segment. mtime will NOT move; the
	// fingerprint must.
	frames, _, err := fs.Frames("/m", 0, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	frames[0].NoteStore()
	frames[0].Data[0] = 'X'
	v3, _ := fs.ContentVersion("/m")
	if v3 == v1 {
		t.Fatal("fingerprint blind to a store through the mapping")
	}
	// WriteAt moves it too.
	if _, err := fs.WriteAt("/m", 0, []byte("h"), 0); err != nil {
		t.Fatal(err)
	}
	if v4, _ := fs.ContentVersion("/m"); v4 == v3 {
		t.Fatal("fingerprint blind to WriteAt")
	}
	// Directories are rejected.
	if _, err := fs.ContentVersion("/"); err == nil {
		t.Fatal("ContentVersion of a directory should fail")
	}
}
