package shmfs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"hemlock/internal/mem"
)

// Disk-image serialisation. The CLI (cmd/hemlock) keeps the whole shared
// file system in a host file between invocations, so lds can create a
// public module in one command and a later run can map it, exactly as the
// persistent shared file system survives across processes in the paper.
//
// Format (big-endian throughout):
//
//	magic "HSFS" | version u32 | inode count u32
//	per inode: ino u32 | type u8 | mode u16 | uid u32 | mtime u64
//	           file: size u32 | (frame store-version u64 | data bytes)*
//	           dir : entry count u32 | (name, ino u32)*
//	           sym : target string
//
// Strings are u16 length + bytes.
//
// Version 2 added the per-frame store-version counters. They are what
// ContentVersion fingerprints are built from, so a reboot must restore
// them: the link cache's invalidation manifests record fingerprints taken
// before the save, and losing the counters would make every entry look
// mutated-in-place. Version 1 images (no counters) still load; their
// counters restart at zero, so caches recorded before the save invalidate
// once and re-record.

const (
	imageMagic   = "HSFS"
	imageVersion = 2
)

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return fmt.Errorf("shmfs: string too long (%d)", len(s))
	}
	if err := binary.Write(w, binary.BigEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Save serialises the file system to w.
func (fs *FS) Save(w io.Writer) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(imageMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(imageVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(fs.nAlloc)); err != nil {
		return err
	}
	for i := 0; i < NumInodes; i++ {
		nd := fs.inodes[i]
		if nd == nil {
			continue
		}
		if err := binary.Write(bw, binary.BigEndian, uint32(nd.ino)); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(nd.typ)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, uint16(nd.mode)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, uint32(nd.uid)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, nd.mtime); err != nil {
			return err
		}
		switch nd.typ {
		case TypeFile:
			if err := binary.Write(bw, binary.BigEndian, nd.size); err != nil {
				return err
			}
			remain := nd.size
			for fi := 0; remain > 0; fi++ {
				n := uint32(mem.PageSize)
				if remain < n {
					n = remain
				}
				if err := binary.Write(bw, binary.BigEndian, nd.frames[fi].Version()); err != nil {
					return err
				}
				if _, err := bw.Write(nd.frames[fi].Data[:n]); err != nil {
					return err
				}
				remain -= n
			}
		case TypeDir:
			if err := binary.Write(bw, binary.BigEndian, uint32(len(nd.entries))); err != nil {
				return err
			}
			names := make([]string, 0, len(nd.entries))
			for name := range nd.entries {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				if err := writeString(bw, name); err != nil {
					return err
				}
				if err := binary.Write(bw, binary.BigEndian, uint32(nd.entries[name])); err != nil {
					return err
				}
			}
		case TypeSymlink:
			if err := writeString(bw, nd.target); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load deserialises a file system image produced by Save, backing file
// contents with frames from phys. The address lookup table is rebuilt by a
// boot scan, matching the paper's crash-recovery story.
func Load(r io.Reader, phys *mem.Physical) (*FS, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("shmfs: reading image magic: %w", err)
	}
	if string(magic) != imageMagic {
		return nil, fmt.Errorf("shmfs: bad image magic %q", magic)
	}
	var version, count uint32
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return nil, err
	}
	if version < 1 || version > imageVersion {
		return nil, fmt.Errorf("shmfs: unsupported image version %d", version)
	}
	if err := binary.Read(br, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	if count > NumInodes {
		return nil, fmt.Errorf("shmfs: image claims %d inodes (max %d)", count, NumInodes)
	}
	fs := &FS{phys: phys, Lookup: LookupLinear}
	fs.resetIndex()
	for i := uint32(0); i < count; i++ {
		var ino uint32
		if err := binary.Read(br, binary.BigEndian, &ino); err != nil {
			return nil, err
		}
		if ino >= NumInodes {
			return nil, fmt.Errorf("shmfs: inode %d out of range", ino)
		}
		typB, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		var mode uint16
		if err := binary.Read(br, binary.BigEndian, &mode); err != nil {
			return nil, err
		}
		var uid uint32
		if err := binary.Read(br, binary.BigEndian, &uid); err != nil {
			return nil, err
		}
		var mtime uint64
		if err := binary.Read(br, binary.BigEndian, &mtime); err != nil {
			return nil, err
		}
		nd := &inode{ino: int(ino), typ: FileType(typB), mode: Mode(mode), uid: int(uid), mtime: mtime}
		switch nd.typ {
		case TypeFile:
			if err := binary.Read(br, binary.BigEndian, &nd.size); err != nil {
				return nil, err
			}
			if nd.size > MaxFile {
				return nil, fmt.Errorf("shmfs: inode %d size %d exceeds limit", ino, nd.size)
			}
			if err := fs.ensureFrames(nd, nd.size); err != nil {
				return nil, err
			}
			remain := nd.size
			for fi := 0; remain > 0; fi++ {
				n := uint32(mem.PageSize)
				if remain < n {
					n = remain
				}
				if version >= 2 {
					var fver uint64
					if err := binary.Read(br, binary.BigEndian, &fver); err != nil {
						return nil, err
					}
					nd.frames[fi].RestoreVersion(fver)
				}
				if _, err := io.ReadFull(br, nd.frames[fi].Data[:n]); err != nil {
					return nil, err
				}
				remain -= n
			}
		case TypeDir:
			nd.entries = map[string]int{}
			var n uint32
			if err := binary.Read(br, binary.BigEndian, &n); err != nil {
				return nil, err
			}
			for j := uint32(0); j < n; j++ {
				name, err := readString(br)
				if err != nil {
					return nil, err
				}
				var child uint32
				if err := binary.Read(br, binary.BigEndian, &child); err != nil {
					return nil, err
				}
				nd.entries[name] = int(child)
			}
		case TypeSymlink:
			if nd.target, err = readString(br); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("shmfs: inode %d has unknown type %d", ino, typB)
		}
		fs.inodes[ino] = nd
		fs.nAlloc++
		if nd.mtime > fs.clock {
			fs.clock = nd.mtime
		}
	}
	if fs.inodes[0] == nil || fs.inodes[0].typ != TypeDir {
		return nil, fmt.Errorf("shmfs: image has no root directory")
	}
	fs.BootScan()
	return fs, nil
}
