package shmfs

// The paper's 64-bit roadmap for the address-to-file mapping: "Within the
// kernel, we will abandon the linear lookup table and the direct
// association between inode numbers and addresses. Instead, we will add an
// address field to the on-disk version of each inode, and will link these
// inodes into a lookup structure — most likely a B-tree — whose presence
// on the disk allows it to survive across re-boots."
//
// This file implements that B-tree: keys are segment base addresses,
// values are (inode, path). It is maintained alongside the linear table so
// the E-fs ablation can compare all three lookup strategies (linear scan,
// direct slot index, B-tree) over identical state. On a 32-bit prototype
// the direct index is trivially available; the B-tree is what scales to a
// 64-bit address space where slots are not dense.

import "fmt"

const btreeOrder = 8 // max children per node; max keys = btreeOrder-1

type btreeEntry struct {
	base uint32
	ino  int
	path string
}

type btreeNode struct {
	entries  []btreeEntry
	children []*btreeNode // nil for leaves
}

func (n *btreeNode) leaf() bool { return n.children == nil }

// AddrTree is a B-tree from segment base address to file identity.
type AddrTree struct {
	root  *btreeNode
	count int
}

// NewAddrTree returns an empty tree.
func NewAddrTree() *AddrTree {
	return &AddrTree{root: &btreeNode{}}
}

// Len returns the number of entries.
func (t *AddrTree) Len() int { return t.count }

// Insert adds (or replaces) the entry for base.
func (t *AddrTree) Insert(base uint32, ino int, path string) {
	if replaced := t.root.replace(base, ino, path); replaced {
		return
	}
	if len(t.root.entries) == btreeOrder-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	t.root.insertNonFull(btreeEntry{base: base, ino: ino, path: path})
	t.count++
}

// replace updates an existing key in place, reporting whether it existed.
func (n *btreeNode) replace(base uint32, ino int, path string) bool {
	i := n.search(base)
	if i < len(n.entries) && n.entries[i].base == base {
		n.entries[i].ino = ino
		n.entries[i].path = path
		return true
	}
	if n.leaf() {
		return false
	}
	return n.children[i].replace(base, ino, path)
}

// search returns the index of the first entry with base >= key.
func (n *btreeNode) search(key uint32) int {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.entries[mid].base < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := len(child.entries) / 2
	up := child.entries[mid]
	right := &btreeNode{entries: append([]btreeEntry(nil), child.entries[mid+1:]...)}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]
	n.entries = append(n.entries, btreeEntry{})
	copy(n.entries[i+1:], n.entries[i:])
	n.entries[i] = up
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *btreeNode) insertNonFull(e btreeEntry) {
	i := n.search(e.base)
	if n.leaf() {
		n.entries = append(n.entries, btreeEntry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		return
	}
	if len(n.children[i].entries) == btreeOrder-1 {
		n.splitChild(i)
		if e.base > n.entries[i].base {
			i++
		}
	}
	n.children[i].insertNonFull(e)
}

// LookupCovering finds the entry whose [base, base+SlotSize) range covers
// addr.
func (t *AddrTree) LookupCovering(addr uint32) (ino int, path string, off uint32, ok bool) {
	n := t.root
	var best *btreeEntry
	for n != nil {
		i := n.search(addr)
		if i < len(n.entries) && n.entries[i].base == addr {
			best = &n.entries[i]
			break
		}
		// The covering entry, if any, is the predecessor of addr.
		if i > 0 {
			best = &n.entries[i-1]
		}
		if n.leaf() {
			break
		}
		if i > 0 {
			// Descend right of the predecessor to find a closer one.
			n = n.children[i]
		} else {
			n = n.children[0]
		}
	}
	if best == nil || addr < best.base || addr >= best.base+SlotSize {
		return 0, "", 0, false
	}
	return best.ino, best.path, addr - best.base, true
}

// Delete removes the entry for base, reporting whether it existed. The
// implementation rebuilds from an in-order walk when the simple leaf-removal
// case does not apply; deletions are rare (file destruction) next to
// lookups, and correctness matters more than asymptotics here.
func (t *AddrTree) Delete(base uint32) bool {
	if !t.contains(base) {
		return false
	}
	entries := t.Walk()
	nt := NewAddrTree()
	for _, e := range entries {
		if e.base != base {
			nt.Insert(e.base, e.ino, e.path)
		}
	}
	t.root, t.count = nt.root, nt.count
	return true
}

func (t *AddrTree) contains(base uint32) bool {
	n := t.root
	for n != nil {
		i := n.search(base)
		if i < len(n.entries) && n.entries[i].base == base {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	return false
}

// Walk returns all entries in ascending base order.
func (t *AddrTree) Walk() []btreeEntry {
	var out []btreeEntry
	var rec func(n *btreeNode)
	rec = func(n *btreeNode) {
		for i, e := range n.entries {
			if !n.leaf() {
				rec(n.children[i])
			}
			out = append(out, e)
		}
		if !n.leaf() {
			rec(n.children[len(n.children)-1])
		}
	}
	rec(t.root)
	return out
}

// Check validates B-tree invariants: sorted keys, child key ranges, and
// uniform leaf depth.
func (t *AddrTree) Check() error {
	depth := -1
	var rec func(n *btreeNode, lo, hi uint64, d int) error
	rec = func(n *btreeNode, lo, hi uint64, d int) error {
		for i := 0; i < len(n.entries); i++ {
			k := uint64(n.entries[i].base)
			if k < lo || k >= hi {
				return fmt.Errorf("shmfs: btree key 0x%x outside (0x%x,0x%x)", k, lo, hi)
			}
			if i > 0 && n.entries[i-1].base >= n.entries[i].base {
				return fmt.Errorf("shmfs: btree keys out of order")
			}
		}
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if d != depth {
				return fmt.Errorf("shmfs: btree leaves at depths %d and %d", depth, d)
			}
			return nil
		}
		if len(n.children) != len(n.entries)+1 {
			return fmt.Errorf("shmfs: btree node has %d entries, %d children", len(n.entries), len(n.children))
		}
		next := lo
		for i, c := range n.children {
			var bound uint64
			if i < len(n.entries) {
				bound = uint64(n.entries[i].base)
			} else {
				bound = hi
			}
			if err := rec(c, next, bound, d+1); err != nil {
				return err
			}
			next = bound + 1
		}
		return nil
	}
	return rec(t.root, 0, 1<<33, 0)
}
