package shmfs

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBTreeInsertLookup(t *testing.T) {
	tr := NewAddrTree()
	for i := 0; i < 200; i++ {
		tr.Insert(AddrOf(i), i, fmt.Sprintf("/f%d", i))
		if err := tr.Check(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 200; i++ {
		ino, path, off, ok := tr.LookupCovering(AddrOf(i) + uint32(i))
		if !ok || ino != i || path != fmt.Sprintf("/f%d", i) || off != uint32(i) {
			t.Fatalf("lookup %d: %d %q %d %v", i, ino, path, off, ok)
		}
	}
	// Address past the last slot's range is not covered.
	if _, _, _, ok := tr.LookupCovering(AddrOf(200) + 5); ok {
		t.Fatal("uncovered address resolved")
	}
}

func TestBTreeEmptyAndMiss(t *testing.T) {
	tr := NewAddrTree()
	if _, _, _, ok := tr.LookupCovering(Base); ok {
		t.Fatal("empty tree resolved an address")
	}
	tr.Insert(AddrOf(5), 5, "/five")
	if _, _, _, ok := tr.LookupCovering(AddrOf(4)); ok {
		t.Fatal("gap before entry resolved")
	}
	if _, _, _, ok := tr.LookupCovering(AddrOf(6)); ok {
		t.Fatal("gap after entry resolved")
	}
}

func TestBTreeReplace(t *testing.T) {
	tr := NewAddrTree()
	tr.Insert(AddrOf(3), 3, "/old")
	tr.Insert(AddrOf(3), 3, "/new")
	if tr.Len() != 1 {
		t.Fatalf("len = %d after replace", tr.Len())
	}
	_, path, _, _ := tr.LookupCovering(AddrOf(3))
	if path != "/new" {
		t.Fatalf("path = %q", path)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := NewAddrTree()
	for i := 0; i < 60; i++ {
		tr.Insert(AddrOf(i), i, fmt.Sprintf("/f%d", i))
	}
	for i := 0; i < 60; i += 3 {
		if !tr.Delete(AddrOf(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(AddrOf(0)) {
		t.Fatal("double delete succeeded")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 40 {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 60; i++ {
		_, _, _, ok := tr.LookupCovering(AddrOf(i))
		want := i%3 != 0
		if ok != want {
			t.Fatalf("entry %d present=%v, want %v", i, ok, want)
		}
	}
}

func TestBTreeWalkSorted(t *testing.T) {
	tr := NewAddrTree()
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(300)
	for _, i := range perm {
		tr.Insert(AddrOf(i), i, "")
	}
	walk := tr.Walk()
	if len(walk) != 300 {
		t.Fatalf("walk len = %d", len(walk))
	}
	for i := 1; i < len(walk); i++ {
		if walk[i-1].base >= walk[i].base {
			t.Fatal("walk not sorted")
		}
	}
}

// Property: for any insertion order of distinct slots, every inserted slot
// resolves and the tree stays valid.
func TestBTreeRandomisedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		tr := NewAddrTree()
		perm := rng.Perm(NumInodes)[:n]
		for _, i := range perm {
			tr.Insert(AddrOf(i), i, "")
		}
		if tr.Check() != nil || tr.Len() != n {
			return false
		}
		for _, i := range perm {
			ino, _, _, ok := tr.LookupCovering(AddrOf(i) + SlotSize - 1)
			if !ok || ino != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFSBTreeStaysConsistent(t *testing.T) {
	fs := newFS(t)
	fs.Lookup = LookupBTree
	for i := 0; i < 30; i++ {
		fs.Create(fmt.Sprintf("/f%d", i), DefaultFileMode, 0)
	}
	for i := 0; i < 30; i += 2 {
		fs.Unlink(fmt.Sprintf("/f%d", i), 0)
	}
	for i := 0; i < 30; i++ {
		_, _, err := fs.AddrToPath(AddrOf(i + 1)) // +1: root dir is inode 0
		_ = err
	}
	// Every remaining file resolves through the tree.
	count := 0
	fs.WalkFiles(func(p string, st Stat) error {
		got, _, err := fs.AddrToPath(st.Addr)
		if err != nil || got != p {
			t.Fatalf("btree lookup of %s: %q, %v", p, got, err)
		}
		count++
		return nil
	})
	if count != 15 {
		t.Fatalf("files = %d", count)
	}
}
