package shmfs

import (
	"bytes"
	"math/rand"
	"testing"

	"hemlock/internal/mem"
)

// TestLoadNeverPanics: disk images may be truncated or corrupted on the
// host; Load must reject them with errors, never panic.
func TestLoadNeverPanics(t *testing.T) {
	fs := newFS(t)
	fs.MkdirAll("/a/b", DefaultDirMode, 3)
	fs.Create("/a/b/file", DefaultFileMode, 3)
	fs.WriteAt("/a/b/file", 0, bytes.Repeat([]byte{0xAA}, 9000), 3)
	fs.Symlink("/a/b/file", "/link", 0)
	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 400; i++ {
		c := append([]byte(nil), enc...)
		switch rng.Intn(3) {
		case 0:
			for j := 0; j < 1+rng.Intn(5); j++ {
				c[rng.Intn(len(c))] ^= byte(1 + rng.Intn(255))
			}
		case 1:
			c = c[:rng.Intn(len(c))]
		case 2:
			junk := make([]byte, rng.Intn(128))
			rng.Read(junk)
			c = append(c, junk...)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutation %d: Load panicked: %v", i, r)
				}
			}()
			if fs2, err := Load(bytes.NewReader(c), mem.NewPhysical(0)); err == nil && fs2 != nil {
				// A surviving load must at least have a usable root and a
				// consistent boot scan.
				if _, rerr := fs2.ReadDir("/"); rerr != nil {
					t.Fatalf("mutation %d: loaded fs has broken root: %v", i, rerr)
				}
				fs2.BootScan()
			}
		}()
	}
}

// TestSaveLoadManyFilesStress exercises a heavily populated image.
func TestSaveLoadManyFilesStress(t *testing.T) {
	fs := newFS(t)
	payload := bytes.Repeat([]byte("x"), 3000)
	for i := 0; i < 200; i++ {
		dir := "/d" + string(rune('0'+i%10))
		fs.MkdirAll(dir, DefaultDirMode, 0)
		p := dir + "/f" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		if _, err := fs.Create(p, DefaultFileMode, i%50); err != nil {
			continue // name collisions are fine for this stress shape
		}
		fs.WriteAt(p, 0, payload[:i%len(payload)+1], 0)
	}
	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	fs2, err := Load(&buf, mem.NewPhysical(0))
	if err != nil {
		t.Fatal(err)
	}
	// Every file resolves by address after the load's boot scan.
	n := 0
	fs2.WalkFiles(func(p string, st Stat) error {
		got, _, err := fs2.AddrToPath(st.Addr)
		if err != nil || got != p {
			t.Fatalf("%s: %q, %v", p, got, err)
		}
		n++
		return nil
	})
	if n == 0 {
		t.Fatal("no files survived")
	}
	if fs2.InodesInUse() != fs.InodesInUse() {
		t.Fatalf("inode counts differ: %d vs %d", fs2.InodesInUse(), fs.InodesInUse())
	}
}
