package shmfs

import (
	"errors"
	"testing"

	"hemlock/internal/mem"
)

func TestCreateAtPinsInodeAndAddress(t *testing.T) {
	fs, err := New(mem.NewPhysical(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/lib", DefaultDirMode, 0); err != nil {
		t.Fatal(err)
	}
	st, err := fs.CreateAt("/lib/whod", 7, DefaultFileMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ino != 7 || st.Addr != AddrOf(7) {
		t.Fatalf("stat = %+v, want ino 7 at 0x%08x", st, AddrOf(7))
	}
	// The address lookup table covers it like any other file.
	p, off, err := fs.AddrToPath(AddrOf(7) + 100)
	if err != nil || p != "/lib/whod" || off != 100 {
		t.Fatalf("AddrToPath: %q %d %v", p, off, err)
	}
	// Occupied inode and existing path both refuse.
	if _, err := fs.CreateAt("/lib/other", 7, DefaultFileMode, 0); !errors.Is(err, ErrExist) {
		t.Fatalf("occupied inode: %v", err)
	}
	if _, err := fs.CreateAt("/lib/whod", 8, DefaultFileMode, 0); !errors.Is(err, ErrExist) {
		t.Fatalf("existing path: %v", err)
	}
	if _, err := fs.CreateAt("/lib/oob", NumInodes, DefaultFileMode, 0); !errors.Is(err, ErrInval) {
		t.Fatalf("out-of-range inode: %v", err)
	}
	// Ordinary allocation skips the pinned inode.
	for i := 0; i < 3; i++ {
		if _, err := fs.Create("/lib/f"+string(rune('0'+i)), DefaultFileMode, 0); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := fs.StatPath("/lib/f2")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Ino == 7 {
		t.Fatal("allocator reused the pinned inode")
	}
	// Unlinking frees the slot for reuse.
	if err := fs.Unlink("/lib/whod", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.CreateAt("/lib/whod2", 7, DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
}
