package doctor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"hemlock/internal/core"
	"hemlock/internal/ldl"
	"hemlock/internal/lds"
	"hemlock/internal/netshm"
	"hemlock/internal/netsim"
	"hemlock/internal/objfile"
	"hemlock/internal/server"
	"hemlock/internal/shalloc"
	"hemlock/internal/shmfs"
)

func findingsOf(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func TestHealthyWorldIsClean(t *testing.T) {
	sys := core.NewSystem()
	if _, err := server.InstallDemo(sys); err != nil {
		t.Fatal(err)
	}
	fs := CheckSystem(sys, Options{})
	if len(fs) != 0 {
		t.Fatalf("healthy world has findings:\n%s", Render(fs))
	}
}

func TestInodeExhaustion(t *testing.T) {
	sys := core.NewSystem()
	if err := sys.FS.MkdirAll("/spool", shmfs.DefaultDirMode, 0); err != nil {
		t.Fatal(err)
	}
	next := 0
	mk := func(n int) {
		t.Helper()
		for sys.FS.InodesInUse() < n {
			if _, err := sys.FS.Create(fmt.Sprintf("/spool/f%04d", next), shmfs.DefaultFileMode, 0); err != nil {
				t.Fatal(err)
			}
			next++
		}
	}
	mk(shmfs.NumInodes * 85 / 100)
	fs := findingsOf(CheckSystem(sys, Options{}), "inode-slots")
	if len(fs) != 1 || fs[0].Severity != Warn {
		t.Fatalf("at 85%% fill: %v", fs)
	}
	mk(shmfs.NumInodes * 96 / 100)
	fs = findingsOf(CheckSystem(sys, Options{}), "inode-slots")
	if len(fs) != 1 || fs[0].Severity != Critical {
		t.Fatalf("at 96%% fill: %v", fs)
	}
}

// TestSlotExhausted is the acceptance case: a deliberately slot-exhausted
// image — one segment grown to the full 1 MB slot — must be flagged.
func TestSlotExhausted(t *testing.T) {
	sys := core.NewSystem()
	if _, err := sys.FS.Create("/fat", shmfs.DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.FS.Truncate("/fat", shmfs.MaxFile, 0); err != nil {
		t.Fatal(err)
	}
	fs := findingsOf(CheckSystem(sys, Options{}), "slot-fill")
	if len(fs) != 1 || fs[0].Severity != Critical || fs[0].Subject != "/fat" {
		t.Fatalf("slot-fill findings: %v", fs)
	}
	if !strings.Contains(fs[0].Detail, "exhausted") {
		t.Fatalf("detail: %s", fs[0].Detail)
	}
}

// rwMem is a writable file-backed Mem for planting heaps in tests.
type rwMem struct {
	fs   *shmfs.FS
	path string
	base uint32
}

func (m rwMem) LoadWord(addr uint32) (uint32, error) {
	var b [4]byte
	n, err := m.fs.ReadAt(m.path, addr-m.base, b[:], 0)
	if err != nil {
		return 0, err
	}
	if n < 4 {
		return 0, fmt.Errorf("short read at 0x%08x", addr)
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func (m rwMem) StoreWord(addr, val uint32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], val)
	_, err := m.fs.WriteAt(m.path, addr-m.base, b[:], 0)
	return err
}

func plantHeap(t *testing.T, sys *core.System, path string, size uint32) (*shalloc.Heap, rwMem) {
	t.Helper()
	if err := sys.FS.MkdirAll("/seg", shmfs.DefaultDirMode, 0); err != nil {
		t.Fatal(err)
	}
	st, err := sys.FS.Create(path, shmfs.DefaultFileMode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FS.Truncate(path, size, 0); err != nil {
		t.Fatal(err)
	}
	m := rwMem{fs: sys.FS, path: path, base: st.Addr}
	h, err := shalloc.Init(m, st.Addr, size)
	if err != nil {
		t.Fatal(err)
	}
	return h, m
}

func TestShallocExhaustionAndCorruption(t *testing.T) {
	sys := core.NewSystem()
	h, _ := plantHeap(t, sys, "/seg/full", 4096)
	// Allocate until the heap is exhausted: well past the warn threshold.
	n := 0
	for ; n < 64; n++ {
		if _, err := h.Alloc(256); err != nil {
			break
		}
	}
	if n == 0 || n == 64 {
		t.Fatalf("allocated %d blocks from a 4 KiB heap", n)
	}
	fs := findingsOf(CheckSystem(sys, Options{}), "shalloc")
	if len(fs) != 1 || fs[0].Severity != Warn || fs[0].Subject != "/seg/full" {
		t.Fatalf("exhaustion findings: %v", fs)
	}

	// A corrupt free list is critical.
	_, m := plantHeap(t, sys, "/seg/bad", 4096)
	st, err := sys.FS.StatPath("/seg/bad")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StoreWord(st.Addr+8, 0x12345678); err != nil { // free-list head -> garbage
		t.Fatal(err)
	}
	fs = findingsOf(CheckSystem(sys, Options{}), "shalloc")
	var bad []Finding
	for _, f := range fs {
		if f.Subject == "/seg/bad" {
			bad = append(bad, f)
		}
	}
	if len(bad) == 0 || Worst(bad) != Critical {
		t.Fatalf("corruption findings: %v", fs)
	}
}

func TestImageChecks(t *testing.T) {
	sys := core.NewSystem()
	if _, err := server.InstallDemo(sys); err != nil {
		t.Fatal(err)
	}
	// Healthy demo image: no findings (its retained relocs are satisfied
	// by the kv module along its search path).
	if fs := CheckSystem(sys, Options{}); len(fs) != 0 {
		t.Fatalf("demo image findings:\n%s", Render(fs))
	}

	// Delete the module template: the image's lazy references now have no
	// provider anywhere on the search path.
	if err := sys.FS.Unlink("/lib/kv.o", 0); err != nil {
		t.Fatal(err)
	}
	fs := findingsOf(CheckSystem(sys, Options{}), "relocs")
	if len(fs) == 0 || Worst(fs) != Critical {
		t.Fatalf("missing-module findings: %v", fs)
	}
	for _, f := range fs {
		if f.Subject != server.DemoExe {
			t.Fatalf("finding subject %q, want %q", f.Subject, server.DemoExe)
		}
	}
}

func TestAddrWindowConflict(t *testing.T) {
	sys := core.NewSystem()
	// Two programs, each statically binding its own public module. Doctor
	// must be quiet while the windows agree.
	mod := `
        .text
        .globl  pub_fn%d
pub_fn%d: jr    $ra
`
	main := `
        .text
        .globl  main
        .extern pub_fn%d
main:   move    $s1, $ra
        jal     pub_fn%d
        move    $ra, $s1
        li      $v0, 0
        jr      $ra
`
	for i := 0; i < 2; i++ {
		if _, err := sys.Asm(fmt.Sprintf("/lib/pub%d.o", i), fmt.Sprintf(mod, i, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Asm(fmt.Sprintf("/bin/main%d.o", i), fmt.Sprintf(main, i, i)); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Link(&lds.Options{
			Output: fmt.Sprintf("app%d", i),
			Modules: []lds.Input{
				{Name: fmt.Sprintf("main%d.o", i), Class: objfile.StaticPrivate},
				{Name: fmt.Sprintf("pub%d.o", i), Class: objfile.StaticPublic},
			},
			LinkDir:     "/bin",
			DefaultPath: []string{"/lib"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.SaveExecutable(fmt.Sprintf("/bin/app%d", i), res.Image); err != nil {
			t.Fatal(err)
		}
	}
	if fs := findingsOf(CheckSystem(sys, Options{}), "addr-window"); len(fs) != 0 {
		t.Fatalf("agreeing windows flagged: %v", fs)
	}

	// Destroy and recreate one instance so it lands at a different inode —
	// the image's recorded window now disagrees with the file system.
	st, err := sys.FS.StatPath("/lib/pub0")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FS.Unlink("/lib/pub0", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.FS.CreateAt("/lib/pub0", st.Ino+7, shmfs.DefaultFileMode, 0); err != nil {
		t.Fatal(err)
	}
	fs := findingsOf(CheckSystem(sys, Options{}), "addr-window")
	if len(fs) != 1 || fs[0].Severity != Critical {
		t.Fatalf("moved-window findings: %v", fs)
	}
}

// TestFleetStaleAndDiverged is the acceptance case for the fleet checks: a
// deliberately stale replica (an update lost on the wire, the gap known
// from the home's announce) and a deliberately diverged one (bytes
// corrupted at an agreed generation) are both flagged.
func TestFleetStaleAndDiverged(t *testing.T) {
	net := netsim.New()
	fl := netshm.NewFleet(net, netshm.Config{AnnounceTicks: 1, RetryTicks: 4, RetryMax: 1})
	home := fl.Add("home", core.NewSystem())
	replica := fl.Add("replica", core.NewSystem())
	_ = replica

	if err := home.Publish("/shared/db", []byte("generation one")); err != nil {
		t.Fatal(err)
	}
	if _, ok := fl.WaitConverged("/shared/db", 64); !ok {
		t.Fatal("fleet did not converge")
	}
	if fs := CheckFleet(fl, Options{}); len(fs) != 0 {
		t.Fatalf("converged fleet has findings:\n%s", Render(fs))
	}

	// Lose the next update on the wire (Write sends its sync synchronously,
	// so arming Drop just around it loses exactly that datagram); the
	// home's next announce then tells the replica it is behind, and before
	// the pull machinery heals it the doctor sees a stale replica.
	drop := true
	net.Drop = func(from, to string, seq uint64) bool { return drop && from == "home" && to == "replica" }
	if err := home.Write("/shared/db", 0, []byte("generation two")); err != nil {
		t.Fatal(err)
	}
	drop = false
	stale := false
	for i := 0; i < 32 && !stale; i++ {
		fl.Tick()
		si, err := fl.Node("replica").Info("/shared/db")
		if err != nil {
			t.Fatal(err)
		}
		stale = si.Stale()
	}
	if !stale {
		t.Fatal("replica never learned it was stale")
	}
	fs := findingsOf(CheckFleet(fl, Options{}), "replica-stale")
	if len(fs) != 1 || fs[0].Subject != "replica:/shared/db" {
		t.Fatalf("stale findings: %v", fs)
	}

	// Heal the fleet, then corrupt the replica's bytes behind the
	// protocol's back: generations agree, content does not — critical.
	drop = false
	if _, ok := fl.WaitConverged("/shared/db", 256); !ok {
		t.Fatal("fleet did not re-converge")
	}
	if fs := CheckFleet(fl, Options{}); len(fs) != 0 {
		t.Fatalf("healed fleet has findings:\n%s", Render(fs))
	}
	if _, err := fl.Node("replica").Sys().FS.WriteAt("/shared/db", 0, []byte("X"), 0); err != nil {
		t.Fatal(err)
	}
	fs = findingsOf(CheckFleet(fl, Options{}), "replica-diverged")
	if len(fs) != 1 || fs[0].Severity != Critical || fs[0].Subject != "replica:/shared/db" {
		t.Fatalf("diverged findings: %v", fs)
	}
}

// TestFleetMigrationFreezeAndHeal wire-drops a home-migration offer: the
// doctor flags the frozen home while the offer retries (writes refused),
// and reports a clean fleet again after the home gives up, bumps past the
// abandoned epoch, and the fleet re-converges.
func TestFleetMigrationFreezeAndHeal(t *testing.T) {
	net := netsim.New()
	fl := netshm.NewFleet(net, netshm.Config{AnnounceTicks: 2, RetryTicks: 4, RetryMax: 2})
	m0 := fl.Add("m0", core.NewSystem())
	m1 := fl.Add("m1", core.NewSystem())
	if err := m0.Publish("/shared/db", []byte("fleet-scale content")); err != nil {
		t.Fatal(err)
	}
	if _, ok := fl.WaitConverged("/shared/db", 64); !ok {
		t.Fatal("fleet did not converge")
	}

	// Drop everything addressed to the migration target: the offer (and
	// its retries) die on the wire, so the home stays frozen.
	drop := true
	net.Drop = func(from, to string, seq uint64) bool { return drop && to == "m1" }
	if err := m0.MigrateTo("/shared/db", "m1"); err != nil {
		t.Fatal(err)
	}
	fs := findingsOf(CheckFleet(fl, Options{}), "home-frozen")
	if len(fs) != 1 || fs[0].Severity != Warn || fs[0].Subject != "m0:/shared/db" {
		t.Fatalf("frozen findings: %v", fs)
	}
	if err := m0.Write("/shared/db", 0, []byte("x")); !errors.Is(err, netshm.ErrMigrating) {
		t.Fatalf("write during migration: %v, want ErrMigrating", err)
	}
	_ = m1

	// The offer retries exhaust and the home aborts, resuming authority.
	aborted := false
	for i := 0; i < 128 && !aborted; i++ {
		fl.Tick()
		si, err := m0.Info("/shared/db")
		if err != nil {
			t.Fatal(err)
		}
		aborted = !si.Migrating
	}
	if !aborted {
		t.Fatal("migration never aborted")
	}
	if si, _ := m0.Info("/shared/db"); !si.IsHome {
		t.Fatal("home did not resume authority after abort")
	}
	drop = false
	if _, ok := fl.WaitConverged("/shared/db", 256); !ok {
		t.Fatal("fleet did not re-converge after abort")
	}
	if fs := CheckFleet(fl, Options{}); len(fs) != 0 {
		t.Fatalf("healed fleet has findings:\n%s", Render(fs))
	}
}

// TestFleetLeaseSkewAndOrphanChecks drives the remaining fleet checks: a
// replica serving reads past its lease against drifted bytes, a skewed
// transactional version clock at an agreed generation, and a segment no
// machine claims the home role for.
func TestFleetLeaseSkewAndOrphanChecks(t *testing.T) {
	net := netsim.New()
	fl := netshm.NewFleet(net, netshm.Config{AnnounceTicks: 2, RetryTicks: 4, RetryMax: 2, LeaseTicks: 16})
	m0 := fl.Add("m0", core.NewSystem())
	m1 := fl.Add("m1", core.NewSystem())
	if err := m0.Publish("/shared/db", []byte("generation one")); err != nil {
		t.Fatal(err)
	}
	if _, ok := fl.WaitConverged("/shared/db", 64); !ok {
		t.Fatal("fleet did not converge")
	}
	if si, _ := m1.Info("/shared/db"); si.LeaseUntil == 0 {
		t.Fatal("replica never granted a read lease")
	}

	// Partition the replica, mutate at the home, and let the replica's
	// lease run out: it keeps answering reads it can no longer vouch for.
	drop := true
	net.Drop = func(from, to string, seq uint64) bool { return drop && to == "m1" }
	if err := m0.Write("/shared/db", 0, []byte("generation two")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		fl.Tick()
	}
	fs := findingsOf(CheckFleet(fl, Options{}), "lease-stale")
	if len(fs) != 1 || fs[0].Severity != Warn || fs[0].Subject != "m1:/shared/db" {
		t.Fatalf("lease findings: %v", fs)
	}

	// Heal, then skew the replica's version clock at the agreed
	// generation: transactions validated there would be unsound.
	drop = false
	if _, ok := fl.WaitConverged("/shared/db", 256); !ok {
		t.Fatal("fleet did not re-converge")
	}
	if fs := CheckFleet(fl, Options{}); len(fs) != 0 {
		t.Fatalf("healed fleet has findings:\n%s", Render(fs))
	}
	if err := m1.SkewClock("/shared/db", 5); err != nil {
		t.Fatal(err)
	}
	fs = findingsOf(CheckFleet(fl, Options{}), "txn-clock-diverged")
	if len(fs) != 1 || fs[0].Severity != Critical || fs[0].Subject != "m1:/shared/db" {
		t.Fatalf("clock findings: %v", fs)
	}
	if err := m1.SkewClock("/shared/db", -5); err != nil {
		t.Fatal(err)
	}
	if fs := CheckFleet(fl, Options{}); len(fs) != 0 {
		t.Fatalf("unskewed fleet has findings:\n%s", Render(fs))
	}

	// Finally, the home crashes and restarts without its role: nobody can
	// ever accept a write for the segment again.
	if err := m0.DropHomeRole("/shared/db"); err != nil {
		t.Fatal(err)
	}
	fs = findingsOf(CheckFleet(fl, Options{}), "home-orphaned")
	if len(fs) != 1 || fs[0].Severity != Critical || fs[0].Subject != "/shared/db" {
		t.Fatalf("orphan findings: %v", fs)
	}
}

// linkCachedSystem boots a world, performs one cold launch so the linker
// records a cache entry under ldl.CacheDir, and returns the system plus
// the cache entry's path.
func linkCachedSystem(t *testing.T) (*core.System, string) {
	t.Helper()
	sys := core.NewSystem()
	if _, err := sys.Asm("/lib/buf.o", ".data\n.globl buf_v\nbuf_v: .word 7\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Asm("/bin/main.o", ".text\n.globl main\nmain: jr $ra\n"); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Link(&lds.Options{
		Output: "main",
		Modules: []lds.Input{
			{Name: "main.o", Class: objfile.StaticPrivate},
			{Name: "buf.o", Class: objfile.DynamicPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := sys.Launch(res.Image, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.Run(100_000); err != nil {
		t.Fatal(err)
	}
	ents, err := sys.FS.ReadDir(ldl.CacheDir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("cache entries after cold launch: %v (err %v)", ents, err)
	}
	return sys, ldl.CacheDir + "/" + ents[0].Name
}

// TestLinkCacheStaleAfterInPlaceMutation is the acceptance case: mutating
// a module template in place leaves the recorded cache entry stale, and
// doctor flags it (WARN) before the next launch self-invalidates it.
func TestLinkCacheStaleAfterInPlaceMutation(t *testing.T) {
	sys, cachePath := linkCachedSystem(t)
	if fs := findingsOf(CheckSystem(sys, Options{}), "linkcache.stale"); len(fs) != 0 {
		t.Fatalf("fresh cache flagged stale:\n%s", Render(fs))
	}
	if _, err := sys.Asm("/lib/buf.o", ".data\n.globl buf_v\nbuf_v: .word 9\n"); err != nil {
		t.Fatal(err)
	}
	fs := findingsOf(CheckSystem(sys, Options{}), "linkcache.stale")
	if len(fs) != 1 || fs[0].Severity != Warn || fs[0].Subject != cachePath {
		t.Fatalf("after in-place mutation: %v", fs)
	}
	if !strings.Contains(fs[0].Detail, "/lib/buf.o") {
		t.Fatalf("stale finding does not name the mutated module: %s", fs[0].Detail)
	}
}

func TestLinkCacheOrphanedAfterModuleRemoval(t *testing.T) {
	sys, cachePath := linkCachedSystem(t)
	if err := sys.FS.Unlink("/lib/buf.o", 0); err != nil {
		t.Fatal(err)
	}
	fs := findingsOf(CheckSystem(sys, Options{}), "linkcache.orphaned")
	if len(fs) != 1 || fs[0].Severity != Warn || fs[0].Subject != cachePath {
		t.Fatalf("after module removal: %v", fs)
	}
}

func TestLinkCacheCorruptHeader(t *testing.T) {
	sys, cachePath := linkCachedSystem(t)
	if _, err := sys.FS.WriteAt(cachePath, 0, []byte("XXXX"), 0); err != nil {
		t.Fatal(err)
	}
	fs := findingsOf(CheckSystem(sys, Options{}), "linkcache.corrupt")
	if len(fs) != 1 || fs[0].Severity != Critical || fs[0].Subject != cachePath {
		t.Fatalf("after header corruption: %v", fs)
	}
}
