// Package doctor runs self-checks over a Hemlock world or fleet and
// reports typed findings. It is the operational counterpart of fsck: where
// fsck validates the file-system structures, doctor looks for the ways a
// long-running multi-tenant image wears out — inode slots running dry,
// segment slots filling toward the 1 MB ceiling, in-segment heaps
// exhausting or corrupting, executables shipping unresolved references or
// conflicting public address windows, and (fleet-wide) replicas stuck
// stale or holding divergent bytes after the protocol quiesces.
//
// Every problem is a Finding with a severity, so callers (the doctor CLI
// subcommand, CI, tests) can decide what is fatal: Critical findings fail
// the `hemlock doctor` exit status, Warn findings are advisory.
package doctor

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"hemlock/internal/core"
	"hemlock/internal/ldl"
	"hemlock/internal/lds"
	"hemlock/internal/netshm"
	"hemlock/internal/objfile"
	"hemlock/internal/shalloc"
	"hemlock/internal/shmfs"
)

// Severity ranks a finding.
type Severity uint8

// Severities, in ascending order.
const (
	Info Severity = iota
	Warn
	Critical
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "INFO"
	case Warn:
		return "WARN"
	case Critical:
		return "CRIT"
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// Finding is one diagnosed condition.
type Finding struct {
	Check    string   `json:"check"`    // which self-check fired
	Severity Severity `json:"severity"` // how bad it is
	Subject  string   `json:"subject"`  // path, machine, or machine:path
	Detail   string   `json:"detail"`   // human-readable specifics
}

func (f Finding) String() string {
	return fmt.Sprintf("%s [%s] %s: %s", f.Severity, f.Check, f.Subject, f.Detail)
}

// Worst returns the highest severity present (Info when empty).
func Worst(fs []Finding) Severity {
	w := Info
	for _, f := range fs {
		if f.Severity > w {
			w = f.Severity
		}
	}
	return w
}

// Render formats findings one per line, stably sorted by severity
// (descending), then check, then subject.
func Render(fs []Finding) string {
	sorted := append([]Finding(nil), fs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Severity != sorted[j].Severity {
			return sorted[i].Severity > sorted[j].Severity
		}
		if sorted[i].Check != sorted[j].Check {
			return sorted[i].Check < sorted[j].Check
		}
		return sorted[i].Subject < sorted[j].Subject
	})
	var b strings.Builder
	for _, f := range sorted {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Options are the check thresholds. The zero value selects the defaults.
type Options struct {
	InodeWarn float64 // inode-table fill that warns (default 0.80)
	InodeCrit float64 // inode-table fill that is critical (default 0.95)
	SlotWarn  float64 // file-size/slot-size fill that warns (default 0.80)
	HeapWarn  float64 // shalloc used/size fill that warns (default 0.80)
}

func (o Options) withDefaults() Options {
	if o.InodeWarn == 0 {
		o.InodeWarn = 0.80
	}
	if o.InodeCrit == 0 {
		o.InodeCrit = 0.95
	}
	if o.SlotWarn == 0 {
		o.SlotWarn = 0.80
	}
	if o.HeapWarn == 0 {
		o.HeapWarn = 0.80
	}
	return o
}

// CheckSystem runs every single-machine self-check over sys.
func CheckSystem(sys *core.System, opt Options) []Finding {
	opt = opt.withDefaults()
	var out []Finding
	out = append(out, checkInodes(sys.FS, opt)...)
	out = append(out, checkFiles(sys.FS, opt)...)
	out = append(out, checkLinkCache(sys.FS)...)
	return out
}

// checkLinkCache diagnoses the persistent link cache (ldl.CacheDir): an
// entry that no longer decodes is corrupt (Critical — the linker will
// detect it and fall back cold, but something scribbled on the cache);
// an entry whose recorded module fingerprints no longer match the on-disk
// templates is stale, and one whose templates are gone entirely is
// orphaned (both Warn — dead weight that invalidates itself on next
// probe, but a sign modules churn faster than launches reuse them).
func checkLinkCache(fs *shmfs.FS) []Finding {
	var out []Finding
	for _, e := range ldl.InspectCache(fs) {
		if e.Err != nil {
			out = append(out, Finding{
				Check: "linkcache.corrupt", Severity: Critical, Subject: e.Path,
				Detail: fmt.Sprintf("undecodable cache entry: %v", e.Err),
			})
			continue
		}
		for _, d := range e.Deps {
			switch {
			case d.Missing:
				out = append(out, Finding{
					Check: "linkcache.orphaned", Severity: Warn, Subject: e.Path,
					Detail: fmt.Sprintf("recorded against %s, which is no longer on disk", d.Path),
				})
			case d.Stale:
				out = append(out, Finding{
					Check: "linkcache.stale", Severity: Warn, Subject: e.Path,
					Detail: fmt.Sprintf("%s changed in place since recording (fingerprint %016x, recorded %016x)",
						d.Path, d.Current, d.Recorded),
				})
			}
		}
	}
	return out
}

// checkInodes watches the fixed 1024-entry inode table run dry: past the
// warn threshold new segments are living on borrowed time, past critical
// the next burst of segment creation fails with ENOSPC.
func checkInodes(fs *shmfs.FS, opt Options) []Finding {
	u := fs.Usage()
	fill := u.InodeFill()
	detail := fmt.Sprintf("%d of %d inodes allocated (%.0f%%)", u.InodesInUse, u.InodesTotal, fill*100)
	switch {
	case fill >= opt.InodeCrit:
		return []Finding{{Check: "inode-slots", Severity: Critical, Subject: "/", Detail: detail}}
	case fill >= opt.InodeWarn:
		return []Finding{{Check: "inode-slots", Severity: Warn, Subject: "/", Detail: detail}}
	}
	return nil
}

// checkFiles walks every regular file once, running the per-file checks:
// slot fill, in-segment heap health, and executable-image hygiene.
func checkFiles(fs *shmfs.FS, opt Options) []Finding {
	var out []Finding
	// publicAt records which path claims each public base address, across
	// every HEMX image on the file system; two images binding different
	// paths to one window cannot coexist in the same world.
	publicAt := map[uint32]string{}
	fs.WalkFiles(func(p string, st shmfs.Stat) error {
		fill := float64(st.Size) / float64(shmfs.MaxFile)
		switch {
		case st.Size >= shmfs.MaxFile:
			out = append(out, Finding{Check: "slot-fill", Severity: Critical, Subject: p,
				Detail: fmt.Sprintf("slot exhausted: %d bytes fills the %d-byte slot; the segment cannot grow", st.Size, shmfs.MaxFile)})
		case fill >= opt.SlotWarn:
			out = append(out, Finding{Check: "slot-fill", Severity: Warn, Subject: p,
				Detail: fmt.Sprintf("%d of %d slot bytes used (%.0f%%)", st.Size, shmfs.MaxFile, fill*100)})
		}
		if st.Size < 4 {
			return nil
		}
		var head [4]byte
		if n, err := fs.ReadAt(p, 0, head[:], 0); err != nil || n < 4 {
			return nil
		}
		switch string(head[:]) {
		case "SHAL":
			out = append(out, checkHeap(fs, p, st, opt)...)
		case "HEMX":
			out = append(out, checkImage(fs, p, st, publicAt)...)
		}
		return nil
	})
	return out
}

// fsMem adapts one shared-fs file to shalloc's Mem so the doctor can walk
// a segment heap without mapping it into any address space. It is
// read-only: the doctor diagnoses, it does not operate.
type fsMem struct {
	fs   *shmfs.FS
	path string
	base uint32
}

func (m fsMem) LoadWord(addr uint32) (uint32, error) {
	var b [4]byte
	n, err := m.fs.ReadAt(m.path, addr-m.base, b[:], 0)
	if err != nil {
		return 0, err
	}
	if n < 4 {
		return 0, fmt.Errorf("doctor: word at 0x%08x is past EOF of %s", addr, m.path)
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func (m fsMem) StoreWord(addr, val uint32) error {
	return fmt.Errorf("doctor: refusing to write 0x%08x (read-only access to %s)", addr, m.path)
}

// checkHeap validates a segment heap: metadata invariants (critical when
// violated) and space exhaustion (warn past the threshold).
func checkHeap(fs *shmfs.FS, p string, st shmfs.Stat, opt Options) []Finding {
	h, err := shalloc.Attach(fsMem{fs: fs, path: p, base: st.Addr}, st.Addr)
	if err != nil {
		return []Finding{{Check: "shalloc", Severity: Critical, Subject: p,
			Detail: fmt.Sprintf("heap attach failed: %v", err)}}
	}
	var out []Finding
	if err := h.Check(); err != nil {
		out = append(out, Finding{Check: "shalloc", Severity: Critical, Subject: p,
			Detail: fmt.Sprintf("heap invariants violated: %v", err)})
	}
	hs, err := h.Stats()
	if err != nil {
		if len(out) == 0 { // a corrupt free list usually breaks both walks
			out = append(out, Finding{Check: "shalloc", Severity: Critical, Subject: p,
				Detail: fmt.Sprintf("heap stats failed: %v", err)})
		}
		return out
	}
	if hs.SegmentSize > 0 {
		fill := float64(hs.UsedBytes) / float64(hs.SegmentSize)
		if fill >= opt.HeapWarn {
			out = append(out, Finding{Check: "shalloc", Severity: Warn, Subject: p,
				Detail: fmt.Sprintf("heap %d of %d bytes allocated (%.0f%%)", hs.UsedBytes, hs.SegmentSize, fill*100)})
		}
	}
	return out
}

// checkImage inspects one HEMX executable: leftover unresolved
// relocations (the program will fault at run time on symbols nobody
// provides) and static-public address windows that disagree with the
// file system or with other images.
func checkImage(fs *shmfs.FS, p string, st shmfs.Stat, publicAt map[uint32]string) []Finding {
	b, err := fs.ReadFile(p, 0)
	if err != nil {
		return nil
	}
	im, err := objfile.DecodeImageBytes(b)
	if err != nil {
		return []Finding{{Check: "image", Severity: Warn, Subject: p,
			Detail: fmt.Sprintf("undecodable HEMX image: %v", err)}}
	}
	var out []Finding
	// An image with a dynamic sharing class legitimately retains
	// relocations for ldl to resolve at run time; the defect is a retained
	// reference no module along the image's own search path can provide.
	provided := map[string]bool{}
	for _, s := range im.Symbols {
		provided[s.Name] = true
	}
	lk := lds.New(fs)
	dirs := lds.SearchDirs(&lds.Options{LinkDir: im.Dyn.LinkDir, CmdPath: im.Dyn.CmdPath,
		EnvPath: im.Dyn.EnvPath, DefaultPath: im.Dyn.DefaultPath})
	addExports := func(tmplPath string) {
		b, err := fs.ReadFile(tmplPath, 0)
		if err != nil {
			return
		}
		obj, err := objfile.DecodeBytes(b)
		if err != nil {
			return
		}
		for _, name := range obj.Exports() {
			provided[name] = true
		}
	}
	for _, m := range im.Dyn.DynModules {
		tmpl, ok := lk.FindModule(m.Name, dirs)
		if !ok {
			out = append(out, Finding{Check: "relocs", Severity: Critical, Subject: p,
				Detail: fmt.Sprintf("dynamic module %s not found along the image's search path %v", m.Name, dirs)})
			continue
		}
		addExports(tmpl)
	}
	for _, ref := range im.Dyn.StaticPublic {
		addExports(ref.Template)
	}
	var unresolved []string
	seen := map[string]bool{}
	for _, name := range im.UndefinedRelocs() {
		if !provided[name] && !seen[name] {
			unresolved, seen[name] = append(unresolved, name), true
		}
	}
	// Jump-table stubs defer their targets to first call; a stub nobody
	// can ever satisfy is the same defect on a slower fuse.
	for _, st := range im.PLT {
		if !provided[st.Name] && !seen[st.Name] {
			unresolved, seen[st.Name] = append(unresolved, st.Name), true
		}
	}
	sort.Strings(unresolved)
	if len(unresolved) > 0 {
		out = append(out, Finding{Check: "relocs", Severity: Warn, Subject: p,
			Detail: fmt.Sprintf("%d reference(s) no reachable module provides: %s", len(unresolved), strings.Join(unresolved, ", "))})
	}
	for _, ref := range im.Dyn.StaticPublic {
		addr, err := fs.PathToAddr(ref.Path)
		switch {
		case errors.Is(err, shmfs.ErrNotExist):
			out = append(out, Finding{Check: "addr-window", Severity: Warn, Subject: p,
				Detail: fmt.Sprintf("static public module %s expects %s, which no longer exists (recreated from %s on next launch)", ref.Name, ref.Path, ref.Template)})
		case err == nil && addr != ref.Addr:
			out = append(out, Finding{Check: "addr-window", Severity: Critical, Subject: p,
				Detail: fmt.Sprintf("static public module %s linked at 0x%08x but %s now sits at 0x%08x; every pointer into it is wrong", ref.Name, ref.Addr, ref.Path, addr)})
		}
		if prev, ok := publicAt[ref.Addr]; ok && prev != ref.Path {
			out = append(out, Finding{Check: "addr-window", Severity: Critical, Subject: p,
				Detail: fmt.Sprintf("address window 0x%08x claimed by both %s and %s; the images cannot share a world", ref.Addr, prev, ref.Path)})
		} else {
			publicAt[ref.Addr] = ref.Path
		}
	}
	return out
}

// CheckFleet runs the replication self-checks over a quiesced fleet:
// replicas that know they lag their home; replicas whose bytes diverge
// from the home's even though the generations agree; segments no machine
// claims the home role for (orphaned by a lost migration handshake);
// segments more than one machine claims; replicas serving reads past
// their lease against content that drifted; and transactional
// version-clock divergence at an agreed (epoch, generation).
func CheckFleet(fl *netshm.Fleet, opt Options) []Finding {
	var out []Finding
	type holder struct {
		machine    string
		digest     uint64
		isHome     bool
		migrating  bool
		epoch      uint64
		gen        uint64
		tv         uint64
		leaseUntil uint64
	}
	now := fl.Now()
	byPath := map[string][]holder{}
	for _, n := range fl.Nodes() {
		paths := n.Segments()
		sort.Strings(paths)
		for _, p := range paths {
			si, err := n.Info(p)
			if err != nil {
				continue
			}
			if si.Stale() {
				out = append(out, Finding{Check: "replica-stale", Severity: Warn,
					Subject: n.Name() + ":" + p,
					Detail:  fmt.Sprintf("replica applied generation %d but has heard of %d from %s", si.Gen, si.Highest, si.Home)})
			}
			d, err := n.Digest(p)
			if err != nil {
				continue
			}
			byPath[p] = append(byPath[p], holder{machine: n.Name(), digest: d,
				isHome: si.IsHome, migrating: si.Migrating, epoch: si.Epoch,
				gen: si.Gen, tv: si.Tv, leaseUntil: si.LeaseUntil})
		}
	}
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		hs := byPath[p]
		var home *holder
		homes := 0
		for i := range hs {
			if hs[i].isHome {
				homes++
				if home == nil || hs[i].epoch > home.epoch {
					home = &hs[i]
				}
			}
		}
		// Orphaned home: a migration handshake died on the wire and no
		// machine will ever accept a write for this segment again.
		if homes == 0 {
			out = append(out, Finding{Check: "home-orphaned", Severity: Critical, Subject: p,
				Detail: fmt.Sprintf("no machine claims the home role across %d holders; writes are impossible", len(hs))})
			continue
		}
		if homes > 1 {
			names := make([]string, 0, homes)
			for i := range hs {
				if hs[i].isHome {
					names = append(names, fmt.Sprintf("%s(epoch %d)", hs[i].machine, hs[i].epoch))
				}
			}
			out = append(out, Finding{Check: "home-duplicated", Severity: Critical, Subject: p,
				Detail: fmt.Sprintf("%d machines claim the home role after quiesce: %s", homes, strings.Join(names, ", "))})
		}
		if home.migrating {
			out = append(out, Finding{Check: "home-frozen", Severity: Warn, Subject: home.machine + ":" + p,
				Detail: "a migration offer is still in flight after quiesce; writes are frozen"})
		}
		for _, h := range hs {
			if h.isHome {
				continue
			}
			if h.digest != home.digest {
				// A replica that knows it is behind is already reported as
				// stale; divergence at the SAME generation is the serious
				// case — the protocol thinks it converged and it did not.
				sev := Warn
				if h.epoch == home.epoch && h.gen == home.gen {
					sev = Critical
				}
				out = append(out, Finding{Check: "replica-diverged", Severity: sev,
					Subject: h.machine + ":" + p,
					Detail: fmt.Sprintf("content digest %016x differs from home %s's %016x (replica epoch/gen %d/%d, home %d/%d)",
						h.digest, home.machine, home.digest, h.epoch, h.gen, home.epoch, home.gen)})
				// Expired-lease reads served against drifted content: the
				// replica answers reads it can no longer vouch for.
				if h.leaseUntil > 0 && now > h.leaseUntil {
					out = append(out, Finding{Check: "lease-stale", Severity: Warn,
						Subject: h.machine + ":" + p,
						Detail: fmt.Sprintf("read lease expired at tick %d (now %d) and content differs from home %s",
							h.leaseUntil, now, home.machine)})
				}
			}
			// Version-clock divergence at an agreed (epoch, gen) breaks
			// transactional validation: a txn validated here could commit
			// against state the home never had.
			if h.epoch == home.epoch && h.gen == home.gen && h.tv != home.tv {
				out = append(out, Finding{Check: "txn-clock-diverged", Severity: Critical,
					Subject: h.machine + ":" + p,
					Detail: fmt.Sprintf("version clock %d differs from home %s's %d at epoch/gen %d/%d",
						h.tv, home.machine, home.tv, h.epoch, h.gen)})
			}
		}
	}
	return out
}
