package admin

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"hemlock/internal/kern"
)

const dbPath = "/etc/passwd.seg"

func newDB(t *testing.T) (*kern.Kernel, *DB) {
	t.Helper()
	k := kern.New()
	k.FS.MkdirAll("/etc", 0644, 0)
	p := k.Spawn(0)
	db, err := OpenShared(k, p, dbPath, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	return k, db
}

func sample() []User {
	return []User{
		{Name: "root", UID: 0, Shell: "/bin/sh"},
		{Name: "garrett", UID: 100, Shell: "/bin/csh"},
		{Name: "scott", UID: 101, Shell: "/bin/tcsh"},
	}
}

func TestAddLookupRemove(t *testing.T) {
	_, db := newDB(t)
	for _, u := range sample() {
		if err := db.Add(u); err != nil {
			t.Fatal(err)
		}
	}
	u, err := db.Lookup("garrett")
	if err != nil || u.UID != 100 || u.Shell != "/bin/csh" {
		t.Fatalf("lookup: %+v, %v", u, err)
	}
	if _, err := db.Lookup("nobody"); !errors.Is(err, ErrNoUser) {
		t.Fatalf("missing user: %v", err)
	}
	if err := db.Add(User{Name: "root", UID: 5}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := db.Remove("scott"); err != nil {
		t.Fatal(err)
	}
	users, _ := db.Users()
	if len(users) != 2 {
		t.Fatalf("users = %+v", users)
	}
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestValidation(t *testing.T) {
	_, db := newDB(t)
	bad := []User{
		{Name: "", UID: 1},
		{Name: "colon:name", UID: 1},
		{Name: "newline\nname", UID: 1},
		{Name: strings.Repeat("x", 65), UID: 1},
		{Name: "ok", Shell: "bad:shell"},
	}
	for _, u := range bad {
		if err := db.Add(u); !errors.Is(err, ErrBadRecord) {
			t.Errorf("accepted %+v: %v", u, err)
		}
	}
}

func TestSharedAcrossProcesses(t *testing.T) {
	k, db := newDB(t)
	db.Add(sample()[0])
	p2 := k.Spawn(0)
	db2, err := OpenShared(k, p2, dbPath, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	u, err := db2.Lookup("root")
	if err != nil || u.UID != 0 {
		t.Fatalf("second process lookup: %+v, %v", u, err)
	}
	db2.Add(User{Name: "late", UID: 9, Shell: "/bin/sh"})
	if _, err := db.Lookup("late"); err != nil {
		t.Fatalf("first process missed write: %v", err)
	}
}

func TestEditUnderLock(t *testing.T) {
	k, db := newDB(t)
	// vipw: an edit under the lock succeeds and validates.
	err := EditUnder(k.FS, dbPath, 10, db, func(d *DB) error {
		return d.Add(User{Name: "edited", UID: 7, Shell: "/bin/sh"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// A concurrent editor is refused while the lock is held.
	if ok, _ := k.FS.TryLock(dbPath, 99); !ok {
		t.Fatal("pre-lock failed")
	}
	err = EditUnder(k.FS, dbPath, 10, db, func(d *DB) error { return nil })
	if !errors.Is(err, ErrLocked) {
		t.Fatalf("concurrent edit: %v", err)
	}
	k.FS.Unlock(dbPath, 99)
	// The lock is released after an edit (even a failing one).
	err = EditUnder(k.FS, dbPath, 10, db, func(d *DB) error {
		return d.Add(User{Name: "edited", UID: 7}) // duplicate
	})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("failing edit: %v", err)
	}
	if owner, _ := k.FS.LockOwner(dbPath); owner != 0 {
		t.Fatalf("lock leaked to %d", owner)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	_, db := newDB(t)
	for _, u := range sample() {
		db.Add(u)
	}
	text, err := Export(db)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "garrett:100:/bin/csh\n") {
		t.Fatalf("export: %q", text)
	}
	// Import into a fresh database reproduces the records.
	_, db2 := newDB(t)
	if err := Import(db2, text); err != nil {
		t.Fatal(err)
	}
	a, _ := db.Users()
	b, _ := db2.Users()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip: %+v vs %+v", a, b)
	}
	// Import replaces, not merges.
	if err := Import(db2, []byte("only:1:/bin/sh\n")); err != nil {
		t.Fatal(err)
	}
	users, _ := db2.Users()
	if len(users) != 1 || users[0].Name != "only" {
		t.Fatalf("import did not replace: %+v", users)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	_, db := newDB(t)
	db.Add(sample()[0])
	cases := []string{
		"noseparators\n",
		"a:b:c:d\n",
		"name:notanumber:/bin/sh\n",
		"bad:name:1:/bin/sh\n",
	}
	for _, c := range cases {
		if err := Import(db, []byte(c)); !errors.Is(err, ErrBadRecord) {
			t.Errorf("accepted %q: %v", c, err)
		}
	}
}

func TestAttachRejectsRawSegment(t *testing.T) {
	k := kern.New()
	p := k.Spawn(0)
	p.AS.MapAnon(0x30700000, 4096, 0b011)
	if _, err := Attach(p, 0x30700000); !errors.Is(err, ErrNotADB) {
		t.Fatalf("raw attach: %v", err)
	}
}

func TestPersistsAcrossReopen(t *testing.T) {
	k, db := newDB(t)
	db.Add(User{Name: "durable", UID: 3, Shell: "/bin/sh"})
	// A later process attaches (OpenShared finds the magic, attaches).
	p := k.Spawn(0)
	db2, err := OpenShared(k, p, dbPath, 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Lookup("durable"); err != nil {
		t.Fatalf("record lost: %v", err)
	}
}
