// Package admin rounds out the paper's administrative-files discussion
// (§4 "Administrative Files", §5 "Loss of Commonality"). Files like
// /etc/passwd are "really long-lived data structures" accessed through
// utility routines that translate between on-disk text and the linked
// structures programs actually use. Kept in a shared segment instead, the
// structure IS the database — but §5 concedes two costs, both modelled
// here:
//
//   - hand edits need discipline: Unix provides vipw (a locking editor)
//     and a checker to validate changes; this package provides EditUnder
//     (edit under the segment's advisory file lock) and Check (the ckpw
//     analogue, validating structural invariants);
//   - the "standard Unix tools" can no longer read the data: like
//     terminfo's tic/infocmp pair, Export and Import translate to and
//     from equivalent ASCII text, with checking.
//
// Records live in a segment heap as a linked list of (name, uid, shell)
// entries; the whole database has one globally-agreed address.
package admin

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"hemlock/internal/addrspace"
	"hemlock/internal/kern"
	"hemlock/internal/shalloc"
	"hemlock/internal/shmfs"
)

// Errors.
var (
	ErrNotADB    = errors.New("admin: segment does not contain a user database")
	ErrBadRecord = errors.New("admin: malformed record")
	ErrDuplicate = errors.New("admin: duplicate user name")
	ErrNoUser    = errors.New("admin: no such user")
	ErrLocked    = errors.New("admin: database is being edited by another process")
)

// User is one database record.
type User struct {
	Name  string
	UID   uint32
	Shell string
}

// Segment layout.
const (
	magic    = 0x50415353 // "PASS"
	offHead  = 4
	offCount = 8
	hdrSize  = 12

	nodeNext  = 0
	nodeUID   = 4
	nodeNLen  = 8
	nodeSLen  = 12
	nodeBytes = 16

	maxName = 64
)

// DB is a handle on the shared user database.
type DB struct {
	m    shalloc.Mem
	base uint32
	heap *shalloc.Heap
}

// Create formats an empty database across [base, base+size).
func Create(m shalloc.Mem, base, size uint32) (*DB, error) {
	h, err := shalloc.Init(m, base+hdrSize, size-hdrSize)
	if err != nil {
		return nil, err
	}
	for off, v := range map[uint32]uint32{base: magic, base + offHead: 0, base + offCount: 0} {
		if err := m.StoreWord(off, v); err != nil {
			return nil, err
		}
	}
	return &DB{m: m, base: base, heap: h}, nil
}

// Attach opens an existing database.
func Attach(m shalloc.Mem, base uint32) (*DB, error) {
	w, err := m.LoadWord(base)
	if err != nil {
		return nil, err
	}
	if w != magic {
		return nil, fmt.Errorf("%w: at 0x%08x", ErrNotADB, base)
	}
	h, err := shalloc.Attach(m, base+hdrSize)
	if err != nil {
		return nil, err
	}
	return &DB{m: m, base: base, heap: h}, nil
}

func (db *DB) storeString(addr uint32, s string) error {
	for j := 0; j < len(s); j += 4 {
		var w uint32
		for k := 0; k < 4 && j+k < len(s); k++ {
			w |= uint32(s[j+k]) << uint(24-8*k)
		}
		if err := db.m.StoreWord(addr+uint32(j), w); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) loadString(addr, n uint32) (string, error) {
	if n > maxName {
		return "", fmt.Errorf("%w: string length %d", ErrBadRecord, n)
	}
	out := make([]byte, 0, n)
	for j := uint32(0); j < n; j += 4 {
		w, err := db.m.LoadWord(addr + j)
		if err != nil {
			return "", err
		}
		for k := uint32(0); k < 4 && j+k < n; k++ {
			out = append(out, byte(w>>uint(24-8*k)))
		}
	}
	return string(out), nil
}

func pad4(n int) uint32 { return uint32(n+3) &^ 3 }

// Add appends a user, rejecting duplicates.
func (db *DB) Add(u User) error {
	if err := validate(u); err != nil {
		return err
	}
	if _, err := db.Lookup(u.Name); err == nil {
		return fmt.Errorf("%w: %s", ErrDuplicate, u.Name)
	}
	node, err := db.heap.Alloc(nodeBytes + pad4(len(u.Name)) + pad4(len(u.Shell)))
	if err != nil {
		return err
	}
	head, err := db.m.LoadWord(db.base + offHead)
	if err != nil {
		return err
	}
	nameAddr := node + nodeBytes
	shellAddr := nameAddr + pad4(len(u.Name))
	for off, v := range map[uint32]uint32{
		node + nodeNext: head,
		node + nodeUID:  u.UID,
		node + nodeNLen: uint32(len(u.Name)),
		node + nodeSLen: uint32(len(u.Shell)),
	} {
		if err := db.m.StoreWord(off, v); err != nil {
			return err
		}
	}
	if err := db.storeString(nameAddr, u.Name); err != nil {
		return err
	}
	if err := db.storeString(shellAddr, u.Shell); err != nil {
		return err
	}
	if err := db.m.StoreWord(db.base+offHead, node); err != nil {
		return err
	}
	n, err := db.m.LoadWord(db.base + offCount)
	if err != nil {
		return err
	}
	return db.m.StoreWord(db.base+offCount, n+1)
}

func (db *DB) readNode(node uint32) (User, uint32, error) {
	var u User
	next, err := db.m.LoadWord(node + nodeNext)
	if err != nil {
		return u, 0, err
	}
	if u.UID, err = db.m.LoadWord(node + nodeUID); err != nil {
		return u, 0, err
	}
	nlen, err := db.m.LoadWord(node + nodeNLen)
	if err != nil {
		return u, 0, err
	}
	slen, err := db.m.LoadWord(node + nodeSLen)
	if err != nil {
		return u, 0, err
	}
	if u.Name, err = db.loadString(node+nodeBytes, nlen); err != nil {
		return u, 0, err
	}
	if u.Shell, err = db.loadString(node+nodeBytes+pad4(int(nlen)), slen); err != nil {
		return u, 0, err
	}
	return u, next, nil
}

// Lookup finds a user by name: the getpwnam of the shared database — a
// list walk, not a file parse.
func (db *DB) Lookup(name string) (User, error) {
	node, err := db.m.LoadWord(db.base + offHead)
	if err != nil {
		return User{}, err
	}
	for node != 0 {
		u, next, err := db.readNode(node)
		if err != nil {
			return User{}, err
		}
		if u.Name == name {
			return u, nil
		}
		node = next
	}
	return User{}, fmt.Errorf("%w: %s", ErrNoUser, name)
}

// Remove deletes a user, returning the node to the heap.
func (db *DB) Remove(name string) error {
	prev := db.base + offHead
	node, err := db.m.LoadWord(prev)
	if err != nil {
		return err
	}
	for node != 0 {
		u, next, err := db.readNode(node)
		if err != nil {
			return err
		}
		if u.Name == name {
			if err := db.m.StoreWord(prev, next); err != nil {
				return err
			}
			if err := db.heap.Free(node); err != nil {
				return err
			}
			n, err := db.m.LoadWord(db.base + offCount)
			if err != nil {
				return err
			}
			return db.m.StoreWord(db.base+offCount, n-1)
		}
		prev = node + nodeNext
		node = next
	}
	return fmt.Errorf("%w: %s", ErrNoUser, name)
}

// Users returns all records sorted by name.
func (db *DB) Users() ([]User, error) {
	var out []User
	node, err := db.m.LoadWord(db.base + offHead)
	if err != nil {
		return nil, err
	}
	for node != 0 {
		u, next, err := db.readNode(node)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
		node = next
		if len(out) > 1<<20 {
			return nil, fmt.Errorf("%w: list cycle", ErrBadRecord)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func validate(u User) error {
	if u.Name == "" || len(u.Name) > maxName || strings.ContainsAny(u.Name, ":\n") {
		return fmt.Errorf("%w: bad name %q", ErrBadRecord, u.Name)
	}
	if len(u.Shell) > maxName || strings.ContainsAny(u.Shell, ":\n") {
		return fmt.Errorf("%w: bad shell %q", ErrBadRecord, u.Shell)
	}
	return nil
}

// Check is the ckpw analogue: it validates every record and the duplicate
// invariant, so hand edits can be vetted before anyone trusts the
// database.
func (db *DB) Check() error {
	users, err := db.Users()
	if err != nil {
		return err
	}
	n, err := db.m.LoadWord(db.base + offCount)
	if err != nil {
		return err
	}
	if int(n) != len(users) {
		return fmt.Errorf("%w: count %d, list %d", ErrBadRecord, n, len(users))
	}
	seen := map[string]bool{}
	for _, u := range users {
		if err := validate(u); err != nil {
			return err
		}
		if seen[u.Name] {
			return fmt.Errorf("%w: %s", ErrDuplicate, u.Name)
		}
		seen[u.Name] = true
	}
	return nil
}

// ---- vipw: editing under the lock ----------------------------------------------

// EditUnder runs fn holding the database segment's advisory file lock (the
// vipw discipline), validating with Check before releasing. If the check
// fails the error is returned and the caller must repair — the lock has
// already prevented concurrent editors from interleaving.
func EditUnder(fs *shmfs.FS, path string, pid int, db *DB, fn func(*DB) error) error {
	ok, err := fs.TryLock(path, pid)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrLocked, path)
	}
	defer fs.Unlock(path, pid)
	if err := fn(db); err != nil {
		return err
	}
	return db.Check()
}

// ---- commonality: translate to and from ASCII (tic/infocmp style) ----------------

// Export linearises the database to passwd-style text ("name:uid:shell"),
// restoring the byte-stream commonality §5 worries about losing.
func Export(db *DB) ([]byte, error) {
	users, err := db.Users()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	for _, u := range users {
		fmt.Fprintf(&b, "%s:%d:%s\n", u.Name, u.UID, u.Shell)
	}
	return []byte(b.String()), nil
}

// Import parses passwd-style text and replaces the database contents,
// with checking (the tic direction).
func Import(db *DB, text []byte) error {
	var users []User
	for ln, line := range strings.Split(string(text), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) != 3 {
			return fmt.Errorf("%w: line %d: %q", ErrBadRecord, ln+1, line)
		}
		uid, err := strconv.ParseUint(parts[1], 10, 32)
		if err != nil {
			return fmt.Errorf("%w: line %d: uid %q", ErrBadRecord, ln+1, parts[1])
		}
		u := User{Name: parts[0], UID: uint32(uid), Shell: parts[2]}
		if err := validate(u); err != nil {
			return fmt.Errorf("line %d: %w", ln+1, err)
		}
		users = append(users, u)
	}
	// Replace wholesale: clear then re-add.
	existing, err := db.Users()
	if err != nil {
		return err
	}
	for _, u := range existing {
		if err := db.Remove(u.Name); err != nil {
			return err
		}
	}
	for _, u := range users {
		if err := db.Add(u); err != nil {
			return err
		}
	}
	return db.Check()
}

// OpenShared creates-or-attaches the database in the shared file at path,
// mapped into process p.
func OpenShared(k *kern.Kernel, p *kern.Process, path string, size uint32) (*DB, error) {
	if _, err := k.FS.StatPath(path); err != nil {
		if _, cerr := k.FS.Create(path, shmfs.DefaultFileMode, p.UID); cerr != nil {
			return nil, cerr
		}
	}
	st, err := k.MapSharedFile(p, path, size, addrspace.ProtRW)
	if err != nil {
		return nil, err
	}
	if db, err := Attach(p, st.Addr); err == nil {
		return db, nil
	}
	return Create(p, st.Addr, size)
}
