package harness

import (
	"fmt"
	"math/rand"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
)

// The link/load schedule explorer: one seeded schedule is a random
// interleaving of launch / run / fork / var-access / segment-create /
// early-exit operations over a live system, with the linker invariants
// model-checked after every step:
//
//   - same-VA: a public symbol resolves to one address, in every process,
//     for the life of the machine;
//   - PLT patch visible on next fetch: the player calls its extern twice
//     back-to-back, so its exit code is only right if the call after the
//     patch executed the patched stub;
//   - ImageRelocsLeft never goes negative, across lazy links, forks and
//     early exits (the delta-accounting PR 1 fixed);
//   - PLTResolves is monotone;
//   - the shared file system's path<->address mapping stays a bijection
//     for every segment the schedule creates.

// schedPlayerSrc calls a public function through a jump-table stub twice
// (the second call only works if the first call's patch is visible on the
// very next fetch of that stub), bumps a public counter, and exits with
// 35 + the new count — so one exit code checks the PLT, the lazy data
// link, and the cross-process counter at once.
const schedPlayerSrc = `
        .text
        .globl  main
        .extern svc_add
        .extern pub_n
main:   addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        li      $a0, 30
        li      $a1, 5
        jal     svc_add
        jal     svc_add
        move    $t5, $v0
        la      $t0, pub_n
        lw      $t1, 0($t0)
        addiu   $t1, $t1, 1
        sw      $t1, 0($t0)
        addu    $v0, $t5, $t1
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
`

const schedSvcSrc = `
        .text
        .globl  svc_add
svc_add:
        addu    $v0, $a0, $a1
        jr      $ra
`

const schedCounterSrc = `
        .data
        .globl  pub_n
pub_n:  .word   0
        .space  60
`

// schedMaxIdle bounds the number of launched-but-not-yet-run processes a
// schedule keeps alive at once.
const schedMaxIdle = 6

type schedExplorer struct {
	s       *Scenario
	rng     *rand.Rand
	sys     *core.System
	res     *lds.Result
	idle    []*core.Program
	expect  uint32            // model of pub_n
	pubAddr map[string]uint32 // same-VA: symbol -> first resolved address
	lastPLT int
	nextSeg int
}

// ScheduleOne builds a fresh system and drives it through ops seeded
// operations, failing the scenario on the first invariant violation. The
// failure message names schedSeed (the FuzzLinkSchedule input).
func ScheduleOne(s *Scenario, schedSeed int64, ops int) {
	rng := rand.New(rand.NewSource(schedSeed))
	sys := core.NewSystem()
	if _, err := sys.Asm("/lib/svc.o", schedSvcSrc); err != nil {
		s.Failf("schedule seed=%d: asm svc: %v", schedSeed, err)
	}
	if _, err := sys.Asm("/lib/cnt.o", schedCounterSrc); err != nil {
		s.Failf("schedule seed=%d: asm cnt: %v", schedSeed, err)
	}
	if _, err := sys.Asm("/bin/player.o", schedPlayerSrc); err != nil {
		s.Failf("schedule seed=%d: asm player: %v", schedSeed, err)
	}
	res, err := sys.Link(&lds.Options{
		Output: "player",
		Modules: []lds.Input{
			{Name: "player.o", Class: objfile.StaticPrivate},
			{Name: "svc.o", Class: objfile.DynamicPublic},
			{Name: "cnt.o", Class: objfile.DynamicPublic},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
		JumpTables:  true,
	})
	if err != nil {
		s.Failf("schedule seed=%d: link: %v", schedSeed, err)
	}
	e := &schedExplorer{s: s, rng: rng, sys: sys, res: res, pubAddr: map[string]uint32{}}

	ctrOps := s.Reg.Counter("harness.sched.ops")
	for i := 0; i < ops; i++ {
		e.step(schedSeed, i)
		ctrOps.Inc()
		e.checkInvariants(schedSeed, i)
	}
	// Drain: run everything still idle so the schedule always ends with
	// every launched process accounted for.
	for len(e.idle) > 0 {
		e.opRun(schedSeed, ops)
		e.checkInvariants(schedSeed, ops)
	}
}

func (e *schedExplorer) step(seed int64, i int) {
	switch p := e.rng.Intn(100); {
	case p < 25:
		e.opLaunch(seed, i)
	case p < 55:
		e.opRun(seed, i)
	case p < 65:
		e.opFork(seed, i)
	case p < 85:
		e.opVar(seed, i)
	case p < 93:
		e.opCreateSegment(seed, i)
	default:
		e.opEarlyExit(seed, i)
	}
}

func (e *schedExplorer) opLaunch(seed int64, i int) {
	if len(e.idle) >= schedMaxIdle {
		e.opRun(seed, i)
		return
	}
	pg, err := e.sys.Launch(e.res.Image, 0, nil)
	if err != nil {
		e.s.Failf("schedule seed=%d op=%d: launch: %v", seed, i, err)
	}
	e.idle = append(e.idle, pg)
	e.s.Reg.Counter("harness.sched.launches").Inc()
}

// takeIdle removes and returns a random idle program, or nil.
func (e *schedExplorer) takeIdle() *core.Program {
	if len(e.idle) == 0 {
		return nil
	}
	k := e.rng.Intn(len(e.idle))
	pg := e.idle[k]
	e.idle = append(e.idle[:k], e.idle[k+1:]...)
	return pg
}

func (e *schedExplorer) pickIdle() *core.Program {
	if len(e.idle) == 0 {
		return nil
	}
	return e.idle[e.rng.Intn(len(e.idle))]
}

func (e *schedExplorer) opRun(seed int64, i int) {
	pg := e.takeIdle()
	if pg == nil {
		e.opLaunch(seed, i)
		return
	}
	if err := pg.Run(1_000_000); err != nil {
		e.s.Failf("schedule seed=%d op=%d: run pid=%d: %v", seed, i, pg.P.PID, err)
	}
	e.expect++
	want := int(35 + e.expect)
	if pg.P.ExitCode != want {
		e.s.Failf("schedule seed=%d op=%d: pid=%d exited %d, want %d (PLT patch or shared counter broken)",
			seed, i, pg.P.PID, pg.P.ExitCode, want)
	}
	e.s.Reg.Counter("harness.sched.runs").Inc()
}

func (e *schedExplorer) opFork(seed int64, i int) {
	pg := e.pickIdle()
	if pg == nil {
		e.opLaunch(seed, i)
		return
	}
	if len(e.idle) >= schedMaxIdle {
		e.opRun(seed, i)
		return
	}
	child, err := pg.Fork()
	if err != nil {
		e.s.Failf("schedule seed=%d op=%d: fork pid=%d: %v", seed, i, pg.P.PID, err)
	}
	e.idle = append(e.idle, child)
	e.s.Reg.Counter("harness.sched.forks").Inc()
}

// opVar accesses public symbols through the language-level Var path (which
// lazy-links the owning module on fault) and checks the same-VA invariant
// plus the counter model; sometimes it stores a fresh counter value, which
// every later reader and runner must observe.
func (e *schedExplorer) opVar(seed int64, i int) {
	pg := e.pickIdle()
	if pg == nil {
		e.opLaunch(seed, i)
		return
	}
	for _, name := range []string{"pub_n", "svc_add"} {
		v, err := pg.Var(name)
		if err != nil {
			e.s.Failf("schedule seed=%d op=%d: resolve %s in pid=%d: %v", seed, i, name, pg.P.PID, err)
		}
		if prev, seen := e.pubAddr[name]; seen && prev != v.Addr {
			e.s.Failf("schedule seed=%d op=%d: same-VA violated: %s at 0x%08x in pid=%d, first seen at 0x%08x",
				seed, i, name, v.Addr, pg.P.PID, prev)
		}
		e.pubAddr[name] = v.Addr
	}
	v, _ := pg.Var("pub_n")
	got, err := v.Load()
	if err != nil {
		e.s.Failf("schedule seed=%d op=%d: load pub_n: %v", seed, i, err)
	}
	if got != e.expect {
		e.s.Failf("schedule seed=%d op=%d: pub_n = %d in pid=%d, model says %d",
			seed, i, got, pg.P.PID, e.expect)
	}
	if e.rng.Intn(3) == 0 {
		nv := uint32(e.rng.Intn(50))
		if err := v.Store(nv); err != nil {
			e.s.Failf("schedule seed=%d op=%d: store pub_n: %v", seed, i, err)
		}
		e.expect = nv
	}
	e.s.Reg.Counter("harness.sched.varops").Inc()
}

// opCreateSegment creates a new public segment file and checks the shared
// file system's address mapping stays a bijection.
func (e *schedExplorer) opCreateSegment(seed int64, i int) {
	path := fmt.Sprintf("/lib/seg%03d.o", e.nextSeg)
	sym := fmt.Sprintf("segv%03d", e.nextSeg)
	e.nextSeg++
	src := fmt.Sprintf(".data\n.globl %s\n%s: .word %d\n", sym, sym, e.nextSeg)
	if _, err := e.sys.Asm(path, src); err != nil {
		e.s.Failf("schedule seed=%d op=%d: create %s: %v", seed, i, path, err)
	}
	addr, err := e.sys.FS.PathToAddr(path)
	if err != nil {
		e.s.Failf("schedule seed=%d op=%d: PathToAddr(%s): %v", seed, i, path, err)
	}
	back, off, err := e.sys.FS.AddrToPath(addr)
	if err != nil || back != path || off != 0 {
		e.s.Failf("schedule seed=%d op=%d: AddrToPath(0x%08x) = (%q, %d, %v), want (%q, 0, nil)",
			seed, i, addr, back, off, err, path)
	}
	e.s.Reg.Counter("harness.sched.segments").Inc()
}

// opEarlyExit kills an idle process without running it — the path where
// retained image relocations must be handed back without double counting.
func (e *schedExplorer) opEarlyExit(seed int64, i int) {
	pg := e.takeIdle()
	if pg == nil {
		e.opLaunch(seed, i)
		return
	}
	pg.P.Exit(0)
	e.s.Reg.Counter("harness.sched.exits").Inc()
}

func (e *schedExplorer) checkInvariants(seed int64, i int) {
	st := e.sys.W.Stats
	if st.ImageRelocsLeft < 0 {
		e.s.Failf("schedule seed=%d op=%d: ImageRelocsLeft = %d (negative)", seed, i, st.ImageRelocsLeft)
	}
	if st.PLTResolves < e.lastPLT {
		e.s.Failf("schedule seed=%d op=%d: PLTResolves went backwards: %d -> %d",
			seed, i, e.lastPLT, st.PLTResolves)
	}
	e.lastPLT = st.PLTResolves
}
