package harness

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"

	"hemlock/internal/core"
	"hemlock/internal/netshm"
	"hemlock/internal/netsim"
	"hemlock/internal/shmfs"
)

// The netshm network fuzzer: a seeded adversary over the simulated LAN.
// One run builds a small fleet, homes segments on different machines, then
// interleaves home-side writes, home migrations, replica reads (the lease
// path), and TL2 transactions with fleet ticks while the adversary drops,
// duplicates, delays and reorders datagrams — all decisions pure functions
// of (seed, from, to, seq), so a run replays exactly. Midway a new machine
// joins the established fleet (the announce-triggered anti-entropy path).
// Afterwards the adversary is switched off and the fleet must converge:
// every replica byte-identical to the model of what each home wrote, every
// node's (epoch, generation) view having grown monotonically throughout,
// and — the transactional invariant — no machine EVER observing a partial
// multi-word commit, checked on every tick of every schedule against a
// marker block that straddles a page boundary.

// netfuzzQuiesceTicks bounds the healing phase after the adversary stops.
// Generous on purpose: bounded retries may be exhausted, leaving recovery
// to announce-triggered pulls on the announce period, and an aborted
// migration needs a further announce round to re-sync the fleet onto the
// post-abort epoch.
const netfuzzQuiesceTicks = 600

// The transactional segment's marker block: eight words written only by
// whole transactions, placed so the block straddles the first page
// boundary. If any machine ever sees two marker words differ, a
// multi-word commit was observed partially.
const (
	markerWords = 8
	markerOff   = netshm.PageSize - (markerWords / 2 * 4)
)

// adversary derives deterministic drop/dup/reorder/delay decisions from a
// run-specific salt. Each knob gets an independent hash stream (the knob
// id is mixed in) so, e.g., dropping a datagram is uncorrelated with
// delaying it.
type adversary struct {
	salt               uint64
	drop, dup, reorder uint32 // per-mille probabilities
	delayP             uint32 // per-mille probability of delaying
	delayMax           int    // 1..delayMax ticks when delayed
}

func newAdversary(rng *rand.Rand) *adversary {
	return &adversary{
		salt:     rng.Uint64(),
		drop:     uint32(rng.Intn(150)), // up to 15% loss
		dup:      uint32(rng.Intn(200)), // up to 20% duplicated
		reorder:  uint32(rng.Intn(300)), // up to 30% queue-jumping
		delayP:   uint32(rng.Intn(250)), // up to 25% delayed
		delayMax: 1 + rng.Intn(4),       // by 1..4 ticks
	}
}

// roll hashes (salt, knob, from, to, seq) into [0, 1000).
func (a *adversary) roll(knob byte, from, to string, seq uint64) uint32 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(a.salt >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte{knob})
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	for i := range b {
		b[i] = byte(seq >> (8 * i))
	}
	h.Write(b[:])
	return uint32(h.Sum64() % 1000)
}

// arm installs the adversary's knobs on the network.
func (a *adversary) arm(net *netsim.Network) {
	net.Drop = func(from, to string, seq uint64) bool {
		return a.roll(0, from, to, seq) < a.drop
	}
	net.Dup = func(from, to string, seq uint64) bool {
		return a.roll(1, from, to, seq) < a.dup
	}
	net.Reorder = func(from, to string, seq uint64) bool {
		return a.roll(2, from, to, seq) < a.reorder
	}
	net.DelayTicks = func(from, to string, seq uint64) int {
		if a.roll(3, from, to, seq) < a.delayP {
			return 1 + int(a.roll(4, from, to, seq))%a.delayMax
		}
		return 0
	}
}

// disarm restores a faithful LAN.
func (a *adversary) disarm(net *netsim.Network) {
	net.Drop, net.Dup, net.Reorder, net.DelayTicks = nil, nil, nil, nil
}

// genWatch tracks one node's view of one segment and fails on any
// regression of the (epoch, generation) order — the sequence monotonicity
// invariant. A generation may restart when the node adopts a higher epoch
// (a migration, or an abandoned offer's epoch skip), never within one.
type genWatch struct {
	epoch, applied, highest uint64
}

// pendingTxn is a forwarded transaction awaiting its home's verdict.
type pendingTxn struct {
	node *netshm.Node
	txid uint64
}

// netfuzzRun is one fuzzed fleet plus the model of every homed segment.
type netfuzzRun struct {
	s     *Scenario
	rng   *rand.Rand
	fleet *netshm.Fleet
	adv   *adversary
	// model[path] is the byte-exact content the home has written so far.
	model map[string][]byte
	paths []string                        // deterministic iteration order for rng picks
	watch map[string]map[string]*genWatch // node -> path -> last seen view

	// Transactional-segment state.
	txnPath string
	txnCtr  uint32          // next marker value to stage
	staged  map[uint32]bool // every value any txn ever staged
	pending []pendingTxn
}

// checkGens asserts, for every node and every segment it knows, that the
// (epoch, applied) and (epoch, highest) views never move backwards.
func (r *netfuzzRun) checkGens(seed int64, tick int) {
	for _, n := range r.fleet.Nodes() {
		w := r.watch[n.Name()]
		if w == nil {
			w = map[string]*genWatch{}
			r.watch[n.Name()] = w
		}
		for path := range r.model {
			si, err := n.Info(path)
			if err != nil {
				continue // node hasn't heard of the segment yet
			}
			g := w[path]
			if g == nil {
				g = &genWatch{}
				w[path] = g
			}
			switch {
			case si.Epoch < g.epoch:
				r.s.Failf("netfuzz seed=%d tick=%d: %s epoch of %s went backwards: %d -> %d",
					seed, tick, n.Name(), path, g.epoch, si.Epoch)
			case si.Epoch > g.epoch:
				// New home lineage: generations legitimately restart.
				g.epoch, g.applied, g.highest = si.Epoch, si.Gen, si.Highest
			default:
				if si.Gen < g.applied {
					r.s.Failf("netfuzz seed=%d tick=%d: %s applied gen of %s went backwards at epoch %d: %d -> %d",
						seed, tick, n.Name(), path, si.Epoch, g.applied, si.Gen)
				}
				if si.Highest < g.highest {
					r.s.Failf("netfuzz seed=%d tick=%d: %s highest gen of %s went backwards at epoch %d: %d -> %d",
						seed, tick, n.Name(), path, si.Epoch, g.highest, si.Highest)
				}
				g.applied, g.highest = si.Gen, si.Highest
			}
		}
	}
}

// homeOf finds the machine currently holding the segment's home role,
// preferring the highest epoch when a migration handshake has two
// claimants in flight. Nil when nobody claims it (mid-promotion).
func (r *netfuzzRun) homeOf(path string) *netshm.Node {
	var best *netshm.Node
	var bestEpoch uint64
	for _, n := range r.fleet.Nodes() {
		si, err := n.Info(path)
		if err != nil || !si.IsHome {
			continue
		}
		if best == nil || si.Epoch > bestEpoch {
			best, bestEpoch = n, si.Epoch
		}
	}
	return best
}

// writeSomewhere performs one home-side write on a random segment and
// updates the model. Writes refused because the home is frozen
// mid-migration (or demoted in the same tick) are skipped, not modeled.
func (r *netfuzzRun) writeSomewhere(seed int64, tick int) {
	path := r.paths[r.rng.Intn(len(r.paths))]
	m := r.model[path]
	off := r.rng.Intn(len(m))
	n := 1 + r.rng.Intn(64)
	if off+n > len(m) {
		n = len(m) - off
	}
	data := make([]byte, n)
	r.rng.Read(data)
	home := r.homeOf(path)
	if home == nil {
		return // promotion in flight; nobody owns the segment this tick
	}
	err := home.Write(path, uint32(off), data)
	switch {
	case errors.Is(err, netshm.ErrMigrating), errors.Is(err, netshm.ErrNotHome):
		return // frozen or just demoted: the write never happened
	case err != nil:
		r.s.Failf("netfuzz seed=%d tick=%d: write %s on %s: %v", seed, tick, path, home.Name(), err)
	}
	copy(m[off:], data)
	r.s.Reg.Counter("harness.netfuzz.writes").Inc()
}

// migrateSomewhere offers a random segment's home role to a random other
// machine, exercising the freeze/offer/promote/demote handshake (and its
// abort path when the adversary eats the offer).
func (r *netfuzzRun) migrateSomewhere(seed int64, tick int) {
	paths := append(append([]string{}, r.paths...), r.txnPath)
	path := paths[r.rng.Intn(len(paths))]
	home := r.homeOf(path)
	if home == nil {
		return
	}
	nodes := r.fleet.Nodes()
	target := nodes[r.rng.Intn(len(nodes))]
	if target.Name() == home.Name() {
		return
	}
	err := home.MigrateTo(path, target.Name())
	switch {
	case errors.Is(err, netshm.ErrMigrating), errors.Is(err, netshm.ErrNotHome),
		errors.Is(err, netshm.ErrUnknownSeg):
		return // already mid-handshake, raced a demotion, or target is the latecomer
	case err != nil:
		r.s.Failf("netfuzz seed=%d tick=%d: migrate %s %s->%s: %v",
			seed, tick, path, home.Name(), target.Name(), err)
	}
	r.s.Reg.Counter("harness.netfuzz.migrations").Inc()
}

// readSomewhere reads through a random replica, driving the lease grant,
// expiry and renew machinery (and stale-read pulls) under the adversary.
func (r *netfuzzRun) readSomewhere() {
	nodes := r.fleet.Nodes()
	n := nodes[r.rng.Intn(len(nodes))]
	path := r.paths[r.rng.Intn(len(r.paths))]
	size := len(r.model[path])
	off := r.rng.Intn(size)
	want := 1 + r.rng.Intn(32)
	if off+want > size {
		want = size - off
	}
	if _, _, err := n.Read(path, uint32(off), uint32(want)); err == nil {
		r.s.Reg.Counter("harness.netfuzz.reads").Inc()
	}
}

// txnSomewhere runs one whole-marker transaction from a random machine:
// all eight marker words staged to one fresh value, committed either
// locally (at the home) or by forwarding (from a replica). Every staged
// value is recorded; the final marker must be one of them.
func (r *netfuzzRun) txnSomewhere(seed int64, tick int) {
	nodes := r.fleet.Nodes()
	n := nodes[r.rng.Intn(len(nodes))]
	v := r.txnCtr
	r.txnCtr++
	t := n.Begin()
	if r.rng.Intn(2) == 0 {
		if _, err := t.Read(r.txnPath, markerOff, 4); err != nil {
			return // latecomer that hasn't adopted the segment yet
		}
	}
	for i := 0; i < markerWords; i++ {
		t.WriteWord(r.txnPath, markerOff+uint32(4*i), v)
	}
	txid, err := t.Commit()
	switch {
	case errors.Is(err, netshm.ErrTxnConflict):
		r.s.Reg.Counter("harness.netfuzz.txn_aborts").Inc()
		return
	case errors.Is(err, netshm.ErrMigrating), errors.Is(err, netshm.ErrTxnCrossHome),
		errors.Is(err, netshm.ErrUnknownSeg):
		return
	case err != nil:
		r.s.Failf("netfuzz seed=%d tick=%d: txn on %s: %v", seed, tick, n.Name(), err)
	}
	r.staged[v] = true
	if txid == 0 {
		r.s.Reg.Counter("harness.netfuzz.txn_commits").Inc()
		return
	}
	r.pending = append(r.pending, pendingTxn{node: n, txid: txid})
	r.s.Reg.Counter("harness.netfuzz.txn_forwards").Inc()
}

// conflictTxn deliberately stales a transaction's read set — a plain
// write lands between its read and its commit — and asserts the
// validate-on-commit step catches it.
func (r *netfuzzRun) conflictTxn(seed int64, tick int) {
	home := r.homeOf(r.txnPath)
	if home == nil {
		return
	}
	t := home.Begin()
	if _, err := t.Read(r.txnPath, markerOff, 4); err != nil {
		return
	}
	// Interleaved plain write, away from the marker block.
	data := make([]byte, 1+r.rng.Intn(16))
	r.rng.Read(data)
	if err := home.Write(r.txnPath, uint32(r.rng.Intn(markerOff-32)), data); err != nil {
		return // frozen mid-migration: the read set is still valid, skip
	}
	t.WriteWord(r.txnPath, markerOff, r.txnCtr) // never staged: must not commit
	if _, err := t.Commit(); !errors.Is(err, netshm.ErrTxnConflict) {
		r.s.Failf("netfuzz seed=%d tick=%d: stale txn on %s committed (err=%v), want ErrTxnConflict",
			seed, tick, home.Name(), err)
	}
	r.s.Reg.Counter("harness.netfuzz.txn_aborts").Inc()
}

// pollTxns drains forwarded transactions that reached a verdict.
func (r *netfuzzRun) pollTxns() {
	kept := r.pending[:0]
	for _, p := range r.pending {
		switch p.node.TxnStatus(p.txid) {
		case netshm.TxnCommitted:
			r.s.Reg.Counter("harness.netfuzz.txn_commits").Inc()
		case netshm.TxnAborted:
			r.s.Reg.Counter("harness.netfuzz.txn_aborts").Inc()
		case netshm.TxnLost:
			r.s.Reg.Counter("harness.netfuzz.txn_lost").Inc()
		default:
			kept = append(kept, p)
		}
	}
	r.pending = kept
}

// checkMarker asserts that no machine observes a partial multi-word
// commit: all eight marker words — straddling a page boundary — must be
// equal on every machine that holds the segment, on every tick.
func (r *netfuzzRun) checkMarker(seed int64, tick int) {
	buf := make([]byte, markerWords*4)
	for _, n := range r.fleet.Nodes() {
		if _, err := n.Info(r.txnPath); err != nil {
			continue
		}
		if _, err := n.Sys().FS.ReadAt(r.txnPath, markerOff, buf, 0); err != nil {
			r.s.Failf("netfuzz seed=%d tick=%d: %s read marker: %v", seed, tick, n.Name(), err)
		}
		first := binary.BigEndian.Uint32(buf)
		for i := 1; i < markerWords; i++ {
			w := binary.BigEndian.Uint32(buf[4*i:])
			if w != first {
				r.s.Failf("netfuzz seed=%d tick=%d: %s observed a PARTIAL multi-word commit: marker[0]=%d marker[%d]=%d (block % x)",
					seed, tick, n.Name(), first, i, w, buf)
			}
		}
	}
}

// publishOn homes one segment with the given content on a machine, at an
// explicitly disjoint inode slot (CreateAt): independent Create calls on
// fresh machines would hand two homes the same slot, and the same-VA
// invariant would (correctly) refuse the second segment everywhere as an
// address clash.
func (r *netfuzzRun) publishOn(seed int64, homeName, path string, slot int, content []byte) {
	home := r.fleet.Node(homeName)
	fs := home.Sys().FS
	if err := fs.MkdirAll("/lib", shmfs.DefaultDirMode, 0); err != nil {
		r.s.Failf("netfuzz seed=%d: mkdir /lib on %s: %v", seed, homeName, err)
	}
	if _, err := fs.CreateAt(path, slot, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, 0); err != nil {
		r.s.Failf("netfuzz seed=%d: create %s on %s: %v", seed, path, homeName, err)
	}
	if _, err := fs.WriteAt(path, 0, content, 0); err != nil {
		r.s.Failf("netfuzz seed=%d: write %s on %s: %v", seed, path, homeName, err)
	}
	if err := home.Serve(path); err != nil {
		r.s.Failf("netfuzz seed=%d: serve %s on %s: %v", seed, path, homeName, err)
	}
	if err := home.MarkDirty(path, 0, uint32(len(content))); err != nil {
		r.s.Failf("netfuzz seed=%d: push %s on %s: %v", seed, path, homeName, err)
	}
}

// NetFuzzOne runs one seeded adversarial fleet scenario: publish, churn
// under fire — writes, migrations, lease reads, transactions — a late
// join, quiesce, converge, verify.
func NetFuzzOne(s *Scenario, fuzzSeed int64) {
	rng := rand.New(rand.NewSource(fuzzSeed))
	net := netsim.New()
	// Short leases and a low auto-migration threshold so lease expiry,
	// renewals, and counter-driven home migration all fire within a run.
	fleet := netshm.NewFleet(net, netshm.Config{
		LeaseTicks:       uint64(8 + rng.Intn(32)),
		MigrateThreshold: 16,
	})
	for i := 0; i < 3; i++ {
		fleet.Add(fmt.Sprintf("m%d", i), core.NewSystem())
	}

	r := &netfuzzRun{
		s: s, rng: rng, fleet: fleet,
		model:   map[string][]byte{},
		watch:   map[string]map[string]*genWatch{},
		txnPath: "/lib/txn",
		txnCtr:  1,
		staged:  map[uint32]bool{0: true}, // the published all-zero marker
	}

	// Two plain segments homed on different machines, so update traffic
	// and acks cross in both directions through the adversary.
	for i, path := range []string{"/lib/alpha", "/lib/beta"} {
		homeName := fmt.Sprintf("m%d", i)
		size := 1024 + rng.Intn(3*netshm.PageSize)
		content := make([]byte, size)
		rng.Read(content)
		r.publishOn(fuzzSeed, homeName, path, 8+i, content)
		r.model[path] = content
		r.paths = append(r.paths, path)
	}
	// The transactional segment: two pages, random content, except the
	// marker block (straddling the page boundary) which starts all-zero.
	txnContent := make([]byte, 2*netshm.PageSize)
	rng.Read(txnContent)
	for i := range txnContent[markerOff : markerOff+markerWords*4] {
		txnContent[markerOff+uint32(i)] = 0
	}
	r.publishOn(fuzzSeed, "m2", r.txnPath, 10, txnContent)
	r.model[r.txnPath] = nil // consistency-checked, not modeled

	adv := newAdversary(rng)
	adv.arm(net)
	r.adv = adv

	churn := 60 + rng.Intn(120)
	joinAt := churn / 3 * (1 + rng.Intn(2)) // one-third or two-thirds in
	joined := false
	ctrTicks := s.Reg.Counter("harness.netfuzz.ticks")
	for tick := 0; tick < churn; tick++ {
		if tick == joinAt && !joined {
			fleet.Add("late", core.NewSystem())
			joined = true
			s.Reg.Counter("harness.netfuzz.joins").Inc()
		}
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			r.writeSomewhere(fuzzSeed, tick)
		case 4, 5:
			r.txnSomewhere(fuzzSeed, tick)
		case 6:
			r.readSomewhere()
		case 7:
			r.migrateSomewhere(fuzzSeed, tick)
		case 8:
			r.conflictTxn(fuzzSeed, tick)
		}
		fleet.Tick()
		ctrTicks.Inc()
		r.pollTxns()
		r.checkGens(fuzzSeed, tick)
		r.checkMarker(fuzzSeed, tick)
	}

	// Quiesce: faithful LAN again; the protocol must heal everything the
	// adversary broke — including any migration handshake still in flight
	// and every forwarded transaction. Gens stay monotone and commits
	// stay whole through recovery too.
	adv.disarm(net)
	deadline := -1
	for tick := 0; tick < netfuzzQuiesceTicks; tick++ {
		fleet.Tick()
		ctrTicks.Inc()
		r.pollTxns()
		r.checkGens(fuzzSeed, churn+tick)
		r.checkMarker(fuzzSeed, churn+tick)
		allDone := len(r.pending) == 0
		for path := range r.model {
			if !fleet.Converged(path) {
				allDone = false
				break
			}
		}
		if allDone && net.InFlight() == 0 {
			deadline = tick
			break
		}
	}
	if deadline < 0 {
		snap := fleet.Reg.Snapshot().Text()
		s.Failf("netfuzz seed=%d: fleet did not converge within %d quiesce ticks (%d txns unresolved)\nfleet counters:\n%s",
			fuzzSeed, netfuzzQuiesceTicks, len(r.pending), snap)
	}

	// Every machine — including the latecomer — must hold byte-identical
	// content and the home's exact (epoch, generation) for every segment.
	for path := range r.model {
		home := r.homeOf(path)
		if home == nil {
			s.Failf("netfuzz seed=%d: no machine claims the home role for %s after quiesce", fuzzSeed, path)
		}
		hsi, err := home.Info(path)
		if err != nil {
			s.Failf("netfuzz seed=%d: home info %s: %v", fuzzSeed, path, err)
		}
		want := r.model[path]
		if want == nil {
			// The transactional segment is consistency-checked: every
			// machine must match the home's bytes exactly.
			st, err := home.Sys().FS.StatPath(path)
			if err != nil {
				s.Failf("netfuzz seed=%d: home stat %s: %v", fuzzSeed, path, err)
			}
			want = make([]byte, st.Size)
			if _, err := home.Sys().FS.ReadAt(path, 0, want, 0); err != nil {
				s.Failf("netfuzz seed=%d: home read %s: %v", fuzzSeed, path, err)
			}
		}
		for _, n := range r.fleet.Nodes() {
			si, err := n.Info(path)
			if err != nil {
				s.Failf("netfuzz seed=%d: %s never adopted %s: %v", fuzzSeed, n.Name(), path, err)
			}
			if si.Epoch != hsi.Epoch || si.Gen != hsi.Gen {
				s.Failf("netfuzz seed=%d: %s at epoch/gen %d/%d of %s, home %s at %d/%d",
					fuzzSeed, n.Name(), si.Epoch, si.Gen, path, home.Name(), hsi.Epoch, hsi.Gen)
			}
			st, err := n.Sys().FS.StatPath(path)
			if err != nil {
				s.Failf("netfuzz seed=%d: %s stat %s: %v", fuzzSeed, n.Name(), path, err)
			}
			got := make([]byte, st.Size)
			if _, err := n.Sys().FS.ReadAt(path, 0, got, 0); err != nil {
				s.Failf("netfuzz seed=%d: %s read %s: %v", fuzzSeed, n.Name(), path, err)
			}
			if !bytes.Equal(got, want) {
				i := 0
				for i < len(got) && i < len(want) && got[i] == want[i] {
					i++
				}
				s.Failf("netfuzz seed=%d: %s content of %s diverges from model at byte %d (len %d vs %d)",
					fuzzSeed, n.Name(), path, i, len(got), len(want))
			}
		}
	}

	// The final marker value must be one the run actually staged.
	homeT := r.homeOf(r.txnPath)
	buf := make([]byte, 4)
	if _, err := homeT.Sys().FS.ReadAt(r.txnPath, markerOff, buf, 0); err != nil {
		s.Failf("netfuzz seed=%d: final marker read: %v", fuzzSeed, err)
	}
	if v := binary.BigEndian.Uint32(buf); !r.staged[v] {
		s.Failf("netfuzz seed=%d: final marker value %d was never staged by any transaction", fuzzSeed, v)
	}
	s.Reg.Counter("harness.netfuzz.runs").Inc()
}
