package harness

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"

	"hemlock/internal/core"
	"hemlock/internal/netshm"
	"hemlock/internal/netsim"
	"hemlock/internal/shmfs"
)

// The netshm network fuzzer: a seeded adversary over the simulated LAN.
// One run builds a small fleet, homes a segment on two different machines,
// then interleaves home-side writes with fleet ticks while the adversary
// drops, duplicates, delays and reorders datagrams — all decisions pure
// functions of (seed, from, to, seq), so a run replays exactly. Midway a
// new machine joins the established fleet (the announce-triggered
// anti-entropy path). Afterwards the adversary is switched off and the
// fleet must converge: every replica byte-identical to the model of what
// each home wrote, and every node's applied/heard generations having grown
// monotonically throughout.

// netfuzzQuiesceTicks bounds the healing phase after the adversary stops.
// Generous on purpose: bounded retries may be exhausted, leaving recovery
// to announce-triggered pulls on the announce period.
const netfuzzQuiesceTicks = 400

// adversary derives deterministic drop/dup/reorder/delay decisions from a
// run-specific salt. Each knob gets an independent hash stream (the knob
// id is mixed in) so, e.g., dropping a datagram is uncorrelated with
// delaying it.
type adversary struct {
	salt               uint64
	drop, dup, reorder uint32 // per-mille probabilities
	delayP             uint32 // per-mille probability of delaying
	delayMax           int    // 1..delayMax ticks when delayed
}

func newAdversary(rng *rand.Rand) *adversary {
	return &adversary{
		salt:     rng.Uint64(),
		drop:     uint32(rng.Intn(150)), // up to 15% loss
		dup:      uint32(rng.Intn(200)), // up to 20% duplicated
		reorder:  uint32(rng.Intn(300)), // up to 30% queue-jumping
		delayP:   uint32(rng.Intn(250)), // up to 25% delayed
		delayMax: 1 + rng.Intn(4),       // by 1..4 ticks
	}
}

// roll hashes (salt, knob, from, to, seq) into [0, 1000).
func (a *adversary) roll(knob byte, from, to string, seq uint64) uint32 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(a.salt >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte{knob})
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	for i := range b {
		b[i] = byte(seq >> (8 * i))
	}
	h.Write(b[:])
	return uint32(h.Sum64() % 1000)
}

// arm installs the adversary's knobs on the network.
func (a *adversary) arm(net *netsim.Network) {
	net.Drop = func(from, to string, seq uint64) bool {
		return a.roll(0, from, to, seq) < a.drop
	}
	net.Dup = func(from, to string, seq uint64) bool {
		return a.roll(1, from, to, seq) < a.dup
	}
	net.Reorder = func(from, to string, seq uint64) bool {
		return a.roll(2, from, to, seq) < a.reorder
	}
	net.DelayTicks = func(from, to string, seq uint64) int {
		if a.roll(3, from, to, seq) < a.delayP {
			return 1 + int(a.roll(4, from, to, seq))%a.delayMax
		}
		return 0
	}
}

// disarm restores a faithful LAN.
func (a *adversary) disarm(net *netsim.Network) {
	net.Drop, net.Dup, net.Reorder, net.DelayTicks = nil, nil, nil, nil
}

// genWatch tracks one node's view of one segment and fails on any
// generation regression — the per-segment sequence monotonicity invariant.
type genWatch struct {
	applied, highest uint64
}

// netfuzzRun is one fuzzed fleet plus the model of every homed segment.
type netfuzzRun struct {
	s     *Scenario
	rng   *rand.Rand
	fleet *netshm.Fleet
	adv   *adversary
	// model[path] is the byte-exact content the home has written so far.
	model map[string][]byte
	paths []string                        // deterministic iteration order for rng picks
	home  map[string]string               // path -> home machine name
	watch map[string]map[string]*genWatch // node -> path -> last seen gens
}

// checkGens asserts, for every node and every segment it knows, that the
// applied and highest-heard generations never move backwards.
func (r *netfuzzRun) checkGens(seed int64, tick int) {
	for _, n := range r.fleet.Nodes() {
		w := r.watch[n.Name()]
		if w == nil {
			w = map[string]*genWatch{}
			r.watch[n.Name()] = w
		}
		for path := range r.model {
			applied, highest, err := n.Gen(path)
			if err != nil {
				continue // node hasn't heard of the segment yet
			}
			g := w[path]
			if g == nil {
				g = &genWatch{}
				w[path] = g
			}
			if applied < g.applied {
				r.s.Failf("netfuzz seed=%d tick=%d: %s applied gen of %s went backwards: %d -> %d",
					seed, tick, n.Name(), path, g.applied, applied)
			}
			if highest < g.highest {
				r.s.Failf("netfuzz seed=%d tick=%d: %s highest gen of %s went backwards: %d -> %d",
					seed, tick, n.Name(), path, g.highest, highest)
			}
			g.applied, g.highest = applied, highest
		}
	}
}

// writeSomewhere performs one home-side write on a random segment and
// updates the model.
func (r *netfuzzRun) writeSomewhere(seed int64, tick int) {
	path := r.paths[r.rng.Intn(len(r.paths))]
	home := r.fleet.Node(r.home[path])
	m := r.model[path]
	off := r.rng.Intn(len(m))
	n := 1 + r.rng.Intn(64)
	if off+n > len(m) {
		n = len(m) - off
	}
	data := make([]byte, n)
	r.rng.Read(data)
	if err := home.Write(path, uint32(off), data); err != nil {
		r.s.Failf("netfuzz seed=%d tick=%d: write %s on %s: %v", seed, tick, path, home.Name(), err)
	}
	copy(m[off:], data)
	r.s.Reg.Counter("harness.netfuzz.writes").Inc()
}

// NetFuzzOne runs one seeded adversarial fleet scenario: publish, churn
// under fire, late join, quiesce, converge, verify.
func NetFuzzOne(s *Scenario, fuzzSeed int64) {
	rng := rand.New(rand.NewSource(fuzzSeed))
	net := netsim.New()
	fleet := netshm.NewFleet(net, netshm.Config{})
	for i := 0; i < 3; i++ {
		fleet.Add(fmt.Sprintf("m%d", i), core.NewSystem())
	}

	r := &netfuzzRun{
		s: s, rng: rng, fleet: fleet,
		model: map[string][]byte{},
		home:  map[string]string{},
		watch: map[string]map[string]*genWatch{},
	}

	// Two segments, homed on different machines, so update traffic and
	// acks cross in both directions through the adversary. Each home
	// places its file at an explicitly disjoint inode slot (CreateAt):
	// independent Create calls on fresh machines would hand both homes
	// the same slot, and the same-VA invariant would (correctly) refuse
	// the second segment everywhere as an address clash.
	for i, path := range []string{"/lib/alpha", "/lib/beta"} {
		homeName := fmt.Sprintf("m%d", i)
		home := fleet.Node(homeName)
		size := 1024 + rng.Intn(3*netshm.PageSize)
		content := make([]byte, size)
		rng.Read(content)
		fs := home.Sys().FS
		if err := fs.MkdirAll("/lib", shmfs.DefaultDirMode, 0); err != nil {
			s.Failf("netfuzz seed=%d: mkdir /lib on %s: %v", fuzzSeed, homeName, err)
		}
		if _, err := fs.CreateAt(path, 8+i, shmfs.DefaultFileMode|shmfs.ModeOtherWrite, 0); err != nil {
			s.Failf("netfuzz seed=%d: create %s on %s: %v", fuzzSeed, path, homeName, err)
		}
		if _, err := fs.WriteAt(path, 0, content, 0); err != nil {
			s.Failf("netfuzz seed=%d: write %s on %s: %v", fuzzSeed, path, homeName, err)
		}
		if err := home.Serve(path); err != nil {
			s.Failf("netfuzz seed=%d: serve %s on %s: %v", fuzzSeed, path, homeName, err)
		}
		if err := home.MarkDirty(path, 0, uint32(size)); err != nil {
			s.Failf("netfuzz seed=%d: push %s on %s: %v", fuzzSeed, path, homeName, err)
		}
		r.model[path] = content
		r.paths = append(r.paths, path)
		r.home[path] = homeName
	}

	adv := newAdversary(rng)
	adv.arm(net)
	r.adv = adv

	churn := 60 + rng.Intn(120)
	joinAt := churn / 3 * (1 + rng.Intn(2)) // one-third or two-thirds in
	joined := false
	ctrTicks := s.Reg.Counter("harness.netfuzz.ticks")
	for tick := 0; tick < churn; tick++ {
		if tick == joinAt && !joined {
			fleet.Add("late", core.NewSystem())
			joined = true
			s.Reg.Counter("harness.netfuzz.joins").Inc()
		}
		if rng.Intn(3) != 0 {
			r.writeSomewhere(fuzzSeed, tick)
		}
		fleet.Tick()
		ctrTicks.Inc()
		r.checkGens(fuzzSeed, tick)
	}

	// Quiesce: faithful LAN again; the protocol must heal everything the
	// adversary broke. Gens stay monotone through recovery too.
	adv.disarm(net)
	deadline := -1
	for tick := 0; tick < netfuzzQuiesceTicks; tick++ {
		fleet.Tick()
		ctrTicks.Inc()
		r.checkGens(fuzzSeed, churn+tick)
		allDone := true
		for path := range r.model {
			if !fleet.Converged(path) {
				allDone = false
				break
			}
		}
		if allDone && net.InFlight() == 0 {
			deadline = tick
			break
		}
	}
	if deadline < 0 {
		snap := fleet.Reg.Snapshot().Text()
		s.Failf("netfuzz seed=%d: fleet did not converge within %d quiesce ticks\nfleet counters:\n%s",
			fuzzSeed, netfuzzQuiesceTicks, snap)
	}

	// Every machine — including the latecomer — must hold byte-identical
	// content and the home's exact generation for every segment.
	for path, want := range r.model {
		homeApplied, _, err := fleet.Node(r.home[path]).Gen(path)
		if err != nil {
			s.Failf("netfuzz seed=%d: home gen %s: %v", fuzzSeed, path, err)
		}
		for _, n := range fleet.Nodes() {
			applied, _, err := n.Gen(path)
			if err != nil {
				s.Failf("netfuzz seed=%d: %s never adopted %s: %v", fuzzSeed, n.Name(), path, err)
			}
			if applied != homeApplied {
				s.Failf("netfuzz seed=%d: %s applied gen %d of %s, home at %d",
					fuzzSeed, n.Name(), applied, path, homeApplied)
			}
			st, err := n.Sys().FS.StatPath(path)
			if err != nil {
				s.Failf("netfuzz seed=%d: %s stat %s: %v", fuzzSeed, n.Name(), path, err)
			}
			got := make([]byte, st.Size)
			if _, err := n.Sys().FS.ReadAt(path, 0, got, 0); err != nil {
				s.Failf("netfuzz seed=%d: %s read %s: %v", fuzzSeed, n.Name(), path, err)
			}
			if !bytes.Equal(got, want) {
				i := 0
				for i < len(got) && i < len(want) && got[i] == want[i] {
					i++
				}
				s.Failf("netfuzz seed=%d: %s content of %s diverges from model at byte %d (len %d vs %d)",
					fuzzSeed, n.Name(), path, i, len(got), len(want))
			}
		}
	}
	s.Reg.Counter("harness.netfuzz.runs").Inc()
}
