package harness

import (
	"testing"
)

// TestLaunchDiff drives seeded launch-and-mutate schedules over the three
// stable-linking configurations (cold / warm cache / zygote) and fails on
// any divergence in linked-state hash, symbol addresses, or exit codes.
func TestLaunchDiff(t *testing.T) {
	s := NewScenario(t, "launchdiff", 8)
	n := s.Scale(8, 3)
	for i := 0; i < n; i++ {
		LaunchDiffOne(s, s.Rand.Int63(), 8)
	}
	c := s.Reg.Snapshot().Counters
	if c["harness.launchdiff.rounds"] == 0 {
		s.Failf("launchdiff performed no rounds")
	}
	if c["harness.launchdiff.mutations"] == 0 {
		s.Failf("launchdiff schedules never mutated a module (explorer narrower than it claims)")
	}
	s.Logf("%d schedules: %d rounds, %d in-place mutations",
		n, c["harness.launchdiff.rounds"], c["harness.launchdiff.mutations"])
}

// FuzzLaunchDiff lets the fuzzer pick the schedule seed directly.
func FuzzLaunchDiff(f *testing.F) {
	for _, seed := range []int64{0, 2, 11, 1 << 33} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		LaunchDiffOne(WithSeed(t, "launchdiff-fuzz", seed), seed, 6)
	})
}
