package harness

import (
	"testing"
)

// TestSMPDiff is the SMP acceptance gate: across generated workloads and
// seeded deterministic schedules, at least 500 scheduler runs must
// quiesce with identical exit codes and bit-identical shared-state
// hashes, with zero divergences. Under -short the sweep shrinks but the
// three-way structure (reference / free-running / deterministic) is
// preserved for every workload.
func TestSMPDiff(t *testing.T) {
	s := NewScenario(t, "smpdiff", 9)
	workloads := s.Scale(25, 4)
	nSched := s.Scale(20, 3)
	for i := 0; i < workloads; i++ {
		SMPDiffOne(s, s.Rand.Int63(), nSched)
	}
	c := s.Reg.Snapshot().Counters
	if !testing.Short() {
		if c["harness.smpdiff.schedules"] < 500 {
			s.Failf("ran only %d schedules, want >= 500", c["harness.smpdiff.schedules"])
		}
	}
	if c["harness.smpdiff.divergences"] != 0 {
		s.Failf("%d divergences", c["harness.smpdiff.divergences"])
	}
	s.Logf("%d workloads, %d schedules, no divergences",
		c["harness.smpdiff.workloads"], c["harness.smpdiff.schedules"])
}

// TestSMPDiffFamiliesExercised guards the workload generator: a modest
// sweep must draw from all three families (spin-lock counters,
// producer/consumer ring, cross-CPU code patch), or the differential
// coverage silently narrows.
func TestSMPDiffFamiliesExercised(t *testing.T) {
	s := NewScenario(t, "smpdiff-mix", 10)
	seen := map[string]bool{}
	for i := 0; i < 24; i++ {
		wl := genSMPWorkload(s.Rand)
		for _, fam := range []string{"spin", "prodcons", "patch"} {
			if len(wl.name) >= len(fam) && wl.name[:len(fam)] == fam {
				seen[fam] = true
			}
		}
	}
	for _, fam := range []string{"spin", "prodcons", "patch"} {
		if !seen[fam] {
			s.Failf("family %q never generated in 24 draws", fam)
		}
	}
}

// FuzzSMPDiff lets the fuzzer drive both the workload seed and one
// deterministic schedule seed. The committed corpus pins one seed per
// workload family plus boundary values; `go test -fuzz FuzzSMPDiff`
// explores beyond them.
func FuzzSMPDiff(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 9, 42, 1 << 40, -7} {
		f.Add(seed, seed*3+1)
	}
	f.Fuzz(func(t *testing.T, wlSeed, schedSeed int64) {
		s := WithSeed(t, "smpdiff-fuzz", wlSeed)
		old := *smpDetSeed
		if schedSeed != 0 {
			*smpDetSeed = schedSeed
		}
		defer func() { *smpDetSeed = old }()
		SMPDiffOne(s, wlSeed, 1)
	})
}
