package harness

import (
	"testing"
)

// TestNetShmFuzz runs a batch of seeded adversarial fleet scenarios:
// drops, duplicates, delays and reorders under churn, a late join, then
// quiesce and byte-exact convergence.
func TestNetShmFuzz(t *testing.T) {
	s := NewScenario(t, "netfuzz", 4)
	n := s.Scale(20, 5)
	for i := 0; i < n; i++ {
		NetFuzzOne(s, s.Rand.Int63())
	}
	c := s.Reg.Snapshot().Counters
	if c["harness.netfuzz.runs"] != uint64(n) {
		s.Failf("completed %d runs, want %d", c["harness.netfuzz.runs"], n)
	}
	s.Logf("%d runs: %d ticks, %d writes, %d late joins, all converged byte-exact",
		n, c["harness.netfuzz.ticks"], c["harness.netfuzz.writes"], c["harness.netfuzz.joins"])
}

// FuzzNetShm lets the fuzzer pick the adversary seed directly.
func FuzzNetShm(f *testing.F) {
	for _, seed := range []int64{0, 1, 4, 9, 1 << 48, -13} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		NetFuzzOne(WithSeed(t, "netfuzz-fuzz", seed), seed)
	})
}
