package harness

import (
	"testing"
)

// TestNetShmFuzz runs a batch of seeded adversarial fleet scenarios:
// drops, duplicates, delays and reorders under churn, a late join, then
// quiesce and byte-exact convergence.
func TestNetShmFuzz(t *testing.T) {
	s := NewScenario(t, "netfuzz", 4)
	n := s.Scale(20, 5)
	for i := 0; i < n; i++ {
		NetFuzzOne(s, s.Rand.Int63())
	}
	c := s.Reg.Snapshot().Counters
	if c["harness.netfuzz.runs"] != uint64(n) {
		s.Failf("completed %d runs, want %d", c["harness.netfuzz.runs"], n)
	}
	s.Logf("%d runs: %d ticks, %d writes, %d migrations, %d txn commits (%d forwarded, %d aborted), %d late joins, all converged byte-exact",
		n, c["harness.netfuzz.ticks"], c["harness.netfuzz.writes"], c["harness.netfuzz.migrations"],
		c["harness.netfuzz.txn_commits"], c["harness.netfuzz.txn_forwards"], c["harness.netfuzz.txn_aborts"],
		c["harness.netfuzz.joins"])
}

// TestTxnAtomicitySchedules is the transactional acceptance run: hundreds
// of seeded adversarial schedules — drops, duplicates, delays, reorders,
// home migrations, forwarded commits, deliberate conflicts — during which
// no machine may ever observe a partial multi-word commit. The marker
// block straddles a page boundary and is checked on every tick of every
// schedule.
func TestTxnAtomicitySchedules(t *testing.T) {
	s := NewScenario(t, "txn-atomicity", 11)
	n := s.Scale(500, 100)
	for i := 0; i < n; i++ {
		NetFuzzOne(s, s.Rand.Int63())
	}
	c := s.Reg.Snapshot().Counters
	if c["harness.netfuzz.runs"] != uint64(n) {
		s.Failf("completed %d schedules, want %d", c["harness.netfuzz.runs"], n)
	}
	if c["harness.netfuzz.txn_commits"] == 0 || c["harness.netfuzz.txn_aborts"] == 0 {
		s.Failf("schedules exercised no commits/aborts: %d/%d",
			c["harness.netfuzz.txn_commits"], c["harness.netfuzz.txn_aborts"])
	}
	s.Logf("%d schedules: %d commits (%d forwarded), %d aborts, %d lost, no partial commit observed",
		n, c["harness.netfuzz.txn_commits"], c["harness.netfuzz.txn_forwards"],
		c["harness.netfuzz.txn_aborts"], c["harness.netfuzz.txn_lost"])
}

// FuzzNetShm lets the fuzzer pick the adversary seed directly.
func FuzzNetShm(f *testing.F) {
	for _, seed := range []int64{0, 1, 4, 9, 1 << 48, -13} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		NetFuzzOne(WithSeed(t, "netfuzz-fuzz", seed), seed)
	})
}
