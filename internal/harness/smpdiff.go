package harness

import (
	"flag"
	"fmt"
	"math/rand"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/kern"
	"hemlock/internal/layout"
	"hemlock/internal/linker"
	"hemlock/internal/mem"
	"hemlock/internal/objfile"
	"hemlock/internal/shmfs"
	"hemlock/internal/vm"
)

// The SMP differential harness is the proof obligation behind true SMP:
// for workloads whose final shared state is schedule-INDEPENDENT by
// construction (locked counters, a bounded SPSC ring, a self-resolving
// code patch), every legal interleaving must quiesce in the same state.
// Each workload runs three ways on fresh kernels —
//
//	ref:  one scheduler CPU (the pre-SMP world, still preemptive),
//	free: N host goroutines racing for real,
//	det:  the seeded single-goroutine interleaver (SchedConfig.Det),
//
// and the harness demands identical exit codes plus a bit-identical
// vm.StateHash over the shared segments at quiesce. The free run proves
// the host-atomic guest memory protocol under the race detector; the det
// runs sweep many adversarial preemption points reproducibly. A failure
// names both seeds: -harness.seed replays the workload sweep, -smp.det
// pins the single deterministic schedule that diverged.
var smpDetSeed = flag.Int64("smp.det", 0,
	"replay only this deterministic SMP schedule seed (0 = full sweep)")

// buildSMPImage assembles one self-contained guest program at the
// standard text base.
func buildSMPImage(name, src string) (*objfile.Image, error) {
	o, err := isa.Assemble(name+".s", src)
	if err != nil {
		return nil, err
	}
	p, err := linker.Place(o, layout.TextBase)
	if err != nil {
		return nil, err
	}
	img := p.Image()
	pending, err := p.RelocateInternal(&linker.BytesPatcher{Base: layout.TextBase, B: img})
	if err != nil {
		return nil, err
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("unresolved refs: %v", pending)
	}
	dataOff, _ := o.Layout()
	return &objfile.Image{
		Name:     name,
		Entry:    layout.TextBase,
		TextBase: layout.TextBase,
		Text:     img[:dataOff],
		DataBase: layout.TextBase + dataOff,
		Data:     img[dataOff:],
		BssBase:  layout.TextBase + uint32(len(img)),
		BssSize:  p.Size() - uint32(len(img)),
	}, nil
}

// smpWorkload is one generated guest workload. prepare creates the shared
// files on a fresh kernel and returns the per-process assembly (it runs
// once per scheduler mode, so every mode sees an identical initial
// machine); verify checks the workload's own invariant on the quiesced
// shared state, independent of the cross-mode hash comparison.
type smpWorkload struct {
	name    string
	paths   []string // shared files hashed at quiesce
	exits   []int    // expected exit code per process
	budget  uint64
	prepare func(k *kern.Kernel) ([]string, error)
	verify  func(k *kern.Kernel) error
}

// readWord fetches a big-endian word from a shared file.
func readWord(k *kern.Kernel, path string, off uint32) (uint32, error) {
	return k.FS.LoadWordAt(path, off, 0)
}

// createSeg creates an empty shared file (and its directory) for a
// workload segment.
func createSeg(k *kern.Kernel, path string) error {
	if err := k.FS.MkdirAll("/smp", shmfs.DefaultDirMode, 0); err != nil {
		return err
	}
	_, err := k.FS.Create(path, shmfs.DefaultFileMode, 0)
	return err
}

// genSMPWorkload draws one workload from the three families.
func genSMPWorkload(rng *rand.Rand) *smpWorkload {
	switch rng.Intn(3) {
	case 0:
		return genSpinCounters(rng)
	case 1:
		return genProdCons(rng)
	default:
		return genPatchRace(rng)
	}
}

// genSpinCounters: W workers contend for one guest TAS lock and bump a
// shared counter with plain loads and stores inside the critical section.
// Any lost update shifts the exact final count (and the quiesce hash).
func genSpinCounters(rng *rand.Rand) *smpWorkload {
	workers := 2 + rng.Intn(3)
	iters := 10 + rng.Intn(40)
	src := fmt.Sprintf(`
        .text
        li      $v0, 14         # map_shared(path, size)
        la      $a0, path
        li      $a1, 4096
        syscall
        bnez    $v1, fail
        move    $s0, $v0        # lock at base+0
        addiu   $s1, $v0, 4     # counter at base+4
        li      $s2, %d
again:
        li      $v0, 23         # tas(lock)
        move    $a0, $s0
        syscall
        bnez    $v0, again
        lw      $t0, 0($s1)
        addiu   $t0, $t0, 1
        sw      $t0, 0($s1)
        li      $v0, 24         # atomic_store(lock, 0): release
        move    $a0, $s0
        li      $a1, 0
        syscall
        addiu   $s2, $s2, -1
        bnez    $s2, again
        li      $a0, 0
        li      $v0, 1
        syscall
fail:   li      $a0, 255
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/smp/seg"
`, iters)
	wl := &smpWorkload{
		name:   fmt.Sprintf("spin-w%d-i%d", workers, iters),
		paths:  []string{"/smp/seg"},
		budget: 100_000_000,
		prepare: func(k *kern.Kernel) ([]string, error) {
			if err := createSeg(k, "/smp/seg"); err != nil {
				return nil, err
			}
			srcs := make([]string, workers)
			for i := range srcs {
				srcs[i] = src
			}
			return srcs, nil
		},
		verify: func(k *kern.Kernel) error {
			got, err := readWord(k, "/smp/seg", 4)
			if err != nil {
				return err
			}
			if want := uint32(workers * iters); got != want {
				return fmt.Errorf("counter = %d, want %d (lost updates)", got, want)
			}
			return nil
		},
	}
	wl.exits = make([]int, workers)
	return wl
}

// genProdCons: a single-producer single-consumer ring in a shared
// segment. head (base+0) and tail (base+4) advance with plain word
// stores — every guest word access is host-atomic and sequentially
// consistent, so the slot write is visible before the index that
// publishes it. The consumer folds the N values into a sum at base+8;
// the ring residue, indices and sum are all schedule-independent.
func genProdCons(rng *rand.Rand) *smpWorkload {
	n := 8 * (1 + rng.Intn(5)) // 8..40 items
	producer := fmt.Sprintf(`
        .text
        li      $v0, 14
        la      $a0, path
        li      $a1, 4096
        syscall
        bnez    $v1, fail
        move    $s0, $v0
        li      $s1, 1          # next value
        li      $s2, %d         # remaining
pwait:  lw      $t0, 0($s0)     # head
        lw      $t1, 4($s0)     # tail
        subu    $t2, $t0, $t1
        sltiu   $t2, $t2, 8     # room in the 8-slot ring?
        beqz    $t2, pwait
        andi    $t3, $t0, 7
        sll     $t3, $t3, 2
        addiu   $t3, $t3, 16
        addu    $t3, $s0, $t3
        sw      $s1, 0($t3)     # ring[head & 7] = value
        addiu   $t0, $t0, 1
        sw      $t0, 0($s0)     # publish: head++
        addiu   $s1, $s1, 1
        addiu   $s2, $s2, -1
        bnez    $s2, pwait
        li      $a0, 0
        li      $v0, 1
        syscall
fail:   li      $a0, 255
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/smp/ring"
`, n)
	consumer := fmt.Sprintf(`
        .text
        li      $v0, 14
        la      $a0, path
        li      $a1, 4096
        syscall
        bnez    $v1, fail
        move    $s0, $v0
        li      $s2, %d
        li      $s3, 0          # sum
cwait:  lw      $t0, 0($s0)     # head
        lw      $t1, 4($s0)     # tail
        beq     $t0, $t1, cwait # empty
        andi    $t3, $t1, 7
        sll     $t3, $t3, 2
        addiu   $t3, $t3, 16
        addu    $t3, $s0, $t3
        lw      $t4, 0($t3)
        addu    $s3, $s3, $t4
        addiu   $t1, $t1, 1
        sw      $t1, 4($s0)     # consume: tail++
        addiu   $s2, $s2, -1
        bnez    $s2, cwait
        sw      $s3, 8($s0)     # publish the sum
        li      $a0, 0
        li      $v0, 1
        syscall
fail:   li      $a0, 255
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/smp/ring"
`, n)
	return &smpWorkload{
		name:   fmt.Sprintf("prodcons-n%d", n),
		paths:  []string{"/smp/ring"},
		exits:  []int{0, 0},
		budget: 100_000_000,
		prepare: func(k *kern.Kernel) ([]string, error) {
			if err := createSeg(k, "/smp/ring"); err != nil {
				return nil, err
			}
			return []string{producer, consumer}, nil
		},
		verify: func(k *kern.Kernel) error {
			sum, err := readWord(k, "/smp/ring", 8)
			if err != nil {
				return err
			}
			head, _ := readWord(k, "/smp/ring", 0)
			tail, _ := readWord(k, "/smp/ring", 4)
			if want := uint32(n * (n + 1) / 2); sum != want {
				return fmt.Errorf("sum = %d, want %d", sum, want)
			}
			if head != uint32(n) || tail != uint32(n) {
				return fmt.Errorf("head/tail = %d/%d, want %d/%d", head, tail, n, n)
			}
			return nil
		},
	}
}

// genPatchRace: the cross-CPU code-patch family. A runner jumps into a
// shared RWX file and spins in a two-instruction loop; a patcher process
// delays a seeded number of steps, then overwrites the loop's jump with a
// jump to a HALT — the exact store a sibling CPU's lazy linker makes when
// it patches a PLT slot in a public module. The runner only survives its
// budget if the patched word (and the block invalidation behind it)
// reaches its CPU; the quiesced text is the patched text in every mode.
func genPatchRace(rng *rand.Rand) *smpWorkload {
	delay := 50 + rng.Intn(2000)
	runner := `
        .text
        li      $v0, 14
        la      $a0, path
        li      $a1, 4096
        syscall
        bnez    $v1, fail
        addiu   $t0, $v0, 256   # victim loop at base+0x100
        jr      $t0
fail:   li      $a0, 255
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/smp/text"
`
	return &smpWorkload{
		name:   fmt.Sprintf("patch-d%d", delay),
		paths:  []string{"/smp/text"},
		exits:  []int{0, 0},
		budget: 100_000_000,
		prepare: func(k *kern.Kernel) ([]string, error) {
			if err := createSeg(k, "/smp/text"); err != nil {
				return nil, err
			}
			_, st, err := k.FS.Frames("/smp/text", mem.PageSize, 0, true)
			if err != nil {
				return nil, err
			}
			victim := st.Addr + 0x100
			escape := st.Addr + 0x200
			words := map[uint32]uint32{
				victim:     isa.EncodeI(isa.OpADDIU, 10, 10, 1), // addiu t2, t2, 1
				victim + 4: isa.EncodeJ(isa.OpJ, victim),        // j victim (spin)
				escape:     isa.EncodeI(isa.OpHALT, 0, 0, 0),
			}
			for addr, w := range words {
				if err := k.FS.StoreWordAt("/smp/text", addr-st.Addr, w, 0); err != nil {
					return nil, err
				}
			}
			patcher := fmt.Sprintf(`
        .text
        li      $v0, 14
        la      $a0, path
        li      $a1, 4096
        syscall
        bnez    $v1, fail
        move    $s0, $v0
        li      $t0, %d
dly:    addiu   $t0, $t0, -1
        bnez    $t0, dly
        li      $t8, %d         # j escape, pre-encoded by the harness
        sw      $t8, 260($s0)   # patch victim+4
        li      $a0, 0
        li      $v0, 1
        syscall
fail:   li      $a0, 255
        li      $v0, 1
        syscall
        .data
path:   .asciiz "/smp/text"
`, delay, int64(isa.EncodeJ(isa.OpJ, escape)))
			return []string{runner, patcher}, nil
		},
		verify: func(k *kern.Kernel) error {
			_, st, err := k.FS.Frames("/smp/text", mem.PageSize, 0, false)
			if err != nil {
				return err
			}
			got, err := readWord(k, "/smp/text", 0x104)
			if err != nil {
				return err
			}
			if want := isa.EncodeJ(isa.OpJ, st.Addr+0x200); got != want {
				return fmt.Errorf("victim word = %08x, want patched %08x", got, want)
			}
			return nil
		},
	}
}

// smpResult is one scheduler mode's observable outcome.
type smpResult struct {
	exits []int
	hash  uint64
}

// runSMPMode executes wl on a fresh kernel under cfg and returns the exit
// codes plus the quiesce hash: a never-run observer process maps every
// shared segment read-only and vm.StateHash folds the mapped pages, so
// the hash covers exactly the shared bytes the modes must agree on.
func runSMPMode(s *Scenario, wl *smpWorkload, cfg kern.SchedConfig, label string) (smpResult, bool) {
	k := kern.New()
	srcs, err := wl.prepare(k)
	if err != nil {
		s.Failf("%s [%s]: prepare: %v", wl.name, label, err)
		return smpResult{}, false
	}
	var ps []*kern.Process
	for i, src := range srcs {
		im, err := buildSMPImage(fmt.Sprintf("%s-p%d", wl.name, i), src)
		if err != nil {
			s.Failf("%s [%s]: build p%d: %v", wl.name, label, i, err)
			return smpResult{}, false
		}
		p := k.Spawn(0)
		if err := p.Exec(im); err != nil {
			s.Failf("%s [%s]: exec p%d: %v", wl.name, label, i, err)
			return smpResult{}, false
		}
		ps = append(ps, p)
	}
	sch := kern.NewScheduler(k, cfg)
	defer sch.Stop()
	if err := sch.RunAll(ps, wl.budget); err != nil {
		s.Failf("%s [%s]: run: %v", wl.name, label, err)
		return smpResult{}, false
	}
	res := smpResult{}
	for _, p := range ps {
		res.exits = append(res.exits, p.ExitCode)
	}
	if err := wl.verify(k); err != nil {
		s.Failf("%s [%s]: invariant: %v", wl.name, label, err)
		return smpResult{}, false
	}
	obs := k.Spawn(0)
	for _, path := range wl.paths {
		if _, err := k.MapSharedFile(obs, path, mem.PageSize, addrspace.ProtRead); err != nil {
			s.Failf("%s [%s]: observe %s: %v", wl.name, label, path, err)
			return smpResult{}, false
		}
	}
	res.hash = vm.StateHash(obs.CPU)
	return res, true
}

func equalExits(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SMPDiffOne generates the workload for wlSeed and runs the three-way
// comparison: 1-CPU reference, N-CPU free-running, and nSched seeded
// deterministic schedules, all of which must quiesce with the reference
// run's exit codes and shared-state hash. Counters land in the scenario
// registry under harness.smpdiff.*.
func SMPDiffOne(s *Scenario, wlSeed int64, nSched int) {
	ctrWl := s.Reg.Counter("harness.smpdiff.workloads")
	ctrSched := s.Reg.Counter("harness.smpdiff.schedules")
	ctrDiv := s.Reg.Counter("harness.smpdiff.divergences")

	rng := rand.New(rand.NewSource(wlSeed))
	wl := genSMPWorkload(rng)
	cpus := 2 + rng.Intn(3) // 2..4 host CPUs in the free-running run
	quantum := uint64(200 + rng.Intn(1300))
	ctrWl.Inc()

	ref, ok := runSMPMode(s, wl, kern.SchedConfig{CPUs: 1, Quantum: quantum}, "ref-1cpu")
	if !ok {
		return
	}
	ctrSched.Inc()
	if !equalExits(ref.exits, wl.exits) {
		ctrDiv.Inc()
		s.Failf("workload seed=%d %s: reference exit codes %v, want %v",
			wlSeed, wl.name, ref.exits, wl.exits)
		return
	}

	free, ok := runSMPMode(s, wl, kern.SchedConfig{CPUs: cpus, Quantum: quantum},
		fmt.Sprintf("free-%dcpu", cpus))
	if !ok {
		return
	}
	ctrSched.Inc()
	if !equalExits(free.exits, ref.exits) || free.hash != ref.hash {
		ctrDiv.Inc()
		s.Failf("workload seed=%d %s: free-running %d-CPU diverged: exits %v/%v hash %016x/%016x",
			wlSeed, wl.name, cpus, free.exits, ref.exits, free.hash, ref.hash)
		return
	}

	schedSeeds := make([]int64, 0, nSched)
	if *smpDetSeed != 0 {
		schedSeeds = append(schedSeeds, *smpDetSeed)
	} else {
		for i := 0; i < nSched; i++ {
			schedSeeds = append(schedSeeds, rng.Int63())
		}
	}
	for _, seed := range schedSeeds {
		det, ok := runSMPMode(s, wl, kern.SchedConfig{Det: true, Seed: seed, Quantum: quantum},
			fmt.Sprintf("det-%d", seed))
		if !ok {
			return
		}
		ctrSched.Inc()
		if !equalExits(det.exits, ref.exits) || det.hash != ref.hash {
			ctrDiv.Inc()
			s.Failf("workload seed=%d %s: det schedule diverged: exits %v/%v hash %016x/%016x (replay: -harness.seed=%d -smp.det=%d)",
				wlSeed, wl.name, det.exits, ref.exits, det.hash, ref.hash, s.Seed(), seed)
			return
		}
	}
}
