package harness

import (
	"fmt"
	"math/rand"

	"hemlock/internal/vm"
)

// diffSlotBudget bounds one program execution. A slot is consumed by every
// retired instruction AND every serviced trap, so even a program that
// faults forever (e.g. a jump to an unaligned address it keeps re-faulting
// on) terminates after exactly the same number of loop turns on both paths.
const diffSlotBudget = 4096

// execPath runs c until halt or the slot budget is gone, recording the
// observable event sequence. fast selects the production path (RunBatch
// over the TLB + icache); otherwise every instruction goes through the
// cache-free reference stepper. Traps are serviced the way a minimal
// kernel would: record, skip the faulting instruction, continue.
func execPath(c *vm.CPU, fast bool, budget uint64) []string {
	var events []string
	var consumed uint64
	for consumed < budget {
		before := c.Steps
		var ev vm.Event
		var err error
		if fast {
			ev, err = c.RunBatch(budget - consumed)
		} else {
			ev, err = c.ReferenceStep()
		}
		consumed += c.Steps - before
		if err != nil {
			events = append(events, fmt.Sprintf("trap pc=%08x: %v", c.PC, err))
			consumed++
			c.PC += 4
			continue
		}
		switch ev {
		case vm.EventHalt:
			events = append(events, fmt.Sprintf("halt pc=%08x", c.PC))
			return events
		case vm.EventSyscall:
			events = append(events, fmt.Sprintf("syscall pc=%08x", c.PC))
		case vm.EventBreak:
			events = append(events, fmt.Sprintf("break pc=%08x", c.PC))
		}
	}
	events = append(events, "budget exhausted")
	return events
}

// DiffOne generates the program image for progSeed, executes it on the
// fast path and on the reference path, and fails the scenario on any
// divergence in the event sequence, step count, registers, PC, or the
// whole-memory state hash. The failure message names progSeed: replaying
// just that program is FuzzDiffExec's job (the seed is the fuzz input).
func DiffOne(s *Scenario, progSeed int64) {
	ctrProg := s.Reg.Counter("harness.diff.programs")
	ctrSteps := s.Reg.Counter("harness.diff.steps")
	ctrTraps := s.Reg.Counter("harness.diff.traps")
	ctrEvents := s.Reg.Counter("harness.diff.events")

	rng := rand.New(rand.NewSource(progSeed))
	im := genImage(rng)
	fast, err := im.instantiate()
	if err != nil {
		s.Failf("program seed=%d: instantiate fast: %v", progSeed, err)
		return
	}
	ref, err := im.instantiate()
	if err != nil {
		s.Failf("program seed=%d: instantiate ref: %v", progSeed, err)
		return
	}
	// Third machine: batched execution with the block engine forced to the
	// other setting, so one run always compares block-translated against
	// per-instruction batching regardless of HEMLOCK_BLOCK_ENGINE.
	alt, err := im.instantiate()
	if err != nil {
		s.Failf("program seed=%d: instantiate alt: %v", progSeed, err)
		return
	}
	alt.SetBlockEngine(!alt.BlockEngineOn())

	fe := execPath(fast, true, diffSlotBudget)
	re := execPath(ref, false, diffSlotBudget)
	ae := execPath(alt, true, diffSlotBudget)
	ctrProg.Inc()
	ctrSteps.Add(fast.Steps)
	ctrTraps.Add(fast.Traps)
	ctrEvents.Add(uint64(len(fe)))

	for i := 0; i < len(fe) || i < len(re); i++ {
		f, r := "<none>", "<none>"
		if i < len(fe) {
			f = fe[i]
		}
		if i < len(re) {
			r = re[i]
		}
		if f != r {
			s.Failf("program seed=%d: event %d diverged\n  fast: %s\n  ref:  %s\nfast state:\n%s\nref state:\n%s",
				progSeed, i, f, r, vm.DumpState(fast), vm.DumpState(ref))
			return
		}
	}
	if fast.Steps != ref.Steps || fast.Traps != ref.Traps {
		s.Failf("program seed=%d: counts diverged: fast steps=%d traps=%d, ref steps=%d traps=%d",
			progSeed, fast.Steps, fast.Traps, ref.Steps, ref.Traps)
		return
	}
	if fast.PC != ref.PC || fast.Regs != ref.Regs {
		s.Failf("program seed=%d: register file diverged\nfast:\n%s\nref:\n%s",
			progSeed, vm.DumpState(fast), vm.DumpState(ref))
		return
	}
	if fh, rh := vm.StateHash(fast), vm.StateHash(ref); fh != rh {
		s.Failf("program seed=%d: memory diverged (hash fast=%016x ref=%016x)\nfast:\n%s\nref:\n%s",
			progSeed, fh, rh, vm.DumpState(fast), vm.DumpState(ref))
		return
	}
	// The alternate batched path against the (already reference-verified)
	// fast path.
	for i := 0; i < len(ae) || i < len(fe); i++ {
		a, f := "<none>", "<none>"
		if i < len(ae) {
			a = ae[i]
		}
		if i < len(fe) {
			f = fe[i]
		}
		if a != f {
			s.Failf("program seed=%d: event %d diverged between batched engines\n  fast: %s\n  alt:  %s\nfast state:\n%s\nalt state:\n%s",
				progSeed, i, f, a, vm.DumpState(fast), vm.DumpState(alt))
			return
		}
	}
	if alt.Steps != fast.Steps || alt.Traps != fast.Traps ||
		alt.PC != fast.PC || alt.Regs != fast.Regs ||
		vm.StateHash(alt) != vm.StateHash(fast) {
		s.Failf("program seed=%d: batched engines diverged\nfast:\n%s\nalt:\n%s",
			progSeed, vm.DumpState(fast), vm.DumpState(alt))
	}
}
