// Package harness is the deterministic differential-testing and fuzzing
// subsystem. Three engines share one seed/reporting discipline:
//
//   - the program generator + interpreter oracle (gen.go, diff.go):
//     random-but-valid R3K-lite programs executed twice, once on the
//     TLB/icache fast path and once on the cache-free reference stepper,
//     with bit-identical state and trap sequences demanded;
//   - the link/load schedule explorer (sched.go): seeded interleavings of
//     create/map/lazy-link/PLT-patch/fork/exit with the linker invariants
//     checked after every step;
//   - the netshm network fuzzer (netfuzz.go): a seeded adversary over
//     netsim that drops, duplicates, delays and reorders datagrams, with
//     convergence and per-page sequence monotonicity asserted.
//
// Every run is a pure function of its seed. A failing run prints that
// seed; replay it with
//
//	go test ./internal/harness -run <Test> -harness.seed=<seed>
//
// (fuzz-found inputs replay from the corpus file instead). Engine
// counters are emitted through an internal/obsv registry and rendered
// into every failure message, so a failing run's shape — programs
// executed, traps taken, datagrams dropped — is inspectable with the
// same tooling as the rest of the system.
package harness

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"

	"hemlock/internal/obsv"
)

// seedFlag overrides every scenario's default seed, for replaying a
// failure printed by a previous run.
var seedFlag = flag.Int64("harness.seed", 0, "replay seed for harness scenarios (0 = scenario default)")

// Scenario bundles the seeded RNG, the obsv registry, and the failure
// reporting every harness engine shares. One Scenario is one reproducible
// run: same seed, same behaviour, bit for bit.
type Scenario struct {
	T    testing.TB
	Name string
	Rand *rand.Rand
	Reg  *obsv.Registry
	seed int64
}

// NewScenario starts a scenario with defaultSeed, which the -harness.seed
// flag overrides. Use this for ordinary deterministic tests; fuzz targets,
// whose seed is the fuzz input itself, use WithSeed.
func NewScenario(t testing.TB, name string, defaultSeed int64) *Scenario {
	seed := defaultSeed
	if *seedFlag != 0 {
		seed = *seedFlag
	}
	return WithSeed(t, name, seed)
}

// WithSeed starts a scenario pinned to an explicit seed, ignoring the
// -harness.seed flag.
func WithSeed(t testing.TB, name string, seed int64) *Scenario {
	return &Scenario{
		T:    t,
		Name: name,
		Rand: rand.New(rand.NewSource(seed)),
		Reg:  obsv.NewRegistry(),
		seed: seed,
	}
}

// Seed returns the seed this scenario runs under.
func (s *Scenario) Seed() int64 { return s.seed }

// Failf fails the test. The message always carries the scenario name, the
// seed needed to replay the run, and the engine's obsv counters.
func (s *Scenario) Failf(format string, args ...interface{}) {
	s.T.Helper()
	s.T.Fatalf("harness %s seed=%d: %s\nreplay: -harness.seed=%d\n%s",
		s.Name, s.seed, fmt.Sprintf(format, args...), s.seed, s.Reg.Snapshot().Text())
}

// Logf logs with the scenario prefix.
func (s *Scenario) Logf(format string, args ...interface{}) {
	s.T.Helper()
	s.T.Logf("harness %s seed=%d: %s", s.Name, s.seed, fmt.Sprintf(format, args...))
}

// Scale picks between a full and a -short workload size.
func (s *Scenario) Scale(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}
