package harness

import (
	"testing"
)

// TestLinkSchedule drives seeded schedules of launch/run/fork/var/segment/
// exit operations, each over a fresh machine, with the linker invariants
// checked after every operation.
func TestLinkSchedule(t *testing.T) {
	s := NewScenario(t, "sched", 3)
	n := s.Scale(30, 8)
	for i := 0; i < n; i++ {
		ScheduleOne(s, s.Rand.Int63(), 40)
	}
	c := s.Reg.Snapshot().Counters
	// The op mix must actually exercise every operation kind, or the
	// explorer is quietly narrower than it claims.
	for _, k := range []string{
		"harness.sched.launches", "harness.sched.runs", "harness.sched.forks",
		"harness.sched.varops", "harness.sched.segments", "harness.sched.exits",
	} {
		if c[k] == 0 {
			s.Failf("schedule mix never performed %s", k)
		}
	}
	s.Logf("%d schedules: %d ops (%d runs, %d forks, %d var ops, %d segments, %d early exits)",
		n, c["harness.sched.ops"], c["harness.sched.runs"], c["harness.sched.forks"],
		c["harness.sched.varops"], c["harness.sched.segments"], c["harness.sched.exits"])
}

// FuzzLinkSchedule lets the fuzzer pick the schedule seed directly.
func FuzzLinkSchedule(f *testing.F) {
	for _, seed := range []int64{0, 1, 3, 7, 1 << 40, -5} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		ScheduleOne(WithSeed(t, "sched-fuzz", seed), seed, 40)
	})
}
