package harness

import (
	"fmt"
	"math/rand"

	"hemlock/internal/core"
	"hemlock/internal/lds"
	"hemlock/internal/objfile"
	"hemlock/internal/vm"
)

// The cold-vs-warm-vs-zygote differential mode of the link/load explorer:
// one seeded launch schedule is replayed against three machines that differ
// only in the stable-linking configuration —
//
//	cold    link cache off, zygotes off (every launch relinks from scratch)
//	warm    link cache on,  zygotes off (repeat launches replay recorded
//	        resolutions)
//	zygote  link cache on,  zygotes on  (repeat launches CoW-clone the
//	        parked template)
//
// After every launch the three processes must agree on the whole-memory
// vm.StateHash of the freshly linked address space, on every public
// symbol's address (same-VA across machines, not just across processes),
// and — after running — on the exit code. The schedule also mutates a
// module template in place, which must invalidate the cache on the warm
// and zygote machines and still converge with the cold machine on the
// next launch. Per machine, PLT resolution counts stay monotone and
// ImageRelocsLeft stays non-negative.

const ldiffPlayerSrc = `
        .text
        .globl  main
        .extern svc_add
        .extern val_v
        .extern pub_n
main:   addiu   $sp, $sp, -8
        sw      $ra, 0($sp)
        li      $a0, 30
        li      $a1, 5
        jal     svc_add
        jal     svc_add
        move    $t5, $v0
        la      $t0, val_v
        lw      $t6, 0($t0)
        la      $t0, pub_n
        lw      $t1, 0($t0)
        addiu   $t1, $t1, 1
        sw      $t1, 0($t0)
        addu    $v0, $t5, $t6
        addu    $v0, $v0, $t1
        lw      $ra, 0($sp)
        addiu   $sp, $sp, 8
        jr      $ra
`

const ldiffSvcSrc = `
        .text
        .globl  svc_add
svc_add:
        addu    $v0, $a0, $a1
        jr      $ra
`

const ldiffCntSrc = `
        .data
        .globl  pub_n
pub_n:  .word   0
`

// ldiffMachine is one of the three configurations under comparison.
type ldiffMachine struct {
	name    string
	sys     *core.System
	res     *lds.Result
	lastPLT int
}

func ldiffValSrc(v int) string {
	return fmt.Sprintf(".data\n.globl val_v\nval_v: .word %d\n", v)
}

func newLdiffMachine(s *Scenario, seed int64, name string, cache, zyg bool, val int) *ldiffMachine {
	sys := core.NewSystem()
	sys.SetStableLinking(cache, zyg)
	for _, m := range []struct{ path, src string }{
		{"/lib/svc.o", ldiffSvcSrc},
		{"/lib/cnt.o", ldiffCntSrc},
		{"/lib/val.o", ldiffValSrc(val)},
		{"/bin/player.o", ldiffPlayerSrc},
	} {
		if _, err := sys.Asm(m.path, m.src); err != nil {
			s.Failf("launchdiff seed=%d: asm %s on %s: %v", seed, m.path, name, err)
		}
	}
	res, err := sys.Link(&lds.Options{
		Output: "player",
		Modules: []lds.Input{
			{Name: "player.o", Class: objfile.StaticPrivate},
			{Name: "svc.o", Class: objfile.DynamicPublic},
			{Name: "cnt.o", Class: objfile.DynamicPublic},
			{Name: "val.o", Class: objfile.DynamicPrivate},
		},
		LinkDir:     "/bin",
		DefaultPath: []string{"/lib"},
		JumpTables:  true,
	})
	if err != nil {
		s.Failf("launchdiff seed=%d: link on %s: %v", seed, name, err)
	}
	return &ldiffMachine{name: name, sys: sys, res: res}
}

func (m *ldiffMachine) counter(name string) uint64 {
	return m.sys.Obs().R.Snapshot().Counters[name]
}

func (m *ldiffMachine) checkInvariants(s *Scenario, seed int64, round int) {
	st := m.sys.W.Stats
	if st.ImageRelocsLeft < 0 {
		s.Failf("launchdiff seed=%d round=%d: %s ImageRelocsLeft = %d (negative)",
			seed, round, m.name, st.ImageRelocsLeft)
	}
	if st.PLTResolves < m.lastPLT {
		s.Failf("launchdiff seed=%d round=%d: %s PLTResolves went backwards: %d -> %d",
			seed, round, m.name, m.lastPLT, st.PLTResolves)
	}
	m.lastPLT = st.PLTResolves
}

// LaunchDiffOne replays one seeded launch-and-mutate schedule on the cold,
// warm, and zygote machines and fails the scenario on any divergence. The
// failure message names diffSeed (the FuzzLaunchDiff input).
func LaunchDiffOne(s *Scenario, diffSeed int64, rounds int) {
	rng := rand.New(rand.NewSource(diffSeed))
	val := rng.Intn(64)
	machines := []*ldiffMachine{
		newLdiffMachine(s, diffSeed, "cold", false, false, val),
		newLdiffMachine(s, diffSeed, "warm", true, false, val),
		newLdiffMachine(s, diffSeed, "zygote", true, true, val),
	}
	cold, warm, zyg := machines[0], machines[1], machines[2]

	ctrRounds := s.Reg.Counter("harness.launchdiff.rounds")
	ctrMut := s.Reg.Counter("harness.launchdiff.mutations")
	repeats := 0 // launches that repeated an unchanged module set
	mutations := 0
	count := 0 // model of pub_n
	for round := 0; round < rounds; round++ {
		// Sometimes mutate the private value module in place, on all
		// three machines: the warm and zygote machines must invalidate
		// their cache entry and converge with the cold relink.
		if round > 0 && rng.Intn(3) == 0 {
			val = rng.Intn(64)
			for _, m := range machines {
				if _, err := m.sys.Asm("/lib/val.o", ldiffValSrc(val)); err != nil {
					s.Failf("launchdiff seed=%d round=%d: mutate val.o on %s: %v",
						diffSeed, round, m.name, err)
				}
			}
			mutations++
			ctrMut.Inc()
		} else if round > 0 {
			repeats++
		}

		// Launch on every machine, force the lazy links with language-level
		// accesses, and compare the fully linked state.
		pgs := make([]*core.Program, len(machines))
		for i, m := range machines {
			pg, err := m.sys.Launch(m.res.Image, 0, nil)
			if err != nil {
				s.Failf("launchdiff seed=%d round=%d: launch on %s: %v", diffSeed, round, m.name, err)
			}
			pgs[i] = pg
		}
		var addrs [3]map[string]uint32
		for i, pg := range pgs {
			addrs[i] = map[string]uint32{}
			for _, sym := range []string{"svc_add", "pub_n", "val_v"} {
				v, err := pg.Var(sym)
				if err != nil {
					s.Failf("launchdiff seed=%d round=%d: resolve %s on %s: %v",
						diffSeed, round, sym, machines[i].name, err)
				}
				addrs[i][sym] = v.Addr
				if _, err := v.Load(); err != nil {
					s.Failf("launchdiff seed=%d round=%d: load %s on %s: %v",
						diffSeed, round, sym, machines[i].name, err)
				}
			}
		}
		for i := 1; i < len(pgs); i++ {
			for sym, a := range addrs[0] {
				if addrs[i][sym] != a {
					s.Failf("launchdiff seed=%d round=%d: %s at 0x%08x on %s but 0x%08x on cold",
						diffSeed, round, sym, addrs[i][sym], machines[i].name, a)
				}
			}
		}
		h0 := vm.StateHash(pgs[0].P.CPU)
		for i := 1; i < len(pgs); i++ {
			if h := vm.StateHash(pgs[i].P.CPU); h != h0 {
				s.Failf("launchdiff seed=%d round=%d: linked state diverged: %s hash=%016x cold hash=%016x\n%s state:\n%s\ncold state:\n%s",
					diffSeed, round, machines[i].name, h, h0,
					machines[i].name, vm.DumpState(pgs[i].P.CPU), vm.DumpState(pgs[0].P.CPU))
			}
		}

		// Run to completion: exit codes must agree with the model and with
		// each other.
		count++
		want := 35 + val + count
		for i, pg := range pgs {
			if err := pg.Run(1_000_000); err != nil {
				s.Failf("launchdiff seed=%d round=%d: run on %s: %v", diffSeed, round, machines[i].name, err)
			}
			if pg.P.ExitCode != want {
				s.Failf("launchdiff seed=%d round=%d: %s exited %d, want %d (val=%d count=%d)",
					diffSeed, round, machines[i].name, pg.P.ExitCode, want, val, count)
			}
		}
		for _, m := range machines {
			m.checkInvariants(s, diffSeed, round)
		}
		ctrRounds.Inc()
	}

	// The fast paths must actually have engaged, or the differential
	// silently compared three cold machines.
	if cold.counter("ldl.linkcache_hit") != 0 {
		s.Failf("launchdiff seed=%d: cold machine recorded a cache hit", diffSeed)
	}
	if repeats > 0 {
		if warm.counter("ldl.linkcache_hit") == 0 {
			s.Failf("launchdiff seed=%d: %d repeat launches but no cache hit on warm machine", diffSeed, repeats)
		}
		if zyg.counter("kern.zygote_clone") == 0 {
			s.Failf("launchdiff seed=%d: %d repeat launches but no zygote clone", diffSeed, repeats)
		}
	}
	if mutations > 0 {
		for _, m := range []*ldiffMachine{warm, zyg} {
			if m.counter("ldl.linkcache_invalidate") == 0 {
				s.Failf("launchdiff seed=%d: %d mutations but no cache invalidation on %s machine",
					diffSeed, mutations, m.name)
			}
		}
	}
}
