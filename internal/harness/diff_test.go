package harness

import (
	"testing"
)

// TestDiff is the acceptance gate: at least 1,000 generated programs, each
// executed on the fast path and the reference path, with zero divergences.
// Every failure message carries both the scenario seed (-harness.seed
// replays the whole run) and the individual program seed (FuzzDiffExec
// replays just that program).
func TestDiff(t *testing.T) {
	s := NewScenario(t, "diff", 1)
	n := s.Scale(1000, 1000) // the 1,000-program floor holds even under -short
	for i := 0; i < n; i++ {
		DiffOne(s, s.Rand.Int63())
	}
	progs := s.Reg.Snapshot().Counters["harness.diff.programs"]
	if progs < 1000 {
		s.Failf("executed only %d programs, want >= 1000", progs)
	}
	s.Logf("%d programs, %d steps, %d traps, no divergences",
		progs,
		s.Reg.Snapshot().Counters["harness.diff.steps"],
		s.Reg.Snapshot().Counters["harness.diff.traps"])
}

// TestDiffTrapsExercised guards the generator itself: across a modest run
// the mix must produce traps (faults, unaligned accesses, illegal targets)
// as well as clean retirements, or the differential coverage is hollow.
func TestDiffTrapsExercised(t *testing.T) {
	s := NewScenario(t, "diff-mix", 2)
	for i := 0; i < 50; i++ {
		DiffOne(s, s.Rand.Int63())
	}
	c := s.Reg.Snapshot().Counters
	if c["harness.diff.traps"] == 0 {
		s.Failf("generator produced no traps in 50 programs")
	}
	if c["harness.diff.steps"] == 0 {
		s.Failf("generator retired no instructions in 50 programs")
	}
}

// FuzzDiffExec lets the fuzzer drive the program-generator seed directly.
// The committed corpus pins a spread of interesting seeds; `go test -fuzz
// FuzzDiffExec` explores beyond them.
func FuzzDiffExec(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 42, 1 << 32, -1} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		DiffOne(WithSeed(t, "diff-fuzz", seed), seed)
	})
}
