package harness

import (
	"math/rand"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/layout"
	"hemlock/internal/mem"
	"hemlock/internal/vm"
)

// The generated-program memory image. Text is RWX so stores into it are
// legal self-modifying code (the icache-invalidation case the fast path
// must get right); the read-only page provides protection faults; the
// shared page is frame-backed the way shmfs segments are.
const (
	genTextBase   = layout.TextBase // 2 pages, RWX
	genTextPages  = 2
	genTextWords  = genTextPages * mem.PageSize / 4
	genDataBase   = layout.PrivDataBase          // 1 page, RW
	genROBase     = layout.PrivDataBase + 0x4000 // 1 page, R
	genSharedBase = layout.SharedBase            // 1 page, RW, frame-backed
)

// image is one generated program plus its initial memory and registers —
// everything needed to instantiate any number of bit-identical CPUs.
type image struct {
	text   []uint32
	data   [mem.PageSize]byte
	ro     [mem.PageSize]byte
	shared [mem.PageSize]byte
	regs   [32]uint32
}

// genImage draws a complete program image from rng.
func genImage(rng *rand.Rand) *image {
	im := &image{text: make([]uint32, genTextWords)}
	rng.Read(im.data[:])
	rng.Read(im.ro[:])
	rng.Read(im.shared[:])

	// Base registers the instruction mix leans on: page bases in r8-r11,
	// planted jump/load targets in r12-r15, random values elsewhere.
	im.regs[8] = genTextBase
	im.regs[9] = genDataBase
	im.regs[10] = genROBase
	im.regs[11] = genSharedBase
	im.regs[12] = genTextBase + uint32(rng.Intn(genTextWords))*4
	im.regs[13] = genTextBase + uint32(rng.Intn(genTextWords))*4
	im.regs[14] = genDataBase + uint32(rng.Intn(mem.PageSize/4))*4
	im.regs[15] = genSharedBase + uint32(rng.Intn(mem.PageSize/4))*4
	for r := 16; r < 32; r++ {
		im.regs[r] = rng.Uint32()
	}

	for i := 0; i < genTextWords; i++ {
		im.text[i] = genInst(rng, i)
	}
	// A halt backstop at the end of text, so straight-line runs stop
	// instead of walking off the mapping (which would also be fine — both
	// paths would fault identically — but ends more runs cleanly).
	for i := genTextWords - 4; i < genTextWords; i++ {
		im.text[i] = uint32(isa.OpHALT) << 26
	}
	return im
}

// reg picks a general destination register, avoiding $zero (writes to it
// are legal no-ops, covered separately) and usually preserving the base
// registers r8-r15 so memory traffic stays interesting.
func genDst(rng *rand.Rand) int {
	if rng.Intn(8) == 0 {
		return rng.Intn(32) // occasionally anything, including $zero and bases
	}
	return 16 + rng.Intn(10) // r16..r25
}

// genInst draws one instruction for text word index wi.
func genInst(rng *rand.Rand, wi int) uint32 {
	aluFns := []int{
		isa.FnADD, isa.FnADDU, isa.FnSUB, isa.FnSUBU, isa.FnAND, isa.FnOR,
		isa.FnXOR, isa.FnNOR, isa.FnSLT, isa.FnSLTU, isa.FnMUL, isa.FnDIV,
	}
	anyReg := func() int { return rng.Intn(32) }
	baseReg := func() int { return 8 + rng.Intn(8) } // r8..r15
	switch p := rng.Intn(100); {
	case p < 20: // R-type ALU (div included: div-by-zero traps are coverage)
		return isa.EncodeR(aluFns[rng.Intn(len(aluFns))], genDst(rng), anyReg(), anyReg(), 0)
	case p < 28: // shifts, constant and variable
		switch rng.Intn(6) {
		case 0:
			return isa.EncodeR(isa.FnSLL, genDst(rng), 0, anyReg(), rng.Intn(32))
		case 1:
			return isa.EncodeR(isa.FnSRL, genDst(rng), 0, anyReg(), rng.Intn(32))
		case 2:
			return isa.EncodeR(isa.FnSRA, genDst(rng), 0, anyReg(), rng.Intn(32))
		case 3:
			return isa.EncodeR(isa.FnSLLV, genDst(rng), anyReg(), anyReg(), 0)
		case 4:
			return isa.EncodeR(isa.FnSRLV, genDst(rng), anyReg(), anyReg(), 0)
		}
		return isa.EncodeR(isa.FnSRAV, genDst(rng), anyReg(), anyReg(), 0)
	case p < 40: // I-type ALU
		ops := []int{isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU, isa.OpANDI, isa.OpORI, isa.OpXORI}
		return isa.EncodeI(ops[rng.Intn(len(ops))], genDst(rng), anyReg(), uint16(rng.Uint32()))
	case p < 45: // LUI/ORI pair start: materialise a region address high half
		bases := []uint32{genTextBase, genDataBase, genROBase, genSharedBase}
		return isa.EncodeI(isa.OpLUI, 12+rng.Intn(4), 0, uint16(bases[rng.Intn(len(bases))]>>16))
	case p < 63: // loads and stores
		ops := []int{isa.OpLW, isa.OpLB, isa.OpLBU, isa.OpSW, isa.OpSB}
		op := ops[rng.Intn(len(ops))]
		var off uint16
		switch rng.Intn(10) {
		case 0: // wild offset: unmapped faults, negative reaches
			off = uint16(rng.Uint32())
		case 1: // unaligned (matters for lw/sw)
			off = uint16(rng.Intn(mem.PageSize))
		default: // in-page, word-aligned
			off = uint16(rng.Intn(mem.PageSize/4)) * 4
		}
		// Stores with a text base register are self-modifying code.
		return isa.EncodeI(op, genDst(rng), baseReg(), off)
	case p < 71: // branches within text
		ops := []int{isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ}
		op := ops[rng.Intn(len(ops))]
		target := rng.Intn(genTextWords)
		imm := uint16(int16(target - (wi + 1)))
		rt := anyReg()
		if op == isa.OpBLEZ || op == isa.OpBGTZ {
			rt = 0
		}
		return isa.EncodeI(op, rt, anyReg(), imm)
	case p < 77: // 26-bit jumps within text
		op := isa.OpJ
		if rng.Intn(2) == 0 {
			op = isa.OpJAL
		}
		return isa.EncodeJ(op, genTextBase+uint32(rng.Intn(genTextWords))*4)
	case p < 81: // register jumps: planted targets mostly, garbage sometimes
		rs := 12 + rng.Intn(2) // r12/r13 hold text addresses
		if rng.Intn(6) == 0 {
			rs = anyReg()
		}
		if rng.Intn(2) == 0 {
			return isa.EncodeR(isa.FnJR, 0, rs, 0, 0)
		}
		return isa.EncodeR(isa.FnJALR, genDst(rng), rs, 0, 0)
	case p < 84: // syscall/break (PC advances, driver records and continues)
		if rng.Intn(2) == 0 {
			return isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0)
		}
		return isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0)
	case p < 85: // halt
		return uint32(isa.OpHALT) << 26
	default: // nop filler keeps straight-line stretches common
		return isa.Nop
	}
}

// instantiate materialises the image into a fresh CPU with its own
// address space. Calling it twice yields two independent, bit-identical
// machines — the precondition for a meaningful differential run.
func (im *image) instantiate() (*vm.CPU, error) {
	phys := mem.NewPhysical(0)
	as := addrspace.New(phys)
	if err := as.MapAnon(genTextBase, genTextPages*mem.PageSize, addrspace.ProtRWX); err != nil {
		return nil, err
	}
	for i, w := range im.text {
		if err := as.StoreWord(genTextBase+uint32(i)*4, w); err != nil {
			return nil, err
		}
	}
	if err := as.MapAnon(genDataBase, mem.PageSize, addrspace.ProtRW); err != nil {
		return nil, err
	}
	if _, err := as.Write(genDataBase, im.data[:]); err != nil {
		return nil, err
	}
	// The read-only page is populated while mapped RW, then downgraded —
	// the same dance a loader does, and a Protect-generation bump the
	// TLB must observe.
	if err := as.MapAnon(genROBase, mem.PageSize, addrspace.ProtRW); err != nil {
		return nil, err
	}
	if _, err := as.Write(genROBase, im.ro[:]); err != nil {
		return nil, err
	}
	if err := as.Protect(genROBase, mem.PageSize, addrspace.ProtRead); err != nil {
		return nil, err
	}
	// The shared page is frame-backed (MapFrames), the way shmfs maps
	// public segments into a process.
	frames, err := phys.AllocN(1)
	if err != nil {
		return nil, err
	}
	copy(frames[0].Data[:], im.shared[:])
	if err := as.MapFrames(genSharedBase, frames, addrspace.ProtRW); err != nil {
		return nil, err
	}

	c := vm.New(as)
	c.PC = genTextBase
	c.Regs = im.regs
	return c, nil
}
