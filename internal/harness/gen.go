package harness

import (
	"math/rand"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/layout"
	"hemlock/internal/mem"
	"hemlock/internal/vm"
)

// The generated-program memory image. Text is RWX so stores into it are
// legal self-modifying code (the icache-invalidation case the fast path
// must get right); the read-only page provides protection faults; the
// shared page is frame-backed the way shmfs segments are.
const (
	genTextBase   = layout.TextBase // 2 pages, RWX
	genTextPages  = 2
	genTextWords  = genTextPages * mem.PageSize / 4
	genDataBase   = layout.PrivDataBase          // 1 page, RW
	genROBase     = layout.PrivDataBase + 0x4000 // 1 page, R
	genSharedBase = layout.SharedBase            // 1 page, RW, frame-backed
)

// image is one generated program plus its initial memory and registers —
// everything needed to instantiate any number of bit-identical CPUs.
type image struct {
	text   []uint32
	data   [mem.PageSize]byte
	ro     [mem.PageSize]byte
	shared [mem.PageSize]byte
	regs   [32]uint32
}

// genImage draws a complete program image from rng. The first draw picks
// the program shape: mostly the uniform instruction mix, with dedicated
// shapes that concentrate on what the block engine optimises — hot loops
// (chained blocks entered thousands of times), LUI-pair idioms (macro-op
// fusion), and store-into-text gadgets layered over loops (invalidation of
// already-chained successors). Shapes only skew the distribution; every
// image still runs bit-identically on all execution paths.
func genImage(rng *rand.Rand) *image {
	shape := rng.Intn(10)
	im := &image{text: make([]uint32, genTextWords)}
	rng.Read(im.data[:])
	rng.Read(im.ro[:])
	rng.Read(im.shared[:])

	// Base registers the instruction mix leans on: page bases in r8-r11,
	// planted jump/load targets in r12-r15, random values elsewhere.
	im.regs[8] = genTextBase
	im.regs[9] = genDataBase
	im.regs[10] = genROBase
	im.regs[11] = genSharedBase
	im.regs[12] = genTextBase + uint32(rng.Intn(genTextWords))*4
	im.regs[13] = genTextBase + uint32(rng.Intn(genTextWords))*4
	im.regs[14] = genDataBase + uint32(rng.Intn(mem.PageSize/4))*4
	im.regs[15] = genSharedBase + uint32(rng.Intn(mem.PageSize/4))*4
	for r := 16; r < 32; r++ {
		im.regs[r] = rng.Uint32()
	}

	for i := 0; i < genTextWords; i++ {
		im.text[i] = genInst(rng, i)
	}
	switch {
	case shape < 5: // uniform mix only
	case shape < 7:
		stampHotLoops(rng, im.text)
	case shape < 9:
		stampIdioms(rng, im.text)
	default:
		// Loops first, then stores aimed at text: the stores patch words
		// that blocks chained around the loops have already translated.
		stampHotLoops(rng, im.text)
		stampTextStores(rng, im.text)
	}
	// A halt backstop at the end of text, so straight-line runs stop
	// instead of walking off the mapping (which would also be fine — both
	// paths would fault identically — but ends more runs cleanly).
	for i := genTextWords - 4; i < genTextWords; i++ {
		im.text[i] = uint32(isa.OpHALT) << 26
	}
	return im
}

// stampHotLoops overwrites random text spots with bounded countdown loops:
// andi caps the counter at 63, then addiu/bgtz spin it to zero. Each gadget
// re-enters its own block up to 63 times, which is what heats block
// chaining; control flow that lands mid-gadget is still well-formed code.
func stampHotLoops(rng *rand.Rand, text []uint32) {
	for g := 0; g < 8; g++ {
		w := rng.Intn(len(text) - 8)
		r := 16 + rng.Intn(10)
		text[w] = isa.EncodeI(isa.OpANDI, r, r, 63)
		text[w+1] = isa.EncodeI(isa.OpADDIU, r, r, 0xFFFF) // -1
		text[w+2] = isa.EncodeI(isa.OpBGTZ, 0, r, 0xFFFE)  // back to the addiu
	}
}

// stampIdioms overwrites random text spots with the address-materialisation
// sequences fusion targets: LUI+ORI constants, LUI+absolute loads/stores,
// and full lui/ori/jr|jalr trampolines to in-text targets.
func stampIdioms(rng *rand.Rand, text []uint32) {
	bases := []uint32{genTextBase, genDataBase, genROBase, genSharedBase}
	for g := 0; g < 32; g++ {
		w := rng.Intn(len(text) - 8)
		r := 16 + rng.Intn(10)
		base := bases[rng.Intn(len(bases))]
		off := uint16(base) | uint16(rng.Intn(mem.PageSize/4)*4)
		switch rng.Intn(4) {
		case 0: // composed constant (usually a region address)
			text[w] = isa.EncodeI(isa.OpLUI, r, 0, uint16(base>>16))
			text[w+1] = isa.EncodeI(isa.OpORI, r, r, off)
		case 1: // absolute load
			op := isa.OpLW
			if rng.Intn(3) == 0 {
				op = isa.OpLBU
			}
			text[w] = isa.EncodeI(isa.OpLUI, r, 0, uint16(base>>16))
			text[w+1] = isa.EncodeI(op, genDst(rng), r, off)
		case 2: // absolute store (self-modifying code when base is text)
			op := isa.OpSW
			if rng.Intn(3) == 0 {
				op = isa.OpSB
			}
			text[w] = isa.EncodeI(isa.OpLUI, r, 0, uint16(base>>16))
			text[w+1] = isa.EncodeI(op, rng.Intn(32), r, off)
		case 3: // call trampoline to a planted in-text target
			target := genTextBase + uint32(rng.Intn(len(text)))*4
			text[w] = isa.EncodeI(isa.OpLUI, r, 0, uint16(target>>16))
			text[w+1] = isa.EncodeI(isa.OpORI, r, r, uint16(target))
			if rng.Intn(2) == 0 {
				text[w+2] = isa.EncodeR(isa.FnJR, 0, r, 0, 0)
			} else {
				text[w+2] = isa.EncodeR(isa.FnJALR, genDst(rng), r, 0, 0)
			}
		}
	}
}

// stampTextStores overwrites random text spots with word-aligned stores
// through the text base register: each one rewrites some text word — often
// one inside or just past a stamped loop — so already-chained successor
// blocks go stale mid-run.
func stampTextStores(rng *rand.Rand, text []uint32) {
	for g := 0; g < 24; g++ {
		w := rng.Intn(len(text) - 8)
		text[w] = isa.EncodeI(isa.OpSW, rng.Intn(32), 8, uint16(rng.Intn(len(text)))*4)
	}
}

// reg picks a general destination register, avoiding $zero (writes to it
// are legal no-ops, covered separately) and usually preserving the base
// registers r8-r15 so memory traffic stays interesting.
func genDst(rng *rand.Rand) int {
	if rng.Intn(8) == 0 {
		return rng.Intn(32) // occasionally anything, including $zero and bases
	}
	return 16 + rng.Intn(10) // r16..r25
}

// genInst draws one instruction for text word index wi.
func genInst(rng *rand.Rand, wi int) uint32 {
	aluFns := []int{
		isa.FnADD, isa.FnADDU, isa.FnSUB, isa.FnSUBU, isa.FnAND, isa.FnOR,
		isa.FnXOR, isa.FnNOR, isa.FnSLT, isa.FnSLTU, isa.FnMUL, isa.FnDIV,
	}
	anyReg := func() int { return rng.Intn(32) }
	baseReg := func() int { return 8 + rng.Intn(8) } // r8..r15
	switch p := rng.Intn(100); {
	case p < 20: // R-type ALU (div included: div-by-zero traps are coverage)
		return isa.EncodeR(aluFns[rng.Intn(len(aluFns))], genDst(rng), anyReg(), anyReg(), 0)
	case p < 28: // shifts, constant and variable
		switch rng.Intn(6) {
		case 0:
			return isa.EncodeR(isa.FnSLL, genDst(rng), 0, anyReg(), rng.Intn(32))
		case 1:
			return isa.EncodeR(isa.FnSRL, genDst(rng), 0, anyReg(), rng.Intn(32))
		case 2:
			return isa.EncodeR(isa.FnSRA, genDst(rng), 0, anyReg(), rng.Intn(32))
		case 3:
			return isa.EncodeR(isa.FnSLLV, genDst(rng), anyReg(), anyReg(), 0)
		case 4:
			return isa.EncodeR(isa.FnSRLV, genDst(rng), anyReg(), anyReg(), 0)
		}
		return isa.EncodeR(isa.FnSRAV, genDst(rng), anyReg(), anyReg(), 0)
	case p < 40: // I-type ALU
		ops := []int{isa.OpADDI, isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU, isa.OpANDI, isa.OpORI, isa.OpXORI}
		return isa.EncodeI(ops[rng.Intn(len(ops))], genDst(rng), anyReg(), uint16(rng.Uint32()))
	case p < 45: // LUI/ORI pair start: materialise a region address high half
		bases := []uint32{genTextBase, genDataBase, genROBase, genSharedBase}
		return isa.EncodeI(isa.OpLUI, 12+rng.Intn(4), 0, uint16(bases[rng.Intn(len(bases))]>>16))
	case p < 63: // loads and stores
		ops := []int{isa.OpLW, isa.OpLB, isa.OpLBU, isa.OpSW, isa.OpSB}
		op := ops[rng.Intn(len(ops))]
		var off uint16
		switch rng.Intn(10) {
		case 0: // wild offset: unmapped faults, negative reaches
			off = uint16(rng.Uint32())
		case 1: // unaligned (matters for lw/sw)
			off = uint16(rng.Intn(mem.PageSize))
		default: // in-page, word-aligned
			off = uint16(rng.Intn(mem.PageSize/4)) * 4
		}
		// Stores with a text base register are self-modifying code.
		return isa.EncodeI(op, genDst(rng), baseReg(), off)
	case p < 71: // branches within text
		ops := []int{isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ}
		op := ops[rng.Intn(len(ops))]
		target := rng.Intn(genTextWords)
		imm := uint16(int16(target - (wi + 1)))
		rt := anyReg()
		if op == isa.OpBLEZ || op == isa.OpBGTZ {
			rt = 0
		}
		return isa.EncodeI(op, rt, anyReg(), imm)
	case p < 77: // 26-bit jumps within text
		op := isa.OpJ
		if rng.Intn(2) == 0 {
			op = isa.OpJAL
		}
		return isa.EncodeJ(op, genTextBase+uint32(rng.Intn(genTextWords))*4)
	case p < 81: // register jumps: planted targets mostly, garbage sometimes
		rs := 12 + rng.Intn(2) // r12/r13 hold text addresses
		if rng.Intn(6) == 0 {
			rs = anyReg()
		}
		if rng.Intn(2) == 0 {
			return isa.EncodeR(isa.FnJR, 0, rs, 0, 0)
		}
		return isa.EncodeR(isa.FnJALR, genDst(rng), rs, 0, 0)
	case p < 84: // syscall/break (PC advances, driver records and continues)
		if rng.Intn(2) == 0 {
			return isa.EncodeR(isa.FnSYSCALL, 0, 0, 0, 0)
		}
		return isa.EncodeR(isa.FnBREAK, 0, 0, 0, 0)
	case p < 85: // halt
		return uint32(isa.OpHALT) << 26
	default: // nop filler keeps straight-line stretches common
		return isa.Nop
	}
}

// instantiate materialises the image into a fresh CPU with its own
// address space. Calling it twice yields two independent, bit-identical
// machines — the precondition for a meaningful differential run.
func (im *image) instantiate() (*vm.CPU, error) {
	phys := mem.NewPhysical(0)
	as := addrspace.New(phys)
	if err := as.MapAnon(genTextBase, genTextPages*mem.PageSize, addrspace.ProtRWX); err != nil {
		return nil, err
	}
	for i, w := range im.text {
		if err := as.StoreWord(genTextBase+uint32(i)*4, w); err != nil {
			return nil, err
		}
	}
	if err := as.MapAnon(genDataBase, mem.PageSize, addrspace.ProtRW); err != nil {
		return nil, err
	}
	if _, err := as.Write(genDataBase, im.data[:]); err != nil {
		return nil, err
	}
	// The read-only page is populated while mapped RW, then downgraded —
	// the same dance a loader does, and a Protect-generation bump the
	// TLB must observe.
	if err := as.MapAnon(genROBase, mem.PageSize, addrspace.ProtRW); err != nil {
		return nil, err
	}
	if _, err := as.Write(genROBase, im.ro[:]); err != nil {
		return nil, err
	}
	if err := as.Protect(genROBase, mem.PageSize, addrspace.ProtRead); err != nil {
		return nil, err
	}
	// The shared page is frame-backed (MapFrames), the way shmfs maps
	// public segments into a process.
	frames, err := phys.AllocN(1)
	if err != nil {
		return nil, err
	}
	copy(frames[0].Data[:], im.shared[:])
	if err := as.MapFrames(genSharedBase, frames, addrspace.ProtRW); err != nil {
		return nil, err
	}

	c := vm.New(as)
	c.PC = genTextBase
	c.Regs = im.regs
	return c, nil
}
