// Package baseline implements the communication mechanisms Hemlock is
// compared against in the paper's examples: translating data structures to
// and from linear intermediate forms (files), and kernel-mediated message
// passing. "The code required to save and restore information in files and
// message buffers is a major contributor to software complexity" — this
// package IS that code, so the experiments can measure what Hemlock
// removes.
package baseline

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Field is one key/value pair of a linearised record.
type Field struct {
	Key   string
	Value string
}

// ErrBadRecord is returned when a linearised record cannot be parsed.
var ErrBadRecord = errors.New("baseline: malformed record")

// Encode linearises fields into the parsable ASCII form administrative
// files use: one "key<TAB>value" line per field.
func Encode(fields []Field) []byte {
	var b bytes.Buffer
	for _, f := range fields {
		b.WriteString(f.Key)
		b.WriteByte('\t')
		b.WriteString(f.Value)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// Decode parses the ASCII form back into fields.
func Decode(data []byte) ([]Field, error) {
	var out []Field
	for ln, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "\t")
		if !ok || k == "" {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadRecord, ln+1, line)
		}
		out = append(out, Field{Key: k, Value: v})
	}
	return out, nil
}

// Get returns the value for key.
func Get(fields []Field, key string) (string, bool) {
	for _, f := range fields {
		if f.Key == key {
			return f.Value, true
		}
	}
	return "", false
}

// GetUint parses the value for key as an unsigned integer.
func GetUint(fields []Field, key string) (uint32, error) {
	v, ok := Get(fields, key)
	if !ok {
		return 0, fmt.Errorf("%w: missing %q", ErrBadRecord, key)
	}
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("%w: %q: %v", ErrBadRecord, key, err)
	}
	return uint32(n), nil
}

// U32 formats an unsigned integer field value.
func U32(v uint32) string { return strconv.FormatUint(uint64(v), 10) }

// ---- message passing ----------------------------------------------------------

// Pipe is the message-passing comparator: a kernel-style byte channel with
// copy-in/copy-out semantics on both ends (data crosses the protection
// boundary twice, unlike shared memory which crosses zero times).
type Pipe struct {
	ch chan []byte
}

// NewPipe returns a pipe buffering up to depth messages.
func NewPipe(depth int) *Pipe { return &Pipe{ch: make(chan []byte, depth)} }

// Send copies msg into the pipe (the kernel's copy-in).
func (p *Pipe) Send(msg []byte) {
	in := make([]byte, len(msg))
	copy(in, msg)
	p.ch <- in
}

// Recv copies the next message out of the pipe (the kernel's copy-out)
// into a freshly allocated buffer.
func (p *Pipe) Recv() []byte {
	m := <-p.ch
	out := make([]byte, len(m))
	copy(out, m)
	return out
}

// TryRecv receives without blocking.
func (p *Pipe) TryRecv() ([]byte, bool) {
	select {
	case m := <-p.ch:
		out := make([]byte, len(m))
		copy(out, m)
		return out, true
	default:
		return nil, false
	}
}

// Len reports queued messages.
func (p *Pipe) Len() int { return len(p.ch) }

// RPC performs a synchronous request/response over a pair of pipes: the
// lightweight-RPC comparator for the client/server experiments.
type RPC struct {
	req, rep *Pipe
}

// NewRPC returns a connected RPC endpoint pair transport.
func NewRPC() *RPC { return &RPC{req: NewPipe(1), rep: NewPipe(1)} }

// Call sends a request and waits for the reply (client side).
func (r *RPC) Call(req []byte) []byte {
	r.req.Send(req)
	return r.rep.Recv()
}

// Serve handles exactly one request with fn (server side).
func (r *RPC) Serve(fn func(req []byte) []byte) {
	r.rep.Send(fn(r.req.Recv()))
}
