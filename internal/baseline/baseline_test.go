package baseline

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	fields := []Field{{"host", "machine01"}, {"load0", "142"}, {"empty", ""}}
	got, err := Decode(Encode(fields))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fields, got) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("noseparator\n")); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("garbage accepted: %v", err)
	}
	if _, err := Decode([]byte("\tnovalue\n")); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("empty key accepted: %v", err)
	}
}

func TestGetHelpers(t *testing.T) {
	fields := []Field{{"n", "42"}, {"s", "x"}}
	if v, ok := Get(fields, "s"); !ok || v != "x" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := Get(fields, "missing"); ok {
		t.Fatal("Get found missing key")
	}
	n, err := GetUint(fields, "n")
	if err != nil || n != 42 {
		t.Fatalf("GetUint = %d, %v", n, err)
	}
	if _, err := GetUint(fields, "s"); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("non-numeric accepted: %v", err)
	}
	if _, err := GetUint(fields, "missing"); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("missing key accepted: %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		fields := make([]Field, len(vals))
		for i, v := range vals {
			fields[i] = Field{Key: "k" + U32(uint32(i)), Value: U32(v)}
		}
		got, err := Decode(Encode(fields))
		if err != nil {
			return false
		}
		if len(fields) == 0 {
			return len(got) == 0
		}
		return reflect.DeepEqual(fields, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipeCopiesBothWays(t *testing.T) {
	p := NewPipe(4)
	msg := []byte("payload")
	p.Send(msg)
	msg[0] = 'X' // sender mutation after send must not leak
	got := p.Recv()
	if string(got) != "payload" {
		t.Fatalf("recv = %q", got)
	}
	got[0] = 'Y' // receiver mutation must not affect pipe internals
	if p.Len() != 0 {
		t.Fatalf("len = %d", p.Len())
	}
}

func TestTryRecv(t *testing.T) {
	p := NewPipe(1)
	if _, ok := p.TryRecv(); ok {
		t.Fatal("TryRecv on empty pipe")
	}
	p.Send([]byte("m"))
	m, ok := p.TryRecv()
	if !ok || string(m) != "m" {
		t.Fatalf("TryRecv = %q, %v", m, ok)
	}
}

func TestRPC(t *testing.T) {
	r := NewRPC()
	done := make(chan struct{})
	go func() {
		r.Serve(func(req []byte) []byte {
			return append([]byte("re:"), req...)
		})
		close(done)
	}()
	rep := r.Call([]byte("ping"))
	if string(rep) != "re:ping" {
		t.Fatalf("reply = %q", rep)
	}
	<-done
}
