package kern

import (
	"errors"
	"fmt"
	"testing"

	"hemlock/internal/isa"
)

// stubShmTxn is a scripted ShmTxn backend: records stages, answers commit
// per the script.
type stubShmTxn struct {
	staged   map[int][][2]uint32
	commitOK bool
	commit   error
	aborted  int
}

func (s *stubShmTxn) TxnStage(pid int, addr, val uint32) error {
	if s.staged == nil {
		s.staged = map[int][][2]uint32{}
	}
	s.staged[pid] = append(s.staged[pid], [2]uint32{addr, val})
	return nil
}

func (s *stubShmTxn) TxnCommit(pid int) (bool, error) {
	delete(s.staged, pid)
	return s.commitOK, s.commit
}

func (s *stubShmTxn) TxnAbort(pid int) {
	s.aborted++
	delete(s.staged, pid)
}

// syscall drives one system call against the process registers directly.
func syscall(t *testing.T, k *Kernel, p *Process, num, a0, a1 uint32) (ret, errc uint32) {
	t.Helper()
	p.CPU.Regs[isa.RegV0] = num
	p.CPU.Regs[isa.RegA0] = a0
	p.CPU.Regs[isa.RegA1] = a1
	if err := k.Syscall(p); err != nil {
		t.Fatalf("syscall %d: %v", num, err)
	}
	return p.CPU.Regs[isa.RegV0], p.CPU.Regs[isa.RegV1]
}

func TestTxnSyscalls(t *testing.T) {
	k := New()
	p := k.Spawn(0)

	// Without a backend, both calls fail cleanly.
	if _, errc := syscall(t, k, p, SysTxnStage, 0x1000, 1); errc != Einval {
		t.Fatalf("stage without backend: errno %d, want Einval", errc)
	}
	if _, errc := syscall(t, k, p, SysTxnCommit, 0, 0); errc != Einval {
		t.Fatalf("commit without backend: errno %d, want Einval", errc)
	}

	stub := &stubShmTxn{commitOK: true}
	k.SetShmTxn(stub)

	// Stage two words, commit: the backend saw both, commit returns 1.
	if _, errc := syscall(t, k, p, SysTxnStage, 0x30001000, 7); errc != Eok {
		t.Fatalf("stage 1: errno %d", errc)
	}
	if _, errc := syscall(t, k, p, SysTxnStage, 0x30001004, 8); errc != Eok {
		t.Fatalf("stage 2: errno %d", errc)
	}
	if got := len(stub.staged[p.PID]); got != 2 {
		t.Fatalf("backend staged %d words, want 2", got)
	}
	if ret, errc := syscall(t, k, p, SysTxnCommit, 0, 0); ret != 1 || errc != Eok {
		t.Fatalf("commit: ret=%d errno=%d, want 1/Eok", ret, errc)
	}

	// A conflict abort: ret 0, no errno — the guest re-runs.
	stub.commitOK = false
	if ret, errc := syscall(t, k, p, SysTxnCommit, 0, 0); ret != 0 || errc != Eok {
		t.Fatalf("conflict commit: ret=%d errno=%d, want 0/Eok", ret, errc)
	}

	// A remote home: Eagain.
	stub.commit = fmt.Errorf("%w: home is elsewhere", ErrAgain)
	if _, errc := syscall(t, k, p, SysTxnCommit, 0, 0); errc != Eagain {
		t.Fatalf("remote commit: errno %d, want Eagain", errc)
	}

	// Explicit abort via txn_commit(1).
	stub.commit = nil
	syscall(t, k, p, SysTxnStage, 0x30001000, 9)
	if ret, errc := syscall(t, k, p, SysTxnCommit, 1, 0); ret != 1 || errc != Eok {
		t.Fatalf("abort: ret=%d errno=%d", ret, errc)
	}
	if stub.aborted != 1 || len(stub.staged[p.PID]) != 0 {
		t.Fatalf("abort did not reach backend: aborted=%d staged=%d", stub.aborted, len(stub.staged[p.PID]))
	}
}

func TestErrnoEagain(t *testing.T) {
	if got := errno(fmt.Errorf("wrap: %w", ErrAgain)); got != Eagain {
		t.Fatalf("errno(ErrAgain) = %d, want %d", got, Eagain)
	}
	if !errors.Is(fmt.Errorf("x: %w", ErrAgain), ErrAgain) {
		t.Fatal("ErrAgain does not unwrap")
	}
}
