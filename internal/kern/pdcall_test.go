package kern

import (
	"errors"
	"testing"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/shmfs"
)

func TestPDCallHosted(t *testing.T) {
	k := New()
	server := k.Spawn(0)
	// Server state: a private counter in its own address space.
	if err := server.AS.MapAnon(0x10000000, 4096, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	id := k.RegisterPDService(server, func(s *Process, arg uint32) (uint32, error) {
		cur, err := s.LoadWord(0x10000000)
		if err != nil {
			return 0, err
		}
		if err := s.StoreWord(0x10000000, cur+arg); err != nil {
			return 0, err
		}
		return cur + arg, nil
	})
	client := k.Spawn(0)
	got, err := k.PDCall(client, id, 5)
	if err != nil || got != 5 {
		t.Fatalf("call 1: %d, %v", got, err)
	}
	got, err = k.PDCall(client, id, 7)
	if err != nil || got != 12 {
		t.Fatalf("call 2: %d, %v", got, err)
	}
	// The client cannot see the server's private state directly.
	if _, err := client.AS.LoadWord(0x10000000); err == nil {
		t.Fatal("client read server-private memory")
	}
}

func TestPDCallSharedSegmentArgument(t *testing.T) {
	// The intended pattern: bulk data lives in a shared segment mapped in
	// both domains at the same address; the call passes only a pointer.
	k := New()
	k.FS.Create("/srv/box", shmfs.DefaultFileMode, 0)
	k.FS.MkdirAll("/srv", shmfs.DefaultDirMode, 0)
	k.FS.Create("/srv/box2", shmfs.DefaultFileMode, 0)
	server := k.Spawn(0)
	st, err := k.MapSharedFile(server, "/srv/box2", 4096, addrspace.ProtRW)
	if err != nil {
		t.Fatal(err)
	}
	id := k.RegisterPDService(server, func(s *Process, arg uint32) (uint32, error) {
		// arg is a pointer into the shared segment: double the word there.
		v, err := s.LoadWord(arg)
		if err != nil {
			return 0, err
		}
		return 0, s.StoreWord(arg, v*2)
	})
	client := k.Spawn(0)
	if _, err := k.MapSharedFile(client, "/srv/box2", 4096, addrspace.ProtRW); err != nil {
		t.Fatal(err)
	}
	client.AS.StoreWord(st.Addr+16, 21)
	if _, err := k.PDCall(client, id, st.Addr+16); err != nil {
		t.Fatal(err)
	}
	v, _ := client.AS.LoadWord(st.Addr + 16)
	if v != 42 {
		t.Fatalf("shared word = %d, want 42", v)
	}
}

func TestPDCallVMServer(t *testing.T) {
	// A VM server registers its entry via pd_serve and parks; the client
	// calls it via pd_call. The service adds 100 to its argument.
	k := New()
	server := k.Spawn(0)
	serverImg := buildImage(t, `
        .text
        # pd_serve(entry)
        li      $v0, 20
        la      $a0, entry
        syscall
        halt                    # server parks; entry runs on demand
entry:
        addiu   $a0, $a0, 100
        li      $v0, 22         # pd_return(result in $a0)
        syscall
`)
	if err := server.Exec(serverImg); err != nil {
		t.Fatal(err)
	}
	// Run the server until it parks (halt exits... we must capture the
	// service id before exit). Step manually: run until the pd_serve
	// syscall completes.
	for {
		ev, err := server.CPU.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ev.String() == "syscall" {
			if err := k.Syscall(server); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	id := int(server.CPU.Regs[isa.RegV0])
	if id == 0 {
		t.Fatal("pd_serve returned no id")
	}

	client := k.Spawn(0)
	clientImg := buildImage(t, `
        .text
        li      $v0, 21         # pd_call(id, arg)
        li      $a0, 1          # patched below if needed (id is 1)
        li      $a1, 23
        syscall
        move    $a0, $v0        # exit with the result
        li      $v0, 1
        syscall
`)
	if err := client.Exec(clientImg); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(client, 100000); err != nil {
		t.Fatal(err)
	}
	if client.ExitCode != 123 {
		t.Fatalf("pd_call result = %d, want 123", client.ExitCode)
	}
}

func TestPDCallErrors(t *testing.T) {
	k := New()
	client := k.Spawn(0)
	if _, err := k.PDCall(client, 99, 0); !errors.Is(err, ErrNoService) {
		t.Fatalf("bad id: %v", err)
	}
	server := k.Spawn(0)
	id := k.RegisterPDService(server, func(s *Process, arg uint32) (uint32, error) {
		return 0, nil
	})
	server.Exit(0)
	if _, err := k.PDCall(client, id, 0); !errors.Is(err, ErrNoService) {
		t.Fatalf("exited server: %v", err)
	}
	// Reentrancy is rejected.
	srv2 := k.Spawn(0)
	var id2 int
	id2 = k.RegisterPDService(srv2, func(s *Process, arg uint32) (uint32, error) {
		_, err := k.PDCall(client, id2, 0)
		if !errors.Is(err, ErrPDReentered) {
			t.Fatalf("reentry: %v", err)
		}
		return 1, nil
	})
	if v, err := k.PDCall(client, id2, 0); err != nil || v != 1 {
		t.Fatalf("outer call: %d, %v", v, err)
	}
}

func TestPDReturnOutsideCall(t *testing.T) {
	k := New()
	p := k.Spawn(0)
	im := buildImage(t, `
        .text
        li      $v0, 22
        syscall
        halt
`)
	p.Exec(im)
	k.Run(p, 1000)
	if p.CPU.Regs[isa.RegV1] == Eok {
		t.Fatal("pd_return outside a call succeeded")
	}
}

func TestPDCallVMServerStateRestored(t *testing.T) {
	// The server's CPU state is saved and restored around each call.
	k := New()
	server := k.Spawn(0)
	img := buildImage(t, `
        .text
        li      $s0, 777        # distinctive register state
        li      $v0, 20
        la      $a0, entry
        syscall
loopfwd:
        b       loopfwd         # server "parked"
entry:
        li      $s0, 0          # clobber inside the service
        move    $a0, $a1        # return the caller's pid
        li      $v0, 22
        syscall
`)
	server.Exec(img)
	for i := 0; i < 100; i++ {
		ev, err := server.CPU.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ev.String() == "syscall" {
			k.Syscall(server)
			break
		}
	}
	id := int(server.CPU.Regs[isa.RegV0])
	client := k.Spawn(0)
	got, err := k.PDCall(client, id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != uint32(client.PID) {
		t.Fatalf("service saw pid %d, want %d", got, client.PID)
	}
	if server.CPU.Regs[16] != 777 { // $s0
		t.Fatalf("server register state clobbered: $s0 = %d", server.CPU.Regs[16])
	}
}
