package kern

import (
	"errors"
	"fmt"

	"hemlock/internal/addrspace"
	"hemlock/internal/isa"
	"hemlock/internal/obsv"
	"hemlock/internal/shmfs"
	"hemlock/internal/vm"
)

// System call numbers (passed in $v0). Results return in $v0; $v1 is 0 on
// success and an errno-style code on failure.
const (
	SysExit       = 1  // exit(code)
	SysWrite      = 2  // write(fd, buf, len) — fd 1 is the console
	SysGetPID     = 3  // getpid()
	SysOpen       = 4  // open(path, writable) -> fd
	SysClose      = 5  // close(fd)
	SysRead       = 6  // read(fd, buf, len) -> n
	SysSbrk       = 8  // sbrk(n) -> old break
	SysAddrToPath = 9  // shm_addr_to_path(addr, buf, buflen) -> len  [new kernel call]
	SysOpenAddr   = 10 // open_by_addr(addr, writable) -> fd          [overloaded open]
	SysPathToAddr = 11 // shm_path_to_addr(path) -> addr
	SysStatSize   = 12 // stat_size(path) -> file size
	SysUnlink     = 13 // unlink(path)
	SysMapShared  = 14 // map_shared(path, size) -> base address (the mmap-style path)
	SysLinkModule = 15 // link_module(path, class) -> module base (dlopen, but scoped and lazy)
	SysSymAddr    = 16 // sym_addr(name) -> address (dlsym, against the full root scope)
	SysFork       = 17 // fork() -> child pid (0 in the child)

	// Guest atomics (23–26): the hardware synchronisation primitive the
	// paper's user-space spin locks assume. Exposed as kernel calls rather
	// than instructions to keep the R3K-lite ISA untouched; each is one
	// host atomic on the backing frame word (see atomic.go), so they scale
	// across true-SMP guest CPUs instead of serialising the fleet.
	SysTAS         = 23 // tas(addr) -> previous word, word at addr set to 1
	SysAtomicStore = 24 // atomic_store(addr, val)    [release: lock drop]
	SysAtomicAdd   = 25 // atomic_add(addr, delta) -> new value
	SysAtomicLoad  = 26 // atomic_load(addr) -> word  [acquire]

	// Transactional shared-segment writes (27–28): the guest surface of
	// netshm's TL2-style commit protocol. A process stages word stores
	// against replicated segment addresses, then commits them atomically —
	// one generation on the wire, so no machine in the fleet ever observes
	// half of the write set. Backed by the ShmTxn hook; without a netshm
	// endpoint on this machine the calls fail with Einval.
	SysTxnStage  = 27 // txn_stage(addr, val) — stage a word store at addr
	SysTxnCommit = 28 // txn_commit(abort) -> 1 committed / 0 conflict; Eagain if the home is remote
)

// sysNames maps syscall numbers to event names for the tracer. Indexing is
// an array lookup so the trace path allocates nothing.
var sysNames = [...]string{
	SysExit:        "exit",
	SysWrite:       "write",
	SysGetPID:      "getpid",
	SysOpen:        "open",
	SysClose:       "close",
	SysRead:        "read",
	SysSbrk:        "sbrk",
	SysAddrToPath:  "shm_addr_to_path",
	SysOpenAddr:    "open_by_addr",
	SysPathToAddr:  "shm_path_to_addr",
	SysStatSize:    "stat_size",
	SysUnlink:      "unlink",
	SysMapShared:   "map_shared",
	SysLinkModule:  "link_module",
	SysSymAddr:     "sym_addr",
	SysFork:        "fork",
	SysPDServe:     "pd_serve",
	SysPDCall:      "pd_call",
	SysPDReturn:    "pd_return",
	SysTAS:         "tas",
	SysAtomicStore: "atomic_store",
	SysAtomicAdd:   "atomic_add",
	SysAtomicLoad:  "atomic_load",
	SysTxnStage:    "txn_stage",
	SysTxnCommit:   "txn_commit",
}

func sysName(num uint32) string {
	if num < uint32(len(sysNames)) && sysNames[num] != "" {
		return sysNames[num]
	}
	return "syscall"
}

// ModuleLinker is the hook the dynamic linker installs (via
// Process.Runtime) so the link_module and sym_addr system calls can reach
// it without the kernel depending on the linker package. ldl.Proc
// implements it.
type ModuleLinker interface {
	// LinkByPath brings the named module into the process at root scope
	// (mapped, lazily linked) and returns its base address.
	LinkByPath(name string, public bool) (uint32, error)
	// SymbolAddr resolves a symbol against the process's root scope.
	SymbolAddr(name string) (uint32, bool)
}

// ShmTxn is the hook a networked-shared-memory endpoint (netshm) installs
// via SetShmTxn so the txn_stage/txn_commit system calls can reach the
// fleet's transactional commit protocol without the kernel depending on
// the netshm package — the same inversion ModuleLinker uses for the
// dynamic linker.
type ShmTxn interface {
	// TxnStage stages a 32-bit word store at a replicated segment address
	// for process pid.
	TxnStage(pid int, addr, val uint32) error
	// TxnCommit atomically commits pid's staged stores. ok=false with a
	// nil error is a clean optimistic-concurrency conflict (the guest
	// should re-run); an error wrapping ErrAgain means the segment's home
	// is remote and the guest must retry another way.
	TxnCommit(pid int) (bool, error)
	// TxnAbort discards pid's staged stores.
	TxnAbort(pid int)
}

// SetShmTxn installs the transactional shared-memory backend.
func (k *Kernel) SetShmTxn(t ShmTxn) { k.shmTxn = t }

// ErrAgain maps to Eagain: the operation cannot complete on this machine
// right now (a transactional commit whose home is remote).
var ErrAgain = errors.New("kern: resource temporarily unavailable")

// Errno values returned in $v1.
const (
	Eok     = 0
	Enoent  = 2
	Ebadf   = 9
	Eagain  = 11
	Eaccess = 13
	Einval  = 22
	Enospc  = 28
)

func errno(err error) uint32 {
	switch {
	case err == nil:
		return Eok
	case errors.Is(err, shmfs.ErrNotExist):
		return Enoent
	case errors.Is(err, shmfs.ErrPerm):
		return Eaccess
	case errors.Is(err, shmfs.ErrNoSpace), errors.Is(err, shmfs.ErrFileTooBig):
		return Enospc
	case errors.Is(err, ErrBadFD):
		return Ebadf
	case errors.Is(err, ErrAgain):
		return Eagain
	default:
		return Einval
	}
}

// Syscall executes the system call currently requested by the process's
// CPU registers and writes the result back.
func (k *Kernel) Syscall(p *Process) error {
	c := p.CPU
	num := c.Regs[isa.RegV0]
	a0, a1, a2 := c.Regs[isa.RegA0], c.Regs[isa.RegA1], c.Regs[isa.RegA2]
	k.ctrSyscalls.Inc()
	if t := k.Obs.Tracer(); t.Enabled() {
		t.Emit(obsv.Event{Subsys: "kern", Name: sysName(num), PID: p.PID, Addr: a0, Val: uint64(num)})
	}
	var ret uint32
	var err error
	switch num {
	case SysExit:
		p.Exit(int(a0))
		return nil
	case SysWrite:
		ret, err = k.sysWrite(p, a0, a1, a2)
	case SysGetPID:
		ret = uint32(p.PID)
	case SysOpen:
		var path string
		path, err = p.CString(a0)
		if err == nil {
			ret, err = p.openPath(path, a1 != 0)
		}
	case SysClose:
		if _, ok := p.files[int(a0)]; !ok {
			err = ErrBadFD
		} else {
			delete(p.files, int(a0))
		}
	case SysRead:
		ret, err = k.sysRead(p, a0, a1, a2)
	case SysSbrk:
		ret, err = p.Sbrk(a0)
	case SysAddrToPath:
		var path string
		path, _, err = k.FS.AddrToPath(a0)
		if err == nil {
			b := []byte(path)
			if uint32(len(b))+1 > a2 {
				err = fmt.Errorf("kern: buffer too small")
			} else {
				if err = p.WriteMem(a1, append(b, 0)); err == nil {
					ret = uint32(len(b))
				}
			}
		}
	case SysOpenAddr:
		var path string
		path, _, err = k.FS.AddrToPath(a0)
		if err == nil {
			ret, err = p.openPath(path, a1 != 0)
		}
	case SysPathToAddr:
		var path string
		path, err = p.CString(a0)
		if err == nil {
			ret, err = k.FS.PathToAddr(path)
		}
	case SysStatSize:
		var path string
		path, err = p.CString(a0)
		if err == nil {
			var st shmfs.Stat
			st, err = k.FS.StatPath(path)
			ret = st.Size
		}
	case SysUnlink:
		var path string
		path, err = p.CString(a0)
		if err == nil {
			err = k.FS.Unlink(path, p.UID)
		}
	case SysMapShared:
		var path string
		path, err = p.CString(a0)
		if err == nil {
			var st shmfs.Stat
			st, err = k.MapSharedFile(p, p.abs(path), a1, addrspace.ProtRWX)
			ret = st.Addr
		}
	case SysFork:
		var child *Process
		child, err = k.Fork(p)
		if err == nil {
			// Parent and child come out of the fork with identical
			// program counters; the return value tells them apart.
			child.CPU.Regs[isa.RegV0] = 0
			child.CPU.Regs[isa.RegV1] = Eok
			ret = uint32(child.PID)
		}
	case SysLinkModule:
		ml, ok := p.Runtime.(ModuleLinker)
		if !ok {
			err = fmt.Errorf("kern: no dynamic linker in this process")
			break
		}
		var path string
		path, err = p.CString(a0)
		if err == nil {
			ret, err = ml.LinkByPath(path, a1 != 0)
		}
	case SysSymAddr:
		ml, ok := p.Runtime.(ModuleLinker)
		if !ok {
			err = fmt.Errorf("kern: no dynamic linker in this process")
			break
		}
		var name string
		name, err = p.CString(a0)
		if err == nil {
			addr, found := ml.SymbolAddr(name)
			if !found {
				err = fmt.Errorf("kern: undefined symbol %q", name)
			}
			ret = addr
		}
	case SysTAS:
		ret, err = p.TestAndSet(a0)
	case SysAtomicStore:
		err = p.AtomicStore(a0, a1)
	case SysAtomicAdd:
		ret, err = p.AtomicAdd(a0, a1)
	case SysAtomicLoad:
		ret, err = p.AtomicLoad(a0)
	case SysTxnStage:
		if k.shmTxn == nil {
			err = fmt.Errorf("kern: no transactional shared memory on this machine")
			break
		}
		err = k.shmTxn.TxnStage(p.PID, a0, a1)
	case SysTxnCommit:
		if k.shmTxn == nil {
			err = fmt.Errorf("kern: no transactional shared memory on this machine")
			break
		}
		if a0 != 0 {
			k.shmTxn.TxnAbort(p.PID)
			ret = 1
			break
		}
		var ok bool
		ok, err = k.shmTxn.TxnCommit(p.PID)
		if ok {
			ret = 1
		}
	case SysPDServe:
		ret = uint32(k.registerPDEntry(p, a0))
	case SysPDCall:
		ret, err = k.PDCall(p, int(a0), a1)
	case SysPDReturn:
		err = ErrNotInPDCall
	default:
		err = fmt.Errorf("kern: unknown syscall %d", num)
	}
	c.Regs[isa.RegV0] = ret
	c.Regs[isa.RegV1] = errno(err)
	return nil
}

func (p *Process) openPath(path string, writable bool) (uint32, error) {
	path = p.abs(path)
	// Verify access now, like open(2).
	if _, err := p.K.FS.ReadAt(path, 0, nil, p.UID); err != nil && !errors.Is(err, shmfs.ErrIsDir) {
		return 0, err
	}
	fd := p.nextFD
	p.nextFD++
	p.files[fd] = &openFile{path: path, write: writable}
	return uint32(fd), nil
}

// abs resolves a path relative to the process working directory.
func (p *Process) abs(path string) string {
	if len(path) > 0 && path[0] == '/' {
		return shmfs.Clean(path)
	}
	return shmfs.Clean(p.CWD + "/" + path)
}

func (k *Kernel) sysWrite(p *Process, fd, buf, n uint32) (uint32, error) {
	data := make([]byte, n)
	if err := p.ReadMem(buf, data); err != nil {
		return 0, err
	}
	if fd == 1 || fd == 2 {
		p.Stdout.Write(data)
		return n, nil
	}
	f, ok := p.files[int(fd)]
	if !ok || !f.write {
		return 0, ErrBadFD
	}
	wrote, err := k.FS.WriteAt(f.path, f.offset, data, p.UID)
	f.offset += uint32(wrote)
	return uint32(wrote), err
}

func (k *Kernel) sysRead(p *Process, fd, buf, n uint32) (uint32, error) {
	f, ok := p.files[int(fd)]
	if !ok {
		return 0, ErrBadFD
	}
	data := make([]byte, n)
	got, err := k.FS.ReadAt(f.path, f.offset, data, p.UID)
	if err != nil {
		return 0, err
	}
	f.offset += uint32(got)
	if err := p.WriteMem(buf, data[:got]); err != nil {
		return 0, err
	}
	return uint32(got), nil
}

// OpenHostFile gives hosted (Go-level) programs the same fd interface the
// VM syscalls use.
func (p *Process) OpenHostFile(path string, writable bool) (int, error) {
	fd, err := p.openPath(path, writable)
	return int(fd), err
}

// Run drives the process's CPU until it exits, halts, traps fatally, or
// retires maxSteps instructions. Faults are delivered to the user-level
// handler and the faulting instruction restarted, exactly like hardware
// resuming after SIGSEGV. It returns the retired instruction count.
func (k *Kernel) Run(p *Process, maxSteps uint64) (uint64, error) {
	span := k.Obs.Tracer().Begin("kern", "run", p.PID, "")
	n, err := k.runLoop(p, maxSteps)
	p.CPU.FlushObsv() // single-step (traced) iterations don't flush per step
	k.ctrSteps.Add(n)
	k.hRunSteps.Observe(n)
	span.End(n)
	return n, err
}

func (k *Kernel) runLoop(p *Process, maxSteps uint64) (uint64, error) {
	n, done, err := k.runSlice(p, maxSteps)
	if err != nil || done {
		return n, err
	}
	return n, fmt.Errorf("kern: pid %d exceeded %d steps", p.PID, maxSteps)
}

// runSlice is the resumable core of the run loop: it drives the CPU for at
// most budget retired instructions and returns how many ran and whether the
// process is finished (exited or already exited on entry). Exhausting the
// budget with the process still runnable is NOT an error here — the SMP
// scheduler calls runSlice repeatedly, one preemption quantum at a time,
// interleaving other processes between slices.
func (k *Kernel) runSlice(p *Process, budget uint64) (uint64, bool, error) {
	start := p.CPU.Steps
	// Batched fast path: with tracing disabled there is nothing to observe
	// between instructions, so hand the CPU its whole remaining budget and
	// only come back here for events, faults and traps. With tracing
	// enabled, single-step so future per-step instrumentation (and the
	// tracer's view of fault ordering) stays exact.
	batched := !k.Obs.Tracer().Enabled()
	for p.CPU.Steps-start < budget {
		if p.Exited {
			return p.CPU.Steps - start, true, nil
		}
		var ev vm.Event
		var err error
		if batched {
			ev, err = p.CPU.RunBatch(budget - (p.CPU.Steps - start))
			if ev == vm.EventStep && err == nil {
				continue // budget exhausted; loop condition reports it
			}
		} else {
			ev, err = p.CPU.Step()
		}
		if err != nil {
			f, ok := vm.FaultOf(err)
			if !ok {
				return p.CPU.Steps - start, false, err
			}
			if herr := k.HandleFault(p, f); herr != nil {
				return p.CPU.Steps - start, false, fmt.Errorf("pid %d at pc 0x%08x: %w", p.PID, p.CPU.PC, herr)
			}
			continue // restart the faulting instruction
		}
		switch ev {
		case vm.EventHalt:
			p.Exit(0)
			return p.CPU.Steps - start, true, nil
		case vm.EventSyscall:
			if err := k.Syscall(p); err != nil {
				return p.CPU.Steps - start, false, err
			}
		case vm.EventBreak:
			if p.BreakHandler != nil {
				if err := p.BreakHandler(p); err != nil {
					return p.CPU.Steps - start, false, err
				}
				continue
			}
			return p.CPU.Steps - start, false, fmt.Errorf("kern: pid %d hit break at 0x%08x", p.PID, p.CPU.PC)
		}
	}
	return p.CPU.Steps - start, p.Exited, nil
}

// Regions returns the process's mapped regions (a /proc-style view used by
// the Figure 3 layout printer).
func (p *Process) Regions() []addrspace.Region { return p.AS.Regions() }
